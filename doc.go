// Package repro is a from-scratch Go reproduction of "Multilevel Logic
// Synthesis for Arithmetic Functions" (Tsai & Marek-Sadowska, DAC 1996):
// FPRM-based multilevel synthesis with algebraic factorization and
// simulation-driven XOR redundancy removal, together with every substrate
// the paper's evaluation depended on. See README.md for the overview,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for measured
// results against the paper's tables and claims.
//
// The benchmarks in bench_test.go regenerate, one testing.B target per
// experiment, the timing and quality numbers of the paper's tables and
// examples.
package repro
