package budget

import (
	"context"
	"testing"
	"time"
)

// Both arms of a hedge draw from one step counter: the cap is spent by
// their combined work, not per arm.
func TestHedgeArmsShareSteps(t *testing.T) {
	b := New(context.Background(), Limits{Steps: 10})
	h := b.Hedge()
	defer h.Stop()
	a0, a1 := h.Arm(0), h.Arm(1)
	for i := 0; i < 5; i++ {
		a0.Step("x")
	}
	err := Guard(func() {
		for i := 0; i < 10; i++ {
			a1.Step("y")
		}
	})
	be, ok := err.(*Err)
	if !ok || be.Limit != "steps" {
		t.Fatalf("want steps trip on arm 1 after combined 10 steps, got %v", err)
	}
	if b.Steps() != 11 {
		t.Fatalf("shared counter = %d, want 11", b.Steps())
	}
	// The trip is globally sticky: the parent slice fails fast too.
	if err := b.Exceeded(); err == nil {
		t.Fatal("parent should observe the sticky steps trip")
	}
}

// Cancelling one arm's context is that arm's private failure: the
// sibling and the parent slice keep running.
func TestHedgeArmCancellationIsLocal(t *testing.T) {
	b := New(context.Background(), Limits{})
	h := b.Hedge()
	defer h.Stop()
	a0, a1 := h.Arm(0), h.Arm(1)
	h.cancels[0]()
	err := Guard(func() {
		// checkMask-amortized: enough steps to hit the clock check.
		for i := 0; i < 1024; i++ {
			a0.Step("x")
		}
	})
	be, ok := err.(*Err)
	if !ok || be.Limit != "canceled" {
		t.Fatalf("cancelled arm: want canceled trip, got %v", err)
	}
	if err := a0.Exceeded(); err == nil {
		t.Fatal("cancelled arm should stay tripped (arm-local sticky)")
	}
	if err := a1.Exceeded(); err != nil {
		t.Fatalf("sibling arm poisoned by arm-0 cancellation: %v", err)
	}
	if err := b.Exceeded(); err != nil {
		t.Fatalf("parent poisoned by arm-0 cancellation: %v", err)
	}
	if err := Guard(func() {
		for i := 0; i < 1024; i++ {
			a1.Step("y")
		}
	}); err != nil {
		t.Fatalf("sibling arm cannot step after arm-0 cancellation: %v", err)
	}
}

// Parent-context cancellation reaches both arms (derived contexts).
func TestHedgeParentCancellationReachesArms(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{})
	h := b.Hedge()
	defer h.Stop()
	cancel()
	for i, a := range [...]*Budget{h.Arm(0), h.Arm(1)} {
		if err := a.Exceeded(); err == nil {
			t.Fatalf("arm %d does not observe parent cancellation", i)
		}
	}
}

// Win is a no-op without a wall-clock deadline: deadline-free runs are
// the determinism domain, and both arms must run to completion there.
func TestHedgeWinNoDeadlineNoCancel(t *testing.T) {
	b := New(context.Background(), Limits{})
	h := b.Hedge()
	defer h.Stop()
	h.Win(0)
	time.Sleep(5 * time.Millisecond)
	if err := h.Arm(1).Exceeded(); err != nil {
		t.Fatalf("loser cancelled without a deadline: %v", err)
	}
}

// Under a deadline, Win starts the loser-cancellation countdown and the
// loser's context is cancelled (arm-locally) once the grace elapses.
func TestHedgeWinCancelsLoserUnderDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	b := New(ctx, Limits{})
	h := b.Hedge()
	defer h.Stop()
	h.Win(0)
	deadline := time.Now().Add(2 * time.Second)
	for h.Arm(1).Exceeded() == nil {
		if time.Now().After(deadline) {
			t.Fatal("loser arm never cancelled after Win under deadline")
		}
		time.Sleep(time.Millisecond)
	}
	if err := b.Exceeded(); err != nil {
		t.Fatalf("loser cancellation leaked into the parent slice: %v", err)
	}
}

// A nil budget hands out a nil hedge with nil arms; all of it is a no-op.
func TestHedgeNilSafe(t *testing.T) {
	var b *Budget
	h := b.Hedge()
	if h != nil {
		t.Fatal("nil budget should produce a nil hedge")
	}
	if a := h.Arm(0); a != nil {
		t.Fatal("nil hedge should hand out nil arms")
	}
	h.Win(0)
	h.Stop()
	if ctx := b.Context(); ctx == nil {
		t.Fatal("nil budget Context must not be nil")
	}
}
