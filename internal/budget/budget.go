// Package budget provides the resource-governance primitives of the
// synthesis pipeline: a per-request Budget carrying a deadline (via
// context.Context), node caps for the BDD/OFDD managers, a cube cap for
// materialized FPRM forms, and a work-step cap for the hot recursion
// loops (ITE/apply/FromBDD).
//
// The canonical-form flows this repo implements can blow up suddenly on
// arithmetic circuits (the failure shape Yu & Ciesielski describe for
// Galois-field arithmetic, and the "unmanageable FPRM forms" the source
// paper concedes in Section 6). A Budget turns those blowups into a
// typed, recoverable Err instead of unbounded growth or process death.
//
// # Trip mechanism
//
// Budget checks sit inside hot recursions whose signatures cannot
// reasonably carry an error return (every BDD ITE call, every OFDD XOR).
// A tripped check therefore unwinds with panic(*Err) — a controlled
// non-local exit in the style of encoding/json — and Guard converts it
// back into an ordinary error at the phase boundary. The panic never
// escapes the public API of the packages that use budgets: core and
// sisbase wrap every budgeted phase in Guard.
//
// # Concurrency
//
// A Budget is safe for concurrent use: one budget governs every worker
// of a parallel derivation fan-out (see core.Synthesize). The step
// counter is a single atomic add, the sticky first-trip is an atomic
// pointer published once via compare-and-swap, and the limits are
// immutable after New. The amortized deadline poll is preserved — across
// all workers, whichever goroutine lands on a multiple of the check
// interval consults the clock, so the per-step overhead stays an atomic
// increment and a mask test.
//
// # Hedged sibling slices
//
// A Hedge couples two cancellable views ("arms") of one budget: both arms
// draw steps from the same counter against the same caps, but each arm
// carries its own derived context so one arm can be cancelled (the
// loser-cancellation deadline of a hedged race) without poisoning the
// sibling or the run. An arm observing its own cancellation trips with an
// arm-local sticky memo; only the run-level slice publishes cancellation
// to the shared memo.
//
// All methods are safe on a nil *Budget and cost a single nil check, so
// unbudgeted callers pay nothing.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Err reports an exhausted resource budget. It identifies the pipeline
// phase that tripped, which limit was hit, and how much was used.
type Err struct {
	Phase string // pipeline phase, e.g. "bdd", "ofdd", "factor", "polarity"
	Limit string // "deadline", "canceled", "nodes", "cubes", or "steps"
	Max   int64  // the configured limit (0 for deadline/cancellation)
	Used  int64  // resource consumption when the check tripped
}

// Error implements the error interface.
func (e *Err) Error() string {
	switch e.Limit {
	case "deadline", "canceled":
		return fmt.Sprintf("budget exceeded in %s: %s", e.Phase, e.Limit)
	}
	return fmt.Sprintf("budget exceeded in %s: %s limit %d reached (used %d)", e.Phase, e.Limit, e.Max, e.Used)
}

// IsExceeded reports whether err is (or wraps) a budget exhaustion.
func IsExceeded(err error) bool {
	var be *Err
	return errors.As(err, &be)
}

// Limits configures the resource caps of a Budget. Zero values mean
// "unlimited" for that resource; the deadline comes from the context.
type Limits struct {
	BDDNodes  int   // max nodes in the shared ROBDD manager
	OFDDNodes int   // max nodes per OFDD manager
	Cubes     int64 // max materialized FPRM cubes per output
	Steps     int64 // max recursion steps (ITE/apply/XOR memo misses) overall
}

// checkMask amortizes the wall-clock check: time.Now is consulted once
// every 256 steps, so the per-step overhead in the ITE loop stays at a
// counter increment and a mask test.
const checkMask = 255

// Budget is a per-request resource budget shared by every manager and
// phase of one synthesis run. It is safe for concurrent use: one Budget
// governs all workers of a parallel run (concurrent *runs* still use
// separate Budgets, since steps are a per-run resource).
type Budget struct {
	ctx      context.Context
	deadline time.Time
	hasDL    bool
	// arm marks a sibling slice handed out by Hedge: cancellation observed
	// through an arm's context is that arm's private failure (the sibling
	// keeps running), so it is memoized in local, never in the shared memo.
	arm   bool
	local atomic.Pointer[Err]
	s     *shared
}

// shared is the state every view of one budget slice draws from: the
// immutable caps, the step/poll counters, the sticky first trip, and the
// chaos hooks. Hedge arms alias their parent's shared state, so a hedged
// race spends one budget, not two.
type shared struct {
	lim      Limits
	steps    atomic.Int64
	tripped  atomic.Pointer[Err] // first sticky trip, memoized so later checks fail fast
	stepHook StepHook
	polls    atomic.Int64
	pollHook PollHook
}

// StepHook is a fault-injection probe consulted on every counted work
// step (see SetStepHook). It receives the phase tag and the global step
// number just consumed; returning a non-nil *Err makes the budget trip
// with exactly that error. Hooks run on whichever goroutine took the
// step, so they must be safe for concurrent use; deterministic hooks
// key off the step number (the atomic counter hands each value to
// exactly one goroutine) rather than off their own state.
type StepHook func(phase string, step int64) *Err

// PollHook is a fault-injection probe consulted on every Exceeded poll
// (see SetPollHook). It receives the ordinal of the poll; returning a
// non-nil *Err makes that poll — and every later check — report the
// injected error. Poll trips are always sticky: Exceeded models
// *observed* exhaustion, which callers assume does not heal.
type PollHook func(poll int64) *Err

// New returns a Budget over the context's deadline/cancellation and the
// given limits. A nil ctx is treated as context.Background().
func New(ctx context.Context, lim Limits) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	b := &Budget{ctx: ctx, s: &shared{lim: lim}}
	if dl, ok := ctx.Deadline(); ok {
		b.deadline = dl
		b.hasDL = true
	}
	return b
}

// Context returns the context governing this slice (an arm's derived
// context for Hedge arms). Nil-safe: a nil budget reports Background.
func (b *Budget) Context() context.Context {
	if b == nil {
		return context.Background()
	}
	return b.ctx
}

// SetStepHook installs a fault-injection step probe (nil removes it).
// The hook is for the deterministic chaos harness (internal/chaos):
// production budgets never set one, and the disabled path costs a
// single nil check per step. Install hooks before sharing the budget
// across goroutines; the field is not synchronized.
func (b *Budget) SetStepHook(h StepHook) {
	if b == nil {
		return
	}
	b.s.stepHook = h
}

// SetPollHook installs a fault-injection poll probe (nil removes it).
// Like SetStepHook this exists for internal/chaos only: the disabled
// path costs one nil check per Exceeded call on top of the poll
// counter (which always runs — Polls feeds the run report). Install
// before sharing the budget across goroutines.
func (b *Budget) SetPollHook(h PollHook) {
	if b == nil {
		return
	}
	b.s.pollHook = h
}

// Limits returns the configured caps.
func (b *Budget) Limits() Limits {
	if b == nil {
		return Limits{}
	}
	return b.s.lim
}

// Steps returns the number of work steps consumed so far.
func (b *Budget) Steps() int64 {
	if b == nil {
		return 0
	}
	return b.s.steps.Load()
}

// Polls returns the number of graceful Exceeded polls taken so far.
// Together with Steps it gives the run report its budget totals.
func (b *Budget) Polls() int64 {
	if b == nil {
		return 0
	}
	return b.s.polls.Load()
}

// trip raises the budget error. The panic is a controlled non-local exit
// out of the hot recursion loops; it is recovered by Guard at the calling
// phase boundary and never escapes the public API of the packages using
// budgets.
//
// Only globally-spent resources are memoized as sticky (deadline,
// cancellation, steps): once spent they stay spent, so later checks fail
// fast. The memo is published with a compare-and-swap so exactly one
// trip wins under concurrency; every worker that checks afterwards sees
// the same *Err. Node and cube trips are per-phase — a fresh OFDD
// manager for the next output starts below its cap again — and must not
// poison the rest of the run. Cancellation seen through a Hedge arm's
// context is sticky only for that arm: the sibling and the run are, by
// construction, not cancelled with it.
func (b *Budget) trip(phase, limit string, max, used int64) {
	e := &Err{Phase: phase, Limit: limit, Max: max, Used: used}
	switch limit {
	case "deadline", "steps":
		b.s.tripped.CompareAndSwap(nil, e)
	case "canceled":
		if b.arm {
			b.local.CompareAndSwap(nil, e)
		} else {
			b.s.tripped.CompareAndSwap(nil, e)
		}
	}
	panic(e)
}

// Step counts one unit of work (one memo miss in a hot recursion) and
// trips on step-budget exhaustion; every 256 steps (across all workers
// sharing the budget) it also checks the deadline and cancellation.
func (b *Budget) Step(phase string) {
	if b == nil {
		return
	}
	if t := b.s.tripped.Load(); t != nil {
		// Fail fast with the memoized error itself: the trip is reported
		// at the phase where the resource was first exhausted (matching
		// what Exceeded returns), not wherever the next step happened.
		panic(t)
	}
	if b.arm {
		if t := b.local.Load(); t != nil {
			panic(t)
		}
	}
	s := b.s.steps.Add(1)
	if b.s.stepHook != nil {
		if e := b.s.stepHook(phase, s); e != nil {
			b.inject(e)
		}
	}
	if b.s.lim.Steps > 0 && s > b.s.lim.Steps {
		b.trip(phase, "steps", b.s.lim.Steps, s)
	}
	if s&checkMask == 0 {
		b.checkTime(phase)
	}
}

// inject trips the budget with a hook-supplied error, applying the same
// stickiness rules as trip: globally-spent limits are memoized so every
// later check converges on the injected error, per-phase limits stay
// transient (exactly what the retry rung recovers from).
func (b *Budget) inject(e *Err) {
	switch e.Limit {
	case "deadline", "canceled", "steps":
		b.s.tripped.CompareAndSwap(nil, e)
	}
	panic(e)
}

// checkTime trips on an expired deadline or a canceled context.
func (b *Budget) checkTime(phase string) {
	if b.hasDL && !time.Now().Before(b.deadline) {
		b.trip(phase, "deadline", 0, 0)
	}
	if err := b.ctx.Err(); err != nil {
		b.trip(phase, "canceled", 0, 0)
	}
}

// CheckBDDNodes trips when the BDD manager has grown past its node cap.
func (b *Budget) CheckBDDNodes(used int) {
	if b == nil || b.s.lim.BDDNodes <= 0 {
		return
	}
	if used > b.s.lim.BDDNodes {
		b.trip("bdd", "nodes", int64(b.s.lim.BDDNodes), int64(used))
	}
}

// CheckOFDDNodes trips when an OFDD manager has grown past its node cap.
func (b *Budget) CheckOFDDNodes(used int) {
	if b == nil || b.s.lim.OFDDNodes <= 0 {
		return
	}
	if used > b.s.lim.OFDDNodes {
		b.trip("ofdd", "nodes", int64(b.s.lim.OFDDNodes), int64(used))
	}
}

// CheckCubes trips when a materialized cube count exceeds the cube cap.
func (b *Budget) CheckCubes(phase string, used int64) {
	if b == nil || b.s.lim.Cubes <= 0 {
		return
	}
	if used > b.s.lim.Cubes {
		b.trip(phase, "cubes", b.s.lim.Cubes, used)
	}
}

// CubesAllowed reports whether a cube count fits the cube cap, without
// tripping. Callers use it to steer onto a cheaper path (sampling, the
// OFDD method) before materializing.
func (b *Budget) CubesAllowed(count int64) bool {
	if b == nil || b.s.lim.Cubes <= 0 {
		return true
	}
	return count <= b.s.lim.Cubes
}

// Relaxed returns a fresh budget over the same context with every
// configured cap scaled by f (never below the parent's cap) and zeroed
// counters — the slice the budgeted-retry rung runs one retry on. The
// wall-clock deadline and cancellation still govern the slice; the
// parent's sticky trips and step hook are deliberately not inherited,
// because the caller retries only after a transient per-phase trip
// (nodes, cubes), never after a globally-spent resource.
func (b *Budget) Relaxed(f float64) *Budget {
	if b == nil {
		return nil
	}
	if f < 1 {
		f = 1
	}
	scale := func(v int64) int64 {
		if v <= 0 {
			return 0
		}
		s := int64(float64(v) * f)
		if s < v { // overflow or f≈1 rounding: never shrink the cap
			s = v
		}
		return s
	}
	return &Budget{
		ctx:      b.ctx,
		deadline: b.deadline,
		hasDL:    b.hasDL,
		s: &shared{lim: Limits{
			BDDNodes:  int(scale(int64(b.s.lim.BDDNodes))),
			OFDDNodes: int(scale(int64(b.s.lim.OFDDNodes))),
			Cubes:     scale(b.s.lim.Cubes),
			Steps:     scale(b.s.lim.Steps),
		}},
	}
}

// Exceeded reports — without panicking — whether the budget is already
// exhausted (a previous trip, an expired deadline, or a canceled
// context). Phases that can stop gracefully (polarity search, the
// sisbase iteration loop) poll this between units of work. Under
// concurrency the first memoized trip wins; a deadline/cancellation
// observed here is published the same way so all workers converge on
// one error.
func (b *Budget) Exceeded() error {
	if b == nil {
		return nil
	}
	if t := b.s.tripped.Load(); t != nil {
		return t
	}
	if b.arm {
		if t := b.local.Load(); t != nil {
			return t
		}
	}
	poll := b.s.polls.Add(1)
	if b.s.pollHook != nil {
		if e := b.s.pollHook(poll); e != nil {
			b.s.tripped.CompareAndSwap(nil, e)
			return b.s.tripped.Load()
		}
	}
	if b.hasDL && !time.Now().Before(b.deadline) {
		b.s.tripped.CompareAndSwap(nil, &Err{Phase: "poll", Limit: "deadline"})
		return b.s.tripped.Load()
	}
	if b.ctx.Err() != nil {
		e := &Err{Phase: "poll", Limit: "canceled"}
		if b.arm {
			b.local.CompareAndSwap(nil, e)
			return b.local.Load()
		}
		b.s.tripped.CompareAndSwap(nil, e)
		return b.s.tripped.Load()
	}
	return nil
}

// Hedge couples two sibling views ("arms") of one budget slice for a
// hedged race: both arms draw work steps from the same counter against
// the same caps — the race spends one budget, not two — but each arm has
// its own derived context, so the loser can be cancelled without
// touching the sibling or the run. Arm-observed cancellation trips are
// arm-local (see trip); every other limit behaves exactly as on the
// parent slice.
type Hedge struct {
	parent  *Budget
	arms    [2]*Budget
	cancels [2]context.CancelFunc
	start   time.Time
	mu      sync.Mutex
	timer   *time.Timer
	stopped bool
}

// Hedge returns a hedge over this budget, or nil for a nil budget (nil
// hedges hand out nil arms, preserving the unbudgeted fast path).
func (b *Budget) Hedge() *Hedge {
	if b == nil {
		return nil
	}
	h := &Hedge{parent: b, start: time.Now()}
	for i := range h.arms {
		ctx, cancel := context.WithCancel(b.ctx)
		h.arms[i] = &Budget{ctx: ctx, deadline: b.deadline, hasDL: b.hasDL, arm: true, s: b.s}
		h.cancels[i] = cancel
	}
	return h
}

// Arm returns sibling slice i (0 or 1). Both arms share the parent's
// counters and caps; each carries its own cancellable context.
func (h *Hedge) Arm(i int) *Budget {
	if h == nil {
		return nil
	}
	return h.arms[i]
}

// Win declares arm i finished and starts the loser-cancellation
// countdown on the sibling: the loser gets as long again as the winner
// took (floored at one millisecond) before its context is cancelled.
//
// The countdown arms only when the run has a wall-clock deadline.
// Deadline-free runs are the repo's determinism domain — benchmarks and
// bit-identity tests — and a timing-based cancellation there would make
// results depend on scheduler luck; such runs let both arms finish, which
// is also exactly what a never-worse comparison wants. Deadline runs are
// already timing-governed, so trading the loser's tail for latency is
// strictly consistent with their contract.
func (h *Hedge) Win(i int) {
	if h == nil || !h.parent.hasDL {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stopped || h.timer != nil {
		return
	}
	grace := time.Since(h.start)
	if grace < time.Millisecond {
		grace = time.Millisecond
	}
	h.timer = time.AfterFunc(grace, h.cancels[1-i])
}

// Stop releases the hedge: the countdown timer is stopped and both arm
// contexts are cancelled (their work is done; the derived contexts must
// not leak). Always call Stop once both arms have returned.
func (h *Hedge) Stop() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stopped = true
	if h.timer != nil {
		h.timer.Stop()
	}
	for _, cancel := range h.cancels {
		cancel()
	}
}

// Guard runs f and converts a budget trip into an ordinary error. Any
// other panic propagates unchanged (core.Synthesize has a final
// boundary that tags those with the failing phase).
func Guard(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if be, ok := r.(*Err); ok {
				err = be
				return
			}
			// Not a budget trip: re-raise for the caller's residual-panic
			// boundary. This panic cannot fire for budget errors.
			panic(r)
		}
	}()
	f()
	return nil
}
