package budget

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilBudgetIsNoOp(t *testing.T) {
	var b *Budget
	b.Step("bdd")
	b.CheckBDDNodes(1 << 30)
	b.CheckOFDDNodes(1 << 30)
	b.CheckCubes("fprm", 1<<40)
	if !b.CubesAllowed(1 << 40) {
		t.Fatal("nil budget must allow everything")
	}
	if b.Exceeded() != nil {
		t.Fatal("nil budget never exceeded")
	}
}

func TestStepLimitTrips(t *testing.T) {
	b := New(context.Background(), Limits{Steps: 10})
	err := Guard(func() {
		for i := 0; i < 100; i++ {
			b.Step("bdd")
		}
	})
	if !IsExceeded(err) {
		t.Fatalf("want budget error, got %v", err)
	}
	var be *Err
	if !errors.As(err, &be) || be.Limit != "steps" || be.Phase != "bdd" || be.Max != 10 {
		t.Fatalf("bad error detail: %+v", be)
	}
	// Later checks fail fast without doing work.
	if b.Exceeded() == nil {
		t.Fatal("tripped budget must report Exceeded")
	}
}

func TestNodeLimits(t *testing.T) {
	b := New(context.Background(), Limits{BDDNodes: 5, OFDDNodes: 7})
	if err := Guard(func() { b.CheckBDDNodes(5) }); err != nil {
		t.Fatalf("at the limit must pass: %v", err)
	}
	if err := Guard(func() { b.CheckBDDNodes(6) }); !IsExceeded(err) {
		t.Fatalf("want trip, got %v", err)
	}
	if err := Guard(func() { b.CheckOFDDNodes(8) }); !IsExceeded(err) {
		t.Fatalf("want trip, got %v", err)
	}
}

func TestDeadlineTrips(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	b := New(ctx, Limits{})
	err := Guard(func() {
		for i := 0; i < 10000; i++ { // amortized check fires within 256 steps
			b.Step("ofdd")
		}
	})
	if !IsExceeded(err) {
		t.Fatalf("want deadline trip, got %v", err)
	}
	if b.Exceeded() == nil {
		t.Fatal("expired deadline must poll as exceeded")
	}
}

func TestCancellationPolls(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{})
	if b.Exceeded() != nil {
		t.Fatal("fresh context not exceeded")
	}
	cancel()
	if err := b.Exceeded(); err == nil || !IsExceeded(err) {
		t.Fatalf("canceled context must poll as exceeded, got %v", err)
	}
}

func TestCubesAllowed(t *testing.T) {
	b := New(context.Background(), Limits{Cubes: 100})
	if !b.CubesAllowed(100) || b.CubesAllowed(101) {
		t.Fatal("cube cap boundary wrong")
	}
	if err := Guard(func() { b.CheckCubes("fprm", 200) }); !IsExceeded(err) {
		t.Fatalf("want cube trip, got %v", err)
	}
}

func TestGuardPassesForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("foreign panic must propagate through Guard")
		}
	}()
	_ = Guard(func() { panic(fmt.Errorf("unrelated")) })
}
