package budget

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilBudgetIsNoOp(t *testing.T) {
	var b *Budget
	b.Step("bdd")
	b.CheckBDDNodes(1 << 30)
	b.CheckOFDDNodes(1 << 30)
	b.CheckCubes("fprm", 1<<40)
	if !b.CubesAllowed(1 << 40) {
		t.Fatal("nil budget must allow everything")
	}
	if b.Exceeded() != nil {
		t.Fatal("nil budget never exceeded")
	}
}

func TestStepLimitTrips(t *testing.T) {
	b := New(context.Background(), Limits{Steps: 10})
	err := Guard(func() {
		for i := 0; i < 100; i++ {
			b.Step("bdd")
		}
	})
	if !IsExceeded(err) {
		t.Fatalf("want budget error, got %v", err)
	}
	var be *Err
	if !errors.As(err, &be) || be.Limit != "steps" || be.Phase != "bdd" || be.Max != 10 {
		t.Fatalf("bad error detail: %+v", be)
	}
	// Later checks fail fast without doing work.
	if b.Exceeded() == nil {
		t.Fatal("tripped budget must report Exceeded")
	}
}

func TestNodeLimits(t *testing.T) {
	b := New(context.Background(), Limits{BDDNodes: 5, OFDDNodes: 7})
	if err := Guard(func() { b.CheckBDDNodes(5) }); err != nil {
		t.Fatalf("at the limit must pass: %v", err)
	}
	if err := Guard(func() { b.CheckBDDNodes(6) }); !IsExceeded(err) {
		t.Fatalf("want trip, got %v", err)
	}
	if err := Guard(func() { b.CheckOFDDNodes(8) }); !IsExceeded(err) {
		t.Fatalf("want trip, got %v", err)
	}
}

func TestDeadlineTrips(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	b := New(ctx, Limits{})
	err := Guard(func() {
		for i := 0; i < 10000; i++ { // amortized check fires within 256 steps
			b.Step("ofdd")
		}
	})
	if !IsExceeded(err) {
		t.Fatalf("want deadline trip, got %v", err)
	}
	if b.Exceeded() == nil {
		t.Fatal("expired deadline must poll as exceeded")
	}
}

func TestCancellationPolls(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{})
	if b.Exceeded() != nil {
		t.Fatal("fresh context not exceeded")
	}
	cancel()
	if err := b.Exceeded(); err == nil || !IsExceeded(err) {
		t.Fatalf("canceled context must poll as exceeded, got %v", err)
	}
}

func TestCubesAllowed(t *testing.T) {
	b := New(context.Background(), Limits{Cubes: 100})
	if !b.CubesAllowed(100) || b.CubesAllowed(101) {
		t.Fatal("cube cap boundary wrong")
	}
	if err := Guard(func() { b.CheckCubes("fprm", 200) }); !IsExceeded(err) {
		t.Fatalf("want cube trip, got %v", err)
	}
}

func TestGuardPassesForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("foreign panic must propagate through Guard")
		}
	}()
	_ = Guard(func() { panic(fmt.Errorf("unrelated")) })
}

// A shared budget must be usable from many goroutines: the step counter
// must not lose increments and a sticky trip must be observed by every
// worker. Run with -race (CI does).
func TestConcurrentSteps(t *testing.T) {
	b := New(context.Background(), Limits{})
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Step("bdd")
			}
		}()
	}
	wg.Wait()
	if got := b.Steps(); got != workers*per {
		t.Fatalf("lost steps under concurrency: got %d want %d", got, workers*per)
	}
}

func TestConcurrentStepLimitSticky(t *testing.T) {
	b := New(context.Background(), Limits{Steps: 1000})
	const workers = 8
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = Guard(func() {
				for i := 0; i < 10000; i++ {
					b.Step("ofdd")
				}
			})
		}(w)
	}
	wg.Wait()
	tripped := 0
	for _, err := range errs {
		if err == nil {
			continue
		}
		tripped++
		if !IsExceeded(err) {
			t.Fatalf("non-budget error from worker: %v", err)
		}
		var be *Err
		if !errors.As(err, &be) || be.Limit != "steps" {
			t.Fatalf("want steps trip, got %+v", be)
		}
	}
	if tripped == 0 {
		t.Fatal("no worker tripped a 1000-step budget under 80000 steps")
	}
	if b.Exceeded() == nil {
		t.Fatal("sticky trip must be visible to later polls")
	}
	// All workers that observe the memo see the same first-trip error.
	first := b.Exceeded()
	if e2 := b.Exceeded(); e2 != first {
		t.Fatal("memoized trip must be stable")
	}
}

func TestConcurrentCancellationConverges(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{})
	cancel()
	const workers = 8
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = b.Exceeded()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err == nil || !IsExceeded(err) {
			t.Fatalf("worker %d: want canceled trip, got %v", w, err)
		}
	}
}
