package factor

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/obs"
)

// Hand-traced rule counters. Each case drives exactly one rule once and
// asserts the whole FactorStats struct, so a miscounted or double-counted
// probe site fails loudly.

func TestObsRuleATrace(t *testing.T) {
	// A ⊕ AB = A·B̄: one rule (a) firing, then a clean fixpoint pass.
	var fo obs.Factor
	r := ApplyRulesObs(XorN(Lit(0), AndN(Lit(0), Lit(1))), 8, &fo)
	if want := AndN(Lit(0), Not(Lit(1))); r.Key() != want.Key() {
		t.Fatalf("got %s, want %s", r, want)
	}
	if got, want := fo.Snapshot(), (obs.FactorStats{RuleA: 1, Passes: 2}); got != want {
		t.Errorf("counters = %+v, want %+v", got, want)
	}
}

func TestObsRuleBTrace(t *testing.T) {
	// X ⊕ Y ⊕ XY = X + Y: one rule (b) firing. Pass 1 rewrites, pass 2
	// confirms the fixpoint, so Passes is 2.
	var fo obs.Factor
	r := ApplyRulesObs(XorN(Lit(0), Lit(1), AndN(Lit(0), Lit(1))), 8, &fo)
	if want := OrN(Lit(0), Lit(1)); r.Key() != want.Key() {
		t.Fatalf("got %s, want %s", r, want)
	}
	if got, want := fo.Snapshot(), (obs.FactorStats{RuleB: 1, Passes: 2}); got != want {
		t.Errorf("counters = %+v, want %+v", got, want)
	}
}

func TestObsRuleCLiteralFormCountsAsRuleA(t *testing.T) {
	// AB ⊕ B̄ = A + B̄. XorN pulls the literal negation out front
	// (x ⊕ ȳ = ¬(x ⊕ y)), so the engine reaches this result through the
	// rule (a) block on AB ⊕ B — the trace must say rule (a), not (c).
	var fo obs.Factor
	r := ApplyRulesObs(XorN(AndN(Lit(0), Lit(1)), Not(Lit(1))), 8, &fo)
	if want := OrN(Lit(0), Not(Lit(1))); r.Key() != want.Key() {
		t.Fatalf("got %s, want %s", r, want)
	}
	if got, want := fo.Snapshot(), (obs.FactorStats{RuleA: 1, Passes: 2}); got != want {
		t.Errorf("counters = %+v, want %+v", got, want)
	}
}

func TestObsRuleCTrace(t *testing.T) {
	// A·X̄ ⊕ X = A + X with X = B+C: the complement factor X̄ is not a
	// literal, so XorN cannot normalize it away and the rule (c) block
	// itself fires.
	x := OrN(Lit(1), Lit(2))
	var fo obs.Factor
	r := ApplyRulesObs(XorN(AndN(Lit(0), Not(x)), x), 8, &fo)
	if want := OrN(Lit(0), Lit(1), Lit(2)); r.Key() != want.Key() {
		t.Fatalf("got %s, want %s", r, want)
	}
	if got, want := fo.Snapshot(), (obs.FactorStats{RuleC: 1, Passes: 2}); got != want {
		t.Errorf("counters = %+v, want %+v", got, want)
	}
}

func TestObsRuleDTrace(t *testing.T) {
	// AB ⊕ AC = A(B ⊕ C): one XOR-level common-factor extraction. The
	// recursive call on the quotient [B, C] finds no shared factor and
	// must not count.
	var fo obs.Factor
	r := factorXorKids([]*Expr{AndN(Lit(0), Lit(1)), AndN(Lit(0), Lit(2))}, &fo)
	if want := AndN(Lit(0), XorN(Lit(1), Lit(2))); r.Key() != want.Key() {
		t.Fatalf("got %s, want %s", r, want)
	}
	if got, want := fo.Snapshot(), (obs.FactorStats{RuleD: 1}); got != want {
		t.Errorf("counters = %+v, want %+v", got, want)
	}
}

func TestObsRuleETrace(t *testing.T) {
	// AB + AC + D = A(B+C) + D: one OR-level extraction; the recursive
	// calls on [B, C] and [D] find nothing.
	var fo obs.Factor
	r := factorOr([]*Expr{AndN(Lit(0), Lit(1)), AndN(Lit(0), Lit(2)), Lit(3)}, &fo)
	if want := OrN(AndN(Lit(0), OrN(Lit(1), Lit(2))), Lit(3)); r.Key() != want.Key() {
		t.Fatalf("got %s, want %s", r, want)
	}
	if got, want := fo.Snapshot(), (obs.FactorStats{RuleE: 1}); got != want {
		t.Errorf("counters = %+v, want %+v", got, want)
	}
}

func TestObsPassCap(t *testing.T) {
	// maxPasses caps the fixpoint loop, and the counter reports the
	// passes actually executed.
	var fo obs.Factor
	ApplyRulesObs(XorN(Lit(0), AndN(Lit(0), Lit(1))), 1, &fo)
	if got := fo.Snapshot().Passes; got != 1 {
		t.Errorf("capped passes = %d, want 1", got)
	}
}

func TestObsDivisorHitTrace(t *testing.T) {
	// ac ⊕ ad ⊕ bc ⊕ bd over {a,b,c,d}: the pair-XOR divisor a⊕b divides
	// the whole list with quotient {c, d} — coverage 2·2 = 4, exactly the
	// acceptance threshold, so the cube method records one divisor hit.
	l := cube.NewList(4)
	l.Add(cube.New(4, 0, 2))
	l.Add(cube.New(4, 0, 3))
	l.Add(cube.New(4, 1, 2))
	l.Add(cube.New(4, 1, 3))
	var fo obs.Factor
	e := CubeMethod(l, Options{Obs: &fo})
	for a := 0; a < 16; a++ {
		assign := cube.NewBitSet(4)
		lits := make([]bool, 4)
		for v := 0; v < 4; v++ {
			if a&(1<<v) != 0 {
				assign.Set(v)
				lits[v] = true
			}
		}
		if e.Eval(lits) != l.Eval(assign) {
			t.Fatalf("factored form differs from cube list at %04b", a)
		}
	}
	if got := fo.Snapshot().DivisorHits; got != 1 {
		t.Errorf("divisor hits = %d, want 1", got)
	}
}
