package factor

import "repro/internal/obs"

// ApplyRules rewrites the expression with the paper's Reduction rules
// (a)-(c) at XOR nodes and the OR-factoring rule (e), bottom-up, repeating
// whole passes until a fixpoint or maxPasses.
func ApplyRules(e *Expr, maxPasses int) *Expr {
	return ApplyRulesObs(e, maxPasses, nil)
}

// ApplyRulesObs is ApplyRules with rule-application counting. fo may be
// nil, which disables collection.
func ApplyRulesObs(e *Expr, maxPasses int, fo *obs.Factor) *Expr {
	for pass := 0; pass < maxPasses; pass++ {
		fo.Pass()
		memo := make(map[string]*Expr)
		ne := rewrite(e, memo, fo)
		if ne.key == e.key {
			return ne
		}
		e = ne
	}
	return e
}

func rewrite(e *Expr, memo map[string]*Expr, fo *obs.Factor) *Expr {
	if r, ok := memo[e.key]; ok {
		return r
	}
	var out *Expr
	switch e.Op {
	case OpConst0, OpConst1, OpLit:
		out = e
	case OpNot:
		inner := rewrite(e.Kids[0], memo, fo)
		if inner.Op == OpAnd {
			// De Morgan: a negated product reads (and costs) the same as
			// an OR of complements, the shape rule (c) produces.
			nots := make([]*Expr, len(inner.Kids))
			for i, k := range inner.Kids {
				nots[i] = Not(k)
			}
			out = OrN(nots...)
		} else {
			out = Not(inner)
		}
	case OpAnd:
		kids := rewriteKids(e.Kids, memo, fo)
		out = AndN(kids...)
	case OpOr:
		kids := rewriteKids(e.Kids, memo, fo)
		out = factorOr(kids, fo)
	case OpXor:
		kids := rewriteKids(e.Kids, memo, fo)
		out = reduceXor(kids, fo)
	}
	memo[e.key] = out
	return out
}

func rewriteKids(kids []*Expr, memo map[string]*Expr, fo *obs.Factor) []*Expr {
	out := make([]*Expr, len(kids))
	for i, k := range kids {
		out[i] = rewrite(k, memo, fo)
	}
	return out
}

// andFactors views an expression as a product of factors: the kids of an
// AND, or the expression itself.
func andFactors(e *Expr) []*Expr {
	if e.Op == OpAnd {
		return e.Kids
	}
	return []*Expr{e}
}

// factorSetContains reports whether every factor of a appears among the
// factors of b (by key), and a has strictly fewer factors.
func properFactorSubset(a, b []*Expr) bool {
	if len(a) >= len(b) {
		return false
	}
	keys := make(map[string]bool, len(b))
	for _, f := range b {
		keys[f.key] = true
	}
	for _, f := range a {
		if !keys[f.key] {
			return false
		}
	}
	return true
}

// removeFactors returns AndN of b's factors minus a's (by key).
func removeFactors(b, a []*Expr) *Expr {
	drop := make(map[string]bool, len(a))
	for _, f := range a {
		drop[f.key] = true
	}
	var rest []*Expr
	for _, f := range b {
		if !drop[f.key] {
			rest = append(rest, f)
		}
	}
	return AndN(rest...)
}

// reduceXor applies rules (b), (a), (c) to the operand list of an XOR
// until none fires, then extracts common factors across the remaining
// operands (rule (d) at expression level) and reassembles. Rules (a) and
// (c) are applied in generalized form: because XorN flattens nested XORs,
// a divisor that is itself an XOR appears spread across the operand list,
// and the rules must recognize it there.
func reduceXor(kids []*Expr, fo *obs.Factor) *Expr {
	// Reconstruct through XorN first so flattening/cancellation happen.
	x := XorN(kids...)
	neg := false
	if x.Op == OpNot {
		neg, x = true, x.Kids[0]
	}
	if x.Op != OpXor {
		if neg {
			return Not(x)
		}
		return x
	}
	kids = append([]*Expr(nil), x.Kids...)

	changed := true
	for changed && len(kids) >= 2 {
		changed = false
		byKey := make(map[string]int, len(kids))
		for i, k := range kids {
			byKey[k.key] = i
		}
		// Rule (b): X ⊕ Y ⊕ XY = X + Y.
	ruleB:
		for i := 0; i < len(kids) && !changed; i++ {
			for j := i + 1; j < len(kids); j++ {
				prod := AndN(kids[i], kids[j])
				if k, ok := byKey[prod.key]; ok && k != i && k != j {
					or := OrN(kids[i], kids[j])
					kids = removeIdx(kids, i, j, k)
					kids = append(kids, or)
					fo.RuleB()
					changed = true
					break ruleB
				}
			}
		}
		if changed {
			continue
		}
		// Rule (a), direct form: A ⊕ AB = A·B̄ where A is an operand.
	ruleA:
		for i := 0; i < len(kids) && !changed; i++ {
			fi := andFactors(kids[i])
			for j := 0; j < len(kids); j++ {
				if i == j {
					continue
				}
				fj := andFactors(kids[j])
				if properFactorSubset(fi, fj) {
					b := removeFactors(fj, fi)
					kids = removeIdx(kids, i, j)
					kids = append(kids, AndN(kids2expr(fi), Not(b)))
					fo.RuleA()
					changed = true
					break ruleA
				}
			}
		}
		if changed {
			continue
		}
		// Rule (a), spread form: G ⊕ G·B = G·B̄ where G is an XOR factor
		// of an operand and G's own operands all appear in the list
		// (flattening spread G out).
	ruleASpread:
		for j := 0; j < len(kids) && !changed; j++ {
			for _, f := range andFactors(kids[j]) {
				if f.Op != OpXor {
					continue
				}
				idx := make([]int, 0, len(f.Kids))
				ok := true
				for _, gk := range f.Kids {
					i, found := byKey[gk.key]
					if !found || i == j {
						ok = false
						break
					}
					idx = append(idx, i)
				}
				if !ok {
					continue
				}
				b := removeFactors(andFactors(kids[j]), []*Expr{f})
				idx = append(idx, j)
				kids = removeIdx(kids, idx...)
				kids = append(kids, AndN(f, Not(b)))
				fo.RuleA()
				changed = true
				break ruleASpread
			}
		}
		if changed {
			continue
		}
		// Rule (c): AB ⊕ B̄ = A + B̄, detected as an operand whose
		// complement is a factor of another operand (either phase).
	ruleC:
		for j := 0; j < len(kids) && !changed; j++ {
			for _, f := range andFactors(kids[j]) {
				comp := Not(f)
				i, found := byKey[comp.key]
				if !found || i == j {
					continue
				}
				a := removeFactors(andFactors(kids[j]), []*Expr{f})
				kids = removeIdx(kids, i, j)
				kids = append(kids, OrN(a, comp))
				fo.RuleC()
				changed = true
				break ruleC
			}
		}
	}
	out := factorXorKids(kids, fo)
	if neg {
		// Prefer the OR form of a negated product (De Morgan), matching
		// the shapes rule (c) produces in the paper.
		if out.Op == OpAnd {
			nots := make([]*Expr, len(out.Kids))
			for i, k := range out.Kids {
				nots[i] = Not(k)
			}
			return OrN(nots...)
		}
		out = Not(out)
	}
	return out
}

// factorXorKids applies rule (d) at the expression level: extract the most
// frequent common AND-factor among the XOR operands, recursively, so that
// AB ⊕ AC becomes A(B ⊕ C) even when A is a complex shared subexpression.
func factorXorKids(kids []*Expr, fo *obs.Factor) *Expr {
	x := XorN(kids...)
	neg := false
	if x.Op == OpNot {
		neg, x = true, x.Kids[0]
	}
	if x.Op != OpXor {
		if neg {
			return Not(x)
		}
		return x
	}
	kids = x.Kids
	count := map[string]int{}
	repr := map[string]*Expr{}
	for _, k := range kids {
		for _, f := range andFactors(k) {
			count[f.key]++
			repr[f.key] = f
		}
	}
	bestKey, bestC := "", 1
	for key, c := range count {
		if c > bestC || (c == bestC && bestKey != "" && key < bestKey) {
			bestKey, bestC = key, c
		}
	}
	var out *Expr
	if bestKey == "" || bestC < 2 {
		out = x
	} else {
		fo.RuleD()
		f := repr[bestKey]
		var with, without []*Expr
		for _, k := range kids {
			fs := andFactors(k)
			if containsKey(fs, bestKey) {
				with = append(with, removeFactors(fs, []*Expr{f}))
			} else {
				without = append(without, k)
			}
		}
		grouped := AndN(f, factorXorKids(with, fo))
		if len(without) == 0 {
			out = grouped
		} else {
			out = XorN(grouped, factorXorKids(without, fo))
		}
	}
	if neg {
		out = Not(out)
	}
	return out
}

func kids2expr(fs []*Expr) *Expr { return AndN(fs...) }

func containsKey(fs []*Expr, key string) bool {
	for _, f := range fs {
		if f.key == key {
			return true
		}
	}
	return false
}

// removeIdx returns kids without the listed indices (order preserved).
func removeIdx(kids []*Expr, idx ...int) []*Expr {
	drop := make(map[int]bool, len(idx))
	for _, i := range idx {
		drop[i] = true
	}
	out := kids[:0:0]
	for i, k := range kids {
		if !drop[i] {
			out = append(out, k)
		}
	}
	return out
}

// factorOr applies rule (e): extract the most frequent common factor among
// the OR operands, recursively. Operands sharing the factor are divided by
// it and grouped as factor·(OR of quotients).
func factorOr(kids []*Expr, fo *obs.Factor) *Expr {
	o := OrN(kids...)
	if o.Op != OpOr {
		return o
	}
	kids = o.Kids
	// Count factor keys across operands.
	count := map[string]int{}
	repr := map[string]*Expr{}
	for _, k := range kids {
		for _, f := range andFactors(k) {
			count[f.key]++
			repr[f.key] = f
		}
	}
	bestKey, bestC := "", 1
	for key, c := range count {
		if c > bestC || (c == bestC && bestKey != "" && key < bestKey) {
			bestKey, bestC = key, c
		}
	}
	if bestKey == "" || bestC < 2 {
		return o
	}
	fo.RuleE()
	f := repr[bestKey]
	var with, without []*Expr
	for _, k := range kids {
		fs := andFactors(k)
		if containsKey(fs, bestKey) {
			with = append(with, removeFactors(fs, []*Expr{f}))
		} else {
			without = append(without, k)
		}
	}
	grouped := AndN(f, factorOr(with, fo))
	if len(without) == 0 {
		return grouped
	}
	rest := factorOr(without, fo)
	return OrN(grouped, rest)
}
