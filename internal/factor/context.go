package factor

import (
	"sort"

	"repro/internal/cube"
)

// Context carries factoring state shared across the outputs of a
// multi-output function: a memo of factored sub-ESOPs (same cube list ⇒
// same expression, hence shared gates at emission) and a registry of
// factored subfunctions used as multi-cube divisors. The registry is what
// lets the flow discover, e.g., that an adder's carry c_{k} divides both
// s_{k+1} and c_{k+1} — the sharing the paper otherwise obtains with SIS
// resub.
type Context struct {
	opt      Options
	memo     map[string]*Expr
	registry []registryEntry
}

type registryEntry struct {
	list *cube.List
	expr *Expr
}

// registryCap bounds how many subfunctions are kept as divisor candidates.
const registryCap = 256

// maxDivisorCubes bounds divisor size; larger divisors rarely divide
// anything and cost O(|F|·|D|) per attempt.
const maxDivisorCubes = 64

// NewContext returns a fresh factoring context.
func NewContext(opt Options) *Context {
	return &Context{opt: opt, memo: make(map[string]*Expr)}
}

// Factor factors one output's FPRM cube list, reusing subfunctions already
// factored for previous outputs through this context.
func (cx *Context) Factor(l *cube.List) *Expr {
	e := cx.factorSub(l)
	if cx.opt.ApplyRules {
		e = ApplyRulesObs(e, cx.opt.maxPasses(), cx.opt.Obs)
	}
	return e
}

// factorSub splits into disjoint-support groups (Step 2), factors each
// (memoized), and joins with a balanced XOR tree (Step 5).
func (cx *Context) factorSub(l *cube.List) *Expr {
	if l.IsZero() {
		return Zero()
	}
	groups := l.DisjointSupportGroups()
	exprs := make([]*Expr, len(groups))
	for i, g := range groups {
		exprs[i] = cx.factorGroup(g)
	}
	return balancedXor(exprs)
}

// factorGroup factors one support-connected cube group: first by trying
// the registered multi-cube divisors (cross-output reuse), then by the
// greedy maximal-common-cube division of rule (d).
func (cx *Context) factorGroup(l *cube.List) *Expr {
	switch l.Len() {
	case 0:
		return Zero()
	case 1:
		return cubeExpr(l.Cubes[0])
	}
	key := l.Key()
	if e, ok := cx.memo[key]; ok {
		return e
	}
	cx.opt.Budget.Step("factor")
	e := cx.factorGroupUncached(l)
	if cx.opt.ApplyRules {
		e = ApplyRulesObs(e, cx.opt.maxPasses(), cx.opt.Obs)
	}
	cx.memo[key] = e
	if len(cx.registry) < registryCap && l.Len() >= 2 && l.Len() <= maxDivisorCubes {
		cx.registry = append(cx.registry, registryEntry{list: l.Clone(), expr: e})
	}
	return e
}

func (cx *Context) factorGroupUncached(l *cube.List) *Expr {
	// Try registered divisors, best coverage first.
	var bestQ, bestR *cube.List
	var bestExpr *Expr
	var bestList *cube.List
	bestCover := 0
	consider := func(d *cube.List, e *Expr) {
		if d.Len() >= l.Len() || !d.Support().SubsetOf(l.Support()) {
			return
		}
		q, r := l.DivideList(d)
		if q.Len() == 0 {
			return
		}
		cover := d.Len() * q.Len()
		if cover > bestCover {
			bestCover, bestExpr, bestList, bestQ, bestR = cover, e, d, q, r
		}
	}
	for i := range cx.registry {
		consider(cx.registry[i].list, cx.registry[i].expr)
	}
	// Pair-XOR divisors (x_i ⊕ x_j) over the most frequent literals: the
	// classic decomposition of symmetric functions and of adder carries
	// (ab ⊕ ac ⊕ bc = ab ⊕ c(a⊕b)).
	counts := l.LiteralCounts()
	type lc struct{ v, c int }
	var tops []lc
	for v, c := range counts {
		if c >= 2 {
			tops = append(tops, lc{v, c})
		}
	}
	sort.Slice(tops, func(a, b int) bool {
		if tops[a].c != tops[b].c {
			return tops[a].c > tops[b].c
		}
		return tops[a].v < tops[b].v
	})
	if len(tops) > 8 {
		tops = tops[:8]
	}
	for i := 0; i < len(tops); i++ {
		for j := i + 1; j < len(tops); j++ {
			d := cube.NewList(l.NumVars)
			d.Add(cube.New(l.NumVars, tops[i].v))
			d.Add(cube.New(l.NumVars, tops[j].v))
			consider(d, XorN(Lit(tops[i].v), Lit(tops[j].v)))
		}
	}
	if bestExpr != nil && bestCover >= 4 {
		cx.opt.Obs.DivisorHit()
		if len(cx.registry) < registryCap {
			cx.registry = append(cx.registry, registryEntry{list: bestList.Clone(), expr: bestExpr})
		}
		return XorN(AndN(bestExpr, cx.factorSub(bestQ)), cx.factorSub(bestR))
	}
	bestV, bestC := -1, 1
	for v, c := range counts {
		if c > bestC {
			bestV, bestC = v, c
		}
	}
	if bestV < 0 {
		// No variable shared by two cubes: XOR the cubes directly.
		exprs := make([]*Expr, l.Len())
		for i, c := range l.Cubes {
			exprs[i] = cubeExpr(c)
		}
		return balancedXor(exprs)
	}
	// Widen the divisor: intersect all cubes containing bestV (rule d).
	divisor := cube.Cube{}
	for _, c := range l.Cubes {
		if c.Has(bestV) {
			if divisor.Vars == nil {
				divisor = c.Clone()
			} else {
				divisor.Vars.IntersectWith(c.Vars)
			}
		}
	}
	q, r := l.DivideCube(divisor)
	return XorN(AndN(cubeExpr(divisor), cx.factorSub(q)), cx.factorSub(r))
}
