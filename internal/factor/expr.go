// Package factor implements the algebraic factorization of FPRM forms from
// Section 3 of the paper: the cube method (Method 1), the OFDD-driven
// method (Method 2), and the rewrite rules
//
//	Reduction:     (a) A ⊕ AB = A·B̄
//	               (b) AB ⊕ AC ⊕ ABC = A(B+C)   (as  X ⊕ Y ⊕ XY = X+Y)
//	               (c) AB ⊕ B̄ = A + B̄
//	Factorization: (d) AB ⊕ AC ⊕ … = A(B ⊕ C ⊕ …)
//	               (e) AB + AC + … = A(B + C + …)
//
// Factored results are expression DAGs over positive literals; polarity is
// applied when the expression is emitted into a gate network.
package factor

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates expression node kinds.
type Op int

// Expression operators.
const (
	OpConst0 Op = iota
	OpConst1
	OpLit // a literal in FPRM space (polarity applied at emission)
	OpNot
	OpAnd
	OpOr
	OpXor
)

// Expr is a node of an expression DAG. Exprs are immutable after
// construction; shared subexpressions are shared pointers.
type Expr struct {
	Op   Op
	Var  int // for OpLit
	Kids []*Expr
	key  string
}

var (
	constZero = &Expr{Op: OpConst0, key: "0"}
	constOne  = &Expr{Op: OpConst1, key: "1"}
)

// Zero returns the constant-0 expression.
func Zero() *Expr { return constZero }

// One returns the constant-1 expression.
func One() *Expr { return constOne }

// Lit returns the expression for literal v.
func Lit(v int) *Expr {
	return &Expr{Op: OpLit, Var: v, key: fmt.Sprintf("v%d", v)}
}

// Key returns a canonical string identifying the expression structurally
// (commutative operators have sorted children).
func (e *Expr) Key() string { return e.key }

func mkKey(op string, kids []*Expr) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.key
	}
	return op + "(" + strings.Join(parts, ",") + ")"
}

func sortKids(kids []*Expr) {
	sort.Slice(kids, func(i, j int) bool { return kids[i].key < kids[j].key })
}

// Not returns the complement of e, simplifying double negation and
// constants.
func Not(e *Expr) *Expr {
	switch e.Op {
	case OpConst0:
		return constOne
	case OpConst1:
		return constZero
	case OpNot:
		return e.Kids[0]
	}
	return &Expr{Op: OpNot, Kids: []*Expr{e}, key: "!" + e.key}
}

// AndN returns the conjunction of the operands, flattening nested ANDs,
// removing duplicates and identity elements, and detecting x·x̄ = 0.
func AndN(kids ...*Expr) *Expr {
	var flat []*Expr
	seen := map[string]bool{}
	var add func(*Expr) bool // returns false when result is constant 0
	add = func(k *Expr) bool {
		switch k.Op {
		case OpConst0:
			return false
		case OpConst1:
			return true
		case OpAnd:
			for _, kk := range k.Kids {
				if !add(kk) {
					return false
				}
			}
			return true
		}
		if seen[k.key] {
			return true
		}
		if k.Op == OpNot && seen[k.Kids[0].key] || seen["!"+k.key] {
			return false // x · x̄
		}
		seen[k.key] = true
		flat = append(flat, k)
		return true
	}
	for _, k := range kids {
		if !add(k) {
			return constZero
		}
	}
	switch len(flat) {
	case 0:
		return constOne
	case 1:
		return flat[0]
	}
	sortKids(flat)
	return &Expr{Op: OpAnd, Kids: flat, key: mkKey("&", flat)}
}

// OrN returns the disjunction of the operands with flattening, duplicate
// removal and x + x̄ = 1 detection.
func OrN(kids ...*Expr) *Expr {
	var flat []*Expr
	seen := map[string]bool{}
	var add func(*Expr) bool // returns false when result is constant 1
	add = func(k *Expr) bool {
		switch k.Op {
		case OpConst1:
			return false
		case OpConst0:
			return true
		case OpOr:
			for _, kk := range k.Kids {
				if !add(kk) {
					return false
				}
			}
			return true
		}
		if seen[k.key] {
			return true
		}
		if k.Op == OpNot && seen[k.Kids[0].key] || seen["!"+k.key] {
			return false
		}
		seen[k.key] = true
		flat = append(flat, k)
		return true
	}
	for _, k := range kids {
		if !add(k) {
			return constOne
		}
	}
	switch len(flat) {
	case 0:
		return constZero
	case 1:
		return flat[0]
	}
	sortKids(flat)
	return &Expr{Op: OpOr, Kids: flat, key: mkKey("|", flat)}
}

// XorN returns the exclusive-or of the operands, flattening nested XORs,
// cancelling duplicate operands pairwise and folding constants. A trailing
// complement is represented by wrapping in Not.
func XorN(kids ...*Expr) *Expr {
	invert := false
	count := map[string]int{}
	repr := map[string]*Expr{}
	var add func(*Expr)
	add = func(k *Expr) {
		switch k.Op {
		case OpConst0:
			return
		case OpConst1:
			invert = !invert
			return
		case OpNot:
			invert = !invert
			add(k.Kids[0])
			return
		case OpXor:
			for _, kk := range k.Kids {
				add(kk)
			}
			return
		}
		count[k.key]++
		repr[k.key] = k
	}
	for _, k := range kids {
		add(k)
	}
	var flat []*Expr
	for key, c := range count {
		if c%2 == 1 {
			flat = append(flat, repr[key])
		}
	}
	var out *Expr
	switch len(flat) {
	case 0:
		out = constZero
	case 1:
		out = flat[0]
	default:
		sortKids(flat)
		out = &Expr{Op: OpXor, Kids: flat, key: mkKey("^", flat)}
	}
	if invert {
		out = Not(out)
	}
	return out
}

// Literals returns the number of literal occurrences in the expression
// read as a tree (shared DAG nodes are counted at each use, matching the
// literal count of the flattened factored form).
func (e *Expr) Literals() int {
	if e.Op == OpLit {
		return 1
	}
	n := 0
	for _, k := range e.Kids {
		n += k.Literals()
	}
	return n
}

// Eval evaluates the expression on literal values (lits[v] is the value of
// literal v).
func (e *Expr) Eval(lits []bool) bool {
	switch e.Op {
	case OpConst0:
		return false
	case OpConst1:
		return true
	case OpLit:
		return lits[e.Var]
	case OpNot:
		return !e.Kids[0].Eval(lits)
	case OpAnd:
		for _, k := range e.Kids {
			if !k.Eval(lits) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range e.Kids {
			if k.Eval(lits) {
				return true
			}
		}
		return false
	case OpXor:
		v := false
		for _, k := range e.Kids {
			if k.Eval(lits) {
				v = !v
			}
		}
		return v
	}
	// Programmer invariant: Op is a closed enum fully covered above; a new
	// Op value without an Eval case is a bug in this package.
	panic("factor: bad op")
}

// String renders the expression with x<i> literals.
func (e *Expr) String() string {
	switch e.Op {
	case OpConst0:
		return "0"
	case OpConst1:
		return "1"
	case OpLit:
		return fmt.Sprintf("x%d", e.Var)
	case OpNot:
		return "!" + e.Kids[0].String()
	}
	var op string
	switch e.Op {
	case OpAnd:
		op = "*"
	case OpOr:
		op = " + "
	case OpXor:
		op = " ^ "
	}
	parts := make([]string, len(e.Kids))
	for i, k := range e.Kids {
		s := k.String()
		if k.Op == OpAnd && e.Op != OpXor || k.Op == OpOr || k.Op == OpXor {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, op)
}
