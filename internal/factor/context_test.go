package factor

import (
	"testing"

	"repro/internal/cube"
)

// TestRegistryReuseAcrossOutputs: factoring the adder chain c1, c2 through
// one context must reuse c1's expression inside c2 (same pointer/key).
func TestRegistryReuseAcrossOutputs(t *testing.T) {
	n := 7 // a1 b1 cin a2 b2 … (indices 0,1,2 for stage 1; 3,4 for stage 2)
	c1 := cube.NewList(n)
	c1.Add(cube.New(n, 0, 1))
	c1.Add(cube.New(n, 0, 2))
	c1.Add(cube.New(n, 1, 2))
	// c2 = a2b2 ⊕ a2·c1 ⊕ b2·c1 expanded into cubes.
	c2 := cube.NewList(n)
	c2.Add(cube.New(n, 3, 4))
	for _, base := range []int{3, 4} {
		for _, cc := range c1.Cubes {
			nc := cc.Clone()
			nc.Vars.Set(base)
			c2.Add(nc)
		}
	}
	cx := NewContext(DefaultOptions())
	e1 := cx.Factor(c1)
	e2 := cx.Factor(c2)
	// e2 must contain e1's key as a subexpression.
	if !containsSubexpr(e2, e1.Key()) {
		t.Errorf("c2 does not reuse c1's expression:\n c1=%s\n c2=%s", e1, e2)
	}
}

func containsSubexpr(e *Expr, key string) bool {
	if e.Key() == key {
		return true
	}
	for _, k := range e.Kids {
		if containsSubexpr(k, key) {
			return true
		}
	}
	return false
}

// TestPairXorDivisor: the carry cubes ab ⊕ ac ⊕ bc must factor through
// the (a ⊕ b) pair divisor into ab ⊕ c(a⊕b) (4 literals), not stay flat.
func TestPairXorDivisor(t *testing.T) {
	l := cube.NewList(3)
	l.Add(cube.New(3, 0, 1))
	l.Add(cube.New(3, 0, 2))
	l.Add(cube.New(3, 1, 2))
	e := CubeMethod(l, Options{ApplyRules: false})
	// ab ⊕ c(a⊕b): 5 literals, with a pair-XOR divisor as an AND factor.
	if e.Literals() > 5 {
		t.Errorf("carry factoring uses %d literals (%s), want ≤ 5 via a pair-XOR divisor", e.Literals(), e)
	}
	if !hasPairXorFactor(e) {
		t.Errorf("no pair-XOR divisor in %s", e)
	}
	// Function check.
	for a := 0; a < 8; a++ {
		lits := make([]bool, 3)
		assign := cube.NewBitSet(3)
		for v := 0; v < 3; v++ {
			if a&(1<<v) != 0 {
				lits[v] = true
				assign.Set(v)
			}
		}
		if e.Eval(lits) != l.Eval(assign) {
			t.Fatalf("function broken at %03b", a)
		}
	}
}

// TestMemoDeterminism: the same list factors to the same expression
// through separate contexts (key-for-key).
func TestMemoDeterminism(t *testing.T) {
	mk := func() *cube.List {
		l := cube.NewList(6)
		l.Add(cube.New(6, 0, 1))
		l.Add(cube.New(6, 0, 2, 3))
		l.Add(cube.New(6, 1, 2, 3))
		l.Add(cube.New(6, 4, 5))
		return l
	}
	e1 := NewContext(DefaultOptions()).Factor(mk())
	e2 := NewContext(DefaultOptions()).Factor(mk())
	if e1.Key() != e2.Key() {
		t.Errorf("non-deterministic factoring:\n %s\n %s", e1, e2)
	}
}

// TestOFDDContextSharing: two functions sharing an OFDD subgraph must get
// the same subexpression through a shared context.
func TestOFDDContextSharing(t *testing.T) {
	// Covered structurally: identical cube lists through one OFDD manager
	// collapse to the same node, hence the same memoized expression.
	l := cube.NewList(4)
	l.Add(cube.New(4, 0, 1))
	l.Add(cube.New(4, 2))
	// Reuse via the memo: factoring the same list twice must return the
	// identical expression pointer.
	cx := NewContext(DefaultOptions())
	e1 := cx.Factor(l)
	e2 := cx.Factor(l.Clone())
	if e1.Key() != e2.Key() {
		t.Error("context memo did not return an identical expression")
	}
}

// hasPairXorFactor reports whether some AND node has a 2-literal XOR kid.
func hasPairXorFactor(e *Expr) bool {
	if e.Op == OpXor && len(e.Kids) == 2 && e.Kids[0].Op == OpLit && e.Kids[1].Op == OpLit {
		return true
	}
	for _, k := range e.Kids {
		if hasPairXorFactor(k) {
			return true
		}
	}
	return false
}
