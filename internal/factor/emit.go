package factor

import (
	"repro/internal/cube"
	"repro/internal/network"
)

// Emitter turns expression DAGs into gates of a network, applying the FPRM
// polarity to literals and sharing structurally identical subexpressions
// across all emitted expressions (the cross-output sharing the paper
// obtains with SIS resub). The network itself hash-conses gates at
// construction, so the same (type, fanins) gate is never emitted twice —
// across expressions, outputs, and anything else already in the network —
// and XOR trees prefer operand pairs whose XOR gate already exists
// (network.FindGate, the former hasGate linear probe).
type Emitter struct {
	Net      *network.Network
	PIGates  []int  // gate ID of each variable's primary input
	Polarity []bool // literal polarity per variable (nil = all positive)

	memo     map[string]int
	supCache map[string]cube.BitSet
}

// NewEmitter returns an emitter into net whose variable v literal is
// piGates[v] (positive polarity) or its complement (negative).
func NewEmitter(net *network.Network, piGates []int, polarity []bool) *Emitter {
	return &Emitter{
		Net: net, PIGates: piGates, Polarity: polarity,
		memo:     make(map[string]int),
		supCache: make(map[string]cube.BitSet),
	}
}

// Emit adds gates computing e and returns the driving gate ID.
func (em *Emitter) Emit(e *Expr) int {
	if id, ok := em.memo[e.key]; ok {
		return id
	}
	var id int
	switch e.Op {
	case OpConst0:
		id = em.Net.AddGate(network.Const0)
	case OpConst1:
		id = em.Net.AddGate(network.Const1)
	case OpLit:
		id = em.PIGates[e.Var]
		if em.Polarity != nil && !em.Polarity[e.Var] {
			id = em.Net.AddGate(network.Not, id)
		}
	case OpNot:
		id = em.Net.AddGate(network.Not, em.Emit(e.Kids[0]))
	case OpAnd, OpOr:
		fanins := make([]int, len(e.Kids))
		for i, k := range e.Kids {
			fanins[i] = em.Emit(k)
		}
		t := network.And
		if e.Op == OpOr {
			t = network.Or
		}
		// Keep gates 2-input: the paper's cost model and the redundancy
		// analysis of Section 4 are formulated over 2-input gates.
		id = em.Net.BalancedTree(t, fanins)
	case OpXor:
		id = em.emitXor(e)
	}
	em.memo[e.key] = id
	return id
}

// emitXor builds the 2-input XOR tree for an n-ary XOR expression with
// support-aware operand pairing: operands whose supports nest (the
// signature of a rule (a)/(c) reduction opportunity) are paired first,
// then overlapping operands, and support-disjoint groups are joined by a
// balanced binary tree — the paper's Step 5 — except that pairs whose XOR
// gate already exists in the network are always taken first (reusing, for
// example, an adder's a⊕b between its sum and carry logic). This ordering
// is what makes the Section 4 redundancy analysis find its reducible XOR
// gates.
func (em *Emitter) emitXor(e *Expr) int {
	items := make([]xorItem, len(e.Kids))
	for i, k := range e.Kids {
		items[i] = xorItem{id: em.Emit(k), sup: em.support(k)}
	}
	// Union-find support-connected components.
	parent := make([]int, len(items))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			if items[i].sup.Intersects(items[j].sup) {
				parent[find(j)] = find(i)
			}
		}
	}
	comps := make(map[int][]xorItem)
	var order []int
	for i := range items {
		r := find(i)
		if _, ok := comps[r]; !ok {
			order = append(order, r)
		}
		comps[r] = append(comps[r], items[i])
	}
	var roots []xorItem
	for _, r := range order {
		group := comps[r]
		// Greedy pairing inside the component.
		for len(group) > 1 {
			bi, bj, bestScore := 0, 1, -1
			for i := range group {
				for j := i + 1; j < len(group); j++ {
					si, sj := group[i].sup, group[j].sup
					score := 0
					if _, ok := em.Net.FindGate(network.Xor, group[i].id, group[j].id); ok {
						score += 1 << 21 // the pair gate already exists
					}
					if si.SubsetOf(sj) || sj.SubsetOf(si) {
						score += 1 << 20 // reduction-shaped pair
					}
					inter := si.Clone()
					inter.IntersectWith(sj)
					score += inter.Count()
					if score > bestScore {
						bi, bj, bestScore = i, j, score
					}
				}
			}
			group = mergePair(em, group, bi, bj)
		}
		roots = append(roots, group[0])
	}
	// Join disjoint components, taking already-existing pairs first, the
	// rest as a balanced tree.
	for len(roots) > 1 {
		merged := false
		for i := 0; i < len(roots) && !merged; i++ {
			for j := i + 1; j < len(roots); j++ {
				if _, ok := em.Net.FindGate(network.Xor, roots[i].id, roots[j].id); ok {
					roots = mergePair(em, roots, i, j)
					merged = true
					break
				}
			}
		}
		if !merged {
			// One balanced level.
			var next []xorItem
			for i := 0; i+1 < len(roots); i += 2 {
				next = append(next, em.pairItems(roots[i], roots[i+1]))
			}
			if len(roots)%2 == 1 {
				next = append(next, roots[len(roots)-1])
			}
			roots = next
		}
	}
	return roots[0].id
}

// xorItem is an operand of an XOR tree under construction.
type xorItem struct {
	id  int
	sup cube.BitSet
}

func (em *Emitter) pairItems(a, b xorItem) xorItem {
	s := a.sup.Clone()
	s.UnionWith(b.sup)
	return xorItem{id: em.Net.AddGate(network.Xor, a.id, b.id), sup: s}
}

func mergePair(em *Emitter, group []xorItem, bi, bj int) []xorItem {
	merged := em.pairItems(group[bi], group[bj])
	ng := group[:0:0]
	for k := range group {
		if k != bi && k != bj {
			ng = append(ng, group[k])
		}
	}
	return append(ng, merged)
}

// support returns the variable support of an expression, memoized.
func (em *Emitter) support(e *Expr) cube.BitSet {
	if s, ok := em.supCache[e.key]; ok {
		return s
	}
	s := cube.NewBitSet(len(em.PIGates))
	if e.Op == OpLit {
		s.Set(e.Var)
	}
	for _, k := range e.Kids {
		s.UnionWith(em.support(k))
	}
	em.supCache[e.key] = s
	return s
}
