package factor

import (
	"repro/internal/budget"
	"repro/internal/cube"
	"repro/internal/obs"
	"repro/internal/ofdd"
)

// Options control factorization.
type Options struct {
	// ApplyRules enables the Reduction rules (a)-(c) and OR factoring
	// rule (e) as expression rewrites after algebraic factorization.
	// The paper applies them iteratively until fixpoint.
	ApplyRules bool
	// MaxRulePasses bounds the fixpoint iteration (0 = default 8).
	MaxRulePasses int
	// Budget, when non-nil, meters the factoring recursion: each group
	// factorization and OFDD node visit counts a step, and exhaustion
	// unwinds with panic(*budget.Err) to be recovered by budget.Guard in
	// the caller (see package budget).
	Budget *budget.Budget
	// Obs, when non-nil, counts rule applications (reductions (a)-(c),
	// factorizations (d)/(e), rewrite passes, divisor-registry hits).
	// Nil disables collection at the cost of a nil check per probe.
	Obs *obs.Factor
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options { return Options{ApplyRules: true} }

// CubeMethod implements Method 1 of Section 3: factor the FPRM cube list
// directly. Steps: (2) split cubes into groups with disjoint support,
// (3/4) factor each group recursively by dividing out maximal common
// cubes (rule d), (5) join group subnetworks with a balanced binary XOR
// tree. Reduction rules are applied afterwards when enabled.
//
// For multi-output functions, create one Context and call its Factor
// method per output to share subfunctions across outputs.
func CubeMethod(l *cube.List, opt Options) *Expr {
	return NewContext(opt).Factor(l)
}

func (o Options) maxPasses() int {
	if o.MaxRulePasses > 0 {
		return o.MaxRulePasses
	}
	return 8
}

// balancedXor joins expressions with a balanced binary XOR tree (the
// shape the paper prescribes for Step 5).
func balancedXor(exprs []*Expr) *Expr {
	// Filter constants first: 1 toggles an inversion, 0 disappears.
	invert := false
	var live []*Expr
	for _, e := range exprs {
		switch e.Op {
		case OpConst0:
		case OpConst1:
			invert = !invert
		default:
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		if invert {
			return One()
		}
		return Zero()
	}
	for len(live) > 1 {
		var next []*Expr
		for i := 0; i+1 < len(live); i += 2 {
			next = append(next, XorN(live[i], live[i+1]))
		}
		if len(live)%2 == 1 {
			next = append(next, live[len(live)-1])
		}
		live = next
	}
	if invert {
		return Not(live[0])
	}
	return live[0]
}

func cubeExpr(c cube.Cube) *Expr {
	if c.IsOne() {
		return One()
	}
	lits := make([]*Expr, 0, c.Size())
	c.Vars.ForEach(func(v int) { lits = append(lits, Lit(v)) })
	return AndN(lits...)
}

// OFDDContext factors multiple functions over one OFDD manager with a
// shared node→expression memo, so OFDD nodes shared between outputs
// become shared subexpressions (and shared gates after emission).
type OFDDContext struct {
	M    *ofdd.Manager
	opt  Options
	memo map[ofdd.Ref]*Expr
}

// NewOFDDContext returns a factoring context over the manager.
func NewOFDDContext(m *ofdd.Manager, opt Options) *OFDDContext {
	return &OFDDContext{M: m, opt: opt, memo: make(map[ofdd.Ref]*Expr)}
}

// Factor implements Method 2 of Section 3 for one function: traverse the
// OFDD and build the initial factored network directly from the Davio
// expansions, sharing subexpressions for shared nodes; then apply the
// rules.
func (cx *OFDDContext) Factor(f ofdd.Ref) *Expr {
	var rec func(ofdd.Ref) *Expr
	rec = func(f ofdd.Ref) *Expr {
		if f == ofdd.Zero {
			return Zero()
		}
		if f == ofdd.One {
			return One()
		}
		if e, ok := cx.memo[f]; ok {
			return e
		}
		cx.opt.Budget.Step("factor")
		v := cx.M.TopVar(f)
		lo := rec(cx.M.Lo(f))
		hi := rec(cx.M.Hi(f))
		e := XorN(lo, AndN(Lit(v), hi))
		cx.memo[f] = e
		return e
	}
	e := rec(f)
	if cx.opt.ApplyRules {
		e = ApplyRulesObs(e, cx.opt.maxPasses(), cx.opt.Obs)
	}
	return e
}

// OFDDMethod is the single-function convenience form of OFDDContext.
func OFDDMethod(m *ofdd.Manager, f ofdd.Ref, opt Options) *Expr {
	return NewOFDDContext(m, opt).Factor(f)
}
