package factor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/ofdd"
)

func TestExprConstruction(t *testing.T) {
	a, b := Lit(0), Lit(1)
	if XorN(a, a) != Zero() {
		t.Error("a ^ a should be 0")
	}
	if AndN(a, One()).Key() != a.Key() {
		t.Error("a * 1 should be a")
	}
	if AndN(a, Zero()) != Zero() {
		t.Error("a * 0 should be 0")
	}
	if OrN(a, One()) != One() {
		t.Error("a + 1 should be 1")
	}
	if AndN(a, Not(a)) != Zero() {
		t.Error("a * !a should be 0")
	}
	if OrN(a, Not(a)) != One() {
		t.Error("a + !a should be 1")
	}
	if Not(Not(a)) != a {
		t.Error("double negation should cancel")
	}
	// Commutativity via canonical keys.
	if AndN(a, b).Key() != AndN(b, a).Key() {
		t.Error("AND not commutative in keys")
	}
	// Flattening.
	if XorN(a, XorN(b, Lit(2))).Key() != XorN(a, b, Lit(2)).Key() {
		t.Error("XOR not flattened")
	}
	// x ^ !y with x==y gives 1.
	if XorN(a, Not(a)) != One() {
		t.Error("a ^ !a should be 1")
	}
}

func evalExpr(e *Expr, n, a int) bool {
	lits := make([]bool, n)
	for v := 0; v < n; v++ {
		lits[v] = a&(1<<v) != 0
	}
	return e.Eval(lits)
}

func TestRuleA(t *testing.T) {
	// A ⊕ AB = A·B̄ with A=x0, B=x1.
	e := XorN(Lit(0), AndN(Lit(0), Lit(1)))
	r := ApplyRules(e, 8)
	want := AndN(Lit(0), Not(Lit(1)))
	if r.Key() != want.Key() {
		t.Errorf("rule (a): got %s, want %s", r, want)
	}
}

func TestRuleB(t *testing.T) {
	// AB ⊕ AC ⊕ ABC = A(B+C) with A=x0, B=x1, C=x2.
	e := XorN(AndN(Lit(0), Lit(1)), AndN(Lit(0), Lit(2)), AndN(Lit(0), Lit(1), Lit(2)))
	r := ApplyRules(e, 8)
	want := AndN(Lit(0), OrN(Lit(1), Lit(2)))
	if r.Key() != want.Key() {
		t.Errorf("rule (b)+(e): got %s, want %s", r, want)
	}
}

func TestRuleC(t *testing.T) {
	// AB ⊕ B̄ = A + B̄ with A=x0, B=x1.
	e := XorN(AndN(Lit(0), Lit(1)), Not(Lit(1)))
	r := ApplyRules(e, 8)
	want := OrN(Lit(0), Not(Lit(1)))
	if r.Key() != want.Key() {
		t.Errorf("rule (c): got %s, want %s", r, want)
	}
}

func TestPaperReductionSequence(t *testing.T) {
	// Section 4: (B ⊕ C) ⊕ BC = B + C.
	e := XorN(XorN(Lit(0), Lit(1)), AndN(Lit(0), Lit(1)))
	r := ApplyRules(e, 8)
	want := OrN(Lit(0), Lit(1))
	if r.Key() != want.Key() {
		t.Errorf("(B⊕C)⊕BC: got %s, want %s", r, want)
	}
}

func TestRuleEFactorsCommonCube(t *testing.T) {
	// AB + AC + D → A(B+C) + D.
	e := factorOr([]*Expr{AndN(Lit(0), Lit(1)), AndN(Lit(0), Lit(2)), Lit(3)}, nil)
	want := OrN(AndN(Lit(0), OrN(Lit(1), Lit(2))), Lit(3))
	if e.Key() != want.Key() {
		t.Errorf("rule (e): got %s, want %s", e, want)
	}
}

// Property: ApplyRules preserves the function.
func TestQuickRulesPreserveFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		e := randomExpr(rng, n, 3)
		r := ApplyRules(e, 8)
		for a := 0; a < 1<<n; a++ {
			if evalExpr(e, n, a) != evalExpr(r, n, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func randomExpr(rng *rand.Rand, nVars, depth int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return Lit(rng.Intn(nVars))
	}
	k := 2 + rng.Intn(2)
	kids := make([]*Expr, k)
	for i := range kids {
		kids[i] = randomExpr(rng, nVars, depth-1)
	}
	switch rng.Intn(4) {
	case 0:
		return AndN(kids...)
	case 1:
		return OrN(kids...)
	case 2:
		return XorN(kids...)
	default:
		return Not(kids[0])
	}
}

func randomESOP(rng *rand.Rand, n, maxCubes int) *cube.List {
	l := cube.NewList(n)
	for i := 0; i < 1+rng.Intn(maxCubes); i++ {
		c := cube.One(n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 1 {
				c.Vars.Set(v)
			}
		}
		l.Add(c)
	}
	l.Canonicalize()
	return l
}

// Property: CubeMethod produces an expression equal to the ESOP.
func TestQuickCubeMethodCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		l := randomESOP(rng, n, 10)
		for _, rules := range []bool{false, true} {
			e := CubeMethod(l, Options{ApplyRules: rules})
			for a := 0; a < 1<<n; a++ {
				assign := cube.NewBitSet(n)
				for v := 0; v < n; v++ {
					if a&(1<<v) != 0 {
						assign.Set(v)
					}
				}
				if evalExpr(e, n, a) != l.Eval(assign) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: OFDDMethod produces an expression equal to the OFDD function.
func TestQuickOFDDMethodCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		l := randomESOP(rng, n, 8)
		m := ofdd.New(n, nil) // positive polarity: literal space = var space
		g := m.FromCubes(l)
		e := OFDDMethod(m, g, DefaultOptions())
		for a := 0; a < 1<<n; a++ {
			assign := cube.NewBitSet(n)
			for v := 0; v < n; v++ {
				if a&(1<<v) != 0 {
					assign.Set(v)
				}
			}
			if evalExpr(e, n, a) != m.Eval(g, assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCubeMethodZ4mlOutput(t *testing.T) {
	// x26 = x3 ⊕ x6 ⊕ x1x4 ⊕ x1x7 ⊕ x4x7 (0-based: 2, 5, {0,3}, {0,6}, {3,6}).
	l := cube.NewList(7)
	l.Add(cube.New(7, 2))
	l.Add(cube.New(7, 5))
	l.Add(cube.New(7, 0, 3))
	l.Add(cube.New(7, 0, 6))
	l.Add(cube.New(7, 3, 6))
	e := CubeMethod(l, DefaultOptions())
	// Function preserved.
	for a := 0; a < 1<<7; a++ {
		assign := cube.NewBitSet(7)
		for v := 0; v < 7; v++ {
			if a&(1<<v) != 0 {
				assign.Set(v)
			}
		}
		if evalExpr(e, 7, a) != l.Eval(assign) {
			t.Fatalf("function broken at %07b", a)
		}
	}
	// Factored form should not exceed the flat literal count (8 lits).
	if e.Literals() > 8 {
		t.Errorf("factored literals = %d > 8 (flat)", e.Literals())
	}
}

// Property: emission into a network preserves the expression function and
// respects polarity.
func TestQuickEmitCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		e := randomExpr(rng, n, 3)
		pol := make([]bool, n)
		for i := range pol {
			pol[i] = rng.Intn(2) == 1
		}
		net := network.New("t")
		pis := make([]int, n)
		for i := range pis {
			pis[i] = net.AddPI("")
		}
		em := NewEmitter(net, pis, pol)
		net.AddPO("o", em.Emit(e))
		for a := 0; a < 1<<n; a++ {
			assign := cube.NewBitSet(n)
			lits := make([]bool, n)
			for v := 0; v < n; v++ {
				if a&(1<<v) != 0 {
					assign.Set(v)
				}
				lits[v] = assign.Has(v) == pol[v]
			}
			if net.Eval(assign)[0] != e.Eval(lits) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEmitterSharesSubexpressions(t *testing.T) {
	net := network.New("s")
	pis := []int{net.AddPI("a"), net.AddPI("b")}
	em := NewEmitter(net, pis, nil)
	e := AndN(Lit(0), Lit(1))
	id1 := em.Emit(e)
	id2 := em.Emit(AndN(Lit(1), Lit(0)))
	if id1 != id2 {
		t.Error("identical expressions emitted twice")
	}
}

func TestBalancedXorTreeShape(t *testing.T) {
	// Disjoint-support groups must be joined by a balanced XOR tree
	// (Step 5); with 4 disjoint cubes the tree has depth 2.
	l := cube.NewList(8)
	l.Add(cube.New(8, 0, 1))
	l.Add(cube.New(8, 2, 3))
	l.Add(cube.New(8, 4, 5))
	l.Add(cube.New(8, 6, 7))
	e := CubeMethod(l, Options{ApplyRules: false})
	if e.Op != OpXor {
		t.Fatalf("root should be XOR, got %v", e.Op)
	}
	// Flattened XOR has the 4 AND cubes as children; the balanced tree is
	// reconstructed at emission. Structural check: all 4 cubes present.
	if len(e.Kids) != 4 {
		t.Errorf("flattened XOR has %d kids, want 4", len(e.Kids))
	}
}

func TestCubeMethodConstantCube(t *testing.T) {
	// 1 ⊕ x0 should become !x0 (assumption 2: the constant cube is an
	// inverter at the output).
	l := cube.NewList(2)
	l.Add(cube.One(2))
	l.Add(cube.New(2, 0))
	e := CubeMethod(l, DefaultOptions())
	want := Not(Lit(0))
	if e.Key() != want.Key() {
		t.Errorf("1 ^ x0: got %s, want %s", e, want)
	}
}

func TestT481Factorization(t *testing.T) {
	// The 16-cube FPRM of t481 (Example 1) in literal space.
	mk := func(vars ...int) cube.Cube { return cube.New(16, vars...) }
	l := cube.NewList(16)
	for _, c := range []cube.Cube{
		mk(0, 1, 4, 5),
		mk(0, 1, 6), mk(0, 1, 7), mk(0, 1, 6, 7),
		mk(2, 3, 4, 5),
		mk(2, 3, 6), mk(2, 3, 7), mk(2, 3, 6, 7),
		mk(8, 12, 13), mk(9, 12, 13), mk(8, 9, 12, 13),
		mk(8, 14, 15), mk(9, 14, 15), mk(8, 9, 14, 15),
		mk(10, 11, 12, 13),
		mk(10, 11, 14, 15),
	} {
		l.Add(c)
	}
	e := CubeMethod(l, DefaultOptions())
	// Functional check against the cube list on random assignments.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		assign := cube.NewBitSet(16)
		for v := 0; v < 16; v++ {
			if rng.Intn(2) == 1 {
				assign.Set(v)
			}
		}
		lits := make([]bool, 16)
		for v := 0; v < 16; v++ {
			lits[v] = assign.Has(v)
		}
		if e.Eval(lits) != l.Eval(assign) {
			t.Fatal("t481 factorization broke the function")
		}
	}
	// The flat form has 52 literals; factoring must reduce it
	// substantially (the paper's final form has ~20 literal occurrences).
	if e.Literals() >= 35 {
		t.Errorf("t481 factored literals = %d, want < 35 (flat = %d)", e.Literals(), l.Literals())
	}
	t.Logf("t481 factored: %s (%d literals)", e, e.Literals())
}

func TestOFDDMethodSharing(t *testing.T) {
	// A function whose OFDD shares a subgraph: f = x0·g ⊕ g where
	// g = x1 ⊕ x2; sharing must reach the emitted network.
	m := ofdd.New(3, nil)
	bm := bdd.New(3)
	g := bm.Xor(bm.Var(1), bm.Var(2))
	f := bm.Xor(bm.And(bm.Var(0), g), g)
	e := OFDDMethod(m, m.FromBDD(bm, f), Options{ApplyRules: false})
	for a := 0; a < 8; a++ {
		assign := cube.NewBitSet(3)
		lits := make([]bool, 3)
		for v := 0; v < 3; v++ {
			if a&(1<<v) != 0 {
				assign.Set(v)
				lits[v] = true
			}
		}
		if e.Eval(lits) != bm.Eval(f, assign) {
			t.Fatalf("OFDD method wrong at %03b", a)
		}
	}
}
