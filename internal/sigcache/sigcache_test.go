package sigcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/network"
)

// buildSpec returns a named bench circuit's network.
func buildSpec(t *testing.T, name string) *network.Network {
	t.Helper()
	c, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown bench circuit %q", name)
	}
	return c.Build()
}

func TestSignatureStableAcrossRebuilds(t *testing.T) {
	a := Signature(buildSpec(t, "f2"), 0)
	b := Signature(buildSpec(t, "f2"), 0)
	if a != b {
		t.Fatalf("signature not stable: %s vs %s", a, b)
	}
	if !strings.HasPrefix(a, "f:") {
		t.Fatalf("small circuit should get a functional signature, got %s", a)
	}
	if c := Signature(buildSpec(t, "adr4"), 0); c == a {
		t.Fatalf("distinct circuits share a signature")
	}
}

// TestSignatureFunctionalIdentity: textually/structurally different
// networks computing the same named functions must share a signature.
func TestSignatureFunctionalIdentity(t *testing.T) {
	mk := func(redundant bool) *network.Network {
		n := network.New("eq")
		a := n.AddPI("a")
		b := n.AddPI("b")
		var g int
		if redundant {
			// (a AND b) OR (b AND a) with a double negation on top.
			g1 := n.AddGate(network.And, a, b)
			g2 := n.AddGate(network.And, b, a)
			or := n.AddGate(network.Or, g1, g2)
			g = n.AddGate(network.Not, n.AddGate(network.Not, or))
		} else {
			g = n.AddGate(network.And, a, b)
		}
		n.AddPO("y", g)
		return n
	}
	if s1, s2 := Signature(mk(false), 0), Signature(mk(true), 0); s1 != s2 {
		t.Fatalf("functionally identical specs differ: %s vs %s", s1, s2)
	}
	// Renaming a PO is an interface change: must NOT hit.
	other := mk(false)
	other.POs[0].Name = "z"
	if Signature(mk(false), 0) == Signature(other, 0) {
		t.Fatalf("renamed PO shares a signature")
	}
}

// TestSignatureStructuralFallback: an impossible node cap forces the
// structural scheme, which must still be stable and prefix-distinct.
func TestSignatureStructuralFallback(t *testing.T) {
	spec := buildSpec(t, "adr4")
	s := Signature(spec, 1)
	if !strings.HasPrefix(s, "s:") {
		t.Fatalf("node cap 1 should force the structural scheme, got %s", s)
	}
	if s2 := Signature(buildSpec(t, "adr4"), 1); s2 != s {
		t.Fatalf("structural signature not stable: %s vs %s", s, s2)
	}
	// The spec must come back unmutated (Signature clones before Sweep).
	if got := Signature(spec, 0); !strings.HasPrefix(got, "f:") {
		t.Fatalf("spec mutated by structural pass: %s", got)
	}
}

func TestCacheLRUBounds(t *testing.T) {
	c := New(3, 1<<20)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), &Entry{Body: []byte("x")})
	}
	if c.Len() != 3 {
		t.Fatalf("entry bound not enforced: len=%d", c.Len())
	}
	if c.Get("k0") != nil || c.Get("k1") != nil {
		t.Fatalf("oldest entries not evicted")
	}
	if c.Get("k4") == nil {
		t.Fatalf("newest entry evicted")
	}

	// Byte bound: inserting a big entry evicts smaller ones.
	c2 := New(100, 300)
	c2.Put("a", &Entry{Body: bytes.Repeat([]byte("a"), 100)})
	c2.Put("b", &Entry{Body: bytes.Repeat([]byte("b"), 100)})
	if c2.Len() != 1 {
		t.Fatalf("byte bound not enforced: len=%d bytes=%d", c2.Len(), c2.Bytes())
	}
	// An entry over the whole budget is never stored.
	c2.Put("huge", &Entry{Body: bytes.Repeat([]byte("h"), 1000)})
	if c2.Get("huge") != nil {
		t.Fatalf("over-budget entry stored")
	}
}

// TestCacheConcurrentSingleFlight is the required concurrent-correctness
// test: N goroutines hammer the cache with identical and distinct specs
// under -race; each signature must synthesize exactly once, and every
// response body — cached or fresh — must be byte-identical to an
// independently synthesized reference.
func TestCacheConcurrentSingleFlight(t *testing.T) {
	circuits := []string{"f2", "cm82a", "z4ml"}
	const goroutinesPer = 8

	// Fresh references, synthesized outside the cache.
	reference := make(map[string][]byte)
	for _, name := range circuits {
		reference[name] = synthBody(t, buildSpec(t, name))
	}

	cache := New(64, 1<<20)
	synthCount := make(map[string]*atomic.Int64)
	keys := make(map[string]string)
	for _, name := range circuits {
		synthCount[name] = new(atomic.Int64)
		keys[name] = Signature(buildSpec(t, name), 0)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	type got struct {
		name string
		body []byte
		src  Source
	}
	results := make(chan got, len(circuits)*goroutinesPer)
	for _, name := range circuits {
		for g := 0; g < goroutinesPer; g++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				<-start
				key := keys[name]
				e, src, err := cache.GetOrDo(context.Background(), key, key, func() (*Entry, bool, error) {
					synthCount[name].Add(1)
					return &Entry{Body: synthBody(t, buildSpec(t, name))}, true, nil
				})
				if err != nil {
					t.Errorf("%s: GetOrDo: %v", name, err)
					return
				}
				results <- got{name, e.Body, src}
			}(name)
		}
	}
	close(start)
	wg.Wait()
	close(results)

	for _, name := range circuits {
		if n := synthCount[name].Load(); n != 1 {
			t.Errorf("%s: synthesized %d times, want exactly 1 (single-flight)", name, n)
		}
	}
	misses := map[string]int{}
	for r := range results {
		if !bytes.Equal(r.body, reference[r.name]) {
			t.Errorf("%s: cached/coalesced body differs from fresh synthesis (src=%v)", r.name, r.src)
		}
		if r.src == Miss {
			misses[r.name]++
		}
	}
	for _, name := range circuits {
		if misses[name] != 1 {
			t.Errorf("%s: %d misses, want exactly 1 (others hit or coalesced)", name, misses[name])
		}
		// A late, sequential call must be a pure hit.
		if _, src, _ := cache.GetOrDo(context.Background(), keys[name], keys[name], func() (*Entry, bool, error) {
			t.Errorf("%s: post-flight call re-synthesized", name)
			return nil, false, nil
		}); src != Hit {
			t.Errorf("%s: post-flight call: src=%v, want Hit", name, src)
		}
	}
}

// TestGetOrDoUncacheableAndBypass: a non-cacheable flight result must
// not become a hit, and storeKey=="" must skip the read path.
func TestGetOrDoUncacheableAndBypass(t *testing.T) {
	cache := New(8, 1<<20)
	runs := 0
	fn := func() (*Entry, bool, error) {
		runs++
		return &Entry{Body: []byte("degraded")}, false, nil
	}
	for i := 0; i < 2; i++ {
		if _, src, err := cache.GetOrDo(context.Background(), "k", "k", fn); err != nil || src != Miss {
			t.Fatalf("call %d: src=%v err=%v, want Miss", i, src, err)
		}
	}
	if runs != 2 {
		t.Fatalf("uncacheable result served from cache: runs=%d", runs)
	}
	cache.Put("k", &Entry{Body: []byte("clean")})
	if _, src, _ := cache.GetOrDo(context.Background(), "", "k2", func() (*Entry, bool, error) {
		return &Entry{Body: []byte("fresh")}, true, nil
	}); src != Miss {
		t.Fatalf("bypass read still hit: src=%v", src)
	}
}

// TestGetOrDoLeaderPanic: a panic in fn re-raises on the leader and
// fails (never hangs) any joiners. The joiner may lose the scheduling
// race and arrive after the flight is gone (becoming a fresh leader);
// that run proves nothing, so it is detected and retried.
func TestGetOrDoLeaderPanic(t *testing.T) {
	for attempt := 0; attempt < 20; attempt++ {
		cache := New(8, 1<<20)
		inFn := make(chan struct{})
		release := make(chan struct{})
		leaderPanic := make(chan any, 1)
		go func() {
			defer func() { leaderPanic <- recover() }()
			cache.GetOrDo(context.Background(), "k", "k", func() (*Entry, bool, error) {
				close(inFn)
				<-release
				panic("boom")
			})
		}()
		<-inFn
		joined := make(chan error, 1)
		missed := make(chan struct{})
		go func() {
			_, _, err := cache.GetOrDo(context.Background(), "k", "k", func() (*Entry, bool, error) {
				close(missed) // ran fn => arrived after the flight ended
				return nil, false, nil
			})
			joined <- err
		}()
		time.Sleep(10 * time.Millisecond) // let the joiner park on the flight
		close(release)
		if pv := <-leaderPanic; pv == nil {
			t.Fatalf("leader panic did not propagate")
		}
		if cache.Get("k") != nil {
			t.Fatalf("panicked flight left a cache entry")
		}
		err := <-joined
		select {
		case <-missed:
			continue // joiner never joined; try again
		default:
		}
		if !errors.Is(err, ErrFlightPanicked) {
			t.Fatalf("joiner error = %v, want ErrFlightPanicked", err)
		}
		return
	}
	t.Fatalf("joiner never joined the panicked flight in 20 attempts")
}

// synthBody is the test's stand-in for the service's serialized
// response: the BLIF text of a deterministic synthesis run.
func synthBody(t *testing.T, spec *network.Network) []byte {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Workers = 2
	res, err := core.Synthesize(context.Background(), spec, opt)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	var b bytes.Buffer
	if err := res.Network.WriteBLIF(&b); err != nil {
		t.Fatalf("WriteBLIF: %v", err)
	}
	return b.Bytes()
}
