// Package sigcache provides the content-addressed result cache of the
// synthesis service (cmd/rmsynd): a canonical specification signature
// built from per-output BDD fingerprints, and a bounded, single-flight
// LRU cache of serialized synthesis responses keyed by it.
//
// # Why function fingerprints, not file bytes
//
// At service scale the dominant workload is repeated submissions of the
// same specifications — the fixed IWLS'91 family, parametric adders and
// multipliers — arriving as textually different files: reordered .names
// blocks, renamed internal signals, comments, regenerated PLA covers.
// Keying on the canonical BDD of every output (the discipline Yu &
// Ciesielski apply to Galois-field verification, where the function —
// not the netlist — is the identity) makes all of those hit the same
// entry. PI and PO names and their order are part of the signature,
// because the cached response embeds them; two specs that compute the
// same functions under different interface names are different requests.
//
// # Blowup fallback
//
// Building spec BDDs can blow up (wide multipliers — the failure shape
// the budget package exists for), so Signature runs the BDD build under
// a node cap and falls back to a structural signature of the swept,
// strashed netlist when the cap trips. The two schemes are prefixed
// ("f:" vs "s:") so a functional and a structural signature can never
// collide; a structural signature still deduplicates resubmissions of
// the same file and of structurally equal variants.
package sigcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/network"
)

// DefaultSigNodeCap bounds the BDD build of a functional signature.
// Specs that exceed it get a structural signature instead.
const DefaultSigNodeCap = 100_000

// Signature returns the canonical content address of a specification:
// "f:<hex>" when the per-output BDD fingerprint was computed within
// nodeCap BDD nodes (0 means DefaultSigNodeCap), "s:<hex>" for the
// structural fallback. The spec is not mutated.
func Signature(spec *network.Network, nodeCap int) string {
	if nodeCap <= 0 {
		nodeCap = DefaultSigNodeCap
	}
	if sig, ok := functionalSignature(spec, nodeCap); ok {
		return sig
	}
	return structuralSignature(spec)
}

// functionalSignature hashes the canonical BDD DAG of every output.
// Node IDs are assigned in first-visit DFS order (outputs in PO order,
// low child before high child), which depends only on the functions and
// the variable order — never on construction history — so equal
// functions hash equally no matter what netlist produced them.
func functionalSignature(spec *network.Network, nodeCap int) (string, bool) {
	bm := bdd.New(spec.NumPIs())
	bm.SetBudget(budget.New(nil, budget.Limits{BDDNodes: nodeCap}))
	var outs []bdd.Ref
	if err := budget.Guard(func() { outs = spec.ToBDDs(bm) }); err != nil {
		return "", false
	}
	h := sha256.New()
	hashInterface(h, spec)
	// Canonical renumbering: terminals are 0 and 1, internal nodes get
	// 2, 3, ... in DFS first-visit order.
	ids := map[bdd.Ref]uint32{bdd.Zero: 0, bdd.One: 1}
	next := uint32(2)
	var visit func(f bdd.Ref) uint32
	visit = func(f bdd.Ref) uint32 {
		if id, ok := ids[f]; ok {
			return id
		}
		lo := visit(bm.Lo(f))
		hi := visit(bm.Hi(f))
		id := next
		next++
		ids[f] = id
		writeU32(h, uint32(bm.TopVar(f)), lo, hi)
		return id
	}
	for _, f := range outs {
		writeU32(h, visit(f))
	}
	return "f:" + hex.EncodeToString(h.Sum(nil)), true
}

// structuralSignature hashes the canonical hash-consed rebuild of the
// netlist in topological order with canonical gate renumbering
// (network.Canonical: constants folded, buffers and double negations
// gone, commutative fanins sorted, duplicate structure merged). It
// identifies structurally equal specs — same file, reformatted file,
// same generator output, renamed-but-identical internal signals — not
// functionally equal ones: the best the cache can do once BDDs are out
// of reach.
func structuralSignature(spec *network.Network) string {
	net := spec.Canonical()
	h := sha256.New()
	hashInterface(h, net)
	renum := make(map[int]uint32, len(net.Gates))
	for _, id := range net.TopoOrder() {
		renum[id] = uint32(len(renum))
		g := &net.Gates[id]
		writeU32(h, uint32(g.Type), uint32(len(g.Fanins)))
		for _, f := range g.Fanins {
			writeU32(h, renum[f])
		}
	}
	for _, po := range net.POs {
		writeU32(h, renum[po.Gate])
	}
	return "s:" + hex.EncodeToString(h.Sum(nil))
}

// hashInterface feeds the spec's external interface — PI and PO counts,
// names, and order — into the hash. The cached response embeds these
// names, so they are identity, not noise.
func hashInterface(h hash.Hash, n *network.Network) {
	writeU32(h, uint32(n.NumPIs()), uint32(n.NumPOs()))
	for _, pi := range n.PIs {
		writeStr(h, n.Gates[pi].Name)
	}
	for _, po := range n.POs {
		writeStr(h, po.Name)
	}
}

func writeU32(h hash.Hash, vs ...uint32) {
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], v)
		h.Write(b[:])
	}
}

func writeStr(h hash.Hash, s string) {
	writeU32(h, uint32(len(s)))
	h.Write([]byte(s))
}
