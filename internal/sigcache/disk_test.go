package sigcache

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testEntry(i int) (string, *Entry) {
	key := fmt.Sprintf("f:%040x|m0|p0|B0", i)
	return key, &Entry{
		Body:     []byte(fmt.Sprintf(`{"schema":"rmsynd/v1","circuit":"c%d","padding":"%s"}`, i, strings.Repeat("x", 100))),
		Flow:     "method=cube polarity=greedy basis=auto",
		Gates2:   10 + i,
		Literals: 20 + i,
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key, e := testEntry(1)
	d.Put(key, e)
	got := d.Get(key)
	if got == nil {
		t.Fatal("Get after Put returned nil")
	}
	if !bytes.Equal(got.Body, e.Body) || got.Flow != e.Flow || got.Gates2 != e.Gates2 || got.Literals != e.Literals {
		t.Errorf("round-trip mismatch: got %+v want %+v", got, e)
	}
	if d.Get("f:unknown") != nil {
		t.Error("Get of unknown key returned an entry")
	}

	// A fresh open warms from the same directory.
	d2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := d2.Stats(); st.ScanRecovered != 1 || st.Quarantined != 0 {
		t.Errorf("rescan stats = %+v, want 1 recovered, 0 quarantined", st)
	}
	if got := d2.Get(key); got == nil || !bytes.Equal(got.Body, e.Body) {
		t.Error("warm restart did not serve the persisted entry")
	}
}

// TestDiskCrashTruncation is the arbitrary-point crash sweep: every
// proper prefix of a committed entry file must be detected — quarantined
// and skipped, never decoded into a served entry. (tmp+rename makes
// truncated final files unreachable from a kill -9 alone; this covers
// the torn-write and tampering states the checksum footer exists for.)
func TestDiskCrashTruncation(t *testing.T) {
	key, e := testEntry(2)
	full := encodeEntry(key, e)

	// Sample every length for small files; stride for speed on the tail.
	for cut := 0; cut < len(full)-1; cut += 7 {
		dir := t.TempDir()
		path := filepath.Join(dir, entryFileName(key))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDisk(dir, 0)
		if err != nil {
			t.Fatalf("cut %d: OpenDisk: %v", cut, err)
		}
		st := d.Stats()
		if st.Quarantined != 1 || st.ScanRecovered != 0 {
			t.Fatalf("cut %d: stats = %+v, want quarantined=1 recovered=0", cut, st)
		}
		if d.Get(key) != nil {
			t.Fatalf("cut %d: truncated entry was served", cut)
		}
		// The quarantined file must be preserved under its new name and
		// never re-indexed on the next scan.
		q, _ := filepath.Glob(filepath.Join(dir, "*"+quarantineSuffix))
		if len(q) != 1 {
			t.Fatalf("cut %d: %d quarantine files, want 1", cut, len(q))
		}
		d2, err := OpenDisk(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st := d2.Stats(); st.ScanRecovered != 0 || st.Quarantined != 0 {
			t.Fatalf("cut %d: rescan saw the quarantined file: %+v", cut, st)
		}
	}
}

// TestDiskBitFlip: a single corrupted byte anywhere in a committed file
// fails the checksum and is quarantined, at scan time and at read time.
func TestDiskBitFlip(t *testing.T) {
	key, e := testEntry(3)
	full := encodeEntry(key, e)
	for _, pos := range []int{0, len(diskMagic) + 2, len(full) / 2, len(full) - 1} {
		dir := t.TempDir()
		corrupt := append([]byte(nil), full...)
		corrupt[pos] ^= 0x40
		path := filepath.Join(dir, entryFileName(key))
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDisk(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d.Get(key) != nil {
			t.Fatalf("flip at %d: corrupt entry was served", pos)
		}
		if st := d.Stats(); st.Quarantined != 1 {
			t.Fatalf("flip at %d: stats = %+v, want quarantined=1", pos, st)
		}
	}
}

// TestDiskReadTimeCorruption: corruption that appears after the open
// scan (the window the restart-soak's kill -9 cannot produce but a bad
// disk can) is caught on Get — quarantined, not served.
func TestDiskReadTimeCorruption(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key, e := testEntry(4)
	d.Put(key, e)
	path := filepath.Join(dir, entryFileName(key))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if d.Get(key) != nil {
		t.Fatal("entry corrupted after scan was served")
	}
	st := d.Stats()
	if st.Quarantined != 1 {
		t.Errorf("stats = %+v, want quarantined=1", st)
	}
	if d.Get(key) != nil || d.Has(key) {
		t.Error("corrupt entry still reachable after quarantine")
	}
}

// TestDiskWrongKey: a file whose embedded key does not match the lookup
// key (hash-name collision or a copied file) is never served for it.
func TestDiskWrongKey(t *testing.T) {
	dir := t.TempDir()
	keyA, e := testEntry(5)
	keyB, _ := testEntry(6)
	// Encode under keyA but place at keyB's file name.
	if err := os.WriteFile(filepath.Join(dir, entryFileName(keyB)), encodeEntry(keyA, e), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The scan indexes it under its embedded key — keyA — so keyB misses.
	if d.Get(keyB) != nil {
		t.Error("entry served under a key it was not stored for")
	}
	if d.Get(keyA) == nil {
		t.Error("entry not served under its embedded key")
	}
}

func TestDiskTmpDebrisRemoved(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "w-123"+tmpSuffix), []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Aborted != 1 || st.Quarantined != 0 {
		t.Errorf("stats = %+v, want aborted=1 quarantined=0 (tmp debris is expected, not corruption)", st)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*"+tmpSuffix)); len(left) != 0 {
		t.Errorf("tmp debris survived the scan: %v", left)
	}
}

func TestDiskByteBoundEviction(t *testing.T) {
	dir := t.TempDir()
	_, proto := testEntry(0)
	one := int64(len(encodeEntry("k", proto))) + 64
	d, err := OpenDisk(dir, 3*one)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 6; i++ {
		k, e := testEntry(10 + i)
		keys = append(keys, k)
		d.Put(k, e)
		// Distinct mtimes so the eviction order is deterministic even on
		// coarse filesystem timestamps.
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		os.Chtimes(filepath.Join(dir, entryFileName(k)), old, old)
		dd := d
		dd.mu.Lock()
		if ent, ok := dd.index[k]; ok {
			ent.atime = old
		}
		dd.mu.Unlock()
	}
	st := d.Stats()
	if st.Bytes > 3*one {
		t.Errorf("disk bytes %d over the %d bound", st.Bytes, 3*one)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded despite exceeding the byte bound")
	}
	// The oldest entries are the evicted ones.
	if d.Has(keys[0]) {
		t.Error("oldest entry survived eviction")
	}
	if !d.Has(keys[len(keys)-1]) {
		t.Error("newest entry was evicted")
	}
}

// TestCacheDiskTier: the Cache serves memory hits first, falls to the
// disk tier on memory miss (promoting the entry), and writes through on
// cacheable results.
func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(4, 1<<20)
	c.SetDisk(d)

	key, e := testEntry(20)
	ctx := context.Background()
	ran := 0
	do := func() (*Entry, bool, error) { ran++; return e, true, nil }

	if _, src, err := c.GetOrDo(ctx, key, key, do); err != nil || src != Miss {
		t.Fatalf("first call: src=%v err=%v, want miss", src, err)
	}
	if ran != 1 {
		t.Fatalf("fn ran %d times, want 1", ran)
	}
	if !d.Has(key) {
		t.Fatal("cacheable result did not write through to disk")
	}
	if _, src, _ := c.GetOrDo(ctx, key, key, do); src != Hit {
		t.Fatalf("second call: src=%v, want memory hit", src)
	}

	// A fresh Cache over the same DiskStore models a restart: the entry
	// comes back from disk, then from memory.
	c2 := New(4, 1<<20)
	c2.SetDisk(d)
	got, src, err := c2.GetOrDo(ctx, key, key, do)
	if err != nil || src != DiskHit {
		t.Fatalf("post-restart call: src=%v err=%v, want disk", src, err)
	}
	if !bytes.Equal(got.Body, e.Body) {
		t.Error("disk-tier body differs from original")
	}
	if _, src, _ := c2.GetOrDo(ctx, key, key, do); src != Hit {
		t.Errorf("promoted entry not served from memory: src=%v", src)
	}
	if ran != 1 {
		t.Errorf("fn ran %d times across the restart, want 1 (disk absorbed the rest)", ran)
	}
}

// TestCacheDiskDegradedNotPersisted: non-cacheable results (degraded
// runs) reach neither tier.
func TestCacheDiskDegradedNotPersisted(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(4, 1<<20)
	c.SetDisk(d)
	key, e := testEntry(21)
	if _, _, err := c.GetOrDo(context.Background(), key, key,
		func() (*Entry, bool, error) { return e, false, nil }); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || d.Len() != 0 {
		t.Errorf("non-cacheable result persisted: mem=%d disk=%d entries", c.Len(), d.Len())
	}
}
