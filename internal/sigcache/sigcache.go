package sigcache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrFlightPanicked is what joiners of a flight observe when the
// leader's fn panicked: the flight is failed (never left hanging), the
// panic itself re-raises on the leader's goroutine only.
var ErrFlightPanicked = errors.New("sigcache: flight leader panicked")

// Entry is one cached synthesis result: the exact serialized response
// body served on the miss (hits replay it byte for byte), plus the flow
// record — which configuration produced it — so future basis-selection
// work can reuse cached results per flow (Kushch's per-block basis
// argument applied to the cache).
type Entry struct {
	Body []byte // exact rmsynd/v1 response body bytes
	Flow string // flow fingerprint, e.g. "method=cube polarity=greedy"

	// Result cost summary, for metrics and cache introspection.
	Gates2   int
	Literals int
}

func (e *Entry) size() int64 {
	return int64(len(e.Body)+len(e.Flow)) + 64
}

// Source classifies how a GetOrDo call was served.
type Source int

// GetOrDo outcomes.
const (
	Miss      Source = iota // this call ran fn
	Hit                     // served from the in-memory tier
	Coalesced               // collapsed onto a concurrent identical call
	DiskHit                 // served (and promoted) from the disk tier
)

func (s Source) String() string {
	switch s {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	case DiskHit:
		return "disk"
	}
	return "miss"
}

// flight is one in-progress computation all identical concurrent
// requests collapse onto.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Cache is a bounded, concurrency-safe LRU of synthesis results with
// single-flight collapsing. The memory bound follows the repo's budget
// discipline: both an entry count and a byte total are capped, and
// inserting past either cap evicts least-recently-used entries first.
// An entry larger than the whole byte budget is never stored.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	flights    map[string]*flight

	// disk, when set, is the persistent tier behind the memory LRU:
	// memory misses consult it before synthesizing, cacheable results
	// write through to it, and entries found there are promoted into
	// memory. Atomic because the server attaches it asynchronously
	// (the warm scan must not delay startup). See DiskStore for the
	// crash-safety contract.
	disk      atomic.Pointer[DiskStore]
	evictions atomic.Int64
}

type lruItem struct {
	key   string
	entry *Entry
}

// New returns a cache bounded to maxEntries entries and maxBytes total
// body bytes. Non-positive bounds fall back to defaults (1024 entries,
// 64 MiB).
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		flights:    make(map[string]*flight),
	}
}

// Get returns the cached entry for key and promotes it, or nil.
func (c *Cache) Get(key string) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruItem).entry
	}
	return nil
}

// Put inserts (or replaces) the entry under key, evicting LRU entries
// until the bounds hold again, and writes through to the disk tier when
// one is attached. Entries bigger than the byte budget are dropped
// silently — the caller's result is unaffected, it just will not be a
// future hit.
func (c *Cache) Put(key string, e *Entry) {
	c.putMem(key, e)
	if d := c.disk.Load(); d != nil {
		d.Put(key, e)
	}
}

// putMem inserts into the memory LRU only — the promotion path for
// entries that just came *from* the disk tier, which rewriting would
// only churn.
func (c *Cache) putMem(key string, e *Entry) {
	if e == nil || e.size() > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*lruItem)
		c.bytes += e.size() - old.entry.size()
		old.entry = e
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruItem{key: key, entry: e})
		c.bytes += e.size()
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		it := el.Value.(*lruItem)
		c.ll.Remove(el)
		delete(c.items, it.key)
		c.bytes -= it.entry.size()
		c.evictions.Add(1)
	}
}

// SetDisk attaches a persistent tier. Safe to call while traffic is
// flowing — requests admitted before the attach simply miss to a
// synthesis, exactly as a memory-only cache would.
func (c *Cache) SetDisk(d *DiskStore) { c.disk.Store(d) }

// Disk returns the attached persistent tier, or nil.
func (c *Cache) Disk() *DiskStore { return c.disk.Load() }

// Evictions returns how many entries the memory LRU has evicted.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the current body-byte total.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// GetOrDo is the cache's request path. Under one lock acquisition it
// checks the store (storeKey; "" skips the lookup — the caller asked to
// bypass the cache), then the in-flight table (flightKey), and either
// joins an existing flight or becomes the leader of a new one.
//
//   - Hit: the stored entry is returned immediately.
//   - DiskHit: the leader found the entry in the persistent tier; it is
//     promoted into memory and published to joiners without running fn.
//   - Leader (Miss): fn runs on the calling goroutine — to completion,
//     regardless of ctx; fn carries its own deadline discipline. Its
//     result is published to every joiner, and stored under storeKey
//     when fn reports it cacheable. A panic in fn is re-raised on the
//     leader after the flight is failed, so joiners never deadlock and
//     the caller's containment boundary still sees the panic.
//   - Joiner (Coalesced): blocks until the leader publishes or ctx is
//     done, whichever is first.
//
// The single-flight guarantee: for one flightKey, concurrent GetOrDo
// calls run fn exactly once. Sequential calls rerun fn only if the
// entry was not cacheable or has been evicted.
func (c *Cache) GetOrDo(ctx context.Context, storeKey, flightKey string,
	fn func() (e *Entry, cacheable bool, err error)) (*Entry, Source, error) {
	c.mu.Lock()
	if storeKey != "" {
		if el, ok := c.items[storeKey]; ok {
			c.ll.MoveToFront(el)
			e := el.Value.(*lruItem).entry
			c.mu.Unlock()
			return e, Hit, nil
		}
	}
	if f, ok := c.flights[flightKey]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.entry, Coalesced, f.err
		case <-ctx.Done():
			return nil, Coalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[flightKey] = f
	c.mu.Unlock()

	panicked := true
	defer func() {
		c.mu.Lock()
		delete(c.flights, flightKey)
		c.mu.Unlock()
		if panicked && f.err == nil {
			// fn panicked: fail the flight before the panic unwinds so
			// joiners wake with an error instead of a nil entry.
			f.err = ErrFlightPanicked
		}
		close(f.done)
	}()

	// Disk tier: the flight leader consults the persistent store before
	// synthesizing, so concurrent identical requests coalesce onto one
	// disk read exactly as they would onto one synthesis. A verified
	// entry is promoted into the memory LRU (not rewritten to disk).
	if d := c.disk.Load(); storeKey != "" && d != nil {
		if e := d.Get(storeKey); e != nil {
			panicked = false
			f.entry = e
			c.putMem(storeKey, e)
			return e, DiskHit, nil
		}
	}

	e, cacheable, err := fn()
	panicked = false
	f.entry, f.err = e, err
	if err == nil && cacheable && storeKey != "" {
		c.Put(storeKey, e)
	}
	return e, Miss, err
}
