package sigcache

// The disk store is the crash-safe persistence tier under the in-memory
// LRU: every cacheable entry is written through to an entry-per-file
// layout so a restarted server warms from disk and repeated submissions
// stay hits across deploys.
//
// # Crash safety
//
// A write is tmp-file → write → fsync → rename → fsync(dir). A kill -9
// at any point leaves either the complete old state, the complete new
// state, or an orphaned *.tmp file that the next scan deletes — a
// half-written entry is never visible under a final name. Defense in
// depth for the states rename-atomicity cannot rule out (torn sectors,
// fs bugs, manual tampering): every file ends in a sha256 footer over
// everything before it, verified on scan and again on every read, and
// the stored key is embedded so a hash-named file can never be served
// for the wrong signature. Anything that fails verification is
// quarantined (renamed to *.quarantine, preserved for forensics) and
// skipped — corruption is counted, never served.
//
// # Bounds
//
// The store is bytes-bounded like the memory tier: inserting past
// MaxBytes evicts least-recently-accessed entries (access order is
// approximated by file mtime, bumped on every hit) until the bound
// holds. An entry larger than the whole budget is never written.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// diskMagic opens every entry file; bump on layout change so an old
// binary quarantines (rather than misparses) a new file and vice versa.
var diskMagic = []byte("rmsc1\n")

const (
	entrySuffix      = ".entry"
	tmpSuffix        = ".tmp"
	quarantineSuffix = ".quarantine"

	// DefaultDiskBytes bounds the disk tier when the caller passes no
	// bound (256 MiB — a deploy-surviving superset of the memory tier).
	DefaultDiskBytes = 256 << 20
)

// errCorrupt tags any integrity failure found while decoding an entry
// file: truncation, checksum mismatch, key mismatch, bad magic.
var errCorrupt = errors.New("sigcache: corrupt disk entry")

// DiskStats is a point-in-time counter snapshot of the disk tier.
type DiskStats struct {
	Entries int   // live entries in the index
	Bytes   int64 // file bytes of live entries

	Hits          int64 // reads served (verified) from disk
	Misses        int64 // lookups with no live entry
	ScanRecovered int64 // entries that verified and were indexed at open
	Quarantined   int64 // files that failed verification (scan or read) and were set aside
	Aborted       int64 // orphaned tmp files from interrupted writes, deleted at open
	Evictions     int64 // entries evicted by the byte bound
	WriteErrors   int64 // best-effort writes that failed (entry not persisted)
}

// DiskStore is the persistent tier. All methods are safe for concurrent
// use and never fail the request path: a broken disk degrades the cache
// to memory-only (counted in WriteErrors/Quarantined), it does not fail
// synthesis.
type DiskStore struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[string]*diskEnt
	bytes int64

	hits, misses  atomic.Int64
	scanRecovered atomic.Int64
	quarantined   atomic.Int64
	aborted       atomic.Int64
	evictions     atomic.Int64
	writeErrs     atomic.Int64
}

type diskEnt struct {
	file  string // absolute path
	size  int64
	atime time.Time // last access, the eviction order
}

// OpenDisk opens (creating if needed) the store rooted at dir and scans
// it: orphaned tmp files are deleted, every entry file is read and
// verified — checksum, layout, embedded key — and indexed; anything that
// fails verification is quarantined and skipped. maxBytes <= 0 means
// DefaultDiskBytes. If, after the scan, live entries exceed the bound,
// the oldest are evicted immediately.
func OpenDisk(dir string, maxBytes int64) (*DiskStore, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sigcache: opening disk store: %w", err)
	}
	d := &DiskStore{dir: dir, maxBytes: maxBytes, index: make(map[string]*diskEnt)}

	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sigcache: scanning disk store: %w", err)
	}
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		path := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// An interrupted write: the entry was never committed, the
			// debris is expected and harmless. Deleting it is the whole
			// recovery.
			os.Remove(path)
			d.aborted.Add(1)
		case strings.HasSuffix(name, entrySuffix):
			key, e, size, mtime, rerr := readEntryFile(path)
			if rerr != nil {
				d.quarantine(path)
				continue
			}
			if old, ok := d.index[key]; ok {
				// Duplicate key (e.g. a crashed GC): keep the newer file.
				if mtime.Before(old.atime) {
					os.Remove(path)
					continue
				}
				os.Remove(old.file)
				d.bytes -= old.size
			}
			d.index[key] = &diskEnt{file: path, size: size, atime: mtime}
			d.bytes += size
			d.scanRecovered.Add(1)
			_ = e
		}
	}
	d.mu.Lock()
	d.evictLocked()
	d.mu.Unlock()
	return d, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// Get returns the verified entry stored under key, or nil. The file is
// re-read and re-verified on every hit — checksum and embedded key — so
// corruption that appeared after the open scan is still caught (and
// quarantined) rather than served.
func (d *DiskStore) Get(key string) *Entry {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	ent, ok := d.index[key]
	if !ok {
		d.mu.Unlock()
		d.misses.Add(1)
		return nil
	}
	path := ent.file
	d.mu.Unlock()

	gotKey, e, _, _, err := readEntryFile(path)
	if err != nil || gotKey != key {
		d.quarantine(path)
		d.mu.Lock()
		if cur, ok := d.index[key]; ok && cur.file == path {
			d.bytes -= cur.size
			delete(d.index, key)
		}
		d.mu.Unlock()
		d.misses.Add(1)
		return nil
	}
	d.hits.Add(1)
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort LRU bump
	d.mu.Lock()
	if cur, ok := d.index[key]; ok && cur.file == path {
		cur.atime = now
	}
	d.mu.Unlock()
	return e
}

// Put persists the entry under key, best-effort: a failed write is
// counted, never surfaced — the request was already served from the
// result, persistence is an optimization. Oversized entries are skipped.
func (d *DiskStore) Put(key string, e *Entry) {
	if d == nil || e == nil {
		return
	}
	data := encodeEntry(key, e)
	if int64(len(data)) > d.maxBytes {
		return
	}
	path := filepath.Join(d.dir, entryFileName(key))
	if err := d.writeAtomic(path, data); err != nil {
		d.writeErrs.Add(1)
		return
	}
	now := time.Now()
	d.mu.Lock()
	if old, ok := d.index[key]; ok {
		d.bytes -= old.size
	}
	d.index[key] = &diskEnt{file: path, size: int64(len(data)), atime: now}
	d.bytes += int64(len(data))
	d.evictLocked()
	d.mu.Unlock()
}

// Has reports whether key is in the live index, without touching disk.
func (d *DiskStore) Has(key string) bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.index[key]
	return ok
}

// Len returns the live entry count.
func (d *DiskStore) Len() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

// Stats snapshots the tier's counters.
func (d *DiskStore) Stats() DiskStats {
	if d == nil {
		return DiskStats{}
	}
	d.mu.Lock()
	entries, bytes := len(d.index), d.bytes
	d.mu.Unlock()
	return DiskStats{
		Entries:       entries,
		Bytes:         bytes,
		Hits:          d.hits.Load(),
		Misses:        d.misses.Load(),
		ScanRecovered: d.scanRecovered.Load(),
		Quarantined:   d.quarantined.Load(),
		Aborted:       d.aborted.Load(),
		Evictions:     d.evictions.Load(),
		WriteErrors:   d.writeErrs.Load(),
	}
}

// quarantine sets a failed file aside under a *.quarantine name (best
// effort; if even the rename fails, the file is deleted so it can never
// be re-scanned into the index).
func (d *DiskStore) quarantine(path string) {
	d.quarantined.Add(1)
	if err := os.Rename(path, path+quarantineSuffix); err != nil {
		os.Remove(path)
	}
}

// evictLocked deletes least-recently-accessed entries until the byte
// bound holds. Caller holds d.mu.
func (d *DiskStore) evictLocked() {
	if d.bytes <= d.maxBytes {
		return
	}
	type kv struct {
		key string
		ent *diskEnt
	}
	all := make([]kv, 0, len(d.index))
	for k, e := range d.index {
		all = append(all, kv{k, e})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ent.atime.Before(all[j].ent.atime) })
	for _, it := range all {
		if d.bytes <= d.maxBytes {
			break
		}
		os.Remove(it.ent.file)
		d.bytes -= it.ent.size
		delete(d.index, it.key)
		d.evictions.Add(1)
	}
}

// writeAtomic commits data to path via tmp-write-fsync-rename-fsync.
func (d *DiskStore) writeAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(d.dir, "w-*"+tmpSuffix)
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(d.dir)
}

// syncDir fsyncs the directory so the rename itself is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// entryFileName derives the on-disk name for a key: the key itself is a
// hex signature plus a short flow suffix, but it can contain characters
// unfit for filenames, so the name is its sha256.
func entryFileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return fmt.Sprintf("sc-%x%s", sum[:20], entrySuffix)
}

// encodeEntry serializes key+entry with the integrity footer.
//
//	magic | u32 keyLen | key | u32 flowLen | flow |
//	u32 gates2 | u32 literals | u32 bodyLen | body | sha256(prefix)
func encodeEntry(key string, e *Entry) []byte {
	var b bytes.Buffer
	b.Write(diskMagic)
	putU32 := func(v uint32) {
		var u [4]byte
		binary.LittleEndian.PutUint32(u[:], v)
		b.Write(u[:])
	}
	putU32(uint32(len(key)))
	b.WriteString(key)
	putU32(uint32(len(e.Flow)))
	b.WriteString(e.Flow)
	putU32(uint32(e.Gates2))
	putU32(uint32(e.Literals))
	putU32(uint32(len(e.Body)))
	b.Write(e.Body)
	sum := sha256.Sum256(b.Bytes())
	b.Write(sum[:])
	return b.Bytes()
}

// decodeEntry parses and verifies one serialized entry.
func decodeEntry(data []byte) (key string, e *Entry, err error) {
	if len(data) < len(diskMagic)+sha256.Size || !bytes.Equal(data[:len(diskMagic)], diskMagic) {
		return "", nil, errCorrupt
	}
	payload, footer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], footer) {
		return "", nil, errCorrupt
	}
	p := payload[len(diskMagic):]
	getU32 := func() (uint32, bool) {
		if len(p) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(p[:4])
		p = p[4:]
		return v, true
	}
	getBytes := func() ([]byte, bool) {
		n, ok := getU32()
		if !ok || uint32(len(p)) < n {
			return nil, false
		}
		v := p[:n]
		p = p[n:]
		return v, true
	}
	kb, ok := getBytes()
	if !ok {
		return "", nil, errCorrupt
	}
	flow, ok := getBytes()
	if !ok {
		return "", nil, errCorrupt
	}
	gates2, ok := getU32()
	if !ok {
		return "", nil, errCorrupt
	}
	lits, ok := getU32()
	if !ok {
		return "", nil, errCorrupt
	}
	body, ok := getBytes()
	if !ok || len(p) != 0 {
		return "", nil, errCorrupt
	}
	return string(kb), &Entry{
		Body:     append([]byte(nil), body...),
		Flow:     string(flow),
		Gates2:   int(gates2),
		Literals: int(lits),
	}, nil
}

// readEntryFile loads, verifies, and decodes one entry file.
func readEntryFile(path string) (key string, e *Entry, size int64, mtime time.Time, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", nil, 0, time.Time{}, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, 0, time.Time{}, err
	}
	key, e, err = decodeEntry(data)
	if err != nil {
		return "", nil, 0, time.Time{}, err
	}
	return key, e, fi.Size(), fi.ModTime(), nil
}
