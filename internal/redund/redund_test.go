package redund

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/cube"
	"repro/internal/factor"
	"repro/internal/fprm"
	"repro/internal/network"
)

// TestTable1 reproduces Table 1 of the paper: the truth table of g⊕h
// against the three implied functions g+h, g·h̄ and ḡ·h.
func TestTable1(t *testing.T) {
	type row struct{ g, h, xor, or, gnh, ngh int }
	want := []row{
		{0, 0, 0, 0, 0, 0},
		{0, 1, 1, 1, 0, 1},
		{1, 0, 1, 1, 1, 0},
		{1, 1, 0, 1, 0, 0},
	}
	for _, r := range want {
		g, h := r.g == 1, r.h == 1
		if (g != h) != (r.xor == 1) {
			t.Errorf("xor(%d,%d)", r.g, r.h)
		}
		if (g || h) != (r.or == 1) {
			t.Errorf("or(%d,%d)", r.g, r.h)
		}
		if (g && !h) != (r.gnh == 1) {
			t.Errorf("g·h̄(%d,%d)", r.g, r.h)
		}
		if (!g && h) != (r.ngh == 1) {
			t.Errorf("ḡ·h(%d,%d)", r.g, r.h)
		}
	}
}

// formOf builds an FPRM form from positive-polarity cubes.
func formOf(n int, cubes ...[]int) *fprm.Form {
	f := fprm.NewForm(n, nil)
	for _, vs := range cubes {
		f.Cubes.Add(cube.New(n, vs...))
	}
	return f
}

// netFromForm factors the form WITHOUT the reduction rules (assumption 3
// of Section 4) and emits the AND/XOR network.
func netFromForm(f *fprm.Form) *network.Network {
	e := factor.CubeMethod(f.Cubes, factor.Options{ApplyRules: false})
	net := network.New("t")
	pis := make([]int, f.NumVars)
	for i := range pis {
		pis[i] = net.AddPI("")
	}
	em := factor.NewEmitter(net, pis, f.Polarity)
	net.AddPO("f", em.Emit(e))
	return net
}

func specOf(net *network.Network) (*bdd.Manager, []bdd.Ref) {
	m := bdd.New(len(net.PIs))
	return m, net.ToBDDs(m)
}

func equalSpec(net *network.Network, m *bdd.Manager, spec []bdd.Ref) bool {
	got := net.ToBDDs(m)
	for i := range got {
		if got[i] != spec[i] {
			return false
		}
	}
	return true
}

// TestORReduction: f = x0 ⊕ x1 ⊕ x0x1 is x0+x1; the (1,1) XOR input
// pattern is uncontrollable at the top XOR gate, so redundancy removal
// must reach a form with no XOR gates at all.
func TestORReduction(t *testing.T) {
	f := formOf(2, []int{0}, []int{1}, []int{0, 1})
	net := netFromForm(f)
	m, spec := specOf(net)
	before := net.CollectStats()
	if before.XORs == 0 {
		t.Fatal("test net should start with XOR gates")
	}
	res := Remove(net, Options{Form: f, Verify: true})
	if !equalSpec(net, m, spec) {
		t.Fatal("function changed")
	}
	after := net.CollectStats()
	if after.XORs != 0 {
		t.Errorf("XOR gates remain: %+v (result %+v)", after, res)
	}
	if after.Gates2 > 1 {
		t.Errorf("x0+x1 should cost one 2-input gate, got %d", after.Gates2)
	}
}

// TestParityIrreducible: no XOR gate of a parity tree is reducible
// (Section 4: disjoint supports).
func TestParityIrreducible(t *testing.T) {
	f := formOf(8, []int{0}, []int{1}, []int{2}, []int{3}, []int{4}, []int{5}, []int{6}, []int{7})
	net := netFromForm(f)
	before := net.CollectStats()
	res := Remove(net, Options{Form: f, Verify: true})
	after := net.CollectStats()
	if after.XORs != before.XORs {
		t.Errorf("parity XORs changed: %d -> %d (%+v)", before.XORs, after.XORs, res)
	}
}

// TestANDReduction: f = x0 ⊕ x0x1 = x0·x̄1: pattern (0,1) at the XOR
// (g=x0, h=x0x1) is uncontrollable.
func TestANDReduction(t *testing.T) {
	f := formOf(2, []int{0}, []int{0, 1})
	net := netFromForm(f)
	m, spec := specOf(net)
	Remove(net, Options{Form: f, Verify: true})
	if !equalSpec(net, m, spec) {
		t.Fatal("function changed")
	}
	after := net.CollectStats()
	if after.XORs != 0 {
		t.Errorf("XOR should reduce to AND: %+v", after)
	}
}

// TestT481Reduction: the 16-cube t481 FPRM factored without rules must
// reach ≈25 2-input gates (50 lits) after redundancy removal — the
// paper's Example 1 headline.
func TestT481Reduction(t *testing.T) {
	f := fprm.NewForm(16, nil)
	for _, vs := range [][]int{
		{0, 1, 4, 5},
		{0, 1, 6}, {0, 1, 7}, {0, 1, 6, 7},
		{2, 3, 4, 5},
		{2, 3, 6}, {2, 3, 7}, {2, 3, 6, 7},
		{8, 12, 13}, {9, 12, 13}, {8, 9, 12, 13},
		{8, 14, 15}, {9, 14, 15}, {8, 9, 14, 15},
		{10, 11, 12, 13},
		{10, 11, 14, 15},
	} {
		f.Cubes.Add(cube.New(16, vs...))
	}
	net := netFromForm(f)
	m, spec := specOf(net)
	before := net.CollectStats()
	res := Remove(net, Options{Form: f, Verify: true})
	if !equalSpec(net, m, spec) {
		t.Fatal("function changed")
	}
	after := net.CollectStats()
	t.Logf("t481: %d -> %d 2-input gates (%+v)", before.Gates2, after.Gates2, res)
	if after.Gates2 >= before.Gates2 {
		t.Errorf("no improvement: %d -> %d", before.Gates2, after.Gates2)
	}
	// With the Section 3 reduction rules disabled (assumption 3), gate
	// substitution alone cannot re-associate the spread-out XOR factor in
	// the right half, so it stops short of the paper's 25 gates; the full
	// flow (rules + removal) reaches 25 — asserted in internal/core.
	if after.Gates2 > 45 {
		t.Errorf("t481 after removal = %d gates, want ≤ 45", after.Gates2)
	}
}

// TestPatternOnlyModeSoundOnArithmetic: with Verify off (the paper's pure
// method) the function must still be preserved on arithmetic-style forms.
func TestPatternOnlyModeSoundOnArithmetic(t *testing.T) {
	forms := []*fprm.Form{
		formOf(2, []int{0}, []int{1}, []int{0, 1}),
		formOf(3, []int{0, 1}, []int{0, 2}, []int{1, 2}), // carry
		formOf(4, []int{0}, []int{1}, []int{2}, []int{3}),
		formOf(5, []int{0, 1}, []int{0, 1, 2}, []int{3, 4}, []int{3}),
	}
	for i, f := range forms {
		net := netFromForm(f)
		m, spec := specOf(net)
		Remove(net, Options{Form: f, Verify: false})
		if !equalSpec(net, m, spec) {
			t.Errorf("form %d: pattern-only removal changed the function", i)
		}
	}
}

// Property: on random ESOPs, verified removal preserves the function and
// never increases cost.
func TestQuickRemovePreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		form := fprm.NewForm(n, nil)
		for i := 0; i < 2+rng.Intn(6); i++ {
			c := cube.One(n)
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 1 {
					c.Vars.Set(v)
				}
			}
			form.Cubes.Add(c)
		}
		form.Cubes.Canonicalize()
		if form.Cubes.IsZero() {
			return true
		}
		net := netFromForm(form)
		m, spec := specOf(net)
		before := net.CollectStats()
		Remove(net, Options{Form: form, Verify: true})
		if !equalSpec(net, m, spec) {
			return false
		}
		return net.CollectStats().Gates2 <= before.Gates2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: pattern-only mode also preserves the function on random ESOPs
// (the pattern set plus union closure is strong enough at these sizes).
func TestQuickPatternOnlyPreserves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		form := fprm.NewForm(n, nil)
		for i := 0; i < 2+rng.Intn(5); i++ {
			c := cube.One(n)
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 1 {
					c.Vars.Set(v)
				}
			}
			form.Cubes.Add(c)
		}
		form.Cubes.Canonicalize()
		if form.Cubes.IsZero() {
			return true
		}
		net := netFromForm(form)
		m, spec := specOf(net)
		Remove(net, Options{Form: form, Verify: false})
		return equalSpec(net, m, spec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestNegativePolarityForm: removal works with mixed polarities.
func TestNegativePolarityForm(t *testing.T) {
	pol := []bool{false, true, false}
	f := fprm.NewForm(3, pol)
	f.Cubes.Add(cube.New(3, 0))
	f.Cubes.Add(cube.New(3, 1))
	f.Cubes.Add(cube.New(3, 0, 1))
	f.Cubes.Add(cube.New(3, 2))
	net := netFromForm(f)
	m, spec := specOf(net)
	Remove(net, Options{Form: f, Verify: true})
	if !equalSpec(net, m, spec) {
		t.Fatal("function changed under mixed polarity")
	}
}

// TestBuildPatternsContents: AZ, AO, OC and SA1 all present.
func TestBuildPatternsContents(t *testing.T) {
	f := formOf(3, []int{0, 1}, []int{2})
	pats := BuildPatterns([]*fprm.Form{f}, 100, 100)
	keys := map[string]bool{}
	for _, p := range pats {
		keys[p.Key()] = true
	}
	has := func(bits ...int) bool {
		s := cube.NewBitSet(3)
		for _, b := range bits {
			s.Set(b)
		}
		return keys[s.Key()]
	}
	if !has() { // AZ
		t.Error("AZ missing")
	}
	if !has(0, 1, 2) { // AO
		t.Error("AO missing")
	}
	if !has(0, 1) || !has(2) { // OC
		t.Error("OC patterns missing")
	}
	if !has(0) || !has(1) { // SA1 of cube x0x1
		t.Error("SA1 patterns missing")
	}
}

func TestBuildPatternsPolarityTranslation(t *testing.T) {
	// Negative polarity on v0: literal set means PI value 0.
	f := fprm.NewForm(2, []bool{false, true})
	f.Cubes.Add(cube.New(2, 0, 1))
	pats := BuildPatterns([]*fprm.Form{f}, 10, 10)
	// AZ in literal space = (lit0=0, lit1=0) = (x0=1, x1=0).
	found := false
	for _, p := range pats {
		if p.Has(0) && !p.Has(1) {
			found = true
		}
	}
	if !found {
		t.Error("polarity translation wrong in pattern generation")
	}
}

// TestMultiOutputForms: shared subnetwork between POs must survive.
func TestMultiOutputForms(t *testing.T) {
	// f0 = x0 ⊕ x1 ⊕ x0x1 (= x0+x1), f1 = x0x1 ⊕ x2.
	f0 := formOf(3, []int{0}, []int{1}, []int{0, 1})
	f1 := formOf(3, []int{0, 1}, []int{2})
	net := network.New("mo")
	pis := []int{net.AddPI("a"), net.AddPI("b"), net.AddPI("c")}
	em := factor.NewEmitter(net, pis, nil)
	e0 := factor.CubeMethod(f0.Cubes, factor.Options{ApplyRules: false})
	e1 := factor.CubeMethod(f1.Cubes, factor.Options{ApplyRules: false})
	net.AddPO("f0", em.Emit(e0))
	net.AddPO("f1", em.Emit(e1))
	m, spec := specOf(net)
	Remove(net, Options{Forms: []*fprm.Form{f0, f1}, Verify: true})
	if !equalSpec(net, m, spec) {
		t.Fatal("multi-output removal changed a function")
	}
	if net.CollectStats().XORs > 1 {
		t.Errorf("f0's XORs should reduce away; stats %+v", net.CollectStats())
	}
}
