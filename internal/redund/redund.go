// Package redund implements the redundancy analysis of Section 4 of the
// paper: XOR gates whose input patterns are uncontrollable or unobservable
// are reduced to single OR/AND gates (Properties 3-7), and redundant
// fanins of AND gates are removed afterwards, all driven by simulating a
// small, decidable set of primary-input patterns derived from the FPRM
// cubes:
//
//	AZ  — all literals 0 (Property 1: every XOR gate sees (0,0))
//	AO  — all literals 1
//	OC  — one pattern per FPRM cube: exactly its literals set to 1
//	SA1 — per cube, per literal: the OC pattern with that literal at 0
//	UN  — cube-support union patterns for the paper's parity-enumeration
//	      step (deciding controllability of input patterns the OC set
//	      does not produce)
//
// A candidate reduction must leave every primary output unchanged on every
// pattern (this subsumes the controllability and observability conditions
// of Properties 3-7 on the pattern set). Because the paper's §4 parity
// enumeration is published only as a sketch, Options.Verify (default on in
// the synthesis flow) additionally confirms each candidate with an exact
// BDD equivalence check before committing it; Options.Verify=false runs
// the pure pattern-based method.
package redund

import (
	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/cube"
	"repro/internal/fprm"
	"repro/internal/network"
)

// Options configure redundancy removal.
type Options struct {
	// Budget, when non-nil, meters the pass: the verification BDD manager
	// is budgeted (exhaustion unwinds with panic(*budget.Err); the caller
	// must wrap Remove in budget.Guard and treat a trip as "pass skipped",
	// restoring the network from a snapshot), and the fixpoint loop polls
	// the budget between passes, stopping gracefully when exhausted.
	Budget *budget.Budget
	// Form is the FPRM source of a single-output network; its cubes
	// generate the pattern sets. Provide either Form or Forms.
	Form *fprm.Form
	// Forms lists the per-output FPRM forms for multi-output networks;
	// when non-nil it is used instead of Form.
	Forms []*fprm.Form
	// Verify confirms every candidate reduction with a BDD equivalence
	// check against the original network before committing it.
	Verify bool
	// MaxOCPatterns caps the per-cube pattern sets (0 = 4096). Very large
	// FPRM forms (e.g. wide adder carries) are sampled.
	MaxOCPatterns int
	// MaxUnionPatterns caps the cube-support union set (0 = 1024).
	MaxUnionPatterns int
	// MaxPasses bounds the backward-propagation fixpoint (0 = 4).
	MaxPasses int
}

// Result reports what the pass did.
type Result struct {
	XorToOr       int // Property 3 reductions
	XorToAnd      int // Property 4 reductions (either phase)
	FaninsRemoved int // untestable s-a-1 fanins removed
	ConstFolded   int // untestable s-a-0 gates forced to constant
	Patterns      int // primary-input patterns simulated
	Candidates    int // reductions proposed by the pattern analysis
	Reverted      int // candidates rejected by the exact verification
	Passes        int // fixpoint iterations executed (including the final no-change pass)
	// BudgetCut reports the fixpoint loop stopped early on an exhausted
	// budget; the reductions committed before the cut are kept.
	BudgetCut bool
}

func (o Options) maxOC() int {
	if o.MaxOCPatterns > 0 {
		return o.MaxOCPatterns
	}
	return 4096
}

func (o Options) maxUnion() int {
	if o.MaxUnionPatterns > 0 {
		return o.MaxUnionPatterns
	}
	return 1024
}

func (o Options) maxPasses() int {
	if o.MaxPasses > 0 {
		return o.MaxPasses
	}
	return 4
}

func (o Options) forms() []*fprm.Form {
	if o.Forms != nil {
		return o.Forms
	}
	return []*fprm.Form{o.Form}
}

// BuildPatterns generates the Section 4 pattern sets for the given FPRM
// forms as PI assignments (bit v = value of input v).
func BuildPatterns(forms []*fprm.Form, maxOC, maxUnion int) []cube.BitSet {
	if len(forms) == 0 {
		return nil
	}
	n := forms[0].NumVars
	var patterns []cube.BitSet
	seen := make(map[string]bool)
	// Literal values are translated to PI values through the polarity of
	// the form the cube came from (outputs may use different vectors).
	add := func(lits cube.BitSet, pol []bool) {
		assign := cube.NewBitSet(n)
		for v := 0; v < n; v++ {
			if lits.Has(v) == pol[v] {
				assign.Set(v)
			}
		}
		k := assign.Key()
		if !seen[k] {
			seen[k] = true
			patterns = append(patterns, assign)
		}
	}

	// AZ and AO per polarity vector.
	ao := cube.NewBitSet(n)
	for v := 0; v < n; v++ {
		ao.Set(v)
	}
	for _, f := range forms {
		add(cube.NewBitSet(n), f.Polarity)
		add(ao, f.Polarity)
	}

	// OC and SA1 under the cap. The budget counts emitted patterns, not
	// cubes: a k-literal cube contributes its OC pattern plus k SA1
	// patterns, and wide-support functions would otherwise explode the
	// set (the paper notes the PI pattern set "needs further improvement
	// to synthesize large, multioutput functions more efficiently").
	budget := maxOC
	for _, f := range forms {
		if budget <= 0 {
			break
		}
		for _, c := range f.Cubes.Cubes {
			if budget <= 0 {
				break
			}
			budget--
			add(c.Vars.Clone(), f.Polarity)
			c.Vars.ForEach(func(v int) {
				if budget <= 0 {
					return
				}
				budget--
				p := c.Vars.Clone()
				p.Clear(v)
				add(p, f.Polarity)
			})
		}
	}

	// Union lattice: breadth-first closure of cube-support unions, per
	// form (the parity argument of Section 4 is per output function).
	perForm := maxUnion / len(forms)
	if perForm < 64 {
		perForm = 64
	}
	maxUnion = perForm
	for _, f := range forms {
		var supports []cube.BitSet
		for _, c := range f.Cubes.Cubes {
			supports = append(supports, c.Vars)
			if len(supports) > 256 {
				break
			}
		}
		unionSeen := make(map[string]bool)
		var queue []cube.BitSet
		for _, s := range supports {
			k := s.Key()
			if !unionSeen[k] {
				unionSeen[k] = true
				queue = append(queue, s.Clone())
			}
		}
		for qi := 0; qi < len(queue) && len(queue) < maxUnion; qi++ {
			for _, s := range supports {
				if len(queue) >= maxUnion {
					break
				}
				u := queue[qi].Clone()
				u.UnionWith(s)
				k := u.Key()
				if !unionSeen[k] {
					unionSeen[k] = true
					queue = append(queue, u)
				}
			}
		}
		for _, q := range queue {
			add(q, f.Polarity)
		}
	}
	return patterns
}

// engine carries the mutable state of one removal run. Gate values on the
// pattern set are cached per batch; candidate rewrites are screened by
// resimulating only the rewritten gate's transitive fanout cone.
type engine struct {
	net      *network.Network
	patterns []cube.BitSet
	piWords  [][]uint64 // [batch][pi] packed pattern words
	vals     [][]uint64 // [batch][gate] cached values for the current net
	order    []int      // cached topological order
	fanouts  [][]int
	poIdx    map[int][]int // gate -> PO indices it drives
	bm       *bdd.Manager
	spec     []bdd.Ref
	verify   bool
	scratch  []uint64
	res      Result
}

// Remove reduces redundant XOR gates and AND fanins in net per Section 4.
// The network is modified in place; the function is preserved (guaranteed
// when Verify is set, and by the pattern analysis otherwise).
func Remove(net *network.Network, opt Options) Result {
	e := &engine{net: net, verify: opt.Verify}
	e.patterns = BuildPatterns(opt.forms(), opt.maxOC(), opt.maxUnion())
	e.res.Patterns = len(e.patterns)
	e.packPatterns()
	e.refresh()
	if opt.Verify {
		e.bm = bdd.New(len(net.PIs))
		e.bm.SetBudget(opt.Budget)
		e.spec = net.ToBDDs(e.bm)
	}

	for pass := 0; pass < opt.maxPasses(); pass++ {
		if opt.Budget.Exceeded() != nil {
			// Out of budget: keep the reductions committed so far, and
			// report the cut so the caller's degradation trail stays
			// truthful about the partially-run pass.
			e.res.BudgetCut = true
			break
		}
		e.res.Passes++
		changed := e.xorPass()
		changed = e.faninPass() || changed
		if !changed {
			break
		}
	}
	net.Sweep()
	return e.res
}

// packPatterns splits patterns into 64-wide word batches per PI.
func (e *engine) packPatterns() {
	nPI := len(e.net.PIs)
	for base := 0; base < len(e.patterns); base += 64 {
		words := make([]uint64, nPI)
		for j := 0; j < 64 && base+j < len(e.patterns); j++ {
			p := e.patterns[base+j]
			for v := 0; v < nPI; v++ {
				if p.Has(v) {
					words[v] |= 1 << uint(j)
				}
			}
		}
		e.piWords = append(e.piWords, words)
	}
}

// refresh rebuilds the cached topological order, fanouts, PO index and
// all per-batch gate values for the current network structure.
func (e *engine) refresh() {
	e.order = e.net.TopoOrder()
	e.fanouts = e.net.Fanouts()
	e.poIdx = make(map[int][]int)
	for i, po := range e.net.POs {
		e.poIdx[po.Gate] = append(e.poIdx[po.Gate], i)
	}
	e.vals = make([][]uint64, len(e.piWords))
	for b, words := range e.piWords {
		e.vals[b] = e.net.Simulate(words)
	}
	if cap(e.scratch) < len(e.net.Gates) {
		e.scratch = make([]uint64, len(e.net.Gates))
	}
}

// cone returns the transitive fanout of gate id (including id), in
// topological order, under the current cached structure.
func (e *engine) cone(id int) []int {
	in := make(map[int]bool)
	in[id] = true
	var out []int
	for _, g := range e.order {
		if in[g] {
			out = append(out, g)
			for _, fo := range e.fanouts[g] {
				in[fo] = true
			}
		}
	}
	return out
}

// batchMask returns the valid-bit mask of batch b.
func (e *engine) batchMask(b int) uint64 {
	rem := len(e.patterns) - b*64
	if rem >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(rem) - 1
}

// screen reports whether the candidate rewrite of gate changed (plus any
// gates appended at index ≥ oldLen, e.g. a new inverter) leaves every
// primary output unchanged on every pattern. Only the fanout cone of the
// rewritten gate is resimulated; cached values are not modified.
func (e *engine) screen(changed, oldLen int) bool {
	// Topological cone of `changed` over the pre-rewrite order (fanin
	// rewrites never create edges among old gates, so the cached order
	// remains valid; new gates only feed `changed` and are evaluated
	// first, from cached fanin values).
	fanouts := e.net.Fanouts()
	inCone := make(map[int]bool)
	inCone[changed] = true
	var coneList []int
	for _, g := range e.order {
		if inCone[g] {
			coneList = append(coneList, g)
			for _, fo := range fanouts[g] {
				inCone[fo] = true
			}
		}
	}
	scratch := e.scratch
	if cap(scratch) < len(e.net.Gates) {
		scratch = make([]uint64, len(e.net.Gates))
		e.scratch = scratch
	}
	scratch = scratch[:len(e.net.Gates)]
	var in []uint64
	for b := range e.piWords {
		vals := e.vals[b]
		read := func(f int) uint64 {
			if f >= oldLen || inCone[f] {
				return scratch[f]
			}
			return vals[f]
		}
		evalInto := func(id int) {
			g := &e.net.Gates[id]
			in = in[:0]
			for _, f := range g.Fanins {
				in = append(in, read(f))
			}
			scratch[id] = network.EvalGateWord(g.Type, in)
		}
		for id := oldLen; id < len(e.net.Gates); id++ {
			evalInto(id)
		}
		for _, id := range coneList {
			evalInto(id)
		}
		mask := e.batchMask(b)
		for _, id := range coneList {
			if pos, ok := e.poIdx[id]; ok && len(pos) > 0 {
				if (scratch[id]^vals[id])&mask != 0 {
					return false
				}
			}
		}
	}
	return true
}

// verified reports whether the current network is exactly equivalent to
// the specification (only called when verify is on).
func (e *engine) verified() bool {
	got := e.net.ToBDDs(e.bm)
	for i := range got {
		if got[i] != e.spec[i] {
			return false
		}
	}
	return true
}

// structural support per gate, as PI index sets.
func (e *engine) supports() []cube.BitSet {
	n := e.net
	sup := make([]cube.BitSet, len(n.Gates))
	piIdx := make(map[int]int)
	for i, id := range n.PIs {
		piIdx[id] = i
	}
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		s := cube.NewBitSet(len(n.PIs))
		if g.Type == network.PI {
			s.Set(piIdx[id])
		}
		for _, f := range g.Fanins {
			if sup[f] != nil {
				s.UnionWith(sup[f])
			}
		}
		sup[id] = s
	}
	return sup
}

// tryCandidate applies fn (which mutates gate `changed` and may append new
// gates), screens the change on the pattern set by cone resimulation, and
// optionally verifies exactly; on failure it calls undo. On success the
// cached values are refreshed. Returns whether the change was kept.
func (e *engine) tryCandidate(changed int, apply, undo func()) bool {
	e.res.Candidates++
	oldLen := len(e.net.Gates)
	apply()
	if !e.screen(changed, oldLen) {
		undo()
		return false
	}
	if e.verify && !e.verified() {
		e.res.Reverted++
		undo()
		return false
	}
	e.refresh()
	return true
}

// xorPass walks XOR gates from the outputs backward and reduces each to
// OR (Property 3) or AND-with-complement (Property 4) when the pattern
// analysis allows it. Returns whether anything changed.
func (e *engine) xorPass() bool {
	n := e.net
	order := n.TopoOrder()
	sup := e.supports()
	changed := false
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := &n.Gates[id]
		if g.Type != network.Xor || len(g.Fanins) != 2 {
			continue
		}
		a, b := g.Fanins[0], g.Fanins[1]
		// XOR gates over disjoint supports are never reducible (all four
		// input patterns controllable and observable, Section 4); this
		// includes the balanced output trees.
		if !sup[a].Intersects(sup[b]) {
			continue
		}
		// Observed input patterns over the pattern set guide which of the
		// three reductions to attempt first.
		seen := e.observedInputPatterns(id)
		type cand struct {
			t          network.GateType
			negA, negB bool
			blocks     uint8 // input pattern the reduction relies on missing
		}
		cands := []cand{
			{t: network.Or, blocks: 1 << 3},              // g+h needs (1,1) missing
			{t: network.And, negB: true, blocks: 1 << 1}, // g·h̄ needs (0,1) missing
			{t: network.And, negA: true, blocks: 1 << 2}, // ḡ·h needs (1,0) missing
		}
		for _, c := range cands {
			if seen&c.blocks != 0 {
				continue // pattern observed at the gate: reduction would misbehave
			}
			saved := network.Gate{ID: g.ID, Type: g.Type, Fanins: append([]int(nil), g.Fanins...)}
			cc := c
			ok := e.tryCandidate(id, func() {
				fa, fb := a, b
				if cc.negA {
					fa = n.AddGate(network.Not, a)
				}
				if cc.negB {
					fb = n.AddGate(network.Not, b)
				}
				gg := &n.Gates[id] // re-take: AddGate may have grown the slice
				gg.Type = cc.t
				gg.Fanins = []int{fa, fb}
			}, func() {
				gg := &n.Gates[id]
				gg.Type = saved.Type
				gg.Fanins = saved.Fanins
			})
			if ok {
				if c.t == network.Or {
					e.res.XorToOr++
				} else {
					e.res.XorToAnd++
				}
				changed = true
				break
			}
		}
	}
	return changed
}

// observedInputPatterns returns a bitmask over {00,01,10,11} of the input
// patterns of gate id occurring under the pattern set, read from the
// cached simulation values.
func (e *engine) observedInputPatterns(id int) uint8 {
	g := &e.net.Gates[id]
	a, b := g.Fanins[0], g.Fanins[1]
	var seen uint8
	for bi := range e.piWords {
		vals := e.vals[bi]
		mask := e.batchMask(bi)
		wa, wb := vals[a], vals[b]
		if ^wa & ^wb & mask != 0 {
			seen |= 1 << 0
		}
		if ^wa&wb&mask != 0 {
			seen |= 1 << 1
		}
		if wa & ^wb & mask != 0 {
			seen |= 1 << 2
		}
		if wa&wb&mask != 0 {
			seen |= 1 << 3
		}
	}
	return seen
}

// faninPass removes redundant fanins of AND/OR gates (untestable s-a-1 /
// s-a-0 wires, end of Section 4). Returns whether anything changed.
func (e *engine) faninPass() bool {
	n := e.net
	changed := false
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if (g.Type != network.And && g.Type != network.Or) || len(g.Fanins) < 2 {
			continue
		}
		for fi := 0; fi < len(g.Fanins) && len(g.Fanins) > 2; fi++ {
			saved := append([]int(nil), g.Fanins...)
			if e.tryCandidate(id, func() {
				gg := &n.Gates[id]
				gg.Fanins = append(append([]int(nil), gg.Fanins[:fi]...), gg.Fanins[fi+1:]...)
			}, func() {
				gg := &n.Gates[id]
				gg.Fanins = saved
			}) {
				e.res.FaninsRemoved++
				changed = true
				fi--
			}
		}
		// Two-input gates: removing a fanin means the gate becomes a
		// buffer of the other input.
		if len(g.Fanins) == 2 {
			for fi := 0; fi < 2; fi++ {
				savedT := g.Type
				saved := append([]int(nil), g.Fanins...)
				other := g.Fanins[1-fi]
				if e.tryCandidate(id, func() {
					gg := &n.Gates[id]
					gg.Type = network.Buf
					gg.Fanins = []int{other}
				}, func() {
					gg := &n.Gates[id]
					gg.Type = savedT
					gg.Fanins = saved
				}) {
					e.res.FaninsRemoved++
					changed = true
					break
				}
			}
		}
		// Constant folding: an AND whose s-a-0 is untestable is constant 0
		// (dually OR / constant 1).
		if g.Type == network.And || g.Type == network.Or {
			savedT := g.Type
			saved := append([]int(nil), g.Fanins...)
			constT := network.Const0
			if g.Type == network.Or {
				constT = network.Const1
			}
			if e.tryCandidate(id, func() {
				gg := &n.Gates[id]
				gg.Type = constT
				gg.Fanins = nil
			}, func() {
				gg := &n.Gates[id]
				gg.Type = savedT
				gg.Fanins = saved
			}) {
				e.res.ConstFolded++
				changed = true
			}
		}
	}
	return changed
}
