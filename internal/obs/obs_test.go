package obs

import (
	"sync"
	"testing"
)

// Every method must be a no-op on a nil receiver — the disabled path of
// every probe site in the pipeline.
func TestNilReceiversAreSafe(t *testing.T) {
	var d *DD
	d.UniqueHit()
	d.UniqueMiss(8)
	d.OpHit()
	d.OpMiss()

	var f *Factor
	f.RuleA()
	f.RuleB()
	f.RuleC()
	f.RuleD()
	f.RuleE()
	f.Pass()
	f.DivisorHit()

	var s *Search
	s.Candidate()
	s.Improved()
	s.SetBest(3, 7)

	var c *Collector
	if c.BDD() != nil || c.OFDD() != nil || c.Factor() != nil {
		t.Error("nil collector must return nil groups")
	}
	c.StartOutputs(4)
	if c.Output(0) != nil {
		t.Error("nil collector must return nil search groups")
	}
	got := c.Snapshot()
	if got.BDD != (DDStats{}) || got.OFDD != (DDStats{}) ||
		got.Factor != (FactorStats{}) || got.Outputs != nil {
		t.Errorf("nil collector snapshot = %+v, want zero", got)
	}
}

// The disabled path must not allocate: Options.Obs == nil costs one nil
// check per probe, nothing more. This is the zero-overhead contract the
// instrumented hot loops (bdd.mk, ofdd.mk, ITE, the Gray-code walk)
// rely on.
func TestDisabledCollectorZeroAllocs(t *testing.T) {
	var d *DD
	var f *Factor
	var s *Search
	var c *Collector
	allocs := testing.AllocsPerRun(1000, func() {
		d.UniqueHit()
		d.UniqueMiss(16)
		d.OpHit()
		d.OpMiss()
		f.RuleA()
		f.RuleD()
		f.Pass()
		s.Candidate()
		s.Improved()
		s.SetBest(1, 2)
		c.Output(3).Candidate()
	})
	if allocs != 0 {
		t.Errorf("disabled probes allocated %.1f per run, want 0", allocs)
	}
}

// The enabled counters must not allocate either — they sit inside mk().
func TestEnabledCountersZeroAllocs(t *testing.T) {
	c := NewCollector()
	c.StartOutputs(2)
	d := c.BDD()
	allocs := testing.AllocsPerRun(1000, func() {
		d.UniqueHit()
		d.UniqueMiss(16)
		d.OpHit()
		d.OpMiss()
		c.Factor().RuleB()
		c.Output(1).Candidate()
	})
	if allocs != 0 {
		t.Errorf("enabled probes allocated %.1f per run, want 0", allocs)
	}
}

// UniqueMiss counts a rehash exactly when the node count crosses a
// power of two, and tracks the peak monotonically.
func TestDDRehashAndPeak(t *testing.T) {
	var d DD
	for n := 1; n <= 9; n++ {
		d.UniqueMiss(n)
	}
	s := d.Snapshot()
	if s.UniqueMisses != 9 {
		t.Errorf("unique misses = %d, want 9", s.UniqueMisses)
	}
	if s.Rehashes != 4 { // 1, 2, 4, 8
		t.Errorf("rehashes = %d, want 4", s.Rehashes)
	}
	if s.PeakNodes != 9 {
		t.Errorf("peak = %d, want 9", s.PeakNodes)
	}
	d.UniqueMiss(5) // a second, smaller manager must not lower the peak
	if got := d.Snapshot().PeakNodes; got != 9 {
		t.Errorf("peak after smaller report = %d, want 9", got)
	}
}

func TestSnapshotRates(t *testing.T) {
	var d DD
	d.UniqueHit()
	d.UniqueMiss(3)
	d.UniqueMiss(5)
	d.OpHit()
	d.OpHit()
	d.OpHit()
	d.OpMiss()
	s := d.Snapshot()
	if want := 1.0 / 3.0; s.UniqueHitRate != want {
		t.Errorf("unique hit rate = %v, want %v", s.UniqueHitRate, want)
	}
	if want := 3.0 / 4.0; s.OpHitRate != want {
		t.Errorf("op hit rate = %v, want %v", s.OpHitRate, want)
	}
	if idle := (&DD{}).Snapshot(); idle.UniqueHitRate != 0 || idle.OpHitRate != 0 {
		t.Errorf("idle rates = %v/%v, want 0/0", idle.UniqueHitRate, idle.OpHitRate)
	}
}

func TestCollectorOutputs(t *testing.T) {
	c := NewCollector()
	if c.Output(0) != nil {
		t.Error("Output before StartOutputs must be nil")
	}
	c.StartOutputs(3)
	if c.Output(-1) != nil || c.Output(3) != nil {
		t.Error("out-of-range Output must be nil")
	}
	c.Output(1).Candidate()
	c.Output(1).Candidate()
	c.Output(1).Improved()
	c.Output(2).SetBest(4, 11)
	s := c.Snapshot()
	if len(s.Outputs) != 3 {
		t.Fatalf("snapshot outputs = %d, want 3", len(s.Outputs))
	}
	if s.Outputs[1].Candidates != 2 || s.Outputs[1].Improvements != 1 {
		t.Errorf("output 1 = %+v", s.Outputs[1])
	}
	if s.Outputs[2].BestCubes != 4 || s.Outputs[2].BestLits != 11 {
		t.Errorf("output 2 = %+v", s.Outputs[2])
	}
	if s.Outputs[0] != (SearchStats{}) {
		t.Errorf("untouched output 0 = %+v, want zero", s.Outputs[0])
	}
}

// Concurrent feeding must produce exact totals (the derivation worker
// pool feeds the shared DD groups from several goroutines).
func TestConcurrentCountersSumExactly(t *testing.T) {
	var d DD
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d.UniqueMiss(w*per + i + 1)
				d.OpHit()
			}
		}(w)
	}
	wg.Wait()
	s := d.Snapshot()
	if s.UniqueMisses != workers*per || s.OpHits != workers*per {
		t.Errorf("totals = %d/%d, want %d", s.UniqueMisses, s.OpHits, workers*per)
	}
	if s.PeakNodes != workers*per {
		t.Errorf("peak = %d, want %d", s.PeakNodes, workers*per)
	}
}
