// Package obs is the zero-dependency observability layer of the
// synthesis pipeline: a set of counter groups that the decision-diagram
// managers, the polarity search, the factoring rules, and the budget
// feed while a run executes, plus a plain-value Snapshot for reporting
// (the `rmsyn -stats-json` report and the `rmbench` benchmark artifact
// are built from it).
//
// # Disabled cost
//
// Every counter group is used through a possibly-nil pointer in the
// style of core.ProbeHooks: all methods are safe on a nil receiver and
// return immediately, so an uninstrumented run pays one nil check per
// probe site and allocates nothing (asserted by testing.AllocsPerRun in
// the tests). Production call sites never construct a Collector unless
// the caller asked for stats.
//
// # Concurrency and determinism
//
// Counters are atomic: the per-output derivation fan-out of
// core.Synthesize runs on a worker pool, and all workers feed the same
// groups. Every metric is defined so its value is independent of the
// worker count: per-manager counts are deterministic because managers
// are per-output, and the aggregate is a sum/max over the same set of
// outputs regardless of scheduling. Wall-clock spans (recorded by core,
// not here) are the only nondeterministic fields of a report.
package obs

import "sync/atomic"

// DD aggregates decision-diagram table statistics: unique-table
// (hash-cons) and computed-table (ITE/XOR memo) hits and misses, a
// rehash count, and the peak node count. One DD instance serves a
// whole diagram class (all BDD managers of a run, or all OFDD
// managers), so per-output managers feed the same group.
type DD struct {
	uniqueHits   atomic.Int64
	uniqueMisses atomic.Int64
	opHits       atomic.Int64
	opMisses     atomic.Int64
	rehashes     atomic.Int64
	peakNodes    atomic.Int64
}

// UniqueHit counts a unique-table lookup that found an existing node.
func (d *DD) UniqueHit() {
	if d == nil {
		return
	}
	d.uniqueHits.Add(1)
}

// UniqueMiss counts a unique-table miss (a fresh node allocation).
// nodes is the manager's node count after the allocation: crossing a
// power of two is counted as a rehash — the deterministic proxy for the
// hidden growth of Go's map-backed unique table — and the peak node
// count is advanced.
func (d *DD) UniqueMiss(nodes int) {
	if d == nil {
		return
	}
	d.uniqueMisses.Add(1)
	n := int64(nodes)
	if n > 0 && n&(n-1) == 0 {
		d.rehashes.Add(1)
	}
	for {
		p := d.peakNodes.Load()
		if n <= p || d.peakNodes.CompareAndSwap(p, n) {
			return
		}
	}
}

// OpHit counts a computed-table hit (memoized ITE or XOR result).
func (d *DD) OpHit() {
	if d == nil {
		return
	}
	d.opHits.Add(1)
}

// OpMiss counts a computed-table miss (one real apply step).
func (d *DD) OpMiss() {
	if d == nil {
		return
	}
	d.opMisses.Add(1)
}

// DDStats is the plain-value snapshot of a DD group.
type DDStats struct {
	UniqueHits   int64 `json:"unique_hits"`
	UniqueMisses int64 `json:"unique_misses"`
	OpHits       int64 `json:"op_hits"`
	OpMisses     int64 `json:"op_misses"`
	Rehashes     int64 `json:"rehashes"`
	PeakNodes    int64 `json:"peak_nodes"`
	// UniqueHitRate and OpHitRate are hits/(hits+misses), 0 when idle.
	UniqueHitRate float64 `json:"unique_hit_rate"`
	OpHitRate     float64 `json:"op_hit_rate"`
}

func rate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Snapshot captures the group's current values (zero on nil).
func (d *DD) Snapshot() DDStats {
	if d == nil {
		return DDStats{}
	}
	s := DDStats{
		UniqueHits:   d.uniqueHits.Load(),
		UniqueMisses: d.uniqueMisses.Load(),
		OpHits:       d.opHits.Load(),
		OpMisses:     d.opMisses.Load(),
		Rehashes:     d.rehashes.Load(),
		PeakNodes:    d.peakNodes.Load(),
	}
	s.UniqueHitRate = rate(s.UniqueHits, s.UniqueMisses)
	s.OpHitRate = rate(s.OpHits, s.OpMisses)
	return s
}

// Factor counts Section 3 rule applications during factoring: the
// reduction rules (a)-(c) at XOR operand lists, the common-factor
// extractions (d) at XOR level and (e) at OR level, rule-rewrite passes,
// and the cross-output divisor-registry hits of the cube method.
type Factor struct {
	ruleA       atomic.Int64
	ruleB       atomic.Int64
	ruleC       atomic.Int64
	ruleD       atomic.Int64
	ruleE       atomic.Int64
	passes      atomic.Int64
	divisorHits atomic.Int64
}

// RuleA counts one firing of reduction rule (a), A ⊕ AB = A·B̄
// (direct or spread form).
func (f *Factor) RuleA() {
	if f == nil {
		return
	}
	f.ruleA.Add(1)
}

// RuleB counts one firing of reduction rule (b), X ⊕ Y ⊕ XY = X + Y.
func (f *Factor) RuleB() {
	if f == nil {
		return
	}
	f.ruleB.Add(1)
}

// RuleC counts one firing of reduction rule (c), AB ⊕ B̄ = A + B̄.
func (f *Factor) RuleC() {
	if f == nil {
		return
	}
	f.ruleC.Add(1)
}

// RuleD counts one common-factor extraction at an XOR operand list
// (factorization rule (d) at expression level).
func (f *Factor) RuleD() {
	if f == nil {
		return
	}
	f.ruleD.Add(1)
}

// RuleE counts one common-factor extraction at an OR operand list
// (factorization rule (e)).
func (f *Factor) RuleE() {
	if f == nil {
		return
	}
	f.ruleE.Add(1)
}

// Pass counts one whole rule-rewrite pass over an expression.
func (f *Factor) Pass() {
	if f == nil {
		return
	}
	f.passes.Add(1)
}

// DivisorHit counts one successful division by a registered cross-output
// divisor (or a pair-XOR divisor) in the cube method.
func (f *Factor) DivisorHit() {
	if f == nil {
		return
	}
	f.divisorHits.Add(1)
}

// FactorStats is the plain-value snapshot of a Factor group.
type FactorStats struct {
	RuleA       int64 `json:"rule_a"`
	RuleB       int64 `json:"rule_b"`
	RuleC       int64 `json:"rule_c"`
	RuleD       int64 `json:"rule_d"`
	RuleE       int64 `json:"rule_e"`
	Passes      int64 `json:"passes"`
	DivisorHits int64 `json:"divisor_hits"`
}

// Snapshot captures the group's current values (zero on nil).
func (f *Factor) Snapshot() FactorStats {
	if f == nil {
		return FactorStats{}
	}
	return FactorStats{
		RuleA:       f.ruleA.Load(),
		RuleB:       f.ruleB.Load(),
		RuleC:       f.ruleC.Load(),
		RuleD:       f.ruleD.Load(),
		RuleE:       f.ruleE.Load(),
		Passes:      f.passes.Load(),
		DivisorHits: f.divisorHits.Load(),
	}
}

// Search tracks one output's polarity-search progress: candidate
// polarity vectors evaluated, strict improvements accepted, and the
// final best cube/literal counts. An exhaustive search's sharded walk
// feeds one Search from several goroutines; the candidate total is the
// same for any shard count (every index is evaluated exactly once).
type Search struct {
	candidates   atomic.Int64
	improvements atomic.Int64
	bestCubes    atomic.Int64
	bestLits     atomic.Int64
}

// Candidate counts one polarity vector evaluated.
func (s *Search) Candidate() {
	if s == nil {
		return
	}
	s.candidates.Add(1)
}

// Improved counts one accepted strict improvement of the best-so-far
// form. Only the sequential searches (greedy descent, unsharded
// exhaustive walk) report improvements; a sharded walk counts local
// improvements per shard, which would depend on the shard count.
func (s *Search) Improved() {
	if s == nil {
		return
	}
	s.improvements.Add(1)
}

// SetBest records the search result's cube and literal counts.
func (s *Search) SetBest(cubes, lits int) {
	if s == nil {
		return
	}
	s.bestCubes.Store(int64(cubes))
	s.bestLits.Store(int64(lits))
}

// SearchStats is the plain-value snapshot of a Search group.
type SearchStats struct {
	Candidates   int64 `json:"candidates"`
	Improvements int64 `json:"improvements"`
	BestCubes    int64 `json:"best_cubes"`
	BestLits     int64 `json:"best_lits"`
}

// Snapshot captures the group's current values (zero on nil).
func (s *Search) Snapshot() SearchStats {
	if s == nil {
		return SearchStats{}
	}
	return SearchStats{
		Candidates:   s.candidates.Load(),
		Improvements: s.improvements.Load(),
		BestCubes:    s.bestCubes.Load(),
		BestLits:     s.bestLits.Load(),
	}
}

// Arbiter counts the per-cone basis arbitration of the combined
// GF(2)/SOP flow: predictor verdicts, hedged cones (both arms raced
// under one budget), per-cone arm wins, and overrides (an arm failure
// absorbed by its sibling's verified result instead of the degradation
// ladder). The predict phase and selection are sequential, so every
// counter is deterministic at any worker count.
type Arbiter struct {
	predXor, predSop, predHedge atomic.Int64
	hedges                      atomic.Int64
	winsXor, winsSop            atomic.Int64
	overrides                   atomic.Int64
}

// Prediction counts one predictor verdict ("xor", "sop", or "hedge").
func (a *Arbiter) Prediction(verdict string) {
	if a == nil {
		return
	}
	switch verdict {
	case "xor":
		a.predXor.Add(1)
	case "sop":
		a.predSop.Add(1)
	case "hedge":
		a.predHedge.Add(1)
	}
}

// HedgeStarted counts one cone racing both arms under sibling budget
// slices.
func (a *Arbiter) HedgeStarted() {
	if a == nil {
		return
	}
	a.hedges.Add(1)
}

// ArmWin counts the selected arm of a hedged cone ("xor" or "sop").
func (a *Arbiter) ArmWin(basis string) {
	if a == nil {
		return
	}
	switch basis {
	case "xor":
		a.winsXor.Add(1)
	case "sop":
		a.winsSop.Add(1)
	}
}

// Override counts one arm failure absorbed by the sibling arm's result.
func (a *Arbiter) Override() {
	if a == nil {
		return
	}
	a.overrides.Add(1)
}

// ArbiterStats is the plain-value snapshot of an Arbiter group.
type ArbiterStats struct {
	PredXor   int64 `json:"pred_xor"`
	PredSop   int64 `json:"pred_sop"`
	PredHedge int64 `json:"pred_hedge"`
	Hedges    int64 `json:"hedges"`
	WinsXor   int64 `json:"wins_xor"`
	WinsSop   int64 `json:"wins_sop"`
	Overrides int64 `json:"overrides"`
}

// Snapshot captures the group's current values (zero on nil).
func (a *Arbiter) Snapshot() ArbiterStats {
	if a == nil {
		return ArbiterStats{}
	}
	return ArbiterStats{
		PredXor:   a.predXor.Load(),
		PredSop:   a.predSop.Load(),
		PredHedge: a.predHedge.Load(),
		Hedges:    a.hedges.Load(),
		WinsXor:   a.winsXor.Load(),
		WinsSop:   a.winsSop.Load(),
		Overrides: a.overrides.Load(),
	}
}

// Collector gathers every counter group of one synthesis run. A nil
// Collector is valid everywhere and disables collection; the accessors
// below propagate the nil so call sites stay branch-free.
type Collector struct {
	bdd     DD
	ofdd    DD
	factor  Factor
	arbiter Arbiter
	outputs []Search
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// BDD returns the shared-BDD counter group (nil when c is nil).
func (c *Collector) BDD() *DD {
	if c == nil {
		return nil
	}
	return &c.bdd
}

// OFDD returns the OFDD counter group shared by every per-output and
// factor-phase OFDD manager (nil when c is nil).
func (c *Collector) OFDD() *DD {
	if c == nil {
		return nil
	}
	return &c.ofdd
}

// Factor returns the rule-application counter group (nil when c is nil).
func (c *Collector) Factor() *Factor {
	if c == nil {
		return nil
	}
	return &c.factor
}

// Arbiter returns the basis-arbitration counter group (nil when c is
// nil).
func (c *Collector) Arbiter() *Arbiter {
	if c == nil {
		return nil
	}
	return &c.arbiter
}

// StartOutputs sizes the per-output search groups. Call once, before
// the derivation fan-out starts; the groups themselves are then safe
// for concurrent use.
func (c *Collector) StartOutputs(n int) {
	if c == nil {
		return
	}
	c.outputs = make([]Search, n)
}

// Output returns output i's polarity-search group (nil when c is nil or
// StartOutputs has not sized the slice to cover i).
func (c *Collector) Output(i int) *Search {
	if c == nil || i < 0 || i >= len(c.outputs) {
		return nil
	}
	return &c.outputs[i]
}

// Stats is the deterministic portion of a run report: every field is
// bit-identical for any worker count (see the package comment).
type Stats struct {
	BDD     DDStats       `json:"bdd"`
	OFDD    DDStats       `json:"ofdd"`
	Factor  FactorStats   `json:"factor"`
	Arbiter ArbiterStats  `json:"arbiter"`
	Outputs []SearchStats `json:"polarity_search"`
}

// Snapshot captures the collector's current values. Safe on nil (zero
// Stats) and while workers are still feeding the groups, though callers
// normally snapshot after the run completes.
func (c *Collector) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		BDD:     c.bdd.Snapshot(),
		OFDD:    c.ofdd.Snapshot(),
		Factor:  c.factor.Snapshot(),
		Arbiter: c.arbiter.Snapshot(),
	}
	if len(c.outputs) > 0 {
		s.Outputs = make([]SearchStats, len(c.outputs))
		for i := range c.outputs {
			s.Outputs[i] = c.outputs[i].Snapshot()
		}
	}
	return s
}
