// Package delay provides static timing analysis for gate networks and
// mapped netlists. The paper's conclusion (Section 6) notes that the
// delay characteristics of FPRM-based circuits "will also differ from the
// results of conventional synthesis methods and need to be analyzed" —
// this package performs that analysis.
//
// Two models are provided:
//
//   - unit delay: every 2-input AND/OR level costs 1, an XOR costs the
//     depth of its 3-gate AND/OR expansion (2), inverters are free — the
//     pre-mapping counterpart of the paper's area metric;
//   - mapped delay: per-cell intrinsic delays plus load-dependent slope,
//     evaluated on a technology-mapped netlist.
package delay

import (
	"repro/internal/network"
	"repro/internal/techmap"
)

// UnitDelays holds per-gate-type depth costs for the unit-delay model.
var unitDepth = map[network.GateType]int{
	network.PI: 0, network.Const0: 0, network.Const1: 0,
	network.Buf: 0, network.Not: 0,
	network.And: 1, network.Or: 1, network.Nand: 1, network.Nor: 1,
	// A 2-input XOR in AND/OR gates is (a+b)·(ab)': two levels.
	network.Xor: 2, network.Xnor: 2,
}

// Report carries a timing analysis result.
type Report struct {
	CriticalPath int     // levels (unit model)
	Arrival      float64 // ns-like units (mapped model)
	// PerOutput lists the arrival at each primary output.
	PerOutput []float64
}

// UnitDelay computes the unit-delay critical path of a gate network.
// Multi-input gates count ⌈log2(k)⌉ levels per 2-input decomposition.
func UnitDelay(net *network.Network) Report {
	depth := make([]int, len(net.Gates))
	rep := Report{}
	for _, id := range net.TopoOrder() {
		g := &net.Gates[id]
		d := 0
		for _, f := range g.Fanins {
			if depth[f] > d {
				d = depth[f]
			}
		}
		cost := unitDepth[g.Type]
		if k := len(g.Fanins); k > 2 && cost > 0 {
			cost *= log2ceil(k)
		}
		depth[id] = d + cost
	}
	rep.PerOutput = make([]float64, len(net.POs))
	for i, po := range net.POs {
		rep.PerOutput[i] = float64(depth[po.Gate])
		if depth[po.Gate] > rep.CriticalPath {
			rep.CriticalPath = depth[po.Gate]
		}
	}
	rep.Arrival = float64(rep.CriticalPath)
	return rep
}

func log2ceil(k int) int {
	n := 0
	for v := 1; v < k; v <<= 1 {
		n++
	}
	return n
}

// cellDelay gives intrinsic delay and per-fanout load slope per cell, in
// normalized units loosely following mcnc.genlib's rise/fall averages.
var cellDelay = map[string]struct{ intrinsic, slope float64 }{
	"inv":   {1.0, 0.4},
	"nand2": {1.2, 0.5},
	"nor2":  {1.4, 0.5},
	"and2":  {1.9, 0.5},
	"or2":   {2.1, 0.5},
	"nand3": {1.6, 0.5},
	"nor3":  {1.8, 0.5},
	"nand4": {2.0, 0.5},
	"nor4":  {2.2, 0.5},
	"xor2":  {2.4, 0.6},
	"xnor2": {2.4, 0.6},
	"aoi21": {1.8, 0.5},
	"aoi22": {2.1, 0.5},
	"oai21": {1.8, 0.5},
	"oai22": {2.1, 0.5},
}

// MappedDelay computes arrival times over a mapped netlist: each cell
// adds intrinsic + slope × fanout-count to the worst input arrival.
func MappedDelay(res *techmap.Result) Report {
	// Fanout counts per subject node driven by a cell.
	load := make(map[int]int)
	for _, c := range res.Cells {
		for _, in := range c.Inputs {
			load[in]++
		}
	}
	for _, po := range res.Subject.POs {
		if po.Node >= 0 {
			load[po.Node]++
		}
	}
	cellByRoot := make(map[int]techmap.MappedCell, len(res.Cells))
	for _, c := range res.Cells {
		cellByRoot[c.Root] = c
	}
	arrival := make(map[int]float64)
	var at func(v int) float64
	at = func(v int) float64 {
		if res.Subject.Nodes[v].IsPI {
			return 0
		}
		if a, ok := arrival[v]; ok {
			return a
		}
		c, ok := cellByRoot[v]
		if !ok {
			// Node covered inside some match; treat as free (its delay is
			// inside the covering cell's intrinsic delay).
			return 0
		}
		worst := 0.0
		for _, in := range c.Inputs {
			if a := at(in); a > worst {
				worst = a
			}
		}
		d := cellDelay[c.Cell]
		a := worst + d.intrinsic + d.slope*float64(load[v])
		arrival[v] = a
		return a
	}
	rep := Report{PerOutput: make([]float64, len(res.Subject.POs))}
	for i, po := range res.Subject.POs {
		if po.Node < 0 {
			continue
		}
		a := at(po.Node)
		rep.PerOutput[i] = a
		if a > rep.Arrival {
			rep.Arrival = a
		}
	}
	return rep
}
