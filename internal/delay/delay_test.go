package delay

import (
	"testing"

	"repro/internal/network"
	"repro/internal/techmap"
)

func TestUnitDelayChain(t *testing.T) {
	net := network.New("c")
	a := net.AddPI("a")
	b := net.AddPI("b")
	g := net.AddGate(network.And, a, b)
	g = net.AddGate(network.Or, g, b)
	g = net.AddGate(network.And, g, a)
	net.AddPO("o", g)
	rep := UnitDelay(net)
	if rep.CriticalPath != 3 {
		t.Errorf("critical path = %d, want 3", rep.CriticalPath)
	}
}

func TestUnitDelayXorCostsTwo(t *testing.T) {
	net := network.New("x")
	a := net.AddPI("a")
	b := net.AddPI("b")
	net.AddPO("o", net.AddGate(network.Xor, a, b))
	if rep := UnitDelay(net); rep.CriticalPath != 2 {
		t.Errorf("XOR depth = %d, want 2", rep.CriticalPath)
	}
}

func TestUnitDelayInvertersFree(t *testing.T) {
	net := network.New("i")
	a := net.AddPI("a")
	g := net.AddGate(network.Not, net.AddGate(network.Not, a))
	net.AddPO("o", g)
	if rep := UnitDelay(net); rep.CriticalPath != 0 {
		t.Errorf("inverter chain depth = %d, want 0", rep.CriticalPath)
	}
}

func TestUnitDelayWideGate(t *testing.T) {
	net := network.New("w")
	var ids []int
	for i := 0; i < 8; i++ {
		ids = append(ids, net.AddPI(""))
	}
	net.AddPO("o", net.AddGate(network.And, ids...))
	// 8-input AND = 3 levels of 2-input ANDs.
	if rep := UnitDelay(net); rep.CriticalPath != 3 {
		t.Errorf("and8 depth = %d, want 3", rep.CriticalPath)
	}
}

func TestMappedDelayMonotone(t *testing.T) {
	// A deeper network must not report a smaller mapped delay.
	build := func(depth int) *techmap.Result {
		net := network.New("d")
		a := net.AddPI("a")
		b := net.AddPI("b")
		g := net.AddGate(network.And, a, b)
		for i := 1; i < depth; i++ {
			g = net.AddGate(network.And, g, b)
		}
		net.AddPO("o", g)
		res, err := techmap.Map(net, techmap.Library())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	d2 := MappedDelay(build(2)).Arrival
	d6 := MappedDelay(build(6)).Arrival
	if d6 <= d2 {
		t.Errorf("deeper chain not slower: %.2f vs %.2f", d6, d2)
	}
	if d2 <= 0 {
		t.Error("mapped delay should be positive")
	}
}

func TestMappedDelayLoadDependence(t *testing.T) {
	// The same driver with more fanout must be slower.
	build := func(fanouts int) *techmap.Result {
		net := network.New("l")
		a := net.AddPI("a")
		b := net.AddPI("b")
		g := net.AddGate(network.And, a, b)
		for i := 0; i < fanouts; i++ {
			net.AddPO("o", net.AddGate(network.Or, g, net.AddPI("")))
		}
		res, err := techmap.Map(net, techmap.Library())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	d1 := MappedDelay(build(1)).Arrival
	d4 := MappedDelay(build(4)).Arrival
	if d4 <= d1 {
		t.Errorf("higher load not slower: %.2f vs %.2f", d4, d1)
	}
}

func TestPerOutputArrivals(t *testing.T) {
	net := network.New("p")
	a := net.AddPI("a")
	b := net.AddPI("b")
	shallow := net.AddGate(network.And, a, b)
	deep := net.AddGate(network.Or, net.AddGate(network.And, shallow, a), b)
	net.AddPO("s", shallow)
	net.AddPO("d", deep)
	rep := UnitDelay(net)
	if len(rep.PerOutput) != 2 || rep.PerOutput[0] >= rep.PerOutput[1] {
		t.Errorf("per-output arrivals wrong: %v", rep.PerOutput)
	}
}
