package sisbase

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/network"
	"repro/internal/sop"
)

// buildSpec returns a small random gate network.
func buildSpec(rng *rand.Rand, nPI, nGates int) *network.Network {
	spec := network.New("r")
	for i := 0; i < nPI; i++ {
		spec.AddPI("")
	}
	types := []network.GateType{network.And, network.Or, network.Xor, network.Not, network.Nand, network.Nor}
	for i := 0; i < nGates; i++ {
		ty := types[rng.Intn(len(types))]
		k := 2
		if ty == network.Not {
			k = 1
		}
		fanins := make([]int, k)
		for j := range fanins {
			fanins[j] = rng.Intn(len(spec.Gates))
		}
		spec.AddGate(ty, fanins...)
	}
	spec.AddPO("o1", len(spec.Gates)-1)
	spec.AddPO("o2", rng.Intn(len(spec.Gates)))
	return spec
}

func equalNets(a, b *network.Network) bool {
	m := bdd.New(a.NumPIs())
	fa := a.ToBDDs(m)
	fb := b.ToBDDs(m)
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i] != fb[i] {
			return false
		}
	}
	return true
}

// Property: the baseline flow preserves the function.
func TestQuickBaselinePreserves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := buildSpec(rng, 3+rng.Intn(3), 4+rng.Intn(12))
		res, err := Run(context.Background(), spec, DefaultOptions())
		if err != nil {
			return false
		}
		return equalNets(spec, res.Network)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// RunCone optimizes one output's cone on the full PI space: the result
// has every PI of the parent (index-compatible) and exactly the cone's
// function on its single output.
func TestRunConePreservesConeFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		spec := buildSpec(rng, 3+rng.Intn(3), 4+rng.Intn(12))
		m := bdd.New(spec.NumPIs())
		want := spec.ToBDDs(m)
		for po := range spec.POs {
			res, err := RunCone(context.Background(), spec, po, DefaultOptions(), nil)
			if err != nil {
				t.Fatalf("trial %d po %d: %v", trial, po, err)
			}
			if res.Stopped != "" {
				t.Fatalf("trial %d po %d: unexpected stop %q", trial, po, res.Stopped)
			}
			if got := res.Network.NumPIs(); got != spec.NumPIs() {
				t.Fatalf("trial %d po %d: cone result has %d PIs, want %d", trial, po, got, spec.NumPIs())
			}
			if got := res.Network.NumPOs(); got != 1 {
				t.Fatalf("trial %d po %d: cone result has %d POs, want 1", trial, po, got)
			}
			if f := res.Network.ToBDDs(m); f[0] != want[po] {
				t.Fatalf("trial %d po %d: cone function changed", trial, po)
			}
		}
	}
	if _, err := RunCone(context.Background(), buildSpec(rng, 3, 4), 99, DefaultOptions(), nil); err == nil {
		t.Fatal("out-of-range output index must error")
	}
}

// RunCone polls the budget between passes: an exhausted budget stops the
// script gracefully (Stopped set, function intact), mirroring the ctx
// poll the whole-network Run already had.
func TestRunConeBudgetStopsGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec := buildSpec(rng, 5, 14)
	bud := budget.New(context.Background(), budget.Limits{Steps: 1})
	if err := budget.Guard(func() { bud.Step("x"); bud.Step("x") }); err == nil {
		t.Fatal("setup: budget did not trip")
	}
	res, err := RunCone(context.Background(), spec, 0, DefaultOptions(), bud)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped == "" {
		t.Fatal("exhausted budget did not stop the script")
	}
	m := bdd.New(spec.NumPIs())
	if f := res.Network.ToBDDs(m); f[0] != spec.ToBDDs(m)[0] {
		t.Fatal("budget-stopped cone result is not functionally intact")
	}
}

// TestDivideBasics: (ab + ac + d) / a = (b + c), remainder d.
func TestDivideBasics(t *testing.T) {
	capSig := 8
	f := sop.NewCover(capSig)
	mk := func(pos ...int) sop.Term {
		t := sop.NewTerm(capSig)
		for _, v := range pos {
			t.SetPos(v)
		}
		return t
	}
	f.Add(mk(0, 1))
	f.Add(mk(0, 2))
	f.Add(mk(3))
	d := sop.NewCover(capSig)
	d.Add(mk(0))
	q, r := Divide(f, d)
	if len(q.Terms) != 2 || len(r.Terms) != 1 {
		t.Fatalf("q=%d terms r=%d terms", len(q.Terms), len(r.Terms))
	}
	if !r.Terms[0].Pos.Has(3) {
		t.Error("remainder should be d")
	}
}

// TestDivideDoubleCube: (ab + ac + db + dc) / (b + c) = a + d.
func TestDivideDoubleCube(t *testing.T) {
	capSig := 8
	mk := func(pos ...int) sop.Term {
		t := sop.NewTerm(capSig)
		for _, v := range pos {
			t.SetPos(v)
		}
		return t
	}
	f := sop.NewCover(capSig)
	f.Add(mk(0, 1))
	f.Add(mk(0, 2))
	f.Add(mk(3, 1))
	f.Add(mk(3, 2))
	d := sop.NewCover(capSig)
	d.Add(mk(1))
	d.Add(mk(2))
	q, r := Divide(f, d)
	if len(q.Terms) != 2 || len(r.Terms) != 0 {
		t.Fatalf("q=%s r=%s", q, r)
	}
}

// TestDivideRespectsSupportDisjointness: (ab)/(a) must not put a in q.
func TestDivideSupportRule(t *testing.T) {
	capSig := 4
	f := sop.NewCover(capSig)
	t1 := sop.NewTerm(capSig)
	t1.SetPos(0)
	f.Add(t1) // f = a
	d := sop.NewCover(capSig)
	t2 := sop.NewTerm(capSig)
	t2.SetPos(0)
	d.Add(t2) // d = a
	q, r := Divide(f, d)
	// a / a = 1 (empty term), remainder empty.
	if len(q.Terms) != 1 || q.Terms[0].Literals() != 0 || len(r.Terms) != 0 {
		t.Errorf("a/a: q=%s r=%s", q, r)
	}
}

// TestFastExtractSharesCommonCube: two nodes both containing cube ab
// should share an extracted node.
func TestFastExtractSharesCommonCube(t *testing.T) {
	spec := network.New("s")
	a := spec.AddPI("a")
	b := spec.AddPI("b")
	c := spec.AddPI("c")
	d := spec.AddPI("d")
	// o1 = ab + c, o2 = ab + d — "ab" is a shared single-cube divisor.
	ab1 := spec.AddGate(network.And, a, b)
	o1 := spec.AddGate(network.Or, ab1, c)
	ab2 := spec.AddGate(network.And, a, b)
	o2 := spec.AddGate(network.Or, ab2, d)
	spec.AddPO("o1", o1)
	spec.AddPO("o2", o2)
	res, err := Run(context.Background(), spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !equalNets(spec, res.Network) {
		t.Fatal("function changed")
	}
	// ab computed once: total 2-input gates = 1 AND + 2 OR = 3.
	if res.Stats.Gates2 > 3 {
		t.Errorf("gates2 = %d, want ≤ 3 (shared ab)", res.Stats.Gates2)
	}
}

// TestEliminateCollapsesSmallNodes: a chain of buffers through tiny nodes
// collapses.
func TestEliminateAndSweep(t *testing.T) {
	spec := network.New("e")
	a := spec.AddPI("a")
	b := spec.AddPI("b")
	g1 := spec.AddGate(network.And, a, b)
	g2 := spec.AddGate(network.Buf, g1)
	g3 := spec.AddGate(network.Buf, g2)
	spec.AddPO("o", g3)
	res, err := Run(context.Background(), spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !equalNets(spec, res.Network) {
		t.Fatal("function changed")
	}
	if res.Stats.Gates2 != 1 {
		t.Errorf("gates2 = %d, want 1", res.Stats.Gates2)
	}
}

// TestXorGateExpansion: XOR gates become 3 AND/OR-equivalent gates after
// the SOP-based flow (the baseline's fundamental weakness the paper
// exploits).
func TestXorCostInBaseline(t *testing.T) {
	spec := network.New("x")
	a := spec.AddPI("a")
	b := spec.AddPI("b")
	spec.AddPO("o", spec.AddGate(network.Xor, a, b))
	res, err := Run(context.Background(), spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !equalNets(spec, res.Network) {
		t.Fatal("function changed")
	}
	// ab' + a'b: 2 AND + 1 OR = 3 gates (inverters free).
	if res.Stats.Gates2 != 3 {
		t.Errorf("XOR through baseline = %d gates2, want 3", res.Stats.Gates2)
	}
	if res.Stats.XORs != 0 {
		t.Error("baseline must not contain XOR gates")
	}
}

// TestParityChainBaseline: n-input parity explodes in two-level form but
// the multilevel baseline keeps it polynomial via extraction.
func TestParityChainBaseline(t *testing.T) {
	spec := network.New("p")
	prev := spec.AddPI("")
	for i := 1; i < 8; i++ {
		pi := spec.AddPI("")
		prev = spec.AddGate(network.Xor, prev, pi)
	}
	spec.AddPO("o", prev)
	res, err := Run(context.Background(), spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !equalNets(spec, res.Network) {
		t.Fatal("function changed")
	}
	// 7 XORs à 3 gates = 21 if structure kept.
	if res.Stats.Gates2 > 24 {
		t.Errorf("parity baseline = %d gates2, want ≤ 24", res.Stats.Gates2)
	}
}

// TestResubUsesExistingNode: g = ab+c as a node, f = abd+cd should
// resubstitute into f = gd.
func TestResubUsesExistingNode(t *testing.T) {
	spec := network.New("r")
	a := spec.AddPI("a")
	b := spec.AddPI("b")
	c := spec.AddPI("c")
	d := spec.AddPI("d")
	g := spec.AddGate(network.Or, spec.AddGate(network.And, a, b), c)
	f := spec.AddGate(network.And, g, d)
	spec.AddPO("g", g)
	spec.AddPO("f", f)
	res, err := Run(context.Background(), spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !equalNets(spec, res.Network) {
		t.Fatal("function changed")
	}
	// g shared: ab(1) + or(1) + and-with-d(1) = 3.
	if res.Stats.Gates2 > 3 {
		t.Errorf("gates2 = %d, want ≤ 3", res.Stats.Gates2)
	}
}

// TestConstantNode: constant outputs survive correctly.
func TestConstantNode(t *testing.T) {
	spec := network.New("c")
	a := spec.AddPI("a")
	spec.AddPO("z", spec.AddGate(network.And, a, spec.AddGate(network.Not, a)))
	res, err := Run(context.Background(), spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !equalNets(spec, res.Network) {
		t.Fatal("constant function changed")
	}
}

// TestBaselineSoundnessSweep hammers the full baseline pipeline with many
// random networks (regression sweep for substitution corner cases like
// contradictory terms and duplicate XOR fanins).
func TestBaselineSoundnessSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := buildSpec(rng, 3+rng.Intn(4), 4+rng.Intn(16))
		res, err := Run(context.Background(), spec, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !equalNets(spec, res.Network) {
			t.Fatalf("seed %d: function changed", seed)
		}
	}
}
