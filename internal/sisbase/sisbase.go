// Package sisbase implements the comparison baseline: a conventional
// SOP-based multilevel synthesis flow in the style of Berkeley SIS 1.2's
// algebraic scripts (the paper compares against the best of `rugged`,
// `boolean` and `algebraic` followed by `red_removal`).
//
// The flow operates on a network of nodes whose functions are
// sum-of-products covers over a global signal space:
//
//	sweep      — constant propagation, buffer collapsing, dead removal
//	eliminate  — collapse low-value nodes into their fanouts
//	simplify   — espresso-style two-level minimization per node
//	fx         — fast-extract: single-cube and double-cube divisor
//	             extraction (Brayton/McMullen algebraic division)
//	resub      — algebraic resubstitution of existing nodes as divisors
//	decomp     — final decomposition into a 2-input AND/OR gate network
//
// SIS red_removal's global stuck-at redundancy removal is approximated by
// per-node irredundant covers (espresso irredundant); don't-care-based
// removal across node boundaries is not reproduced (documented in
// DESIGN.md).
package sisbase

import (
	"context"
	"fmt"
	"time"

	"repro/internal/budget"
	"repro/internal/network"
	"repro/internal/sop"
)

// Node is one function of the SOP network. Its cover is over the global
// signal space: literal v of the cover refers to node v's output.
type Node struct {
	ID    int
	IsPI  bool
	Name  string
	Cover *sop.Cover // nil for PIs
	Dead  bool
}

// Net is a multilevel network of SOP nodes over a global signal space.
type Net struct {
	Name   string
	Nodes  []*Node
	PIs    []int
	POs    []PO
	sigCap int // capacity of the signal space (cover variable count)
}

// PO names a primary output.
type PO struct {
	Name string
	Node int
}

// Options configure the baseline flow.
type Options struct {
	// EliminateValue collapses nodes whose elimination grows the network
	// by at most this many literals (SIS `eliminate` threshold; default 0,
	// set -1 to disable).
	EliminateValue int
	// MaxIters bounds the simplify/fx/resub/eliminate iteration (default 8).
	MaxIters int
	// SkipResub disables the resubstitution pass.
	SkipResub bool
}

// DefaultOptions mirrors "script.algebraic".
func DefaultOptions() Options { return Options{EliminateValue: 0, MaxIters: 8} }

// Result is the outcome of a baseline run.
type Result struct {
	Network *network.Network
	Stats   network.Stats
	Elapsed time.Duration
	// Stopped names the reason the iteration ended early (context deadline
	// or cancellation); empty when the script ran to convergence. The
	// returned network is still the valid (if less optimized) state reached
	// before the stop.
	Stopped string
}

// Run converts the specification gate network into an SOP node network,
// applies the baseline script, and returns the decomposed 2-input gate
// network. The context is polled between optimization passes: on deadline
// or cancellation the flow stops gracefully at the last completed pass and
// still returns a functionally intact network, with Result.Stopped set.
func Run(ctx context.Context, spec *network.Network, opt Options) (*Result, error) {
	return run(ctx, spec, opt, nil)
}

// RunCone runs the baseline script on the cone of spec's primary output
// po — the per-cone callable of the basis arbiter's SOP arm. It honors
// ctx and bud the same way the fprm flow does: both are polled between
// optimization passes, so cancellation or budget exhaustion stops the
// script gracefully at the last completed pass, with Result.Stopped set
// and a functionally intact single-output network. The cone keeps spec's
// full PI list in order (see network.ExtractCone), so the result stays
// index-compatible with spec for merging and verification. spec is only
// read; concurrent RunCone calls on one spec are safe.
func RunCone(ctx context.Context, spec *network.Network, po int, opt Options, bud *budget.Budget) (*Result, error) {
	if po < 0 || po >= len(spec.POs) {
		return nil, fmt.Errorf("sisbase: output %d out of range (network has %d)", po, len(spec.POs))
	}
	return run(ctx, spec.ExtractCone(po), opt, bud)
}

func run(ctx context.Context, spec *network.Network, opt Options, bud *budget.Budget) (*Result, error) {
	start := time.Now()
	if opt.MaxIters == 0 {
		opt.MaxIters = 8
	}
	if ctx == nil {
		ctx = context.Background()
	}
	net, err := FromNetwork(spec)
	if err != nil {
		return nil, err
	}
	stopped := ""
	interrupted := func() bool {
		if stopped != "" {
			return true
		}
		if err := ctx.Err(); err != nil {
			stopped = err.Error()
			return true
		}
		// The graceful poll: a tripped/expired budget ends the script at
		// the pass boundary, exactly like the polarity search's poll.
		if err := bud.Exceeded(); err != nil {
			stopped = err.Error()
			return true
		}
		return false
	}
	net.Sweep()
	if opt.EliminateValue >= 0 && !interrupted() {
		net.Eliminate(opt.EliminateValue)
	}
	if !interrupted() {
		net.Simplify()
	}
	prev := -1
	for it := 0; it < opt.MaxIters && !interrupted(); it++ {
		net.FastExtract()
		if !opt.SkipResub && !interrupted() {
			net.Resub()
		}
		if opt.EliminateValue >= 0 && !interrupted() {
			net.Eliminate(opt.EliminateValue)
		}
		if interrupted() {
			break
		}
		net.Simplify()
		net.Sweep()
		lits := net.Literals()
		if lits == prev {
			break
		}
		prev = lits
	}
	out := net.Decompose()
	// Hash-consed construction already keeps Decompose's output canonical;
	// Sweep+Strash mop up the PO-level indirections and Compact reclaims
	// anything the merges left dead.
	out.Sweep()
	out.Strash()
	out.Sweep()
	out.Compact()
	res := &Result{Network: out, Stats: out.CollectStats(), Elapsed: time.Since(start), Stopped: stopped}
	return res, nil
}

// FromNetwork converts a gate network into an SOP node network: each gate
// becomes a node with its local cover (XOR gates become parity covers).
func FromNetwork(spec *network.Network) (*Net, error) {
	// Signal space: generous headroom for extracted divisors.
	capSig := len(spec.Gates)*2 + 256
	n := &Net{Name: spec.Name, sigCap: capSig}
	n.Nodes = make([]*Node, len(spec.Gates), capSig)
	for _, id := range spec.TopoOrder() {
		g := &spec.Gates[id]
		node := &Node{ID: id, Name: g.Name}
		n.Nodes[id] = node
		if g.Type == network.PI {
			node.IsPI = true
			continue
		}
		cov, err := coverOfGate(capSig, g)
		if err != nil {
			return nil, err
		}
		node.Cover = cov
	}
	// Gates outside the PO cone may be nil; fill placeholders.
	for i, nd := range n.Nodes {
		if nd == nil {
			n.Nodes[i] = &Node{ID: i, Dead: true, Cover: sop.NewCover(capSig)}
		}
	}
	n.PIs = append(n.PIs, spec.PIs...)
	for _, po := range spec.POs {
		n.POs = append(n.POs, PO{Name: po.Name, Node: po.Gate})
	}
	return n, nil
}

// maxXorFanin bounds the fanin width of XOR/XNOR gates converted to
// two-level parity covers: a k-input parity has 2^(k-1) terms, so anything
// wider is a data-dependent blowup, not a usable cover.
const maxXorFanin = 20

func coverOfGate(capSig int, g *network.Gate) (*sop.Cover, error) {
	c := sop.NewCover(capSig)
	switch g.Type {
	case network.Const0:
	case network.Const1:
		c.Add(sop.NewTerm(capSig))
	case network.Buf:
		t := sop.NewTerm(capSig)
		t.SetPos(g.Fanins[0])
		c.Add(t)
	case network.Not:
		t := sop.NewTerm(capSig)
		t.SetNeg(g.Fanins[0])
		c.Add(t)
	case network.And, network.Nand:
		t := sop.NewTerm(capSig)
		for _, f := range g.Fanins {
			t.SetPos(f)
		}
		c.Add(t)
		if g.Type == network.Nand {
			c = c.Complement()
		}
	case network.Or, network.Nor:
		for _, f := range g.Fanins {
			t := sop.NewTerm(capSig)
			t.SetPos(f)
			c.Add(t)
		}
		if g.Type == network.Nor {
			c = c.Complement()
		}
	case network.Xor, network.Xnor:
		k := len(g.Fanins)
		if k > maxXorFanin {
			return nil, fmt.Errorf("sisbase: %d-input %v needs a %d-term parity cover (max fanin %d)",
				k, g.Type, 1<<uint(k-1), maxXorFanin)
		}
		wantOdd := g.Type == network.Xor
		for a := 0; a < 1<<uint(k); a++ {
			ones := 0
			for i := 0; i < k; i++ {
				if a&(1<<i) != 0 {
					ones++
				}
			}
			if (ones%2 == 1) != wantOdd {
				continue
			}
			t := sop.NewTerm(capSig)
			for i := 0; i < k; i++ {
				// Raw bitset writes: duplicate fanins with conflicting
				// phases must yield a contradictory (dropped) term, not a
				// silently rewritten one.
				if a&(1<<i) != 0 {
					t.Pos.Set(g.Fanins[i])
				} else {
					t.Neg.Set(g.Fanins[i])
				}
			}
			if t.Contradicts() {
				continue
			}
			c.Add(t)
		}
	default:
		return nil, fmt.Errorf("sisbase: unsupported gate type %v", g.Type)
	}
	return c, nil
}

// newNode appends a fresh internal node and returns it, or nil when the
// signal space is exhausted (covers cannot address variables beyond
// sigCap). Callers must treat nil as "stop extracting divisors".
func (n *Net) newNode(cover *sop.Cover) *Node {
	id := len(n.Nodes)
	if id >= n.sigCap {
		return nil
	}
	nd := &Node{ID: id, Cover: cover}
	n.Nodes = append(n.Nodes, nd)
	return nd
}

// Literals returns the total literal count over live nodes.
func (n *Net) Literals() int {
	total := 0
	for _, nd := range n.Nodes {
		if !nd.IsPI && !nd.Dead && nd.Cover != nil {
			total += nd.Cover.Literals()
		}
	}
	return total
}

// liveOrder returns internal nodes in topological order (PIs excluded).
func (n *Net) liveOrder() []int {
	state := make([]int8, len(n.Nodes))
	var order []int
	var visit func(int)
	visit = func(id int) {
		if state[id] != 0 {
			return
		}
		state[id] = 1
		nd := n.Nodes[id]
		if !nd.IsPI && nd.Cover != nil {
			sup := nd.Cover.Support()
			sup.ForEach(func(v int) { visit(v) })
			order = append(order, id)
		}
	}
	for _, po := range n.POs {
		visit(po.Node)
	}
	return order
}

// Sweep marks nodes outside the PO cones dead, collapses buffer/constant
// nodes into their fanouts, and removes empty-support indirections.
func (n *Net) Sweep() {
	changed := true
	for changed {
		changed = false
		live := make(map[int]bool)
		for _, id := range n.liveOrder() {
			live[id] = true
		}
		for _, nd := range n.Nodes {
			if nd.IsPI || nd.Dead {
				continue
			}
			if !live[nd.ID] && !n.isPO(nd.ID) {
				nd.Dead = true
			}
		}
		// Collapse single-literal nodes (buffers/inverters of PIs stay:
		// inverters are free in the cost model, and substituting them
		// keeps covers smaller anyway, so collapse those too).
		for _, id := range n.liveOrder() {
			nd := n.Nodes[id]
			if nd.IsPI || nd.Dead {
				continue
			}
			if len(nd.Cover.Terms) == 1 && nd.Cover.Terms[0].Literals() == 1 {
				t := nd.Cover.Terms[0]
				var v int
				var phase bool
				if !t.Pos.IsEmpty() {
					v, phase = t.Pos.Min(), true
				} else {
					v, phase = t.Neg.Min(), false
				}
				if n.substituteWire(id, v, phase) {
					changed = true
				}
			}
		}
	}
}

func (n *Net) isPO(id int) bool {
	for _, po := range n.POs {
		if po.Node == id {
			return true
		}
	}
	return false
}

// substituteWire replaces every use of node id by literal (v, phase).
// Returns whether any use was rewritten. Terms that become contradictory
// (x·x̄) are dropped.
func (n *Net) substituteWire(id, v int, phase bool) bool {
	changed := false
	for _, nd := range n.Nodes {
		if nd.IsPI || nd.Dead || nd.Cover == nil || nd.ID == id {
			continue
		}
		touched := false
		for ti := range nd.Cover.Terms {
			t := &nd.Cover.Terms[ti]
			if t.Pos.Has(id) {
				t.Pos.Clear(id)
				if phase {
					t.Pos.Set(v)
				} else {
					t.Neg.Set(v)
				}
				changed = true
				touched = true
			}
			if t.Neg.Has(id) {
				t.Neg.Clear(id)
				if phase {
					t.Neg.Set(v)
				} else {
					t.Pos.Set(v)
				}
				changed = true
				touched = true
			}
		}
		if touched {
			nd.Cover.SingleTermContainment()
		}
	}
	for i := range n.POs {
		if n.POs[i].Node == id && phase {
			n.POs[i].Node = v
			changed = true
		}
		// A complemented PO keeps the inverter node.
	}
	return changed
}

// Eliminate collapses nodes whose elimination does not grow the literal
// count by more than value (SIS eliminate).
func (n *Net) Eliminate(value int) {
	for n.eliminateOnce(value) {
	}
}

// eliminateOnce performs one elimination pass; reports whether anything
// collapsed.
func (n *Net) eliminateOnce(value int) bool {
	{
		collapsed := false
		order := n.liveOrder()
		// Fanout counts.
		uses := make(map[int][]int)
		for _, id := range order {
			sup := n.Nodes[id].Cover.Support()
			sup.ForEach(func(v int) {
				if !n.Nodes[v].IsPI {
					uses[v] = append(uses[v], id)
				}
			})
		}
		for _, id := range order {
			nd := n.Nodes[id]
			if nd.IsPI || nd.Dead || n.isPO(id) {
				continue
			}
			fanouts := uses[id]
			if len(fanouts) == 0 {
				nd.Dead = true
				continue
			}
			// Compute the true literal delta of collapsing by trying the
			// substitution on copies (SIS's "value" is an estimate; exact
			// is affordable at benchmark sizes and avoids, e.g., blowing
			// XOR chains into two-level parity).
			if len(fanouts) > 8 || nd.Cover.Literals() > 40 {
				continue
			}
			delta := -nd.Cover.Literals()
			newCovers := make([]*sop.Cover, len(fanouts))
			tooBig := false
			for i, fo := range fanouts {
				nc := n.substituted(id, fo)
				if nc == nil || len(nc.Terms) > 4*len(n.Nodes[fo].Cover.Terms)+8 {
					tooBig = true
					break
				}
				newCovers[i] = nc
				delta += nc.Literals() - n.Nodes[fo].Cover.Literals()
			}
			if tooBig || delta > value {
				continue
			}
			for i, fo := range fanouts {
				n.Nodes[fo].Cover = newCovers[i]
			}
			nd.Dead = true
			collapsed = true
		}
		if !collapsed {
			return false
		}
		n.Sweep()
		return true
	}
}

// substituted returns dst's cover with node src's function substituted
// in, or nil when src does not appear. Terms are split three ways —
// containing the positive literal, the negative literal, or neither —
// and only the parts that actually reference the literal get multiplied
// (dst = s·P + s̄·N + F), so unate uses do not pay for a complement.
func (n *Net) substituted(src, dst int) *sop.Cover {
	d := n.Nodes[dst].Cover
	if !d.Support().Has(src) {
		return nil
	}
	s := n.Nodes[src].Cover
	pos := sop.NewCover(n.sigCap)
	neg := sop.NewCover(n.sigCap)
	out := sop.NewCover(n.sigCap)
	for _, t := range d.Terms {
		if t.Contradicts() {
			continue // constant-0 term (e.g. left behind by wire substitution)
		}
		switch {
		case t.Pos.Has(src):
			nt := t.Clone()
			nt.Free(src)
			pos.Add(nt)
		case t.Neg.Has(src):
			nt := t.Clone()
			nt.Free(src)
			neg.Add(nt)
		default:
			out.Add(t.Clone())
		}
	}
	if len(pos.Terms) > 0 {
		out.Terms = append(out.Terms, s.Intersect(pos).Terms...)
	}
	if len(neg.Terms) > 0 {
		sc := s.Complement()
		out.Terms = append(out.Terms, sc.Intersect(neg).Terms...)
	}
	out.SingleTermContainment()
	return out
}

// Simplify runs espresso-style minimization on every node.
func (n *Net) Simplify() {
	for _, id := range n.liveOrder() {
		nd := n.Nodes[id]
		if nd.Cover != nil && len(nd.Cover.Terms) > 0 {
			nd.Cover.Minimize()
		}
	}
}

// Decompose builds the final 2-input AND/OR gate network.
func (n *Net) Decompose() *network.Network {
	out := network.New(n.Name + "_sis")
	gate := make(map[int]int) // node -> gate (positive phase)
	for _, pi := range n.PIs {
		gate[pi] = out.AddPI(n.Nodes[pi].Name)
	}
	lit := func(v int, phase bool) int {
		g, ok := gate[v]
		if !ok {
			// Programmer invariant: liveOrder() visits fanins before users,
			// so every referenced node already has a gate by the time a
			// cover mentions it.
			panic("sisbase: decompose ordering")
		}
		if phase {
			return g
		}
		// Hash-consed: the network shares one NOT per driver.
		return out.AddGate(network.Not, g)
	}
	for _, id := range n.liveOrder() {
		nd := n.Nodes[id]
		c := nd.Cover
		var termGates []int
		for _, t := range c.Terms {
			var litGates []int
			t.Pos.ForEach(func(v int) { litGates = append(litGates, lit(v, true)) })
			t.Neg.ForEach(func(v int) { litGates = append(litGates, lit(v, false)) })
			switch len(litGates) {
			case 0:
				termGates = append(termGates, out.AddGate(network.Const1))
			case 1:
				termGates = append(termGates, litGates[0])
			default:
				termGates = append(termGates, out.BalancedTree(network.And, litGates))
			}
		}
		switch len(termGates) {
		case 0:
			gate[id] = out.AddGate(network.Const0)
		case 1:
			gate[id] = termGates[0]
		default:
			gate[id] = out.BalancedTree(network.Or, termGates)
		}
	}
	for _, po := range n.POs {
		g, ok := gate[po.Node]
		if !ok {
			// PO is a PI or dead constant.
			g = gate[po.Node]
		}
		out.AddPO(po.Name, g)
	}
	return out
}
