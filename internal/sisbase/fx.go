package sisbase

import (
	"sort"

	"repro/internal/sop"
)

// Divide performs weak (algebraic) division of cover f by divisor d over
// the global signal space: f = d·q + r with support(d) ∩ support(q) = ∅.
// An empty quotient means the division found nothing.
func Divide(f, d *sop.Cover) (q, r *sop.Cover) {
	capSig := f.NumVars
	q = sop.NewCover(capSig)
	r = sop.NewCover(capSig)
	if len(d.Terms) == 0 {
		r = f.Clone()
		return q, r
	}
	dsup := d.Support()
	var qKeys map[string]sop.Term
	for _, dt := range d.Terms {
		cur := make(map[string]sop.Term)
		for _, t := range f.Terms {
			if !dt.Pos.SubsetOf(t.Pos) || !dt.Neg.SubsetOf(t.Neg) {
				continue
			}
			qt := t.Clone()
			qt.Pos.DifferenceWith(dt.Pos)
			qt.Neg.DifferenceWith(dt.Neg)
			// Algebraic division: the quotient must not share support
			// with the divisor.
			if qt.Pos.Intersects(dsup) || qt.Neg.Intersects(dsup) {
				continue
			}
			cur[qt.Key()] = qt
		}
		if qKeys == nil {
			qKeys = cur
		} else {
			for k := range qKeys {
				if _, ok := cur[k]; !ok {
					delete(qKeys, k)
				}
			}
		}
		if len(qKeys) == 0 {
			return sop.NewCover(capSig), f.Clone()
		}
	}
	// Emit quotient terms in sorted-key order: qKeys is a map, and the
	// quotient's term order propagates into host covers and from there
	// into the decomposed network structure, so it must not depend on
	// map iteration order.
	keys := make([]string, 0, len(qKeys))
	for k := range qKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	covered := make(map[string]bool)
	for _, k := range keys {
		qt := qKeys[k]
		q.Add(qt.Clone())
		for _, dt := range d.Terms {
			p := qt.Clone()
			p.Pos.UnionWith(dt.Pos)
			p.Neg.UnionWith(dt.Neg)
			covered[p.Key()] = true
		}
	}
	for _, t := range f.Terms {
		if !covered[t.Key()] {
			r.Add(t.Clone())
		}
	}
	return q, r
}

// litKey encodes a (variable, phase) literal.
type litKey struct {
	v   int
	pos bool
}

// divisorCand is a candidate divisor found during fast extract.
type divisorCand struct {
	cover *sop.Cover
	value int
	key   string
}

// FastExtract repeatedly extracts the best single-cube (two-literal) or
// double-cube divisor until none has positive value (the fx command of
// SIS, after Rajski/Vasudevamurthy).
func (n *Net) FastExtract() {
	for iter := 0; iter < 200; iter++ {
		best := n.bestDivisor()
		if best == nil || best.value <= 0 {
			return
		}
		nd := n.newNode(best.cover)
		if nd == nil {
			// Signal space exhausted: stop extracting; the network so far
			// is still valid.
			return
		}
		// The complement of a 2-cube divisor is itself small (e.g. the
		// complement of a'b+ab' is ab+a'b'); dividing by it lets hosts use
		// the node's negative literal — this is what reconstructs XOR
		// structure inside an AND/OR network, as SIS fast_extract does.
		var comp *sop.Cover
		if len(best.cover.Terms) == 2 {
			c := best.cover.Complement()
			if len(c.Terms) <= 2 {
				comp = c
			}
		}
		// Substitute into every node where it (or its complement) divides.
		for _, id := range n.liveOrder() {
			host := n.Nodes[id]
			if host.ID == nd.ID || host.IsPI || host.Dead {
				continue
			}
			q, r := Divide(host.Cover, best.cover)
			if len(q.Terms) > 0 {
				out := sop.NewCover(n.sigCap)
				for _, qt := range q.Terms {
					t := qt.Clone()
					t.SetPos(nd.ID)
					out.Add(t)
				}
				out.Terms = append(out.Terms, r.Terms...)
				host.Cover = out
			}
			if comp == nil {
				continue
			}
			q, r = Divide(host.Cover, comp)
			if len(q.Terms) > 0 {
				newLits := q.Literals() + len(q.Terms) + r.Literals()
				if newLits < host.Cover.Literals() {
					out := sop.NewCover(n.sigCap)
					for _, qt := range q.Terms {
						t := qt.Clone()
						t.SetNeg(nd.ID)
						out.Add(t)
					}
					out.Terms = append(out.Terms, r.Terms...)
					host.Cover = out
				}
			}
		}
	}
}

// bestDivisor scans all node covers for the highest-value single-cube
// pair divisor or double-cube divisor.
func (n *Net) bestDivisor() *divisorCand {
	live := n.liveOrder()
	// Single-cube candidates: co-occurring literal pairs.
	pairCount := make(map[[2]litKey]int)
	// Double-cube candidates keyed canonically.
	dcCount := make(map[string]int)
	dcRepr := make(map[string]*sop.Cover)
	dcLits := make(map[string]int)

	for _, id := range live {
		c := n.Nodes[id].Cover
		for ti, t := range c.Terms {
			lits := termLits(t)
			for i := 0; i < len(lits); i++ {
				for j := i + 1; j < len(lits); j++ {
					k := [2]litKey{lits[i], lits[j]}
					pairCount[k]++
				}
			}
			// Double-cube: pair with later terms of the same node.
			for tj := ti + 1; tj < len(c.Terms); tj++ {
				u := c.Terms[tj]
				d, ok := doubleCubeDivisor(n.sigCap, t, u)
				if !ok {
					continue
				}
				key := d.Terms[0].Key() + "/" + d.Terms[1].Key()
				if d.Terms[1].Key() < d.Terms[0].Key() {
					key = d.Terms[1].Key() + "/" + d.Terms[0].Key()
				}
				dcCount[key]++
				if _, seen := dcRepr[key]; !seen {
					dcRepr[key] = d
					dcLits[key] = d.Literals()
				}
			}
		}
	}

	var best *divisorCand
	consider := func(c *divisorCand) {
		if best == nil || c.value > best.value || (c.value == best.value && c.key < best.key) {
			best = c
		}
	}
	for k, cnt := range pairCount {
		if cnt < 2 {
			continue
		}
		// Extracting a 2-literal cube used in cnt terms: each use shrinks
		// by one literal; the new node costs 2 literals.
		value := cnt - 2
		if value <= 0 {
			continue
		}
		c := sop.NewCover(n.sigCap)
		t := sop.NewTerm(n.sigCap)
		setLit(&t, k[0])
		setLit(&t, k[1])
		c.Add(t)
		consider(&divisorCand{cover: c, value: value, key: t.Key()})
	}
	for key, cnt := range dcCount {
		if cnt < 2 {
			continue
		}
		lits := dcLits[key]
		// Each of cnt uses replaces lits literals (plus its base copies)
		// by one; the node itself costs lits.
		value := (cnt-1)*lits - cnt
		if value <= 0 {
			continue
		}
		consider(&divisorCand{cover: dcRepr[key], value: value, key: key})
	}
	return best
}

// doubleCubeDivisor returns the 2-term divisor obtained by removing the
// common literals ("base") from a term pair, or ok=false when degenerate
// (one term contains the other, or both remainders are empty).
func doubleCubeDivisor(capSig int, a, b sop.Term) (*sop.Cover, bool) {
	basePos := a.Pos.Clone()
	basePos.IntersectWith(b.Pos)
	baseNeg := a.Neg.Clone()
	baseNeg.IntersectWith(b.Neg)
	ra := a.Clone()
	ra.Pos.DifferenceWith(basePos)
	ra.Neg.DifferenceWith(baseNeg)
	rb := b.Clone()
	rb.Pos.DifferenceWith(basePos)
	rb.Neg.DifferenceWith(baseNeg)
	if ra.Literals() == 0 || rb.Literals() == 0 {
		return nil, false
	}
	// The two remainder cubes must not share a variable (else the pair is
	// not an algebraic divisor of anything through weak division).
	raSup := ra.Pos.Clone()
	raSup.UnionWith(ra.Neg)
	rbSup := rb.Pos.Clone()
	rbSup.UnionWith(rb.Neg)
	if raSup.Intersects(rbSup) {
		return nil, false
	}
	c := sop.NewCover(capSig)
	c.Add(ra)
	c.Add(rb)
	return c, true
}

func termLits(t sop.Term) []litKey {
	var out []litKey
	t.Pos.ForEach(func(v int) { out = append(out, litKey{v, true}) })
	t.Neg.ForEach(func(v int) { out = append(out, litKey{v, false}) })
	return out
}

func setLit(t *sop.Term, k litKey) {
	if k.pos {
		t.SetPos(k.v)
	} else {
		t.SetNeg(k.v)
	}
}

// Resub tries every existing node as an algebraic divisor of every other
// node (SIS resub, positive phase).
func (n *Net) Resub() {
	order := n.liveOrder()
	// Precompute supports and transitive fanin sets to avoid cycles.
	sup := make(map[int]map[int]bool)
	var tfi func(int, map[int]bool)
	tfi = func(id int, acc map[int]bool) {
		if acc[id] {
			return
		}
		acc[id] = true
		nd := n.Nodes[id]
		if nd.IsPI || nd.Cover == nil {
			return
		}
		nd.Cover.Support().ForEach(func(v int) { tfi(v, acc) })
	}
	for _, id := range order {
		acc := make(map[int]bool)
		tfi(id, acc)
		sup[id] = acc
	}
	divisors := append([]int(nil), order...)
	sort.Slice(divisors, func(a, b int) bool {
		return n.Nodes[divisors[a]].Cover.Literals() > n.Nodes[divisors[b]].Cover.Literals()
	})
	for _, target := range order {
		tn := n.Nodes[target]
		if tn.Dead || len(tn.Cover.Terms) < 2 {
			continue
		}
		for _, div := range divisors {
			if div == target || n.Nodes[div].Dead {
				continue
			}
			dn := n.Nodes[div]
			if len(dn.Cover.Terms) < 2 {
				continue // single cubes handled by fx
			}
			// Avoid creating a cycle: the divisor must not depend on the
			// target.
			if sup[div][target] {
				continue
			}
			// Positive phase.
			q, r := Divide(tn.Cover, dn.Cover)
			if len(q.Terms) > 0 {
				newLits := q.Literals() + len(q.Terms) + r.Literals()
				if newLits < tn.Cover.Literals() {
					out := sop.NewCover(n.sigCap)
					for _, qt := range q.Terms {
						t := qt.Clone()
						t.SetPos(div)
						out.Add(t)
					}
					out.Terms = append(out.Terms, r.Terms...)
					tn.Cover = out
				}
			}
			// Negative phase, when the complement stays small.
			if len(dn.Cover.Terms) <= 3 {
				comp := dn.Cover.Complement()
				if len(comp.Terms) <= 3 {
					q, r = Divide(tn.Cover, comp)
					if len(q.Terms) > 0 {
						newLits := q.Literals() + len(q.Terms) + r.Literals()
						if newLits < tn.Cover.Literals() {
							out := sop.NewCover(n.sigCap)
							for _, qt := range q.Terms {
								t := qt.Clone()
								t.SetNeg(div)
								out.Add(t)
							}
							out.Terms = append(out.Terms, r.Terms...)
							tn.Cover = out
						}
					}
				}
			}
		}
	}
}
