package wordgen_test

// The differential round-trip test: every generator family is emitted
// in its on-disk exchange format, parsed back through the production
// readers, synthesized with the paper's flow, and the result is
// verified against the word-level golden model twice — once with the
// algebraic backward-rewriting engine and once by random simulation —
// asserting the two verdicts agree. This is the end-to-end proof that
// the emitters, the parsers, the synthesis flow, and both verification
// engines compose; the same emitted texts seed the FuzzParsePLA and
// FuzzReadBLIF corpora (testdata/fuzz/.../wordgen-*) so the fuzzers
// mutate realistic arithmetic inputs.
//
// It lives in an external test package because verify imports wordgen:
// wordgen_test may close the cycle, the library package may not.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sop"
	"repro/internal/verify"
	"repro/internal/wordgen"
)

// roundTripWidths keeps every family at a width where both engines are
// comfortably in range (simulation needs nothing; the algebraic engine
// is polynomial here; PLA emission needs In <= wordgen.MaxPLAInputs).
var roundTripWidths = map[string]int{
	"add":     4,
	"cla":     4,
	"mul":     4,
	"wallace": 4,
	"parity":  8,
	"hamming": 8,
	"gfmul":   4,
}

func synthesize(t *testing.T, spec *network.Network) *network.Network {
	t.Helper()
	res, err := core.Synthesize(context.Background(), spec, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return res.Network
}

// checkBoth verifies net against ws with the algebraic engine and by
// simulation and requires both to pass: a disagreement means one of the
// engines (or the golden model) is wrong, which is exactly what a
// differential test exists to catch.
func checkBoth(t *testing.T, net *network.Network, ws *wordgen.Spec) {
	t.Helper()
	for _, mode := range []verify.Mode{verify.ModeAlgebraic, verify.ModeSim} {
		r, err := verify.Word(net, ws, verify.WordOptions{Mode: mode})
		if err != nil {
			t.Fatalf("%s: verify.Word(%v): %v", ws.Name, mode, err)
		}
		if !r.OK {
			t.Fatalf("%s: verify.Word(%v): FAILED: %+v", ws.Name, mode, r.Mismatch)
		}
	}
}

func TestRoundTripBLIF(t *testing.T) {
	for _, f := range wordgen.Families() {
		w, ok := roundTripWidths[f.Name]
		if !ok {
			t.Fatalf("family %s has no round-trip width; extend roundTripWidths", f.Name)
		}
		t.Run(f.Name, func(t *testing.T) {
			ws, err := wordgen.Generate(f.Name, w)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := ws.WriteBLIF(&buf); err != nil {
				t.Fatal(err)
			}
			parsed, err := network.ReadBLIF(&buf)
			if err != nil {
				t.Fatalf("ReadBLIF of emitted %s: %v", ws.Name, err)
			}
			checkBoth(t, synthesize(t, parsed), ws)
		})
	}
}

// plaWidths narrows the multiplier families: a width-4 multiplier's
// flat 256-minterm cover pushes the SOP-side synthesis to ~15s, and the
// PLA leg's point is the emit→parse round trip, not wide synthesis
// (TestRoundTripBLIF already covers width 4 for every family).
var plaWidths = map[string]int{"mul": 3, "wallace": 3}

func TestRoundTripPLA(t *testing.T) {
	for _, f := range wordgen.Families() {
		w := roundTripWidths[f.Name]
		if pw, ok := plaWidths[f.Name]; ok {
			w = pw
		}
		t.Run(f.Name, func(t *testing.T) {
			ws, err := wordgen.Generate(f.Name, w)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := ws.WritePLA(&buf); err != nil {
				t.Fatal(err)
			}
			p, err := sop.ParsePLA(strings.NewReader(buf.String()))
			if err != nil {
				t.Fatalf("ParsePLA of emitted %s: %v", ws.Name, err)
			}
			checkBoth(t, synthesize(t, network.FromPLA(p)), ws)
		})
	}
}
