package wordgen

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/sop"
)

// simWords drives the generated network on one concrete input-word
// assignment and packs the PO bits back into output words — the
// bit-level ground truth the golden model is checked against.
func simWords(t *testing.T, s *Spec, in []*big.Int) []*big.Int {
	t.Helper()
	assign := cube.NewBitSet(s.Net.NumPIs())
	for wi, w := range s.In {
		for b, pos := range w.Bits {
			if in[wi].Bit(b) == 1 {
				assign.Set(pos)
			}
		}
	}
	outBits := s.Net.Eval(assign)
	out := make([]*big.Int, len(s.Out))
	for wi, w := range s.Out {
		v := new(big.Int)
		for b, pos := range w.Bits {
			if outBits[pos] {
				v.SetBit(v, b, 1)
			}
		}
		out[wi] = v
	}
	return out
}

func randWords(rng *rand.Rand, s *Spec) []*big.Int {
	in := make([]*big.Int, len(s.In))
	for i, w := range s.In {
		v := new(big.Int)
		for b := 0; b < w.Width(); b++ {
			if rng.Intn(2) == 1 {
				v.SetBit(v, b, 1)
			}
		}
		in[i] = v
	}
	return in
}

// TestGoldenVsSimulation is the family ground-truth check: for every
// family at several widths, the gate-level network and the word-level
// golden model must agree on random operand values (and exhaustively at
// tiny widths).
func TestGoldenVsSimulation(t *testing.T) {
	for _, f := range Families() {
		for _, w := range []int{1, 2, 3, 4, 7, 8, 13, 16} {
			if w < f.MinWidth {
				continue
			}
			s, err := Generate(f.Name, w)
			if err != nil {
				t.Fatalf("%s/%d: %v", f.Name, w, err)
			}
			if got := s.Net.NumPOs(); got != f.OutBits(w) {
				t.Errorf("%s: %d POs, family table says %d", s.Name, got, f.OutBits(w))
			}
			rng := rand.New(rand.NewSource(int64(w)*100 + 7))
			vectors := 40
			for v := 0; v < vectors; v++ {
				in := randWords(rng, s)
				want, err := s.Golden(in)
				if err != nil {
					t.Fatalf("%s: golden: %v", s.Name, err)
				}
				got := simWords(t, s, in)
				for wi := range want {
					if want[wi].Cmp(got[wi]) != 0 {
						t.Fatalf("%s: word %s: golden %v, circuit %v (inputs %v)",
							s.Name, s.Out[wi].Name, want[wi], got[wi], in)
					}
				}
			}
		}
	}
}

// TestExhaustiveTiny drives every minterm at width 2-3 — cheap total
// coverage that catches off-by-one carry bugs random vectors can miss.
func TestExhaustiveTiny(t *testing.T) {
	for _, f := range Families() {
		for _, w := range []int{2, 3} {
			if w < f.MinWidth {
				continue
			}
			s, err := Generate(f.Name, w)
			if err != nil {
				t.Fatalf("%s/%d: %v", f.Name, w, err)
			}
			n := s.Net.NumPIs()
			for m := 0; m < 1<<uint(n); m++ {
				in := make([]*big.Int, len(s.In))
				bit := 0
				for wi, word := range s.In {
					v := new(big.Int)
					for b := 0; b < word.Width(); b++ {
						v.SetBit(v, b, uint(m>>uint(bit))&1)
						bit++
					}
					in[wi] = v
				}
				want, err := s.Golden(in)
				if err != nil {
					t.Fatalf("%s: golden: %v", s.Name, err)
				}
				got := simWords(t, s, in)
				for wi := range want {
					if want[wi].Cmp(got[wi]) != 0 {
						t.Fatalf("%s m=%d: word %s: golden %v, circuit %v",
							s.Name, m, s.Out[wi].Name, want[wi], got[wi])
					}
				}
			}
		}
	}
}

// TestDeterminism: the same (family, width) must produce the same
// network gate for gate — the property the scaling-curve baseline and
// the CI gate depend on.
func TestDeterminism(t *testing.T) {
	for _, name := range []string{"add8", "cla8", "mul6", "wallace6", "parity16", "hamming11", "gfmul8"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var ba, bbuf bytes.Buffer
		if err := a.WriteBLIF(&ba); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteBLIF(&bbuf); err != nil {
			t.Fatal(err)
		}
		if ba.String() != bbuf.String() {
			t.Errorf("%s: two generations differ", name)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	for _, bad := range []string{"", "mul", "8", "mul0", "nosuch8", "mul99999"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q): expected error", bad)
		}
	}
	s, err := ByName("gfmul8")
	if err != nil || s.Family != "gfmul" || s.Width != 8 {
		t.Fatalf("ByName(gfmul8) = %v, %v", s, err)
	}
}

// TestDefaultPoly pins the canonical polynomials at the widths every
// other component (tests, baseline, docs) assumes, and checks the
// search's outputs are irreducible across a width range.
func TestDefaultPoly(t *testing.T) {
	want := map[int]int64{2: 0x7, 3: 0xB, 4: 0x13, 8: 0x11B}
	for w, p := range want {
		got, err := DefaultPoly(w)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != p {
			t.Errorf("DefaultPoly(%d) = %#x, want %#x", w, got, p)
		}
	}
	for w := 2; w <= 64; w++ {
		p, err := DefaultPoly(w)
		if err != nil {
			t.Fatalf("DefaultPoly(%d): %v", w, err)
		}
		if p.BitLen() != w+1 || !Irreducible(p) {
			t.Errorf("DefaultPoly(%d) = %#x: degree %d, irreducible=%v",
				w, p, p.BitLen()-1, Irreducible(p))
		}
	}
	// Known-reducible inputs must be rejected.
	if Irreducible(big.NewInt(0x11)) { // x^4+1 = (x+1)^4
		t.Error("x^4+1 reported irreducible")
	}
	if _, err := GenerateGF(4, big.NewInt(0x11)); err == nil {
		t.Error("GenerateGF accepted a reducible polynomial")
	}
	if _, err := GenerateGF(4, big.NewInt(0x7)); err == nil {
		t.Error("GenerateGF accepted a degree-mismatched polynomial")
	}
}

// TestReduceTable checks the reduction rows against the big.Int
// carry-less reference: x^k mod p must equal row k.
func TestReduceTable(t *testing.T) {
	for _, w := range []int{2, 4, 8, 13} {
		p, err := DefaultPoly(w)
		if err != nil {
			t.Fatal(err)
		}
		rt := ReduceTable(w, p)
		for k := range rt {
			xk := new(big.Int).SetBit(new(big.Int), k, 1)
			want := gfMulMod(xk, big.NewInt(1), p)
			if rt[k].Cmp(want) != 0 {
				t.Errorf("w=%d k=%d: table %#x, reference %#x", w, k, rt[k], want)
			}
		}
	}
}

// TestPLARoundTrip: narrow instances emitted as PLA must parse back and
// simulate identically to the generated network.
func TestPLARoundTrip(t *testing.T) {
	for _, name := range []string{"add4", "mul3", "parity5", "hamming4", "gfmul4"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WritePLA(&buf); err != nil {
			t.Fatalf("%s: WritePLA: %v", name, err)
		}
		p, err := sop.ParsePLA(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ParsePLA: %v", name, err)
		}
		net := network.FromPLA(p)
		n := s.Net.NumPIs()
		for m := 0; m < 1<<uint(n); m++ {
			assign := cube.NewBitSet(n)
			for v := 0; v < n; v++ {
				if m&(1<<uint(v)) != 0 {
					assign.Set(v)
				}
			}
			a := s.Net.Eval(assign)
			b := net.Eval(assign)
			for o := range a {
				if a[o] != b[o] {
					t.Fatalf("%s: PLA round trip differs at minterm %d output %d", name, m, o)
				}
			}
		}
	}
	// Wide instances must refuse PLA emission with a useful error.
	s, err := ByName("mul16")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WritePLA(&bytes.Buffer{}); err == nil {
		t.Error("WritePLA accepted a 32-input circuit")
	}
}

// TestBLIFRoundTrip: BLIF emission must parse back and agree on random
// vectors at every family.
func TestBLIFRoundTrip(t *testing.T) {
	for _, name := range []string{"add8", "cla8", "mul5", "wallace5", "parity9", "hamming8", "gfmul6"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteBLIF(&buf); err != nil {
			t.Fatal(err)
		}
		net, err := network.ReadBLIF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadBLIF: %v", name, err)
		}
		rng := rand.New(rand.NewSource(11))
		for v := 0; v < 64; v++ {
			assign := cube.NewBitSet(s.Net.NumPIs())
			for i := 0; i < s.Net.NumPIs(); i++ {
				if rng.Intn(2) == 1 {
					assign.Set(i)
				}
			}
			a := s.Net.Eval(assign)
			b := net.Eval(assign)
			for o := range a {
				if a[o] != b[o] {
					t.Fatalf("%s: BLIF round trip differs at output %d", name, o)
				}
			}
		}
	}
}
