// Package wordgen is the word-level arithmetic workload generator: a
// deterministic, parametric source of the paper's target function family
// — adders, multipliers, parity/ECC encoders, and GF(2^k) multipliers —
// at arbitrary operand widths, each paired with a word-level golden
// model.
//
// Where package bench reconstructs the 41 fixed IWLS'91 circuits of
// Table 2, wordgen opens the scaling axis: the same family at width 4
// and width 64, so literals and runtime can be measured as a curve
// against operand width instead of a fixed table. Every generated
// circuit carries its word-level specification (which primary inputs
// and outputs form which operand words, and what arithmetic relation
// binds them), which is what package verify's algebraic mode checks by
// backward polynomial substitution — the route that scales past the
// widths where BDD equivalence blows up.
//
// Generation is pure and deterministic: the same (family, width,
// polynomial) triple always yields the same network, gate for gate.
package wordgen

import (
	"fmt"
	"io"
	"math/big"
	"strconv"
	"strings"

	"repro/internal/bdd"
	"repro/internal/network"
	"repro/internal/sop"
)

// Kind classifies the word-level relation a generated circuit
// implements; package verify dispatches its algebraic checker on it.
type Kind int

// Word-level relation kinds.
const (
	// KindIntAdd: the output words, weighted by their shifts, equal the
	// integer sum of the input words (ripple and lookahead adders).
	KindIntAdd Kind = iota
	// KindIntMul: the output words equal the integer product of the two
	// input words (array and Wallace-tree multipliers).
	KindIntMul
	// KindXorLinear: every output bit is the XOR of a fixed input-bit
	// subset (parity trees, Hamming ECC encoders). The subsets are in
	// Spec.Linear.
	KindXorLinear
	// KindGFMul: the output word is the GF(2^k) product of the input
	// words in standard basis modulo Spec.Poly.
	KindGFMul
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindIntAdd:
		return "int-add"
	case KindIntMul:
		return "int-mul"
	case KindXorLinear:
		return "xor-linear"
	case KindGFMul:
		return "gf-mul"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Word maps one operand word onto network bit positions: Bits[i] is the
// position (index into Network.PIs for input words, into Network.POs for
// output words) of the word's bit i, LSB first. Shift is the word's
// power-of-two offset inside the circuit's packed output value — the
// carry-out word of a width-w adder has Shift w.
type Word struct {
	Name  string `json:"name"`
	Bits  []int  `json:"bits"`
	Shift int    `json:"shift"`
}

// Width is the word's bit count.
func (w Word) Width() int { return len(w.Bits) }

// Spec is one generated circuit: the gate network plus its word-level
// specification.
type Spec struct {
	Family string // "add", "cla", "mul", "wallace", "parity", "hamming", "gfmul"
	Width  int    // operand width the family was generated at
	Name   string // e.g. "mul8"
	Kind   Kind
	Net    *network.Network
	In     []Word // operand words over PI positions
	Out    []Word // result words over PO positions
	// Poly is the irreducible reduction polynomial of a KindGFMul spec
	// (bit i = coefficient of x^i; bit Width is always set). Zero
	// otherwise.
	Poly *big.Int
	// Linear holds, for a KindXorLinear spec, the PI positions XORed
	// into each PO (indexed by PO position). Nil otherwise.
	Linear [][]int
}

// Family describes one generator family for listings.
type Family struct {
	Name        string
	Description string
	// OutBits reports the output bit count at width w.
	OutBits func(w int) int
	// MinWidth is the smallest meaningful operand width.
	MinWidth int
}

// Families enumerates the supported generator families in a stable
// order.
func Families() []Family {
	return []Family{
		{"add", "ripple-carry adder: s[w]+cout = a[w]+b[w]", func(w int) int { return w + 1 }, 1},
		{"cla", "carry-lookahead adder (parallel-prefix carries), same spec as add", func(w int) int { return w + 1 }, 1},
		{"mul", "array multiplier: p[2w] = a[w]*b[w], ripple-carry rows", func(w int) int { return 2 * w }, 1},
		{"wallace", "Wallace-style multiplier: 3:2 column compression, final ripple adder", func(w int) int { return 2 * w }, 1},
		{"parity", "parity tree: one output, XOR of w inputs", func(w int) int { return 1 }, 2},
		{"hamming", "Hamming ECC encoder: w data bits pass through + r parity bits, 2^r >= w+r+1", func(w int) int { return w + hammingParityBits(w) }, 2},
		{"gfmul", "GF(2^w) multiplier, standard basis, reduction by an irreducible polynomial", func(w int) int { return w }, 2},
	}
}

// maxWidth bounds generation: beyond it the request is a unit confusion
// (a 4096-bit array multiplier has ~16M gates), not a workload.
const maxWidth = 1 << 10

// Generate builds the named family at the given operand width, with the
// family's default parameters (gfmul uses DefaultPoly).
func Generate(family string, width int) (*Spec, error) {
	if family == "gfmul" {
		p, err := DefaultPoly(width)
		if err != nil {
			return nil, err
		}
		return GenerateGF(width, p)
	}
	if err := checkWidth(family, width); err != nil {
		return nil, err
	}
	switch family {
	case "add":
		return genAdder(width, false), nil
	case "cla":
		return genAdder(width, true), nil
	case "mul":
		return genArrayMul(width), nil
	case "wallace":
		return genWallaceMul(width), nil
	case "parity":
		return genParity(width), nil
	case "hamming":
		return genHamming(width), nil
	}
	return nil, fmt.Errorf("wordgen: unknown family %q", family)
}

// GenerateGF builds the GF(2^width) standard-basis multiplier reduced by
// the given polynomial (bit i = coefficient of x^i; degree must equal
// width and the polynomial must be irreducible over GF(2)).
func GenerateGF(width int, poly *big.Int) (*Spec, error) {
	if err := checkWidth("gfmul", width); err != nil {
		return nil, err
	}
	if poly == nil || poly.BitLen() != width+1 || poly.Bit(0) != 1 {
		return nil, fmt.Errorf("wordgen: gfmul width %d needs a degree-%d polynomial with constant term (got %v)", width, width, poly)
	}
	if !Irreducible(poly) {
		return nil, fmt.Errorf("wordgen: polynomial %#x is reducible over GF(2)", poly)
	}
	return genGFMul(width, poly), nil
}

func checkWidth(family string, width int) error {
	min := 1
	for _, f := range Families() {
		if f.Name == family {
			min = f.MinWidth
		}
	}
	if width < min || width > maxWidth {
		return fmt.Errorf("wordgen: family %s width %d out of range [%d, %d]", family, width, min, maxWidth)
	}
	return nil
}

// ByName parses a generated-circuit name of the form "<family><width>"
// ("mul8", "gfmul16", "hamming32") and generates it. The trailing
// decimal digits are the width; everything before them is the family.
func ByName(name string) (*Spec, error) {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == 0 || i == len(name) {
		return nil, fmt.Errorf("wordgen: %q is not <family><width>", name)
	}
	width, err := strconv.Atoi(name[i:])
	if err != nil {
		return nil, fmt.Errorf("wordgen: bad width in %q: %v", name, err)
	}
	return Generate(name[:i], width)
}

// Golden evaluates the word-level golden model on concrete operand
// values (one big.Int per input word, in In order) and returns one value
// per output word, in Out order. Inputs wider than the word are reduced
// modulo 2^width. This is the reference semantics every other checker
// (simulation, BDD, algebraic) is compared against in tests.
func (s *Spec) Golden(in []*big.Int) ([]*big.Int, error) {
	if len(in) != len(s.In) {
		return nil, fmt.Errorf("wordgen: %s golden model wants %d input words, got %d", s.Name, len(s.In), len(in))
	}
	vals := make([]*big.Int, len(in))
	for i, w := range s.In {
		vals[i] = new(big.Int).And(in[i], maskBits(w.Width()))
	}
	switch s.Kind {
	case KindIntAdd:
		sum := new(big.Int)
		for _, v := range vals {
			sum.Add(sum, v)
		}
		return s.splitWords(sum), nil
	case KindIntMul:
		prod := new(big.Int).Mul(vals[0], vals[1])
		return s.splitWords(prod), nil
	case KindXorLinear:
		// Concatenate input words into one PI-position-indexed bit view,
		// then apply the linear map per output word bit.
		piBits := map[int]uint{}
		for i, w := range s.In {
			for b, pos := range w.Bits {
				piBits[pos] = vals[i].Bit(b)
			}
		}
		var out []*big.Int
		for _, ow := range s.Out {
			v := new(big.Int)
			for b, pos := range ow.Bits {
				x := uint(0)
				for _, pi := range s.Linear[pos] {
					x ^= piBits[pi]
				}
				v.SetBit(v, b, x)
			}
			out = append(out, v)
		}
		return out, nil
	case KindGFMul:
		return []*big.Int{gfMulMod(vals[0], vals[1], s.Poly)}, nil
	}
	return nil, fmt.Errorf("wordgen: %s: golden model for kind %s not implemented", s.Name, s.Kind)
}

// splitWords distributes a packed integer result onto the output words
// by their shifts.
func (s *Spec) splitWords(v *big.Int) []*big.Int {
	out := make([]*big.Int, len(s.Out))
	for i, w := range s.Out {
		out[i] = new(big.Int).And(new(big.Int).Rsh(v, uint(w.Shift)), maskBits(w.Width()))
	}
	return out
}

func maskBits(n int) *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), uint(n))
	return m.Sub(m, big.NewInt(1))
}

// gfMulMod is the GF(2)[x] carry-less product of a and b reduced modulo
// p — the reference implementation of the gfmul golden model.
func gfMulMod(a, b, p *big.Int) *big.Int {
	prod := new(big.Int)
	t := new(big.Int)
	for i := 0; i < a.BitLen(); i++ {
		if a.Bit(i) == 1 {
			prod.Xor(prod, t.Lsh(b, uint(i)))
		}
	}
	deg := p.BitLen() - 1
	red := new(big.Int)
	for prod.BitLen() > deg {
		red.Lsh(p, uint(prod.BitLen()-1-deg))
		prod.Xor(prod, red)
	}
	return new(big.Int).Set(prod)
}

// WritePLA emits the spec as a two-level espresso-format PLA (one
// irredundant ON-set cover per output, extracted through BDDs). Only
// narrow instances are representable two-level; wider ones must use
// WriteBLIF.
func (s *Spec) WritePLA(w io.Writer) error {
	if n := s.Net.NumPIs(); n > MaxPLAInputs {
		return fmt.Errorf("wordgen: %s has %d inputs; PLA emission is limited to %d (use BLIF)", s.Name, n, MaxPLAInputs)
	}
	m := bdd.New(s.Net.NumPIs())
	refs := s.Net.ToBDDs(m)
	p := &sop.PLA{Name: s.Name, Inputs: s.Net.NumPIs(), Outputs: s.Net.NumPOs()}
	for _, pi := range s.Net.PIs {
		p.InNames = append(p.InNames, s.Net.Gates[pi].Name)
	}
	for _, po := range s.Net.POs {
		p.OutName = append(p.OutName, po.Name)
	}
	for i, r := range refs {
		cover, err := m.ToCover(r)
		if err != nil {
			return fmt.Errorf("wordgen: %s output %d: %v", s.Name, i, err)
		}
		p.Covers = append(p.Covers, cover)
	}
	return p.WritePLA(w)
}

// MaxPLAInputs bounds two-level PLA emission: the ISOP cover of a wider
// instance is either exponential (multipliers) or pointlessly large.
const MaxPLAInputs = 20

// WriteBLIF emits the generated network in BLIF (any width).
func (s *Spec) WriteBLIF(w io.Writer) error { return s.Net.WriteBLIF(w) }

// String summarizes the spec for logs.
func (s *Spec) String() string {
	var in, out []string
	for _, w := range s.In {
		in = append(in, fmt.Sprintf("%s[%d]", w.Name, w.Width()))
	}
	for _, w := range s.Out {
		out = append(out, fmt.Sprintf("%s[%d]", w.Name, w.Width()))
	}
	return fmt.Sprintf("%s: %s (%s) -> (%s), %d gates",
		s.Name, s.Kind, strings.Join(in, ", "), strings.Join(out, ", "), len(s.Net.Gates))
}

// ReduceTable returns, for each partial-product column k = 0..2w-2, the
// w-bit mask of standard-basis coordinates x^k reduces to modulo poly:
// row k is the representation of x^k in GF(2^w). Rows 0..w-1 are the
// unit vectors; higher rows fold back through the polynomial. Both the
// generator and the algebraic checker derive their semantics from this
// table — it *is* the definition of standard-basis reduction.
func ReduceTable(width int, poly *big.Int) []*big.Int {
	rows := make([]*big.Int, 2*width-1)
	for k := range rows {
		if k < width {
			rows[k] = new(big.Int).SetBit(new(big.Int), k, 1)
			continue
		}
		// x^k = x * x^(k-1), then reduce the overflow bit through poly:
		// x^w = poly - x^w (over GF(2): the low-degree tail of poly).
		r := new(big.Int).Lsh(rows[k-1], 1)
		if r.Bit(width) == 1 {
			r.SetBit(r, width, 0)
			tail := new(big.Int).SetBit(new(big.Int).Set(poly), width, 0)
			r.Xor(r, tail)
		}
		rows[k] = r
	}
	return rows
}

// Irreducible reports whether p (degree >= 1, over GF(2)) is irreducible,
// via the standard criterion: x^(2^n) == x mod p, and for every prime
// divisor d of n, gcd(x^(2^(n/d)) - x, p) == 1.
func Irreducible(p *big.Int) bool {
	n := p.BitLen() - 1
	if n < 1 {
		return false
	}
	if n == 1 {
		return true // x and x+1
	}
	if p.Bit(0) == 0 {
		return false // divisible by x
	}
	x := big.NewInt(2) // the polynomial "x"
	// x^(2^n) mod p by repeated squaring.
	sq := new(big.Int).Set(x)
	for i := 0; i < n; i++ {
		sq = gfMulMod(sq, sq, p)
	}
	if sq.Cmp(x) != 0 {
		return false
	}
	for _, d := range primeDivisors(n) {
		sq := new(big.Int).Set(x)
		for i := 0; i < n/d; i++ {
			sq = gfMulMod(sq, sq, p)
		}
		g := polyGCD(new(big.Int).Xor(sq, x), p)
		if g.BitLen() > 1 {
			return false
		}
	}
	return true
}

func primeDivisors(n int) []int {
	var ds []int
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			ds = append(ds, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		ds = append(ds, n)
	}
	return ds
}

func polyGCD(a, b *big.Int) *big.Int {
	a, b = new(big.Int).Set(a), new(big.Int).Set(b)
	for b.Sign() != 0 {
		// a mod b over GF(2)[x].
		for a.BitLen() >= b.BitLen() && a.Sign() != 0 {
			a.Xor(a, new(big.Int).Lsh(b, uint(a.BitLen()-b.BitLen())))
		}
		a, b = b, a
	}
	return a
}

// DefaultPoly returns the canonical reduction polynomial for GF(2^w):
// the irreducible degree-w polynomial with the smallest integer
// encoding. It is found by search, not a table, so every width in range
// gets a correct polynomial; the search is cheap (low-weight irreducible
// polynomials exist near the bottom of the order for every degree).
func DefaultPoly(width int) (*big.Int, error) {
	if width < 2 || width > maxWidth {
		return nil, fmt.Errorf("wordgen: gfmul width %d out of range [2, %d]", width, maxWidth)
	}
	// Candidates have the top and constant bits set; enumerate the tail.
	base := new(big.Int).SetBit(new(big.Int), width, 1)
	for tail := int64(1); tail < 1<<20; tail += 2 {
		p := new(big.Int).Or(base, big.NewInt(tail))
		if Irreducible(p) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("wordgen: no irreducible polynomial found for width %d", width)
}

// seq returns positions 0..n-1; word builders use it to keep bit
// listings explicit and stable.
func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
