package wordgen

import (
	"fmt"
	"math/big"

	"repro/internal/network"
)

// builder wraps a network under construction with the gate helpers the
// family generators share. The underlying network hash-conses at
// AddGate, so structurally repeated cells (the a_i XOR b_i shared by the
// sum and carry of a full adder) are created once.
type builder struct {
	net *network.Network
}

// newBuilder starts a network with the given input words declared in
// order, returning the builder, the position-resolved words, and the
// PI gate IDs per word.
func newBuilder(name string, inWords ...Word) (*builder, []Word, [][]int) {
	b := &builder{net: network.New(name)}
	words := make([]Word, len(inWords))
	ids := make([][]int, len(inWords))
	for wi, w := range inWords {
		words[wi] = Word{Name: w.Name, Shift: w.Shift, Bits: make([]int, len(w.Bits))}
		ids[wi] = make([]int, len(w.Bits))
		for i := range w.Bits {
			words[wi].Bits[i] = len(b.net.PIs)
			ids[wi][i] = b.net.AddPI(fmt.Sprintf("%s%d", w.Name, i))
		}
	}
	return b, words, ids
}

// inWord declares an input word shape for newBuilder.
func inWord(name string, width int) Word { return Word{Name: name, Bits: make([]int, width)} }

func (b *builder) xor(x, y int) int { return b.net.AddGate(network.Xor, x, y) }
func (b *builder) and(x, y int) int { return b.net.AddGate(network.And, x, y) }
func (b *builder) or(x, y int) int  { return b.net.AddGate(network.Or, x, y) }

// halfAdd returns (sum, carry) of two bits.
func (b *builder) halfAdd(x, y int) (int, int) { return b.xor(x, y), b.and(x, y) }

// fullAdd returns (sum, carry) of three bits, the textbook cell:
// s = x^y^c, co = (x&y) | (c&(x^y)).
func (b *builder) fullAdd(x, y, c int) (int, int) {
	p := b.xor(x, y)
	return b.xor(p, c), b.or(b.and(x, y), b.and(c, p))
}

// addPOWord declares one output word: a PO per bit, LSB first.
func (b *builder) addPOWord(name string, shift int, bits []int) Word {
	w := Word{Name: name, Shift: shift, Bits: make([]int, len(bits))}
	for i, g := range bits {
		w.Bits[i] = len(b.net.POs)
		poName := fmt.Sprintf("%s%d", name, i)
		if len(bits) == 1 {
			poName = name
		}
		b.net.AddPO(poName, g)
	}
	return w
}

// addAt adds the contiguous bit vector xs into the weight-indexed
// accumulator acc at weight offset off, rippling the carry to the top.
// acc[k] is the single bit of weight k; the grown accumulator is
// returned. xs may extend at most one bit past the accumulator top per
// step (which is how multiplier rows grow it).
func (b *builder) addAt(acc, xs []int, off int) []int {
	c := -1
	for j, x := range xs {
		k := off + j
		switch {
		case k < len(acc):
			if c < 0 {
				acc[k], c = b.halfAdd(acc[k], x)
			} else {
				acc[k], c = b.fullAdd(acc[k], x, c)
			}
		case k == len(acc):
			if c < 0 {
				acc = append(acc, x)
			} else {
				var s int
				s, c = b.halfAdd(x, c)
				acc = append(acc, s)
			}
		default:
			// Programmer invariant: multiplier rows are contiguous, so
			// the vector never skips past the accumulator top.
			panic("wordgen: non-contiguous addAt")
		}
	}
	for k := off + len(xs); c >= 0; k++ {
		if k < len(acc) {
			acc[k], c = b.halfAdd(acc[k], c)
		} else {
			acc = append(acc, c)
			c = -1
		}
	}
	return acc
}

// padTo extends a bit vector to n bits with constant-0 gates.
func (b *builder) padTo(bits []int, n int) []int {
	for len(bits) < n {
		bits = append(bits, b.net.AddGate(network.Const0))
	}
	return bits
}

// genAdder builds the width-w adder: ripple-carry (lookahead=false) or
// parallel-prefix carry-lookahead (lookahead=true). Both implement
// s + 2^w*cout = a + b; only the carry network differs — which is
// exactly the structural axis the scaling curves separate.
func genAdder(w int, lookahead bool) *Spec {
	family := "add"
	if lookahead {
		family = "cla"
	}
	name := fmt.Sprintf("%s%d", family, w)
	b, words, ids := newBuilder(name, inWord("a", w), inWord("b", w))
	a, bb := ids[0], ids[1]

	var sum []int
	var cout int
	if !lookahead {
		sum = make([]int, w)
		c := -1
		for i := 0; i < w; i++ {
			if c < 0 {
				sum[i], c = b.halfAdd(a[i], bb[i])
			} else {
				sum[i], c = b.fullAdd(a[i], bb[i], c)
			}
		}
		cout = c
	} else {
		// Kogge-Stone parallel prefix over (generate, propagate) pairs:
		// the carry into bit i is the group generate of bits [0, i].
		p := make([]int, w)
		g := make([]int, w)
		for i := 0; i < w; i++ {
			p[i] = b.xor(a[i], bb[i])
			g[i] = b.and(a[i], bb[i])
		}
		gg := append([]int(nil), g...)
		pp := append([]int(nil), p...)
		for span := 1; span < w; span <<= 1 {
			ng := append([]int(nil), gg...)
			np := append([]int(nil), pp...)
			for i := span; i < w; i++ {
				ng[i] = b.or(gg[i], b.and(pp[i], gg[i-span]))
				np[i] = b.and(pp[i], pp[i-span])
			}
			gg, pp = ng, np
		}
		sum = make([]int, w)
		sum[0] = p[0]
		for i := 1; i < w; i++ {
			sum[i] = b.xor(p[i], gg[i-1])
		}
		cout = gg[w-1]
	}

	outS := b.addPOWord("s", 0, sum)
	outC := b.addPOWord("cout", w, []int{cout})
	return &Spec{
		Family: family, Width: w, Name: name, Kind: KindIntAdd,
		Net: b.net, In: words, Out: []Word{outS, outC},
	}
}

// genArrayMul builds the width-w ripple-carry array multiplier: the
// partial-product rows a&b_i are folded into a weight-indexed
// accumulator one at a time, each through a ripple-carry adder — the
// classic O(w^2)-cell array.
func genArrayMul(w int) *Spec {
	name := fmt.Sprintf("mul%d", w)
	b, words, ids := newBuilder(name, inWord("a", w), inWord("b", w))
	a, bb := ids[0], ids[1]

	row := func(i int) []int {
		r := make([]int, w)
		for j := 0; j < w; j++ {
			r[j] = b.and(a[j], bb[i])
		}
		return r
	}
	acc := row(0)
	for i := 1; i < w; i++ {
		acc = b.addAt(acc, row(i), i)
	}
	acc = b.padTo(acc, 2*w)

	outP := b.addPOWord("p", 0, acc)
	return &Spec{
		Family: "mul", Width: w, Name: name, Kind: KindIntMul,
		Net: b.net, In: words, Out: []Word{outP},
	}
}

// genWallaceMul builds the width-w Wallace-style multiplier: the
// partial-product columns are compressed with 3:2 (full-adder) and 2:2
// (half-adder) counters until every column holds at most two bits, then
// a final ripple-carry adder sums the two remaining rows.
func genWallaceMul(w int) *Spec {
	name := fmt.Sprintf("wallace%d", w)
	b, words, ids := newBuilder(name, inWord("a", w), inWord("b", w))
	a, bb := ids[0], ids[1]

	cols := make([][]int, 2*w)
	for i := 0; i < w; i++ {
		for j := 0; j < w; j++ {
			cols[i+j] = append(cols[i+j], b.and(a[j], bb[i]))
		}
	}
	for {
		high := 0
		for _, col := range cols {
			if len(col) > high {
				high = len(col)
			}
		}
		if high <= 2 {
			break
		}
		// One 3:2 compression pass: every group of three bits in a
		// column becomes a full adder (sum stays, carry moves up).
		next := make([][]int, len(cols))
		put := func(k, g int) {
			for len(next) <= k {
				next = append(next, nil)
			}
			next[k] = append(next[k], g)
		}
		for k, col := range cols {
			for len(col) >= 3 {
				s, c := b.fullAdd(col[0], col[1], col[2])
				col = col[3:]
				put(k, s)
				put(k+1, c)
			}
			for _, g := range col {
				put(k, g)
			}
		}
		cols = next
	}
	// Final carry-propagate adder over the (at most) two remaining rows.
	prod := make([]int, 0, 2*w)
	c := -1
	for _, col := range cols {
		bits := col
		if c >= 0 {
			bits = append(append([]int(nil), col...), c)
			c = -1
		}
		switch len(bits) {
		case 0:
			prod = append(prod, b.net.AddGate(network.Const0))
		case 1:
			prod = append(prod, bits[0])
		case 2:
			var s int
			s, c = b.halfAdd(bits[0], bits[1])
			prod = append(prod, s)
		case 3:
			var s int
			s, c = b.fullAdd(bits[0], bits[1], bits[2])
			prod = append(prod, s)
		}
	}
	prod = prod[:2*w]

	outP := b.addPOWord("p", 0, prod)
	return &Spec{
		Family: "wallace", Width: w, Name: name, Kind: KindIntMul,
		Net: b.net, In: words, Out: []Word{outP},
	}
}

// genParity builds the width-w parity tree: one output, the XOR of all
// inputs, as a balanced 2-input XOR tree.
func genParity(w int) *Spec {
	name := fmt.Sprintf("parity%d", w)
	b, words, ids := newBuilder(name, inWord("a", w))
	root := b.net.BalancedTree(network.Xor, ids[0])
	outP := b.addPOWord("p", 0, []int{root})
	return &Spec{
		Family: "parity", Width: w, Name: name, Kind: KindXorLinear,
		Net: b.net, In: words, Out: []Word{outP},
		Linear: [][]int{seq(w)},
	}
}

// hammingParityBits returns the parity-bit count r of the systematic
// Hamming encoder for w data bits: the smallest r with 2^r >= w + r + 1.
func hammingParityBits(w int) int {
	r := 1
	for 1<<uint(r) < w+r+1 {
		r++
	}
	return r
}

// genHamming builds the systematic Hamming ECC encoder for w data bits:
// the data word passes through and r parity bits cover the standard
// Hamming positions (parity j at codeword position 2^j covers every
// data position with bit j set).
func genHamming(w int) *Spec {
	name := fmt.Sprintf("hamming%d", w)
	r := hammingParityBits(w)
	b, words, ids := newBuilder(name, inWord("d", w))
	d := ids[0]

	// Codeword positions 1..w+r: powers of two are parity positions,
	// the rest carry data bits in increasing order.
	dataPos := make([]int, 0, w) // codeword position of data bit i
	for pos := 1; len(dataPos) < w; pos++ {
		if pos&(pos-1) != 0 {
			dataPos = append(dataPos, pos)
		}
	}
	linear := make([][]int, 0, w+r)
	var dataOut []int
	for i := 0; i < w; i++ {
		dataOut = append(dataOut, d[i])
		linear = append(linear, []int{i})
	}
	var parOut []int
	for j := 0; j < r; j++ {
		var cover []int
		for i, pos := range dataPos {
			if pos&(1<<uint(j)) != 0 {
				cover = append(cover, i)
			}
		}
		gates := make([]int, len(cover))
		for k, i := range cover {
			gates[k] = d[i]
		}
		parOut = append(parOut, b.net.BalancedTree(network.Xor, gates))
		linear = append(linear, cover)
	}

	outD := b.addPOWord("q", 0, dataOut)
	outP := b.addPOWord("p", w, parOut)
	return &Spec{
		Family: "hamming", Width: w, Name: name, Kind: KindXorLinear,
		Net: b.net, In: words, Out: []Word{outD, outP},
		Linear: linear,
	}
}

// genGFMul builds the GF(2^w) standard-basis multiplier: partial-product
// columns c_k = XOR over i+j=k of a_i*b_j (the polynomial product), then
// each output coordinate XORs the columns the reduction table folds onto
// it: z_t = XOR over { c_k : x^k reduces onto coordinate t mod poly }.
func genGFMul(w int, poly *big.Int) *Spec {
	name := fmt.Sprintf("gfmul%d", w)
	b, words, ids := newBuilder(name, inWord("a", w), inWord("b", w))
	a, bb := ids[0], ids[1]

	cols := make([]int, 2*w-1)
	for k := range cols {
		var bits []int
		for i := 0; i < w; i++ {
			j := k - i
			if j >= 0 && j < w {
				bits = append(bits, b.and(a[i], bb[j]))
			}
		}
		cols[k] = b.net.BalancedTree(network.Xor, bits)
	}
	rt := ReduceTable(w, poly)
	z := make([]int, w)
	for t := 0; t < w; t++ {
		var bits []int
		for k := range cols {
			if rt[k].Bit(t) == 1 {
				bits = append(bits, cols[k])
			}
		}
		// Every coordinate receives at least its own column (rows 0..w-1
		// are unit vectors), so the tree is never empty.
		z[t] = b.net.BalancedTree(network.Xor, bits)
	}

	outZ := b.addPOWord("z", 0, z)
	return &Spec{
		Family: "gfmul", Width: w, Name: name, Kind: KindGFMul,
		Net: b.net, In: words, Out: []Word{outZ},
		Poly: new(big.Int).Set(poly),
	}
}
