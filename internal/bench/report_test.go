package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func circuitReports(crs ...CircuitReport) *Report {
	return &Report{Schema: ReportSchema, Circuits: crs}
}

func TestCheckScenarios(t *testing.T) {
	base := CircuitReport{Name: "z4ml", OursLits: 40, Degradations: 0, Verified: true}
	cases := []struct {
		name string
		cur  CircuitReport
		drop bool // drop the circuit from the current report entirely
		kind string
	}{
		{name: "identical", cur: base},
		{name: "improvement passes", cur: CircuitReport{Name: "z4ml", OursLits: 35, Verified: true}},
		{name: "fewer degradations pass", cur: CircuitReport{Name: "z4ml", OursLits: 40, Verified: true}},
		{name: "literal increase", cur: CircuitReport{Name: "z4ml", OursLits: 41, Verified: true}, kind: "literals"},
		{name: "new degradation", cur: CircuitReport{Name: "z4ml", OursLits: 40, Degradations: 1, Verified: true}, kind: "degradations"},
		{name: "verification lost", cur: CircuitReport{Name: "z4ml", OursLits: 40, Verified: false}, kind: "verification"},
		{name: "new error", cur: CircuitReport{Name: "z4ml", OursLits: 40, Verified: true, Err: "boom"}, kind: "error"},
		{name: "missing circuit", drop: true, kind: "missing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := circuitReports(tc.cur)
			if tc.drop {
				cur = circuitReports()
			}
			regs := Check(cur, circuitReports(base))
			if tc.kind == "" {
				if len(regs) != 0 {
					t.Fatalf("unexpected regressions: %v", regs)
				}
				return
			}
			if len(regs) != 1 {
				t.Fatalf("regressions = %v, want one %q", regs, tc.kind)
			}
			if regs[0].Kind != tc.kind || regs[0].Circuit != "z4ml" {
				t.Errorf("regression = %+v, want kind %q on z4ml", regs[0], tc.kind)
			}
		})
	}
}

// A degraded baseline tolerates the same degradations in the current
// run: the gate is against the recorded state, not against perfection.
func TestCheckToleratesBaselineDegradations(t *testing.T) {
	base := circuitReports(CircuitReport{Name: "mul4", OursLits: 100, Degradations: 2, Verified: true})
	cur := circuitReports(CircuitReport{Name: "mul4", OursLits: 100, Degradations: 2, Verified: true})
	if regs := Check(cur, base); len(regs) != 0 {
		t.Errorf("same degradation count flagged: %v", regs)
	}
	worse := circuitReports(CircuitReport{Name: "mul4", OursLits: 100, Degradations: 3, Verified: true})
	if regs := Check(worse, base); len(regs) != 1 || regs[0].Kind != "degradations" {
		t.Errorf("extra degradation not flagged: %v", regs)
	}
}

// A circuit only present in the current run (baseline not yet
// refreshed) is not a regression.
func TestCheckIgnoresNewCircuits(t *testing.T) {
	base := circuitReports(CircuitReport{Name: "adr4", OursLits: 10, Verified: true})
	cur := circuitReports(
		CircuitReport{Name: "adr4", OursLits: 10, Verified: true},
		CircuitReport{Name: "brand-new", OursLits: 999},
	)
	if regs := Check(cur, base); len(regs) != 0 {
		t.Errorf("new circuit flagged: %v", regs)
	}
}

func TestReportRoundTripAndSchemaGate(t *testing.T) {
	rep := circuitReports(
		CircuitReport{Name: "b", OursLits: 2},
		CircuitReport{Name: "a", OursLits: 1, Verified: true},
	)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "rep.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Circuits) != 2 || back.Circuits[0].Name != "b" {
		t.Errorf("round trip lost data: %+v", back)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"rmbench/v999","circuits":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(bad); err == nil {
		t.Error("unknown schema accepted")
	}
}

// BuildReport sorts by name and copies the degradation count out of the
// nested run report so the gate reads it without descending.
func TestBuildReportSortsAndCounts(t *testing.T) {
	rows := []Row{
		{Name: "z4ml", OursLits: 40},
		{Name: "adr4", OursLits: 34},
	}
	rep := BuildReport(rows)
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Circuits[0].Name != "adr4" || rep.Circuits[1].Name != "z4ml" {
		t.Errorf("not sorted: %+v", rep.Circuits)
	}
}

// The end-to-end acceptance check for the gate: a deliberately worsened
// flow must trip the literal gate against a default-options baseline of
// the same circuit, and the unchanged flow must pass against its own
// baseline. Two independent worsening knobs are exercised: disabling
// the Section 3 reduction rules and skipping the polarity search.
func TestGateCatchesWorsenedFlow(t *testing.T) {
	cases := []struct {
		name    string
		circuit string
		worsen  func(*Options)
	}{
		{
			name:    "reduction rules disabled",
			circuit: "5xp1",
			worsen:  func(o *Options) { o.Core.Rules = false },
		},
		{
			name:    "polarity search disabled",
			circuit: "bcd-div3",
			worsen:  func(o *Options) { o.Core.Polarity = core.PolarityPositive },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, ok := ByName(tc.circuit)
			if !ok {
				t.Fatalf("%s missing from the circuit table", tc.circuit)
			}
			opt := DefaultOptions()
			opt.Stats = true
			// Pin the pure GF(2) flow: under the default auto basis the
			// arbiter would mask the worsening by keeping the unaffected
			// SOP arm, and this test is about the gate, not the arbiter.
			opt.Core.Basis = core.BasisXor
			good := RunCircuit(c, opt)
			if good.Err != "" {
				t.Fatalf("baseline run failed: %s", good.Err)
			}

			worse := opt
			tc.worsen(&worse)
			bad := RunCircuit(c, worse)
			if bad.Err != "" {
				t.Fatalf("worsened run failed: %s", bad.Err)
			}
			if bad.OursLits <= good.OursLits {
				t.Fatalf("worsened run not worse (%d vs %d); pick a different knob",
					bad.OursLits, good.OursLits)
			}

			regs := Check(BuildReport([]Row{bad}), BuildReport([]Row{good}))
			found := false
			for _, r := range regs {
				if r.Circuit == tc.circuit && r.Kind == "literals" {
					found = true
				}
			}
			if !found {
				t.Errorf("worsened flow not caught: %v", regs)
			}

			// And the unchanged flow passes against its own baseline.
			again := RunCircuit(c, opt)
			if regs := Check(BuildReport([]Row{again}), BuildReport([]Row{good})); len(regs) != 0 {
				t.Errorf("self-check regressed: %v", regs)
			}
		})
	}
}
