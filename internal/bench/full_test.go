package bench

import (
	"os"
	"testing"
)

// TestFullTable2 runs the complete Table 2 reproduction. It is skipped in
// -short mode (the full run takes a while on the big circuits).
func TestFullTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 2 run skipped in -short mode")
	}
	rows, arith, all := Table2(DefaultOptions())
	WriteTable(os.Stdout, rows, arith, all)
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: %s", r.Name, r.Err)
		}
		if !r.Verified {
			t.Errorf("%s: verification failed", r.Name)
		}
	}
	if arith.ImproveLits <= 0 {
		t.Errorf("arithmetic improvement = %.1f%%, want > 0 (paper: 17.3%%)", arith.ImproveLits)
	}
	if all.ImproveLits <= 0 {
		t.Errorf("overall improvement = %.1f%%, want > 0 (paper: 11.9%%)", all.ImproveLits)
	}
}
