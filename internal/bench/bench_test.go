package bench

import (
	"context"
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sisbase"
	"repro/internal/verify"
)

// TestCircuitIOCounts: every circuit matches the paper's I/O column.
func TestCircuitIOCounts(t *testing.T) {
	want := map[string][2]int{
		"5xp1": {7, 10}, "9sym": {9, 1}, "adr4": {8, 5}, "add6": {12, 7},
		"addm4": {9, 8}, "bcd-div3": {4, 4}, "cc": {21, 20}, "co14": {14, 1},
		"cm163a": {16, 5}, "cm82a": {5, 3}, "cm85a": {11, 3}, "cmb": {16, 4},
		"f2": {4, 4}, "f51m": {8, 8}, "frg1": {28, 3}, "i1": {25, 13},
		"i3": {132, 6}, "i4": {192, 6}, "i5": {133, 66}, "m181": {15, 9},
		"majority": {5, 1}, "misg": {56, 23}, "mish": {94, 34}, "mlp4": {8, 8},
		"my_adder": {33, 17}, "parity": {16, 1}, "pcle": {19, 9},
		"pcler8": {27, 17}, "pm1": {16, 13}, "radd": {8, 5}, "rd53": {5, 3},
		"rd73": {7, 3}, "rd84": {8, 4}, "shift": {19, 16}, "sqr6": {6, 12},
		"squar5": {5, 8}, "sym10": {10, 1}, "t481": {16, 1}, "tcon": {17, 16},
		"xor10": {10, 1}, "z4ml": {7, 4},
	}
	circuits := Circuits()
	if len(circuits) != 41 {
		t.Fatalf("got %d circuits, want 41 (Table 2)", len(circuits))
	}
	for _, c := range circuits {
		w, ok := want[c.Name]
		if !ok {
			t.Errorf("unexpected circuit %s", c.Name)
			continue
		}
		if c.In != w[0] || c.Out != w[1] {
			t.Errorf("%s: declared I/O %d/%d, want %d/%d", c.Name, c.In, c.Out, w[0], w[1])
		}
		if c.Name == "i3" || c.Name == "i4" || c.Name == "i5" ||
			c.Name == "misg" || c.Name == "mish" {
			continue // big ones are built in TestBigCircuitsBuild
		}
		net := c.Build()
		if net.NumPIs() != c.In || net.NumPOs() != c.Out {
			t.Errorf("%s: built I/O %d/%d, want %d/%d", c.Name, net.NumPIs(), net.NumPOs(), c.In, c.Out)
		}
	}
}

func TestBigCircuitsBuild(t *testing.T) {
	for _, name := range []string{"i3", "i4", "i5", "misg", "mish"} {
		c, _ := ByName(name)
		net := c.Build()
		if net.NumPIs() != c.In || net.NumPOs() != c.Out {
			t.Errorf("%s: built I/O %d/%d, want %d/%d", name, net.NumPIs(), net.NumPOs(), c.In, c.Out)
		}
	}
}

// TestBuildDeterministic: generators must be reproducible.
func TestBuildDeterministic(t *testing.T) {
	for _, name := range []string{"z4ml", "mlp4", "cc", "pcle", "t481"} {
		c, _ := ByName(name)
		a := c.Build()
		b := c.Build()
		m := bdd.New(a.NumPIs())
		fa := a.ToBDDs(m)
		fb := b.ToBDDs(m)
		for i := range fa {
			if fa[i] != fb[i] {
				t.Errorf("%s: non-deterministic build (output %d)", name, i)
			}
		}
	}
}

// TestKnownFunctions: spot-check the arithmetic reconstructions.
func TestKnownFunctions(t *testing.T) {
	check := func(name string, inputs uint64, want []bool) {
		t.Helper()
		c, _ := ByName(name)
		net := c.Build()
		words := make([]uint64, net.NumPIs())
		for v := range words {
			if inputs&(1<<uint(v)) != 0 {
				words[v] = 1
			}
		}
		val := net.Simulate(words)
		for i, po := range net.POs {
			if (val[po.Gate]&1 != 0) != want[i] {
				t.Errorf("%s(%b) output %d = %v, want %v", name, inputs, i, !want[i], want[i])
			}
		}
	}
	// z4ml: a=3 (a0=1,a1=1), b=1, cin=1 → 3+1+1 = 5 = 101.
	// Interleaved: a0,b0,a1,b1,a2,b2,cin = bits 0..6.
	// a=3: a0=1,a1=1 → bits 0,2; b=1: b0=1 → bit 1; cin → bit 6.
	check("z4ml", 0b1000111, []bool{true, false, true, false})
	// mlp4: a=5 (a0,a2 → interleaved bits 0,4), b=3 (b0,b1 → bits 1,3)
	// → 5×3 = 15 = 00001111.
	check("mlp4", 0b11011, []bool{true, true, true, true, false, false, false, false})
	// rd53: 3 ones → 011.
	check("rd53", 0b10101, []bool{true, true, false})
	// majority: 3 of 5.
	check("majority", 0b10101, []bool{true})
	// parity: even ones → 0.
	check("parity", 0b11, []bool{false})
}

// TestBothFlowsEquivalent runs both flows on a representative subset and
// verifies both against the specification (the full set is covered by
// TestFullTable2 / cmd/rmbench).
func TestBothFlowsEquivalent(t *testing.T) {
	for _, name := range []string{"z4ml", "rd73", "bcd-div3", "cm85a", "pcle", "tcon", "sqr6"} {
		c, _ := ByName(name)
		spec := c.Build()
		ours, err := core.Synthesize(context.Background(), spec, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s ours: %v", name, err)
		}
		base, err := sisbase.Run(context.Background(), spec, sisbase.DefaultOptions())
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		for flow, net := range map[string]*network.Network{"ours": ours.Network, "baseline": base.Network} {
			eq, err := verify.Equivalent(spec, net)
			if err != nil {
				t.Fatalf("%s %s: %v", name, flow, err)
			}
			if !eq {
				t.Errorf("%s: %s result not equivalent", name, flow)
			}
		}
	}
}

// TestExample1T481 asserts the paper's headline through the harness.
func TestExample1T481(t *testing.T) {
	c, _ := ByName("t481")
	spec := c.Build()
	res, err := core.Synthesize(context.Background(), spec, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if eq, _ := verify.Equivalent(spec, res.Network); !eq {
		t.Fatal("t481 not equivalent")
	}
	if res.Stats.Gates2 > 25 {
		t.Errorf("t481 = %d gates, paper reaches 25", res.Stats.Gates2)
	}
}

// TestExample2Z4ml asserts the adder result through the harness.
func TestExample2Z4ml(t *testing.T) {
	c, _ := ByName("z4ml")
	row := RunCircuit(c, DefaultOptions())
	if row.Err != "" {
		t.Fatal(row.Err)
	}
	// Mapped literal count must reach the paper's 42 for "ours".
	if row.OursMapLits > 42 {
		t.Errorf("z4ml mapped lits = %d, paper's flow reaches 42", row.OursMapLits)
	}
	if row.ImproveLits <= 0 {
		t.Errorf("z4ml shows no improvement (%.1f%%)", row.ImproveLits)
	}
}

// TestParityMapsToXorTree: parity must map 1:1 onto XOR cells for both
// flows (paper Table 2: 15 gates / 60 lits, 0% improvement).
func TestParityMapsToXorTree(t *testing.T) {
	c, _ := ByName("parity")
	row := RunCircuit(c, DefaultOptions())
	if row.Err != "" {
		t.Fatal(row.Err)
	}
	if row.OursGates != 15 || row.OursMapLits != 60 {
		t.Errorf("parity ours mapped = %d gates / %d lits, want 15/60", row.OursGates, row.OursMapLits)
	}
	if row.SISGates != 15 || row.SISMapLits != 60 {
		t.Errorf("parity baseline mapped = %d gates / %d lits, want 15/60", row.SISGates, row.SISMapLits)
	}
	if row.ImproveLits != 0 {
		t.Errorf("parity improvement = %.1f%%, want 0 (paper)", row.ImproveLits)
	}
}
