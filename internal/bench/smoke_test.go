package bench

import (
	"fmt"
	"testing"
)

// TestSmokeSmall runs a few small circuits end to end.
func TestSmokeSmall(t *testing.T) {
	opt := DefaultOptions()
	for _, name := range []string{"z4ml", "cm82a", "majority", "bcd-div3", "f2", "rd53"} {
		c, ok := ByName(name)
		if !ok {
			t.Fatalf("missing circuit %s", name)
		}
		row := RunCircuit(c, opt)
		if row.Err != "" {
			t.Errorf("%s: %s", name, row.Err)
			continue
		}
		fmt.Printf("%-10s sis=%d ours=%d mapped %d/%d vs %d/%d improve=%.1f%% power=%.1f%%\n",
			name, row.SISLits, row.OursLits, row.SISGates, row.SISMapLits, row.OursGates, row.OursMapLits, row.ImproveLits, row.ImprovePower)
	}
}
