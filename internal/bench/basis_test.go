package bench

// Basis-arbiter acceptance tests over the benchmark table: the
// predictor must be deterministic (same predictions at any worker
// count, run after run), and the hedged race flow must never be worse
// than either pure basis — the arbiter's whole contract.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/techmap"
)

// synthBasis runs the paper's flow on one circuit under an explicit
// basis and returns the result.
func synthBasis(t *testing.T, c Circuit, basis core.Basis, workers int) *core.Result {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Basis = basis
	opt.Workers = workers
	res, err := core.Synthesize(context.Background(), c.Build(), opt)
	if err != nil {
		t.Fatalf("%s basis=%s -j%d: %v", c.Name, basis, workers, err)
	}
	return res
}

// The structural predictor (and the whole per-cone arbitration it
// drives) must be deterministic: for every baseline circuit the basis
// choices — prediction, chosen arm, and arm costs — are identical at
// -j1 and -j4 and across two runs at the same worker count.
func TestPredictorDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("all-circuit predictor determinism run skipped in -short mode")
	}
	for _, c := range Circuits() {
		ref := synthBasis(t, c, core.BasisAuto, 1)
		again := synthBasis(t, c, core.BasisAuto, 1)
		par := synthBasis(t, c, core.BasisAuto, 4)
		for _, got := range []struct {
			label string
			res   *core.Result
		}{{"second -j1 run", again}, {"-j4 run", par}} {
			if len(got.res.BasisChoices) != len(ref.BasisChoices) {
				t.Errorf("%s: %s has %d basis choices, first run %d",
					c.Name, got.label, len(got.res.BasisChoices), len(ref.BasisChoices))
				continue
			}
			for i := range ref.BasisChoices {
				if got.res.BasisChoices[i] != ref.BasisChoices[i] {
					t.Errorf("%s: %s basis choice %d differs: %+v vs %+v",
						c.Name, got.label, i, got.res.BasisChoices[i], ref.BasisChoices[i])
				}
			}
		}
	}
}

// The never-worse proof of the issue: for every baseline circuit the
// hedged race flow costs no more than the pure GF(2) flow and no more
// than the pure SOP flow, lexicographically in (pre-map literals,
// mapped gates) — the arbitration order of core's candidate selection.
// The two metrics can genuinely conflict between the pure flows (a
// single-output cone whose SOP form has fewer literals but whose GF(2)
// form maps tighter leaves no network that wins both), so the contract
// is the lexicographic one the arbiter actually optimizes: strictly
// fewer literals always wins, and mapped gates decide literal ties.
func TestBasisRaceNeverWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("all-circuit never-worse run skipped in -short mode")
	}
	lib := techmap.Library()
	mapGates := func(res *core.Result) int {
		m, err := techmap.Map(res.Network, lib)
		if err != nil {
			t.Fatalf("map: %v", err)
		}
		return m.Gates
	}
	for _, c := range Circuits() {
		xor := synthBasis(t, c, core.BasisXor, 0)
		sop := synthBasis(t, c, core.BasisSop, 0)
		race := synthBasis(t, c, core.BasisRace, 0)
		rg := mapGates(race)
		for _, pure := range []struct {
			name string
			res  *core.Result
		}{{"xor", xor}, {"sop", sop}} {
			pl, pg := pure.res.Stats.Lits, mapGates(pure.res)
			if race.Stats.Lits > pl || (race.Stats.Lits == pl && rg > pg) {
				t.Errorf("%s: race (lits %d, map gates %d) worse than %s (lits %d, map gates %d)",
					c.Name, race.Stats.Lits, rg, pure.name, pl, pg)
			}
		}
	}
}
