package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/verify"
)

// TestBudgetLadder forces each resource budget to trip on a real
// benchmark and checks the contract of the degradation ladder: Synthesize
// still succeeds, the result is verified equivalent to the specification,
// and the named fallback appears in the report.
func TestBudgetLadder(t *testing.T) {
	cases := []struct {
		name    string
		circuit string
		setup   func(*core.Options) (ctx context.Context, cancel context.CancelFunc)
		// wantStage must appear among the fired degradations' stages.
		wantStage string
	}{
		{
			name:    "deadline",
			circuit: "mlp4",
			setup: func(o *core.Options) (context.Context, context.CancelFunc) {
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				// Make the trip deterministic: the deadline has passed
				// before synthesis begins, so the earliest poll fires.
				time.Sleep(2 * time.Millisecond)
				return ctx, cancel
			},
			wantStage: "spec-bdd",
		},
		{
			name:    "bdd-nodes",
			circuit: "add6",
			setup: func(o *core.Options) (context.Context, context.CancelFunc) {
				o.MaxBDDNodes = 16
				return context.Background(), func() {}
			},
			wantStage: "spec-bdd",
		},
		{
			name:    "ofdd-nodes",
			circuit: "mlp4",
			setup: func(o *core.Options) (context.Context, context.CancelFunc) {
				o.MaxOFDDNodes = 8
				return context.Background(), func() {}
			},
			wantStage: "fprm",
		},
		{
			name:    "steps",
			circuit: "add6",
			setup: func(o *core.Options) (context.Context, context.CancelFunc) {
				o.MaxSteps = 64
				return context.Background(), func() {}
			},
			wantStage: "", // any rung is acceptable; which one trips first is incidental
		},
		{
			name:    "cubes",
			circuit: "mlp4",
			setup: func(o *core.Options) (context.Context, context.CancelFunc) {
				o.MaxCubes = 4
				return context.Background(), func() {}
			},
			wantStage: "cube-method",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, ok := ByName(tc.circuit)
			if !ok {
				t.Fatalf("unknown circuit %s", tc.circuit)
			}
			spec := c.Build()
			opt := core.DefaultOptions()
			ctx, cancel := tc.setup(&opt)
			defer cancel()

			res, err := core.Synthesize(ctx, spec, opt)
			if err != nil {
				t.Fatalf("Synthesize must degrade, not fail: %v", err)
			}
			if len(res.Degradations) == 0 {
				t.Fatalf("budget %s never tripped: empty fallback report", tc.name)
			}
			if tc.wantStage != "" {
				found := false
				for _, d := range res.Degradations {
					if d.Stage == tc.wantStage {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("no %q degradation fired; report:\n%s", tc.wantStage, res.FallbackReport())
				}
			}
			report := res.FallbackReport()
			if strings.TrimSpace(report) == "" {
				t.Error("FallbackReport is empty despite degradations")
			}
			eq, verr := verify.Equivalent(spec, res.Network)
			if verr != nil {
				t.Fatalf("verification did not run: %v", verr)
			}
			if !eq {
				t.Fatalf("degraded result is NOT equivalent; report:\n%s", report)
			}
		})
	}
}
