package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/techmap"
	"repro/internal/verify"
	"repro/internal/wordgen"
)

// This file adds the scaling-curve mode: instead of the 41 fixed Table 2
// circuits, it sweeps one generated arithmetic family across operand
// widths (rmbench -family mul -widths 4:64), measures how literals,
// mapped cost, and wall time grow, verifies every synthesized instance
// against its word-level spec (algebraic mode for the wide ones), and
// emits an rmscale/v1 artifact the CI gate diffs against a committed
// baseline with the same one-sided discipline as the rmbench/v1 gate.

// ScaleSchema identifies the scaling-report JSON layout.
const ScaleSchema = "rmscale/v1"

// Generated resolves a circuit name against the wordgen families
// (e.g. "mul16", "gfmul8") and wraps it as a bench Circuit. It
// complements ByName, which resolves the fixed Table 2 set.
func Generated(name string) (Circuit, *wordgen.Spec, error) {
	s, err := wordgen.ByName(name)
	if err != nil {
		return Circuit{}, nil, err
	}
	return Circuit{
		Name:  s.Name,
		In:    s.Net.NumPIs(),
		Out:   s.Net.NumPOs(),
		Arith: true,
		Note:  "generated",
		Build: func() *network.Network { return s.Net },
	}, s, nil
}

// Resolve returns the named circuit from the fixed Table 2 set or,
// failing that, from the generated families. The chaos harness and the
// benchmark -only filter both accept either namespace through this.
func Resolve(name string) (Circuit, bool) {
	if c, ok := ByName(name); ok {
		return c, true
	}
	c, _, err := Generated(name)
	return c, err == nil
}

// ScalePoint is one (family, width) measurement.
type ScalePoint struct {
	Family string `json:"family"`
	Width  int    `json:"width"`
	Name   string `json:"name"`
	In     int    `json:"in"`
	Out    int    `json:"out"`

	OursLits int `json:"ours_lits"`      // pre-map literals of the paper's flow
	MapGates int `json:"ours_map_gates"` // mapped gate count
	MapLits  int `json:"ours_map_lits"`  // mapped literals
	// Degradations counts graceful-degradation ladder falls. The scale
	// run uses deterministic caps only (nodes, cubes, steps — no wall
	// clock), so this count is machine-independent and gateable.
	Degradations int `json:"degradations"`

	Verified bool `json:"verified"`
	// VerifyMode is the engine that confirmed the instance ("algebraic",
	// "bdd", "sim"), VerifyShards its parallel slice count, and
	// VerifyMonomials the algebraic peak (see verify.WordResult).
	VerifyMode      string `json:"verify_mode,omitempty"`
	VerifyShards    int    `json:"verify_shards,omitempty"`
	VerifyMonomials int    `json:"verify_monomials,omitempty"`

	// TimeMS is the synthesis wall time. The gate applies a generous
	// multiplicative tolerance plus a log-log slope check rather than a
	// direct comparison — absolute wall clock is machine noise.
	TimeMS float64 `json:"time_ms"`
	Basis  string  `json:"basis,omitempty"`
	Err    string  `json:"error,omitempty"`
}

// ScaleReport is the rmscale/v1 artifact.
type ScaleReport struct {
	Schema string       `json:"schema"`
	Points []ScalePoint `json:"points"`
}

// ScaleOptions configures a scaling sweep.
type ScaleOptions struct {
	Core core.Options
	Ctx  context.Context
	// Workers bounds both the synthesis fan-out and the verification
	// shards; 0 means GOMAXPROCS.
	Workers int
	// VerifyLimits caps the word-level check (its budget is separate
	// from the synthesis caps in Core).
	VerifyLimits budget.Limits
}

// DefaultScaleOptions uses deterministic resource caps only — node,
// cube, and step budgets, no wall-clock deadline — so the degradation
// points of a sweep are bit-reproducible across machines and the
// committed baseline stays meaningful in CI.
func DefaultScaleOptions() ScaleOptions {
	opt := ScaleOptions{Core: core.DefaultOptions()}
	opt.Core.MaxBDDNodes = 250_000
	opt.Core.MaxOFDDNodes = 250_000
	opt.Core.MaxSteps = 25_000_000
	opt.VerifyLimits = budget.Limits{BDDNodes: 2_000_000, Steps: 50_000_000}
	return opt
}

// RunScalePoint synthesizes one generated instance with the paper's
// flow, verifies it against its word-level spec, and maps it. There is
// no SIS baseline leg: the scaling gate compares against the committed
// curve, not against another flow.
func RunScalePoint(s *wordgen.Spec, opt ScaleOptions) ScalePoint {
	pt := ScalePoint{
		Family: s.Family, Width: s.Width, Name: s.Name,
		In: s.Net.NumPIs(), Out: s.Net.NumPOs(),
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	coreOpt := opt.Core
	if opt.Workers != 0 {
		coreOpt.Workers = opt.Workers
	}
	res, err := core.Synthesize(ctx, s.Net, coreOpt)
	if err != nil {
		pt.Err = "synthesize: " + err.Error()
		return pt
	}
	pt.OursLits = res.Stats.Lits
	pt.TimeMS = float64(res.Elapsed) / float64(time.Millisecond)
	pt.Degradations = len(res.Degradations)
	pt.Basis = res.Basis

	vr, err := verify.Word(res.Network, s, verify.WordOptions{
		Workers: opt.Workers,
		Budget:  budget.New(ctx, opt.VerifyLimits),
	})
	if err != nil {
		pt.Err = "verify: " + err.Error()
		return pt
	}
	pt.Verified = vr.OK
	pt.VerifyMode = vr.Mode
	pt.VerifyShards = vr.Shards
	pt.VerifyMonomials = vr.Monomials
	if !vr.OK {
		pt.Err = "verify: " + vr.Mismatch.String()
		return pt
	}

	mapped, err := techmap.Map(res.Network, techmap.Library())
	if err != nil {
		pt.Err = "map: " + err.Error()
		return pt
	}
	pt.MapGates = mapped.Gates
	pt.MapLits = mapped.Lits
	return pt
}

// ParseWidths parses a width-sweep flag: "4:64" doubles from 4 to 64
// (4,8,16,32,64); "4,6,12" is an explicit list; "16" is a single width.
func ParseWidths(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty widths")
	}
	if lo, hi, ok := strings.Cut(s, ":"); ok {
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || a < 1 || b < a {
			return nil, fmt.Errorf("bad width range %q (want lo:hi, lo ≤ hi)", s)
		}
		var ws []int
		for w := a; w <= b; w *= 2 {
			ws = append(ws, w)
		}
		return ws, nil
	}
	var ws []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad width %q in %q", f, s)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// BuildScaleReport sorts the points into the canonical (family, width)
// order and stamps the schema.
func BuildScaleReport(points []ScalePoint) *ScaleReport {
	rep := &ScaleReport{Schema: ScaleSchema, Points: append([]ScalePoint(nil), points...)}
	sort.Slice(rep.Points, func(a, b int) bool {
		if rep.Points[a].Family != rep.Points[b].Family {
			return rep.Points[a].Family < rep.Points[b].Family
		}
		return rep.Points[a].Width < rep.Points[b].Width
	})
	return rep
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func (rep *ScaleReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadScaleReport loads an rmscale/v1 report, rejecting other schemas.
func ReadScaleReport(path string) (*ScaleReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep ScaleReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != ScaleSchema {
		return nil, fmt.Errorf("%s: unsupported schema %q (want %q)", path, rep.Schema, ScaleSchema)
	}
	return &rep, nil
}

// SniffSchema reads just the "schema" field of a report file so rmbench
// -check can dispatch between the rmbench/v1 and rmscale/v1 gates.
func SniffSchema(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(b, &head); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return head.Schema, nil
}

// Wall-time gate tolerances: a point regresses only past a 4× factor
// plus a 250ms floor (absolute wall clock is machine noise), and a
// family's growth trend regresses when its log-log time-vs-width slope
// exceeds the baseline's by more than 0.75 — i.e. the flow turned
// superlinearly slower across the whole curve, not just one noisy
// sample.
const (
	scaleTimeFactor  = 4.0
	scaleTimeFloorMS = 250.0
	scaleSlopeMargin = 0.75
)

// CheckScale compares a current scaling report against the committed
// baseline. Quality metrics (literals, mapped cost, degradation count,
// verification) use the same one-sided discipline as Check: worse
// fails, better passes silently. Baseline points of families absent
// from the current run are skipped, so `rmbench -family mul` gates the
// mul curve without demanding the others be re-measured.
func CheckScale(cur, base *ScaleReport) []Regression {
	curBy := make(map[string]ScalePoint, len(cur.Points))
	curFams := map[string]bool{}
	for _, p := range cur.Points {
		curBy[p.Name] = p
		curFams[p.Family] = true
	}
	var regs []Regression
	for _, b := range base.Points {
		if !curFams[b.Family] {
			continue
		}
		c, ok := curBy[b.Name]
		if !ok {
			regs = append(regs, Regression{b.Name, "missing", "point present in baseline but not in current run"})
			continue
		}
		if c.Err != "" && b.Err == "" {
			regs = append(regs, Regression{b.Name, "error", c.Err})
			continue
		}
		if !c.Verified && b.Verified {
			regs = append(regs, Regression{b.Name, "verification", "instance no longer verifies against its word-level spec"})
			continue
		}
		if c.OursLits > b.OursLits {
			regs = append(regs, Regression{b.Name, "literals",
				fmt.Sprintf("pre-map literals %d > baseline %d", c.OursLits, b.OursLits)})
		}
		if c.MapGates > b.MapGates {
			regs = append(regs, Regression{b.Name, "map-gates",
				fmt.Sprintf("mapped gates %d > baseline %d", c.MapGates, b.MapGates)})
		}
		if c.MapLits > b.MapLits {
			regs = append(regs, Regression{b.Name, "map-literals",
				fmt.Sprintf("mapped literals %d > baseline %d", c.MapLits, b.MapLits)})
		}
		if c.Degradations > b.Degradations {
			regs = append(regs, Regression{b.Name, "degradations",
				fmt.Sprintf("degradation-ladder falls %d > baseline %d", c.Degradations, b.Degradations)})
		}
		if limit := scaleTimeFactor*b.TimeMS + scaleTimeFloorMS; c.TimeMS > limit {
			regs = append(regs, Regression{b.Name, "time",
				fmt.Sprintf("synthesis took %.0fms > tolerance %.0fms (baseline %.0fms)", c.TimeMS, limit, b.TimeMS)})
		}
	}
	// Trend check per family: compare log-log slopes over the points
	// both reports measured.
	for fam := range curFams {
		cs, bs := famSlope(cur, fam), famSlope(base, fam)
		if !math.IsNaN(cs) && !math.IsNaN(bs) && cs > bs+scaleSlopeMargin {
			regs = append(regs, Regression{fam, "time-scaling",
				fmt.Sprintf("log-log time slope %.2f > baseline %.2f + %.2f margin", cs, bs, scaleSlopeMargin)})
		}
	}
	sort.Slice(regs, func(a, b int) bool {
		if regs[a].Circuit != regs[b].Circuit {
			return regs[a].Circuit < regs[b].Circuit
		}
		return regs[a].Kind < regs[b].Kind
	})
	return regs
}

// famSlope fits ln(time) against ln(width) for one family by least
// squares and returns the slope, or NaN with fewer than three clean
// points (too little signal to call a trend).
func famSlope(rep *ScaleReport, family string) float64 {
	var xs, ys []float64
	for _, p := range rep.Points {
		if p.Family != family || p.Err != "" || p.Width < 1 {
			continue
		}
		// +1ms flattens sub-millisecond noise at tiny widths.
		xs = append(xs, math.Log(float64(p.Width)))
		ys = append(ys, math.Log(p.TimeMS+1))
	}
	if len(xs) < 3 {
		return math.NaN()
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}
