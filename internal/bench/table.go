package bench

import (
	"fmt"

	"repro/internal/network"
)

// mul returns the product of the interleaved-input operands in minterm m:
// a bits at even positions, b bits at odd positions.
func deinterleave(m, w int) (a, b int) {
	for i := 0; i < w; i++ {
		if bitsOf(m, 2*i) {
			a |= 1 << i
		}
		if bitsOf(m, 2*i+1) {
			b |= 1 << i
		}
	}
	return a, b
}

// Circuits returns the 41 Table 2 circuits in the paper's row order.
func Circuits() []Circuit {
	return []Circuit{
		{Name: "5xp1", In: 7, Out: 10, Arith: true,
			Note: "substitute: y = 5·a+b (a=4b, b=3b) plus parity/AND/OR of all inputs (original PLA unavailable)",
			Build: func() *network.Network {
				return fromTruth("5xp1", 7, 10, func(m, o int) bool {
					a := field(m, 0, 4)
					b := field(m, 4, 3)
					val := 5*a + b
					if o < 7 {
						return bitsOf(val, o)
					}
					switch o {
					case 7:
						return ones(m, 7)%2 == 1
					case 8:
						return ones(m, 7) == 7
					default:
						return m != 0
					}
				})
			}},
		{Name: "9sym", In: 9, Out: 1, Arith: true,
			Build: func() *network.Network {
				return fromTruth("9sym", 9, 1, func(m, _ int) bool {
					c := ones(m, 9)
					return c >= 3 && c <= 6
				})
			}},
		{Name: "adr4", In: 8, Out: 5, Arith: true,
			Build: func() *network.Network {
				return fromTruth("adr4", 8, 5, func(m, o int) bool {
					a, b := deinterleave(m, 4)
					return bitsOf(a+b, o)
				})
			}},
		{Name: "add6", In: 12, Out: 7, Arith: true,
			Build: func() *network.Network {
				return fromTruth("add6", 12, 7, func(m, o int) bool {
					a, b := deinterleave(m, 6)
					return bitsOf(a+b, o)
				})
			}},
		{Name: "addm4", In: 9, Out: 8, Arith: true,
			Note: "substitute: a+b+cin (5 bits) and the 3 MSBs of a·b (original PLA unavailable)",
			Build: func() *network.Network {
				return fromTruth("addm4", 9, 8, func(m, o int) bool {
					a, b := deinterleave(m, 4)
					cin := 0
					if bitsOf(m, 8) {
						cin = 1
					}
					if o < 5 {
						return bitsOf(a+b+cin, o)
					}
					return bitsOf(a*b, o) // bits 5..7 of the 8-bit product
				})
			}},
		{Name: "bcd-div3", In: 4, Out: 4, Arith: true,
			Note: "digit÷3: quotient/remainder of n mod 10 (don't-cares of the BCD original bound this way)",
			Build: func() *network.Network {
				return fromTruth("bcd-div3", 4, 4, func(m, o int) bool {
					d := m % 10
					q, r := d/3, d%3
					switch o {
					case 0, 1:
						return bitsOf(q, o)
					default:
						return bitsOf(r, o-2)
					}
				})
			}},
		{Name: "cc", In: 21, Out: 20,
			Note:  "substitute: structured control mix (function undocumented)",
			Build: func() *network.Network { return mixedControlNet("cc", 21, 20) }},
		{Name: "co14", In: 14, Out: 1, Arith: true,
			Note: "substitute: one-hot checker (exactly one of 14 inputs high)",
			Build: func() *network.Network {
				return fromTruth("co14", 14, 1, func(m, _ int) bool { return ones(m, 14) == 1 })
			}},
		{Name: "cm163a", In: 16, Out: 5,
			Note:  "substitute: structured control mix (function undocumented)",
			Build: func() *network.Network { return mixedControlNet("cm163a", 16, 5) }},
		{Name: "cm82a", In: 5, Out: 3, Arith: true,
			Note: "2-bit adder with carry-in (functional reconstruction)",
			Build: func() *network.Network {
				return fromTruth("cm82a", 5, 3, func(m, o int) bool {
					a, b := deinterleave(m, 2)
					cin := 0
					if bitsOf(m, 4) {
						cin = 1
					}
					return bitsOf(a+b+cin, o)
				})
			}},
		{Name: "cm85a", In: 11, Out: 3,
			Note:  "substitute: 5-bit magnitude comparator with enable",
			Build: func() *network.Network { return comparatorNet("cm85a", 5) }},
		{Name: "cmb", In: 16, Out: 4,
			Note:  "substitute: structured control mix (function undocumented)",
			Build: func() *network.Network { return mixedControlNet("cmb", 16, 4) }},
		{Name: "f2", In: 4, Out: 4,
			Note:  "substitute: small two-level mix (function undocumented)",
			Build: func() *network.Network { return mixedControlNet("f2", 4, 4) }},
		{Name: "f51m", In: 8, Out: 8, Arith: true,
			Note: "substitute: a·b+cin over 4×3 bits plus parity (original PLA unavailable)",
			Build: func() *network.Network {
				return fromTruth("f51m", 8, 8, func(m, o int) bool {
					a := field(m, 0, 4)
					b := field(m, 4, 3)
					cin := 0
					if bitsOf(m, 7) {
						cin = 1
					}
					val := a*b + cin
					if o < 7 {
						return bitsOf(val, o)
					}
					return ones(m, 8)%2 == 1
				})
			}},
		{Name: "frg1", In: 28, Out: 3,
			Note:  "substitute: wide selector trees (function undocumented)",
			Build: func() *network.Network { return selectorNet("frg1", 28, 3, 9) }},
		{Name: "i1", In: 25, Out: 13,
			Note:  "substitute: sparse selector logic (function undocumented)",
			Build: func() *network.Network { return selectorNet("i1", 25, 13, 3) }},
		{Name: "i3", In: 132, Out: 6,
			Note:  "substitute: sparse selector logic (function undocumented)",
			Build: func() *network.Network { return selectorNet("i3", 132, 6, 11) }},
		{Name: "i4", In: 192, Out: 6,
			Note:  "substitute: sparse selector logic (function undocumented)",
			Build: func() *network.Network { return selectorNet("i4", 192, 6, 16) }},
		{Name: "i5", In: 133, Out: 66,
			Note:  "substitute: 66-bit 2:1 multiplexer (sel + 2×66 data)",
			Build: func() *network.Network { return muxNet("i5", 66) }},
		{Name: "m181", In: 15, Out: 9,
			Note:  "substitute: structured control mix (function undocumented)",
			Build: func() *network.Network { return mixedControlNet("m181", 15, 9) }},
		{Name: "majority", In: 5, Out: 1, Arith: true,
			Build: func() *network.Network {
				return fromTruth("majority", 5, 1, func(m, _ int) bool { return ones(m, 5) >= 3 })
			}},
		{Name: "misg", In: 56, Out: 23,
			Note:  "substitute: sparse selector logic (function undocumented)",
			Build: func() *network.Network { return selectorNet("misg", 56, 23, 3) }},
		{Name: "mish", In: 94, Out: 34,
			Note:  "substitute: sparse selector logic (function undocumented)",
			Build: func() *network.Network { return selectorNet("mish", 94, 34, 3) }},
		{Name: "mlp4", In: 8, Out: 8, Arith: true,
			Build: func() *network.Network {
				return fromTruth("mlp4", 8, 8, func(m, o int) bool {
					a, b := deinterleave(m, 4)
					return bitsOf(a*b, o)
				})
			}},
		{Name: "my_adder", In: 33, Out: 17, Arith: true,
			Build: func() *network.Network { return adderNet("my_adder", 16, true) }},
		{Name: "parity", In: 16, Out: 1, Arith: true,
			Build: func() *network.Network {
				n := network.New("parity")
				ids := make([]int, 16)
				for i := range ids {
					ids[i] = n.AddPI(fmt.Sprintf("x%d", i))
				}
				n.AddPO("p", n.BalancedTree(network.Xor, ids))
				return n
			}},
		{Name: "pcle", In: 19, Out: 9,
			Note:  "substitute: 9-stage AND-OR carry cascade",
			Build: func() *network.Network { return cascadeNet("pcle", 9) }},
		{Name: "pcler8", In: 27, Out: 17,
			Note:  "substitute: 17-stage AND-OR carry cascade over 13 data/select pairs",
			Build: func() *network.Network { return cascadeNet8() }},
		{Name: "pm1", In: 16, Out: 13,
			Note:  "substitute: structured control mix (function undocumented)",
			Build: func() *network.Network { return mixedControlNet("pm1", 16, 13) }},
		{Name: "radd", In: 8, Out: 5, Arith: true,
			Note: "same function as adr4 (the suite lists both)",
			Build: func() *network.Network {
				return fromTruth("radd", 8, 5, func(m, o int) bool {
					a, b := deinterleave(m, 4)
					return bitsOf(a+b, o)
				})
			}},
		{Name: "rd53", In: 5, Out: 3, Arith: true,
			Build: func() *network.Network {
				return fromTruth("rd53", 5, 3, func(m, o int) bool { return bitsOf(ones(m, 5), o) })
			}},
		{Name: "rd73", In: 7, Out: 3, Arith: true,
			Build: func() *network.Network {
				return fromTruth("rd73", 7, 3, func(m, o int) bool { return bitsOf(ones(m, 7), o) })
			}},
		{Name: "rd84", In: 8, Out: 4, Arith: true,
			Build: func() *network.Network {
				return fromTruth("rd84", 8, 4, func(m, o int) bool { return bitsOf(ones(m, 8), o) })
			}},
		{Name: "shift", In: 19, Out: 16,
			Note:  "substitute: 16-bit barrel rotator with 3-bit amount",
			Build: rotateNet},
		{Name: "sqr6", In: 6, Out: 12, Arith: true,
			Build: func() *network.Network {
				return fromTruth("sqr6", 6, 12, func(m, o int) bool { return bitsOf(m*m, o) })
			}},
		{Name: "squar5", In: 5, Out: 8, Arith: true,
			Note: "x² bits 9..2 (bit 1 of a square is constant 0, bit 0 is x0; the PLA keeps 8 outputs)",
			Build: func() *network.Network {
				return fromTruth("squar5", 5, 8, func(m, o int) bool { return bitsOf(m*m, o+2) })
			}},
		{Name: "sym10", In: 10, Out: 1, Arith: true,
			Note: "1 iff the input weight is in [3,6] (10-input analogue of 9sym)",
			Build: func() *network.Network {
				return fromTruth("sym10", 10, 1, func(m, _ int) bool {
					c := ones(m, 10)
					return c >= 3 && c <= 6
				})
			}},
		{Name: "t481", In: 16, Out: 1, Arith: true, Build: t481Net},
		{Name: "tcon", In: 17, Out: 16,
			Note:  "substitute: 8 wires + 8 control-gated wires",
			Build: tconNet},
		{Name: "xor10", In: 10, Out: 1, Arith: true,
			Build: func() *network.Network {
				n := network.New("xor10")
				ids := make([]int, 10)
				for i := range ids {
					ids[i] = n.AddPI(fmt.Sprintf("x%d", i))
				}
				n.AddPO("p", n.BalancedTree(network.Xor, ids))
				return n
			}},
		{Name: "z4ml", In: 7, Out: 4, Arith: true,
			Build: func() *network.Network {
				return fromTruth("z4ml", 7, 4, func(m, o int) bool {
					a, b := deinterleave(m, 3)
					cin := 0
					if bitsOf(m, 6) {
						cin = 1
					}
					return bitsOf(a+b+cin, o)
				})
			}},
	}
}

// cascadeNet8 builds pcler8: a 17-stage cascade out of 27 inputs
// (en + 13 data + 13 select split across stages; stages past 13 reuse the
// data inputs with fresh selects — documented synthetic substitute).
func cascadeNet8() *network.Network {
	n := network.New("pcler8")
	en := n.AddPI("en")
	var data, sel []int
	for i := 0; i < 13; i++ {
		data = append(data, n.AddPI(fmt.Sprintf("i%d", i)))
		sel = append(sel, n.AddPI(fmt.Sprintf("s%d", i)))
	}
	prev := en
	for i := 0; i < 17; i++ {
		d := data[i%13]
		s := sel[(i+5)%13]
		prev = n.AddGate(network.Or,
			n.AddGate(network.And, d, en),
			n.AddGate(network.And, prev, s))
		n.AddPO(fmt.Sprintf("y%d", i), prev)
	}
	return n
}

// ByName returns the named circuit.
func ByName(name string) (Circuit, bool) {
	for _, c := range Circuits() {
		if c.Name == name {
			return c, true
		}
	}
	return Circuit{}, false
}
