package bench

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/delay"
	"repro/internal/network"
	"repro/internal/power"
	"repro/internal/sisbase"
	"repro/internal/techmap"
	"repro/internal/verify"
)

// TestQuickFullPipeline drives random multi-output specifications through
// the complete stack — both synthesis flows, equivalence checking,
// technology mapping, power estimation, timing, and a fault-simulation
// sanity pass — asserting the invariants that must hold across any
// composition of the subsystems.
func TestQuickFullPipeline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPI := 3 + rng.Intn(4)
		spec := network.New("p")
		for i := 0; i < nPI; i++ {
			spec.AddPI("")
		}
		types := []network.GateType{network.And, network.Or, network.Xor, network.Not, network.Nand, network.Nor, network.Xnor}
		for i := 0; i < 5+rng.Intn(15); i++ {
			ty := types[rng.Intn(len(types))]
			k := 2
			if ty == network.Not {
				k = 1
			}
			fanins := make([]int, k)
			for j := range fanins {
				fanins[j] = rng.Intn(len(spec.Gates))
			}
			spec.AddGate(ty, fanins...)
		}
		spec.AddPO("o1", len(spec.Gates)-1)
		spec.AddPO("o2", rng.Intn(len(spec.Gates)))
		spec.Sweep()

		ours, err := core.Synthesize(context.Background(), spec, core.DefaultOptions())
		if err != nil {
			return false
		}
		base, err := sisbase.Run(context.Background(), spec, sisbase.DefaultOptions())
		if err != nil {
			return false
		}
		for _, net := range []*network.Network{ours.Network, base.Network} {
			if eq, err := verify.Equivalent(spec, net); err != nil || !eq {
				return false
			}
			m, err := techmap.Map(net, techmap.Library())
			if err != nil {
				return false
			}
			// Power and delay must be finite and non-negative.
			if p := power.EstimateMapped(m); p.Total < 0 {
				return false
			}
			if d := delay.MappedDelay(m); d.Arrival < 0 {
				return false
			}
			// A handful of ATPG tests must actually detect their faults.
			faults := atpg.Faults(net)
			for trial := 0; trial < 3 && trial < len(faults); trial++ {
				fa := faults[rng.Intn(len(faults))]
				pattern, status := atpg.GenerateTest(net, fa, 2000)
				if status == atpg.Detected {
					det := atpg.FaultSimulate(net, []atpg.Fault{fa}, []cube.BitSet{pattern})
					if !det[0] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
