package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/wordgen"
)

func TestParseWidths(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"4:64", []int{4, 8, 16, 32, 64}},
		{"4:32", []int{4, 8, 16, 32}},
		{"3:12", []int{3, 6, 12}},
		{"8", []int{8}},
		{"4,6,12", []int{4, 6, 12}},
	}
	for _, tc := range cases {
		got, err := ParseWidths(tc.in)
		if err != nil || !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseWidths(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "0", "8:4", "a:b", "4,x"} {
		if _, err := ParseWidths(bad); err == nil {
			t.Errorf("ParseWidths(%q): expected error", bad)
		}
	}
}

func TestResolveGenerated(t *testing.T) {
	if c, ok := Resolve("mul4"); !ok || c.In != 8 || c.Out != 8 || !c.Arith {
		t.Fatalf("Resolve(mul4) = %+v, %v", c, ok)
	}
	if _, ok := Resolve("f2"); !ok {
		t.Fatal("Resolve(f2): fixed Table 2 circuit not found")
	}
	if _, ok := Resolve("nosuch99"); ok {
		t.Fatal("Resolve(nosuch99): expected failure")
	}
}

func TestScaleReportRoundTrip(t *testing.T) {
	rep := BuildScaleReport([]ScalePoint{
		{Family: "mul", Width: 8, Name: "mul8", OursLits: 100, TimeMS: 5},
		{Family: "add", Width: 4, Name: "add4", OursLits: 10, TimeMS: 1},
		{Family: "mul", Width: 4, Name: "mul4", OursLits: 40, TimeMS: 2},
	})
	// Canonical order: family, then width.
	if rep.Points[0].Name != "add4" || rep.Points[1].Name != "mul4" || rep.Points[2].Name != "mul8" {
		t.Fatalf("wrong canonical order: %+v", rep.Points)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scale.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScaleReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", rep, got)
	}
	schema, err := SniffSchema(path)
	if err != nil || schema != ScaleSchema {
		t.Fatalf("SniffSchema = %q, %v", schema, err)
	}
	// The rmbench/v1 reader must reject the scale artifact and vice
	// versa — the -check dispatcher relies on the sniff, not on luck.
	if _, err := ReadReport(path); err == nil {
		t.Fatal("ReadReport accepted an rmscale/v1 file")
	}
}

// TestCheckScaleSemantics drives the gate on synthetic reports: one-
// sided quality checks, family-scoped missing-point handling, the time
// tolerance, and the log-log slope trend.
func TestCheckScaleSemantics(t *testing.T) {
	base := BuildScaleReport([]ScalePoint{
		{Family: "mul", Width: 4, Name: "mul4", OursLits: 100, MapGates: 40, MapLits: 90, TimeMS: 10, Verified: true},
		{Family: "mul", Width: 8, Name: "mul8", OursLits: 400, MapGates: 160, MapLits: 360, TimeMS: 40, Verified: true},
		{Family: "mul", Width: 16, Name: "mul16", OursLits: 1600, MapGates: 640, MapLits: 1440, TimeMS: 160, Verified: true},
		{Family: "add", Width: 4, Name: "add4", OursLits: 30, MapGates: 10, MapLits: 25, TimeMS: 1, Verified: true},
	})

	// Identical report: clean.
	if regs := CheckScale(base, base); len(regs) != 0 {
		t.Fatalf("self-check regressed: %v", regs)
	}

	// A mul-only run must not complain about the absent add point...
	mulOnly := BuildScaleReport(base.Points[1:])
	if regs := CheckScale(mulOnly, base); len(regs) != 0 {
		t.Fatalf("family scoping failed: %v", regs)
	}
	// ...but a mul run missing a baseline mul point is a regression.
	holey := BuildScaleReport(base.Points[1:3])
	regs := CheckScale(holey, base)
	if len(regs) != 1 || regs[0].Kind != "missing" || regs[0].Circuit != "mul16" {
		t.Fatalf("missing-point detection: %v", regs)
	}

	worse := func(mut func(p *ScalePoint)) *ScaleReport {
		pts := append([]ScalePoint(nil), base.Points...)
		for i := range pts {
			if pts[i].Name == "mul8" {
				mut(&pts[i])
			}
		}
		return BuildScaleReport(pts)
	}
	kinds := func(regs []Regression) []string {
		var ks []string
		for _, r := range regs {
			ks = append(ks, r.Kind)
		}
		return ks
	}
	if regs := CheckScale(worse(func(p *ScalePoint) { p.OursLits++ }), base); len(regs) != 1 || regs[0].Kind != "literals" {
		t.Fatalf("literal increase: %v", regs)
	}
	if regs := CheckScale(worse(func(p *ScalePoint) { p.Verified = false }), base); len(regs) != 1 || regs[0].Kind != "verification" {
		t.Fatalf("verification flip: %v", regs)
	}
	if regs := CheckScale(worse(func(p *ScalePoint) { p.Degradations = 3 }), base); len(regs) != 1 || regs[0].Kind != "degradations" {
		t.Fatalf("degradation increase: %v", regs)
	}
	// Inside the tolerance band: 4x + 250ms.
	if regs := CheckScale(worse(func(p *ScalePoint) { p.TimeMS = 4*40 + 200 }), base); len(regs) != 0 {
		t.Fatalf("time inside tolerance flagged: %v", regs)
	}
	if regs := CheckScale(worse(func(p *ScalePoint) { p.TimeMS = 4*40 + 300 }), base); len(regs) != 1 || regs[0].Kind != "time" {
		t.Fatalf("time outside tolerance: %v", regs)
	}

	// Slope: blow up the top of the curve superlinearly (but keep every
	// point inside its per-point tolerance) — only the trend check can
	// see it. Baseline mul slope is ~2 (quadratic); cur bends to ~3.5.
	pts := append([]ScalePoint(nil), base.Points...)
	for i := range pts {
		switch pts[i].Name {
		case "mul8":
			pts[i].TimeMS = 40 * 3
		case "mul16":
			pts[i].TimeMS = 160 * 4
		}
	}
	regs = CheckScale(BuildScaleReport(pts), base)
	found := false
	for _, r := range regs {
		if r.Kind == "time-scaling" && r.Circuit == "mul" {
			found = true
		}
	}
	if !found {
		t.Fatalf("superlinear trend not flagged: %v (kinds %v)", regs, kinds(regs))
	}
}

// TestScaleGateTripsOnWorsenedFlow is the acceptance-criterion test: a
// baseline measured with the full flow, re-measured with the reduction
// rules disabled, must fail the gate on quality.
func TestScaleGateTripsOnWorsenedFlow(t *testing.T) {
	specs := make([]*wordgen.Spec, 0, 2)
	for _, name := range []string{"cla4", "cla8"} {
		s, err := wordgen.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	run := func(opt ScaleOptions) *ScaleReport {
		var pts []ScalePoint
		for _, s := range specs {
			pt := RunScalePoint(s, opt)
			if pt.Err != "" {
				t.Fatalf("%s: %s", pt.Name, pt.Err)
			}
			pts = append(pts, pt)
		}
		return BuildScaleReport(pts)
	}
	good := DefaultScaleOptions()
	base := run(good)
	if regs := CheckScale(run(good), base); len(regs) != 0 {
		t.Fatalf("deterministic re-run regressed against itself: %v", regs)
	}
	worsened := DefaultScaleOptions()
	worsened.Core.Rules = false
	worsened.Core.MergeNodes = false
	regs := CheckScale(run(worsened), base)
	if len(regs) == 0 {
		t.Fatal("gate passed a flow with the reduction rules disabled")
	}
	quality := false
	for _, r := range regs {
		switch r.Kind {
		case "literals", "map-gates", "map-literals":
			quality = true
		}
	}
	if !quality {
		t.Fatalf("expected a quality regression, got only: %v", regs)
	}
}
