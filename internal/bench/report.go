package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
)

// ReportSchema identifies the benchmark-report JSON layout (the
// BENCH_<rev>.json CI artifact and the regression-gate baseline).
const ReportSchema = "rmbench/v1"

// Report is the machine-readable benchmark artifact: one entry per
// circuit with the comparable cost numbers flattened at the top level
// (what the regression gate reads) and the full per-run observability
// report nested under "run" (what a human debugging a regression
// reads).
type Report struct {
	Schema   string          `json:"schema"`
	Circuits []CircuitReport `json:"circuits"`
}

// CircuitReport is one circuit's benchmark outcome.
type CircuitReport struct {
	Name     string `json:"name"`
	In       int    `json:"in"`
	Out      int    `json:"out"`
	Arith    bool   `json:"arith"`
	OursLits int    `json:"ours_lits"`      // pre-map literals of the paper's flow
	MapGates int    `json:"ours_map_gates"` // mapped gate count
	MapLits  int    `json:"ours_map_lits"`  // mapped literals
	// Degradations counts the graceful-degradation ladder falls of the
	// run; the gate fails on any increase over the baseline.
	Degradations int    `json:"degradations"`
	Verified     bool   `json:"verified"`
	Err          string `json:"error,omitempty"`
	// Basis is the synthesis basis the flow ran under. Informational:
	// the gate compares costs, not routing.
	Basis string `json:"basis,omitempty"`
	// Run is the full observability report (phase times, cache hit
	// rates, rule counts, ladder detail); volatile fields are stripped
	// so reports diff cleanly.
	Run *core.RunStats `json:"run,omitempty"`
}

// BuildReport assembles the artifact from finished rows (summary rows
// excluded by the caller). Rows are sorted by circuit name so the
// artifact is stable regardless of run order.
func BuildReport(rows []Row) *Report {
	rep := &Report{Schema: ReportSchema}
	for _, r := range rows {
		cr := CircuitReport{
			Name:     r.Name,
			In:       r.In,
			Out:      r.Out,
			Arith:    r.Arith,
			OursLits: r.OursLits,
			MapGates: r.OursGates,
			MapLits:  r.OursMapLits,
			Verified: r.Verified,
			Err:      r.Err,
			Basis:    r.Basis,
			Run:      r.Report,
		}
		if r.Report != nil {
			cr.Degradations = len(r.Report.Degradations)
		}
		rep.Circuits = append(rep.Circuits, cr)
	}
	sort.Slice(rep.Circuits, func(a, b int) bool {
		return rep.Circuits[a].Name < rep.Circuits[b].Name
	})
	return rep
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func (rep *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadReport loads a report from disk, rejecting unknown schemas.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("%s: unsupported schema %q (want %q)", path, rep.Schema, ReportSchema)
	}
	return &rep, nil
}

// Regression is one regression-gate finding.
type Regression struct {
	Circuit string
	Kind    string // "literals", "map-gates", "map-literals", "degradations", "verification", "error", "missing"
	Detail  string
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s: %s", r.Circuit, r.Kind, r.Detail)
}

// Check compares a current report against a baseline and returns every
// regression: a pre-map literal-count increase, a mapped gate- or
// literal-count increase, a new degradation-ladder fall, a verification
// failure, a new error, or a baseline circuit missing from the current
// run. Improvements (fewer literals or gates, fewer degradations) pass
// silently — the gate is one-sided by design, so a better result never
// blocks a merge; refresh the baseline to lock it in.
func Check(cur, base *Report) []Regression {
	curBy := make(map[string]CircuitReport, len(cur.Circuits))
	for _, c := range cur.Circuits {
		curBy[c.Name] = c
	}
	var regs []Regression
	for _, b := range base.Circuits {
		c, ok := curBy[b.Name]
		if !ok {
			regs = append(regs, Regression{b.Name, "missing", "circuit present in baseline but not in current run"})
			continue
		}
		if c.Err != "" && b.Err == "" {
			regs = append(regs, Regression{b.Name, "error", c.Err})
			continue
		}
		if !c.Verified && b.Verified {
			regs = append(regs, Regression{b.Name, "verification", "result no longer verifies against the specification"})
			continue
		}
		if c.OursLits > b.OursLits {
			regs = append(regs, Regression{b.Name, "literals",
				fmt.Sprintf("pre-map literals %d > baseline %d", c.OursLits, b.OursLits)})
		}
		if c.MapGates > b.MapGates {
			regs = append(regs, Regression{b.Name, "map-gates",
				fmt.Sprintf("mapped gates %d > baseline %d", c.MapGates, b.MapGates)})
		}
		if c.MapLits > b.MapLits {
			regs = append(regs, Regression{b.Name, "map-literals",
				fmt.Sprintf("mapped literals %d > baseline %d", c.MapLits, b.MapLits)})
		}
		if c.Degradations > b.Degradations {
			regs = append(regs, Regression{b.Name, "degradations",
				fmt.Sprintf("degradation-ladder falls %d > baseline %d", c.Degradations, b.Degradations)})
		}
	}
	return regs
}
