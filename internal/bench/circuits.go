// Package bench reconstructs the 41 IWLS'91 benchmark circuits of the
// paper's Table 2 and provides the harness that regenerates the table.
//
// The arithmetic circuits (the paper's subject) are exact
// reconstructions from their definitions: adders, multipliers, squarers,
// bit-count and symmetric functions, parity, majority, and t481 (whose
// equation the paper prints). The control circuits whose functions are
// not documented anywhere (cc, i1–i5, misg, mish, pm1, tcon, m181, pcle,
// pcler8, cmb, cm85a, cm163a, frg1, shift, co14, f2) are *documented
// synthetic substitutes* with the same I/O counts and structural flavor;
// both synthesis flows see the same functions, so the comparison shape of
// Table 2 is preserved even though absolute numbers differ from the
// paper (see DESIGN.md, substitutions).
//
// Circuits whose original IWLS'91 entry is two-level are generated as
// two-level networks (an OR-of-ANDs per output, derived from an
// irredundant SOP cover); the larger structural circuits (my_adder,
// shift, the i-series, misg, mish, cc, …) are generated as multilevel
// networks, mirroring the benchmark suite's split.
package bench

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/network"
)

// Circuit describes one Table 2 row.
type Circuit struct {
	Name  string
	In    int
	Out   int
	Arith bool   // counted in the "Total arith." row
	Note  string // substitution note ("" = exact reconstruction)
	Build func() *network.Network
}

// bitsOf returns bit v of x.
func bitsOf(x, v int) bool { return x&(1<<v) != 0 }

// popcount over the low n bits.
func ones(x, n int) int {
	c := 0
	for v := 0; v < n; v++ {
		if bitsOf(x, v) {
			c++
		}
	}
	return c
}

// field extracts bits [lo, lo+w) of m as an integer.
func field(m, lo, w int) int { return (m >> uint(lo)) & (1<<uint(w) - 1) }

// fromTruth builds a two-level network (one OR-of-ANDs per output) for a
// multi-output function given as a predicate per output over minterms of
// n inputs. Covers are irredundant SOPs extracted from BDDs
// (Minato-Morreale), standing in for the benchmark PLA files.
func fromTruth(name string, n int, outs int, f func(m, o int) bool) *network.Network {
	m := bdd.New(n)
	net := network.New(name)
	pis := make([]int, n)
	for i := 0; i < n; i++ {
		pis[i] = net.AddPI(fmt.Sprintf("x%d", i))
	}
	notCache := map[int]int{}
	lit := func(v int, phase bool) int {
		if phase {
			return pis[v]
		}
		if g, ok := notCache[v]; ok {
			return g
		}
		g := net.AddGate(network.Not, pis[v])
		notCache[v] = g
		return g
	}
	for o := 0; o < outs; o++ {
		g := truthBDD(m, n, func(minterm int) bool { return f(minterm, o) })
		cover, err := m.ToCover(g)
		if err != nil {
			// Programmer invariant: ISOP over a freshly built BDD of a
			// generated truth table is always exact; an error here is a
			// kernel bug, not a data condition.
			panic(err)
		}
		var terms []int
		for _, t := range cover.Terms {
			var lits []int
			t.Pos.ForEach(func(v int) { lits = append(lits, lit(v, true)) })
			t.Neg.ForEach(func(v int) { lits = append(lits, lit(v, false)) })
			switch len(lits) {
			case 0:
				terms = append(terms, net.AddGate(network.Const1))
			case 1:
				terms = append(terms, lits[0])
			default:
				terms = append(terms, net.AddGate(network.And, lits...))
			}
		}
		var out int
		switch len(terms) {
		case 0:
			out = net.AddGate(network.Const0)
		case 1:
			out = terms[0]
		default:
			out = net.AddGate(network.Or, terms...)
		}
		net.AddPO(fmt.Sprintf("y%d", o), out)
	}
	return net
}

// truthBDD builds the BDD of an n-variable predicate bottom-up over
// minterm ranges (practical to n ≈ 20).
func truthBDD(m *bdd.Manager, n int, f func(minterm int) bool) bdd.Ref {
	var rec func(level, base int) bdd.Ref
	rec = func(level, base int) bdd.Ref {
		if level == 0 {
			if f(base) {
				return bdd.One
			}
			return bdd.Zero
		}
		v := level - 1 // variable v splits on bit v
		lo := rec(level-1, base)
		hi := rec(level-1, base|1<<uint(v))
		return m.ITE(m.Var(v), hi, lo)
	}
	return rec(n, 0)
}

// --- structural builders ---------------------------------------------------

// adderNet builds a ripple-carry adder with interleaved inputs
// (a0,b0,a1,b1,…[,cin]) so that BDDs over PI order stay linear.
func adderNet(name string, bits int, cin bool) *network.Network {
	n := network.New(name)
	a := make([]int, bits)
	b := make([]int, bits)
	for i := 0; i < bits; i++ {
		a[i] = n.AddPI(fmt.Sprintf("a%d", i))
		b[i] = n.AddPI(fmt.Sprintf("b%d", i))
	}
	carry := -1
	if cin {
		carry = n.AddPI("cin")
	}
	for i := 0; i < bits; i++ {
		axb := n.AddGate(network.Xor, a[i], b[i])
		var sum, cNext int
		if carry < 0 {
			sum = axb
			cNext = n.AddGate(network.And, a[i], b[i])
		} else {
			sum = n.AddGate(network.Xor, axb, carry)
			cNext = n.AddGate(network.Or,
				n.AddGate(network.And, a[i], b[i]),
				n.AddGate(network.And, carry, axb))
		}
		n.AddPO(fmt.Sprintf("s%d", i), sum)
		carry = cNext
	}
	n.AddPO("cout", carry)
	return n
}

// t481Net is the paper's Example 1 equation, the functional ground truth
// of the t481 benchmark, flattened to its two-level SOP form like the
// IWLS'91 entry (481 prime cubes).
func t481Net() *network.Network {
	return fromTruth("t481", 16, 1, func(m, _ int) bool {
		v := func(i int) bool { return bitsOf(m, i) }
		x := func(b bool) int {
			if b {
				return 1
			}
			return 0
		}
		left := (x(!v(0) && v(1)) ^ x(v(2) && !v(3))) & (x(!v(4) && v(5)) ^ x(!v(6) || v(7)))
		right := (x(v(8) || !v(9)) ^ x(v(10) && !v(11))) & (x(!v(12) && v(13)) ^ x(v(14) && !v(15)))
		return left^right == 1
	})
}

// muxNet builds i5: out[j] = sel ? a[j] : b[j] over width channels.
func muxNet(name string, width int) *network.Network {
	n := network.New(name)
	sel := n.AddPI("sel")
	a := make([]int, width)
	b := make([]int, width)
	for i := 0; i < width; i++ {
		a[i] = n.AddPI(fmt.Sprintf("a%d", i))
		b[i] = n.AddPI(fmt.Sprintf("b%d", i))
	}
	nsel := n.AddGate(network.Not, sel)
	for i := 0; i < width; i++ {
		n.AddPO(fmt.Sprintf("y%d", i), n.AddGate(network.Or,
			n.AddGate(network.And, sel, a[i]),
			n.AddGate(network.And, nsel, b[i])))
	}
	return n
}

// rotateNet builds shift: a 16-bit left-rotate by a 3-bit amount
// (barrel shifter of three mux stages).
func rotateNet() *network.Network {
	n := network.New("shift")
	data := make([]int, 16)
	for i := range data {
		data[i] = n.AddPI(fmt.Sprintf("d%d", i))
	}
	s := []int{n.AddPI("s0"), n.AddPI("s1"), n.AddPI("s2")}
	cur := data
	for stage, sh := range []int{1, 2, 4} {
		nsel := n.AddGate(network.Not, s[stage])
		next := make([]int, 16)
		for i := 0; i < 16; i++ {
			next[i] = n.AddGate(network.Or,
				n.AddGate(network.And, s[stage], cur[(i+16-sh)%16]),
				n.AddGate(network.And, nsel, cur[i]))
		}
		cur = next
	}
	for i := 0; i < 16; i++ {
		n.AddPO(fmt.Sprintf("y%d", i), cur[i])
	}
	return n
}

// cascadeNet builds pcle/pcler8-style iterative AND-OR carry chains:
// out[i] = in[i]·en + out[i-1]·s[i].
func cascadeNet(name string, stages int) *network.Network {
	n := network.New(name)
	en := n.AddPI("en")
	ins := make([]int, stages)
	sel := make([]int, stages)
	for i := 0; i < stages; i++ {
		ins[i] = n.AddPI(fmt.Sprintf("i%d", i))
		sel[i] = n.AddPI(fmt.Sprintf("s%d", i))
	}
	prev := en
	for i := 0; i < stages; i++ {
		prev = n.AddGate(network.Or,
			n.AddGate(network.And, ins[i], en),
			n.AddGate(network.And, prev, sel[i]))
		n.AddPO(fmt.Sprintf("y%d", i), prev)
	}
	return n
}

// selectorNet builds sparse selector logic (i1/i3/i4/misg/mish flavor):
// output j is an OR of AND pairs drawn from a deterministic stride
// pattern over the inputs.
func selectorNet(name string, nIn, nOut, pairsPerOut int) *network.Network {
	n := network.New(name)
	pis := make([]int, nIn)
	for i := range pis {
		pis[i] = n.AddPI(fmt.Sprintf("x%d", i))
	}
	for o := 0; o < nOut; o++ {
		var terms []int
		for p := 0; p < pairsPerOut; p++ {
			a := (o*pairsPerOut + 2*p) % nIn
			b := (o*pairsPerOut + 2*p + 1) % nIn
			if a == b {
				b = (b + 1) % nIn
			}
			terms = append(terms, n.AddGate(network.And, pis[a], pis[b]))
		}
		var out int
		if len(terms) == 1 {
			out = terms[0]
		} else {
			out = n.AddGate(network.Or, terms...)
		}
		n.AddPO(fmt.Sprintf("y%d", o), out)
	}
	return n
}

// mixedControlNet builds small structured control logic (cc/m181/pm1/f2/
// cmb/cm163a/frg1 flavor): a deterministic mix of AND/OR/compare terms.
func mixedControlNet(name string, nIn, nOut int) *network.Network {
	n := network.New(name)
	pis := make([]int, nIn)
	for i := range pis {
		pis[i] = n.AddPI(fmt.Sprintf("x%d", i))
	}
	inv := make(map[int]int)
	neg := func(v int) int {
		if g, ok := inv[v]; ok {
			return g
		}
		g := n.AddGate(network.Not, pis[v])
		inv[v] = g
		return g
	}
	for o := 0; o < nOut; o++ {
		a := o % nIn
		b := (o + 1) % nIn
		c := (o + 3) % nIn
		d := (o + 5) % nIn
		var g int
		switch o % 4 {
		case 0: // ab + c̄d
			g = n.AddGate(network.Or,
				n.AddGate(network.And, pis[a], pis[b]),
				n.AddGate(network.And, neg(c), pis[d]))
		case 1: // (a+b)(c+d̄)
			g = n.AddGate(network.And,
				n.AddGate(network.Or, pis[a], pis[b]),
				n.AddGate(network.Or, pis[c], neg(d)))
		case 2: // ab̄c
			g = n.AddGate(network.And, pis[a], neg(b), pis[c])
		default: // a + bcd
			g = n.AddGate(network.Or, pis[a],
				n.AddGate(network.And, pis[b], pis[c], pis[d]))
		}
		n.AddPO(fmt.Sprintf("y%d", o), g)
	}
	return n
}

// comparatorNet builds cm85a-style magnitude comparison: two w-bit
// numbers (interleaved), one enable; outputs lt, eq, gt gated by enable.
func comparatorNet(name string, w int) *network.Network {
	n := network.New(name)
	a := make([]int, w)
	b := make([]int, w)
	for i := 0; i < w; i++ {
		a[i] = n.AddPI(fmt.Sprintf("a%d", i))
		b[i] = n.AddPI(fmt.Sprintf("b%d", i))
	}
	en := n.AddPI("en")
	// Iterative comparison from MSB down: eq chain and lt/gt discovery.
	eq := -1
	lt := -1
	gt := -1
	for i := w - 1; i >= 0; i-- {
		na := n.AddGate(network.Not, a[i])
		nb := n.AddGate(network.Not, b[i])
		biteq := n.AddGate(network.Or, n.AddGate(network.And, a[i], b[i]), n.AddGate(network.And, na, nb))
		bitlt := n.AddGate(network.And, na, b[i])
		bitgt := n.AddGate(network.And, a[i], nb)
		if eq < 0 {
			eq, lt, gt = biteq, bitlt, bitgt
			continue
		}
		lt = n.AddGate(network.Or, lt, n.AddGate(network.And, eq, bitlt))
		gt = n.AddGate(network.Or, gt, n.AddGate(network.And, eq, bitgt))
		eq = n.AddGate(network.And, eq, biteq)
	}
	n.AddPO("lt", n.AddGate(network.And, lt, en))
	n.AddPO("eq", n.AddGate(network.And, eq, en))
	n.AddPO("gt", n.AddGate(network.And, gt, en))
	return n
}

// tconNet: 8 pass-through wires and 8 control-gated wires (17 in/16 out).
func tconNet() *network.Network {
	n := network.New("tcon")
	ctl := -1
	var ins []int
	for i := 0; i < 16; i++ {
		ins = append(ins, n.AddPI(fmt.Sprintf("x%d", i)))
	}
	ctl = n.AddPI("c")
	for i := 0; i < 8; i++ {
		n.AddPO(fmt.Sprintf("w%d", i), ins[i])
	}
	for i := 8; i < 16; i++ {
		n.AddPO(fmt.Sprintf("g%d", i-8), n.AddGate(network.And, ins[i], ctl))
	}
	return n
}
