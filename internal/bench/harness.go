package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sisbase"
	"repro/internal/techmap"
	"repro/internal/verify"
)

// Row is one line of the reproduced Table 2.
type Row struct {
	Name  string
	In    int
	Out   int
	Arith bool
	Note  string

	// Before technology mapping (2-input AND/OR gates; lits = 2 × gates,
	// XOR = 3 gates — the paper's pre-map metric).
	SISLits  int
	SISTime  time.Duration
	OursLits int
	OursTime time.Duration

	// After technology mapping.
	SISGates    int
	SISMapLits  int
	OursGates   int
	OursMapLits int

	// Percent improvements (positive = ours better), the paper's last
	// two columns.
	ImproveLits  float64
	ImprovePower float64

	SISPower  float64
	OursPower float64

	// Workers is the derivation worker count the FPRM flow ran with,
	// and OursPhases its per-phase wall-clock breakdown (e.g.
	// "fprm=12ms factor=3ms"), both from core.Result.
	Workers    int
	OursPhases string

	// Basis is the synthesis basis the flow ran under ("xor", "sop",
	// "auto", "race"), from core.Result.
	Basis string

	// Report is the full observability report of the paper's flow, with
	// volatile fields stripped; nil unless Options.Stats was set.
	Report *core.RunStats

	Verified bool
	Err      string
}

// renderPhases flattens a phase-time list into one space-separated
// "name=duration" field for the CSV and verbose output.
func renderPhases(pts []core.PhaseTime) string {
	parts := make([]string, len(pts))
	for i, pt := range pts {
		parts[i] = fmt.Sprintf("%s=%s", pt.Name, pt.Elapsed.Round(time.Microsecond))
	}
	return strings.Join(parts, " ")
}

// Options configure a Table 2 run.
type Options struct {
	Core    core.Options    // the paper's flow configuration
	SIS     sisbase.Options // baseline configuration
	Verify  bool            // check both results against the specification
	Include func(c Circuit) bool

	// Ctx is the base context every per-circuit deadline derives from;
	// nil means context.Background(). Canceling it (e.g. from a signal
	// handler) drains the running circuit through the degradation
	// ladder instead of killing the process mid-run.
	Ctx context.Context

	// Timeout bounds each circuit's synthesis (both flows) in wall-clock
	// time; 0 means no deadline. A circuit that hits it still produces a
	// row — the budgeted flow degrades instead of failing — and the row's
	// Note records what fired.
	Timeout time.Duration
	// MaxBDDNodes caps the decision-diagram managers of the paper's flow
	// (both BDD and OFDD); 0 means no cap.
	MaxBDDNodes int
	// Workers bounds the per-output derivation fan-out of the paper's
	// flow (see core.Options.Workers); 0 means GOMAXPROCS.
	Workers int
	// Stats collects the observability report per circuit (Row.Report),
	// the payload of the JSON artifact and the regression gate.
	Stats bool
}

// DefaultOptions mirrors the paper's experiment.
func DefaultOptions() Options {
	return Options{Core: core.DefaultOptions(), SIS: sisbase.DefaultOptions(), Verify: true}
}

// RunCircuit produces one Table 2 row.
func RunCircuit(c Circuit, opt Options) Row {
	row := Row{Name: c.Name, In: c.In, Out: c.Out, Arith: c.Arith, Note: c.Note, Verified: true}
	spec := c.Build()

	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	coreOpt := opt.Core
	if opt.MaxBDDNodes > 0 {
		coreOpt.MaxBDDNodes = opt.MaxBDDNodes
		coreOpt.MaxOFDDNodes = opt.MaxBDDNodes
	}
	if opt.Workers != 0 {
		coreOpt.Workers = opt.Workers
	}
	if opt.Stats {
		coreOpt.Obs = obs.NewCollector()
	}

	sisRes, err := sisbase.Run(ctx, spec, opt.SIS)
	if err != nil {
		row.Err = "sis: " + err.Error()
		return row
	}
	if sisRes.Stopped != "" {
		row.Note = appendNote(row.Note, "sis stopped: "+sisRes.Stopped)
	}
	row.SISLits = sisRes.Stats.Lits
	row.SISTime = sisRes.Elapsed

	oursRes, err := core.Synthesize(ctx, spec, coreOpt)
	if err != nil {
		row.Err = "ours: " + err.Error()
		return row
	}
	if n := len(oursRes.Degradations); n > 0 {
		row.Note = appendNote(row.Note, fmt.Sprintf("degraded x%d", n))
	}
	row.OursLits = oursRes.Stats.Lits
	row.OursTime = oursRes.Elapsed
	row.Workers = oursRes.Workers
	row.OursPhases = renderPhases(oursRes.PhaseTimes)
	row.Basis = oursRes.Basis
	if opt.Stats {
		// Volatile fields are stripped so reports of the same rev diff
		// cleanly; wall-clock lives in the CSV columns instead.
		row.Report = oursRes.RunStats(c.Name).StripVolatile()
	}

	if opt.Verify {
		for _, res := range []*network.Network{sisRes.Network, oursRes.Network} {
			eq, verr := verify.Equivalent(spec, res)
			if verr != nil || !eq {
				row.Verified = false
				row.Err = fmt.Sprintf("verification failed (%v)", verr)
				return row
			}
		}
	}

	lib := techmap.Library()
	sisMap, err := techmap.Map(sisRes.Network, lib)
	if err != nil {
		row.Err = "map sis: " + err.Error()
		return row
	}
	oursMap, err := techmap.Map(oursRes.Network, lib)
	if err != nil {
		row.Err = "map ours: " + err.Error()
		return row
	}
	row.SISGates = sisMap.Gates
	row.SISMapLits = sisMap.Lits
	row.OursGates = oursMap.Gates
	row.OursMapLits = oursMap.Lits
	if row.SISMapLits > 0 {
		row.ImproveLits = 100 * float64(row.SISMapLits-row.OursMapLits) / float64(row.SISMapLits)
	}

	row.SISPower = power.EstimateMapped(sisMap).Total
	row.OursPower = power.EstimateMapped(oursMap).Total
	if row.SISPower > 0 {
		row.ImprovePower = 100 * (row.SISPower - row.OursPower) / row.SISPower
	}
	return row
}

func appendNote(note, extra string) string {
	if note == "" {
		return extra
	}
	return note + "; " + extra
}

// Table2 runs the full benchmark set and returns all rows plus the two
// summary rows (Total arith. and Total all) like the paper.
func Table2(opt Options) ([]Row, Row, Row) {
	var rows []Row
	for _, c := range Circuits() {
		if opt.Include != nil && !opt.Include(c) {
			continue
		}
		rows = append(rows, RunCircuit(c, opt))
	}
	arith := summarize("Total arith.", rows, true)
	all := summarize("Total all", rows, false)
	return rows, arith, all
}

// Summaries computes the Total arith. / Total all rows for a row set.
func Summaries(rows []Row) (arith, all Row) {
	return summarize("Total arith.", rows, true), summarize("Total all", rows, false)
}

func summarize(name string, rows []Row, arithOnly bool) Row {
	out := Row{Name: name, Verified: true}
	var sumPowerSIS, sumPowerOurs float64
	for _, r := range rows {
		if arithOnly && !r.Arith {
			continue
		}
		if r.Err != "" {
			out.Err = "some rows failed"
			continue
		}
		out.SISLits += r.SISLits
		out.OursLits += r.OursLits
		out.SISTime += r.SISTime
		out.OursTime += r.OursTime
		out.SISGates += r.SISGates
		out.SISMapLits += r.SISMapLits
		out.OursGates += r.OursGates
		out.OursMapLits += r.OursMapLits
		sumPowerSIS += r.SISPower
		sumPowerOurs += r.OursPower
		out.Verified = out.Verified && r.Verified
	}
	if out.SISMapLits > 0 {
		out.ImproveLits = 100 * float64(out.SISMapLits-out.OursMapLits) / float64(out.SISMapLits)
	}
	if sumPowerSIS > 0 {
		out.ImprovePower = 100 * (sumPowerSIS - sumPowerOurs) / sumPowerSIS
	}
	out.SISPower = sumPowerSIS
	out.OursPower = sumPowerOurs
	return out
}

// WriteTable renders rows in the paper's Table 2 layout.
func WriteTable(w io.Writer, rows []Row, arith, all Row) {
	fmt.Fprintf(w, "%-10s %-8s | %6s %8s | %6s %8s | %6s %6s | %6s %6s | %8s %8s\n",
		"Circuit", "I/O", "SISlit", "SIStime", "ourlit", "ourtime", "SISgat", "SISlit", "ourgat", "ourlit", "impr%lit", "impr%pow")
	fmt.Fprintln(w, strings.Repeat("-", 120))
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(w, "%-10s %-8s | ERROR: %s\n", r.Name, fmt.Sprintf("%d/%d", r.In, r.Out), r.Err)
			continue
		}
		fmt.Fprintf(w, "%-10s %-8s | %6d %8.2f | %6d %8.2f | %6d %6d | %6d %6d | %8.1f %8.1f\n",
			r.Name, fmt.Sprintf("%d/%d", r.In, r.Out),
			r.SISLits, r.SISTime.Seconds(), r.OursLits, r.OursTime.Seconds(),
			r.SISGates, r.SISMapLits, r.OursGates, r.OursMapLits,
			r.ImproveLits, r.ImprovePower)
	}
	fmt.Fprintln(w, strings.Repeat("-", 120))
	for _, r := range []Row{arith, all} {
		fmt.Fprintf(w, "%-10s %-8s | %6d %8.2f | %6d %8.2f | %6d %6d | %6d %6d | %8.1f %8.1f\n",
			r.Name, "",
			r.SISLits, r.SISTime.Seconds(), r.OursLits, r.OursTime.Seconds(),
			r.SISGates, r.SISMapLits, r.OursGates, r.OursMapLits,
			r.ImproveLits, r.ImprovePower)
	}
}

// WriteCSVHeader writes the CSV column header. Together with
// WriteCSVRow it lets callers stream rows as circuits complete, so an
// interrupt or a late failure keeps every finished row on disk.
func WriteCSVHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, "circuit,in,out,arith,sis_lits,sis_time_s,ours_lits,ours_time_s,sis_gates,sis_map_lits,ours_gates,ours_map_lits,improve_lits_pct,improve_power_pct,workers,ours_phases,basis,verified,note")
	return err
}

// WriteCSVRow renders one row in the WriteCSVHeader column order.
func WriteCSVRow(w io.Writer, r Row) error {
	_, err := fmt.Fprintf(w, "%s,%d,%d,%t,%d,%.4f,%d,%.4f,%d,%d,%d,%d,%.2f,%.2f,%d,%q,%s,%t,%q\n",
		r.Name, r.In, r.Out, r.Arith,
		r.SISLits, r.SISTime.Seconds(), r.OursLits, r.OursTime.Seconds(),
		r.SISGates, r.SISMapLits, r.OursGates, r.OursMapLits,
		r.ImproveLits, r.ImprovePower, r.Workers, r.OursPhases, r.Basis, r.Verified, r.Note)
	return err
}

// WriteCSV renders a complete row set as CSV for downstream analysis.
func WriteCSV(w io.Writer, rows []Row, arith, all Row) {
	WriteCSVHeader(w)
	for _, r := range rows {
		WriteCSVRow(w, r)
	}
	WriteCSVRow(w, arith)
	WriteCSVRow(w, all)
}
