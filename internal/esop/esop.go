// Package esop implements mixed-polarity exclusive-or sum-of-products
// minimization in the EXORCISM style (iterated exorlink transformations),
// the direction the paper's Section 6 points to beyond fixed-polarity
// forms ("more elegant methods for algebraic factorization are still
// possible … the set of rules developed by Sasao for XOR related forms
// could serve as a base").
//
// An ESOP cube assigns each variable one of {1, 0, -} (positive literal,
// negative literal, absent); the list is the XOR of its cubes. Unlike an
// FPRM form, polarities are free per cube, so ESOPs are never larger and
// often smaller than the best FPRM form.
//
// The minimizer repeatedly applies:
//
//	distance 0:  A ⊕ A = 0                      (cancel)
//	distance 1:  xA ⊕ x̄A = A,  xA ⊕ A = x̄A,  x̄A ⊕ A = xA   (merge)
//	distance 2:  exorlink-2 — rewrite a cube pair into two different
//	             cubes; accepted when it enables a later merge
//	             (equal-size moves taken to escape local minima).
package esop

import (
	"fmt"
	"strings"

	"repro/internal/cube"
	"repro/internal/fprm"
)

// Cube is one mixed-polarity product term.
type Cube struct {
	Pos cube.BitSet // variables as positive literals
	Neg cube.BitSet // variables as negative literals
}

// NewCube returns the constant-1 cube (no literals) over n variables.
func NewCube(n int) Cube {
	return Cube{Pos: cube.NewBitSet(n), Neg: cube.NewBitSet(n)}
}

// Clone returns a deep copy.
func (c Cube) Clone() Cube { return Cube{Pos: c.Pos.Clone(), Neg: c.Neg.Clone()} }

// Literals returns the literal count.
func (c Cube) Literals() int { return c.Pos.Count() + c.Neg.Count() }

// Key identifies the cube.
func (c Cube) Key() string { return c.Pos.Key() + "|" + c.Neg.Key() }

// Eval evaluates the product on an assignment.
func (c Cube) Eval(assign cube.BitSet) bool {
	if !c.Pos.SubsetOf(assign) {
		return false
	}
	for i := 0; i < len(c.Neg); i++ {
		var a uint64
		if i < len(assign) {
			a = assign[i]
		}
		if c.Neg[i]&a != 0 {
			return false
		}
	}
	return true
}

// value returns the 3-valued literal of variable v: 1 pos, 0 neg, 2 absent.
func (c Cube) value(v int) int {
	switch {
	case c.Pos.Has(v):
		return 1
	case c.Neg.Has(v):
		return 0
	}
	return 2
}

// setValue writes the 3-valued literal of v.
func (c Cube) setValue(v, val int) {
	c.Pos.Clear(v)
	c.Neg.Clear(v)
	switch val {
	case 1:
		c.Pos.Set(v)
	case 0:
		c.Neg.Set(v)
	}
}

// List is an ESOP over n variables.
type List struct {
	NumVars int
	Cubes   []Cube
}

// NewList returns the constant-0 ESOP.
func NewList(n int) *List { return &List{NumVars: n} }

// Clone returns a deep copy.
func (l *List) Clone() *List {
	out := &List{NumVars: l.NumVars, Cubes: make([]Cube, len(l.Cubes))}
	for i, c := range l.Cubes {
		out.Cubes[i] = c.Clone()
	}
	return out
}

// Add appends a cube.
func (l *List) Add(c Cube) { l.Cubes = append(l.Cubes, c) }

// Len returns the cube count.
func (l *List) Len() int { return len(l.Cubes) }

// Literals returns the total literal count.
func (l *List) Literals() int {
	n := 0
	for _, c := range l.Cubes {
		n += c.Literals()
	}
	return n
}

// Eval evaluates the ESOP (XOR of activated cubes).
func (l *List) Eval(assign cube.BitSet) bool {
	v := false
	for _, c := range l.Cubes {
		if c.Eval(assign) {
			v = !v
		}
	}
	return v
}

// FromFPRM converts a fixed-polarity form: literal v of a cube becomes
// the positive or negative literal according to the polarity vector.
func FromFPRM(f *fprm.Form) *List {
	out := NewList(f.NumVars)
	for _, c := range f.Cubes.Cubes {
		nc := NewCube(f.NumVars)
		c.Vars.ForEach(func(v int) {
			if f.Polarity[v] {
				nc.Pos.Set(v)
			} else {
				nc.Neg.Set(v)
			}
		})
		out.Add(nc)
	}
	return out
}

// distance returns the number of variables on which a and b differ, and
// the first two differing variables (valid when distance ≤ 2).
func distance(n int, a, b Cube) (d, v1, v2 int) {
	v1, v2 = -1, -1
	for w := 0; w < len(a.Pos); w++ {
		diff := (a.Pos[w] ^ b.Pos[w]) | (a.Neg[w] ^ b.Neg[w])
		for diff != 0 {
			bit := diff & -diff
			diff &^= bit
			v := w*64 + trailing(bit)
			if v >= n {
				continue
			}
			d++
			if v1 < 0 {
				v1 = v
			} else if v2 < 0 {
				v2 = v
			} else {
				return d, v1, v2 // d ≥ 3: callers only need ≤ 2 exactly
			}
		}
	}
	return d, v1, v2
}

func trailing(b uint64) int {
	n := 0
	for b&1 == 0 {
		b >>= 1
		n++
	}
	return n
}

// mergeValue computes the merged literal value of a distance-1 pair at
// the differing variable: val(a) ⊕-combine val(b).
//
//	1,0 -> absent; 1,- -> 0; 0,- -> 1 (and symmetric).
func mergeValue(va, vb int) int {
	switch {
	case va == 1 && vb == 0 || va == 0 && vb == 1:
		return 2
	case va == 1 && vb == 2 || va == 2 && vb == 1:
		return 0
	default: // 0/2 or 2/0
		return 1
	}
}

// Minimize reduces the cube count in place via exorlink iteration.
// maxPasses bounds the outer loop (0 = 16).
func (l *List) Minimize(maxPasses int) {
	if maxPasses <= 0 {
		maxPasses = 16
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := l.mergePass()
		changed = l.exorlink2Pass() || changed
		if !changed {
			return
		}
	}
}

// mergePass cancels distance-0 pairs and merges distance-1 pairs until
// none remain. Returns whether anything changed.
func (l *List) mergePass() bool {
	changed := false
	for {
		merged := false
	outer:
		for i := 0; i < len(l.Cubes); i++ {
			for j := i + 1; j < len(l.Cubes); j++ {
				d, v1, _ := distance(l.NumVars, l.Cubes[i], l.Cubes[j])
				switch d {
				case 0:
					// A ⊕ A = 0: drop both.
					l.Cubes = append(l.Cubes[:j], l.Cubes[j+1:]...)
					l.Cubes = append(l.Cubes[:i], l.Cubes[i+1:]...)
					merged = true
					break outer
				case 1:
					nv := mergeValue(l.Cubes[i].value(v1), l.Cubes[j].value(v1))
					l.Cubes[i].setValue(v1, nv)
					l.Cubes = append(l.Cubes[:j], l.Cubes[j+1:]...)
					merged = true
					break outer
				}
			}
		}
		if !merged {
			return changed
		}
		changed = true
	}
}

// exorlink2Pass tries distance-2 rewrites that enable a distance ≤1 merge
// with some third cube; each accepted rewrite keeps the ESOP equivalent
// and the cube count equal, and the subsequent mergePass shrinks it.
func (l *List) exorlink2Pass() bool {
	changed := false
	for i := 0; i < len(l.Cubes); i++ {
		for j := i + 1; j < len(l.Cubes); j++ {
			d, v1, v2 := distance(l.NumVars, l.Cubes[i], l.Cubes[j])
			if d != 2 {
				continue
			}
			a, b := l.Cubes[i], l.Cubes[j]
			// exorlink-2: a ⊕ b = a' ⊕ b' where a' takes b's literal at
			// one differing variable with the merged value, in two ways.
			for _, vars := range [2][2]int{{v1, v2}, {v2, v1}} {
				na := a.Clone()
				na.setValue(vars[0], mergeValue(a.value(vars[0]), b.value(vars[0])))
				nb := b.Clone()
				nb.setValue(vars[1], mergeValue(a.value(vars[1]), b.value(vars[1])))
				// Accept if either new cube is within distance 1 of a
				// third cube (it will merge on the next pass).
				if l.enablesMerge(na, i, j) || l.enablesMerge(nb, i, j) {
					l.Cubes[i] = na
					l.Cubes[j] = nb
					changed = true
					break
				}
			}
		}
	}
	return changed
}

func (l *List) enablesMerge(c Cube, skipI, skipJ int) bool {
	for k := range l.Cubes {
		if k == skipI || k == skipJ {
			continue
		}
		if d, _, _ := distance(l.NumVars, c, l.Cubes[k]); d <= 1 {
			return true
		}
	}
	return false
}

// String renders the ESOP.
func (l *List) String() string {
	if len(l.Cubes) == 0 {
		return "0"
	}
	parts := make([]string, len(l.Cubes))
	for i, c := range l.Cubes {
		if c.Literals() == 0 {
			parts[i] = "1"
			continue
		}
		var b strings.Builder
		first := true
		for v := 0; v < l.NumVars; v++ {
			switch c.value(v) {
			case 1:
				if !first {
					b.WriteByte('*')
				}
				fmt.Fprintf(&b, "x%d", v)
				first = false
			case 0:
				if !first {
					b.WriteByte('*')
				}
				fmt.Fprintf(&b, "~x%d", v)
				first = false
			}
		}
		parts[i] = b.String()
	}
	return strings.Join(parts, " ^ ")
}
