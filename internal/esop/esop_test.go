package esop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/cube"
	"repro/internal/fprm"
)

func assignOf(n, a int) cube.BitSet {
	s := cube.NewBitSet(n)
	for v := 0; v < n; v++ {
		if a&(1<<v) != 0 {
			s.Set(v)
		}
	}
	return s
}

func mk(n int, pos, neg []int) Cube {
	c := NewCube(n)
	for _, v := range pos {
		c.Pos.Set(v)
	}
	for _, v := range neg {
		c.Neg.Set(v)
	}
	return c
}

func TestDistance(t *testing.T) {
	a := mk(4, []int{0, 1}, nil)      // x0x1
	b := mk(4, []int{0}, []int{1})    // x0x̄1
	c := mk(4, []int{2}, []int{0, 1}) // x̄0x̄1x2
	if d, v1, _ := distance(4, a, b); d != 1 || v1 != 1 {
		t.Errorf("d(a,b) = %d at %d", d, v1)
	}
	if d, _, _ := distance(4, a, c); d != 3 {
		t.Errorf("d(a,c) = %d, want 3", d)
	}
	if d, _, _ := distance(4, a, a); d != 0 {
		t.Error("d(a,a) != 0")
	}
}

func TestMergeDistance1(t *testing.T) {
	// x0x1 ⊕ x0x̄1 = x0.
	l := NewList(2)
	l.Add(mk(2, []int{0, 1}, nil))
	l.Add(mk(2, []int{0}, []int{1}))
	l.Minimize(0)
	if l.Len() != 1 || l.Cubes[0].value(0) != 1 || l.Cubes[0].value(1) != 2 {
		t.Errorf("merge failed: %s", l)
	}
	// x0x1 ⊕ x0 = x0x̄1.
	m := NewList(2)
	m.Add(mk(2, []int{0, 1}, nil))
	m.Add(mk(2, []int{0}, nil))
	m.Minimize(0)
	if m.Len() != 1 || m.Cubes[0].value(1) != 0 {
		t.Errorf("absorb failed: %s", m)
	}
}

func TestCancelDistance0(t *testing.T) {
	l := NewList(3)
	l.Add(mk(3, []int{0, 2}, nil))
	l.Add(mk(3, []int{1}, nil))
	l.Add(mk(3, []int{0, 2}, nil))
	l.Minimize(0)
	if l.Len() != 1 {
		t.Errorf("cancel failed: %s", l)
	}
}

func TestExorlink2EnablesMerge(t *testing.T) {
	// x1x2 ⊕ x̄1x̄2 ⊕ x̄1 : exorlink on the first pair can produce x2 ⊕ x̄1
	// pieces that merge with the third cube.
	l := NewList(2)
	l.Add(mk(2, []int{0, 1}, nil))
	l.Add(mk(2, nil, []int{0, 1}))
	l.Add(mk(2, nil, []int{0}))
	before := l.Len()
	l.Minimize(0)
	if l.Len() >= before {
		t.Errorf("exorlink did not reduce: %s", l)
	}
	// Verify function: f = x0x1 ⊕ x̄0x̄1 ⊕ x̄0 = (a==b) ⊕ ā.
	for a := 0; a < 4; a++ {
		x0 := a&1 != 0
		x1 := a&2 != 0
		want := (x0 == x1) != !x0
		if got := l.Eval(assignOf(2, a)); got != want {
			t.Errorf("f(%02b) = %v, want %v", a, got, want)
		}
	}
}

// Property: Minimize preserves the function and never grows the list.
func TestQuickMinimizePreserves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		l := NewList(n)
		for i := 0; i < 1+rng.Intn(10); i++ {
			c := NewCube(n)
			for v := 0; v < n; v++ {
				c.setValue(v, rng.Intn(3))
			}
			l.Add(c)
		}
		before := l.Clone()
		l.Minimize(0)
		if l.Len() > before.Len() {
			return false
		}
		for a := 0; a < 1<<n; a++ {
			if l.Eval(assignOf(n, a)) != before.Eval(assignOf(n, a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestFromFPRM(t *testing.T) {
	// f = x̄0 ⊕ x̄0x1 with polarity (neg, pos).
	form := fprm.NewForm(2, []bool{false, true})
	form.Cubes.Add(cube.New(2, 0))
	form.Cubes.Add(cube.New(2, 0, 1))
	l := FromFPRM(form)
	for a := 0; a < 4; a++ {
		if l.Eval(assignOf(2, a)) != form.Eval(assignOf(2, a)) {
			t.Fatalf("FromFPRM differs at %02b", a)
		}
	}
	// The two cubes merge: x̄0 ⊕ x̄0x1 = x̄0x̄1.
	l.Minimize(0)
	if l.Len() != 1 {
		t.Errorf("expected single cube, got %s", l)
	}
}

// TestESOPBeatsFPRMOn9sym: mixed polarity must do better than the best
// fixed-polarity form (173 cubes) on the 9sym benchmark.
func TestESOPBeatsFPRMOn9sym(t *testing.T) {
	n := 9
	m := bdd.New(n)
	var g bdd.Ref = bdd.Zero
	// Build 9sym's BDD from its symmetric definition.
	for a := 0; a < 1<<n; a++ {
		cnt := 0
		for v := 0; v < n; v++ {
			if a&(1<<v) != 0 {
				cnt++
			}
		}
		if cnt >= 3 && cnt <= 6 {
			p := bdd.One
			for v := 0; v < n; v++ {
				if a&(1<<v) != 0 {
					p = m.And(p, m.Var(v))
				} else {
					p = m.And(p, m.Not(m.Var(v)))
				}
			}
			g = m.Or(g, p)
		}
	}
	form, err := fprm.FromBDD(m, g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	form = fprm.SearchGreedy(form)
	l := FromFPRM(form)
	before := l.Len()
	l.Minimize(0)
	t.Logf("9sym: FPRM %d cubes -> ESOP %d cubes (known FPRM optimum 173, known ESOP optimum ~51)", before, l.Len())
	if l.Len() >= before {
		t.Errorf("ESOP minimization did not improve on the FPRM form (%d)", l.Len())
	}
	// Function must be preserved.
	for a := 0; a < 1<<n; a++ {
		if l.Eval(assignOf(n, a)) != m.Eval(g, assignOf(n, a)) {
			t.Fatal("9sym ESOP function changed")
		}
	}
}
