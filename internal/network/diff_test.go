package network

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

// messyRandomNetwork builds a randomized network through a mix of consed
// AddGate calls and raw appends (duplicates, buffer chains, inverter
// chains, degenerate equal-fanin gates), so the cleanup passes get the
// full menu of shapes an in-place mutator or deserializer can produce.
func messyRandomNetwork(rng *rand.Rand, nPIs, nGates int) *Network {
	n := New("m")
	for i := 0; i < nPIs; i++ {
		n.AddPI(fmt.Sprintf("i%d", i))
	}
	types := []GateType{And, Or, Xor, Nand, Nor, Xnor, Not, Buf}
	for i := 0; i < nGates; i++ {
		t := types[rng.Intn(len(types))]
		k := 1
		if t != Not && t != Buf {
			k = 2 + rng.Intn(2)
		}
		fanins := make([]int, k)
		for j := range fanins {
			fanins[j] = rng.Intn(len(n.Gates))
		}
		switch rng.Intn(4) {
		case 0:
			n.AddGate(t, fanins...)
		case 1:
			// Raw append, possibly duplicating an existing gate's shape.
			rawGate(n, t, fanins...)
		case 2:
			// Duplicate fanin: And(x,x) / Xor(x,x) shapes.
			if k >= 2 {
				fanins[1] = fanins[0]
			}
			rawGate(n, t, fanins...)
		case 3:
			// Inverter or buffer chain on a random driver.
			g := fanins[0]
			for d := 0; d < 1+rng.Intn(3); d++ {
				if rng.Intn(2) == 0 {
					g = rawGate(n, Not, g)
				} else {
					g = rawGate(n, Buf, g)
				}
			}
		}
	}
	nPOs := 1 + rng.Intn(3)
	for i := 0; i < nPOs; i++ {
		n.AddPO(fmt.Sprintf("o%d", i), rng.Intn(len(n.Gates)))
	}
	return n
}

// passes lists the cleanup passes under differential test, applied
// cumulatively in pipeline order.
var passes = []struct {
	name  string
	apply func(n *Network)
}{
	{"strash", func(n *Network) { n.Strash() }},
	{"elim-inv-pairs", func(n *Network) { n.ElimInvPairs() }},
	{"rebalance-xor", func(n *Network) { n.RebalanceXorTrees() }},
	{"sweep", func(n *Network) { n.Sweep() }},
	{"compact", func(n *Network) { n.Compact() }},
	{"canonical", func(n *Network) { *n = *n.Canonical() }},
}

// TestDifferentialCleanupPasses drives randomized messy networks through
// every cleanup pass, checking after each one that (a) 64-bit random
// vector simulation agrees with the original on every PO and (b) the PO
// BDDs are exactly equal — the construction-independence guarantee the
// hash-consed core rests on.
func TestDifferentialCleanupPasses(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nPIs := 2 + rng.Intn(5)
		n := messyRandomNetwork(rng, nPIs, 4+rng.Intn(20))

		m := bdd.New(nPIs)
		wantBDD := n.ToBDDs(m)
		words := make([]uint64, nPIs)
		for i := range words {
			words[i] = rng.Uint64()
		}
		val := n.Simulate(words)
		wantSim := make([]uint64, len(n.POs))
		for i, po := range n.POs {
			wantSim[i] = val[po.Gate]
		}

		for _, p := range passes {
			p.apply(n)
			val := n.Simulate(words)
			for i, po := range n.POs {
				if val[po.Gate] != wantSim[i] {
					t.Fatalf("seed %d: pass %s changed simulation of PO %d", seed, p.name, i)
				}
			}
			got := n.ToBDDs(m)
			for i := range got {
				if got[i] != wantBDD[i] {
					t.Fatalf("seed %d: pass %s changed BDD of PO %d", seed, p.name, i)
				}
			}
		}
	}
}

// blifSeedCorpus holds the parser edge cases the fuzzers found
// interesting: POs driven directly by PIs, by constants, complemented
// covers, and shared drivers under different output names.
var blifSeedCorpus = []struct {
	name string
	src  string
}{
	{"po-is-pi", `
.model p
.inputs a b
.outputs z
.names a z
1 1
.end
`},
	{"po-const0", `
.model c0
.inputs a
.outputs z
.names z
.end
`},
	{"po-const1", `
.model c1
.inputs a
.outputs z
.names z
1
.end
`},
	{"two-pos-one-driver", `
.model d
.inputs a b
.outputs y z
.names a b y
11 1
.names a b z
11 1
.end
`},
	{"complemented-cover", `
.model n
.inputs a b
.outputs z
.names a b z
11 0
.end
`},
	{"const-feeding-gate", `
.model cf
.inputs a
.outputs z
.names one
1
.names a one z
11 1
.end
`},
}

// TestBLIFRoundTripSeeds round-trips each corpus case through
// WriteBLIF/ReadBLIF and the cleanup passes, checking function
// preservation by BDD equality.
func TestBLIFRoundTripSeeds(t *testing.T) {
	for _, tc := range blifSeedCorpus {
		t.Run(tc.name, func(t *testing.T) {
			n, err := ReadBLIF(bytes.NewBufferString(tc.src))
			if err != nil {
				t.Fatal(err)
			}
			m := bdd.New(len(n.PIs))
			want := n.ToBDDs(m)

			var buf bytes.Buffer
			if err := n.WriteBLIF(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := ReadBLIF(&buf)
			if err != nil {
				t.Fatalf("re-read: %v\n%s", err, buf.String())
			}
			if len(back.PIs) != len(n.PIs) || len(back.POs) != len(n.POs) {
				t.Fatalf("interface changed: %d/%d PIs, %d/%d POs",
					len(back.PIs), len(n.PIs), len(back.POs), len(n.POs))
			}
			got := back.ToBDDs(m)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round-trip changed PO %d", i)
				}
			}
			for _, p := range passes {
				p.apply(back)
			}
			got = back.ToBDDs(m)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cleanup after round-trip changed PO %d", i)
				}
			}
		})
	}
}
