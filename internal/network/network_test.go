package network

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/cube"
)

// buildFullAdder returns a 3-in 2-out full adder network.
func buildFullAdder() *Network {
	n := New("fa")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("cin")
	sum := n.AddGate(Xor, a, b, c)
	carry := n.AddGate(Or, n.AddGate(And, a, b), n.AddGate(And, c, n.AddGate(Xor, a, b)))
	n.AddPO("sum", sum)
	n.AddPO("cout", carry)
	return n
}

func TestFullAdderEval(t *testing.T) {
	n := buildFullAdder()
	for a := 0; a < 8; a++ {
		assign := cube.NewBitSet(3)
		ones := 0
		for v := 0; v < 3; v++ {
			if a&(1<<v) != 0 {
				assign.Set(v)
				ones++
			}
		}
		out := n.Eval(assign)
		if out[0] != (ones%2 == 1) {
			t.Errorf("sum(%03b) = %v", a, out[0])
		}
		if out[1] != (ones >= 2) {
			t.Errorf("cout(%03b) = %v", a, out[1])
		}
	}
}

func TestSimulateParallel(t *testing.T) {
	n := buildFullAdder()
	// Apply all 8 input combinations in one 64-bit word simulation.
	pi := make([]uint64, 3)
	for a := 0; a < 8; a++ {
		for v := 0; v < 3; v++ {
			if a&(1<<v) != 0 {
				pi[v] |= 1 << uint(a)
			}
		}
	}
	val := n.Simulate(pi)
	sum := val[n.POs[0].Gate]
	cout := val[n.POs[1].Gate]
	if sum&0xFF != 0b10010110 {
		t.Errorf("sum word = %08b", sum&0xFF)
	}
	if cout&0xFF != 0b11101000 {
		t.Errorf("cout word = %08b", cout&0xFF)
	}
}

func TestTopoOrder(t *testing.T) {
	n := buildFullAdder()
	pos := make(map[int]int)
	for i, id := range n.TopoOrder() {
		pos[id] = i
	}
	for _, g := range n.Gates {
		for _, f := range g.Fanins {
			if pos[f] >= pos[g.ID] {
				t.Fatalf("gate %d before its fanin %d", g.ID, f)
			}
		}
	}
}

func TestStatsXORCosting(t *testing.T) {
	n := New("x")
	a := n.AddPI("a")
	b := n.AddPI("b")
	x := n.AddGate(Xor, a, b)
	n.AddPO("o", x)
	s := n.CollectStats()
	// One 2-input XOR = 3 AND/OR gates = 6 lits (paper, Example 1).
	if s.Gates2 != 3 || s.Lits != 6 || s.XORs != 1 {
		t.Errorf("stats = %+v", s)
	}
	// A 3-input AND = 2 two-input gates.
	m := New("a3")
	p := m.AddPI("p")
	q := m.AddPI("q")
	r := m.AddPI("r")
	m.AddPO("o", m.AddGate(And, p, q, r))
	s2 := m.CollectStats()
	if s2.Gates2 != 2 || s2.Lits != 4 {
		t.Errorf("and3 stats = %+v", s2)
	}
}

func TestStatsIgnoresDanglingGates(t *testing.T) {
	n := New("d")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddGate(And, a, b) // dangling
	n.AddPO("o", a)
	if s := n.CollectStats(); s.Gates2 != 0 {
		t.Errorf("dangling gate counted: %+v", s)
	}
}

func TestSweepConstants(t *testing.T) {
	n := New("s")
	a := n.AddPI("a")
	one := n.AddGate(Const1)
	zero := n.AddGate(Const0)
	and := n.AddGate(And, a, one)  // = a
	or := n.AddGate(Or, and, zero) // = a
	x := n.AddGate(Xor, or, zero)  // = a
	n.AddPO("o", x)
	n.Sweep()
	if n.POs[0].Gate != a {
		t.Errorf("sweep did not reduce to the PI; PO gate = %d (%v)", n.POs[0].Gate, n.Gates[n.POs[0].Gate].Type)
	}
}

func TestSweepDominatingConstant(t *testing.T) {
	n := New("s")
	a := n.AddPI("a")
	zero := n.AddGate(Const0)
	and := n.AddGate(And, a, zero)
	n.AddPO("o", and)
	n.Sweep()
	if n.Gates[n.POs[0].Gate].Type != Const0 {
		t.Errorf("AND with 0 should become Const0, got %v", n.Gates[n.POs[0].Gate].Type)
	}
}

func TestSweepXorCancellation(t *testing.T) {
	n := New("s")
	a := n.AddPI("a")
	b := n.AddPI("b")
	x := n.AddGate(Xor, a, b, a) // = b
	n.AddPO("o", x)
	n.Sweep()
	if n.POs[0].Gate != b {
		t.Errorf("a^b^a should sweep to b")
	}
}

func TestSweepDoubleNegation(t *testing.T) {
	n := New("s")
	a := n.AddPI("a")
	nn := n.AddGate(Not, n.AddGate(Not, a))
	n.AddPO("o", nn)
	n.Sweep()
	if n.POs[0].Gate != a {
		t.Error("double negation should sweep to the PI")
	}
}

// rawGate appends a gate without AddGate's canonicalization/consing —
// the way a deserializer or an in-place optimization pass leaves the
// gate list. Tests use it to hand Strash real work.
func rawGate(n *Network, t GateType, fanins ...int) int {
	id := len(n.Gates)
	n.Gates = append(n.Gates, Gate{ID: id, Type: t, Fanins: append([]int(nil), fanins...)})
	return id
}

func TestAddGateConsesDuplicates(t *testing.T) {
	n := New("h")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g1 := n.AddGate(And, a, b)
	g2 := n.AddGate(And, b, a) // same gate, commuted
	if g1 != g2 {
		t.Errorf("AddGate(And,a,b)=%d but AddGate(And,b,a)=%d; want the same gate", g1, g2)
	}
	if x := n.AddGate(Xor, g1, g2); n.Gates[x].Type != Const0 {
		t.Errorf("Xor(g,g) should cons to Const0, got %v", n.Gates[x].Type)
	}
	if nn := n.AddGate(Not, n.AddGate(Not, a)); nn != a {
		t.Errorf("Not(Not(a)) should collapse to a, got %d", nn)
	}
	if bf := n.AddGate(Buf, g1); bf != g1 {
		t.Errorf("Buf(g) should collapse to g, got %d", bf)
	}
	if aa := n.AddGate(And, a, a); aa != a {
		t.Errorf("And(a,a) should collapse to a, got %d", aa)
	}
	one := n.AddGate(Const1)
	if g := n.AddGate(And, a, one, b); g != g1 {
		t.Errorf("And(a,1,b) should fold onto And(a,b)=%d, got %d", g1, g)
	}
	if id, ok := n.FindGate(And, b, a); !ok || id != g1 {
		t.Errorf("FindGate(And,b,a) = %d,%v; want %d,true", id, ok, g1)
	}
	if _, ok := n.FindGate(Or, a, b); ok {
		t.Error("FindGate found an Or gate that was never created")
	}
}

func TestStrashMergesDuplicates(t *testing.T) {
	n := New("h")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g1 := n.AddGate(And, a, b)
	g2 := rawGate(n, And, b, a) // duplicate behind the constructor's back
	x := rawGate(n, Xor, g1, g2)
	n.AddPO("o", x)
	merged := n.Strash()
	// g2 merges onto g1, and x's fanins then become equal — Strash now
	// simplifies Xor(g,g) to Const0 in the same pass.
	if merged != 1 {
		t.Errorf("merged = %d, want 1", merged)
	}
	if n.Gates[n.POs[0].Gate].Type != Const0 {
		t.Errorf("strash should give Const0, got %v", n.Gates[n.POs[0].Gate].Type)
	}
}

// Satellite regression: gates whose fanins become equal after a
// replacement must simplify (And(a,a)→a, Or(a,a)→a, Xor(a,a)→0) instead
// of surviving as degenerate two-input gates.
func TestStrashSimplifiesEqualFaninsAfterReplacement(t *testing.T) {
	for _, tc := range []struct {
		typ  GateType
		want func(n *Network, po int, a int) bool
		desc string
	}{
		{And, func(n *Network, po, a int) bool { return po == a }, "And(a,a) -> a"},
		{Or, func(n *Network, po, a int) bool { return po == a }, "Or(a,a) -> a"},
		{Xor, func(n *Network, po, a int) bool { return n.Gates[po].Type == Const0 }, "Xor(a,a) -> 0"},
	} {
		n := New("e")
		a := n.AddPI("a")
		b := n.AddPI("b")
		g1 := n.AddGate(Not, a)
		_ = b
		g2 := rawGate(n, Not, a) // duplicate inverter
		g := rawGate(n, tc.typ, g1, g2)
		n.AddPO("o", g)
		n.Strash()
		// After g2 merges onto g1 the gate's fanins are (g1, g1).
		if !tc.want(n, n.POs[0].Gate, g1) {
			t.Errorf("%s failed: PO gate %d (%v)", tc.desc, n.POs[0].Gate, n.Gates[n.POs[0].Gate].Type)
		}
	}
}

// Satellite regression: equivalent gates hidden behind Buf chains must
// merge — Strash looks through buffers.
func TestStrashLooksThroughBuffers(t *testing.T) {
	n := New("b")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g1 := n.AddGate(And, a, b)
	buf := rawGate(n, Buf, a)
	g2 := rawGate(n, And, buf, b) // same as g1, but behind a buffer
	x := rawGate(n, Xor, g1, g2)
	n.AddPO("o", x)
	n.Strash()
	if n.Gates[n.POs[0].Gate].Type != Const0 {
		t.Errorf("gates behind buffers did not merge: PO is %v", n.Gates[n.POs[0].Gate].Type)
	}
}

// Satellite regression: Strash cancels double negations left by in-place
// passes.
func TestStrashCancelsDoubleNegation(t *testing.T) {
	n := New("nn")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g := n.AddGate(And, a, b)
	n1 := rawGate(n, Not, g)
	n2 := rawGate(n, Not, n1)
	n.AddPO("o", n2)
	n.Strash()
	if n.POs[0].Gate != g {
		t.Errorf("Not(Not(g)) should strash to g=%d, got %d", g, n.POs[0].Gate)
	}
}

func TestGateTypeStringFallback(t *testing.T) {
	if s := And.String(); s != "and" {
		t.Errorf("And.String() = %q", s)
	}
	if s := GateType(99).String(); s != "gatetype(99)" {
		t.Errorf("GateType(99).String() = %q, want \"gatetype(99)\"", s)
	}
	if s := GateType(-1).String(); s != "gatetype(-1)" {
		t.Errorf("GateType(-1).String() = %q, want \"gatetype(-1)\"", s)
	}
}

// Satellite regression: stats are cone-reachable-only even when merged
// or dangling gates linger in Gates, and Compact removes them.
func TestCompactRemovesDeadGates(t *testing.T) {
	n := New("c")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g1 := n.AddGate(And, a, b)
	g2 := rawGate(n, And, b, a)
	x := rawGate(n, Or, g1, g2)
	n.AddPO("o", x)
	n.Strash() // merges g2 away and collapses Or(g1,g1) -> g1
	if got := n.CollectStats(); got.Gates2 != 1 {
		t.Errorf("stats over cone = %+v, want Gates2=1 (dead gates must not count)", got)
	}
	removed := n.Compact()
	if removed != 2 {
		t.Errorf("Compact removed %d gates, want 2", removed)
	}
	if len(n.Gates) != 3 {
		t.Errorf("len(Gates) = %d after Compact, want 3 (2 PIs + 1 And)", len(n.Gates))
	}
	for i, g := range n.Gates {
		if g.ID != i {
			t.Errorf("gate %d has ID %d after renumbering", i, g.ID)
		}
	}
	if got := n.CollectStats(); got.Gates2 != 1 {
		t.Errorf("stats after Compact = %+v, want Gates2=1", got)
	}
}

func TestElimInvPairs(t *testing.T) {
	n := New("i")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n1 := rawGate(n, Not, a)
	n2 := rawGate(n, Not, n1)
	g := rawGate(n, And, n2, b) // And(Not(Not(a)), b) = And(a, b)
	n.AddPO("o", g)
	if changed := n.ElimInvPairs(); changed == 0 {
		t.Fatal("ElimInvPairs found nothing to rewrite")
	}
	if got := n.Gates[g].Fanins[0]; got != a {
		t.Errorf("fanin after inverter-pair elimination = %d, want PI %d", got, a)
	}
	// Buf between the two inverters must not hide the pair.
	m := New("ib")
	p := m.AddPI("p")
	i1 := rawGate(m, Not, p)
	bf := rawGate(m, Buf, i1)
	i2 := rawGate(m, Not, bf)
	m.AddPO("o", i2)
	m.ElimInvPairs()
	if m.POs[0].Gate != p {
		t.Errorf("Not(Buf(Not(p))) should resolve to p, got %d", m.POs[0].Gate)
	}
}

func TestRebalanceXorTrees(t *testing.T) {
	n := New("x")
	var pis []int
	for i := 0; i < 8; i++ {
		pis = append(pis, n.AddPI(""))
	}
	// Build a maximally skewed XOR chain: (((p0^p1)^p2)^...)^p7.
	root := pis[0]
	for _, p := range pis[1:] {
		root = rawGate(n, Xor, root, p)
	}
	n.AddPO("o", root)
	if rebuilt := n.RebalanceXorTrees(); rebuilt != 1 {
		t.Fatalf("rebuilt = %d, want 1", rebuilt)
	}
	n.Compact()
	depth := make([]int, len(n.Gates))
	xors := 0
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == Xor {
			xors++
		}
		for _, f := range g.Fanins {
			if depth[f]+1 > depth[id] {
				depth[id] = depth[f] + 1
			}
		}
	}
	if xors != 7 {
		t.Errorf("rebalanced tree has %d XORs, want 7 (same gate count as the chain)", xors)
	}
	if d := depth[n.POs[0].Gate]; d != 3 {
		t.Errorf("depth after rebalance = %d, want log2(8) = 3", d)
	}
	// Cancellation across the chain: x ^ a ^ x = a.
	m := New("xc")
	a := m.AddPI("a")
	x := m.AddPI("x")
	c1 := rawGate(m, Xor, x, a)
	c2 := rawGate(m, Xor, c1, x)
	m.AddPO("o", c2)
	m.RebalanceXorTrees()
	m.Sweep()
	if m.POs[0].Gate != a {
		t.Errorf("x^a^x should rebalance to a, got gate %d (%v)", m.POs[0].Gate, m.Gates[m.POs[0].Gate].Type)
	}
}

func TestCanonicalRebuild(t *testing.T) {
	n := New("c")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g1 := n.AddGate(And, a, b)
	g2 := rawGate(n, And, b, a)
	n1 := rawGate(n, Not, g2)
	n2 := rawGate(n, Not, n1)
	n.AddPO("o", n2)
	c := n.Canonical()
	if len(c.Gates) != 3 {
		t.Errorf("canonical form has %d gates, want 3 (2 PIs + 1 And)", len(c.Gates))
	}
	if c.POs[0].Name != "o" {
		t.Errorf("PO name lost: %q", c.POs[0].Name)
	}
	m := bdd.New(2)
	before := n.ToBDDs(m)
	after := c.ToBDDs(m)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("Canonical changed output %d", i)
		}
	}
	if len(n.Gates) != 6 {
		t.Errorf("receiver mutated: %d gates", len(n.Gates))
	}
	_ = g1
}

func TestToBDDsMatchesEval(t *testing.T) {
	n := buildFullAdder()
	m := bdd.New(3)
	outs := n.ToBDDs(m)
	for a := 0; a < 8; a++ {
		assign := cube.NewBitSet(3)
		for v := 0; v < 3; v++ {
			if a&(1<<v) != 0 {
				assign.Set(v)
			}
		}
		ev := n.Eval(assign)
		for i, f := range outs {
			if m.Eval(f, assign) != ev[i] {
				t.Fatalf("BDD/eval mismatch at %03b output %d", a, i)
			}
		}
	}
}

func TestBalancedTree(t *testing.T) {
	n := New("t")
	var ids []int
	for i := 0; i < 7; i++ {
		ids = append(ids, n.AddPI("p"))
	}
	root := n.BalancedTree(Xor, ids)
	n.AddPO("o", root)
	// 7-input parity via 6 two-input XORs.
	count := 0
	for _, id := range n.TopoOrder() {
		if n.Gates[id].Type == Xor {
			count++
		}
	}
	if count != 6 {
		t.Errorf("balanced tree has %d XORs, want 6", count)
	}
	// Depth should be ceil(log2(7)) = 3.
	depth := make([]int, len(n.Gates))
	for _, id := range n.TopoOrder() {
		for _, f := range n.Gates[id].Fanins {
			if depth[f]+1 > depth[id] {
				depth[id] = depth[f] + 1
			}
		}
	}
	if depth[root] != 3 {
		t.Errorf("tree depth = %d, want 3", depth[root])
	}
}

func randomNetwork(rng *rand.Rand, nPIs, nGates int) *Network {
	n := New("r")
	for i := 0; i < nPIs; i++ {
		n.AddPI("")
	}
	types := []GateType{And, Or, Xor, Nand, Nor, Not, Xnor}
	for i := 0; i < nGates; i++ {
		t := types[rng.Intn(len(types))]
		k := 1
		if t != Not {
			k = 2 + rng.Intn(2)
		}
		fanins := make([]int, k)
		for j := range fanins {
			fanins[j] = rng.Intn(len(n.Gates))
		}
		n.AddGate(t, fanins...)
	}
	n.AddPO("o", len(n.Gates)-1)
	// Consing can collapse most requested gates onto existing ones, so
	// clamp the second PO into the valid ID range.
	p := len(n.Gates) - 1 - rng.Intn(nGates/2+1)
	if p < 0 {
		p = 0
	}
	n.AddPO("p", p)
	return n
}

// Property: Sweep and Strash preserve the network function.
func TestQuickSweepStrashPreserve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPIs := 3 + rng.Intn(3)
		n := randomNetwork(rng, nPIs, 5+rng.Intn(15))
		m := bdd.New(nPIs)
		before := n.ToBDDs(m)
		n.Sweep()
		n.Strash()
		n.Sweep()
		after := n.ToBDDs(m)
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: BLIF write/read round-trips the function.
func TestQuickBLIFRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPIs := 3 + rng.Intn(3)
		n := randomNetwork(rng, nPIs, 4+rng.Intn(10))
		// Name PIs uniquely for BLIF.
		for i, pi := range n.PIs {
			n.Gates[pi].Name = "in" + string(rune('a'+i))
		}
		var buf bytes.Buffer
		if err := n.WriteBLIF(&buf); err != nil {
			return false
		}
		back, err := ReadBLIF(&buf)
		if err != nil {
			return false
		}
		if len(back.PIs) != len(n.PIs) || len(back.POs) != len(n.POs) {
			return false
		}
		m := bdd.New(nPIs)
		a := n.ToBDDs(m)
		b := back.ToBDDs(m)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadBLIFConstAndComplement(t *testing.T) {
	src := `
.model c
.inputs a b
.outputs z k
# z = complement of a*b via 0-phase rows
.names a b z
11 0
.names k
1
.end
`
	n, err := ReadBLIF(bytes.NewBufferString(src))
	if err != nil {
		t.Fatal(err)
	}
	assign := cube.NewBitSet(2)
	assign.Set(0)
	assign.Set(1)
	out := n.Eval(assign)
	if out[0] != false || out[1] != true {
		t.Errorf("eval = %v, want [false true]", out)
	}
	assign2 := cube.NewBitSet(2)
	out2 := n.Eval(assign2)
	if out2[0] != true {
		t.Error("NAND(0,0) should be 1")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := buildFullAdder()
	c := n.Clone()
	c.Gates[3].Type = And
	if n.Gates[3].Type == And {
		t.Error("clone shares gate storage")
	}
}
