package network

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/cube"
)

// buildFullAdder returns a 3-in 2-out full adder network.
func buildFullAdder() *Network {
	n := New("fa")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("cin")
	sum := n.AddGate(Xor, a, b, c)
	carry := n.AddGate(Or, n.AddGate(And, a, b), n.AddGate(And, c, n.AddGate(Xor, a, b)))
	n.AddPO("sum", sum)
	n.AddPO("cout", carry)
	return n
}

func TestFullAdderEval(t *testing.T) {
	n := buildFullAdder()
	for a := 0; a < 8; a++ {
		assign := cube.NewBitSet(3)
		ones := 0
		for v := 0; v < 3; v++ {
			if a&(1<<v) != 0 {
				assign.Set(v)
				ones++
			}
		}
		out := n.Eval(assign)
		if out[0] != (ones%2 == 1) {
			t.Errorf("sum(%03b) = %v", a, out[0])
		}
		if out[1] != (ones >= 2) {
			t.Errorf("cout(%03b) = %v", a, out[1])
		}
	}
}

func TestSimulateParallel(t *testing.T) {
	n := buildFullAdder()
	// Apply all 8 input combinations in one 64-bit word simulation.
	pi := make([]uint64, 3)
	for a := 0; a < 8; a++ {
		for v := 0; v < 3; v++ {
			if a&(1<<v) != 0 {
				pi[v] |= 1 << uint(a)
			}
		}
	}
	val := n.Simulate(pi)
	sum := val[n.POs[0].Gate]
	cout := val[n.POs[1].Gate]
	if sum&0xFF != 0b10010110 {
		t.Errorf("sum word = %08b", sum&0xFF)
	}
	if cout&0xFF != 0b11101000 {
		t.Errorf("cout word = %08b", cout&0xFF)
	}
}

func TestTopoOrder(t *testing.T) {
	n := buildFullAdder()
	pos := make(map[int]int)
	for i, id := range n.TopoOrder() {
		pos[id] = i
	}
	for _, g := range n.Gates {
		for _, f := range g.Fanins {
			if pos[f] >= pos[g.ID] {
				t.Fatalf("gate %d before its fanin %d", g.ID, f)
			}
		}
	}
}

func TestStatsXORCosting(t *testing.T) {
	n := New("x")
	a := n.AddPI("a")
	b := n.AddPI("b")
	x := n.AddGate(Xor, a, b)
	n.AddPO("o", x)
	s := n.CollectStats()
	// One 2-input XOR = 3 AND/OR gates = 6 lits (paper, Example 1).
	if s.Gates2 != 3 || s.Lits != 6 || s.XORs != 1 {
		t.Errorf("stats = %+v", s)
	}
	// A 3-input AND = 2 two-input gates.
	m := New("a3")
	p := m.AddPI("p")
	q := m.AddPI("q")
	r := m.AddPI("r")
	m.AddPO("o", m.AddGate(And, p, q, r))
	s2 := m.CollectStats()
	if s2.Gates2 != 2 || s2.Lits != 4 {
		t.Errorf("and3 stats = %+v", s2)
	}
}

func TestStatsIgnoresDanglingGates(t *testing.T) {
	n := New("d")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddGate(And, a, b) // dangling
	n.AddPO("o", a)
	if s := n.CollectStats(); s.Gates2 != 0 {
		t.Errorf("dangling gate counted: %+v", s)
	}
}

func TestSweepConstants(t *testing.T) {
	n := New("s")
	a := n.AddPI("a")
	one := n.AddGate(Const1)
	zero := n.AddGate(Const0)
	and := n.AddGate(And, a, one)  // = a
	or := n.AddGate(Or, and, zero) // = a
	x := n.AddGate(Xor, or, zero)  // = a
	n.AddPO("o", x)
	n.Sweep()
	if n.POs[0].Gate != a {
		t.Errorf("sweep did not reduce to the PI; PO gate = %d (%v)", n.POs[0].Gate, n.Gates[n.POs[0].Gate].Type)
	}
}

func TestSweepDominatingConstant(t *testing.T) {
	n := New("s")
	a := n.AddPI("a")
	zero := n.AddGate(Const0)
	and := n.AddGate(And, a, zero)
	n.AddPO("o", and)
	n.Sweep()
	if n.Gates[n.POs[0].Gate].Type != Const0 {
		t.Errorf("AND with 0 should become Const0, got %v", n.Gates[n.POs[0].Gate].Type)
	}
}

func TestSweepXorCancellation(t *testing.T) {
	n := New("s")
	a := n.AddPI("a")
	b := n.AddPI("b")
	x := n.AddGate(Xor, a, b, a) // = b
	n.AddPO("o", x)
	n.Sweep()
	if n.POs[0].Gate != b {
		t.Errorf("a^b^a should sweep to b")
	}
}

func TestSweepDoubleNegation(t *testing.T) {
	n := New("s")
	a := n.AddPI("a")
	nn := n.AddGate(Not, n.AddGate(Not, a))
	n.AddPO("o", nn)
	n.Sweep()
	if n.POs[0].Gate != a {
		t.Error("double negation should sweep to the PI")
	}
}

func TestStrashMergesDuplicates(t *testing.T) {
	n := New("h")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g1 := n.AddGate(And, a, b)
	g2 := n.AddGate(And, b, a) // same gate, commuted
	x := n.AddGate(Xor, g1, g2)
	n.AddPO("o", x)
	merged := n.Strash()
	if merged != 1 {
		t.Errorf("merged = %d, want 1", merged)
	}
	n.Sweep() // xor of identical fanins -> const0
	if n.Gates[n.POs[0].Gate].Type != Const0 {
		t.Errorf("strash+sweep should give Const0, got %v", n.Gates[n.POs[0].Gate].Type)
	}
}

func TestToBDDsMatchesEval(t *testing.T) {
	n := buildFullAdder()
	m := bdd.New(3)
	outs := n.ToBDDs(m)
	for a := 0; a < 8; a++ {
		assign := cube.NewBitSet(3)
		for v := 0; v < 3; v++ {
			if a&(1<<v) != 0 {
				assign.Set(v)
			}
		}
		ev := n.Eval(assign)
		for i, f := range outs {
			if m.Eval(f, assign) != ev[i] {
				t.Fatalf("BDD/eval mismatch at %03b output %d", a, i)
			}
		}
	}
}

func TestBalancedTree(t *testing.T) {
	n := New("t")
	var ids []int
	for i := 0; i < 7; i++ {
		ids = append(ids, n.AddPI("p"))
	}
	root := n.BalancedTree(Xor, ids)
	n.AddPO("o", root)
	// 7-input parity via 6 two-input XORs.
	count := 0
	for _, id := range n.TopoOrder() {
		if n.Gates[id].Type == Xor {
			count++
		}
	}
	if count != 6 {
		t.Errorf("balanced tree has %d XORs, want 6", count)
	}
	// Depth should be ceil(log2(7)) = 3.
	depth := make([]int, len(n.Gates))
	for _, id := range n.TopoOrder() {
		for _, f := range n.Gates[id].Fanins {
			if depth[f]+1 > depth[id] {
				depth[id] = depth[f] + 1
			}
		}
	}
	if depth[root] != 3 {
		t.Errorf("tree depth = %d, want 3", depth[root])
	}
}

func randomNetwork(rng *rand.Rand, nPIs, nGates int) *Network {
	n := New("r")
	for i := 0; i < nPIs; i++ {
		n.AddPI("")
	}
	types := []GateType{And, Or, Xor, Nand, Nor, Not, Xnor}
	for i := 0; i < nGates; i++ {
		t := types[rng.Intn(len(types))]
		k := 1
		if t != Not {
			k = 2 + rng.Intn(2)
		}
		fanins := make([]int, k)
		for j := range fanins {
			fanins[j] = rng.Intn(len(n.Gates))
		}
		n.AddGate(t, fanins...)
	}
	n.AddPO("o", len(n.Gates)-1)
	n.AddPO("p", len(n.Gates)-1-rng.Intn(nGates/2+1))
	return n
}

// Property: Sweep and Strash preserve the network function.
func TestQuickSweepStrashPreserve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPIs := 3 + rng.Intn(3)
		n := randomNetwork(rng, nPIs, 5+rng.Intn(15))
		m := bdd.New(nPIs)
		before := n.ToBDDs(m)
		n.Sweep()
		n.Strash()
		n.Sweep()
		after := n.ToBDDs(m)
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: BLIF write/read round-trips the function.
func TestQuickBLIFRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPIs := 3 + rng.Intn(3)
		n := randomNetwork(rng, nPIs, 4+rng.Intn(10))
		// Name PIs uniquely for BLIF.
		for i, pi := range n.PIs {
			n.Gates[pi].Name = "in" + string(rune('a'+i))
		}
		var buf bytes.Buffer
		if err := n.WriteBLIF(&buf); err != nil {
			return false
		}
		back, err := ReadBLIF(&buf)
		if err != nil {
			return false
		}
		if len(back.PIs) != len(n.PIs) || len(back.POs) != len(n.POs) {
			return false
		}
		m := bdd.New(nPIs)
		a := n.ToBDDs(m)
		b := back.ToBDDs(m)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadBLIFConstAndComplement(t *testing.T) {
	src := `
.model c
.inputs a b
.outputs z k
# z = complement of a*b via 0-phase rows
.names a b z
11 0
.names k
1
.end
`
	n, err := ReadBLIF(bytes.NewBufferString(src))
	if err != nil {
		t.Fatal(err)
	}
	assign := cube.NewBitSet(2)
	assign.Set(0)
	assign.Set(1)
	out := n.Eval(assign)
	if out[0] != false || out[1] != true {
		t.Errorf("eval = %v, want [false true]", out)
	}
	assign2 := cube.NewBitSet(2)
	out2 := n.Eval(assign2)
	if out2[0] != true {
		t.Error("NAND(0,0) should be 1")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := buildFullAdder()
	c := n.Clone()
	c.Gates[3].Type = And
	if n.Gates[3].Type == And {
		t.Error("clone shares gate storage")
	}
}
