// Package network provides the multilevel Boolean gate network used by the
// synthesis flows: an in-memory netlist of primitive gates (AND, OR, XOR
// and friends), with topological traversal, 64-way parallel bit
// simulation, structural cleanup (sweep, constant propagation, structural
// hashing), cost metrics, BDD extraction, and BLIF text I/O.
//
// The pre-technology-mapping cost metric follows the paper's convention:
// circuits are measured in 2-input AND/OR gates, an XOR counting as three
// AND/OR gates (Example 1), inverters free, and "lits" = 2 × gate count.
package network

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/cube"
)

// GateType enumerates the primitive gate functions.
type GateType int

// Gate types. PI gates have no fanins; Const gates are nullary constants;
// Buf/Not are unary; the rest take one or more fanins.
const (
	PI GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
)

var typeNames = map[GateType]string{
	PI: "pi", Const0: "const0", Const1: "const1", Buf: "buf", Not: "not",
	And: "and", Or: "or", Nand: "nand", Nor: "nor", Xor: "xor", Xnor: "xnor",
}

func (t GateType) String() string { return typeNames[t] }

// Gate is one node of the network. Fanins refer to gate IDs.
type Gate struct {
	ID     int
	Type   GateType
	Fanins []int
	Name   string // set for PIs; optional elsewhere
}

// PO is a named primary output driven by a gate.
type PO struct {
	Name string
	Gate int
}

// Network is a multilevel combinational gate netlist.
type Network struct {
	Name  string
	Gates []Gate
	PIs   []int // gate IDs, in declaration order
	POs   []PO
}

// New returns an empty network.
func New(name string) *Network { return &Network{Name: name} }

// AddPI appends a primary input gate and returns its ID.
func (n *Network) AddPI(name string) int {
	id := len(n.Gates)
	n.Gates = append(n.Gates, Gate{ID: id, Type: PI, Name: name})
	n.PIs = append(n.PIs, id)
	return id
}

// AddGate appends a gate of the given type and returns its ID. Fanin IDs
// must already exist.
//
// The shape checks below are programmer invariants guarding API misuse
// at construction sites (all fanin IDs and arities are chosen by code,
// not data); parsers validate their input before calling AddGate.
func (n *Network) AddGate(t GateType, fanins ...int) int {
	for _, f := range fanins {
		if f < 0 || f >= len(n.Gates) {
			panic(fmt.Sprintf("network: fanin %d out of range", f))
		}
	}
	switch t {
	case PI:
		panic("network: use AddPI for primary inputs")
	case Const0, Const1:
		if len(fanins) != 0 {
			panic("network: constants take no fanins")
		}
	case Buf, Not:
		if len(fanins) != 1 {
			panic(fmt.Sprintf("network: %v takes exactly one fanin", t))
		}
	default:
		if len(fanins) == 0 {
			panic(fmt.Sprintf("network: %v needs fanins", t))
		}
	}
	id := len(n.Gates)
	n.Gates = append(n.Gates, Gate{ID: id, Type: t, Fanins: append([]int(nil), fanins...)})
	return id
}

// AddPO marks gate id as the primary output called name.
func (n *Network) AddPO(name string, id int) {
	n.POs = append(n.POs, PO{Name: name, Gate: id})
}

// NumPIs returns the number of primary inputs.
func (n *Network) NumPIs() int { return len(n.PIs) }

// NumPOs returns the number of primary outputs.
func (n *Network) NumPOs() int { return len(n.POs) }

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	out := &Network{Name: n.Name, PIs: append([]int(nil), n.PIs...), POs: append([]PO(nil), n.POs...)}
	out.Gates = make([]Gate, len(n.Gates))
	for i, g := range n.Gates {
		out.Gates[i] = Gate{ID: g.ID, Type: g.Type, Name: g.Name, Fanins: append([]int(nil), g.Fanins...)}
	}
	return out
}

// TopoOrder returns the IDs of all gates in the transitive fanin of the
// POs, fanins before fanouts. PIs are included.
func (n *Network) TopoOrder() []int {
	state := make([]int8, len(n.Gates)) // 0 unseen, 1 visiting, 2 done
	var order []int
	var visit func(int)
	visit = func(id int) {
		switch state[id] {
		case 2:
			return
		case 1:
			// Programmer invariant: AddGate only accepts already-existing
			// fanins, so a constructed network is acyclic by induction;
			// parsers (ReadBLIF) reject forward references and cycles.
			panic("network: combinational cycle")
		}
		state[id] = 1
		for _, f := range n.Gates[id].Fanins {
			visit(f)
		}
		state[id] = 2
		order = append(order, id)
	}
	for _, pi := range n.PIs {
		visit(pi)
	}
	for _, po := range n.POs {
		visit(po.Gate)
	}
	return order
}

// Fanouts returns, for each gate ID, the IDs of gates that list it as a
// fanin (POs are not included; see POsOf).
func (n *Network) Fanouts() [][]int {
	out := make([][]int, len(n.Gates))
	for _, g := range n.Gates {
		for _, f := range g.Fanins {
			out[f] = append(out[f], g.ID)
		}
	}
	return out
}

// EvalGateWord computes one gate's 64-pattern output word from its fanin
// words (exported for incremental simulators).
func EvalGateWord(t GateType, in []uint64) uint64 { return evalGate(t, in) }

// evalGate computes one gate's 64-pattern word from its fanin words.
func evalGate(t GateType, in []uint64) uint64 {
	switch t {
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And, Nand:
		v := ^uint64(0)
		for _, w := range in {
			v &= w
		}
		if t == Nand {
			v = ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, w := range in {
			v |= w
		}
		if t == Nor {
			v = ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, w := range in {
			v ^= w
		}
		if t == Xnor {
			v = ^v
		}
		return v
	}
	// Programmer invariant: GateType is a closed enum and PI is handled by
	// every caller before dispatching here.
	panic("network: evalGate on PI")
}

// Simulate runs 64 input patterns at once. piWords[i] holds the 64 values
// of the i-th PI (in PIs order). The returned slice holds one word per
// gate ID (gates outside the PO cone get computed too if reachable from
// PIs; unreachable gates are zero).
func (n *Network) Simulate(piWords []uint64) []uint64 {
	if len(piWords) != len(n.PIs) {
		// Programmer invariant: callers size piWords from n.PIs itself.
		panic("network: wrong number of PI words")
	}
	val := make([]uint64, len(n.Gates))
	piIdx := make(map[int]int, len(n.PIs))
	for i, id := range n.PIs {
		piIdx[id] = i
	}
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == PI {
			val[id] = piWords[piIdx[id]]
			continue
		}
		in := make([]uint64, len(g.Fanins))
		for i, f := range g.Fanins {
			in[i] = val[f]
		}
		val[id] = evalGate(g.Type, in)
	}
	return val
}

// Eval evaluates the network on a single assignment (bit i of assign = PI
// i's value) and returns one bool per PO.
func (n *Network) Eval(assign cube.BitSet) []bool {
	words := make([]uint64, len(n.PIs))
	for i := range n.PIs {
		if assign.Has(i) {
			words[i] = 1
		}
	}
	val := n.Simulate(words)
	out := make([]bool, len(n.POs))
	for i, po := range n.POs {
		out[i] = val[po.Gate]&1 != 0
	}
	return out
}

// Stats holds the paper's pre-mapping cost metrics.
type Stats struct {
	Gates2 int // equivalent 2-input AND/OR gate count (XOR = 3, inverters free)
	Lits   int // 2 × Gates2, the paper's "lits" column
	XORs   int // XOR/XNOR gates in the network (as entities)
	Total  int // gates of any type in the PO cone (excluding PIs)
}

// CollectStats computes the cost metrics over the PO cone.
func (n *Network) CollectStats() Stats {
	var s Stats
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		switch g.Type {
		case PI, Const0, Const1, Buf, Not:
			if g.Type != PI {
				s.Total++
			}
		case And, Or, Nand, Nor:
			s.Total++
			s.Gates2 += len(g.Fanins) - 1
		case Xor, Xnor:
			s.Total++
			s.XORs++
			s.Gates2 += 3 * (len(g.Fanins) - 1)
		}
	}
	s.Lits = 2 * s.Gates2
	return s
}

// Sweep simplifies the network structurally without changing its
// function: constants are propagated, single-input AND/OR/XOR collapse to
// buffers, buffer chains are bypassed, double negations cancel, and
// duplicate XOR fanins cancel pairwise. Gates outside the PO cone remain
// but are ignored by metrics. Returns the number of rewrites applied.
func (n *Network) Sweep() int {
	changed := 0
	// resolve follows Buf chains to the real driver.
	resolve := func(id int) int {
		for n.Gates[id].Type == Buf {
			id = n.Gates[id].Fanins[0]
		}
		return id
	}
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == PI || g.Type == Const0 || g.Type == Const1 {
			continue
		}
		for i, f := range g.Fanins {
			if r := resolve(f); r != f {
				g.Fanins[i] = r
				changed++
			}
		}
		switch g.Type {
		case Not:
			f := &n.Gates[g.Fanins[0]]
			switch f.Type {
			case Const0:
				g.Type, g.Fanins = Const1, nil
				changed++
			case Const1:
				g.Type, g.Fanins = Const0, nil
				changed++
			case Not:
				g.Type = Buf
				g.Fanins = []int{f.Fanins[0]}
				changed++
			}
		case And, Nand, Or, Nor:
			isAnd := g.Type == And || g.Type == Nand
			neg := g.Type == Nand || g.Type == Nor
			kept := g.Fanins[:0]
			killed := false
			seen := map[int]bool{}
			for _, f := range g.Fanins {
				ft := n.Gates[f].Type
				if isAnd && ft == Const1 || !isAnd && ft == Const0 {
					changed++
					continue // identity element
				}
				if isAnd && ft == Const0 || !isAnd && ft == Const1 {
					killed = true // dominating element
					break
				}
				if seen[f] {
					changed++
					continue // idempotent duplicate
				}
				seen[f] = true
				kept = append(kept, f)
			}
			if killed {
				if isAnd != neg { // And killed -> 0; Nor killed -> 0
					g.Type, g.Fanins = Const0, nil
				} else {
					g.Type, g.Fanins = Const1, nil
				}
				changed++
				continue
			}
			g.Fanins = kept
			if len(g.Fanins) == 0 {
				if isAnd != neg {
					g.Type, g.Fanins = Const1, nil
				} else {
					g.Type, g.Fanins = Const0, nil
				}
				changed++
			} else if len(g.Fanins) == 1 {
				if neg {
					g.Type = Not
				} else {
					g.Type = Buf
				}
				changed++
			}
		case Xor, Xnor:
			// Cancel duplicate fanins pairwise; absorb constants.
			invert := g.Type == Xnor
			count := map[int]int{}
			for _, f := range g.Fanins {
				ft := n.Gates[f].Type
				if ft == Const0 {
					changed++
					continue
				}
				if ft == Const1 {
					invert = !invert
					changed++
					continue
				}
				count[f]++
			}
			var kept []int
			for _, f := range g.Fanins {
				if count[f] <= 0 {
					continue
				}
				if count[f]%2 == 1 {
					kept = append(kept, f)
				} else {
					changed++
				}
				count[f] = 0
			}
			g.Fanins = kept
			switch len(g.Fanins) {
			case 0:
				if invert {
					g.Type, g.Fanins = Const1, nil
				} else {
					g.Type, g.Fanins = Const0, nil
				}
				changed++
			case 1:
				if invert {
					g.Type = Not
				} else {
					g.Type = Buf
				}
				changed++
			default:
				if invert {
					g.Type = Xnor
				} else {
					g.Type = Xor
				}
			}
		}
	}
	// Redirect POs through buffers.
	for i := range n.POs {
		if r := resolve(n.POs[i].Gate); r != n.POs[i].Gate {
			n.POs[i].Gate = r
			changed++
		}
	}
	return changed
}

// Strash merges structurally identical gates (same type, same multiset of
// fanins, commutativity respected) across the whole network, bottom-up.
// Returns the number of gates merged away.
func (n *Network) Strash() int {
	repl := make([]int, len(n.Gates))
	for i := range repl {
		repl[i] = i
	}
	seen := make(map[string]int)
	merged := 0
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == PI {
			continue
		}
		fins := make([]int, len(g.Fanins))
		for i, f := range g.Fanins {
			fins[i] = repl[f]
		}
		switch g.Type {
		case And, Or, Nand, Nor, Xor, Xnor:
			sort.Ints(fins)
		}
		g.Fanins = fins
		key := fmt.Sprintf("%d:%v", g.Type, fins)
		if prev, ok := seen[key]; ok {
			repl[id] = prev
			merged++
		} else {
			seen[key] = id
		}
	}
	for i := range n.Gates {
		for j, f := range n.Gates[i].Fanins {
			n.Gates[i].Fanins[j] = repl[f]
		}
	}
	for i := range n.POs {
		n.POs[i].Gate = repl[n.POs[i].Gate]
	}
	return merged
}

// ToBDDs builds the BDD of every PO over a manager with one variable per
// PI (in PIs order). Gates outside the PO cone are ignored.
func (n *Network) ToBDDs(m *bdd.Manager) []bdd.Ref {
	if m.NumVars() != len(n.PIs) {
		// Programmer invariant: callers allocate the manager from
		// NumPIs() of this network (or a network with the same inputs).
		panic("network: BDD manager size mismatch")
	}
	val := make([]bdd.Ref, len(n.Gates))
	piIdx := make(map[int]int, len(n.PIs))
	for i, id := range n.PIs {
		piIdx[id] = i
	}
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		switch g.Type {
		case PI:
			val[id] = m.Var(piIdx[id])
		case Const0:
			val[id] = bdd.Zero
		case Const1:
			val[id] = bdd.One
		case Buf:
			val[id] = val[g.Fanins[0]]
		case Not:
			val[id] = m.Not(val[g.Fanins[0]])
		case And, Nand:
			v := bdd.One
			for _, f := range g.Fanins {
				v = m.And(v, val[f])
			}
			if g.Type == Nand {
				v = m.Not(v)
			}
			val[id] = v
		case Or, Nor:
			v := bdd.Zero
			for _, f := range g.Fanins {
				v = m.Or(v, val[f])
			}
			if g.Type == Nor {
				v = m.Not(v)
			}
			val[id] = v
		case Xor, Xnor:
			v := bdd.Zero
			for _, f := range g.Fanins {
				v = m.Xor(v, val[f])
			}
			if g.Type == Xnor {
				v = m.Not(v)
			}
			val[id] = v
		}
	}
	out := make([]bdd.Ref, len(n.POs))
	for i, po := range n.POs {
		out[i] = val[po.Gate]
	}
	return out
}

// BalancedTree builds a balanced tree of 2-input gates of type t over the
// given operand gate IDs and returns the root ID. A single operand is
// returned unchanged.
func (n *Network) BalancedTree(t GateType, ids []int) int {
	if len(ids) == 0 {
		// Programmer invariant: callers handle the empty-operand case
		// (constant) before asking for a tree.
		panic("network: BalancedTree of nothing")
	}
	for len(ids) > 1 {
		var next []int
		for i := 0; i+1 < len(ids); i += 2 {
			next = append(next, n.AddGate(t, ids[i], ids[i+1]))
		}
		if len(ids)%2 == 1 {
			next = append(next, ids[len(ids)-1])
		}
		ids = next
	}
	return ids[0]
}

// String renders a compact description of the network.
func (n *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %s: %d PIs, %d POs, %d gates\n", n.Name, len(n.PIs), len(n.POs), len(n.Gates))
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == PI {
			fmt.Fprintf(&b, "  g%d = PI %s\n", id, g.Name)
		} else {
			fmt.Fprintf(&b, "  g%d = %v%v\n", id, g.Type, g.Fanins)
		}
	}
	for _, po := range n.POs {
		fmt.Fprintf(&b, "  PO %s = g%d\n", po.Name, po.Gate)
	}
	return b.String()
}
