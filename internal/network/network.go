// Package network provides the multilevel Boolean gate network used by the
// synthesis flows: an in-memory netlist of primitive gates (AND, OR, XOR
// and friends), with topological traversal, 64-way parallel bit
// simulation, structural cleanup (sweep, constant propagation, structural
// hashing), cost metrics, BDD extraction, and BLIF text I/O.
//
// The network is hash-consed at construction: AddGate canonicalizes its
// request (commutative fanins sorted, constants folded, idempotence and
// double-negation applied) and returns the existing gate on a structural
// hit, so an equivalent (type, fanins) gate is created exactly once — the
// same unique-table discipline package bdd applies to decision-diagram
// nodes. Strash and Sweep remain as thin repair passes for networks that
// were mutated in place (redundancy removal, sweeps, deserialization
// followed by editing). See DESIGN.md §12 for the invariants.
//
// The pre-technology-mapping cost metric follows the paper's convention:
// circuits are measured in 2-input AND/OR gates, an XOR counting as three
// AND/OR gates (Example 1), inverters free, and "lits" = 2 × gate count.
package network

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/cube"
)

// GateType enumerates the primitive gate functions.
type GateType int

// Gate types. PI gates have no fanins; Const gates are nullary constants;
// Buf/Not are unary; the rest take one or more fanins.
const (
	PI GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
)

var typeNames = map[GateType]string{
	PI: "pi", Const0: "const0", Const1: "const1", Buf: "buf", Not: "not",
	And: "and", Or: "or", Nand: "nand", Nor: "nor", Xor: "xor", Xnor: "xnor",
}

func (t GateType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	// Out-of-range values (corrupted input, future enum members) must
	// still print something useful in degradation reports and BLIF error
	// paths rather than an empty string.
	return fmt.Sprintf("gatetype(%d)", int(t))
}

// Gate is one node of the network. Fanins refer to gate IDs.
type Gate struct {
	ID     int
	Type   GateType
	Fanins []int
	Name   string // set for PIs; optional elsewhere
}

// PO is a named primary output driven by a gate.
type PO struct {
	Name string
	Gate int
}

// Network is a multilevel combinational gate netlist.
type Network struct {
	Name  string
	Gates []Gate
	PIs   []int // gate IDs, in declaration order
	POs   []PO

	// strash is the hash-consing table: canonical (type, fanins) hash →
	// candidate gate IDs. Entries are verified against the gate's current
	// contents on lookup, so a table left stale by an in-place mutation
	// (Sweep, redundancy removal) can only miss, never alias the wrong
	// gate. nil means "rebuild lazily on next use" — the zero value, a
	// Clone, or a struct-literal network all work unchanged.
	strash map[uint64][]int
}

// New returns an empty network.
func New(name string) *Network { return &Network{Name: name} }

// AddPI appends a primary input gate and returns its ID. PIs are never
// hash-consed: each declaration is a distinct input.
func (n *Network) AddPI(name string) int {
	id := len(n.Gates)
	n.Gates = append(n.Gates, Gate{ID: id, Type: PI, Name: name})
	n.PIs = append(n.PIs, id)
	return id
}

// strashKey hashes a canonical (type, fanins) pair with FNV-1a over the
// raw integers — no per-gate string formatting or allocation.
func strashKey(t GateType, fanins []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(t))
	for _, f := range fanins {
		mix(uint64(f))
	}
	return h
}

// table returns the strash map, rebuilding it from the current gate list
// if an in-place mutation invalidated it (or it was never built).
func (n *Network) table() map[uint64][]int {
	if n.strash == nil {
		n.strash = make(map[uint64][]int, len(n.Gates))
		for i := range n.Gates {
			g := &n.Gates[i]
			if g.Type == PI {
				continue
			}
			k := strashKey(g.Type, g.Fanins)
			n.strash[k] = append(n.strash[k], g.ID)
		}
	}
	return n.strash
}

// lookupStrash returns an existing gate whose *current* contents equal
// the canonical (t, fanins), or -1. Verifying against the live gate (not
// what was inserted) makes stale entries harmless.
func (n *Network) lookupStrash(t GateType, fanins []int) int {
	for _, id := range n.table()[strashKey(t, fanins)] {
		g := &n.Gates[id]
		if g.Type != t || len(g.Fanins) != len(fanins) {
			continue
		}
		match := true
		for i, f := range g.Fanins {
			if f != fanins[i] {
				match = false
				break
			}
		}
		if match {
			return id
		}
	}
	return -1
}

func (n *Network) insertStrash(id int) {
	g := &n.Gates[id]
	k := strashKey(g.Type, g.Fanins)
	n.strash[k] = append(n.strash[k], id)
}

// canonGate rewrites a requested gate into canonical form. It returns
// either a collapse onto an existing gate (collapse >= 0, the other two
// results unset), or the canonical (type, fanins) to build: commutative
// fanins sorted ascending, constants folded, duplicate fanins collapsed
// (And) or cancelled pairwise (Xor), double negation eliminated, and
// Xor/Xnor polarity normalized. cf never aliases the caller's slice.
func (n *Network) canonGate(t GateType, fanins []int) (ct GateType, cf []int, collapse int) {
	typeOf := func(id int) GateType { return n.Gates[id].Type }
	// Look through buffer chains first, so logic behind a Buf (left by
	// in-place rewrites or BLIF round-trips) canonicalizes to the same
	// form as logic on the raw driver.
	for i, f := range fanins {
		if typeOf(f) != Buf {
			continue
		}
		rf := make([]int, len(fanins))
		copy(rf, fanins[:i])
		for j := i; j < len(fanins); j++ {
			g := fanins[j]
			for typeOf(g) == Buf {
				g = n.Gates[g].Fanins[0]
			}
			rf[j] = g
		}
		fanins = rf
		break
	}
	switch t {
	case Const0, Const1:
		return t, nil, -1
	case Buf:
		return 0, nil, fanins[0]
	case Not:
		switch f := fanins[0]; typeOf(f) {
		case Const0:
			return Const1, nil, -1
		case Const1:
			return Const0, nil, -1
		case Not:
			return 0, nil, n.Gates[f].Fanins[0]
		default:
			return Not, []int{f}, -1
		}
	case And, Nand, Or, Nor:
		isAnd := t == And || t == Nand
		neg := t == Nand || t == Nor
		kept := make([]int, 0, len(fanins))
		killed := false
		for _, f := range fanins {
			ft := typeOf(f)
			if isAnd && ft == Const1 || !isAnd && ft == Const0 {
				continue // identity element
			}
			if isAnd && ft == Const0 || !isAnd && ft == Const1 {
				killed = true // dominating element
				break
			}
			dup := false
			for _, k := range kept {
				if k == f {
					dup = true
					break
				}
			}
			if !dup {
				kept = append(kept, f)
			}
		}
		if killed {
			if isAnd != neg { // And→0, Nor→0
				return Const0, nil, -1
			}
			return Const1, nil, -1
		}
		switch len(kept) {
		case 0: // all identity elements: And()→1, Or()→0, negated forms flip
			if isAnd != neg {
				return Const1, nil, -1
			}
			return Const0, nil, -1
		case 1:
			if neg {
				return n.canonGate(Not, kept)
			}
			return 0, nil, kept[0]
		}
		sort.Ints(kept)
		return t, kept, -1
	case Xor, Xnor:
		invert := t == Xnor
		count := make(map[int]int, len(fanins))
		for _, f := range fanins {
			switch typeOf(f) {
			case Const0:
				// identity
			case Const1:
				invert = !invert
			default:
				count[f]++
			}
		}
		kept := make([]int, 0, len(count))
		for f, c := range count {
			if c%2 == 1 {
				kept = append(kept, f)
			}
		}
		sort.Ints(kept)
		switch len(kept) {
		case 0:
			if invert {
				return Const1, nil, -1
			}
			return Const0, nil, -1
		case 1:
			if invert {
				return n.canonGate(Not, kept)
			}
			return 0, nil, kept[0]
		}
		if invert {
			return Xnor, kept, -1
		}
		return Xor, kept, -1
	}
	panic(fmt.Sprintf("network: canonGate on %v", t))
}

// AddGate returns a gate computing the given function of the fanins,
// creating it only if no structurally identical gate exists. The request
// is first canonicalized — commutative fanins sorted, constants folded,
// And(a,a)→a, Xor(a,a)→0, Not(Not(a))→a, Buf(a)→a — so the returned ID
// may be an existing gate (possibly one of the fanins themselves) and
// the network never grows two gates with the same canonical form.
//
// The shape checks below are programmer invariants guarding API misuse
// at construction sites (all fanin IDs and arities are chosen by code,
// not data); parsers validate their input before calling AddGate.
func (n *Network) AddGate(t GateType, fanins ...int) int {
	for _, f := range fanins {
		if f < 0 || f >= len(n.Gates) {
			panic(fmt.Sprintf("network: fanin %d out of range", f))
		}
	}
	switch t {
	case PI:
		panic("network: use AddPI for primary inputs")
	case Const0, Const1:
		if len(fanins) != 0 {
			panic("network: constants take no fanins")
		}
	case Buf, Not:
		if len(fanins) != 1 {
			panic(fmt.Sprintf("network: %v takes exactly one fanin", t))
		}
	default:
		if len(fanins) == 0 {
			panic(fmt.Sprintf("network: %v needs fanins", t))
		}
	}
	ct, cf, collapse := n.canonGate(t, fanins)
	if collapse >= 0 {
		return collapse
	}
	if id := n.lookupStrash(ct, cf); id >= 0 {
		return id
	}
	id := len(n.Gates)
	n.Gates = append(n.Gates, Gate{ID: id, Type: ct, Fanins: cf})
	n.insertStrash(id)
	return id
}

// FindGate reports whether a gate computing the given function already
// exists, without creating one. The request is canonicalized exactly as
// AddGate would, so FindGate(t, f...) succeeds iff AddGate(t, f...)
// would return an existing ID.
func (n *Network) FindGate(t GateType, fanins ...int) (int, bool) {
	ct, cf, collapse := n.canonGate(t, fanins)
	if collapse >= 0 {
		return collapse, true
	}
	if id := n.lookupStrash(ct, cf); id >= 0 {
		return id, true
	}
	return -1, false
}

// AddPO marks gate id as the primary output called name.
func (n *Network) AddPO(name string, id int) {
	n.POs = append(n.POs, PO{Name: name, Gate: id})
}

// NumPIs returns the number of primary inputs.
func (n *Network) NumPIs() int { return len(n.PIs) }

// NumPOs returns the number of primary outputs.
func (n *Network) NumPOs() int { return len(n.POs) }

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	out := &Network{Name: n.Name, PIs: append([]int(nil), n.PIs...), POs: append([]PO(nil), n.POs...)}
	out.Gates = make([]Gate, len(n.Gates))
	for i, g := range n.Gates {
		out.Gates[i] = Gate{ID: g.ID, Type: g.Type, Name: g.Name, Fanins: append([]int(nil), g.Fanins...)}
	}
	return out
}

// ExtractCone returns a new network with the same primary inputs (same
// order, same names) and exactly one primary output: a structural copy
// of output po's cone, rebuilt through the hash-consing constructor.
// Every PI is kept whether or not the cone supports it, so cone results
// stay index-compatible with the parent network for merging and
// verification. The receiver is only read (the consing table of the new
// network is private to it), so concurrent extractions from one parent
// are safe.
func (n *Network) ExtractCone(po int) *Network {
	out := New(fmt.Sprintf("%s_cone%d", n.Name, po))
	memo := make(map[int]int, len(n.PIs)*2)
	for _, pi := range n.PIs {
		memo[pi] = out.AddPI(n.Gates[pi].Name)
	}
	var copyGate func(id int) int
	copyGate = func(id int) int {
		if g, ok := memo[id]; ok {
			return g
		}
		g := &n.Gates[id]
		fan := make([]int, len(g.Fanins))
		for i, f := range g.Fanins {
			fan[i] = copyGate(f)
		}
		ng := out.AddGate(g.Type, fan...)
		memo[id] = ng
		return ng
	}
	p := n.POs[po]
	out.AddPO(p.Name, copyGate(p.Gate))
	return out
}

// TopoOrder returns the IDs of all gates in the transitive fanin of the
// POs, fanins before fanouts. PIs are included.
func (n *Network) TopoOrder() []int {
	state := make([]int8, len(n.Gates)) // 0 unseen, 1 visiting, 2 done
	var order []int
	var visit func(int)
	visit = func(id int) {
		switch state[id] {
		case 2:
			return
		case 1:
			// Programmer invariant: AddGate only accepts already-existing
			// fanins, so a constructed network is acyclic by induction;
			// parsers (ReadBLIF) reject forward references and cycles.
			panic("network: combinational cycle")
		}
		state[id] = 1
		for _, f := range n.Gates[id].Fanins {
			visit(f)
		}
		state[id] = 2
		order = append(order, id)
	}
	for _, pi := range n.PIs {
		visit(pi)
	}
	for _, po := range n.POs {
		visit(po.Gate)
	}
	return order
}

// Fanouts returns, for each gate ID, the IDs of gates that list it as a
// fanin (POs are not included; see POsOf).
func (n *Network) Fanouts() [][]int {
	out := make([][]int, len(n.Gates))
	for _, g := range n.Gates {
		for _, f := range g.Fanins {
			out[f] = append(out[f], g.ID)
		}
	}
	return out
}

// EvalGateWord computes one gate's 64-pattern output word from its fanin
// words (exported for incremental simulators).
func EvalGateWord(t GateType, in []uint64) uint64 { return evalGate(t, in) }

// evalGate computes one gate's 64-pattern word from its fanin words.
func evalGate(t GateType, in []uint64) uint64 {
	switch t {
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And, Nand:
		v := ^uint64(0)
		for _, w := range in {
			v &= w
		}
		if t == Nand {
			v = ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, w := range in {
			v |= w
		}
		if t == Nor {
			v = ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, w := range in {
			v ^= w
		}
		if t == Xnor {
			v = ^v
		}
		return v
	}
	// Programmer invariant: GateType is a closed enum and PI is handled by
	// every caller before dispatching here.
	panic("network: evalGate on PI")
}

// Simulate runs 64 input patterns at once. piWords[i] holds the 64 values
// of the i-th PI (in PIs order). The returned slice holds one word per
// gate ID (gates outside the PO cone get computed too if reachable from
// PIs; unreachable gates are zero).
func (n *Network) Simulate(piWords []uint64) []uint64 {
	if len(piWords) != len(n.PIs) {
		// Programmer invariant: callers size piWords from n.PIs itself.
		panic("network: wrong number of PI words")
	}
	val := make([]uint64, len(n.Gates))
	piIdx := make(map[int]int, len(n.PIs))
	for i, id := range n.PIs {
		piIdx[id] = i
	}
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == PI {
			val[id] = piWords[piIdx[id]]
			continue
		}
		in := make([]uint64, len(g.Fanins))
		for i, f := range g.Fanins {
			in[i] = val[f]
		}
		val[id] = evalGate(g.Type, in)
	}
	return val
}

// Eval evaluates the network on a single assignment (bit i of assign = PI
// i's value) and returns one bool per PO.
func (n *Network) Eval(assign cube.BitSet) []bool {
	words := make([]uint64, len(n.PIs))
	for i := range n.PIs {
		if assign.Has(i) {
			words[i] = 1
		}
	}
	val := n.Simulate(words)
	out := make([]bool, len(n.POs))
	for i, po := range n.POs {
		out[i] = val[po.Gate]&1 != 0
	}
	return out
}

// Stats holds the paper's pre-mapping cost metrics.
type Stats struct {
	Gates2 int // equivalent 2-input AND/OR gate count (XOR = 3, inverters free)
	Lits   int // 2 × Gates2, the paper's "lits" column
	XORs   int // XOR/XNOR gates in the network (as entities)
	Total  int // gates of any type in the PO cone (excluding PIs)
}

// CollectStats computes the cost metrics over the PO cone.
func (n *Network) CollectStats() Stats {
	var s Stats
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		switch g.Type {
		case PI, Const0, Const1, Buf, Not:
			if g.Type != PI {
				s.Total++
			}
		case And, Or, Nand, Nor:
			s.Total++
			s.Gates2 += len(g.Fanins) - 1
		case Xor, Xnor:
			s.Total++
			s.XORs++
			s.Gates2 += 3 * (len(g.Fanins) - 1)
		}
	}
	s.Lits = 2 * s.Gates2
	return s
}

// Sweep simplifies the network structurally without changing its
// function: constants are propagated, single-input AND/OR/XOR collapse to
// buffers, buffer chains are bypassed, double negations cancel, and
// duplicate XOR fanins cancel pairwise. Gates outside the PO cone remain
// but are ignored by metrics. Returns the number of rewrites applied.
func (n *Network) Sweep() int {
	changed := 0
	// resolve follows Buf chains to the real driver.
	resolve := func(id int) int {
		for n.Gates[id].Type == Buf {
			id = n.Gates[id].Fanins[0]
		}
		return id
	}
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == PI || g.Type == Const0 || g.Type == Const1 {
			continue
		}
		for i, f := range g.Fanins {
			if r := resolve(f); r != f {
				g.Fanins[i] = r
				changed++
			}
		}
		switch g.Type {
		case Not:
			f := &n.Gates[g.Fanins[0]]
			switch f.Type {
			case Const0:
				g.Type, g.Fanins = Const1, nil
				changed++
			case Const1:
				g.Type, g.Fanins = Const0, nil
				changed++
			case Not:
				g.Type = Buf
				g.Fanins = []int{f.Fanins[0]}
				changed++
			}
		case And, Nand, Or, Nor:
			isAnd := g.Type == And || g.Type == Nand
			neg := g.Type == Nand || g.Type == Nor
			kept := g.Fanins[:0]
			killed := false
			seen := map[int]bool{}
			for _, f := range g.Fanins {
				ft := n.Gates[f].Type
				if isAnd && ft == Const1 || !isAnd && ft == Const0 {
					changed++
					continue // identity element
				}
				if isAnd && ft == Const0 || !isAnd && ft == Const1 {
					killed = true // dominating element
					break
				}
				if seen[f] {
					changed++
					continue // idempotent duplicate
				}
				seen[f] = true
				kept = append(kept, f)
			}
			if killed {
				if isAnd != neg { // And killed -> 0; Nor killed -> 0
					g.Type, g.Fanins = Const0, nil
				} else {
					g.Type, g.Fanins = Const1, nil
				}
				changed++
				continue
			}
			g.Fanins = kept
			if len(g.Fanins) == 0 {
				if isAnd != neg {
					g.Type, g.Fanins = Const1, nil
				} else {
					g.Type, g.Fanins = Const0, nil
				}
				changed++
			} else if len(g.Fanins) == 1 {
				if neg {
					g.Type = Not
				} else {
					g.Type = Buf
				}
				changed++
			}
		case Xor, Xnor:
			// Cancel duplicate fanins pairwise; absorb constants.
			invert := g.Type == Xnor
			count := map[int]int{}
			for _, f := range g.Fanins {
				ft := n.Gates[f].Type
				if ft == Const0 {
					changed++
					continue
				}
				if ft == Const1 {
					invert = !invert
					changed++
					continue
				}
				count[f]++
			}
			var kept []int
			for _, f := range g.Fanins {
				if count[f] <= 0 {
					continue
				}
				if count[f]%2 == 1 {
					kept = append(kept, f)
				} else {
					changed++
				}
				count[f] = 0
			}
			g.Fanins = kept
			switch len(g.Fanins) {
			case 0:
				if invert {
					g.Type, g.Fanins = Const1, nil
				} else {
					g.Type, g.Fanins = Const0, nil
				}
				changed++
			case 1:
				if invert {
					g.Type = Not
				} else {
					g.Type = Buf
				}
				changed++
			default:
				if invert {
					g.Type = Xnor
				} else {
					g.Type = Xor
				}
			}
		}
	}
	// Redirect POs through buffers.
	for i := range n.POs {
		if r := resolve(n.POs[i].Gate); r != n.POs[i].Gate {
			n.POs[i].Gate = r
			changed++
		}
	}
	if changed > 0 {
		n.strash = nil // in-place rewrites; rebuild the table lazily
	}
	return changed
}

// Strash re-canonicalizes and merges structurally identical gates (same
// type, same set of fanins, commutativity respected) across the whole
// network, bottom-up. Hash-consed construction makes this a no-op on a
// freshly built network; it remains the repair pass for networks
// deserialized from BLIF or mutated in place (redundancy removal,
// functional merging). Unlike the constructors it also simplifies gates
// whose fanins *become* equal or constant after a replacement —
// And(a,a)→a, Xor(a,a)→0 — and looks through Buf/Not chains, so
// equivalent logic hidden behind a buffer merges too. Returns the number
// of gates merged or collapsed away.
func (n *Network) Strash() int {
	repl := make([]int, len(n.Gates))
	for i := range repl {
		repl[i] = i
	}
	table := make(map[uint64][]int, len(n.Gates))
	lookup := func(t GateType, fanins []int) int {
		for _, id := range table[strashKey(t, fanins)] {
			g := &n.Gates[id]
			if g.Type != t || len(g.Fanins) != len(fanins) {
				continue
			}
			match := true
			for i, f := range g.Fanins {
				if f != fanins[i] {
					match = false
					break
				}
			}
			if match {
				return id
			}
		}
		return -1
	}
	merged := 0
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == PI {
			continue
		}
		fins := make([]int, len(g.Fanins))
		for i, f := range g.Fanins {
			fins[i] = repl[f]
		}
		ct, cf, collapse := n.canonGate(g.Type, fins)
		if collapse >= 0 {
			// The gate reduced to one of its (replaced) fanins: Buf, a
			// single surviving And/Or fanin, And(a,a), a cancelled
			// double negation. Its fanout will be rewired past it.
			repl[id] = collapse
			merged++
			continue
		}
		g.Type, g.Fanins = ct, cf
		if prev := lookup(ct, cf); prev >= 0 {
			repl[id] = prev
			merged++
		} else {
			k := strashKey(ct, cf)
			table[k] = append(table[k], id)
		}
	}
	for i := range n.Gates {
		for j, f := range n.Gates[i].Fanins {
			n.Gates[i].Fanins[j] = repl[f]
		}
	}
	for i := range n.POs {
		n.POs[i].Gate = repl[n.POs[i].Gate]
	}
	// The local table indexed the canonical survivors, but the fanin
	// rewrite loop above may have edited merged-away gates' fanin slices;
	// those stale entries verify-and-miss, so the table stays usable.
	n.strash = table
	return merged
}

// ElimInvPairs cancels inverter pairs: every fanin (and PO) reference is
// resolved through chains of Not gates two at a time (and through Bufs),
// so Not(Not(x)) consumers read x directly. The intermediate inverters
// go dead and are removed by Compact. Returns the number of references
// rewritten.
func (n *Network) ElimInvPairs() int {
	// resolve follows Buf edges and cancels Not-Not pairs (with Bufs
	// allowed between the two inverters) until a fixed point. Chains are
	// short in practice; memoization isn't worth it. No gates are
	// created — an odd-length inverter chain resolves to its deepest
	// surviving Not.
	var resolve func(int) int
	resolve = func(id int) int {
		g := &n.Gates[id]
		switch g.Type {
		case Buf:
			return resolve(g.Fanins[0])
		case Not:
			f := g.Fanins[0]
			for n.Gates[f].Type == Buf {
				f = n.Gates[f].Fanins[0]
			}
			if n.Gates[f].Type == Not {
				return resolve(n.Gates[f].Fanins[0])
			}
		}
		return id
	}
	changed := 0
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == PI || g.Type == Const0 || g.Type == Const1 {
			continue
		}
		for i, f := range g.Fanins {
			if r := resolve(f); r != f {
				g.Fanins[i] = r
				changed++
			}
		}
	}
	for i := range n.POs {
		if r := resolve(n.POs[i].Gate); r != n.POs[i].Gate {
			n.POs[i].Gate = r
			changed++
		}
	}
	if changed > 0 {
		n.strash = nil
	}
	return changed
}

// RebalanceXorTrees flattens chains of single-fanout XOR gates into one
// multi-operand XOR and rebuilds it as a balanced tree of consed 2-input
// gates. Cancellation across the whole chain (the same leaf reaching the
// root twice) falls out of the canonicalization, so a rebalanced tree
// never costs more gates than the chain it replaces. The root gate's ID
// is preserved; interior chain gates go dead (Compact removes them).
// Returns the number of trees rebuilt.
//
// Run this only after redundancy analysis: the Section 4 XOR pairing in
// factor deliberately shapes its trees so redund finds reducible gates.
func (n *Network) RebalanceXorTrees() int {
	fanoutCount := make([]int, len(n.Gates))
	poRef := make([]bool, len(n.Gates))
	for _, g := range n.Gates {
		for _, f := range g.Fanins {
			fanoutCount[f]++
		}
	}
	for _, po := range n.POs {
		poRef[po.Gate] = true
	}
	// internal: an XOR absorbed into its sole consumer's operand list.
	internal := func(id int) bool {
		g := &n.Gates[id]
		return (g.Type == Xor || g.Type == Xnor) && fanoutCount[id] == 1 && !poRef[id]
	}
	rebuilt := 0
	for _, id := range n.TopoOrder() { // snapshot: new gates appended below aren't revisited
		g := &n.Gates[id]
		if g.Type != Xor && g.Type != Xnor {
			continue
		}
		if internal(id) {
			continue // will be absorbed into its consumer's tree
		}
		// Collect leaves by expanding internal XOR fanins. Xnor flips
		// the collected polarity.
		invert := g.Type == Xnor
		var leaves []int
		var expand func(int)
		expand = func(f int) {
			if internal(f) {
				fg := &n.Gates[f]
				if fg.Type == Xnor {
					invert = !invert
				}
				for _, ff := range fg.Fanins {
					expand(ff)
				}
				return
			}
			leaves = append(leaves, f)
		}
		for _, f := range g.Fanins {
			expand(f)
		}
		if len(leaves) == len(g.Fanins) && (g.Type == Xnor) == invert {
			continue // already flat
		}
		t := Xor
		if invert {
			t = Xnor
		}
		ct, cf, collapse := n.canonGate(t, leaves)
		switch {
		case collapse >= 0:
			g.Type, g.Fanins = Buf, []int{collapse}
		case len(cf) == 0: // constant
			g.Type, g.Fanins = ct, nil
		case ct == Not:
			g.Type, g.Fanins = Not, cf
		default:
			// Build the balanced tree with consed 2-input XORs, keeping
			// the root's ID: pair down to two operands, then write the
			// final 2-input gate into the root in place. Reused existing
			// gates are sound here: their cones contain only leaves (or
			// gates below them), never this root.
			ids := cf
			for len(ids) > 2 {
				var next []int
				for i := 0; i+1 < len(ids); i += 2 {
					next = append(next, n.AddGate(Xor, ids[i], ids[i+1]))
				}
				if len(ids)%2 == 1 {
					next = append(next, ids[len(ids)-1])
				}
				ids = next
			}
			g = &n.Gates[id] // re-take: AddGate may have grown the slice
			g.Type, g.Fanins = ct, ids
		}
		rebuilt++
	}
	if rebuilt > 0 {
		n.strash = nil
	}
	return rebuilt
}

// Compact drops every gate outside the PIs ∪ PO-cone set and renumbers
// the survivors densely (topological order: fanins before fanouts, PIs
// in declaration order first among themselves). Strash and the cleanup
// passes leave merged-away gates behind; Compact reclaims them so
// len(Gates) again reflects live logic. Returns the number of gates
// removed.
func (n *Network) Compact() int {
	order := n.TopoOrder()
	if len(order) == len(n.Gates) {
		return 0
	}
	remap := make([]int, len(n.Gates))
	for i := range remap {
		remap[i] = -1
	}
	gates := make([]Gate, 0, len(order))
	for _, id := range order {
		g := n.Gates[id]
		newID := len(gates)
		remap[id] = newID
		fins := make([]int, len(g.Fanins))
		for i, f := range g.Fanins {
			fins[i] = remap[f] // fanins precede fanouts in topo order
		}
		gates = append(gates, Gate{ID: newID, Type: g.Type, Fanins: fins, Name: g.Name})
	}
	removed := len(n.Gates) - len(gates)
	n.Gates = gates
	for i, pi := range n.PIs {
		n.PIs[i] = remap[pi]
	}
	for i := range n.POs {
		n.POs[i].Gate = remap[n.POs[i].Gate]
	}
	n.strash = nil
	return removed
}

// Canonical returns a fresh, fully hash-consed copy of the network:
// every cone gate is re-added through AddGate in topological order, so
// the result is compact (no dead gates), canonically ordered, and free
// of buffers, double negations, and duplicate structure — regardless of
// how the receiver was built or mutated. PI/PO names and order are
// preserved. The receiver is not modified.
func (n *Network) Canonical() *Network {
	out := New(n.Name)
	remap := make([]int, len(n.Gates))
	for i := range remap {
		remap[i] = -1
	}
	for _, pi := range n.PIs {
		remap[pi] = out.AddPI(n.Gates[pi].Name)
	}
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == PI {
			continue
		}
		fins := make([]int, len(g.Fanins))
		for i, f := range g.Fanins {
			fins[i] = remap[f]
		}
		remap[id] = out.AddGate(g.Type, fins...)
	}
	for _, po := range n.POs {
		out.AddPO(po.Name, remap[po.Gate])
	}
	// A collapse (e.g. a rebuilt Not(Not(x))) can strand the intermediate
	// gate it was built from; compact so the result is dead-gate-free.
	out.Compact()
	return out
}

// ToBDDs builds the BDD of every PO over a manager with one variable per
// PI (in PIs order). Gates outside the PO cone are ignored.
func (n *Network) ToBDDs(m *bdd.Manager) []bdd.Ref {
	if m.NumVars() != len(n.PIs) {
		// Programmer invariant: callers allocate the manager from
		// NumPIs() of this network (or a network with the same inputs).
		panic("network: BDD manager size mismatch")
	}
	val := make([]bdd.Ref, len(n.Gates))
	piIdx := make(map[int]int, len(n.PIs))
	for i, id := range n.PIs {
		piIdx[id] = i
	}
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		switch g.Type {
		case PI:
			val[id] = m.Var(piIdx[id])
		case Const0:
			val[id] = bdd.Zero
		case Const1:
			val[id] = bdd.One
		case Buf:
			val[id] = val[g.Fanins[0]]
		case Not:
			val[id] = m.Not(val[g.Fanins[0]])
		case And, Nand:
			v := bdd.One
			for _, f := range g.Fanins {
				v = m.And(v, val[f])
			}
			if g.Type == Nand {
				v = m.Not(v)
			}
			val[id] = v
		case Or, Nor:
			v := bdd.Zero
			for _, f := range g.Fanins {
				v = m.Or(v, val[f])
			}
			if g.Type == Nor {
				v = m.Not(v)
			}
			val[id] = v
		case Xor, Xnor:
			v := bdd.Zero
			for _, f := range g.Fanins {
				v = m.Xor(v, val[f])
			}
			if g.Type == Xnor {
				v = m.Not(v)
			}
			val[id] = v
		}
	}
	out := make([]bdd.Ref, len(n.POs))
	for i, po := range n.POs {
		out[i] = val[po.Gate]
	}
	return out
}

// BalancedTree builds a balanced tree of 2-input gates of type t over the
// given operand gate IDs and returns the root ID. A single operand is
// returned unchanged.
func (n *Network) BalancedTree(t GateType, ids []int) int {
	if len(ids) == 0 {
		// Programmer invariant: callers handle the empty-operand case
		// (constant) before asking for a tree.
		panic("network: BalancedTree of nothing")
	}
	for len(ids) > 1 {
		var next []int
		for i := 0; i+1 < len(ids); i += 2 {
			next = append(next, n.AddGate(t, ids[i], ids[i+1]))
		}
		if len(ids)%2 == 1 {
			next = append(next, ids[len(ids)-1])
		}
		ids = next
	}
	return ids[0]
}

// String renders a compact description of the network.
func (n *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %s: %d PIs, %d POs, %d gates\n", n.Name, len(n.PIs), len(n.POs), len(n.Gates))
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == PI {
			fmt.Fprintf(&b, "  g%d = PI %s\n", id, g.Name)
		} else {
			fmt.Fprintf(&b, "  g%d = %v%v\n", id, g.Type, g.Fanins)
		}
	}
	for _, po := range n.POs {
		fmt.Fprintf(&b, "  PO %s = g%d\n", po.Name, po.Gate)
	}
	return b.String()
}
