package network

import (
	"regexp"
	"strings"
	"testing"
)

// plainName matches signal names that WriteBLIF emits verbatim and that
// cannot collide with the generated n<id> names of unnamed gates.
var plainName = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

func roundTripSafe(n *Network) bool {
	for _, g := range n.Gates {
		if g.Name != "" && (!plainName.MatchString(g.Name) || strings.HasPrefix(g.Name, "n")) {
			return false
		}
	}
	for _, po := range n.POs {
		if !plainName.MatchString(po.Name) || strings.HasPrefix(po.Name, "n") {
			return false
		}
	}
	return true
}

// FuzzReadBLIF checks that arbitrary input never panics or hangs the BLIF
// reader, that every accepted network is structurally sound (acyclic, all
// POs resolved), and that writing and re-reading preserves the function.
func FuzzReadBLIF(f *testing.F) {
	seeds := []string{
		"",
		".model top\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n",
		".model m\n.inputs a b c\n.outputs f g\n" +
			".names a b t\n1- 1\n-1 1\n.names t c f\n11 1\n.names c g\n0 1\n.end\n",
		".inputs a\n.outputs f\n.names a f\n0 0\n.end\n",
		".inputs a\n.outputs f\n.names f\n1\n.end\n",
		".inputs a\n.outputs f\n.names f\n.end\n",
		".model x\n.inputs a \\\nb\n.outputs f\n.names a b f\n00 1\n.end\n",
		".inputs a\n.outputs f\n.names b f\n1 1\n.end\n",
		".inputs a\n.outputs f\n.names f f\n1 1\n.end\n",
		".latch a b\n",
		".names\n",
		".inputs a\n.outputs f\n.names a f\nxx 1\n.end\n",
		"# comment\n.model c\n.inputs a\n.outputs f\n.names a f\n1 1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := ReadBLIF(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		// Accepted networks must be structurally sound: TopoOrder and
		// Simulate exercise the acyclicity and wiring invariants.
		order := n.TopoOrder()
		_ = order
		words := make([]uint64, len(n.PIs))
		for i := range words {
			words[i] = 0xAAAA5555CCCC3333 * uint64(i+1)
		}
		before := n.Simulate(words)
		if !roundTripSafe(n) {
			return
		}
		var buf strings.Builder
		if err := n.WriteBLIF(&buf); err != nil {
			t.Fatalf("WriteBLIF failed on accepted network: %v", err)
		}
		m, err := ReadBLIF(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-read of written BLIF failed: %v\n%s", err, buf.String())
		}
		if len(m.PIs) != len(n.PIs) || len(m.POs) != len(n.POs) {
			t.Fatalf("round trip changed interface: %d/%d PIs, %d/%d POs",
				len(n.PIs), len(m.PIs), len(n.POs), len(m.POs))
		}
		after := m.Simulate(words)
		for i := range n.POs {
			if before[n.POs[i].Gate] != after[m.POs[i].Gate] {
				t.Fatalf("round trip changed function of PO %s", n.POs[i].Name)
			}
		}
	})
}
