package network

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteBLIF renders the network in Berkeley BLIF format. Multi-input XOR
// gates are emitted with full parity covers (they are small in practice);
// other gates map directly onto .names covers.
func (n *Network) WriteBLIF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := n.Name
	if name == "" {
		name = "top"
	}
	fmt.Fprintf(bw, ".model %s\n", name)
	fmt.Fprint(bw, ".inputs")
	for _, pi := range n.PIs {
		fmt.Fprintf(bw, " %s", n.signalName(pi))
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".outputs")
	for _, po := range n.POs {
		fmt.Fprintf(bw, " %s", po.Name)
	}
	fmt.Fprintln(bw)
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		if g.Type == PI {
			continue
		}
		fmt.Fprint(bw, ".names")
		for _, f := range g.Fanins {
			fmt.Fprintf(bw, " %s", n.signalName(f))
		}
		fmt.Fprintf(bw, " %s\n", n.signalName(id))
		k := len(g.Fanins)
		switch g.Type {
		case Const0:
			// no rows: constant 0
		case Const1:
			fmt.Fprintln(bw, "1")
		case Buf:
			fmt.Fprintln(bw, "1 1")
		case Not:
			fmt.Fprintln(bw, "0 1")
		case And:
			fmt.Fprintln(bw, strings.Repeat("1", k)+" 1")
		case Nand:
			for i := 0; i < k; i++ {
				fmt.Fprintln(bw, rowWith(k, i, '0')+" 1")
			}
		case Or:
			for i := 0; i < k; i++ {
				fmt.Fprintln(bw, rowWith(k, i, '1')+" 1")
			}
		case Nor:
			fmt.Fprintln(bw, strings.Repeat("0", k)+" 1")
		case Xor, Xnor:
			wantOdd := g.Type == Xor
			for a := 0; a < 1<<uint(k); a++ {
				ones := 0
				row := make([]byte, k)
				for i := 0; i < k; i++ {
					if a&(1<<i) != 0 {
						row[i] = '1'
						ones++
					} else {
						row[i] = '0'
					}
				}
				if (ones%2 == 1) == wantOdd {
					fmt.Fprintf(bw, "%s 1\n", row)
				}
			}
		}
	}
	// POs driven by an internal gate with a different name get a buffer.
	for _, po := range n.POs {
		if n.signalName(po.Gate) != po.Name {
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", n.signalName(po.Gate), po.Name)
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// rowWith returns a row of '-' with one position set to c.
func rowWith(k, i int, c byte) string {
	row := []byte(strings.Repeat("-", k))
	row[i] = c
	return string(row)
}

func (n *Network) signalName(id int) string {
	g := &n.Gates[id]
	if g.Name != "" {
		return g.Name
	}
	return fmt.Sprintf("n%d", id)
}

// ReadBLIF parses a single-model BLIF file into a network of
// AND/OR/NOT/Const gates. Each .names block becomes an OR of row-ANDs.
// Rows with output 0 define the OFF-set; the node is then complemented.
// Latches and subcircuits are not supported.
func ReadBLIF(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var lines []string
	// Join continuation lines ending in '\'.
	var cur strings.Builder
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, "\\") {
			cur.WriteString(strings.TrimSuffix(line, "\\"))
			cur.WriteByte(' ')
			continue
		}
		cur.WriteString(line)
		lines = append(lines, cur.String())
		cur.Reset()
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	n := New("")
	sig := make(map[string]int) // signal name -> gate ID
	var outputs []string
	type namesBlock struct {
		signals []string
		rows    []string
	}
	var blocks []namesBlock

	for i := 0; i < len(lines); i++ {
		fields := strings.Fields(lines[i])
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				n.Name = fields[1]
			}
		case ".inputs":
			for _, name := range fields[1:] {
				sig[name] = n.AddPI(name)
			}
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: .names without signals")
			}
			blk := namesBlock{signals: fields[1:]}
			for i+1 < len(lines) && !strings.HasPrefix(lines[i+1], ".") {
				i++
				blk.rows = append(blk.rows, lines[i])
			}
			blocks = append(blocks, blk)
		case ".end":
		case ".latch", ".subckt", ".gate":
			return nil, fmt.Errorf("blif: unsupported construct %s", fields[0])
		default:
			return nil, fmt.Errorf("blif: unknown directive %s", fields[0])
		}
	}

	// Build blocks in dependency order (simple fixpoint; BLIF allows any
	// order of .names).
	built := make(map[int]bool)
	for remaining := len(blocks); remaining > 0; {
		progress := false
		for bi, blk := range blocks {
			if built[bi] {
				continue
			}
			outName := blk.signals[len(blk.signals)-1]
			ready := true
			for _, in := range blk.signals[:len(blk.signals)-1] {
				if _, ok := sig[in]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			id, err := buildNamesBlock(n, sig, blk.signals, blk.rows)
			if err != nil {
				return nil, err
			}
			sig[outName] = id
			built[bi] = true
			remaining--
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("blif: unresolved signal dependencies (cycle or undefined input)")
		}
	}

	for _, out := range outputs {
		id, ok := sig[out]
		if !ok {
			return nil, fmt.Errorf("blif: output %s never defined", out)
		}
		n.AddPO(out, id)
	}
	return n, nil
}

func buildNamesBlock(n *Network, sig map[string]int, signals, rows []string) (int, error) {
	k := len(signals) - 1
	if len(rows) == 0 {
		return n.AddGate(Const0), nil
	}
	if k == 0 {
		// Constant: a row "1" means const 1.
		for _, row := range rows {
			if strings.TrimSpace(row) == "1" {
				return n.AddGate(Const1), nil
			}
		}
		return n.AddGate(Const0), nil
	}
	var rowGates []int
	outPhase := byte('1')
	for _, row := range rows {
		fields := strings.Fields(row)
		if len(fields) != 2 || len(fields[0]) != k {
			return 0, fmt.Errorf("blif: malformed row %q for %s", row, signals[k])
		}
		if fields[1] != "0" && fields[1] != "1" {
			return 0, fmt.Errorf("blif: bad output value %q in row %q", fields[1], row)
		}
		outPhase = fields[1][0]
		var lits []int
		for i := 0; i < k; i++ {
			in := sig[signals[i]]
			switch fields[0][i] {
			case '1':
				lits = append(lits, in)
			case '0':
				lits = append(lits, n.AddGate(Not, in))
			case '-':
			default:
				return 0, fmt.Errorf("blif: bad literal %c in row %q", fields[0][i], row)
			}
		}
		switch len(lits) {
		case 0:
			rowGates = append(rowGates, n.AddGate(Const1))
		case 1:
			rowGates = append(rowGates, lits[0])
		default:
			rowGates = append(rowGates, n.AddGate(And, lits...))
		}
	}
	var id int
	if len(rowGates) == 1 {
		id = rowGates[0]
	} else {
		id = n.AddGate(Or, rowGates...)
	}
	if outPhase == '0' {
		id = n.AddGate(Not, id)
	}
	return id, nil
}
