package network

import "repro/internal/sop"

// FromPLA builds the two-level OR-of-ANDs network of a parsed PLA: one
// AND gate per product term, one OR gate per output. Hash-consed
// construction shares complemented literals (one NOT per input) and
// identical product terms across outputs automatically. This is the
// canonical import shape for espresso-format specifications, shared by
// rmsyn and rmsynd.
func FromPLA(p *sop.PLA) *Network {
	name := p.Name
	if name == "" {
		name = "pla"
	}
	net := New(name)
	pis := make([]int, p.Inputs)
	for i := range pis {
		pis[i] = net.AddPI(p.InNames[i])
	}
	lit := func(v int, phase bool) int {
		if phase {
			return pis[v]
		}
		return net.AddGate(Not, pis[v])
	}
	for o, c := range p.Covers {
		var terms []int
		for _, t := range c.Terms {
			var lits []int
			t.Pos.ForEach(func(v int) { lits = append(lits, lit(v, true)) })
			t.Neg.ForEach(func(v int) { lits = append(lits, lit(v, false)) })
			switch len(lits) {
			case 0:
				terms = append(terms, net.AddGate(Const1))
			case 1:
				terms = append(terms, lits[0])
			default:
				terms = append(terms, net.AddGate(And, lits...))
			}
		}
		var out int
		switch len(terms) {
		case 0:
			out = net.AddGate(Const0)
		case 1:
			out = terms[0]
		default:
			out = net.AddGate(Or, terms...)
		}
		net.AddPO(p.OutName[o], out)
	}
	return net
}
