package chaos

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/verify"
)

// SweepOptions configures a chaos sweep. The zero value runs the
// default deterministic plan set over a small, fast circuit subset at
// one and four workers.
type SweepOptions struct {
	// Circuits are Table 2 bench circuit names or generated word-level
	// instances like add4/gfmul8 (bench.Resolve). Empty means a small
	// default subset chosen to keep the sweep fast while covering
	// single- and multi-output circuits.
	Circuits []string
	// Workers are the worker counts every plan runs at; identity is
	// asserted across all of them. Empty means {1, 4}.
	Workers []int
	// RandomPlans adds n seeded plans per circuit on top of the
	// deterministic set; Seed (default 1) makes them reproducible.
	RandomPlans int
	Seed        int64
	// RetryFactor overrides the synthesis retry budget factor when
	// non-zero (negative disables the retry rung).
	RetryFactor float64
	// Logf, when set, receives one line per (circuit, plan, workers)
	// run — the sweep's progress trace.
	Logf func(format string, args ...any)
}

// Violation is one invariant breach found by Sweep. The sweep never
// stops at the first breach: it returns every violation so a failure
// shows the whole blast radius.
type Violation struct {
	Circuit   string
	Plan      string
	Workers   int
	Invariant string // "no-panic", "no-error", "error-report", "equivalent", "truthful", "identical", "delay-identity", "setup"
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s/-j%d: %s: %s", v.Circuit, v.Plan, v.Workers, v.Invariant, v.Detail)
}

// outcome captures one chaos run: the result fingerprint, the error
// and escaped-panic channels, and the independent equivalence verdict.
type outcome struct {
	fp       fingerprint
	degs     []core.Degradation
	choices  []core.BasisChoice
	err      string
	escaped  string // non-empty when a panic escaped Synthesize
	equiv    bool
	equivErr string
}

// fingerprint is the comparable identity of one run's observable
// output: the emitted network, the full degradation trail, the basis
// arbitration record, the per-output cube counts, and the error (for
// injected-panic plans). Two runs with equal fingerprints are
// bit-identical as far as any caller of Synthesize can tell.
type fingerprint struct {
	blif    string
	degs    string
	choices string
	cubes   string
	err     string
}

// Sweep enumerates injection plans over bench circuits and checks the
// chaos invariants for every (circuit, plan, workers) triple. It
// returns all violations found; an empty slice is a passing sweep.
func Sweep(opt SweepOptions) []Violation {
	circuits := opt.Circuits
	if len(circuits) == 0 {
		circuits = []string{"f2", "cm82a", "adr4"}
	}
	workersList := opt.Workers
	if len(workersList) == 0 {
		workersList = []int{1, 4}
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var vs []Violation
	for _, name := range circuits {
		c, ok := bench.Resolve(name)
		if !ok {
			vs = append(vs, Violation{Circuit: name, Invariant: "setup", Detail: "unknown bench circuit"})
			continue
		}
		spec := c.Build()
		poNames := make([]string, len(spec.POs))
		for i := range spec.POs {
			poNames[i] = spec.POs[i].Name
		}
		plans := append(Plans(len(spec.POs)), RandomPlans(opt.RandomPlans, seed, len(spec.POs))...)

		// Uninjected baselines, one per (workers, method, basis) triple a
		// plan can run under. Their cross-worker identity is itself an
		// invariant.
		type bkey struct {
			workers    int
			ofddMethod bool
			basis      string
		}
		type combo struct {
			ofddMethod bool
			basis      string
		}
		combos := map[combo]bool{{false, ""}: true}
		var comboList []combo
		comboList = append(comboList, combo{false, ""})
		for _, p := range plans {
			cb := combo{p.UseOFDDMethod, p.Basis}
			if !combos[cb] {
				combos[cb] = true
				comboList = append(comboList, cb)
			}
		}
		base := map[bkey]fingerprint{}
		for _, w := range workersList {
			for _, cb := range comboList {
				out := runOne(c, Plan{Name: "baseline", Basis: cb.basis}, w, cb.ofddMethod, opt.RetryFactor)
				if out.escaped != "" {
					vs = append(vs, Violation{name, "baseline", w, "no-panic", out.escaped})
				}
				if out.err != "" {
					vs = append(vs, Violation{name, "baseline", w, "no-error", out.err})
				}
				if !out.equiv {
					vs = append(vs, Violation{name, "baseline", w, "equivalent", out.equivErr})
				}
				base[bkey{w, cb.ofddMethod, cb.basis}] = out.fp
			}
		}
		for _, cb := range comboList {
			ref := base[bkey{workersList[0], cb.ofddMethod, cb.basis}]
			for _, w := range workersList[1:] {
				if base[bkey{w, cb.ofddMethod, cb.basis}] != ref {
					vs = append(vs, Violation{name, "baseline", w, "identical",
						fmt.Sprintf("baseline differs from -j%d baseline", workersList[0])})
				}
			}
		}

		for _, p := range plans {
			fps := make([]fingerprint, 0, len(workersList))
			for _, w := range workersList {
				out := runOne(c, p, w, p.UseOFDDMethod, opt.RetryFactor)
				logf("chaos: %s/%s/-j%d: err=%q degradations=%d", name, p.Name, w, out.err, len(out.degs))
				vs = append(vs, checkRun(name, p, w, poNames, out, base[bkey{w, p.UseOFDDMethod, p.Basis}])...)
				fps = append(fps, out.fp)
			}
			if p.ScheduleIndependent() {
				for i := 1; i < len(fps); i++ {
					if fps[i] != fps[0] {
						vs = append(vs, Violation{name, p.Name, workersList[i], "identical",
							fmt.Sprintf("result differs from -j%d run under the same injection schedule", workersList[0])})
					}
				}
			}
		}
	}
	return vs
}

// runOne executes one injected synthesis run and captures everything
// the invariants need. The specification is rebuilt per run, and the
// equivalence check uses a second fresh build on a fresh BDD manager —
// fully independent of anything the injected run touched.
func runOne(c bench.Circuit, p Plan, workers int, ofddMethod bool, retryFactor float64) (out outcome) {
	defer func() {
		if r := recover(); r != nil {
			out.escaped = fmt.Sprintf("%v", r)
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := core.DefaultOptions()
	opt.Workers = workers
	// "" pins the legacy pure GF(2) flow so pre-arbiter plans keep their
	// exact contract; a named basis routes through the arbiter.
	opt.Basis = core.BasisXor
	if p.Basis != "" {
		b, berr := core.ParseBasis(p.Basis)
		if berr != nil {
			out.err = berr.Error()
			out.fp = fingerprint{err: out.err}
			return out
		}
		opt.Basis = b
	}
	if ofddMethod {
		opt.Method = core.MethodOFDD
	}
	if retryFactor != 0 {
		opt.RetryFactor = retryFactor
		if retryFactor < 0 {
			opt.RetryFactor = 0
		}
	}
	opt.Hooks = p.Hooks(cancel)
	spec := c.Build()
	res, err := core.Synthesize(ctx, spec, opt)
	if err != nil {
		out.err = err.Error()
		out.fp = fingerprint{err: out.err}
		return out
	}
	out.degs = res.Degradations
	out.choices = res.BasisChoices
	var blif strings.Builder
	if werr := res.Network.WriteBLIF(&blif); werr != nil {
		out.err = "WriteBLIF: " + werr.Error()
		return out
	}
	out.fp = fingerprint{
		blif:    blif.String(),
		degs:    fmt.Sprintf("%v", res.Degradations),
		choices: fmt.Sprintf("%v", res.BasisChoices),
		cubes:   fmt.Sprintf("%v", res.CubeCounts),
	}
	out.equiv, out.equivErr = checkEquivalent(c.Build(), res.Network)
	return out
}

func checkEquivalent(spec, got *network.Network) (bool, string) {
	ok, err := verify.Equivalent(spec, got)
	if err != nil {
		return false, err.Error()
	}
	if !ok {
		return false, "network not equivalent to specification"
	}
	return true, ""
}

// checkRun asserts the per-run chaos invariants and returns any
// violations.
func checkRun(circuit string, p Plan, workers int, poNames []string, out outcome, baseFP fingerprint) []Violation {
	var vs []Violation
	bad := func(invariant, detail string) {
		vs = append(vs, Violation{circuit, p.Name, workers, invariant, detail})
	}
	// Invariant 1: no panic escapes Synthesize, ever.
	if out.escaped != "" {
		bad("no-panic", out.escaped)
		return vs
	}
	// Injected panics are the one case Synthesize must fail: the error
	// must name the injected phase (or the fprm merge barrier, for
	// worker panics) and carry the chaos marker.
	if p.ExpectsError() {
		if out.err == "" {
			bad("error-report", "injected panic produced no error")
			return vs
		}
		if !strings.Contains(out.err, Marker) {
			bad("error-report", "error does not carry the chaos marker: "+out.err)
		}
		if p.PanicAtPhase != "" && !strings.Contains(out.err, p.PanicAtPhase) {
			bad("error-report", fmt.Sprintf("error does not name phase %q: %s", p.PanicAtPhase, out.err))
		}
		if p.PanicWorker && !strings.Contains(out.err, "fprm") {
			bad("error-report", "worker panic not tagged with the fprm phase: "+out.err)
		}
		return vs
	}
	// Invariant: every non-panic injection still completes the run.
	if out.err != "" {
		bad("no-error", out.err)
		return vs
	}
	// Invariant 2: the returned network verifies equivalent.
	if !out.equiv {
		bad("equivalent", out.equivErr)
	}
	if !p.Injects() {
		return vs
	}
	if (p.WorkerDelay > 0 || p.ArmDelay > 0) && onlyDelay(p) {
		// A pure scheduling perturbation must be invisible.
		if out.fp != baseFP {
			bad("delay-identity", "delay injection changed the result")
		}
		return vs
	}
	// Arm-targeted faults: the run already proved it completed and
	// verified; the targeted cone must additionally have fallen to the
	// sibling arm (never the spec-cone ladder, which is reserved for
	// both arms failing) and the injection must be named on the
	// targeted output.
	if arm := p.TripArm + p.PanicArm; p.TripArm != "" || p.PanicArm != "" {
		sibling := "sop"
		if arm == "sop" {
			sibling = "xor"
		}
		if p.ArmOutput >= 0 && p.ArmOutput < len(poNames) {
			want := poNames[p.ArmOutput]
			var bc *core.BasisChoice
			for i := range out.choices {
				if out.choices[i].Output == want {
					bc = &out.choices[i]
					break
				}
			}
			switch {
			case bc == nil:
				bad("truthful", fmt.Sprintf("no basis choice recorded for targeted output %q", want))
			case bc.Chosen != sibling:
				bad("truthful", fmt.Sprintf("targeted output %q chose %q, want the sibling arm %q", want, bc.Chosen, sibling))
			}
			armed := false
			for _, d := range out.degs {
				if d.Output == want && d.Stage == arm+"-arm" && strings.Contains(d.Reason, Marker) {
					armed = true
				}
			}
			if !armed {
				bad("truthful", fmt.Sprintf("injected %s-arm fault on %q not attributed in degradations: %v", arm, want, out.degs))
			}
		}
		return vs
	}
	// Invariant 3: the injection is reported truthfully — either the
	// degradation trail names it (the chaos marker for injected trips,
	// the cancellation verdict for injected cancels), or the injection
	// never fired and the result is bit-identical to the baseline.
	visible := false
	for _, d := range out.degs {
		if strings.Contains(d.Reason, Marker) ||
			(p.CancelAtPhase != "" && strings.Contains(d.Reason, "canceled")) {
			visible = true
			break
		}
	}
	if !visible {
		if out.fp != baseFP {
			bad("truthful", fmt.Sprintf("injection changed the result but left no trace in %d degradations: %s",
				len(out.degs), fmt.Sprintf("%v", out.degs)))
		}
		return vs
	}
	// Targeted allocation failures must be attributed to the targeted
	// output, and only to it.
	if p.FailOFDDAlloc > 0 && p.OFDDOutput >= 0 && p.OFDDOutput < len(poNames) {
		want := poNames[p.OFDDOutput]
		for _, d := range out.degs {
			if strings.Contains(d.Reason, Marker) && d.Output != want {
				bad("truthful", fmt.Sprintf("injected trip for output %q attributed to %q: %+v", want, d.Output, d))
			}
		}
	}
	return vs
}

// onlyDelay reports whether a delay (worker stagger or arm stall) is
// the plan's only injection, making bit-identity with the baseline
// mandatory.
func onlyDelay(p Plan) bool {
	q := p
	q.WorkerDelay = 0
	q.DelayArm, q.ArmDelay = "", 0
	return !q.Injects()
}
