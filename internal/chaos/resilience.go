package chaos

// Resilience scenarios (DESIGN.md §14): the overload, memory-pressure,
// and crash-recovery behaviors layered onto rmsynd. Each gets a fresh
// server behind a real listener, like every other server-level
// scenario, and asserts the same contract — every response truthful,
// the process alive — plus the adaptive bits: the AIMD cap converges
// down under storm and regrows after, brownouts clamp and attribute,
// the persistent cache survives corruption without serving it.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/sigcache"
)

// runOverloadStorm: under a storm — a burst past capacity whose
// admitted requests then burn their whole wall clock — the adaptive
// limiter shrinks the effective cap below the static capacity; once
// healthy traffic resumes, additive regrowth returns it to capacity
// within a bounded window.
func runOverloadStorm(spec []byte, bad func(string, string)) {
	gate := make(chan struct{})
	var gateArmed atomic.Bool
	gateArmed.Store(true)
	var once sync.Once
	defer once.Do(func() { close(gate) })
	srv, ts := newTestServer(server.Config{
		Workers:    1,
		QueueDepth: 5,
		Adaptive:   true,
		Hooks: &server.Hooks{JobStart: func(string) {
			if gateArmed.Load() {
				<-gate
			}
		}},
	})
	defer ts.Close()
	capacity := srv.QueueCapacity()
	if srv.EffectiveLimit() != capacity {
		bad("limiter", fmt.Sprintf("fresh adaptive limiter at %d, want the static capacity %d", srv.EffectiveLimit(), capacity))
	}

	// The storm: 2x capacity requests, 300ms deadlines, the worker gated
	// shut. The overflow sheds (one multiplicative decrease per cooldown
	// window), the admitted ones queue-timeout (more decreases).
	var wg sync.WaitGroup
	var shed atomic.Int64
	for i := 0; i < 2*capacity; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := post(ts.Client(), ts.URL, spec, map[string]string{
				"X-Rmsynd-Timeout":  "300ms",
				"X-Rmsynd-No-Cache": "1",
			})
			if r.err == nil && r.status == http.StatusTooManyRequests {
				shed.Add(1)
			}
		}()
	}
	// Let the sheds and queue timeouts resolve, then open the gate so the
	// one request holding the pool runs its (expired) course — the gate
	// must open before the wait, or that request never returns.
	time.Sleep(500 * time.Millisecond)
	once.Do(func() { close(gate) })
	gateArmed.Store(false)
	wg.Wait()

	if shed.Load() == 0 {
		bad("shed", "storm past capacity shed nothing")
	}
	converged := srv.EffectiveLimit()
	if converged >= capacity {
		bad("limiter", fmt.Sprintf("effective cap %d did not shrink below capacity %d under the storm", converged, capacity))
	}

	// Recovery: healthy completions regrow the cap additively back to
	// capacity within a bounded window.
	deadline := time.Now().Add(15 * time.Second)
	for srv.EffectiveLimit() < capacity {
		if time.Now().After(deadline) {
			bad("limiter", fmt.Sprintf("cap stuck at %d of %d after the storm cleared", srv.EffectiveLimit(), capacity))
			return
		}
		if r := post(ts.Client(), ts.URL, spec, nil); r.err != nil || r.status != http.StatusOK {
			bad("alive", fmt.Sprintf("healthy traffic after the storm: err=%v status=%d", r.err, r.status))
			return
		}
	}
}

// runMemoryBrownout: injected heap pressure engages the brownout — new
// grants are clamped (volatile header, not body), the largest in-flight
// budget is force-degraded with truthful "brownout:" attribution — and
// once the pressure clears, the same submission returns byte-identical
// clean results.
func runMemoryBrownout(spec []byte, bad func(string, string)) {
	var heap atomic.Uint64
	heap.Store(500)
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	var gateArmed atomic.Bool
	var once sync.Once
	defer once.Do(func() { close(release) })
	srv, ts := newTestServer(server.Config{
		Workers:         2,
		MemSoftLimit:    1000,
		MemPollInterval: 2 * time.Millisecond,
		Hooks: &server.Hooks{
			MemProbe: func() uint64 { return heap.Load() },
			JobStart: func(string) {
				if gateArmed.Load() {
					entered <- struct{}{}
					<-release
				}
			},
		},
	})
	defer ts.Close()

	// Baseline: clean run under no pressure.
	clean := post(ts.Client(), ts.URL, spec, nil)
	if verifiedResponse(clean, bad, "baseline") == nil {
		return
	}
	if clean.err == nil && srv.BrownoutActive() {
		bad("brownout", "monitor active below the soft cap")
	}

	// Park a synthesis in flight, then spike the heap: the monitor must
	// engage and force-degrade the parked flight.
	gateArmed.Store(true)
	parked := make(chan srvResp, 1)
	go func() {
		parked <- post(ts.Client(), ts.URL, spec, map[string]string{"X-Rmsynd-No-Cache": "1"})
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		bad("brownout", "parked request never reached the pool")
		return
	}
	heap.Store(2000)
	deadline := time.Now().Add(5 * time.Second)
	for !srv.BrownoutActive() || promGauge(srv.Metrics(), "rmsynd_brownout_forced_total") == 0 {
		if time.Now().After(deadline) {
			bad("brownout", "monitor never engaged or never force-degraded the parked flight")
			once.Do(func() { close(release) })
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	gateArmed.Store(false)
	once.Do(func() { close(release) })

	r := <-parked
	resp := verifiedResponse(r, bad, "force-degraded flight")
	if resp == nil {
		return
	}
	if len(resp.Degradations) == 0 {
		bad("truthful", "force-degraded flight reports no degradations")
	}
	attributed := false
	for _, d := range resp.Degradations {
		if strings.HasPrefix(d.Reason, "brownout: ") {
			attributed = true
		}
	}
	if !attributed {
		bad("truthful", fmt.Sprintf("no degradation carries the brownout attribution (%d recorded)", len(resp.Degradations)))
	}

	// While engaged, new admissions are clamped and marked — the cached
	// entry still serves, bytes untouched, the clamp visible in headers.
	during := post(ts.Client(), ts.URL, spec, nil)
	if verifiedResponse(during, bad, "during brownout") == nil {
		return
	}
	if !bytes.Equal(during.body, clean.body) {
		bad("cache", "brownout changed the served bytes of a cached entry")
	}
	if promGauge(srv.Metrics(), "rmsynd_brownout_clamped_total") == 0 {
		bad("brownout", "no grant was clamped while the brownout was active")
	}

	// Pressure clears: the monitor exits (hysteresis: must fall below
	// 7/8 of the cap) and a fresh synthesis is clean and byte-identical.
	heap.Store(500)
	deadline = time.Now().Add(5 * time.Second)
	for srv.BrownoutActive() {
		if time.Now().After(deadline) {
			bad("brownout", "monitor never cleared after the pressure dropped")
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	after := post(ts.Client(), ts.URL, spec, map[string]string{"X-Rmsynd-No-Cache": "1"})
	resp2 := verifiedResponse(after, bad, "after brownout")
	if resp2 == nil {
		return
	}
	if len(resp2.Degradations) != 0 {
		bad("truthful", "post-brownout synthesis still degraded")
	}
	if !bytes.Equal(after.body, clean.body) {
		bad("cache", "post-brownout synthesis is not byte-identical to the pre-brownout result")
	}
}

// runCacheCrashRecovery: a server restart against the same cache
// directory — with corruption and torn-write debris planted in it —
// recovers every intact entry (served byte-identical, from disk),
// quarantines the corrupt one, and removes the debris.
func runCacheCrashRecovery(spec []byte, bad func(string, string)) {
	dir, err := os.MkdirTemp("", "rmsynd-chaos-cache-*")
	if err != nil {
		bad("setup", "mkdtemp: "+err.Error())
		return
	}
	defer os.RemoveAll(dir)

	// First life. The disk tier attaches asynchronously and only misses
	// write through, so wait for the attach before the first submission.
	srvA, tsA := newTestServer(server.Config{Workers: 2, CacheDir: dir})
	deadline := time.Now().Add(10 * time.Second)
	for srvA.Cache().Disk() == nil {
		if time.Now().After(deadline) {
			bad("persist", "first server never attached the persistent tier")
			tsA.Close()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	first := post(tsA.Client(), tsA.URL, spec, nil)
	if verifiedResponse(first, bad, "first life") == nil {
		tsA.Close()
		return
	}
	if srvA.Cache().Disk().Len() == 0 {
		bad("persist", "miss did not write through to the persistent tier")
		tsA.Close()
		return
	}
	tsA.Close()

	// The crash aftermath: a corrupt sibling entry (bit flip) and torn
	// tmp debris, exactly what a kill -9 plus bad disk leaves behind.
	entries, _ := filepath.Glob(filepath.Join(dir, "sc-*.entry"))
	if len(entries) == 0 {
		bad("persist", "no entry files on disk after the first life")
		return
	}
	valid, rerr := os.ReadFile(entries[0])
	if rerr != nil {
		bad("setup", rerr.Error())
		return
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x20
	os.WriteFile(filepath.Join(dir, "sc-"+strings.Repeat("0", 40)+".entry"), corrupt, 0o644)
	os.WriteFile(filepath.Join(dir, "w-crash.tmp"), valid[:len(valid)/3], 0o644)

	// Second life: same directory. The scan must recover the intact
	// entry, quarantine the corrupt one, sweep the debris — and the
	// first submission must come back from disk, byte-identical.
	srvB, tsB := newTestServer(server.Config{Workers: 2, CacheDir: dir})
	defer tsB.Close()
	deadline = time.Now().Add(10 * time.Second)
	for srvB.Cache().Disk() == nil {
		if time.Now().After(deadline) {
			bad("persist", "restarted server never attached the persistent tier")
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := srvB.Cache().Disk().Stats()
	if st.ScanRecovered == 0 {
		bad("persist", "restart scan recovered nothing")
	}
	if st.Quarantined != 1 {
		bad("persist", fmt.Sprintf("scan quarantined %d files, want exactly the 1 corrupt one", st.Quarantined))
	}
	if debris, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(debris) != 0 {
		bad("persist", "torn tmp debris survived the restart scan")
	}
	warm := post(tsB.Client(), tsB.URL, spec, nil)
	if verifiedResponse(warm, bad, "warm restart") == nil {
		return
	}
	if warm.cache != "disk" {
		bad("persist", "restarted submission served from "+warm.cache+", want disk")
	}
	if !bytes.Equal(warm.body, first.body) {
		bad("persist", "disk-recovered body differs from the original miss")
	}
}

// runDrainUnderLoad: hedged (basis race) requests in flight when the
// drain begins finish — cleanly or force-degraded within the grace —
// and the persistent cache directory is left with zero partially
// written or corrupt entries.
func runDrainUnderLoad(spec []byte, bad func(string, string)) {
	dir, err := os.MkdirTemp("", "rmsynd-chaos-drain-*")
	if err != nil {
		bad("setup", "mkdtemp: "+err.Error())
		return
	}
	defer os.RemoveAll(dir)

	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	srv, ts := newTestServer(server.Config{
		Workers:  2,
		CacheDir: dir,
		Hooks:    &server.Hooks{JobStart: func(string) { entered <- struct{}{}; <-release }},
	})
	defer ts.Close()

	// Two hedged requests in flight (distinct flow keys so they are
	// separate flights), parked at the pool.
	inflight := make(chan srvResp, 2)
	// One worker each so both fit the pool at once (the default grant
	// would claim the whole pool and park the second in the queue).
	for i, hdr := range []map[string]string{
		{"X-Rmsynd-Basis": "race", "X-Rmsynd-Workers": "1"},
		{"X-Rmsynd-Basis": "race", "X-Rmsynd-Workers": "1", "X-Rmsynd-Polarity": "positive"},
	} {
		h := hdr
		go func() { inflight <- post(ts.Client(), ts.URL, spec, h) }()
		select {
		case <-entered:
		case <-time.After(10 * time.Second):
			bad("drain", fmt.Sprintf("hedged request %d never started", i))
			return
		}
	}

	// SIGTERM equivalent: drain begins, the grace is short enough that
	// the parked flights are force-cancelled through the ladder.
	srv.BeginDrain()
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	// Hold the gate past the grace so Shutdown must force-cancel, then
	// let the flights run their (cancelled) course.
	time.Sleep(700 * time.Millisecond)
	once.Do(func() { close(release) })
	<-done

	for i := 0; i < 2; i++ {
		r := <-inflight
		resp := verifiedResponse(r, bad, fmt.Sprintf("drained hedged request %d", i))
		if resp == nil {
			continue
		}
		if len(resp.Degradations) == 0 {
			bad("truthful", "force-drained race flight reports no degradations")
		}
	}

	// The directory must hold no torn or corrupt entries: a fresh scan
	// quarantines nothing and leaves no debris behind.
	d, derr := sigcache.OpenDisk(dir, 0)
	if derr != nil {
		bad("persist", "post-drain scan failed: "+derr.Error())
		return
	}
	if st := d.Stats(); st.Quarantined != 0 {
		bad("persist", fmt.Sprintf("drain left %d corrupt cache entries", st.Quarantined))
	}
}
