package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/server"
)

// ServerSweepOptions configures a server-level chaos sweep. The zero
// value runs every scenario against cm82a-sized traffic.
type ServerSweepOptions struct {
	// Circuit is the bench circuit driving the scenarios (default
	// cm82a: multi-output, fast, small enough for exhaustive
	// verification).
	Circuit string
	// ShedBurst is the N in "queue capacity + N requests shed exactly
	// N" (default 3).
	ShedBurst int
	// Logf receives one line per scenario when set.
	Logf func(format string, args ...any)
}

// ServerSweep drives the rmsynd request path through every server-level
// fault class — worker-pool trips, cache poisoning attempts, client
// disconnection mid-request, slow-loris bodies, core-level faults over
// HTTP, malformed/oversized/duplicate submissions, overload bursts, and
// drain — and asserts the service contract: every response is either a
// verified network with a truthful degradation record or a structured
// rmsynd/v1 error; the process survives everything; poisoned results
// are never served or cached; shedding is exact.
//
// Each scenario gets a fresh server.Server behind a real httptest
// listener, so the asserted path is the production one: HTTP parsing,
// read deadlines, admission, the pool, the cache.
func ServerSweep(opt ServerSweepOptions) []Violation {
	circuit := opt.Circuit
	if circuit == "" {
		circuit = "cm82a"
	}
	burst := opt.ShedBurst
	if burst <= 0 {
		burst = 3
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	c, ok := bench.ByName(circuit)
	if !ok {
		return []Violation{{Circuit: circuit, Plan: "server", Invariant: "setup", Detail: "unknown bench circuit"}}
	}
	spec := blifBody(c.Build())

	var vs []Violation
	scenarios := []struct {
		name string
		run  func(spec []byte, bad func(invariant, detail string))
	}{
		{"cache-identity", runCacheIdentity},
		{"pool-panic", runPoolPanic},
		{"poison-result", runPoison},
		{"cancel-mid-request", runCancelMid},
		{"slow-loris", runSlowLoris},
		{"core-fault-degrade", runCoreFaultDegrade},
		{"core-fault-panic", runCoreFaultPanic},
		{"malformed", runMalformed},
		{"overload-shed", func(b []byte, bad func(string, string)) { runOverload(b, burst, bad) }},
		{"drain", runDrain},
		{"overload-storm", runOverloadStorm},
		{"memory-brownout", runMemoryBrownout},
		{"cache-crash-recovery", runCacheCrashRecovery},
		{"drain-under-load", runDrainUnderLoad},
	}
	for _, sc := range scenarios {
		bad := func(invariant, detail string) {
			vs = append(vs, Violation{Circuit: circuit, Plan: "server/" + sc.name, Invariant: invariant, Detail: detail})
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					bad("no-panic", fmt.Sprintf("scenario panicked: %v", r))
				}
			}()
			sc.run(spec, bad)
		}()
		logf("chaos: server/%s: done (%d violations so far)", sc.name, len(vs))
	}
	return vs
}

// blifBody serializes a network as a request body.
func blifBody(n *network.Network) []byte {
	var b bytes.Buffer
	if err := n.WriteBLIF(&b); err != nil {
		panic(err)
	}
	return b.Bytes()
}

// srvResp is one observed response.
type srvResp struct {
	status int
	body   []byte
	cache  string // X-Rmsynd-Cache
	err    error
}

func post(client *http.Client, url string, body []byte, hdr map[string]string) srvResp {
	return postCtx(context.Background(), client, url, body, hdr)
}

func postCtx(ctx context.Context, client *http.Client, url string, body []byte, hdr map[string]string) srvResp {
	req, err := http.NewRequestWithContext(ctx, "POST", url+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		return srvResp{err: err}
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return srvResp{err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return srvResp{status: resp.StatusCode, err: err}
	}
	return srvResp{status: resp.StatusCode, body: b, cache: resp.Header.Get("X-Rmsynd-Cache")}
}

// errorCode extracts the rmsynd/v1 structured error code, "" if the
// body is not a structured error.
func errorCode(body []byte) string {
	var e server.ErrorBody
	if json.Unmarshal(body, &e) != nil {
		return ""
	}
	return e.Error.Code
}

// verifiedResponse asserts a 200 body parses as rmsynd/v1 with
// Verified set, returning the parsed response.
func verifiedResponse(r srvResp, bad func(string, string), where string) *server.Response {
	if r.err != nil {
		bad("alive", where+": request error: "+r.err.Error())
		return nil
	}
	if r.status != http.StatusOK {
		bad("status", fmt.Sprintf("%s: status %d, body %.200s", where, r.status, r.body))
		return nil
	}
	var resp server.Response
	if err := json.Unmarshal(r.body, &resp); err != nil {
		bad("structured", where+": 200 body is not rmsynd/v1: "+err.Error())
		return nil
	}
	if resp.Schema != server.Schema {
		bad("structured", where+": schema "+resp.Schema)
	}
	if !resp.Verified {
		bad("equivalent", where+": response not marked verified")
	}
	return &resp
}

// structuredError asserts a response is a structured rmsynd/v1 error
// with the wanted code.
func structuredError(r srvResp, wantStatus int, wantCode string, bad func(string, string), where string) {
	if r.err != nil {
		bad("alive", where+": request error: "+r.err.Error())
		return
	}
	if r.status != wantStatus {
		bad("status", fmt.Sprintf("%s: status %d, want %d (body %.200s)", where, r.status, wantStatus, r.body))
		return
	}
	if code := errorCode(r.body); code != wantCode {
		bad("structured", fmt.Sprintf("%s: error code %q, want %q (body %.200s)", where, code, wantCode, r.body))
	}
}

func newTestServer(cfg server.Config) (*server.Server, *httptest.Server) {
	srv := server.New(cfg)
	return srv, httptest.NewServer(srv)
}

// runCacheIdentity: a repeated identical submission is a hit whose body
// is byte-identical to the miss, and a functionally identical but
// textually different submission hits too.
func runCacheIdentity(spec []byte, bad func(string, string)) {
	_, ts := newTestServer(server.Config{Workers: 2})
	defer ts.Close()

	first := post(ts.Client(), ts.URL, spec, nil)
	if verifiedResponse(first, bad, "miss") == nil {
		return
	}
	if first.cache != "miss" {
		bad("cache", "first submission was "+first.cache+", want miss")
	}
	second := post(ts.Client(), ts.URL, spec, nil)
	if verifiedResponse(second, bad, "hit") == nil {
		return
	}
	if second.cache != "hit" {
		bad("cache", "repeated submission was "+second.cache+", want hit")
	}
	if !bytes.Equal(first.body, second.body) {
		bad("cache", "hit body differs from miss body")
	}
	// Textually different, functionally identical: append comments and
	// reparse-stable whitespace. The BLIF parser ignores both, and the
	// signature is functional, so this must hit.
	variant := append([]byte("# regenerated file\n\n"), spec...)
	third := post(ts.Client(), ts.URL, variant, nil)
	if verifiedResponse(third, bad, "variant") == nil {
		return
	}
	if third.cache != "hit" {
		bad("cache", "functionally identical variant was "+third.cache+", want hit")
	}
	// An explicit bypass must re-synthesize.
	fourth := post(ts.Client(), ts.URL, spec, map[string]string{"X-Rmsynd-No-Cache": "1"})
	if verifiedResponse(fourth, bad, "bypass") == nil {
		return
	}
	if fourth.cache != "miss" {
		bad("cache", "no-cache submission was "+fourth.cache+", want miss")
	}
	if !bytes.Equal(fourth.body, first.body) {
		bad("cache", "fresh bypass body differs from cached body")
	}
}

// runPoolPanic: a panic at the worker-pool boundary is contained to a
// structured 500 and releases the request's pool slots.
func runPoolPanic(spec []byte, bad func(string, string)) {
	var jobs atomic.Int64
	_, ts := newTestServer(server.Config{
		Workers: 2,
		Hooks: &server.Hooks{JobStart: func(string) {
			if jobs.Add(1) == 1 {
				panic(Marker + "injected worker-pool trip")
			}
		}},
	})
	defer ts.Close()

	r := post(ts.Client(), ts.URL, spec, nil)
	structuredError(r, http.StatusInternalServerError, "internal", bad, "tripped job")
	if !strings.Contains(string(r.body), Marker) {
		bad("truthful", "500 body does not carry the chaos marker: "+string(r.body))
	}
	// The pool must have recovered its slots: a clean request succeeds.
	if verifiedResponse(post(ts.Client(), ts.URL, spec, nil), bad, "after trip") == nil {
		return
	}
	// And the panicked flight must not have cached anything.
	r3 := post(ts.Client(), ts.URL, spec, nil)
	if r3.cache != "hit" {
		bad("cache", "clean run after trip not cached: "+r3.cache)
	}
}

// runPoison: a mutation of the synthesized result before caching is
// caught by server-side verification — the client gets a truthful 500
// and the cache stays clean.
func runPoison(spec []byte, bad func(string, string)) {
	var jobs atomic.Int64
	_, ts := newTestServer(server.Config{
		Workers: 2,
		Hooks: &server.Hooks{MutateResult: func(n *network.Network) {
			if jobs.Add(1) == 1 && len(n.POs) > 0 {
				// Flip the first output: a functional corruption the
				// structural stats would never notice.
				n.POs[0].Gate = n.AddGate(network.Not, n.POs[0].Gate)
			}
		}},
	})
	defer ts.Close()

	structuredError(post(ts.Client(), ts.URL, spec, nil),
		http.StatusInternalServerError, "not_equivalent", bad, "poisoned job")
	// The poisoned result must not have been cached: the next identical
	// submission re-synthesizes (miss), cleanly.
	r := post(ts.Client(), ts.URL, spec, nil)
	if verifiedResponse(r, bad, "after poison") == nil {
		return
	}
	if r.cache != "miss" {
		bad("cache", "request after poisoning was "+r.cache+", want miss (nothing may be served from a poisoned flight)")
	}
}

// runCancelMid: the client disconnects while its request is
// synthesizing; the flight is detached, completes, and populates the
// cache — a later identical submission hits.
func runCancelMid(spec []byte, bad func(string, string)) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	var once sync.Once
	_, ts := newTestServer(server.Config{
		Workers: 2,
		Hooks: &server.Hooks{JobStart: func(string) {
			entered <- struct{}{}
			<-release
		}},
	})
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan srvResp, 1)
	go func() { done <- postCtx(ctx, ts.Client(), ts.URL, spec, nil) }()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		bad("alive", "request never reached the worker pool")
		once.Do(func() { close(release) })
		return
	}
	cancel() // client walks away mid-synthesis
	r := <-done
	if r.err == nil && r.status == http.StatusOK {
		bad("status", "canceled client still got a 200 before its flight finished")
	}
	once.Do(func() { close(release) })

	// The detached flight finishes and caches; poll briefly for the hit.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r := post(ts.Client(), ts.URL, spec, nil)
		if r.err == nil && r.status == http.StatusOK && r.cache == "hit" {
			return
		}
		if time.Now().After(deadline) {
			bad("cache", fmt.Sprintf("abandoned flight never cached (last: status %d cache %q)", r.status, r.cache))
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runSlowLoris: a body that trickles in past the read deadline gets a
// structured 408 and does not wedge the server.
func runSlowLoris(spec []byte, bad func(string, string)) {
	_, ts := newTestServer(server.Config{Workers: 2, ReadTimeout: 300 * time.Millisecond})
	defer ts.Close()

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		bad("alive", "dial: "+err.Error())
		return
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/synthesize?format=blif HTTP/1.1\r\nHost: rmsynd\r\nContent-Length: %d\r\n\r\n", len(spec)+4096)
	conn.Write(spec[:8]) // a taste, then silence
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 8192)
	n, rerr := conn.Read(buf)
	if rerr != nil {
		bad("status", "no response to a stalled body: "+rerr.Error())
		return
	}
	head := string(buf[:n])
	if !strings.Contains(head, "408") {
		bad("status", fmt.Sprintf("stalled body answered %.120q, want a 408", head))
	}
	if !strings.Contains(head, "read_timeout") {
		bad("structured", fmt.Sprintf("stalled-body response carries no read_timeout code: %.200q", head))
	}
	// The server still serves normal traffic afterwards.
	verifiedResponse(post(ts.Client(), ts.URL, spec, nil), bad, "after slow-loris")
}

// runCoreFaultDegrade: a core-level injected trip driven through the
// HTTP path yields a 200 whose degradation record carries the chaos
// marker — and the degraded result is never cached.
func runCoreFaultDegrade(spec []byte, bad func(string, string)) {
	plan := Plan{Name: "bdd-alloc-tiny", FailBDDAlloc: 8}
	var armed atomic.Bool
	armed.Store(true)
	_, ts := newTestServer(server.Config{
		Workers: 2,
		Hooks: &server.Hooks{CoreHooks: func() *core.ProbeHooks {
			if !armed.Load() {
				return nil
			}
			return plan.Hooks(nil)
		}},
	})
	defer ts.Close()

	r := post(ts.Client(), ts.URL, spec, nil)
	resp := verifiedResponse(r, bad, "degraded run")
	if resp == nil {
		return
	}
	marked := false
	for _, d := range resp.Degradations {
		if strings.Contains(d.Reason, Marker) {
			marked = true
		}
	}
	if !marked {
		bad("truthful", fmt.Sprintf("injected core trip left no chaos-marked degradation (%d recorded)", len(resp.Degradations)))
	}
	// Degraded results are served, never cached: with the fault
	// disarmed, the same submission must be a miss and come back clean.
	armed.Store(false)
	r2 := post(ts.Client(), ts.URL, spec, nil)
	resp2 := verifiedResponse(r2, bad, "after disarm")
	if resp2 == nil {
		return
	}
	if r2.cache != "miss" {
		bad("cache", "degraded result was cached: follow-up was "+r2.cache)
	}
	if len(resp2.Degradations) != 0 {
		bad("truthful", "clean run reports stale degradations")
	}
}

// runCoreFaultPanic: an injected panic inside a core phase surfaces as
// a structured 500 carrying the marker; the process survives.
func runCoreFaultPanic(spec []byte, bad func(string, string)) {
	plan := Plan{Name: "panic-fprm", PanicAtPhase: "fprm"}
	var jobs atomic.Int64
	_, ts := newTestServer(server.Config{
		Workers: 2,
		Hooks: &server.Hooks{CoreHooks: func() *core.ProbeHooks {
			if jobs.Add(1) > 1 {
				return nil
			}
			return plan.Hooks(nil)
		}},
	})
	defer ts.Close()

	r := post(ts.Client(), ts.URL, spec, nil)
	structuredError(r, http.StatusInternalServerError, "synth_failed", bad, "core panic")
	if !strings.Contains(string(r.body), Marker) {
		bad("truthful", "core-panic 500 does not carry the chaos marker: "+string(r.body))
	}
	verifiedResponse(post(ts.Client(), ts.URL, spec, nil), bad, "after core panic")
}

// runMalformed: garbage, unparseable, oversized, and bad-option
// requests each get their own structured error, and none of them
// disturb later valid traffic.
func runMalformed(spec []byte, bad func(string, string)) {
	_, ts := newTestServer(server.Config{Workers: 2, MaxBodyBytes: 2048})
	defer ts.Close()
	client := ts.Client()

	structuredError(post(client, ts.URL, []byte("certainly not a netlist\n"), nil),
		http.StatusUnsupportedMediaType, "bad_format", bad, "garbage body")
	structuredError(post(client, ts.URL, []byte(".i 2\n.o 1\nthis is not a cover\n.e\n"), nil),
		http.StatusBadRequest, "bad_spec", bad, "broken PLA")
	structuredError(post(client, ts.URL, []byte(".model x\n.inputs a\n.outputs y\n.names a y\nz 1\n.end\n"), nil),
		http.StatusBadRequest, "bad_spec", bad, "broken BLIF")
	structuredError(post(client, ts.URL, bytes.Repeat([]byte("#pad\n"), 4096), nil),
		http.StatusRequestEntityTooLarge, "spec_too_large", bad, "oversized body")
	structuredError(post(client, ts.URL, spec, map[string]string{"X-Rmsynd-Timeout": "soonish"}),
		http.StatusBadRequest, "bad_option", bad, "bad timeout header")
	structuredError(post(client, ts.URL, spec, map[string]string{"X-Rmsynd-Workers": "-4"}),
		http.StatusBadRequest, "bad_option", bad, "negative workers header")
	structuredError(post(client, ts.URL, spec, map[string]string{"X-Rmsynd-Retry-Factor": "NaN"}),
		http.StatusBadRequest, "bad_option", bad, "NaN retry factor")

	verifiedResponse(post(client, ts.URL, spec, nil), bad, "after malformed barrage")
}

// runOverload: with the admission pipe full, a burst of capacity+N
// requests sheds exactly N with 429 and serves every admitted one.
func runOverload(spec []byte, extra int, bad func(string, string)) {
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	srv, ts := newTestServer(server.Config{
		Workers:    1,
		QueueDepth: 2,
		Hooks:      &server.Hooks{JobStart: func(string) { <-release }},
	})
	defer ts.Close()
	capacity := srv.QueueCapacity()

	// Distinct specs so nothing coalesces: the spec's BLIF with a
	// renamed model/output per request (different interface = different
	// signature).
	variant := func(i int) []byte {
		c, _ := bench.ByName("f2")
		n := c.Build()
		n.Name = fmt.Sprintf("f2_v%d", i)
		n.POs[0].Name = fmt.Sprintf("y_v%d", i)
		return blifBody(n)
	}

	total := capacity + extra
	results := make(chan srvResp, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		// Stagger sequentially into admission: each request must hold
		// its token before the next fires, so exactly `capacity` are in
		// the system when the burst tail arrives. A goroutine per
		// request carries it to completion.
		body := variant(i)
		wg.Add(1)
		started := make(chan struct{})
		go func() {
			defer wg.Done()
			close(started)
			results <- post(ts.Client(), ts.URL, body, map[string]string{"X-Rmsynd-Timeout": "30s"})
		}()
		<-started
		// Wait until this request is either holding an admission token
		// or has been shed, before firing the next.
		waitAccounted(srv, i+1)
	}
	// Every request is now pinned: capacity of them hold tokens, the
	// rest are shed. Open the gate and let the admitted ones finish.
	once.Do(func() { close(release) })
	wg.Wait()
	close(results)

	var ok, shed, other int
	for r := range results {
		switch {
		case r.err == nil && r.status == http.StatusOK:
			ok++
		case r.err == nil && r.status == http.StatusTooManyRequests:
			shed++
			if code := errorCode(r.body); code != "queue_full" {
				bad("structured", "429 without queue_full code: "+string(r.body))
			}
		default:
			other++
			bad("status", fmt.Sprintf("burst request: err=%v status=%d body=%.120s", r.err, r.status, r.body))
		}
	}
	if shed != extra {
		bad("shed", fmt.Sprintf("shed %d of a capacity+%d burst, want exactly %d", shed, extra, extra))
	}
	if ok != capacity {
		bad("shed", fmt.Sprintf("served %d, want all %d admitted", ok, capacity))
	}
	_ = other
}

// waitAccounted polls the metrics until `fired` requests are accounted
// for — holding an admission token (running or queued) or shed — which
// removes the overload scenario's scheduling nondeterminism: every
// fired request lands in exactly one of those states and stays there
// until the gate opens.
func waitAccounted(srv *server.Server, fired int) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		m := srv.Metrics()
		total := promGauge(m, "rmsynd_inflight") + promGauge(m, "rmsynd_queue_depth") + promGauge(m, "rmsynd_shed_total")
		if total >= int64(fired) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// promGauge extracts one un-labelled metric value from a Prometheus
// text rendering (0 when absent).
func promGauge(text, name string) int64 {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			fmt.Sscanf(line[len(name)+1:], "%d", &v)
			return v
		}
	}
	return 0
}

// runDrain: BeginDrain stops admission with a structured 503 while
// in-flight work completes; Shutdown returns once it has.
func runDrain(spec []byte, bad func(string, string)) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	srv, ts := newTestServer(server.Config{
		Workers: 2,
		Hooks:   &server.Hooks{JobStart: func(string) { entered <- struct{}{}; <-release }},
	})
	defer ts.Close()

	inflight := make(chan srvResp, 1)
	go func() { inflight <- post(ts.Client(), ts.URL, spec, nil) }()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		bad("drain", "in-flight request never started")
		return
	}

	srv.BeginDrain()
	structuredError(post(ts.Client(), ts.URL, spec, nil),
		http.StatusServiceUnavailable, "draining", bad, "post-drain admission")

	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	go func() { done <- srv.Shutdown(ctx) }()
	once.Do(func() { close(release) })

	if r := <-inflight; r.err != nil || r.status != http.StatusOK {
		bad("drain", fmt.Sprintf("in-flight request during drain: err=%v status=%d", r.err, r.status))
	}
	if err := <-done; err != nil {
		bad("drain", "graceful Shutdown returned "+err.Error())
	}
}
