package chaos

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestChaosSweep runs the full chaos sweep: the deterministic plan set
// plus a few seeded random plans per circuit, at one and four workers.
// The CI chaos leg scales it up via CHAOS_CIRCUITS / CHAOS_PLANS.
func TestChaosSweep(t *testing.T) {
	opt := SweepOptions{RandomPlans: 6}
	if v := os.Getenv("CHAOS_CIRCUITS"); v != "" {
		opt.Circuits = strings.Split(v, ",")
	}
	if v := os.Getenv("CHAOS_PLANS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CHAOS_PLANS=%q: %v", v, err)
		}
		opt.RandomPlans = n
	}
	if testing.Verbose() {
		opt.Logf = t.Logf
	}
	for _, v := range Sweep(opt) {
		t.Errorf("%s", v)
	}
}

// TestChaosSweepGenerated runs the fault-injection sweep over generated
// word-level instances (wordgen via bench.Resolve) instead of the fixed
// Table 2 set: an adder and a GF(2^4) multiplier, small enough to keep
// the full plan matrix fast but with genuinely multi-output arithmetic
// structure.
func TestChaosSweepGenerated(t *testing.T) {
	opt := SweepOptions{
		Circuits:    []string{"add4", "gfmul4"},
		RandomPlans: 2,
	}
	if testing.Verbose() {
		opt.Logf = t.Logf
	}
	for _, v := range Sweep(opt) {
		t.Errorf("%s", v)
	}
}
