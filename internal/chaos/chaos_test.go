package chaos

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestChaosSweep runs the full chaos sweep: the deterministic plan set
// plus a few seeded random plans per circuit, at one and four workers.
// The CI chaos leg scales it up via CHAOS_CIRCUITS / CHAOS_PLANS.
func TestChaosSweep(t *testing.T) {
	opt := SweepOptions{RandomPlans: 6}
	if v := os.Getenv("CHAOS_CIRCUITS"); v != "" {
		opt.Circuits = strings.Split(v, ",")
	}
	if v := os.Getenv("CHAOS_PLANS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CHAOS_PLANS=%q: %v", v, err)
		}
		opt.RandomPlans = n
	}
	if testing.Verbose() {
		opt.Logf = t.Logf
	}
	for _, v := range Sweep(opt) {
		t.Errorf("%s", v)
	}
}
