package chaos_test

import (
	"testing"

	"repro/internal/chaos"
)

// TestServerSweep drives the server-level chaos scenarios — pool panics,
// cache poisoning, mid-request cancellation, slow-loris bodies, injected
// core faults, malformed traffic, overload shedding, and drain — against
// live httptest instances. The invariant: every response is either a
// verified network or a truthful structured error; the process never
// crashes.
func TestServerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("server chaos sweep is not short")
	}
	violations := chaos.ServerSweep(chaos.ServerSweepOptions{Logf: t.Logf})
	for _, v := range violations {
		t.Errorf("chaos violation: circuit=%s plan=%s invariant=%s: %s",
			v.Circuit, v.Plan, v.Invariant, v.Detail)
	}
}
