// Package chaos is the deterministic fault-injection harness of the
// synthesis pipeline. It compiles declarative injection Plans into the
// probe hooks that budget, bdd, ofdd, and core expose
// (core.ProbeHooks), and its Sweep driver enumerates plans over the
// Table 2 bench circuits to prove the graceful-degradation ladder
// mechanically: no matter which kernel fails, and no matter where,
//
//   - no panic escapes core.Synthesize,
//   - the returned network verifies equivalent to the specification,
//   - Result.Degradations names the injected failure truthfully, and
//   - schedule-independent plans produce bit-identical results at
//     every worker count.
//
// Every injected budget error carries the Marker prefix in its phase
// tag, so an injected trip is distinguishable from a real one in
// degradation reasons — that is what makes the truthfulness invariant
// assertable. All hooks are pure closures over the Plan: given the
// same plan, the same circuit, and the same worker count, an injection
// schedule is fully deterministic.
//
// The hooks cost one nil check per probe site when no plan is
// installed; production runs never pay for this package.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
)

// Marker prefixes the phase tag of every injected *budget.Err (and the
// payload of every injected panic), so tests can tell an injected
// failure from a real one in degradation reasons and error messages.
const Marker = "chaos:"

// Plan is one declarative fault-injection schedule. The zero value
// injects nothing. A plan is immutable and safe for concurrent use;
// Hooks compiles it into fresh per-run closures, so one plan can drive
// many runs (the sweep reuses plans across circuits and worker
// counts).
type Plan struct {
	Name string

	// TripAtStep > 0 trips the run's budget from global work step N on
	// (or at exactly step N when StepOnce is set — the transient-fault
	// shape the retry rung absorbs when StepLimit is per-phase).
	// Global step numbering interleaves across workers, so step plans
	// are not ScheduleIndependent.
	TripAtStep int64
	StepOnce   bool
	// StepLimit is the Limit of the injected error: "" means "steps"
	// (sticky); "nodes"/"cubes" model transient per-phase trips;
	// "canceled"/"deadline" model external aborts.
	StepLimit string

	// TripAtPoll > 0 makes the budget report exhaustion from the Nth
	// graceful Exceeded poll on. Poll trips are sticky by the Exceeded
	// contract; this is the deterministic route to the best-so-far
	// rung, since polarity search only ever polls.
	TripAtPoll int64

	// FailBDDAlloc > 0 fails every specification-BDD allocation that
	// would reach this node count. The shared BDD manager grows only in
	// sequential phases, so the failure point is deterministic at any
	// worker count.
	FailBDDAlloc int

	// FailOFDDAlloc > 0 fails derivation-OFDD allocations reaching this
	// node count, for output OFDDOutput (negative = every output).
	// Derivation managers are per-output and per-attempt: the first
	// attempt trips, and unless OFDDPersist is set the retry rung's
	// second attempt runs clean — the canonical transient fault.
	FailOFDDAlloc int
	OFDDOutput    int
	OFDDPersist   bool

	// FailFactorAlloc > 0 fails factor-phase OFDD allocations reaching
	// this node count. The probe attaches to each factor OFDD context
	// as it is created; unless FactorPersist is set only the first
	// context (the shared one) is poisoned, so retry contexts run
	// clean. Only fires on the OFDD factoring route — set UseOFDDMethod.
	FailFactorAlloc int
	FactorPersist   bool

	// UseOFDDMethod runs the sweep's synthesis with MethodOFDD instead
	// of the default cube method, so factor-phase OFDD probes have a
	// manager to attach to.
	UseOFDDMethod bool

	// PanicAtPhase panics on entry to the named pipeline phase,
	// exercising the residual recover boundary; CancelAtPhase cancels
	// the run's context there, exercising the ladder's cancellation
	// path end to end.
	PanicAtPhase  string
	CancelAtPhase string

	// PanicWorker panics inside the worker goroutine deriving output
	// PanicOutput, exercising the per-output residual capture and its
	// re-raise across the merge barrier.
	PanicWorker bool
	PanicOutput int

	// WorkerDelay staggers derivation workers by a per-output delay.
	// A pure scheduling perturbation: the merged result must be
	// bit-identical to an uninjected run.
	WorkerDelay time.Duration

	// Basis selects the synthesis basis the plan runs under: "xor",
	// "sop", "auto", or "race" (core.ParseBasis). "" pins the legacy
	// pure GF(2) flow, keeping every pre-arbiter plan's contract —
	// including which failures escape as errors — unchanged.
	Basis string

	// TripArm injects a budget trip ("nodes") inside the named basis
	// arm ("xor" or "sop") of output ArmOutput; PanicArm injects a
	// plain panic there instead. Both fire inside the arm's containment
	// boundary, so under a hedged basis the run must complete with the
	// sibling arm's verified result and the injection named in the
	// degradation trail — never an error.
	TripArm   string
	PanicArm  string
	ArmOutput int

	// DelayArm stalls every entry into the named basis arm by ArmDelay.
	// Like WorkerDelay, a pure scheduling perturbation: arbitration is
	// a deterministic post-barrier comparison, so the result must be
	// bit-identical to an uninjected run at the same basis.
	DelayArm string
	ArmDelay time.Duration
}

// Injects reports whether the plan perturbs the run at all (worker
// delays count: they perturb the schedule, if nothing else).
func (p Plan) Injects() bool {
	return p.TripAtStep > 0 || p.TripAtPoll > 0 || p.FailBDDAlloc > 0 ||
		p.FailOFDDAlloc > 0 || p.FailFactorAlloc > 0 ||
		p.PanicAtPhase != "" || p.CancelAtPhase != "" || p.PanicWorker ||
		p.WorkerDelay > 0 ||
		p.TripArm != "" || p.PanicArm != "" || (p.DelayArm != "" && p.ArmDelay > 0)
}

// ExpectsError reports whether the plan makes Synthesize return an
// error instead of a degraded network: injected panics are bugs by
// definition, and the ladder's contract is to surface them, not to
// absorb them. Arm-targeted injections (TripArm/PanicArm) never expect
// an error — they fire inside the arbiter's per-arm containment
// boundary, whose contract is the opposite: the sibling arm's verified
// result covers the cone. A worker panic is likewise contained when a
// hedged basis gives the cone a sibling arm.
func (p Plan) ExpectsError() bool {
	if p.PanicAtPhase != "" {
		return true
	}
	return p.PanicWorker && (p.Basis == "" || p.Basis == "xor")
}

// ScheduleIndependent reports whether the plan's injection schedule is
// identical at every worker count. The global step and poll counters
// are shared across workers, so which output's guarded region observes
// a counter-keyed trip first depends on the schedule; every other
// probe keys off per-output or sequential-phase state.
func (p Plan) ScheduleIndependent() bool {
	return p.TripAtStep == 0 && p.TripAtPoll == 0
}

// Hooks compiles the plan into the probe hooks for one synthesis run.
// cancel must be the CancelFunc of the context the run is given
// (required only when CancelAtPhase is set). The returned hooks carry
// fresh injection state: build one per run.
func (p Plan) Hooks(cancel context.CancelFunc) *core.ProbeHooks {
	h := &core.ProbeHooks{}
	if p.TripAtStep > 0 {
		lim := p.StepLimit
		if lim == "" {
			lim = "steps"
		}
		n := p.TripAtStep
		once := p.StepOnce
		h.BudgetStep = func(phase string, step int64) *budget.Err {
			// The atomic step counter hands each value to exactly one
			// goroutine, so "step == n" fires exactly once with no
			// extra state even under full contention.
			if step == n || (!once && step > n) {
				return &budget.Err{Phase: Marker + "step", Limit: lim, Max: n, Used: step}
			}
			return nil
		}
	}
	if p.TripAtPoll > 0 {
		n := p.TripAtPoll
		h.BudgetPoll = func(poll int64) *budget.Err {
			if poll >= n {
				return &budget.Err{Phase: Marker + "poll", Limit: "steps", Max: n, Used: poll}
			}
			return nil
		}
	}
	if p.FailBDDAlloc > 0 {
		t := p.FailBDDAlloc
		h.BDDAlloc = func(nodes int) *budget.Err {
			if nodes >= t {
				return &budget.Err{Phase: Marker + "bdd-alloc", Limit: "nodes", Max: int64(t), Used: int64(nodes)}
			}
			return nil
		}
	}
	if p.FailOFDDAlloc > 0 {
		t, target, persist := p.FailOFDDAlloc, p.OFDDOutput, p.OFDDPersist
		var attempts sync.Map // output index -> *atomic.Int32
		h.OFDDAlloc = func(output int) func(nodes int) *budget.Err {
			if target >= 0 && output != target {
				return nil
			}
			v, _ := attempts.LoadOrStore(output, new(atomic.Int32))
			if v.(*atomic.Int32).Add(1) > 1 && !persist {
				return nil // transient: the retry attempt runs clean
			}
			return func(nodes int) *budget.Err {
				if nodes >= t {
					return &budget.Err{Phase: Marker + "ofdd-alloc", Limit: "nodes", Max: int64(t), Used: int64(nodes)}
				}
				return nil
			}
		}
	}
	if p.FailFactorAlloc > 0 {
		t, persist := p.FailFactorAlloc, p.FactorPersist
		var contexts atomic.Int32
		h.FactorOFDDAlloc = func() func(nodes int) *budget.Err {
			if contexts.Add(1) > 1 && !persist {
				return nil // transient: retry contexts run clean
			}
			return func(nodes int) *budget.Err {
				if nodes >= t {
					return &budget.Err{Phase: Marker + "factor-alloc", Limit: "nodes", Max: int64(t), Used: int64(nodes)}
				}
				return nil
			}
		}
	}
	if p.PanicAtPhase != "" || p.CancelAtPhase != "" {
		panicAt, cancelAt := p.PanicAtPhase, p.CancelAtPhase
		h.Phase = func(name string) {
			if name == cancelAt && cancel != nil {
				cancel()
			}
			if name == panicAt {
				panic(fmt.Sprintf("%sinjected panic at phase %q", Marker, name))
			}
		}
	}
	if p.TripArm != "" || p.PanicArm != "" || (p.DelayArm != "" && p.ArmDelay > 0) {
		tripArm, panicArm, armOut := p.TripArm, p.PanicArm, p.ArmOutput
		delayArm, armDelay := p.DelayArm, p.ArmDelay
		h.Arm = func(basis string, output int) {
			if basis == delayArm && armDelay > 0 {
				time.Sleep(armDelay)
			}
			if basis == tripArm && output == armOut {
				// A *budget.Err panic is exactly what a real budget trip
				// inside the arm looks like; the containment boundary
				// records it as the arm's failure.
				panic(&budget.Err{Phase: Marker + "arm", Limit: "nodes", Max: 1, Used: 1})
			}
			if basis == panicArm && output == armOut {
				panic(fmt.Sprintf("%sinjected panic in %s arm of output %d", Marker, basis, output))
			}
		}
	}
	if p.PanicWorker || p.WorkerDelay > 0 {
		panicWorker, panicOutput, delay := p.PanicWorker, p.PanicOutput, p.WorkerDelay
		h.Worker = func(worker, output int) {
			_ = worker
			if delay > 0 {
				// Deterministic in the output index, never in the worker
				// index: the stagger shakes the schedule without making
				// any output's own work depend on who runs it.
				time.Sleep(time.Duration(output%3) * delay)
			}
			if panicWorker && output == panicOutput {
				panic(fmt.Sprintf("%sinjected panic in worker deriving output %d", Marker, output))
			}
		}
	}
	return h
}

// Plans returns the deterministic plan set the sweep always runs: at
// least one plan per probe site, covering sticky and transient trips,
// targeted and broadcast allocation failures, injected panics at a
// sequential phase and inside a worker, cancellation, and a pure
// scheduling perturbation. numOutputs scopes the targeted plans.
func Plans(numOutputs int) []Plan {
	last := numOutputs - 1
	if last < 0 {
		last = 0
	}
	return []Plan{
		{Name: "step-sticky", TripAtStep: 400},
		{Name: "step-transient", TripAtStep: 900, StepOnce: true, StepLimit: "nodes"},
		{Name: "step-early", TripAtStep: 1},
		{Name: "step-cancel", TripAtStep: 250, StepLimit: "canceled"},
		{Name: "poll-early", TripAtPoll: 1},
		{Name: "poll-mid", TripAtPoll: 6},
		{Name: "bdd-alloc-tiny", FailBDDAlloc: 8},
		{Name: "bdd-alloc-mid", FailBDDAlloc: 96},
		{Name: "ofdd-transient", FailOFDDAlloc: 6, OFDDOutput: 0},
		{Name: "ofdd-persistent", FailOFDDAlloc: 6, OFDDOutput: last, OFDDPersist: true},
		{Name: "ofdd-all", FailOFDDAlloc: 10, OFDDOutput: -1},
		{Name: "factor-alloc", FailFactorAlloc: 24, UseOFDDMethod: true},
		{Name: "factor-alloc-persistent", FailFactorAlloc: 24, FactorPersist: true, UseOFDDMethod: true},
		{Name: "panic-fprm", PanicAtPhase: "fprm"},
		{Name: "panic-emit", PanicAtPhase: "emit"},
		{Name: "panic-worker", PanicWorker: true, PanicOutput: 0},
		{Name: "cancel-spec-bdd", CancelAtPhase: "spec-bdd"},
		{Name: "cancel-fprm", CancelAtPhase: "fprm"},
		{Name: "cancel-redund", CancelAtPhase: "redund"},
		{Name: "worker-delay", WorkerDelay: 100 * time.Microsecond},
		// Arm-targeted faults under the raced basis: killing either arm
		// of a hedged cone — by budget trip or by panic — must yield the
		// sibling arm's verified result, truthfully attributed; stalling
		// one arm must change nothing at all.
		{Name: "arm-trip-xor", Basis: "race", TripArm: "xor", ArmOutput: 0},
		{Name: "arm-trip-sop", Basis: "race", TripArm: "sop", ArmOutput: last},
		{Name: "arm-panic-xor", Basis: "race", PanicArm: "xor", ArmOutput: last},
		{Name: "arm-panic-sop", Basis: "race", PanicArm: "sop", ArmOutput: 0},
		{Name: "arm-delay-xor", Basis: "race", DelayArm: "xor", ArmDelay: 100 * time.Microsecond},
		{Name: "arm-delay-sop", Basis: "race", DelayArm: "sop", ArmDelay: 100 * time.Microsecond},
	}
}

// RandomPlans returns n seeded plans drawn over every probe site and a
// wide threshold range. The same (n, seed, numOutputs) always yields
// the same plans, so a sweep failure reproduces from its seed. Plans
// whose thresholds land beyond what the circuit ever allocates are
// harmless: the sweep accepts "no injection fired, result identical to
// baseline" as truthful.
func RandomPlans(n int, seed int64, numOutputs int) []Plan {
	if n <= 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	phases := []string{"spec-bdd", "fprm", "factor", "emit", "redund", "merge"}
	limits := []string{"", "", "nodes", "cubes", "canceled"}
	arms := []string{"xor", "sop"}
	ps := make([]Plan, 0, n)
	for i := 0; i < n; i++ {
		p := Plan{Name: fmt.Sprintf("rand-%d-%d", seed, i)}
		switch r.Intn(9) {
		case 0:
			p.TripAtStep = int64(1 + r.Intn(5000))
			p.StepOnce = r.Intn(2) == 0
			p.StepLimit = limits[r.Intn(len(limits))]
		case 1:
			p.TripAtPoll = int64(1 + r.Intn(40))
		case 2:
			p.FailBDDAlloc = 1 + r.Intn(3000)
		case 3:
			p.FailOFDDAlloc = 1 + r.Intn(200)
			p.OFDDOutput = r.Intn(numOutputs+1) - 1 // -1 = all outputs
			p.OFDDPersist = r.Intn(2) == 0
		case 4:
			p.FailFactorAlloc = 1 + r.Intn(400)
			p.FactorPersist = r.Intn(2) == 0
			p.UseOFDDMethod = true
		case 5:
			p.PanicAtPhase = phases[r.Intn(len(phases))]
		case 6:
			p.CancelAtPhase = phases[r.Intn(len(phases))]
		case 7:
			p.WorkerDelay = time.Duration(1+r.Intn(200)) * time.Microsecond
		case 8:
			p.Basis = "race"
			if numOutputs > 0 {
				p.ArmOutput = r.Intn(numOutputs)
			}
			arm := arms[r.Intn(len(arms))]
			if r.Intn(2) == 0 {
				p.TripArm = arm
			} else {
				p.PanicArm = arm
			}
		}
		ps = append(ps, p)
	}
	return ps
}
