package chaos

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/budget"
	"repro/internal/core"
)

// ladderRun synthesizes one bench circuit under an injection plan at
// one worker (the deterministic schedule every rung assertion needs).
func ladderRun(t *testing.T, circuit string, p Plan, mutate func(*core.Options)) (*core.Result, error) {
	t.Helper()
	c, ok := bench.ByName(circuit)
	if !ok {
		t.Fatalf("unknown bench circuit %q", circuit)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := core.DefaultOptions()
	opt.Workers = 1
	// The ladder tests assert the legacy GF(2) ladder unless the plan
	// names a basis explicitly.
	opt.Basis = core.BasisXor
	if p.Basis != "" {
		b, err := core.ParseBasis(p.Basis)
		if err != nil {
			t.Fatalf("plan basis: %v", err)
		}
		opt.Basis = b
	}
	if p.UseOFDDMethod {
		opt.Method = core.MethodOFDD
	}
	opt.Hooks = p.Hooks(cancel)
	if mutate != nil {
		mutate(&opt)
	}
	return core.Synthesize(ctx, c.Build(), opt)
}

func hasRung(res *core.Result, stage, fallback string) bool {
	for _, d := range res.Degradations {
		if d.Stage == stage && d.Fallback == fallback {
			return true
		}
	}
	return false
}

// TestLadderRungs drives every rung of the degradation ladder through
// a chaos plan (or, for the budget-steered cube→OFDD rung, the budget
// option that steers it) and asserts the recorded (stage, fallback)
// transitions — including the retry rung in both its recovered and
// exhausted forms, on both the derivation and the factoring path.
func TestLadderRungs(t *testing.T) {
	cases := []struct {
		name    string
		circuit string
		plan    Plan
		mutate  func(*core.Options)
		want    [][2]string // (stage, fallback) pairs that must appear
		absent  [][2]string // pairs that must not appear
	}{
		{
			name: "spec-bdd to swept-spec", circuit: "f2",
			plan: Plan{FailBDDAlloc: 1},
			want: [][2]string{{"spec-bdd", "swept-spec"}},
		},
		{
			name: "transient trip recovered by retry", circuit: "adr4",
			plan: Plan{FailOFDDAlloc: 1, OFDDOutput: 0},
			want: [][2]string{{"fprm", "retry"}},
			absent: [][2]string{
				{"retry", "spec-cone"},
				{"fprm", "spec-cone"},
			},
		},
		{
			name: "persistent trip falls past retry to spec-cone", circuit: "adr4",
			plan: Plan{FailOFDDAlloc: 1, OFDDOutput: 0, OFDDPersist: true},
			want: [][2]string{
				{"fprm", "retry"},
				{"retry", "spec-cone"},
			},
		},
		{
			name: "retry disabled goes straight to spec-cone", circuit: "adr4",
			plan:   Plan{FailOFDDAlloc: 1, OFDDOutput: 0, OFDDPersist: true},
			mutate: func(o *core.Options) { o.RetryFactor = 0 },
			want:   [][2]string{{"fprm", "spec-cone"}},
			absent: [][2]string{{"fprm", "retry"}},
		},
		{
			name: "factor trip recovered by retry", circuit: "adr4",
			plan: Plan{FailFactorAlloc: 1, UseOFDDMethod: true},
			want: [][2]string{{"factor", "retry"}},
			absent: [][2]string{
				{"retry", "spec-cone"},
				{"factor", "spec-cone"},
			},
		},
		{
			name: "persistent factor trip falls past retry", circuit: "adr4",
			plan: Plan{FailFactorAlloc: 1, FactorPersist: true, UseOFDDMethod: true},
			want: [][2]string{
				{"factor", "retry"},
				{"retry", "spec-cone"},
			},
		},
		{
			name: "cancellation drains the tail of the ladder", circuit: "f2",
			plan: Plan{CancelAtPhase: "redund"},
			want: [][2]string{
				{"redund", "skipped"},
				{"merge", "skipped"},
				{"do-no-harm", "swept-spec"},
			},
		},
		{
			name: "cube budget steers to the OFDD method", circuit: "mlp4",
			plan:   Plan{},
			mutate: func(o *core.Options) { o.MaxCubes = 4 },
			want:   [][2]string{{"cube-method", "ofdd-method"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := ladderRun(t, tc.circuit, tc.plan, tc.mutate)
			if err != nil {
				t.Fatalf("Synthesize: %v", err)
			}
			for _, w := range tc.want {
				if !hasRung(res, w[0], w[1]) {
					t.Errorf("missing rung %s -> %s in:\n%s", w[0], w[1], res.FallbackReport())
				}
			}
			for _, a := range tc.absent {
				if hasRung(res, a[0], a[1]) {
					t.Errorf("unexpected rung %s -> %s in:\n%s", a[0], a[1], res.FallbackReport())
				}
			}
		})
	}
}

// countPolls runs an uninjected synthesis with a counting poll probe,
// returning how many graceful budget polls the run makes — the scan
// range for the poll-keyed rung tests below.
func countPolls(t *testing.T, circuit string) int64 {
	t.Helper()
	var polls atomic.Int64
	c, _ := bench.ByName(circuit)
	opt := core.DefaultOptions()
	opt.Workers = 1
	opt.Basis = core.BasisXor // match ladderRun's pinned legacy flow
	opt.Hooks = &core.ProbeHooks{BudgetPoll: func(poll int64) *budget.Err {
		polls.Store(poll)
		return nil
	}}
	if _, err := core.Synthesize(context.Background(), c.Build(), opt); err != nil {
		t.Fatalf("counting run: %v", err)
	}
	return polls.Load()
}

// TestBestSoFarRungReachable proves the polarity-search rung is
// chaos-reachable: some injected poll trip lands mid-search and makes
// the run keep the best polarity found so far. The search only ever
// polls (it never takes counted steps), which is exactly what the poll
// probe exists for.
func TestBestSoFarRungReachable(t *testing.T) {
	total := countPolls(t, "9sym")
	if total < 2 {
		t.Fatalf("9sym run made only %d polls", total)
	}
	for m := int64(1); m <= total; m++ {
		res, err := ladderRun(t, "9sym", Plan{TripAtPoll: m}, nil)
		if err != nil {
			t.Fatalf("TripAtPoll=%d: %v", m, err)
		}
		if hasRung(res, "polarity-search", "best-so-far") {
			return
		}
	}
	t.Fatalf("no injected poll trip in 1..%d reached the best-so-far rung", total)
}

// TestRedundPartialRungReachable proves the partially-run redundancy
// pass is reported: some injected poll trip lands between redund
// passes, and the run must record redund -> partial with the injected
// (marked) reason rather than staying silent about the weaker pass.
func TestRedundPartialRungReachable(t *testing.T) {
	total := countPolls(t, "f2")
	for m := int64(1); m <= total; m++ {
		res, err := ladderRun(t, "f2", Plan{TripAtPoll: m}, nil)
		if err != nil {
			t.Fatalf("TripAtPoll=%d: %v", m, err)
		}
		for _, d := range res.Degradations {
			if d.Stage == "redund" && d.Fallback == "partial" {
				if !strings.Contains(d.Reason, Marker) {
					t.Fatalf("partial redund pass not attributed to the injected trip: %+v", d)
				}
				return
			}
		}
	}
	t.Fatalf("no injected poll trip in 1..%d reached the redund partial rung", total)
}

// TestFallbackReport asserts the report renders exactly one accurate
// line per degradation, and stays empty for a clean run.
func TestFallbackReport(t *testing.T) {
	res, err := ladderRun(t, "adr4", Plan{FailOFDDAlloc: 1, OFDDOutput: 0, OFDDPersist: true}, nil)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if len(res.Degradations) == 0 {
		t.Fatal("persistent injection produced no degradations")
	}
	report := res.FallbackReport()
	lines := strings.Split(strings.TrimRight(report, "\n"), "\n")
	if len(lines) != len(res.Degradations) {
		t.Fatalf("report has %d lines for %d degradations:\n%s", len(lines), len(res.Degradations), report)
	}
	for i, d := range res.Degradations {
		for _, part := range []string{d.Output, d.Stage, d.Fallback, d.Reason} {
			if !strings.Contains(lines[i], part) {
				t.Errorf("report line %d %q misses %q", i, lines[i], part)
			}
		}
	}

	clean, err := ladderRun(t, "f2", Plan{}, nil)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if len(clean.Degradations) != 0 || clean.FallbackReport() != "" {
		t.Fatalf("clean run reported degradations: %q", clean.FallbackReport())
	}
}

// TestNoFallbackSurfacesErrors asserts NoFallback neither masks real
// errors nor suppresses the ladder: an injected panic still surfaces
// as a phase-tagged error, and an injected cancel still degrades (just
// without the do-no-harm rung, whose reference network NoFallback
// disables).
func TestNoFallbackSurfacesErrors(t *testing.T) {
	noFallback := func(o *core.Options) { o.NoFallback = true }

	res, err := ladderRun(t, "f2", Plan{PanicAtPhase: "fprm"}, noFallback)
	if err == nil {
		t.Fatal("injected panic with NoFallback returned no error")
	}
	if res != nil {
		t.Fatal("injected panic returned a result alongside the error")
	}
	if !strings.Contains(err.Error(), Marker) || !strings.Contains(err.Error(), "fprm") {
		t.Fatalf("error does not surface the injected panic: %v", err)
	}

	res, err = ladderRun(t, "f2", Plan{CancelAtPhase: "redund"}, noFallback)
	if err != nil {
		t.Fatalf("canceled run with NoFallback: %v", err)
	}
	if !hasRung(res, "redund", "skipped") {
		t.Fatalf("NoFallback suppressed the ladder:\n%s", res.FallbackReport())
	}
	if hasRung(res, "do-no-harm", "swept-spec") {
		t.Fatal("NoFallback did not disable the do-no-harm rung")
	}
}
