package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(130)
	if !s.IsEmpty() {
		t.Fatal("new set not empty")
	}
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(129)
	if got := s.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false, want true", i)
		}
	}
	if s.Has(1) || s.Has(128) || s.Has(500) {
		t.Error("Has reports absent elements")
	}
	s.Clear(64)
	if s.Has(64) {
		t.Error("Clear(64) did not remove element")
	}
	if got := s.Elements(); len(got) != 3 || got[0] != 0 || got[1] != 63 || got[2] != 129 {
		t.Errorf("Elements = %v", got)
	}
	if s.Min() != 0 {
		t.Errorf("Min = %d, want 0", s.Min())
	}
	s.Clear(0)
	if s.Min() != 63 {
		t.Errorf("Min = %d, want 63", s.Min())
	}
}

func TestBitSetMinEmpty(t *testing.T) {
	if NewBitSet(10).Min() != -1 {
		t.Error("Min of empty set should be -1")
	}
}

func TestBitSetSetOps(t *testing.T) {
	a := NewBitSet(100)
	b := NewBitSet(100)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(99)
	if !a.Intersects(b) {
		t.Error("a and b share 70 but Intersects is false")
	}
	u := a.Clone()
	u.UnionWith(b)
	if u.Count() != 3 {
		t.Errorf("union count = %d, want 3", u.Count())
	}
	i := a.Clone()
	i.IntersectWith(b)
	if i.Count() != 1 || !i.Has(70) {
		t.Errorf("intersection = %v", i)
	}
	d := a.Clone()
	d.DifferenceWith(b)
	if d.Count() != 1 || !d.Has(1) {
		t.Errorf("difference = %v", d)
	}
	if !i.SubsetOf(a) || !i.SubsetOf(b) {
		t.Error("intersection not subset of operands")
	}
	if a.SubsetOf(b) {
		t.Error("a should not be subset of b")
	}
}

func TestBitSetEqualDifferentCapacity(t *testing.T) {
	a := NewBitSet(10)
	b := NewBitSet(200)
	a.Set(3)
	b.Set(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("equal sets with different capacities compare unequal")
	}
	b.Set(150)
	if a.Equal(b) || b.Equal(a) {
		t.Error("unequal sets compare equal")
	}
}

func TestBitSetKeyIgnoresTrailingZeros(t *testing.T) {
	a := NewBitSet(10)
	b := NewBitSet(500)
	a.Set(5)
	b.Set(5)
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestCubeAlgebra(t *testing.T) {
	c := New(8, 0, 2, 5)
	d := New(8, 0, 2)
	if !d.DividesInto(c) {
		t.Fatal("x0x2 should divide x0x2x5")
	}
	q := d.Quotient(c)
	if q.String() != "x5" {
		t.Errorf("quotient = %s, want x5", q)
	}
	p := d.Times(q)
	if !p.Equal(c) {
		t.Errorf("d*q = %s, want %s", p, c)
	}
	one := One(8)
	if !one.IsOne() || one.String() != "1" {
		t.Error("One misbehaves")
	}
	if !one.DividesInto(c) {
		t.Error("1 should divide everything")
	}
	if c.DividesInto(d) {
		t.Error("larger cube cannot divide smaller")
	}
}

func TestCubeEval(t *testing.T) {
	c := New(4, 1, 3)
	assign := NewBitSet(4)
	if c.Eval(assign) {
		t.Error("cube true on empty assignment")
	}
	assign.Set(1)
	assign.Set(3)
	if !c.Eval(assign) {
		t.Error("cube false when all its vars set")
	}
	assign.Set(0) // extra variables don't matter
	if !c.Eval(assign) {
		t.Error("cube false with extra vars set")
	}
}

func TestListCanonicalizeCancelsPairs(t *testing.T) {
	l := NewList(4)
	l.Add(New(4, 0))
	l.Add(New(4, 1))
	l.Add(New(4, 0)) // cancels first
	l.Canonicalize()
	if l.Len() != 1 || l.Cubes[0].String() != "x1" {
		t.Errorf("canonicalize failed: %s", l)
	}
	// Triple occurrence leaves one.
	m := NewList(4)
	for i := 0; i < 3; i++ {
		m.Add(New(4, 2))
	}
	m.Canonicalize()
	if m.Len() != 1 {
		t.Errorf("odd multiplicity should leave one cube, got %d", m.Len())
	}
}

func TestListEvalXorSemantics(t *testing.T) {
	// f = x0 ^ x0x1: truth table 00->0 10->1 01->0 11->0
	l := NewList(2)
	l.Add(New(2, 0))
	l.Add(New(2, 0, 1))
	cases := []struct {
		a0, a1 int
		want   bool
	}{{0, 0, false}, {1, 0, true}, {0, 1, false}, {1, 1, false}}
	for _, tc := range cases {
		assign := NewBitSet(2)
		if tc.a0 == 1 {
			assign.Set(0)
		}
		if tc.a1 == 1 {
			assign.Set(1)
		}
		if got := l.Eval(assign); got != tc.want {
			t.Errorf("f(%d,%d) = %v, want %v", tc.a0, tc.a1, got, tc.want)
		}
	}
}

func TestDivideCubeIdentity(t *testing.T) {
	// f = x0x1 ^ x0x2 ^ x3. Divide by x0: q = x1^x2, r = x3.
	l := NewList(4)
	l.Add(New(4, 0, 1))
	l.Add(New(4, 0, 2))
	l.Add(New(4, 3))
	q, r := l.DivideCube(New(4, 0))
	if q.Len() != 2 || r.Len() != 1 {
		t.Fatalf("q=%s r=%s", q, r)
	}
	// Verify l == x0*q ^ r pointwise over all 16 assignments.
	rebuilt := q.MultiplyVar(0).Xor(r)
	for a := 0; a < 16; a++ {
		assign := NewBitSet(4)
		for v := 0; v < 4; v++ {
			if a&(1<<v) != 0 {
				assign.Set(v)
			}
		}
		if l.Eval(assign) != rebuilt.Eval(assign) {
			t.Fatalf("division identity broken at assignment %04b", a)
		}
	}
}

func TestDisjointSupportGroups(t *testing.T) {
	// {x0x1, x1x2} overlap; {x3} separate; {x4x5} separate.
	l := NewList(6)
	l.Add(New(6, 0, 1))
	l.Add(New(6, 1, 2))
	l.Add(New(6, 3))
	l.Add(New(6, 4, 5))
	groups := l.DisjointSupportGroups()
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[g.Len()]++
		// Supports of distinct groups must not intersect.
		for _, h := range groups {
			if g != h && g.Support().Intersects(h.Support()) {
				t.Error("groups share support")
			}
		}
	}
	if sizes[2] != 1 || sizes[1] != 2 {
		t.Errorf("group size distribution = %v", sizes)
	}
}

func TestDisjointSupportGroupsConstantCube(t *testing.T) {
	l := NewList(3)
	l.Add(One(3))
	l.Add(New(3, 0))
	groups := l.DisjointSupportGroups()
	if len(groups) != 2 {
		t.Fatalf("constant cube should be its own group; got %d groups", len(groups))
	}
}

func TestListXor(t *testing.T) {
	a := NewList(3)
	a.Add(New(3, 0))
	a.Add(New(3, 1))
	b := NewList(3)
	b.Add(New(3, 1))
	b.Add(New(3, 2))
	x := a.Xor(b)
	// x0 ^ x2 remains after x1 cancels.
	if x.Len() != 2 {
		t.Fatalf("xor len = %d, want 2: %s", x.Len(), x)
	}
	if !x.Support().Has(0) || !x.Support().Has(2) || x.Support().Has(1) {
		t.Errorf("xor support wrong: %s", x)
	}
}

func TestLiteralCounts(t *testing.T) {
	l := NewList(4)
	l.Add(New(4, 0, 1))
	l.Add(New(4, 0, 2))
	l.Add(New(4, 0))
	counts := l.LiteralCounts()
	want := []int{3, 1, 1, 0}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("count[%d] = %d, want %d", i, counts[i], w)
		}
	}
	if l.Literals() != 5 {
		t.Errorf("Literals = %d, want 5", l.Literals())
	}
}

// Property: for random ESOPs and random divisor cubes, the division
// identity f = d*q ^ r holds pointwise.
func TestQuickDivisionIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5) // 3..7 vars
		l := NewList(n)
		numCubes := 1 + rng.Intn(8)
		for i := 0; i < numCubes; i++ {
			c := One(n)
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 1 {
					c.Vars.Set(v)
				}
			}
			l.Add(c)
		}
		l.Canonicalize()
		d := One(n)
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				d.Vars.Set(v)
			}
		}
		q, r := l.DivideCube(d)
		// rebuild d*q ^ r
		rebuilt := NewList(n)
		for _, c := range q.Cubes {
			rebuilt.Add(c.Times(d))
		}
		for _, c := range r.Cubes {
			rebuilt.Add(c.Clone())
		}
		for a := 0; a < 1<<n; a++ {
			assign := NewBitSet(n)
			for v := 0; v < n; v++ {
				if a&(1<<v) != 0 {
					assign.Set(v)
				}
			}
			if l.Eval(assign) != rebuilt.Eval(assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Xor is its own inverse: (a ⊕ b) ⊕ b == a (canonicalized).
func TestQuickXorInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		mk := func() *List {
			l := NewList(n)
			for i := 0; i < 1+rng.Intn(6); i++ {
				c := One(n)
				for v := 0; v < n; v++ {
					if rng.Intn(2) == 1 {
						c.Vars.Set(v)
					}
				}
				l.Add(c)
			}
			l.Canonicalize()
			return l
		}
		a, b := mk(), mk()
		return a.Xor(b).Xor(b).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
