// Package cube provides positive-literal cubes (products of variables) and
// ESOP (exclusive-or sum of products) cube lists, the core currency of
// fixed-polarity Reed-Muller synthesis.
//
// A cube here is a set of variable indices: the product of those variables.
// Polarity is handled one level up (package fprm) by interpreting variable i
// as either x_i or its complement according to a polarity vector, so inside
// this package all literals are positive and a cube is just a bitset.
package cube

import (
	"math/bits"
	"strconv"
	"strings"
)

// wordBits is the number of bits per bitset word.
const wordBits = 64

// BitSet is a fixed-capacity set of small non-negative integers used to
// represent variable supports and cubes. The zero value is an empty set of
// capacity 0; use NewBitSet to size it.
//
// Bounds behavior: queries (Has) tolerate any non-negative index —
// everything past the capacity is simply absent — because comparisons
// between sets of different capacities are routine (Equal, SubsetOf).
// Mutations (Set, Clear) require i in [0, capacity): silently dropping a
// write would corrupt the cube it was meant for, so an out-of-range
// mutation is a programmer invariant violation and panics with a
// descriptive message rather than the raw index error.
type BitSet []uint64

// NewBitSet returns an empty BitSet able to hold values in [0, n).
func NewBitSet(n int) BitSet {
	return make(BitSet, (n+wordBits-1)/wordBits)
}

// Clone returns an independent copy of s.
func (s BitSet) Clone() BitSet {
	t := make(BitSet, len(s))
	copy(t, s)
	return t
}

// Set adds i to the set. The index must be within the set's capacity
// (see the type comment): a write that cannot land is a call-site bug,
// not a data condition, and panics.
func (s BitSet) Set(i int) {
	w := i / wordBits
	if i < 0 || w >= len(s) {
		panic("cube: BitSet.Set index out of range")
	}
	s[w] |= 1 << uint(i%wordBits)
}

// Clear removes i from the set. Same bounds invariant as Set: clearing a
// bit the set cannot hold indicates the caller sized the set wrong.
func (s BitSet) Clear(i int) {
	w := i / wordBits
	if i < 0 || w >= len(s) {
		panic("cube: BitSet.Clear index out of range")
	}
	s[w] &^= 1 << uint(i%wordBits)
}

// Has reports whether i is in the set.
func (s BitSet) Has(i int) bool {
	w := i / wordBits
	if w >= len(s) {
		return false
	}
	return s[w]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no elements.
func (s BitSet) IsEmpty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements.
// The sets may have different capacities.
func (s BitSet) Equal(t BitSet) bool {
	long, short := s, t
	if len(long) < len(short) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is also in t.
func (s BitSet) SubsetOf(t BitSet) bool {
	for i, w := range s {
		var tw uint64
		if i < len(t) {
			tw = t[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one element.
func (s BitSet) Intersects(t BitSet) bool {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// UnionWith adds all elements of t to s. t must not be larger than s.
func (s BitSet) UnionWith(t BitSet) {
	for i, w := range t {
		s[i] |= w
	}
}

// IntersectWith removes from s all elements not in t.
func (s BitSet) IntersectWith(t BitSet) {
	for i := range s {
		var tw uint64
		if i < len(t) {
			tw = t[i]
		}
		s[i] &= tw
	}
}

// DifferenceWith removes all elements of t from s.
func (s BitSet) DifferenceWith(t BitSet) {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		s[i] &^= t[i]
	}
}

// ForEach calls fn for every element of the set in increasing order.
func (s BitSet) ForEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Elements returns the members of the set in increasing order.
func (s BitSet) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Min returns the smallest element, or -1 if the set is empty.
func (s BitSet) Min() int {
	for wi, w := range s {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Key returns a map-key string uniquely identifying the set contents
// (trailing zero words are not significant).
func (s BitSet) Key() string {
	end := len(s)
	for end > 0 && s[end-1] == 0 {
		end--
	}
	var b strings.Builder
	for i := 0; i < end; i++ {
		b.WriteString(strconv.FormatUint(s[i], 16))
		b.WriteByte(',')
	}
	return b.String()
}

// String renders the set as {i, j, ...}.
func (s BitSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
