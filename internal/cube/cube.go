package cube

import (
	"fmt"
	"sort"
	"strings"
)

// Cube is a product of positive literals over variables [0, NumVars).
// The empty cube is the constant-1 cube.
type Cube struct {
	Vars BitSet // set of variable indices present in the product
}

// New returns the cube containing exactly the given variables.
func New(numVars int, vars ...int) Cube {
	c := Cube{Vars: NewBitSet(numVars)}
	for _, v := range vars {
		c.Vars.Set(v)
	}
	return c
}

// One returns the constant-1 cube (empty product) over numVars variables.
func One(numVars int) Cube { return Cube{Vars: NewBitSet(numVars)} }

// Clone returns an independent copy of c.
func (c Cube) Clone() Cube { return Cube{Vars: c.Vars.Clone()} }

// IsOne reports whether c is the constant-1 cube.
func (c Cube) IsOne() bool { return c.Vars.IsEmpty() }

// Size returns the number of literals in the cube.
func (c Cube) Size() int { return c.Vars.Count() }

// Has reports whether variable v appears in the cube.
func (c Cube) Has(v int) bool { return c.Vars.Has(v) }

// Equal reports whether two cubes are the same product.
func (c Cube) Equal(d Cube) bool { return c.Vars.Equal(d.Vars) }

// DividesInto reports whether c divides d, i.e. every literal of c appears
// in d (so d = c * quotient for some cube quotient).
func (c Cube) DividesInto(d Cube) bool { return c.Vars.SubsetOf(d.Vars) }

// Quotient returns d / c, valid only when c divides d.
func (c Cube) Quotient(d Cube) Cube {
	q := d.Clone()
	q.Vars.DifferenceWith(c.Vars)
	return q
}

// Times returns the product c * d.
func (c Cube) Times(d Cube) Cube {
	p := c.Clone()
	if len(d.Vars) > len(p.Vars) {
		p2 := Cube{Vars: d.Vars.Clone()}
		p2.Vars.UnionWith(c.Vars)
		return p2
	}
	p.Vars.UnionWith(d.Vars)
	return p
}

// Key returns a map key uniquely identifying the cube.
func (c Cube) Key() string { return c.Vars.Key() }

// Eval evaluates the cube on an assignment given as a bitset of true
// variables: the product is 1 iff all its variables are set.
func (c Cube) Eval(assign BitSet) bool { return c.Vars.SubsetOf(assign) }

// String renders the cube as x0*x3*... or "1" for the constant cube.
func (c Cube) String() string {
	if c.IsOne() {
		return "1"
	}
	var parts []string
	c.Vars.ForEach(func(v int) { parts = append(parts, fmt.Sprintf("x%d", v)) })
	return strings.Join(parts, "*")
}

// List is an ESOP: the XOR-sum of its cubes. The empty list is constant 0.
// A List is not automatically kept in canonical (duplicate-free) form; use
// Canonicalize to cancel duplicate cubes pairwise (a ⊕ a = 0).
type List struct {
	NumVars int
	Cubes   []Cube
}

// NewList returns an empty (constant-0) ESOP over numVars variables.
func NewList(numVars int) *List { return &List{NumVars: numVars} }

// Clone returns a deep copy of the list.
func (l *List) Clone() *List {
	out := &List{NumVars: l.NumVars, Cubes: make([]Cube, len(l.Cubes))}
	for i, c := range l.Cubes {
		out.Cubes[i] = c.Clone()
	}
	return out
}

// Add appends a cube to the XOR-sum.
func (l *List) Add(c Cube) { l.Cubes = append(l.Cubes, c) }

// IsZero reports whether the list is the constant-0 function (no cubes).
// Call Canonicalize first if duplicates may be present.
func (l *List) IsZero() bool { return len(l.Cubes) == 0 }

// Len returns the number of cubes.
func (l *List) Len() int { return len(l.Cubes) }

// Literals returns the total number of literals over all cubes.
func (l *List) Literals() int {
	n := 0
	for _, c := range l.Cubes {
		n += c.Size()
	}
	return n
}

// Canonicalize cancels duplicate cubes pairwise (x ⊕ x = 0) and sorts the
// remaining cubes for deterministic output.
func (l *List) Canonicalize() {
	count := make(map[string]int, len(l.Cubes))
	keep := make(map[string]Cube, len(l.Cubes))
	for _, c := range l.Cubes {
		k := c.Key()
		count[k]++
		keep[k] = c
	}
	l.Cubes = l.Cubes[:0]
	for k, n := range count {
		if n%2 == 1 {
			l.Cubes = append(l.Cubes, keep[k])
		}
	}
	l.Sort()
}

// Sort orders cubes by size then lexicographically by variable set,
// giving deterministic iteration order.
func (l *List) Sort() {
	sort.Slice(l.Cubes, func(i, j int) bool {
		a, b := l.Cubes[i], l.Cubes[j]
		if a.Size() != b.Size() {
			return a.Size() < b.Size()
		}
		ae, be := a.Vars.Elements(), b.Vars.Elements()
		for k := 0; k < len(ae) && k < len(be); k++ {
			if ae[k] != be[k] {
				return ae[k] < be[k]
			}
		}
		return len(ae) < len(be)
	})
}

// Support returns the set of variables appearing in any cube.
func (l *List) Support() BitSet {
	s := NewBitSet(l.NumVars)
	for _, c := range l.Cubes {
		s.UnionWith(c.Vars)
	}
	return s
}

// Eval evaluates the ESOP on an assignment: XOR of all activated cubes.
func (l *List) Eval(assign BitSet) bool {
	v := false
	for _, c := range l.Cubes {
		if c.Eval(assign) {
			v = !v
		}
	}
	return v
}

// Xor returns the ESOP l ⊕ m in canonical form.
func (l *List) Xor(m *List) *List {
	out := l.Clone()
	for _, c := range m.Cubes {
		out.Add(c.Clone())
	}
	out.Canonicalize()
	return out
}

// MultiplyVar returns the ESOP x_v * l (distributes over XOR).
func (l *List) MultiplyVar(v int) *List {
	out := l.Clone()
	for i := range out.Cubes {
		out.Cubes[i].Vars.Set(v)
	}
	out.Canonicalize()
	return out
}

// DivideCube performs algebraic (weak) division of the ESOP by cube d:
// l = d*quotient ⊕ remainder, where the quotient collects the cubes
// divisible by d (with d removed) and the remainder the rest. Over GF(2)
// this identity is exact for any d.
func (l *List) DivideCube(d Cube) (quotient, remainder *List) {
	quotient = NewList(l.NumVars)
	remainder = NewList(l.NumVars)
	for _, c := range l.Cubes {
		if d.DividesInto(c) {
			quotient.Add(d.Quotient(c))
		} else {
			remainder.Add(c.Clone())
		}
	}
	return quotient, remainder
}

// DivideList performs weak algebraic division of the ESOP l by the
// multi-cube ESOP divisor d: quotient = the largest cube set Q such that
// every cube of d×Q appears in l, remainder = the cubes of l not covered.
// The identity l = d·quotient ⊕ remainder holds exactly (no cancellation
// occurs because d×Q ⊆ l as cube sets). A nil quotient (len 0) means the
// division found nothing.
func (l *List) DivideList(d *List) (quotient, remainder *List) {
	quotient = NewList(l.NumVars)
	remainder = NewList(l.NumVars)
	if d.Len() == 0 {
		remainder = l.Clone()
		return quotient, remainder
	}
	// Quotient candidates: intersection over divisor cubes of {c/dc}.
	var qKeys map[string]Cube
	for _, dc := range d.Cubes {
		cur := make(map[string]Cube)
		for _, c := range l.Cubes {
			if dc.DividesInto(c) {
				q := dc.Quotient(c)
				cur[q.Key()] = q
			}
		}
		if qKeys == nil {
			qKeys = cur
		} else {
			for k := range qKeys {
				if _, ok := cur[k]; !ok {
					delete(qKeys, k)
				}
			}
		}
		if len(qKeys) == 0 {
			remainder = l.Clone()
			return NewList(l.NumVars), remainder
		}
	}
	covered := make(map[string]bool)
	products := 0
	for _, q := range qKeys {
		quotient.Add(q.Clone())
		for _, dc := range d.Cubes {
			covered[dc.Times(q).Key()] = true
			products++
		}
	}
	if len(covered) != products {
		// Two divisor×quotient products collided; in GF(2) they would
		// cancel and break the division identity. Report no quotient.
		return NewList(l.NumVars), l.Clone()
	}
	for _, c := range l.Cubes {
		if !covered[c.Key()] {
			remainder.Add(c.Clone())
		}
	}
	quotient.Sort()
	remainder.Sort()
	return quotient, remainder
}

// Key returns a canonical string identifying the cube multiset (the list
// must be canonicalized/sorted first for stability across orders; Key
// sorts internally so any order works).
func (l *List) Key() string {
	keys := make([]string, len(l.Cubes))
	for i, c := range l.Cubes {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// LiteralCounts returns, for each variable, the number of cubes containing
// it. Useful for choosing division candidates.
func (l *List) LiteralCounts() []int {
	counts := make([]int, l.NumVars)
	for _, c := range l.Cubes {
		c.Vars.ForEach(func(v int) { counts[v]++ })
	}
	return counts
}

// Equal reports whether two canonicalized lists contain the same cubes.
func (l *List) Equal(m *List) bool {
	if len(l.Cubes) != len(m.Cubes) {
		return false
	}
	seen := make(map[string]int, len(l.Cubes))
	for _, c := range l.Cubes {
		seen[c.Key()]++
	}
	for _, c := range m.Cubes {
		seen[c.Key()]--
	}
	for _, n := range seen {
		if n != 0 {
			return false
		}
	}
	return true
}

// String renders the ESOP as "c1 ^ c2 ^ ..." or "0".
func (l *List) String() string {
	if l.IsZero() {
		return "0"
	}
	parts := make([]string, len(l.Cubes))
	for i, c := range l.Cubes {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ^ ")
}

// DisjointSupportGroups partitions the cubes into groups such that any two
// distinct groups have disjoint variable supports (connected components of
// the cube/support sharing relation). Constant-1 cubes, having empty
// support, each form their own group. Groups are returned in a
// deterministic order.
func (l *List) DisjointSupportGroups() []*List {
	n := len(l.Cubes)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	// Union cubes sharing any variable via a per-variable owner index.
	owner := make([]int, l.NumVars)
	for i := range owner {
		owner[i] = -1
	}
	for i, c := range l.Cubes {
		c.Vars.ForEach(func(v int) {
			if owner[v] < 0 {
				owner[v] = i
			} else {
				union(owner[v], i)
			}
		})
	}
	groups := make(map[int]*List)
	var order []int
	for i, c := range l.Cubes {
		r := find(i)
		g, ok := groups[r]
		if !ok {
			g = NewList(l.NumVars)
			groups[r] = g
			order = append(order, r)
		}
		g.Add(c.Clone())
	}
	out := make([]*List, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}
