package cube

import "testing"

// The documented bounds split: Has tolerates out-of-capacity queries
// (absent), while Set/Clear treat them as programmer-invariant
// violations and panic with a descriptive message.
func TestBitSetHasToleratesOutOfRange(t *testing.T) {
	s := NewBitSet(10)
	s.Set(3)
	if !s.Has(3) {
		t.Fatal("set bit not observed")
	}
	for _, i := range []int{64, 100, 1 << 20} {
		if s.Has(i) {
			t.Fatalf("Has(%d) beyond capacity must be false", i)
		}
	}
	var empty BitSet
	if empty.Has(0) {
		t.Fatal("zero-value set has no elements")
	}
}

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("want panic %q, got none", want)
		}
		if msg, ok := r.(string); !ok || msg != want {
			t.Fatalf("want panic %q, got %v", want, r)
		}
	}()
	f()
}

func TestBitSetSetClearBoundsInvariant(t *testing.T) {
	s := NewBitSet(10) // capacity is one word: indices 0..63 are storable
	s.Set(63)
	s.Clear(63)
	mustPanic(t, "cube: BitSet.Set index out of range", func() { s.Set(64) })
	mustPanic(t, "cube: BitSet.Set index out of range", func() { s.Set(-1) })
	mustPanic(t, "cube: BitSet.Clear index out of range", func() { s.Clear(64) })
	mustPanic(t, "cube: BitSet.Clear index out of range", func() { s.Clear(-1) })
	var empty BitSet
	mustPanic(t, "cube: BitSet.Set index out of range", func() { empty.Set(0) })
}
