package ofdd

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/cube"
)

func assignOf(n, a int) cube.BitSet {
	s := cube.NewBitSet(n)
	for v := 0; v < n; v++ {
		if a&(1<<v) != 0 {
			s.Set(v)
		}
	}
	return s
}

func TestLitAndCube(t *testing.T) {
	m := New(3, nil)
	x0 := m.Lit(0)
	if m.TopVar(x0) != 0 || m.Lo(x0) != Zero || m.Hi(x0) != One {
		t.Error("Lit(0) malformed")
	}
	c := m.FromCube(cube.New(3, 0, 2))
	// x0*x2: true only when both set.
	for a := 0; a < 8; a++ {
		want := a&1 != 0 && a&4 != 0
		if got := m.Eval(c, assignOf(3, a)); got != want {
			t.Errorf("x0x2(%03b) = %v, want %v", a, got, want)
		}
	}
}

func TestXorSemantics(t *testing.T) {
	m := New(2, nil)
	f := m.Xor(m.Lit(0), m.Lit(1))
	for a := 0; a < 4; a++ {
		want := (a&1 != 0) != (a&2 != 0)
		if got := m.Eval(f, assignOf(2, a)); got != want {
			t.Errorf("xor(%02b) = %v, want %v", a, got, want)
		}
	}
	if m.Xor(f, f) != Zero {
		t.Error("f ⊕ f != 0")
	}
	if m.Xor(f, Zero) != f {
		t.Error("f ⊕ 0 != f")
	}
}

func TestDavioReductionRule(t *testing.T) {
	m := New(2, nil)
	// mk with hi=Zero must not create a node; exercised via Xor cancelling.
	f := m.Xor(m.Lit(0), m.Lit(0))
	if f != Zero {
		t.Error("cancelled literal should be Zero")
	}
}

// TestFigure1OFDD reproduces Figure 1 of the paper:
// f = x̄₁ ⊕ x̄₁x₃ ⊕ x̄₁x₂ ⊕ x̄₁x₂x₃ ⊕ x₃ ⊕ x₂  with polarity V = (0 1 1).
// Paper variables x₁,x₂,x₃ map to indices 0,1,2.
func TestFigure1OFDD(t *testing.T) {
	pol := []bool{false, true, true}
	m := New(3, pol)
	l := cube.NewList(3)
	l.Add(cube.New(3, 0))       // x̄₁
	l.Add(cube.New(3, 0, 2))    // x̄₁x₃
	l.Add(cube.New(3, 0, 1))    // x̄₁x₂
	l.Add(cube.New(3, 0, 1, 2)) // x̄₁x₂x₃
	l.Add(cube.New(3, 2))       // x₃
	l.Add(cube.New(3, 1))       // x₂
	f := m.FromCubes(l)

	if got := m.CubeCount(f); got != 6 {
		t.Errorf("CubeCount = %d, want 6", got)
	}
	back, err := m.Cubes(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(l) {
		t.Errorf("extracted cubes differ:\n got %s\nwant %s", back, l)
	}
	// Functional check against direct evaluation of the formula.
	direct := func(a int) bool {
		x1 := a&1 != 0
		x2 := a&2 != 0
		x3 := a&4 != 0
		v := !x1
		v = v != (!x1 && x3)
		v = v != (!x1 && x2)
		v = v != (!x1 && x2 && x3)
		v = v != x3
		v = v != x2
		return v
	}
	for a := 0; a < 8; a++ {
		if got := m.Eval(f, assignOf(3, a)); got != direct(a) {
			t.Errorf("f(%03b) = %v, want %v", a, got, direct(a))
		}
	}
	// Same function via the BDD route must give the identical node
	// (canonicity for fixed order + polarity).
	bm := bdd.New(3)
	var g bdd.Ref = bdd.Zero
	for a := 0; a < 8; a++ {
		if direct(a) {
			p := bdd.One
			for v := 0; v < 3; v++ {
				if a&(1<<v) != 0 {
					p = bm.And(p, bm.Var(v))
				} else {
					p = bm.And(p, bm.Not(bm.Var(v)))
				}
			}
			g = bm.Or(g, p)
		}
	}
	if m.FromBDD(bm, g) != f {
		t.Error("FromBDD and FromCubes disagree on canonical node")
	}
	dump := m.Dump(f)
	if !strings.Contains(dump, "x0(-)") {
		t.Errorf("dump should show negative polarity on x0:\n%s", dump)
	}
}

func TestPPRMKnownForms(t *testing.T) {
	// AND: x0x1 has exactly one PPRM cube.
	m := New(2, nil)
	bm := bdd.New(2)
	and := m.FromBDD(bm, bm.And(bm.Var(0), bm.Var(1)))
	if got := m.CubeCount(and); got != 1 {
		t.Errorf("PPRM cubes of AND = %d, want 1", got)
	}
	// OR: x0+x1 = x0 ⊕ x1 ⊕ x0x1: three cubes.
	or := m.FromBDD(bm, bm.Or(bm.Var(0), bm.Var(1)))
	if got := m.CubeCount(or); got != 3 {
		t.Errorf("PPRM cubes of OR = %d, want 3", got)
	}
	// XOR: two cubes.
	xor := m.FromBDD(bm, bm.Xor(bm.Var(0), bm.Var(1)))
	if got := m.CubeCount(xor); got != 2 {
		t.Errorf("PPRM cubes of XOR = %d, want 2", got)
	}
}

func TestNegativePolarityOR(t *testing.T) {
	// With both variables negative, x0+x1 = 1 ⊕ x̄0x̄1: two cubes.
	m := New(2, []bool{false, false})
	bm := bdd.New(2)
	or := m.FromBDD(bm, bm.Or(bm.Var(0), bm.Var(1)))
	if got := m.CubeCount(or); got != 2 {
		t.Errorf("negative-polarity cubes of OR = %d, want 2", got)
	}
	cubes, err := m.Cubes(or, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Expect the constant-1 cube and the cube {0,1}.
	hasOne, hasBoth := false, false
	for _, c := range cubes.Cubes {
		if c.IsOne() {
			hasOne = true
		}
		if c.Size() == 2 {
			hasBoth = true
		}
	}
	if !hasOne || !hasBoth {
		t.Errorf("unexpected cube shapes: %s", cubes)
	}
}

// Property: for random functions and random polarities, the OFDD built
// from the BDD evaluates identically to the BDD, and extracting cubes and
// rebuilding gives the same canonical node.
func TestQuickBDDRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		pol := make([]bool, n)
		for i := range pol {
			pol[i] = rng.Intn(2) == 1
		}
		bm := bdd.New(n)
		var g bdd.Ref = bdd.Zero
		for a := 0; a < 1<<n; a++ {
			if rng.Intn(2) == 1 {
				p := bdd.One
				for v := 0; v < n; v++ {
					if a&(1<<v) != 0 {
						p = bm.And(p, bm.Var(v))
					} else {
						p = bm.And(p, bm.Not(bm.Var(v)))
					}
				}
				g = bm.Or(g, p)
			}
		}
		m := New(n, pol)
		f1 := m.FromBDD(bm, g)
		// Evaluation agreement.
		for a := 0; a < 1<<n; a++ {
			if m.Eval(f1, assignOf(n, a)) != bm.Eval(g, assignOf(n, a)) {
				return false
			}
		}
		// Cube extraction round trip.
		cl, err := m.Cubes(f1, 0)
		if err != nil || m.FromCubes(cl) != f1 {
			return false
		}
		// ToBDD round trip.
		if m.ToBDD(bm)(f1) != g {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCubesLimitError(t *testing.T) {
	m := New(4, nil)
	bm := bdd.New(4)
	or := bm.Var(0)
	for v := 1; v < 4; v++ {
		or = bm.Or(or, bm.Var(v))
	}
	f := m.FromBDD(bm, or) // PPRM of 4-var OR has 15 cubes
	if _, err := m.Cubes(f, 3); err == nil {
		t.Error("expected error when cube count exceeds limit")
	}
	if l, err := m.Cubes(f, 15); err != nil || l.Len() != 15 {
		t.Errorf("at-limit extraction should succeed: %v", err)
	}
}

func TestNodeCount(t *testing.T) {
	m := New(3, nil)
	bm := bdd.New(3)
	f := m.FromBDD(bm, bm.Xor(bm.Xor(bm.Var(0), bm.Var(1)), bm.Var(2)))
	// Parity OFDD: one node per variable.
	if got := m.NodeCount(f); got != 3 {
		t.Errorf("NodeCount(parity3) = %d, want 3", got)
	}
}

// Adder carry chain: FPRM cube counts follow N_k = 2·N_{k-1} + 1, matching
// the paper's z4ml observation (32 cubes total for the 3-bit adder).
func TestAdderCubeCounts(t *testing.T) {
	// Variables: a1 b1 a2 b2 a3 b3 cin = 0..6 (order chosen arbitrarily).
	n := 7
	bm := bdd.New(n)
	a := []bdd.Ref{bm.Var(0), bm.Var(2), bm.Var(4)}
	b := []bdd.Ref{bm.Var(1), bm.Var(3), bm.Var(5)}
	carry := bm.Var(6)
	m := New(n, nil)
	total := int64(0)
	for k := 0; k < 3; k++ {
		sum := bm.Xor(bm.Xor(a[k], b[k]), carry)
		carry = bm.Or(bm.And(a[k], b[k]), bm.And(carry, bm.Xor(a[k], b[k])))
		total += m.CubeCount(m.FromBDD(bm, sum))
	}
	total += m.CubeCount(m.FromBDD(bm, carry))
	if total != 32 {
		t.Errorf("z4ml FPRM cube total = %d, want 32 (paper, Section 1)", total)
	}
}
