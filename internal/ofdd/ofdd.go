// Package ofdd implements ordered functional decision diagrams (OFDDs) as
// described in Section 2 of the paper and in Kebschull/Rosenstiel [11][12]:
// a hash-consed DAG in which every node applies a Davio expansion to its
// variable. A manager carries a polarity vector; variable v uses the
// positive Davio expansion  f = f_lo ⊕ x_v·f_hi  when its polarity is
// positive and the negative Davio expansion  f = f_lo ⊕ x̄_v·f_hi  when
// negative. The reduction rule deletes nodes whose hi child is the Zero
// terminal, which makes the diagram canonical for a fixed order and
// polarity vector.
//
// The paths of the OFDD are exactly the cubes of the function's FPRM form
// for that polarity vector, which is how the paper derives FPRM cube sets.
package ofdd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/cube"
	"repro/internal/obs"
)

// Ref identifies an OFDD node within its manager.
type Ref int32

// Terminal nodes of every manager.
const (
	Zero Ref = 0
	One  Ref = 1
)

type node struct {
	v      int32
	lo, hi Ref
}

type uniqueKey struct {
	v      int32
	lo, hi Ref
}

type opKey struct{ f, g Ref }

// Manager owns a forest of OFDD nodes over a fixed variable order and
// polarity vector.
//
// A Manager may carry a resource budget (SetBudget): node growth and XOR
// recursion are then checked against it, and exhaustion unwinds with
// panic(*budget.Err), recovered by budget.Guard at the phase boundary
// (see package budget). OFDDs can be exponentially larger than the BDD
// of the same function, so this is the main blowup guard of the flow.
type Manager struct {
	numVars   int
	polarity  []bool // true = positive Davio for that variable
	nodes     []node
	unique    map[uniqueKey]Ref
	xorTab    map[opKey]Ref
	counts    map[Ref]int64 // cube-count memo
	bud       *budget.Budget
	allocHook func(nodes int) *budget.Err
	stats     *obs.DD
}

// New returns an OFDD manager over n variables with the given polarity
// vector (entry v true = positive polarity). A nil polarity means
// all-positive (the PPRM case).
func New(n int, polarity []bool) *Manager {
	if polarity == nil {
		polarity = make([]bool, n)
		for i := range polarity {
			polarity[i] = true
		}
	}
	if len(polarity) != n {
		// Programmer invariant: polarity vectors are constructed by the
		// caller with one entry per variable; a mismatch is a bug at the
		// call site, not a data condition.
		panic(fmt.Sprintf("ofdd: polarity vector length %d != %d vars", len(polarity), n))
	}
	m := &Manager{
		numVars:  n,
		polarity: append([]bool(nil), polarity...),
		unique:   make(map[uniqueKey]Ref),
		xorTab:   make(map[opKey]Ref),
		counts:   make(map[Ref]int64),
	}
	term := int32(n)
	m.nodes = append(m.nodes, node{v: term}, node{v: term})
	return m
}

// SetBudget attaches a resource budget to the manager (nil detaches).
// While attached, node growth and XOR steps trip the budget when
// exhausted; the trip is recovered by budget.Guard in the caller.
func (m *Manager) SetBudget(b *budget.Budget) { m.bud = b }

// SetAllocHook installs a fault-injection probe on node allocation (nil
// removes it). The hook sees the node count the allocation would reach;
// a non-nil *budget.Err unwinds exactly like a budget trip, recovered
// by budget.Guard at the phase boundary. Managers are per-output, so a
// hook's own counter is deterministic regardless of how many workers
// the derivation fan-out runs with. Used only by the deterministic
// chaos harness (internal/chaos); the disabled path costs one nil check
// per fresh node.
func (m *Manager) SetAllocHook(h func(nodes int) *budget.Err) { m.allocHook = h }

// SetStats attaches an observability counter group (nil detaches).
// Managers are per-output, so each manager's counts are deterministic;
// all managers of a run share one group, whose totals are therefore
// deterministic at any worker count (see package obs).
func (m *Manager) SetStats(s *obs.DD) { m.stats = s }

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return m.numVars }

// Polarity returns the manager's polarity vector (shared; do not modify).
func (m *Manager) Polarity() []bool { return m.polarity }

// Size returns the number of allocated nodes including terminals.
func (m *Manager) Size() int { return len(m.nodes) }

// IsConst reports whether f is a terminal.
func (m *Manager) IsConst(f Ref) bool { return f == Zero || f == One }

// TopVar returns the variable index of f's top node (numVars for
// terminals).
func (m *Manager) TopVar(f Ref) int { return int(m.nodes[f].v) }

// Lo returns the Davio "constant" child: the subfunction present whether or
// not the literal is asserted.
func (m *Manager) Lo(f Ref) Ref { return m.nodes[f].lo }

// Hi returns the Davio "difference" child: the subfunction multiplied by
// the literal.
func (m *Manager) Hi(f Ref) Ref { return m.nodes[f].hi }

func (m *Manager) mk(v int32, lo, hi Ref) Ref {
	if hi == Zero {
		return lo // Davio reduction rule
	}
	k := uniqueKey{v, lo, hi}
	if r, ok := m.unique[k]; ok {
		m.stats.UniqueHit()
		return r
	}
	m.bud.CheckOFDDNodes(len(m.nodes) + 1)
	if m.allocHook != nil {
		if e := m.allocHook(len(m.nodes) + 1); e != nil {
			panic(e)
		}
	}
	m.stats.UniqueMiss(len(m.nodes) + 1)
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{v: v, lo: lo, hi: hi})
	m.unique[k] = r
	return r
}

// Lit returns the OFDD of variable v's literal in the manager's polarity
// (x_v for positive polarity, x̄_v for negative).
func (m *Manager) Lit(v int) Ref { return m.mk(int32(v), Zero, One) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref {
	switch {
	case f == Zero:
		return g
	case g == Zero:
		return f
	case f == g:
		return Zero
	}
	if f > g {
		f, g = g, f
	}
	k := opKey{f, g}
	if r, ok := m.xorTab[k]; ok {
		m.stats.OpHit()
		return r
	}
	m.stats.OpMiss()
	m.bud.Step("ofdd")
	v := m.nodes[f].v
	if m.nodes[g].v < v {
		v = m.nodes[g].v
	}
	f0, f1 := m.cof(f, v)
	g0, g1 := m.cof(g, v)
	r := m.mk(v, m.Xor(f0, g0), m.Xor(f1, g1))
	m.xorTab[k] = r
	return r
}

func (m *Manager) cof(f Ref, v int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.v != v {
		return f, Zero // missing node: difference part is 0
	}
	return n.lo, n.hi
}

// FromCube returns the OFDD of a single FPRM cube: the product of the
// listed variables' literals (in the manager's polarities). The empty cube
// is the constant One.
func (m *Manager) FromCube(c cube.Cube) Ref {
	f := One
	vars := c.Vars.Elements()
	for i := len(vars) - 1; i >= 0; i-- {
		f = m.mk(int32(vars[i]), Zero, f)
	}
	return f
}

// FromCubes returns the OFDD of an FPRM cube list (its XOR-sum).
func (m *Manager) FromCubes(l *cube.List) Ref {
	f := Zero
	for _, c := range l.Cubes {
		f = m.Xor(f, m.FromCube(c))
	}
	return f
}

// FromBDD converts a ROBDD into this manager's OFDD by recursively
// applying the Davio expansion selected by each variable's polarity:
// positive:  f = f₀ ⊕ x·(f₀⊕f₁);  negative:  f = f₁ ⊕ x̄·(f₀⊕f₁).
// Growth is bounded only by the manager's budget, if one is attached.
func (m *Manager) FromBDD(bm *bdd.Manager, f bdd.Ref) Ref {
	r, _ := m.fromBDD(bm, f, 0)
	return r
}

// FromBDDBounded is FromBDD with a node cap: functional decision
// diagrams can be exponentially larger than the BDD of the same function
// (long OR chains are the classic case), and ok=false reports that the
// manager grew past maxNodes so the caller can fall back.
func (m *Manager) FromBDDBounded(bm *bdd.Manager, f bdd.Ref, maxNodes int) (Ref, bool) {
	return m.fromBDD(bm, f, maxNodes)
}

// fromBDD implements FromBDD/FromBDDBounded; maxNodes ≤ 0 means uncapped
// (budget checks in mk still apply).
func (m *Manager) fromBDD(bm *bdd.Manager, f bdd.Ref, maxNodes int) (Ref, bool) {
	if bm.NumVars() != m.numVars {
		// Programmer invariant: core always builds the OFDD manager over
		// the same variable universe as the BDD manager it converts from.
		panic("ofdd: BDD manager variable count mismatch")
	}
	memo := make(map[bdd.Ref]Ref)
	overflow := false
	var rec func(bdd.Ref) Ref
	rec = func(f bdd.Ref) Ref {
		if overflow {
			return Zero
		}
		if f == bdd.Zero {
			return Zero
		}
		if f == bdd.One {
			return One
		}
		if r, ok := memo[f]; ok {
			return r
		}
		if maxNodes > 0 && len(m.nodes) > maxNodes {
			overflow = true
			return Zero
		}
		m.bud.Step("ofdd")
		v := bm.TopVar(f)
		lo := rec(bm.Lo(f))
		hi := rec(bm.Hi(f))
		diff := m.Xor(lo, hi)
		var r Ref
		if m.polarity[v] {
			r = m.mk(int32(v), lo, diff)
		} else {
			r = m.mk(int32(v), hi, diff)
		}
		memo[f] = r
		return r
	}
	r := rec(f)
	if overflow {
		return Zero, false
	}
	return r, true
}

// ToBDD converts f back into a ROBDD (literal polarity applied), useful
// for verification.
func (m *Manager) ToBDD(bm *bdd.Manager) func(Ref) bdd.Ref {
	memo := make(map[Ref]bdd.Ref)
	var rec func(Ref) bdd.Ref
	rec = func(f Ref) bdd.Ref {
		if f == Zero {
			return bdd.Zero
		}
		if f == One {
			return bdd.One
		}
		if r, ok := memo[f]; ok {
			return r
		}
		n := m.nodes[f]
		lit := bm.Var(int(n.v))
		if !m.polarity[n.v] {
			lit = bm.Not(lit)
		}
		r := bm.Xor(rec(n.lo), bm.And(lit, rec(n.hi)))
		memo[f] = r
		return r
	}
	return rec
}

// CubeCount returns the number of FPRM cubes of f (number of paths to the
// One terminal) without materializing them.
func (m *Manager) CubeCount(f Ref) int64 {
	if f == Zero {
		return 0
	}
	if f == One {
		return 1
	}
	if c, ok := m.counts[f]; ok {
		return c
	}
	n := m.nodes[f]
	c := m.CubeCount(n.lo) + m.CubeCount(n.hi)
	m.counts[f] = c
	return c
}

// Cubes extracts the FPRM cube list of f. Cubes contain variable indices;
// the polarity vector assigns each its literal. The limit caps the number
// of cubes extracted (≤0 = unlimited); extraction returns an error past
// the cap to catch runaway expansions before they materialize.
func (m *Manager) Cubes(f Ref, limit int) (*cube.List, error) {
	if limit > 0 {
		if c := m.CubeCount(f); c > int64(limit) {
			return nil, fmt.Errorf("ofdd: %d cubes exceeds limit %d", c, limit)
		}
	}
	out := cube.NewList(m.numVars)
	path := cube.NewBitSet(m.numVars)
	var rec func(Ref)
	rec = func(f Ref) {
		if f == Zero {
			return
		}
		if f == One {
			out.Add(cube.Cube{Vars: path.Clone()})
			return
		}
		n := m.nodes[f]
		rec(n.lo)
		path.Set(int(n.v))
		rec(n.hi)
		path.Clear(int(n.v))
	}
	rec(f)
	out.Sort()
	return out, nil
}

// CubesSample extracts at most limit cubes of f (depth-first order),
// without failing when the full set is larger. Used to build pattern sets
// for functions whose FPRM forms are too large to materialize.
func (m *Manager) CubesSample(f Ref, limit int) *cube.List {
	out := cube.NewList(m.numVars)
	path := cube.NewBitSet(m.numVars)
	var rec func(Ref)
	rec = func(f Ref) {
		if f == Zero || out.Len() >= limit {
			return
		}
		if f == One {
			out.Add(cube.Cube{Vars: path.Clone()})
			return
		}
		n := m.nodes[f]
		rec(n.lo)
		path.Set(int(n.v))
		rec(n.hi)
		path.Clear(int(n.v))
	}
	rec(f)
	out.Sort()
	return out
}

// Eval evaluates f on an assignment of the underlying variables (bit v set
// means x_v = 1; polarity is applied internally).
func (m *Manager) Eval(f Ref, assign cube.BitSet) bool {
	var rec func(Ref) bool
	rec = func(f Ref) bool {
		if f == Zero {
			return false
		}
		if f == One {
			return true
		}
		n := m.nodes[f]
		v := int(n.v)
		lit := assign.Has(v) == m.polarity[v]
		val := rec(n.lo)
		if lit && rec(n.hi) {
			val = !val
		}
		return val
	}
	return rec(f)
}

// NodeCount returns the number of distinct internal nodes reachable from f.
func (m *Manager) NodeCount(f Ref) int {
	seen := make(map[Ref]bool)
	var rec func(Ref)
	rec = func(f Ref) {
		if m.IsConst(f) || seen[f] {
			return
		}
		seen[f] = true
		rec(m.nodes[f].lo)
		rec(m.nodes[f].hi)
	}
	rec(f)
	return len(seen)
}

// Dump renders the DAG rooted at f, one node per line, children before
// parents, for debugging and for reproducing Figure 1 of the paper.
func (m *Manager) Dump(f Ref) string {
	var b strings.Builder
	seen := make(map[Ref]bool)
	var order []Ref
	var rec func(Ref)
	rec = func(f Ref) {
		if m.IsConst(f) || seen[f] {
			return
		}
		seen[f] = true
		rec(m.nodes[f].lo)
		rec(m.nodes[f].hi)
		order = append(order, f)
	}
	rec(f)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	name := func(r Ref) string {
		switch r {
		case Zero:
			return "0"
		case One:
			return "1"
		}
		return fmt.Sprintf("n%d", r)
	}
	for _, r := range order {
		n := m.nodes[r]
		pol := "+"
		if !m.polarity[n.v] {
			pol = "-"
		}
		fmt.Fprintf(&b, "%s: x%d(%s) lo=%s hi=%s\n", name(r), n.v, pol, name(n.lo), name(n.hi))
	}
	fmt.Fprintf(&b, "root=%s\n", name(f))
	return b.String()
}
