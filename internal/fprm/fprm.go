// Package fprm implements Fixed-Polarity Reed-Muller forms: the canonical
// XOR-sum-of-cubes representation (Section 2 of the paper) in which every
// variable appears with one fixed polarity.
//
// A Form couples a polarity vector with a cube list; cube variable v
// denotes the literal x_v when Polarity[v] is true and x̄_v otherwise.
// Forms can be derived by the truth-table Reed-Muller butterfly (small
// variable counts), or from a ROBDD through the OFDD (any size, the
// paper's route). Polarity search — exhaustive over all 2ⁿ vectors via a
// Gray-code walk, or greedy coordinate descent — minimizes the cube count.
package fprm

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/cube"
	"repro/internal/obs"
	"repro/internal/ofdd"
)

// Form is a fixed-polarity Reed-Muller form: XOR of Cubes with literal
// polarities given by Polarity (true = positive).
type Form struct {
	NumVars  int
	Polarity []bool
	Cubes    *cube.List
}

// NewForm returns an empty (constant-0) form with the given polarity.
// A nil polarity means all-positive.
func NewForm(n int, polarity []bool) *Form {
	if polarity == nil {
		polarity = make([]bool, n)
		for i := range polarity {
			polarity[i] = true
		}
	}
	return &Form{NumVars: n, Polarity: append([]bool(nil), polarity...), Cubes: cube.NewList(n)}
}

// Clone returns a deep copy.
func (f *Form) Clone() *Form {
	return &Form{NumVars: f.NumVars, Polarity: append([]bool(nil), f.Polarity...), Cubes: f.Cubes.Clone()}
}

// Eval evaluates the form on an assignment of the underlying variables.
func (f *Form) Eval(assign cube.BitSet) bool {
	// Convert the assignment into literal space: literal of v is true when
	// the assignment agrees with the polarity.
	lits := cube.NewBitSet(f.NumVars)
	for v := 0; v < f.NumVars; v++ {
		if assign.Has(v) == f.Polarity[v] {
			lits.Set(v)
		}
	}
	return f.Cubes.Eval(lits)
}

// ToBDD builds the BDD of the form.
func (f *Form) ToBDD(m *bdd.Manager) bdd.Ref {
	return m.FromESOP(f.Cubes, f.Polarity)
}

// String renders the form with explicit literal polarities.
func (f *Form) String() string {
	if f.Cubes.IsZero() {
		return "0"
	}
	s := ""
	for i, c := range f.Cubes.Cubes {
		if i > 0 {
			s += " ^ "
		}
		if c.IsOne() {
			s += "1"
			continue
		}
		first := true
		c.Vars.ForEach(func(v int) {
			if !first {
				s += "*"
			}
			first = false
			if f.Polarity[v] {
				s += fmt.Sprintf("x%d", v)
			} else {
				s += fmt.Sprintf("~x%d", v)
			}
		})
	}
	return s
}

// FlipPolarity changes the polarity of variable v in place, rewriting the
// cube list through the identity  lit = 1 ⊕ lit'  (old literal in terms of
// the new): every cube containing v is replaced by the pair
// {cube \ v, cube} and duplicates cancel.
func (f *Form) FlipPolarity(v int) {
	extra := make([]cube.Cube, 0)
	for _, c := range f.Cubes.Cubes {
		if c.Has(v) {
			nc := c.Clone()
			nc.Vars.Clear(v)
			extra = append(extra, nc)
		}
	}
	f.Cubes.Cubes = append(f.Cubes.Cubes, extra...)
	f.Cubes.Canonicalize()
	f.Polarity[v] = !f.Polarity[v]
}

// FromTruthTable computes the FPRM form of the function given by tt (bit a
// of word a/64 is the value at minterm a, variable v = bit v of a) under
// the given polarity, via the Reed-Muller butterfly transform. Practical
// for n ≤ 24. A nil polarity means all-positive.
func FromTruthTable(n int, tt []uint64, polarity []bool) *Form {
	size := 1 << uint(n)
	words := (size + 63) / 64
	if len(tt) < words {
		// Programmer invariant: callers size the truth-table slice from the
		// same n they pass here; a short slice is a call-site bug.
		panic("fprm: truth table too short")
	}
	w := append([]uint64(nil), tt[:words]...)
	f := NewForm(n, polarity)
	for v := 0; v < n; v++ {
		butterfly(w, n, v, f.Polarity[v])
	}
	// Collect coefficients: bit S set means cube with variables = bits of S.
	for a := 0; a < size; a++ {
		if w[a/64]&(1<<uint(a%64)) != 0 {
			c := cube.One(n)
			for v := 0; v < n; v++ {
				if a&(1<<v) != 0 {
					c.Vars.Set(v)
				}
			}
			f.Cubes.Add(c)
		}
	}
	f.Cubes.Sort()
	return f
}

// butterfly applies one variable's Davio stage to the coefficient vector.
// Positive polarity: hi ^= lo. Negative polarity: (lo, hi) = (hi, lo⊕hi).
func butterfly(w []uint64, n, v int, positive bool) {
	size := 1 << uint(n)
	if v < 6 {
		shift := uint(1) << uint(v)
		var mask uint64
		// mask selects the "low" positions (bit v clear) of each word.
		switch v {
		case 0:
			mask = 0x5555555555555555
		case 1:
			mask = 0x3333333333333333
		case 2:
			mask = 0x0F0F0F0F0F0F0F0F
		case 3:
			mask = 0x00FF00FF00FF00FF
		case 4:
			mask = 0x0000FFFF0000FFFF
		case 5:
			mask = 0x00000000FFFFFFFF
		}
		for i := range w[:max(1, size/64)] {
			lo := w[i] & mask
			hi := (w[i] >> shift) & mask
			if positive {
				hi ^= lo
			} else {
				lo, hi = hi, lo^hi
			}
			w[i] = lo | hi<<shift
		}
		return
	}
	stride := 1 << uint(v-6) // in words
	for base := 0; base < size/64; base += 2 * stride {
		for i := 0; i < stride; i++ {
			lo := w[base+i]
			hi := w[base+stride+i]
			if positive {
				hi ^= lo
			} else {
				lo, hi = hi, lo^hi
			}
			w[base+i] = lo
			w[base+stride+i] = hi
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FromBDD computes the FPRM form of a BDD function under the given
// polarity by building the OFDD and extracting its cubes. cubeLimit caps
// extraction (≤0 = unlimited); it returns an error past the cap.
func FromBDD(m *bdd.Manager, f bdd.Ref, polarity []bool, cubeLimit int) (*Form, error) {
	om := ofdd.New(m.NumVars(), polarity)
	of := om.FromBDD(m, f)
	form := NewForm(m.NumVars(), polarity)
	cubes, err := om.Cubes(of, cubeLimit)
	if err != nil {
		return nil, err
	}
	form.Cubes = cubes
	return form, nil
}

// CubeCountFromBDD returns the FPRM cube count for a polarity without
// materializing the cubes.
func CubeCountFromBDD(m *bdd.Manager, f bdd.Ref, polarity []bool) int64 {
	om := ofdd.New(m.NumVars(), polarity)
	return om.CubeCount(om.FromBDD(m, f))
}

// MaxExhaustiveVars bounds the exhaustive polarity search: the walk
// visits 2ⁿ polarities, so anything past this is infeasible anyway, and
// the guard keeps 1<<n from overflowing int on any platform.
const MaxExhaustiveVars = 30

// SearchExhaustive finds a polarity vector minimizing the cube count by
// walking all 2ⁿ polarities in Gray-code order with incremental flips.
// Intended for n ≤ MaxExhaustiveVars (larger n returns the start form
// unchanged with complete=false); cost is O(2ⁿ · m) cube operations.
func SearchExhaustive(start *Form) *Form {
	best, _ := SearchExhaustiveBudget(start, nil)
	return best
}

// SearchExhaustiveBudget is SearchExhaustive under a budget: the Gray-code
// walk polls the budget every 64 steps and stops early when it is
// exhausted, returning the best form seen so far and whether the walk
// completed. The partial result is always a valid form of the function
// (every step preserves it), so an early stop degrades quality, never
// correctness. For n > MaxExhaustiveVars the walk is refused outright:
// it returns (start, false) instead of overflowing 1<<n.
func SearchExhaustiveBudget(start *Form, b *budget.Budget) (best *Form, complete bool) {
	return SearchExhaustiveObs(start, b, nil)
}

// SearchExhaustiveObs is SearchExhaustiveBudget with polarity-search
// progress reported to s (nil disables collection): every Gray index
// evaluated counts a candidate — including the start form — and every
// accepted strict improvement is counted.
func SearchExhaustiveObs(start *Form, b *budget.Budget, s *obs.Search) (best *Form, complete bool) {
	n := start.NumVars
	if n > MaxExhaustiveVars {
		return start.Clone(), false
	}
	cur := start.Clone()
	best = start.Clone()
	s.Candidate()
	total := 1 << uint(n)
	for g := 1; g < total; g++ {
		if g&63 == 0 && b.Exceeded() != nil {
			return best, false
		}
		// Gray code: flip the variable at the lowest set bit of g.
		v := bits.TrailingZeros(uint(g))
		cur.FlipPolarity(v)
		s.Candidate()
		if cur.Cubes.Len() < best.Cubes.Len() ||
			(cur.Cubes.Len() == best.Cubes.Len() && cur.Cubes.Literals() < best.Cubes.Literals()) {
			best = cur.Clone()
			s.Improved()
		}
	}
	return best, true
}

// SearchExhaustiveParallel shards the exhaustive Gray-code walk across
// workers: shard k owns a contiguous index range [lo, hi) of the 2ⁿ
// Gray sequence, seeds its form by flipping the start polarity to
// gray(lo) = lo ^ (lo>>1), and walks its range with the same incremental
// flips as the sequential search. The reduction picks the global best by
// (cube count, literal count, Gray index) — the exact order in which the
// sequential walk's strict-improvement rule accepts forms — so the
// result is bit-identical to SearchExhaustiveBudget for any worker
// count. Budget exhaustion stops each shard independently; complete
// reports whether every shard finished its range.
func SearchExhaustiveParallel(start *Form, b *budget.Budget, workers int) (best *Form, complete bool) {
	return SearchExhaustiveParallelObs(start, b, workers, nil)
}

// SearchExhaustiveParallelObs is SearchExhaustiveParallel with progress
// reported to s (nil disables collection). Candidates are counted per
// shard and sum to the same total for any worker count (every Gray
// index is evaluated exactly once); improvements are reported only by
// the sequential walk, because a shard's local improvement count would
// depend on the shard boundaries.
func SearchExhaustiveParallelObs(start *Form, b *budget.Budget, workers int, s *obs.Search) (best *Form, complete bool) {
	n := start.NumVars
	if n > MaxExhaustiveVars {
		return start.Clone(), false
	}
	total := 1 << uint(n)
	if workers > total/64 {
		// Too little work per shard to pay the seeding cost.
		workers = total / 64
	}
	if workers <= 1 {
		return SearchExhaustiveObs(start, b, s)
	}
	type shardResult struct {
		best     *Form
		idx      int // Gray index where best was first reached
		complete bool
	}
	results := make([]shardResult, workers)
	chunk := (total + workers - 1) / workers
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if hi > total {
			hi = total
		}
		if lo >= hi {
			results[k] = shardResult{complete: true}
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			f, idx, done := searchShard(start, b, lo, hi, s)
			results[k] = shardResult{best: f, idx: idx, complete: done}
		}(k, lo, hi)
	}
	wg.Wait()
	complete = true
	bestIdx := -1
	for _, r := range results {
		complete = complete && r.complete
		if r.best == nil {
			continue
		}
		if best == nil ||
			r.best.Cubes.Len() < best.Cubes.Len() ||
			(r.best.Cubes.Len() == best.Cubes.Len() && r.best.Cubes.Literals() < best.Cubes.Literals()) ||
			(r.best.Cubes.Len() == best.Cubes.Len() && r.best.Cubes.Literals() == best.Cubes.Literals() && r.idx < bestIdx) {
			best = r.best
			bestIdx = r.idx
		}
	}
	if best == nil {
		// Every shard was cut before seeding (budget exhausted on entry).
		return start.Clone(), false
	}
	return best, complete
}

// searchShard walks Gray indices [lo, hi) and returns the local best
// with the index where it was first reached. The seed form at index lo
// is built by flipping the variables set in gray(lo); FlipPolarity keeps
// the cube list canonical, so the form at a given index is representa-
// tion-identical no matter the flip path that reached it.
func searchShard(start *Form, b *budget.Budget, lo, hi int, s *obs.Search) (best *Form, idx int, complete bool) {
	idx = lo
	if b.Exceeded() != nil {
		return nil, idx, false
	}
	cur := start.Clone()
	seed := uint(lo) ^ (uint(lo) >> 1)
	for v := 0; v < cur.NumVars; v++ {
		if seed&(1<<uint(v)) != 0 {
			cur.FlipPolarity(v)
		}
	}
	best = cur.Clone()
	s.Candidate()
	for g := lo + 1; g < hi; g++ {
		if g&63 == 0 && b.Exceeded() != nil {
			return best, idx, false
		}
		cur.FlipPolarity(bits.TrailingZeros(uint(g)))
		s.Candidate()
		if cur.Cubes.Len() < best.Cubes.Len() ||
			(cur.Cubes.Len() == best.Cubes.Len() && cur.Cubes.Literals() < best.Cubes.Literals()) {
			best = cur.Clone()
			idx = g
		}
	}
	return best, idx, true
}

// SearchGreedy improves the polarity by coordinate descent: repeatedly
// flip the single variable whose flip most reduces the cube count (ties
// broken by literal count) until no flip helps.
func SearchGreedy(start *Form) *Form {
	best, _ := SearchGreedyBudget(start, nil)
	return best
}

// SearchGreedyBudget is SearchGreedy under a budget: the descent polls the
// budget before every trial flip and stops early when exhausted, returning
// the best form so far and whether the descent ran to a local optimum.
//
// Each trial flips the candidate variable in place and flips it back —
// FlipPolarity is an involution on the canonical cube list, so the
// restore is exact — which makes a descent round O(n) flips instead of
// the O(n·m) full-form clones a trial-copy scheme would cost.
func SearchGreedyBudget(start *Form, b *budget.Budget) (best *Form, complete bool) {
	return SearchGreedyObs(start, b, nil)
}

// SearchGreedyObs is SearchGreedyBudget with polarity-search progress
// reported to s (nil disables collection): every trial flip counts a
// candidate, every accepted descent step an improvement. The descent is
// sequential, so the counts are deterministic at any worker count.
func SearchGreedyObs(start *Form, b *budget.Budget, s *obs.Search) (best *Form, complete bool) {
	cur := start.Clone()
	for {
		bestV := -1
		bestCubes := cur.Cubes.Len()
		bestLits := cur.Cubes.Literals()
		for v := 0; v < cur.NumVars; v++ {
			if b.Exceeded() != nil {
				return cur, false
			}
			cur.FlipPolarity(v)
			s.Candidate()
			if cur.Cubes.Len() < bestCubes ||
				(cur.Cubes.Len() == bestCubes && cur.Cubes.Literals() < bestLits) {
				bestV = v
				bestCubes = cur.Cubes.Len()
				bestLits = cur.Cubes.Literals()
			}
			cur.FlipPolarity(v) // restore: flip is its own inverse
		}
		if bestV < 0 {
			return cur, true
		}
		cur.FlipPolarity(bestV)
		s.Improved()
	}
}

// PrimeCubes returns the indices of the prime cubes of the form: cubes
// whose support is not properly contained in the support of any other cube
// (Csanky et al. [7]; prime cubes occur in all 2ⁿ FPRM forms).
func (f *Form) PrimeCubes() []int {
	var primes []int
	for i, c := range f.Cubes.Cubes {
		prime := true
		for j, d := range f.Cubes.Cubes {
			if i == j {
				continue
			}
			if c.Vars.SubsetOf(d.Vars) && !c.Vars.Equal(d.Vars) {
				prime = false
				break
			}
		}
		if prime {
			primes = append(primes, i)
		}
	}
	return primes
}
