package fprm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/cube"
)

func assignOf(n, a int) cube.BitSet {
	s := cube.NewBitSet(n)
	for v := 0; v < n; v++ {
		if a&(1<<v) != 0 {
			s.Set(v)
		}
	}
	return s
}

func randomTT(rng *rand.Rand, n int) []uint64 {
	words := (1<<uint(n) + 63) / 64
	tt := make([]uint64, words)
	for i := range tt {
		tt[i] = rng.Uint64()
	}
	if n < 6 {
		tt[0] &= 1<<uint(1<<uint(n)) - 1
	}
	return tt
}

func ttBit(tt []uint64, a int) bool { return tt[a/64]&(1<<uint(a%64)) != 0 }

// Property: the butterfly transform produces a form that evaluates
// identically to the source truth table, for random polarities.
func TestQuickTransformCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7) // 1..7 vars crosses the word boundary at 6
		tt := randomTT(rng, n)
		pol := make([]bool, n)
		for i := range pol {
			pol[i] = rng.Intn(2) == 1
		}
		form := FromTruthTable(n, tt, pol)
		for a := 0; a < 1<<uint(n); a++ {
			if form.Eval(assignOf(n, a)) != ttBit(tt, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: truth-table route and BDD/OFDD route produce the same cubes.
func TestQuickTransformMatchesBDDRoute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		tt := randomTT(rng, n)
		pol := make([]bool, n)
		for i := range pol {
			pol[i] = rng.Intn(2) == 1
		}
		m := bdd.New(n)
		var g bdd.Ref = bdd.Zero
		for a := 0; a < 1<<uint(n); a++ {
			if ttBit(tt, a) {
				p := bdd.One
				for v := 0; v < n; v++ {
					if a&(1<<v) != 0 {
						p = m.And(p, m.Var(v))
					} else {
						p = m.And(p, m.Not(m.Var(v)))
					}
				}
				g = m.Or(g, p)
			}
		}
		f1 := FromTruthTable(n, tt, pol)
		f2, err := FromBDD(m, g, pol, 0)
		return err == nil && f1.Cubes.Equal(f2.Cubes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: FlipPolarity preserves the function.
func TestQuickFlipPolarityPreserves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		tt := randomTT(rng, n)
		form := FromTruthTable(n, tt, nil)
		v := rng.Intn(n)
		form.FlipPolarity(v)
		for a := 0; a < 1<<uint(n); a++ {
			if form.Eval(assignOf(n, a)) != ttBit(tt, a) {
				return false
			}
		}
		// Flipping back restores the canonical cube set.
		form.FlipPolarity(v)
		orig := FromTruthTable(n, tt, nil)
		return form.Cubes.Equal(orig.Cubes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParityPPRM(t *testing.T) {
	// Parity of n variables: PPRM is x0 ⊕ x1 ⊕ ... ⊕ x_{n-1}.
	n := 8
	tt := make([]uint64, (1<<uint(n))/64)
	for a := 0; a < 1<<uint(n); a++ {
		cnt := 0
		for v := 0; v < n; v++ {
			if a&(1<<v) != 0 {
				cnt++
			}
		}
		if cnt%2 == 1 {
			tt[a/64] |= 1 << uint(a%64)
		}
	}
	form := FromTruthTable(n, tt, nil)
	if form.Cubes.Len() != n {
		t.Fatalf("parity PPRM has %d cubes, want %d", form.Cubes.Len(), n)
	}
	for _, c := range form.Cubes.Cubes {
		if c.Size() != 1 {
			t.Errorf("parity cube %s not a single literal", c)
		}
	}
	// All polarities of parity have n cubes; exhaustive search must not
	// do worse.
	best := SearchGreedy(form)
	if best.Cubes.Len() != n {
		t.Errorf("greedy search changed parity cube count to %d", best.Cubes.Len())
	}
}

func TestSearchExhaustiveFindsMinimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3) // 2..4 vars
		tt := randomTT(rng, n)
		start := FromTruthTable(n, tt, nil)
		best := SearchExhaustive(start)
		// Verify optimality by brute force over all polarity vectors.
		for p := 0; p < 1<<uint(n); p++ {
			pol := make([]bool, n)
			for v := 0; v < n; v++ {
				pol[v] = p&(1<<v) != 0
			}
			form := FromTruthTable(n, tt, pol)
			if form.Cubes.Len() < best.Cubes.Len() {
				return false
			}
		}
		// And the returned form still computes the function.
		for a := 0; a < 1<<uint(n); a++ {
			if best.Eval(assignOf(n, a)) != ttBit(tt, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSearchGreedyNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		tt := randomTT(rng, n)
		start := FromTruthTable(n, tt, nil)
		best := SearchGreedy(start)
		if best.Cubes.Len() > start.Cubes.Len() {
			return false
		}
		for a := 0; a < 1<<uint(n); a++ {
			if best.Eval(assignOf(n, a)) != ttBit(tt, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// t481TT builds the truth table of t481 from the paper's final equation:
// t481 = (v̄0v1 ⊕ v2v̄3)(v̄4v5 ⊕ (v̄6+v7)) ⊕ ((v8+v̄9) ⊕ v10v̄11)(v̄12v13 ⊕ v14v̄15)
func t481TT() []uint64 {
	tt := make([]uint64, (1<<16)/64)
	for a := 0; a < 1<<16; a++ {
		v := func(i int) bool { return a&(1<<i) != 0 }
		x := func(b bool) int {
			if b {
				return 1
			}
			return 0
		}
		left := (x(!v(0) && v(1)) ^ x(v(2) && !v(3))) & (x(!v(4) && v(5)) ^ x(!v(6) || v(7)))
		right := (x(v(8) || !v(9)) ^ x(v(10) && !v(11))) & (x(!v(12) && v(13)) ^ x(v(14) && !v(15)))
		if left^right == 1 {
			tt[a/64] |= 1 << uint(a%64)
		}
	}
	return tt
}

// TestT481FPRMCubeCount verifies the paper's Example 1 claim: t481 has
// only 16 cubes in the FPRM form (at the natural polarity of its
// equation), and 10 of those cubes are prime.
func TestT481FPRMCubeCount(t *testing.T) {
	// Polarity read off the equation's literals.
	pol := []bool{
		false, true, true, false, // v̄0 v1 v2 v̄3
		false, true, false, true, // v̄4 v5 v̄6 v7
		true, false, true, false, // v8 v̄9 v10 v̄11
		false, true, true, false, // v̄12 v13 v14 v̄15
	}
	form := FromTruthTable(16, t481TT(), pol)
	if form.Cubes.Len() != 16 {
		t.Errorf("t481 FPRM cube count = %d, want 16 (paper, Example 1)", form.Cubes.Len())
	}
	// The paper reports "10 of the 16 cubes are primes". Expanding the
	// paper's own final equation (the only available ground truth for
	// t481's function) gives 8 cubes whose support is not properly
	// contained in another's: the 8 maximal supports
	// {0,1,4,5} {2,3,4,5} {0,1,6,7} {2,3,6,7} {8,9,12,13} {8,9,14,15}
	// {10,11,12,13} {10,11,14,15}. The paper presumably counted on the
	// benchmark's own FPRM polarity, which we cannot recover exactly.
	// Recorded in EXPERIMENTS.md.
	primes := form.PrimeCubes()
	if len(primes) != 8 {
		t.Errorf("t481 prime cube count = %d, want 8 (paper reports 10; see comment)", len(primes))
	}
}

func TestPrimeCubesAllPrimesForAdderOutput(t *testing.T) {
	// z4ml output x26 = x3 ⊕ x6 ⊕ x1x4 ⊕ x1x7 ⊕ x4x7: all cubes prime
	// (paper, Section 2). Variables renamed to 0-based indices.
	form := NewForm(7, nil)
	form.Cubes.Add(cube.New(7, 2))
	form.Cubes.Add(cube.New(7, 5))
	form.Cubes.Add(cube.New(7, 0, 3))
	form.Cubes.Add(cube.New(7, 0, 6))
	form.Cubes.Add(cube.New(7, 3, 6))
	if got := len(form.PrimeCubes()); got != 5 {
		t.Errorf("prime cubes = %d, want all 5", got)
	}
}

func TestPrimeCubesNonPrime(t *testing.T) {
	form := NewForm(3, nil)
	form.Cubes.Add(cube.New(3, 0))       // support {0} ⊂ {0,1}: not prime
	form.Cubes.Add(cube.New(3, 0, 1))    // {0,1} ⊂ {0,1,2}: not prime
	form.Cubes.Add(cube.New(3, 0, 1, 2)) // prime
	primes := form.PrimeCubes()
	if len(primes) != 1 || primes[0] != 2 {
		t.Errorf("primes = %v, want [2]", primes)
	}
}

func TestFormToBDD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5
	tt := randomTT(rng, n)
	pol := []bool{true, false, true, false, true}
	form := FromTruthTable(n, tt, pol)
	m := bdd.New(n)
	f := form.ToBDD(m)
	for a := 0; a < 1<<uint(n); a++ {
		if m.Eval(f, assignOf(n, a)) != ttBit(tt, a) {
			t.Fatalf("ToBDD wrong at minterm %d", a)
		}
	}
}

func TestConstantFunctions(t *testing.T) {
	// Constant 0: empty form.
	zero := FromTruthTable(3, []uint64{0}, nil)
	if !zero.Cubes.IsZero() {
		t.Error("constant 0 should have no cubes")
	}
	// Constant 1: just the 1-cube.
	one := FromTruthTable(3, []uint64{0xFF}, nil)
	if one.Cubes.Len() != 1 || !one.Cubes.Cubes[0].IsOne() {
		t.Errorf("constant 1 form = %s", one)
	}
}

// greedyReference is the pre-optimization clone-per-trial implementation
// of SearchGreedyBudget, kept as the behavioral oracle for the in-place
// flip/flip-back version.
func greedyReference(start *Form) *Form {
	cur := start.Clone()
	for {
		bestV := -1
		bestCubes := cur.Cubes.Len()
		bestLits := cur.Cubes.Literals()
		for v := 0; v < cur.NumVars; v++ {
			trial := cur.Clone()
			trial.FlipPolarity(v)
			if trial.Cubes.Len() < bestCubes ||
				(trial.Cubes.Len() == bestCubes && trial.Cubes.Literals() < bestLits) {
				bestV = v
				bestCubes = trial.Cubes.Len()
				bestLits = trial.Cubes.Literals()
			}
		}
		if bestV < 0 {
			return cur
		}
		cur.FlipPolarity(bestV)
	}
}

// Property: the in-place greedy descent lands on exactly the polarity
// vector and canonical cube set the clone-per-trial reference does.
func TestGreedyInPlaceMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		tt := randomTT(rng, n)
		start := FromTruthTable(n, tt, nil)
		want := greedyReference(start)
		got := SearchGreedy(start)
		if !got.Cubes.Equal(want.Cubes) {
			return false
		}
		for v := 0; v < n; v++ {
			if got.Polarity[v] != want.Polarity[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Regression: n above MaxExhaustiveVars must refuse the walk (the old
// code computed 1<<n unguarded, overflowing for large n) and report the
// search incomplete with the start form untouched.
func TestExhaustiveOverflowGuard(t *testing.T) {
	for _, n := range []int{MaxExhaustiveVars + 1, 63, 64, 200} {
		start := NewForm(n, nil)
		start.Cubes.Add(cube.New(n, 0, n-1))
		start.Cubes.Add(cube.One(n))
		best, complete := SearchExhaustiveBudget(start, nil)
		if complete {
			t.Fatalf("n=%d: walk reported complete", n)
		}
		if !best.Cubes.Equal(start.Cubes) || best.Cubes.Len() != 2 {
			t.Fatalf("n=%d: start form not returned unchanged", n)
		}
		pbest, pcomplete := SearchExhaustiveParallel(start, nil, 4)
		if pcomplete || !pbest.Cubes.Equal(start.Cubes) {
			t.Fatalf("n=%d: parallel walk must refuse oversized n too", n)
		}
	}
}

// Property: the Gray-prefix sharded exhaustive search returns a form
// bit-identical to the sequential walk for every worker count.
func TestExhaustiveParallelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6) // 2..7 vars
		tt := randomTT(rng, n)
		start := FromTruthTable(n, tt, nil)
		want, wantDone := SearchExhaustiveBudget(start, nil)
		for _, workers := range []int{1, 2, 3, 4, 7, 16} {
			got, done := SearchExhaustiveParallel(start, nil, workers)
			if done != wantDone {
				return false
			}
			if !got.Cubes.Equal(want.Cubes) {
				return false
			}
			for v := 0; v < n; v++ {
				if got.Polarity[v] != want.Polarity[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
