// Package bdd implements a reduced ordered binary decision diagram (ROBDD)
// manager in the style of Bryant [6] and the SIS 1.2 BDD package the paper
// builds on: hash-consed nodes, an ITE-based apply, cofactoring,
// quantification, satisfiability queries, SAT counting, and
// Minato-Morreale irredundant SOP extraction.
//
// Variable order is the natural index order 0..n-1 (the paper's OFDDs use a
// fixed order as well).
package bdd

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/cube"
	"repro/internal/obs"
	"repro/internal/sop"
)

// Ref identifies a BDD node within its manager. The constants Zero and One
// are the terminal nodes of every manager.
type Ref int32

// Terminal nodes.
const (
	Zero Ref = 0
	One  Ref = 1
)

type node struct {
	v      int32 // variable index; terminals use numVars
	lo, hi Ref
}

type uniqueKey struct {
	v      int32
	lo, hi Ref
}

type iteKey struct{ f, g, h Ref }

// Manager owns a forest of shared ROBDD nodes over a fixed number of
// variables.
//
// A Manager may carry a resource budget (SetBudget): node growth and ITE
// recursion are then checked against it, and exhaustion unwinds with
// panic(*budget.Err), which callers recover through budget.Guard at the
// phase boundary (see package budget).
type Manager struct {
	numVars   int
	nodes     []node
	unique    map[uniqueKey]Ref
	iteTab    map[iteKey]Ref
	vars      []Ref // cached single-variable BDDs
	bud       *budget.Budget
	allocHook func(nodes int) *budget.Err
	stats     *obs.DD
}

// New returns a manager over n variables (order = index order).
func New(n int) *Manager {
	m := &Manager{
		numVars: n,
		unique:  make(map[uniqueKey]Ref),
		iteTab:  make(map[iteKey]Ref),
	}
	term := int32(n)
	m.nodes = append(m.nodes, node{v: term}, node{v: term}) // Zero, One
	m.vars = make([]Ref, n)
	for i := 0; i < n; i++ {
		m.vars[i] = m.mk(int32(i), Zero, One)
	}
	return m
}

// SetBudget attaches a resource budget to the manager (nil detaches).
// While attached, node growth and ITE steps trip the budget when
// exhausted; the trip is recovered by budget.Guard in the caller.
func (m *Manager) SetBudget(b *budget.Budget) { m.bud = b }

// SetAllocHook installs a fault-injection probe on node allocation (nil
// removes it). The hook sees the node count the allocation would reach;
// a non-nil *budget.Err unwinds exactly like a budget trip, recovered
// by budget.Guard at the phase boundary. Used only by the deterministic
// chaos harness (internal/chaos); the disabled path costs one nil check
// per fresh node.
func (m *Manager) SetAllocHook(h func(nodes int) *budget.Err) { m.allocHook = h }

// SetStats attaches an observability counter group to the manager (nil
// detaches). While attached, unique-table and computed-table hits and
// misses are counted (see package obs); detached, every probe site is a
// nil check inside obs' nil-receiver methods.
func (m *Manager) SetStats(s *obs.DD) { m.stats = s }

// NumVars returns the number of variables of the manager.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the number of nodes allocated (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// Var returns the BDD for the single variable v.
func (m *Manager) Var(v int) Ref { return m.vars[v] }

// NVar returns the BDD for the complement of variable v.
func (m *Manager) NVar(v int) Ref { return m.Not(m.vars[v]) }

// IsConst reports whether f is a terminal node.
func (m *Manager) IsConst(f Ref) bool { return f == Zero || f == One }

// TopVar returns the top variable index of f, or numVars for terminals.
func (m *Manager) TopVar(f Ref) int { return int(m.nodes[f].v) }

// Lo returns the low (else, var=0) child of f.
func (m *Manager) Lo(f Ref) Ref { return m.nodes[f].lo }

// Hi returns the high (then, var=1) child of f.
func (m *Manager) Hi(f Ref) Ref { return m.nodes[f].hi }

func (m *Manager) mk(v int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	k := uniqueKey{v, lo, hi}
	if r, ok := m.unique[k]; ok {
		m.stats.UniqueHit()
		return r
	}
	m.bud.CheckBDDNodes(len(m.nodes) + 1)
	if m.allocHook != nil {
		if e := m.allocHook(len(m.nodes) + 1); e != nil {
			panic(e)
		}
	}
	m.stats.UniqueMiss(len(m.nodes) + 1)
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{v: v, lo: lo, hi: hi})
	m.unique[k] = r
	return r
}

// ITE computes if-then-else(f, g, h) = f·g + ¬f·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == One:
		return g
	case f == Zero:
		return h
	case g == h:
		return g
	case g == One && h == Zero:
		return f
	}
	k := iteKey{f, g, h}
	if r, ok := m.iteTab[k]; ok {
		m.stats.OpHit()
		return r
	}
	m.stats.OpMiss()
	m.bud.Step("bdd")
	// Split on the top variable of the three arguments.
	v := m.nodes[f].v
	if m.nodes[g].v < v {
		v = m.nodes[g].v
	}
	if m.nodes[h].v < v {
		v = m.nodes[h].v
	}
	f0, f1 := m.cof(f, v)
	g0, g1 := m.cof(g, v)
	h0, h1 := m.cof(h, v)
	lo := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(v, lo, hi)
	m.iteTab[k] = r
	return r
}

// cof returns the two cofactors of f with respect to variable v, assuming v
// is at or above f's top variable.
func (m *Manager) cof(f Ref, v int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.v != v {
		return f, f
	}
	return n.lo, n.hi
}

// Not returns the complement of f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, Zero, One) }

// And returns f·g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, Zero) }

// Or returns f+g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, One, g) }

// Xor returns f⊕g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Xnor returns the complement of f⊕g.
func (m *Manager) Xnor(f, g Ref) Ref { return m.ITE(f, g, m.Not(g)) }

// Implies reports whether f ≤ g (f implies g) as functions.
func (m *Manager) Implies(f, g Ref) bool { return m.And(f, m.Not(g)) == Zero }

// Restrict returns f with variable v fixed to the given phase.
func (m *Manager) Restrict(f Ref, v int, phase bool) Ref {
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(f Ref) Ref {
		n := m.nodes[f]
		if int(n.v) > v || m.IsConst(f) {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		var r Ref
		if int(n.v) == v {
			if phase {
				r = n.hi
			} else {
				r = n.lo
			}
		} else {
			r = m.mk(n.v, rec(n.lo), rec(n.hi))
		}
		memo[f] = r
		return r
	}
	return rec(f)
}

// Exists existentially quantifies variable v out of f.
func (m *Manager) Exists(f Ref, v int) Ref {
	return m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
}

// Support returns the set of variables f depends on.
func (m *Manager) Support(f Ref) cube.BitSet {
	s := cube.NewBitSet(m.numVars)
	seen := make(map[Ref]bool)
	var rec func(Ref)
	rec = func(f Ref) {
		if m.IsConst(f) || seen[f] {
			return
		}
		seen[f] = true
		s.Set(int(m.nodes[f].v))
		rec(m.nodes[f].lo)
		rec(m.nodes[f].hi)
	}
	rec(f)
	return s
}

// Eval evaluates f on an assignment bitset.
func (m *Manager) Eval(f Ref, assign cube.BitSet) bool {
	for !m.IsConst(f) {
		n := m.nodes[f]
		if assign.Has(int(n.v)) {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == One
}

// SatCount returns the number of satisfying assignments of f over all
// numVars variables, as a float64 (exact for < 2^53).
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var rec func(Ref) float64
	rec = func(f Ref) float64 {
		if f == Zero {
			return 0
		}
		if f == One {
			return 1
		}
		if c, ok := memo[f]; ok {
			return c
		}
		n := m.nodes[f]
		lo := rec(n.lo) * pow2(int(m.nodes[n.lo].v)-int(n.v)-1)
		hi := rec(n.hi) * pow2(int(m.nodes[n.hi].v)-int(n.v)-1)
		c := lo + hi
		memo[f] = c
		return c
	}
	return rec(f) * pow2(int(m.nodes[f].v))
}

func pow2(k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= 2
	}
	return r
}

// Density returns the fraction of assignments satisfying f (the signal
// probability of f under uniform independent inputs).
func (m *Manager) Density(f Ref) float64 {
	return m.SatCount(f) / pow2(m.numVars)
}

// AnySat returns one satisfying assignment of f, or ok=false if f is
// unsatisfiable. Variables not on the chosen path are left 0.
func (m *Manager) AnySat(f Ref) (assign cube.BitSet, ok bool) {
	if f == Zero {
		return nil, false
	}
	assign = cube.NewBitSet(m.numVars)
	for !m.IsConst(f) {
		n := m.nodes[f]
		if n.hi != Zero {
			assign.Set(int(n.v))
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return assign, true
}

// FromCover builds the BDD of a SOP cover.
func (m *Manager) FromCover(c *sop.Cover) Ref {
	f := Zero
	for _, t := range c.Terms {
		p := One
		// AND literals from the bottom of the order up for linear growth.
		for v := m.numVars - 1; v >= 0; v-- {
			if t.Pos.Has(v) {
				p = m.mk(int32(v), Zero, p)
			} else if t.Neg.Has(v) {
				p = m.mk(int32(v), p, Zero)
			}
		}
		f = m.Or(f, p)
	}
	return f
}

// FromESOP builds the BDD of an ESOP cube list under a polarity vector:
// variable v in a cube denotes the literal x_v if polarity[v] is true and
// its complement otherwise. A nil polarity means all-positive.
func (m *Manager) FromESOP(l *cube.List, polarity []bool) Ref {
	f := Zero
	for _, c := range l.Cubes {
		p := One
		for v := m.numVars - 1; v >= 0; v-- {
			if !c.Has(v) {
				continue
			}
			if polarity == nil || polarity[v] {
				p = m.mk(int32(v), Zero, p)
			} else {
				p = m.mk(int32(v), p, Zero)
			}
		}
		f = m.Xor(f, p)
	}
	return f
}

// ISOP computes an irredundant sum-of-products cover of any function g with
// L ≤ g ≤ U using the Minato-Morreale procedure, returning the cover and
// the BDD of the exact function the cover denotes.
func (m *Manager) ISOP(L, U Ref) (*sop.Cover, Ref) {
	type key struct{ l, u Ref }
	covers := make(map[key]*sop.Cover)
	funcs := make(map[key]Ref)
	var rec func(L, U Ref) (*sop.Cover, Ref)
	rec = func(L, U Ref) (*sop.Cover, Ref) {
		if L == Zero {
			return sop.NewCover(m.numVars), Zero
		}
		if U == One {
			return sop.Universe(m.numVars), One
		}
		k := key{L, U}
		if c, ok := covers[k]; ok {
			return c, funcs[k]
		}
		v := m.nodes[L].v
		if m.nodes[U].v < v {
			v = m.nodes[U].v
		}
		L0, L1 := m.cof(L, v)
		U0, U1 := m.cof(U, v)
		// Cubes that must contain the negative literal of v.
		c0, f0 := rec(m.And(L0, m.Not(U1)), U0)
		// Cubes that must contain the positive literal of v.
		c1, f1 := rec(m.And(L1, m.Not(U0)), U1)
		// Remainder covered by cubes free of v.
		Ld := m.Or(m.And(L0, m.Not(f0)), m.And(L1, m.Not(f1)))
		Ud := m.And(U0, U1)
		cd, fd := rec(Ld, Ud)
		out := sop.NewCover(m.numVars)
		for _, t := range c0.Terms {
			nt := t.Clone()
			nt.SetNeg(int(v))
			out.Add(nt)
		}
		for _, t := range c1.Terms {
			nt := t.Clone()
			nt.SetPos(int(v))
			out.Add(nt)
		}
		for _, t := range cd.Terms {
			out.Add(t.Clone())
		}
		fv := m.Or(m.Or(m.mk(v, Zero, f1), m.mk(v, f0, Zero)), fd)
		covers[k] = out
		funcs[k] = fv
		return out, fv
	}
	return rec(L, U)
}

// ToCover returns an irredundant SOP cover exactly equal to f, or an
// error if the Minato-Morreale procedure produced an inexact cover
// (which would indicate a defect in ISOP, not bad input — but callers
// synthesizing untrusted functions must not die on it).
func (m *Manager) ToCover(f Ref) (*sop.Cover, error) {
	c, g := m.ISOP(f, f)
	if g != f {
		return nil, fmt.Errorf("bdd: ISOP produced inexact cover (%d != %d)", g, f)
	}
	return c, nil
}
