package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
	"repro/internal/sop"
)

// ttOf computes the truth table of f over n ≤ 6 variables.
func ttOf(m *Manager, f Ref, n int) uint64 {
	var tt uint64
	for a := 0; a < 1<<n; a++ {
		assign := cube.NewBitSet(n)
		for v := 0; v < n; v++ {
			if a&(1<<v) != 0 {
				assign.Set(v)
			}
		}
		if m.Eval(f, assign) {
			tt |= 1 << uint(a)
		}
	}
	return tt
}

func TestTerminalsAndVars(t *testing.T) {
	m := New(3)
	if !m.IsConst(Zero) || !m.IsConst(One) {
		t.Fatal("terminals not const")
	}
	x0 := m.Var(0)
	if m.TopVar(x0) != 0 || m.Lo(x0) != Zero || m.Hi(x0) != One {
		t.Error("Var(0) malformed")
	}
	if m.Not(m.Not(x0)) != x0 {
		t.Error("double negation not canonical")
	}
}

func TestBooleanOps(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	if got := ttOf(m, m.And(a, b), 2); got != 0b1000 {
		t.Errorf("AND tt = %04b", got)
	}
	if got := ttOf(m, m.Or(a, b), 2); got != 0b1110 {
		t.Errorf("OR tt = %04b", got)
	}
	if got := ttOf(m, m.Xor(a, b), 2); got != 0b0110 {
		t.Errorf("XOR tt = %04b", got)
	}
	if got := ttOf(m, m.Xnor(a, b), 2); got != 0b1001 {
		t.Errorf("XNOR tt = %04b", got)
	}
}

func TestCanonicity(t *testing.T) {
	m := New(4)
	// (a+b)(a+c) == a + bc as BDD refs.
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	lhs := m.And(m.Or(a, b), m.Or(a, c))
	rhs := m.Or(a, m.And(b, c))
	if lhs != rhs {
		t.Error("equivalent functions got different refs")
	}
	// De Morgan.
	if m.Not(m.And(a, b)) != m.Or(m.Not(a), m.Not(b)) {
		t.Error("De Morgan fails")
	}
}

func TestRestrictAndExists(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), m.And(m.Not(a), c))
	if m.Restrict(f, 0, true) != b {
		t.Error("f|a=1 should be b")
	}
	if m.Restrict(f, 0, false) != c {
		t.Error("f|a=0 should be c")
	}
	if m.Exists(f, 0) != m.Or(b, c) {
		t.Error("∃a.f should be b+c")
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(1), m.Or(m.Var(3), m.Not(m.Var(4))))
	s := m.Support(f)
	want := []bool{false, true, false, true, true}
	for v, w := range want {
		if s.Has(v) != w {
			t.Errorf("support(%d) = %v, want %v", v, s.Has(v), w)
		}
	}
}

func TestSatCount(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	if got := m.SatCount(m.And(a, b)); got != 4 { // ab over 4 vars: 2^2
		t.Errorf("SatCount(ab) = %v, want 4", got)
	}
	if got := m.SatCount(One); got != 16 {
		t.Errorf("SatCount(1) = %v, want 16", got)
	}
	if got := m.SatCount(Zero); got != 0 {
		t.Errorf("SatCount(0) = %v, want 0", got)
	}
	if got := m.Density(m.Xor(a, b)); got != 0.5 {
		t.Errorf("Density(a^b) = %v, want 0.5", got)
	}
}

func TestAnySat(t *testing.T) {
	m := New(3)
	f := m.And(m.Var(0), m.Not(m.Var(2)))
	assign, ok := m.AnySat(f)
	if !ok {
		t.Fatal("satisfiable function reported unsat")
	}
	if !m.Eval(f, assign) {
		t.Error("AnySat returned non-satisfying assignment")
	}
	if _, ok := m.AnySat(Zero); ok {
		t.Error("Zero reported satisfiable")
	}
}

func TestFromCoverMatchesEval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := sop.NewCover(n)
		for i := 0; i < 1+rng.Intn(6); i++ {
			tm := sop.NewTerm(n)
			for v := 0; v < n; v++ {
				switch rng.Intn(3) {
				case 0:
					tm.SetPos(v)
				case 1:
					tm.SetNeg(v)
				}
			}
			c.Add(tm)
		}
		m := New(n)
		g := m.FromCover(c)
		for a := 0; a < 1<<n; a++ {
			assign := cube.NewBitSet(n)
			for v := 0; v < n; v++ {
				if a&(1<<v) != 0 {
					assign.Set(v)
				}
			}
			if m.Eval(g, assign) != c.Eval(assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFromESOPPolarity(t *testing.T) {
	// f = x̄0 ⊕ x̄0x1 with polarity (neg, pos): cubes {0}, {0,1}.
	l := cube.NewList(2)
	l.Add(cube.New(2, 0))
	l.Add(cube.New(2, 0, 1))
	m := New(2)
	f := m.FromESOP(l, []bool{false, true})
	// x̄0 ⊕ x̄0x1 = x̄0(1⊕x1) = x̄0x̄1: tt bit set only at a=00.
	if got := ttOf(m, f, 2); got != 0b0001 {
		t.Errorf("FromESOP tt = %04b, want 0001", got)
	}
}

func TestISOPExactAndIrredundant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := New(n)
		// Random function from random truth table.
		g := Zero
		for a := 0; a < 1<<n; a++ {
			if rng.Intn(2) == 1 {
				p := One
				for v := 0; v < n; v++ {
					if a&(1<<v) != 0 {
						p = m.And(p, m.Var(v))
					} else {
						p = m.And(p, m.Not(m.Var(v)))
					}
				}
				g = m.Or(g, p)
			}
		}
		c, err := m.ToCover(g)
		return err == nil && m.FromCover(c) == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestISOPSmallCover(t *testing.T) {
	// a + bc has a 2-term ISOP.
	m := New(3)
	g := m.Or(m.Var(0), m.And(m.Var(1), m.Var(2)))
	c, err := m.ToCover(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Terms) != 2 {
		t.Errorf("ISOP(a+bc) has %d terms, want 2: %s", len(c.Terms), c)
	}
}

func TestImplies(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	if !m.Implies(m.And(a, b), a) {
		t.Error("ab should imply a")
	}
	if m.Implies(a, m.And(a, b)) {
		t.Error("a should not imply ab")
	}
}

func TestLargeVariableCount(t *testing.T) {
	// Sanity: 200-variable manager with a simple chain works.
	m := New(200)
	f := Zero
	for v := 0; v < 200; v += 2 {
		f = m.Xor(f, m.Var(v))
	}
	if m.IsConst(f) {
		t.Fatal("chain collapsed")
	}
	if got := m.Support(f).Count(); got != 100 {
		t.Errorf("support count = %d, want 100", got)
	}
	if m.Density(f) != 0.5 {
		t.Errorf("parity density = %v, want 0.5", m.Density(f))
	}
}
