package bdd

import (
	"testing"

	"repro/internal/obs"
)

// Hand-traced counter check on x0·x1 over a 2-variable manager. With
// stats attached after New (so the terminal and variable nodes are not
// counted):
//
//	And(x0, x1) = ITE(x0, x1, 0): no terminal case applies, so one
//	computed-table miss; both recursive calls (ITE(0,x1,0), ITE(1,x1,0))
//	hit terminal cases and never touch the table; mk(0, 0, x1) creates
//	one fresh node — one unique-table miss, node count 5 (two terminals,
//	two variables, the product).
//
//	And(x0, x1) again: the same iteKey — one computed-table hit.
//
//	And(x1, x0) = ITE(x1, x0, 0): a different iteKey — a second
//	computed-table miss — but its mk(0, 0, x1) finds the existing
//	product node: one unique-table hit.
func TestStatsHandTrace(t *testing.T) {
	m := New(2)
	var d obs.DD
	m.SetStats(&d)

	x0, x1 := m.Var(0), m.Var(1)
	and := m.And(x0, x1)

	assertDD(t, "after first And", &d, obs.DDStats{
		UniqueHits: 0, UniqueMisses: 1, OpHits: 0, OpMisses: 1,
		Rehashes: 0, PeakNodes: 5,
	})

	if again := m.And(x0, x1); again != and {
		t.Fatalf("And not canonical: %v vs %v", again, and)
	}
	assertDD(t, "after repeated And", &d, obs.DDStats{
		UniqueHits: 0, UniqueMisses: 1, OpHits: 1, OpMisses: 1,
		Rehashes: 0, PeakNodes: 5,
	})

	if swapped := m.And(x1, x0); swapped != and {
		t.Fatalf("commuted And differs: %v vs %v", swapped, and)
	}
	assertDD(t, "after commuted And", &d, obs.DDStats{
		UniqueHits: 1, UniqueMisses: 1, OpHits: 1, OpMisses: 2,
		Rehashes: 0, PeakNodes: 5,
	})
}

func assertDD(t *testing.T, when string, d *obs.DD, want obs.DDStats) {
	t.Helper()
	got := d.Snapshot()
	got.UniqueHitRate, got.OpHitRate = 0, 0 // derived; asserted via counts
	if got != want {
		t.Errorf("%s: counters = %+v, want %+v", when, got, want)
	}
}

// SetStats must be a no-op path when nil: the manager works unchanged.
func TestStatsNilDetach(t *testing.T) {
	m := New(2)
	m.SetStats(nil)
	if got := m.And(m.Var(0), m.Var(1)); got == Zero || got == One {
		t.Fatalf("And with nil stats returned terminal %v", got)
	}
}
