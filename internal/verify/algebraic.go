package verify

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/wordgen"
)

// This file implements word-level verification of a synthesized network
// against a wordgen.Spec. The primary engine is backward polynomial
// substitution (Yu & Ciesielski): start from the word-level output
// polynomial, eliminate internal gates in reverse topological order by
// substituting each gate's definition polynomial, and compare the
// residue over the PIs with the specification polynomial. For integer
// adders and multipliers the rewriting runs over Z on the full weighted
// output sum — the carry cancellations that keep the polynomial small
// only happen across the whole word, so this mode is global, with the
// substitution fan-out parallelized inside each step. For GF(2)-linear
// and GF(2^k) circuits every output bit is carry-free and independent,
// so the check shards one output cone per worker — the parallel claim
// of the source paper. Narrow instances fall back to BDD or simulation
// under the same budget discipline.
//
// The two engines have complementary blind spots: backward rewriting is
// polynomial on non-redundant structures (ripple adders, array and
// Wallace multipliers, GF circuits) but blows up on redundant parallel-
// prefix carry logic (Kogge-Stone), while BDDs are linear-size for any
// adder under an interleaved operand order yet exponential for
// multipliers. ModeAuto routes each kind to the engine that is
// polynomial for it and uses the other as the budget-governed fallback.

// Mode selects the word-level checking engine.
type Mode int

// Word-level checking modes.
const (
	// ModeAuto dispatches on instance shape: BDDs for narrow instances
	// and for integer adders at any width (adder BDDs are linear-size
	// under the interleaved operand order, while redundant prefix
	// structures blow backward rewriting up); the algebraic engine for
	// everything wide. Whichever engine goes first falls back to the
	// other when a non-fatal budget cap trips.
	ModeAuto Mode = iota
	ModeAlgebraic
	ModeBDD
	ModeSim
)

// String names the mode for reports.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeAlgebraic:
		return "algebraic"
	case ModeBDD:
		return "bdd"
	case ModeSim:
		return "sim"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// autoBDDInputs is the PI count at or below which ModeAuto prefers the
// BDD engine: 2^20 minterm space is where the package's exhaustive and
// BDD checks are known cheap.
const autoBDDInputs = 20

// WordOptions configures Word.
type WordOptions struct {
	Mode Mode
	// Workers bounds the checking parallelism (shards for per-bit GF
	// modes, substitution fan-out chunks for the global Z mode).
	// 0 means GOMAXPROCS.
	Workers int
	// Budget caps the run (cubes cap bounds live monomials, steps cap
	// bounds produced terms and BDD ITE work, BDD node cap bounds the
	// fallback manager). nil means unlimited.
	Budget *budget.Budget
	// SimVectors is the random-vector count for ModeSim (default 256).
	SimVectors int
	// Seed drives ModeSim's vector generator.
	Seed int64
}

// WordResult reports a completed word-level check. Results are
// deterministic for a given (network, spec, mode): worker count changes
// neither OK, Mismatch, Monomials nor Shards.
type WordResult struct {
	OK   bool
	Mode string // engine that produced the verdict: "algebraic", "bdd", "sim"
	// Mismatch localizes the first disagreement when OK is false.
	Mismatch *WordMismatch
	// Monomials is the peak live monomial count of an algebraic run
	// (measured at gate-elimination boundaries, so it is independent of
	// worker count). Zero for other engines.
	Monomials int
	// Shards is the number of independently checked slices: output bits
	// for the per-bit GF engines, 1 for the global Z engine and BDD/sim.
	Shards int
}

// WordMismatch localizes a word-level disagreement.
type WordMismatch struct {
	Word string // output word name
	Bit  int    // bit index within the word; -1 when not bit-localized
	Pos  int    // PO position; -1 when not bit-localized
	// Detail is a human-readable description of the disagreement (a
	// differing monomial, or a concrete counterexample assignment).
	Detail string
}

func (m *WordMismatch) String() string {
	if m.Bit < 0 {
		return fmt.Sprintf("word %q: %s", m.Word, m.Detail)
	}
	return fmt.Sprintf("word %q bit %d (output %d): %s", m.Word, m.Bit, m.Pos, m.Detail)
}

// WordShapeError reports a word-level spec whose bit map does not fit
// the network: it names the word and bit index that disagrees, rather
// than the generic count mismatch the network-vs-network prechecks
// produce.
type WordShapeError struct {
	Circuit string
	Side    string // "input" or "output"
	Word    string // word name; empty for whole-side coverage errors
	Bit     int    // bit index within the word; -1 for coverage errors
	Pos     int    // the PI/PO position the bit names; for coverage errors, the covered count
	Have    int    // the network's PI/PO count on that side
	Reason  string // "out of range", "claimed twice", "incomplete cover"
}

func (e *WordShapeError) Error() string {
	if e.Bit < 0 {
		return fmt.Sprintf("verify: %s: %s words cover %d of %d network %ss (%s)",
			e.Circuit, e.Side, e.Pos, e.Have, e.Side, e.Reason)
	}
	return fmt.Sprintf("verify: %s: %s word %q bit %d names %s position %d (%s; network has %d)",
		e.Circuit, e.Side, e.Word, e.Bit, e.Side, e.Pos, e.Reason, e.Have)
}

// CheckWordShape verifies that the spec's words tile the network's
// interface exactly: every named PI/PO position exists, none is claimed
// twice, and every PI and PO belongs to some word (otherwise the word
// model and the network disagree about the function's arity before any
// functional check can run).
func CheckWordShape(net *network.Network, ws *wordgen.Spec) error {
	check := func(side string, words []wordgen.Word, have int) error {
		seen := make([]bool, have)
		covered := 0
		for _, w := range words {
			for b, pos := range w.Bits {
				if pos < 0 || pos >= have {
					return &WordShapeError{Circuit: ws.Name, Side: side, Word: w.Name,
						Bit: b, Pos: pos, Have: have, Reason: "out of range"}
				}
				if seen[pos] {
					return &WordShapeError{Circuit: ws.Name, Side: side, Word: w.Name,
						Bit: b, Pos: pos, Have: have, Reason: "claimed twice"}
				}
				seen[pos] = true
				covered++
			}
		}
		if covered != have {
			return &WordShapeError{Circuit: ws.Name, Side: side,
				Bit: -1, Pos: covered, Have: have, Reason: "incomplete cover"}
		}
		return nil
	}
	if err := check("input", ws.In, net.NumPIs()); err != nil {
		return err
	}
	return check("output", ws.Out, net.NumPOs())
}

// Word checks a network against a word-level spec. The error return
// carries shape mismatches (*WordShapeError) and budget exhaustion
// (*budget.Err); functional disagreement is not an error — it comes
// back as OK=false with a Mismatch.
func Word(net *network.Network, ws *wordgen.Spec, opt WordOptions) (*WordResult, error) {
	if err := CheckWordShape(net, ws); err != nil {
		return nil, err
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	switch opt.Mode {
	case ModeAlgebraic:
		return algebraicWord(net, ws, opt)
	case ModeBDD:
		return bddWord(net, ws, opt)
	case ModeSim:
		return simWord(net, ws, opt)
	case ModeAuto:
		first, second := algebraicWord, bddWord
		if net.NumPIs() <= autoBDDInputs || ws.Kind == wordgen.KindIntAdd {
			first, second = bddWord, algebraicWord
		}
		r, err := first(net, ws, opt)
		if err != nil && budget.IsExceeded(err) && opt.Budget.Exceeded() == nil {
			// The first engine hit a local cap (cubes, nodes) but the
			// budget itself is still live — give the other engine the
			// remainder.
			if r2, err2 := second(net, ws, opt); err2 == nil {
				return r2, nil
			}
		}
		return r, err
	}
	return nil, fmt.Errorf("verify: unknown word mode %d", int(opt.Mode))
}

// algebraicWord dispatches on the spec kind: global Z rewriting for
// integer arithmetic, per-output-bit GF(2) rewriting for linear and
// Galois-field circuits.
func algebraicWord(net *network.Network, ws *wordgen.Spec, opt WordOptions) (res *WordResult, err error) {
	gerr := budget.Guard(func() {
		switch ws.Kind {
		case wordgen.KindIntAdd, wordgen.KindIntMul:
			res = globalZ(net, ws, opt)
		case wordgen.KindXorLinear, wordgen.KindGFMul:
			res = perBitGF(net, ws, opt)
		default:
			err = fmt.Errorf("verify: no algebraic model for kind %s", ws.Kind)
		}
	})
	if gerr != nil {
		return nil, gerr
	}
	return res, err
}

// specZPoly builds the specification polynomial over PI gate IDs: the
// integer value the weighted output sum must equal.
func specZPoly(net *network.Network, ws *wordgen.Spec) *zpoly {
	wordPoly := func(w wordgen.Word) []defTerm {
		ts := make([]defTerm, 0, len(w.Bits))
		for b, pos := range w.Bits {
			c := new(big.Int).Lsh(big.NewInt(1), uint(w.Shift+b))
			ts = append(ts, defTerm{[]int{net.PIs[pos]}, c})
		}
		return ts
	}
	spec := newZPoly()
	switch ws.Kind {
	case wordgen.KindIntAdd:
		for _, w := range ws.In {
			for _, t := range wordPoly(w) {
				spec.add(t.vars, t.coef)
			}
		}
	case wordgen.KindIntMul:
		for _, t := range defMul(wordPoly(ws.In[0]), wordPoly(ws.In[1])) {
			spec.add(t.vars, t.coef)
		}
	}
	return spec
}

// globalZ runs backward rewriting over Z on the full weighted output
// polynomial. Mid-word output bits of an adder or multiplier have
// exponential per-bit polynomials — only the weighted sum cancels the
// carries — so this engine is one global pass; parallelism lives inside
// each substitution step (the per-term products are chunked across
// workers, then merged deterministically).
func globalZ(net *network.Network, ws *wordgen.Spec, opt WordOptions) *WordResult {
	p := newZPoly()
	for _, w := range ws.Out {
		for b, pos := range w.Bits {
			c := new(big.Int).Lsh(big.NewInt(1), uint(w.Shift+b))
			p.add([]int{net.POs[pos].Gate}, c)
		}
	}
	// Subtract the spec up front: rewriting is linear, so eliminating
	// gates from (outputs - spec) reaches zero exactly when the network
	// implements the spec. This also lets spec monomials cancel against
	// rewritten output monomials early, keeping the polynomial small.
	negOne := big.NewInt(-1)
	for _, t := range specZPoly(net, ws).terms {
		p.add(t.vars, new(big.Int).Mul(t.coef, negOne))
	}

	peak := rewriteZ(net, p, opt.Budget, opt.Workers)

	res := &WordResult{Mode: "algebraic", Monomials: peak, Shards: 1}
	if p.len() == 0 {
		res.OK = true
		return res
	}
	res.Mismatch = &WordMismatch{
		Word: ws.Out[0].Name, Bit: -1, Pos: -1,
		Detail: fmt.Sprintf("weighted output sum differs from the %s spec by %d monomials; e.g. %s",
			ws.Kind, p.len(), renderZTerm(net, smallestZTerm(p))),
	}
	return res
}

// rewriteZ eliminates every non-PI variable of p in reverse topological
// order and returns the peak live monomial count, measured at gate
// boundaries so it is independent of worker count.
func rewriteZ(net *network.Network, p *zpoly, bud *budget.Budget, workers int) int {
	topo := net.TopoOrder()
	peak := p.len()
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		g := &net.Gates[id]
		if g.Type == network.PI {
			continue
		}
		occ := p.occ[id]
		if len(occ) == 0 {
			continue
		}
		keys := make([]string, 0, len(occ))
		for k := range occ {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		old := make([]*zterm, len(keys))
		for j, k := range keys {
			old[j] = p.remove(k)
		}
		def := gateDefZ(g.Type, g.Fanins)
		// Expand the removed terms' products in parallel chunks — each
		// worker writes only its own rows of exp — then merge and account
		// sequentially in index order, so the live polynomial, the peak
		// metric, and the budget spend are bit-identical at any worker
		// count.
		exp := make([][]defTerm, len(old))
		expand := func(lo, hi int) {
			for j := lo; j < hi; j++ {
				t := old[j]
				rest := without(t.vars, id)
				row := make([]defTerm, 0, len(def))
				for _, dt := range def {
					row = append(row, defTerm{unionVars(rest, dt.vars), new(big.Int).Mul(t.coef, dt.coef)})
				}
				exp[j] = row
			}
		}
		const minChunk = 128
		if workers > 1 && len(old) >= 2*minChunk {
			per := (len(old) + workers - 1) / workers
			if per < minChunk {
				per = minChunk
			}
			var wg sync.WaitGroup
			for lo := 0; lo < len(old); lo += per {
				hi := lo + per
				if hi > len(old) {
					hi = len(old)
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					expand(lo, hi)
				}(lo, hi)
			}
			wg.Wait()
		} else {
			expand(0, len(old))
		}
		for _, row := range exp {
			stepBudget(bud, len(row))
			for _, nt := range row {
				p.add(nt.vars, nt.coef)
			}
		}
		bud.CheckCubes("algebraic", int64(p.len()))
		if p.len() > peak {
			peak = p.len()
		}
	}
	return peak
}

// smallestZTerm picks the lexicographically smallest monomial —
// deterministic detail for mismatch reports.
func smallestZTerm(p *zpoly) *zterm {
	var bestKey string
	first := true
	for k := range p.terms {
		if first || k < bestKey {
			bestKey = k
			first = false
		}
	}
	return p.terms[bestKey]
}

// renderZTerm prints a monomial with PI names where available.
func renderZTerm(net *network.Network, t *zterm) string {
	s := t.coef.String()
	for _, v := range t.vars {
		name := net.Gates[v].Name
		if name == "" {
			name = fmt.Sprintf("g%d", v)
		}
		s += "·" + name
	}
	return s
}

// perBitGF checks each output cone independently over GF(2), sharded
// across the worker pool: carry-free circuits (parity, Hamming, GF(2^k)
// multipliers) have small per-bit Zhegalkin forms, so per-cone backward
// rewriting is embarrassingly parallel.
func perBitGF(net *network.Network, ws *wordgen.Spec, opt WordOptions) *WordResult {
	nPO := net.NumPOs()
	topo := net.TopoOrder()
	expected := expectedGF(net, ws)

	type bitOut struct {
		ok     bool
		peak   int
		detail string
	}
	outs := make([]bitOut, nPO)
	errs := make([]error, nPO)
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Workers)
	for pos := 0; pos < nPO; pos++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(pos int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[pos] = budget.Guard(func() {
				ok, peak, detail := rewriteGFBit(net, topo, pos, expected[pos], opt.Budget)
				outs[pos] = bitOut{ok: ok, peak: peak, detail: detail}
			})
		}(pos)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			panic(err.(*budget.Err)) // re-enter the caller's Guard
		}
	}
	res := &WordResult{OK: true, Mode: "algebraic", Shards: nPO}
	posWord := poWords(ws)
	for pos, o := range outs {
		if o.peak > res.Monomials {
			res.Monomials = o.peak
		}
		if !o.ok && res.OK {
			res.OK = false
			w, b := posWord[pos][0], posWord[pos][1]
			res.Mismatch = &WordMismatch{Word: ws.Out[w].Name, Bit: b, Pos: pos, Detail: o.detail}
		}
	}
	return res
}

// poWords maps PO position -> (output word index, bit index).
func poWords(ws *wordgen.Spec) map[int][2]int {
	m := map[int][2]int{}
	for wi, w := range ws.Out {
		for b, pos := range w.Bits {
			m[pos] = [2]int{wi, b}
		}
	}
	return m
}

// expectedGF builds the expected Zhegalkin form of every output bit
// over PI gate IDs.
func expectedGF(net *network.Network, ws *wordgen.Spec) []map[string][]int {
	out := make([]map[string][]int, net.NumPOs())
	for i := range out {
		out[i] = map[string][]int{}
	}
	toggle := func(pos int, vars []int) {
		k := monoKey(vars)
		if _, ok := out[pos][k]; ok {
			delete(out[pos], k)
		} else {
			out[pos][k] = vars
		}
	}
	switch ws.Kind {
	case wordgen.KindXorLinear:
		for pos := range out {
			for _, pi := range ws.Linear[pos] {
				toggle(pos, []int{net.PIs[pi]})
			}
		}
	case wordgen.KindGFMul:
		a, b := ws.In[0], ws.In[1]
		w := ws.Width
		rt := wordgen.ReduceTable(w, ws.Poly)
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				m := unionVars([]int{net.PIs[a.Bits[i]]}, []int{net.PIs[b.Bits[j]]})
				for _, ow := range ws.Out {
					for t, pos := range ow.Bits {
						if rt[i+j].Bit(ow.Shift+t) == 1 {
							toggle(pos, m)
						}
					}
				}
			}
		}
	}
	return out
}

// rewriteGFBit eliminates one output cone over GF(2) and compares the
// residue with the expected form.
func rewriteGFBit(net *network.Network, topo []int, pos int, expect map[string][]int, bud *budget.Budget) (ok bool, peak int, detail string) {
	p := newGFPoly()
	driver := net.POs[pos].Gate
	p.toggle([]int{driver})
	peak = 1
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		g := &net.Gates[id]
		if g.Type == network.PI {
			continue
		}
		occ := p.occ[id]
		if len(occ) == 0 {
			continue
		}
		keys := make([]string, 0, len(occ))
		for k := range occ {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		def := gateDefGF(g.Type, g.Fanins)
		for _, k := range keys {
			vars := p.remove(k)
			rest := without(vars, id)
			stepBudget(bud, len(def))
			for _, dv := range def {
				p.toggle(unionVars(rest, dv))
			}
		}
		bud.CheckCubes("algebraic", int64(p.len()))
		if p.len() > peak {
			peak = p.len()
		}
	}
	if len(p.terms) != len(expect) {
		return false, peak, fmt.Sprintf("Zhegalkin form has %d monomials, spec wants %d", p.len(), len(expect))
	}
	for k := range p.terms {
		if _, okk := expect[k]; !okk {
			return false, peak, fmt.Sprintf("monomial %s not in the spec form",
				renderZTerm(net, &zterm{vars: p.terms[k], coef: big.NewInt(1)}))
		}
	}
	return true, peak, ""
}

// bddWord checks the network against a word-level BDD model built from
// the spec (column compressors, XOR trees, reduce-table columns) under
// the run's budget: node growth and ITE steps trip the same caps the
// algebraic engine spends. Variables are ordered by interleaving the
// operand words bit by bit — the order under which adder and
// GF-multiplier column BDDs stay linear in the width; word-separated
// order (the PI declaration order) is exponential for carry chains.
func bddWord(net *network.Network, ws *wordgen.Spec, opt WordOptions) (res *WordResult, err error) {
	gerr := budget.Guard(func() {
		perm := interleavePerm(net, ws)
		m := bdd.New(net.NumPIs())
		m.SetBudget(opt.Budget)
		netRefs := toBDDsPerm(m, net, perm)
		specRefs := specBDDRefs(m, net, ws, perm)
		res = &WordResult{OK: true, Mode: "bdd", Shards: 1}
		posWord := poWords(ws)
		for pos := range netRefs {
			if netRefs[pos] == specRefs[pos] {
				continue
			}
			res.OK = false
			w, b := posWord[pos][0], posWord[pos][1]
			detail := "functions differ"
			if assign, sat := m.AnySat(m.Xor(netRefs[pos], specRefs[pos])); sat {
				// AnySat speaks var levels; translate back to PI positions.
				piAssign := cube.NewBitSet(net.NumPIs())
				for pos := range net.PIs {
					if assign.Has(perm[pos]) {
						piAssign.Set(pos)
					}
				}
				detail = fmt.Sprintf("differs on assignment %s", renderAssign(net, piAssign))
			}
			res.Mismatch = &WordMismatch{Word: ws.Out[w].Name, Bit: b, Pos: pos, Detail: detail}
			return
		}
	})
	if gerr != nil {
		return nil, gerr
	}
	return res, nil
}

// interleavePerm maps PI position -> BDD variable level, interleaving
// the input words LSB first: a0 b0 a1 b1 ...
func interleavePerm(net *network.Network, ws *wordgen.Spec) []int {
	perm := make([]int, net.NumPIs())
	level := 0
	for b := 0; ; b++ {
		progressed := false
		for _, w := range ws.In {
			if b < len(w.Bits) {
				perm[w.Bits[b]] = level
				level++
				progressed = true
			}
		}
		if !progressed {
			return perm
		}
	}
}

// toBDDsPerm builds the network's PO BDDs with PI position i assigned
// to variable level perm[i] (network.ToBDDs is fixed to the identity
// order).
func toBDDsPerm(m *bdd.Manager, net *network.Network, perm []int) []bdd.Ref {
	val := make([]bdd.Ref, len(net.Gates))
	piLevel := make(map[int]int, len(net.PIs))
	for pos, id := range net.PIs {
		piLevel[id] = perm[pos]
	}
	for _, id := range net.TopoOrder() {
		g := &net.Gates[id]
		switch g.Type {
		case network.PI:
			val[id] = m.Var(piLevel[id])
		case network.Const0:
			val[id] = bdd.Zero
		case network.Const1:
			val[id] = bdd.One
		case network.Buf:
			val[id] = val[g.Fanins[0]]
		case network.Not:
			val[id] = m.Not(val[g.Fanins[0]])
		case network.And, network.Nand:
			r := bdd.One
			for _, f := range g.Fanins {
				r = m.And(r, val[f])
			}
			if g.Type == network.Nand {
				r = m.Not(r)
			}
			val[id] = r
		case network.Or, network.Nor:
			r := bdd.Zero
			for _, f := range g.Fanins {
				r = m.Or(r, val[f])
			}
			if g.Type == network.Nor {
				r = m.Not(r)
			}
			val[id] = r
		case network.Xor, network.Xnor:
			r := bdd.Zero
			for _, f := range g.Fanins {
				r = m.Xor(r, val[f])
			}
			if g.Type == network.Xnor {
				r = m.Not(r)
			}
			val[id] = r
		}
	}
	refs := make([]bdd.Ref, len(net.POs))
	for i, po := range net.POs {
		refs[i] = val[po.Gate]
	}
	return refs
}

// specBDDRefs builds the word-level spec as BDDs, one ref per PO
// position. Integer kinds use a column compressor (full/half adders over
// per-weight ref lists) — the same construction for adders (input vars
// feed the columns) and multipliers (partial products feed them).
func specBDDRefs(m *bdd.Manager, net *network.Network, ws *wordgen.Spec, perm []int) []bdd.Ref {
	refs := make([]bdd.Ref, net.NumPOs())
	piRef := func(pos int) bdd.Ref { return m.Var(perm[pos]) }

	maxBit := 0
	for _, w := range ws.Out {
		if top := w.Shift + w.Width(); top > maxBit {
			maxBit = top
		}
	}
	cols := make([][]bdd.Ref, maxBit+1)
	pushCol := func(k int, r bdd.Ref) {
		for k >= len(cols) {
			cols = append(cols, nil)
		}
		cols[k] = append(cols[k], r)
	}
	sumCols := func() []bdd.Ref {
		// len(cols) is re-read each iteration: carries pushed from the
		// top column grow the slice and are compressed in later rounds.
		for k := 0; k < len(cols); k++ {
			col := cols[k]
			for len(col) > 1 {
				if len(col) == 2 {
					s := m.Xor(col[0], col[1])
					c := m.And(col[0], col[1])
					col = []bdd.Ref{s}
					pushCol(k+1, c)
					continue
				}
				x, y, z := col[0], col[1], col[2]
				s := m.Xor(m.Xor(x, y), z)
				c := m.Or(m.And(x, y), m.And(z, m.Xor(x, y)))
				col = append([]bdd.Ref{s}, col[3:]...)
				pushCol(k+1, c)
			}
			cols[k] = col
		}
		sum := make([]bdd.Ref, len(cols))
		for k, col := range cols {
			if len(col) == 1 {
				sum[k] = col[0]
			} else {
				sum[k] = bdd.Zero
			}
		}
		return sum
	}
	fromSum := func(sum []bdd.Ref) {
		for _, w := range ws.Out {
			for b, pos := range w.Bits {
				bit := w.Shift + b
				if bit < len(sum) {
					refs[pos] = sum[bit]
				} else {
					refs[pos] = bdd.Zero
				}
			}
		}
	}

	switch ws.Kind {
	case wordgen.KindIntAdd:
		for _, w := range ws.In {
			for b, pos := range w.Bits {
				pushCol(w.Shift+b, piRef(pos))
			}
		}
		fromSum(sumCols())
	case wordgen.KindIntMul:
		a, b := ws.In[0], ws.In[1]
		for i, ap := range a.Bits {
			for j, bp := range b.Bits {
				pushCol(i+j, m.And(piRef(ap), piRef(bp)))
			}
		}
		fromSum(sumCols())
	case wordgen.KindXorLinear:
		for pos := range refs {
			r := bdd.Zero
			for _, pi := range ws.Linear[pos] {
				r = m.Xor(r, piRef(pi))
			}
			refs[pos] = r
		}
	case wordgen.KindGFMul:
		a, b := ws.In[0], ws.In[1]
		w := ws.Width
		rt := wordgen.ReduceTable(w, ws.Poly)
		colRefs := make([]bdd.Ref, 2*w-1)
		for k := range colRefs {
			colRefs[k] = bdd.Zero
		}
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				colRefs[i+j] = m.Xor(colRefs[i+j], m.And(piRef(a.Bits[i]), piRef(b.Bits[j])))
			}
		}
		for _, ow := range ws.Out {
			for t, pos := range ow.Bits {
				r := bdd.Zero
				for k := range colRefs {
					if rt[k].Bit(ow.Shift+t) == 1 {
						r = m.Xor(r, colRefs[k])
					}
				}
				refs[pos] = r
			}
		}
	}
	return refs
}

// renderAssign formats a counterexample assignment with PI names.
func renderAssign(net *network.Network, assign cube.BitSet) string {
	s := ""
	for i, id := range net.PIs {
		v := "0"
		if assign.Has(i) {
			v = "1"
		}
		name := net.Gates[id].Name
		if name == "" {
			name = fmt.Sprintf("x%d", i)
		}
		if i > 0 {
			s += " "
		}
		s += name + "=" + v
	}
	return s
}

// simWord cross-checks the network against the word-level golden model
// on random operand vectors. It is a smoke test, not a proof: used when
// explicitly requested, and by the differential tests as the
// independent oracle the algebraic verdicts are compared against.
func simWord(net *network.Network, ws *wordgen.Spec, opt WordOptions) (*WordResult, error) {
	vectors := opt.SimVectors
	if vectors <= 0 {
		vectors = 256
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &WordResult{OK: true, Mode: "sim", Shards: 1}
	for v := 0; v < vectors; v++ {
		in := make([]*big.Int, len(ws.In))
		for i, w := range ws.In {
			val := new(big.Int)
			for b := 0; b < w.Width(); b++ {
				if rng.Intn(2) == 1 {
					val.SetBit(val, b, 1)
				}
			}
			in[i] = val
		}
		want, err := ws.Golden(in)
		if err != nil {
			return nil, err
		}
		assign := cube.NewBitSet(net.NumPIs())
		for i, w := range ws.In {
			for b, pos := range w.Bits {
				if in[i].Bit(b) == 1 {
					assign.Set(pos)
				}
			}
		}
		outBits := net.Eval(assign)
		for wi, w := range ws.Out {
			for b, pos := range w.Bits {
				got := outBits[pos]
				if got != (want[wi].Bit(b) == 1) {
					res.OK = false
					res.Mismatch = &WordMismatch{
						Word: w.Name, Bit: b, Pos: pos,
						Detail: fmt.Sprintf("inputs %v: circuit %v, golden %v", in, got, !got),
					}
					return res, nil
				}
			}
		}
	}
	return res, nil
}
