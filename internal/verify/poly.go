package verify

import (
	"encoding/binary"
	"math/big"
	"sort"

	"repro/internal/budget"
	"repro/internal/network"
)

// This file holds the polynomial machinery of the algebraic
// (Yu/Ciesielski-style) verification mode: pseudo-Boolean polynomials
// over Z with exact big.Int coefficients, GF(2) polynomials (Zhegalkin
// forms), and the per-gate definition polynomials the backward rewriter
// substitutes. Monomials are sets of network gate IDs (x^2 = x for 0/1
// variables, so a sorted duplicate-free ID list is canonical); during
// rewriting internal gate IDs are eliminated until only PI IDs remain.

// monoKey encodes a sorted variable-ID list as a compact map key.
func monoKey(vars []int) string {
	buf := make([]byte, 0, len(vars)*2+4)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vars {
		n := binary.PutUvarint(tmp[:], uint64(v))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// unionVars merges two sorted duplicate-free variable lists (monomial
// product under idempotence).
func unionVars(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// zterm is one monomial of a Z-polynomial.
type zterm struct {
	vars []int
	coef *big.Int
}

// zpoly is a pseudo-Boolean polynomial over Z in multilinear normal
// form, with an occurrence index so the backward rewriter finds the
// monomials containing a given variable without scanning.
type zpoly struct {
	terms map[string]*zterm
	occ   map[int]map[string]bool // variable -> keys of terms containing it
}

func newZPoly() *zpoly {
	return &zpoly{terms: map[string]*zterm{}, occ: map[int]map[string]bool{}}
}

func (p *zpoly) len() int { return len(p.terms) }

// add accumulates c * prod(vars); zero-sum terms vanish. vars must be
// sorted and duplicate-free; the slice is not retained by the caller.
func (p *zpoly) add(vars []int, c *big.Int) {
	if c.Sign() == 0 {
		return
	}
	k := monoKey(vars)
	if t, ok := p.terms[k]; ok {
		t.coef.Add(t.coef, c)
		if t.coef.Sign() == 0 {
			delete(p.terms, k)
			for _, v := range t.vars {
				delete(p.occ[v], k)
			}
		}
		return
	}
	t := &zterm{vars: vars, coef: new(big.Int).Set(c)}
	p.terms[k] = t
	for _, v := range vars {
		m := p.occ[v]
		if m == nil {
			m = map[string]bool{}
			p.occ[v] = m
		}
		m[k] = true
	}
}

// remove deletes the term under key k and returns it.
func (p *zpoly) remove(k string) *zterm {
	t := p.terms[k]
	delete(p.terms, k)
	for _, v := range t.vars {
		delete(p.occ[v], k)
	}
	return t
}

// without returns vars with v removed (vars contains v exactly once).
func without(vars []int, v int) []int {
	out := make([]int, 0, len(vars)-1)
	for _, x := range vars {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// defTerm is one monomial of a gate-definition polynomial.
type defTerm struct {
	vars []int
	coef *big.Int
}

// gateDefZ returns the multilinear Z-polynomial of a gate over its
// fanin IDs: the unique polynomial agreeing with the gate function on
// {0,1} inputs. Multi-input OR/XOR expand pairwise; the expansion size
// is 2^k for a k-input XOR, which budget caps bound at the caller.
func gateDefZ(t network.GateType, fanins []int) []defTerm {
	one := big.NewInt(1)
	switch t {
	case network.Const0:
		return nil
	case network.Const1:
		return []defTerm{{nil, one}}
	case network.Buf:
		return []defTerm{{sortedVars(fanins[:1]), one}}
	case network.Not:
		return []defTerm{{nil, one}, {sortedVars(fanins[:1]), big.NewInt(-1)}}
	case network.And:
		return []defTerm{{sortedVars(fanins), one}}
	case network.Nand:
		return []defTerm{{nil, one}, {sortedVars(fanins), big.NewInt(-1)}}
	case network.Or, network.Nor:
		// 1 - prod(1 - fi), expanded; Nor keeps prod(1 - fi).
		prod := []defTerm{{nil, big.NewInt(1)}}
		for _, f := range fanins {
			prod = defMul(prod, []defTerm{{nil, big.NewInt(1)}, {[]int{f}, big.NewInt(-1)}})
		}
		if t == network.Nor {
			return prod
		}
		return defSub1(prod)
	case network.Xor, network.Xnor:
		// Fold x XOR y = x + y - 2xy pairwise.
		acc := []defTerm{{[]int{fanins[0]}, big.NewInt(1)}}
		for _, f := range fanins[1:] {
			y := []defTerm{{[]int{f}, big.NewInt(1)}}
			xy := defMul(acc, y)
			next := append([]defTerm{}, acc...)
			next = append(next, y...)
			for _, t := range xy {
				next = append(next, defTerm{t.vars, new(big.Int).Mul(t.coef, big.NewInt(-2))})
			}
			acc = defCombine(next)
		}
		if t == network.Xnor {
			return defSub1(acc)
		}
		return acc
	}
	// PI has no definition; the rewriter never asks for one.
	panic("verify: gateDefZ on " + t.String())
}

func sortedVars(vs []int) []int {
	out := append([]int(nil), vs...)
	sort.Ints(out)
	// Collapse duplicates (idempotence): And(a,a) etc. The hash-consed
	// network never produces them, but parsed BLIF can.
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

func defMul(a, b []defTerm) []defTerm {
	var out []defTerm
	for _, x := range a {
		for _, y := range b {
			out = append(out, defTerm{unionVars(x.vars, y.vars), new(big.Int).Mul(x.coef, y.coef)})
		}
	}
	return defCombine(out)
}

// defSub1 returns 1 - p.
func defSub1(p []defTerm) []defTerm {
	out := []defTerm{{nil, big.NewInt(1)}}
	for _, t := range p {
		out = append(out, defTerm{t.vars, new(big.Int).Neg(t.coef)})
	}
	return defCombine(out)
}

func defCombine(ts []defTerm) []defTerm {
	m := map[string]*defTerm{}
	var order []string
	for _, t := range ts {
		k := monoKey(t.vars)
		if e, ok := m[k]; ok {
			e.coef.Add(e.coef, t.coef)
			continue
		}
		cp := t
		cp.coef = new(big.Int).Set(t.coef)
		m[k] = &cp
		order = append(order, k)
	}
	var out []defTerm
	for _, k := range order {
		if m[k].coef.Sign() != 0 {
			out = append(out, *m[k])
		}
	}
	return out
}

// gfpoly is a GF(2) polynomial (Zhegalkin form): the set of present
// monomials, with the same occurrence index as zpoly.
type gfpoly struct {
	terms map[string][]int // key -> vars
	occ   map[int]map[string]bool
}

func newGFPoly() *gfpoly {
	return &gfpoly{terms: map[string][]int{}, occ: map[int]map[string]bool{}}
}

func (p *gfpoly) len() int { return len(p.terms) }

// toggle XORs one monomial into the polynomial.
func (p *gfpoly) toggle(vars []int) {
	k := monoKey(vars)
	if old, ok := p.terms[k]; ok {
		delete(p.terms, k)
		for _, v := range old {
			delete(p.occ[v], k)
		}
		return
	}
	p.terms[k] = vars
	for _, v := range vars {
		m := p.occ[v]
		if m == nil {
			m = map[string]bool{}
			p.occ[v] = m
		}
		m[k] = true
	}
}

func (p *gfpoly) remove(k string) []int {
	vars := p.terms[k]
	delete(p.terms, k)
	for _, v := range vars {
		delete(p.occ[v], k)
	}
	return vars
}

// gateDefGF returns the GF(2) definition of a gate over its fanin IDs:
// the monomial list whose XOR equals the gate function.
func gateDefGF(t network.GateType, fanins []int) [][]int {
	switch t {
	case network.Const0:
		return nil
	case network.Const1:
		return [][]int{nil}
	case network.Buf:
		return [][]int{sortedVars(fanins[:1])}
	case network.Not:
		return [][]int{nil, sortedVars(fanins[:1])}
	case network.And:
		return [][]int{sortedVars(fanins)}
	case network.Nand:
		return [][]int{nil, sortedVars(fanins)}
	case network.Or, network.Nor:
		// OR(a,b) = a ^ b ^ ab, folded pairwise via 1 ^ prod(1 ^ fi).
		acc := [][]int{nil} // the constant 1
		for _, f := range fanins {
			// acc := acc * (1 ^ f) = acc ^ acc*f
			var next [][]int
			seen := map[string]bool{}
			push := func(vars []int) {
				k := monoKey(vars)
				if seen[k] {
					// XOR cancellation inside the expansion.
					for i, t := range next {
						if monoKey(t) == k {
							next = append(next[:i], next[i+1:]...)
							break
						}
					}
					delete(seen, k)
					return
				}
				seen[k] = true
				next = append(next, vars)
			}
			for _, t := range acc {
				push(t)
				push(unionVars(t, []int{f}))
			}
			acc = next
		}
		if t == network.Nor {
			return acc
		}
		return gfXor1(acc)
	case network.Xor:
		out := make([][]int, len(fanins))
		for i, f := range fanins {
			out[i] = []int{f}
		}
		return out
	case network.Xnor:
		out := [][]int{nil}
		for _, f := range fanins {
			out = append(out, []int{f})
		}
		return out
	}
	panic("verify: gateDefGF on " + t.String())
}

// gfXor1 XORs the constant-1 monomial into a definition list.
func gfXor1(ts [][]int) [][]int {
	for i, t := range ts {
		if len(t) == 0 {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return append(ts, nil)
}

// stepBudget wraps the budget accounting of one rewriting run: every
// produced term is a counted work step (the same currency decision-
// diagram ITE steps spend), and the live monomial count is checked
// against the cube cap after every substitution, so the algebraic and
// BDD checkers are governed by one budget discipline.
func stepBudget(b *budget.Budget, produced int) {
	for i := 0; i < produced; i++ {
		b.Step("algebraic")
	}
}
