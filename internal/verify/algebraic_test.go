package verify

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/network"
	"repro/internal/wordgen"
)

func mustSpec(t *testing.T, name string) *wordgen.Spec {
	t.Helper()
	s, err := wordgen.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWordAllFamilies: every family verifies against its own generated
// network in every engine that applies at the width.
func TestWordAllFamilies(t *testing.T) {
	for _, name := range []string{"add6", "cla6", "mul4", "wallace4", "parity8", "hamming8", "gfmul4"} {
		s := mustSpec(t, name)
		for _, mode := range []Mode{ModeAlgebraic, ModeBDD, ModeSim, ModeAuto} {
			r, err := Word(s.Net, s, WordOptions{Mode: mode})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, mode, err)
			}
			if !r.OK {
				t.Fatalf("%s/%s: reported mismatch: %s", name, mode, r.Mismatch)
			}
		}
	}
}

// TestWordWide: algebraic checks on widths where PLA/exhaustive methods
// are already out of reach. cla is absent deliberately: parallel-prefix
// carry logic is the algebraic engine's known blowup case and is
// checked by the BDD engine instead (TestWordPrefixAdder).
func TestWordWide(t *testing.T) {
	for _, name := range []string{"add64", "mul16", "wallace12", "parity64", "hamming32", "gfmul24"} {
		s := mustSpec(t, name)
		r, err := Word(s.Net, s, WordOptions{Mode: ModeAlgebraic})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.OK {
			t.Fatalf("%s: mismatch: %s", name, r.Mismatch)
		}
		if r.Monomials == 0 {
			t.Errorf("%s: algebraic run reported zero peak monomials", name)
		}
	}
}

// TestWordCatchesBugs: a deliberately corrupted network must be caught
// by every engine, with the mismatch localized to a word (and to a bit
// for the per-bit engines).
func TestWordCatchesBugs(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(n *network.Network)
	}{
		// Swap an adder's middle sum output for its neighbor's driver.
		{"add8", func(n *network.Network) { n.POs[3].Gate = n.POs[4].Gate }},
		// Redirect a multiplier product bit to a PI.
		{"mul4", func(n *network.Network) { n.POs[2].Gate = n.PIs[0] }},
		// Flip a parity tree to a constant.
		{"parity16", func(n *network.Network) { n.POs[0].Gate = n.AddGate(network.Const1) }},
		// Damage one Hamming parity bit.
		{"hamming8", func(n *network.Network) { n.POs[len(n.POs)-1].Gate = n.PIs[1] }},
		// Drop a GF multiplier output to another output's cone.
		{"gfmul6", func(n *network.Network) { n.POs[1].Gate = n.POs[2].Gate }},
	}
	for _, tc := range cases {
		for _, mode := range []Mode{ModeAlgebraic, ModeBDD} {
			s := mustSpec(t, tc.name)
			net := s.Net.Clone()
			tc.corrupt(net)
			r, err := Word(net, s, WordOptions{Mode: mode})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, mode, err)
			}
			if r.OK {
				t.Fatalf("%s/%s: corrupted network verified", tc.name, mode)
			}
			if r.Mismatch == nil || r.Mismatch.Word == "" {
				t.Fatalf("%s/%s: mismatch not localized: %+v", tc.name, mode, r)
			}
		}
	}
}

// TestWordMismatchLocalization pins the satellite bugfix: a width-
// mismatched word-level spec reports the offending word and bit index,
// not a generic count error.
func TestWordMismatchLocalization(t *testing.T) {
	s := mustSpec(t, "add8")

	// A network with one PO too few: the spec's cout word names a PO
	// position past the end.
	short := s.Net.Clone()
	short.POs = short.POs[:len(short.POs)-1]
	_, err := Word(short, s, WordOptions{})
	var shape *WordShapeError
	if !asShape(err, &shape) {
		t.Fatalf("expected WordShapeError, got %v", err)
	}
	if shape.Side != "output" || shape.Word != "cout" || shape.Reason != "out of range" {
		t.Fatalf("wrong localization: %+v", shape)
	}
	if !strings.Contains(shape.Error(), "cout") {
		t.Fatalf("error text does not name the word: %s", shape)
	}

	// A network with an extra dangling PO: coverage error.
	wide := s.Net.Clone()
	wide.AddPO("extra", wide.PIs[0])
	_, err = Word(wide, s, WordOptions{})
	if !asShape(err, &shape) {
		t.Fatalf("expected WordShapeError, got %v", err)
	}
	if shape.Reason != "incomplete cover" || shape.Side != "output" {
		t.Fatalf("wrong coverage localization: %+v", shape)
	}

	// Per-bit engines name the word and bit of a functional mismatch.
	bad := s.Net.Clone()
	g := mustSpec(t, "gfmul6")
	badg := g.Net.Clone()
	badg.POs[3].Gate = badg.PIs[0]
	r, err := Word(badg, g, WordOptions{Mode: ModeAlgebraic})
	if err != nil {
		t.Fatal(err)
	}
	if r.OK || r.Mismatch.Word != "z" || r.Mismatch.Bit != 3 {
		t.Fatalf("per-bit mismatch not localized to z[3]: %+v", r.Mismatch)
	}
	_ = bad
}

func asShape(err error, out **WordShapeError) bool {
	se, ok := err.(*WordShapeError)
	if ok {
		*out = se
	}
	return ok
}

// TestWordDeterminism: worker count must not change any reported field.
// This is the -j1 vs -j4 bit-identity acceptance criterion at unit
// scale (the mul32 test repeats it at full scale).
func TestWordDeterminism(t *testing.T) {
	for _, name := range []string{"mul10", "add32", "gfmul16", "hamming16"} {
		s := mustSpec(t, name)
		var results []*WordResult
		for _, j := range []int{1, 4} {
			r, err := Word(s.Net, s, WordOptions{Mode: ModeAlgebraic, Workers: j})
			if err != nil {
				t.Fatalf("%s j=%d: %v", name, j, err)
			}
			results = append(results, r)
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Errorf("%s: -j1 %+v != -j4 %+v", name, results[0], results[1])
		}
	}
}

// TestWordBudgetTrip: the algebraic engine must stop with a budget
// error — not run unbounded — when the caps are tiny.
func TestWordBudgetTrip(t *testing.T) {
	s := mustSpec(t, "mul12")
	bud := budget.New(nil, budget.Limits{Steps: 100})
	_, err := Word(s.Net, s, WordOptions{Mode: ModeAlgebraic, Budget: bud})
	if !budget.IsExceeded(err) {
		t.Fatalf("expected budget trip, got %v", err)
	}
}

// TestMul32AlgebraicBeatsBDD is the headline acceptance criterion: on a
// generated 32x32 array multiplier, backward rewriting over Z confirms
// the word-level spec while the BDD word checker cannot finish under
// the same budget limits; and the algebraic verdict is bit-identical at
// one and four workers.
func TestMul32AlgebraicBeatsBDD(t *testing.T) {
	s := mustSpec(t, "mul32")
	lim := budget.Limits{BDDNodes: 2_000_000, Steps: 20_000_000}

	var results []*WordResult
	for _, j := range []int{1, 4} {
		r, err := Word(s.Net, s, WordOptions{Mode: ModeAlgebraic, Workers: j, Budget: budget.New(nil, lim)})
		if err != nil {
			t.Fatalf("algebraic j=%d: %v", j, err)
		}
		if !r.OK {
			t.Fatalf("algebraic j=%d: mismatch: %s", j, r.Mismatch)
		}
		results = append(results, r)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("mul32: -j1 %+v != -j4 %+v", results[0], results[1])
	}

	// The same caps must stop the BDD word checker: a 32x32 multiplier
	// BDD is exponential in the operand width.
	_, err := Word(s.Net, s, WordOptions{Mode: ModeBDD, Budget: budget.New(nil, lim)})
	if !budget.IsExceeded(err) {
		t.Fatalf("BDD checker finished mul32 under the shared budget (err=%v) — limits too loose", err)
	}
}

// TestWordAutoFallsBack: auto mode uses BDDs for narrow instances and
// the algebraic engine for wide ones.
func TestWordAutoFallsBack(t *testing.T) {
	narrow := mustSpec(t, "add8") // 16 PIs -> BDD territory
	r, err := Word(narrow.Net, narrow, WordOptions{Mode: ModeAuto})
	if err != nil || !r.OK {
		t.Fatalf("add8 auto: %v %+v", err, r)
	}
	if r.Mode != "bdd" {
		t.Errorf("add8 auto picked %s, want bdd", r.Mode)
	}
	wide := mustSpec(t, "mul16") // 32 PIs -> algebraic
	r, err = Word(wide.Net, wide, WordOptions{Mode: ModeAuto})
	if err != nil || !r.OK {
		t.Fatalf("mul16 auto: %v %+v", err, r)
	}
	if r.Mode != "algebraic" {
		t.Errorf("mul16 auto picked %s, want algebraic", r.Mode)
	}
}

// TestWordPrefixAdder: the Kogge-Stone lookahead adder — the algebraic
// engine's blowup case — verifies via BDDs in linear size thanks to the
// interleaved variable order, and ModeAuto routes integer adders there
// at any width.
func TestWordPrefixAdder(t *testing.T) {
	s := mustSpec(t, "cla48")
	lim := budget.Limits{BDDNodes: 2_000_000, Steps: 20_000_000}
	r, err := Word(s.Net, s, WordOptions{Mode: ModeBDD, Budget: budget.New(nil, lim)})
	if err != nil {
		t.Fatalf("cla48 bdd: %v", err)
	}
	if !r.OK {
		t.Fatalf("cla48 bdd: mismatch: %s", r.Mismatch)
	}
	r, err = Word(s.Net, s, WordOptions{Mode: ModeAuto, Budget: budget.New(nil, lim)})
	if err != nil || !r.OK {
		t.Fatalf("cla48 auto: %v %+v", err, r)
	}
	if r.Mode != "bdd" {
		t.Errorf("cla48 auto picked %s, want bdd", r.Mode)
	}
}
