package verify

import (
	"testing"

	"repro/internal/network"
)

func twoNets() (*network.Network, *network.Network) {
	a := network.New("a")
	x := a.AddPI("x")
	y := a.AddPI("y")
	a.AddPO("o", a.AddGate(network.Xor, x, y))

	b := network.New("b")
	x2 := b.AddPI("x")
	y2 := b.AddPI("y")
	// x⊕y as (x+y)(xy)'
	or := b.AddGate(network.Or, x2, y2)
	nand := b.AddGate(network.Nand, x2, y2)
	b.AddPO("o", b.AddGate(network.And, or, nand))
	return a, b
}

func TestEquivalentTrue(t *testing.T) {
	a, b := twoNets()
	eq, err := Equivalent(a, b)
	if err != nil || !eq {
		t.Fatalf("eq=%v err=%v, want true", eq, err)
	}
	if ok, err := Exhaustive(a, b); err != nil || !ok {
		t.Errorf("Exhaustive disagrees: ok=%v err=%v", ok, err)
	}
	if RandomCheck(a, b, 256, 1) != -1 {
		t.Error("RandomCheck disagrees")
	}
	if _, _, found := Counterexample(a, b); found {
		t.Error("counterexample on equivalent networks")
	}
}

func TestEquivalentFalse(t *testing.T) {
	a, _ := twoNets()
	c := network.New("c")
	x := c.AddPI("x")
	y := c.AddPI("y")
	c.AddPO("o", c.AddGate(network.Or, x, y))
	eq, err := Equivalent(a, c)
	if err != nil || eq {
		t.Fatalf("eq=%v err=%v, want false", eq, err)
	}
	assign, out, found := Counterexample(a, c)
	if !found || out != 0 {
		t.Fatal("no counterexample found")
	}
	// The counterexample must actually distinguish them: x=y=1.
	if a.Eval(assign)[0] == c.Eval(assign)[0] {
		t.Error("counterexample does not distinguish")
	}
	if ok, err := Exhaustive(a, c); err != nil || ok {
		t.Errorf("Exhaustive says equal: ok=%v err=%v", ok, err)
	}
}

func TestShapeMismatch(t *testing.T) {
	a, _ := twoNets()
	d := network.New("d")
	d.AddPI("x")
	d.AddPO("o", d.PIs[0])
	if _, err := Equivalent(a, d); err == nil {
		t.Error("expected PI-count error")
	}
}
