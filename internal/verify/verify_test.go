package verify

import (
	"testing"

	"repro/internal/network"
)

func twoNets() (*network.Network, *network.Network) {
	a := network.New("a")
	x := a.AddPI("x")
	y := a.AddPI("y")
	a.AddPO("o", a.AddGate(network.Xor, x, y))

	b := network.New("b")
	x2 := b.AddPI("x")
	y2 := b.AddPI("y")
	// x⊕y as (x+y)(xy)'
	or := b.AddGate(network.Or, x2, y2)
	nand := b.AddGate(network.Nand, x2, y2)
	b.AddPO("o", b.AddGate(network.And, or, nand))
	return a, b
}

func TestEquivalentTrue(t *testing.T) {
	a, b := twoNets()
	eq, err := Equivalent(a, b)
	if err != nil || !eq {
		t.Fatalf("eq=%v err=%v, want true", eq, err)
	}
	if ok, err := Exhaustive(a, b); err != nil || !ok {
		t.Errorf("Exhaustive disagrees: ok=%v err=%v", ok, err)
	}
	if o, err := RandomCheck(a, b, 256, 1); err != nil || o != -1 {
		t.Errorf("RandomCheck disagrees: o=%d err=%v", o, err)
	}
	if _, _, found, err := Counterexample(a, b); err != nil || found {
		t.Errorf("counterexample on equivalent networks (err=%v)", err)
	}
}

func TestEquivalentFalse(t *testing.T) {
	a, _ := twoNets()
	c := network.New("c")
	x := c.AddPI("x")
	y := c.AddPI("y")
	c.AddPO("o", c.AddGate(network.Or, x, y))
	eq, err := Equivalent(a, c)
	if err != nil || eq {
		t.Fatalf("eq=%v err=%v, want false", eq, err)
	}
	assign, out, found, err := Counterexample(a, c)
	if err != nil || !found || out != 0 {
		t.Fatalf("no counterexample found (err=%v)", err)
	}
	// The counterexample must actually distinguish them: x=y=1.
	if a.Eval(assign)[0] == c.Eval(assign)[0] {
		t.Error("counterexample does not distinguish")
	}
	if ok, err := Exhaustive(a, c); err != nil || ok {
		t.Errorf("Exhaustive says equal: ok=%v err=%v", ok, err)
	}
}

func TestShapeMismatch(t *testing.T) {
	a, _ := twoNets()

	// PI-count mismatch: one input instead of two.
	d := network.New("d")
	d.AddPI("x")
	d.AddPO("o", d.PIs[0])

	// PO-count mismatch: same inputs, an extra output. Walking a's PO
	// list over e's (or vice versa) would index out of range without
	// the precondition check.
	e := network.New("e")
	ex := e.AddPI("x")
	ey := e.AddPI("y")
	e.AddPO("o", e.AddGate(network.Xor, ex, ey))
	e.AddPO("p", e.AddGate(network.And, ex, ey))

	for _, tc := range []struct {
		name string
		bad  *network.Network
	}{
		{"pi-mismatch", d},
		{"po-mismatch", e},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Equivalent(a, tc.bad); err == nil {
				t.Error("Equivalent: expected count error")
			}
			if _, _, _, err := Counterexample(a, tc.bad); err == nil {
				t.Error("Counterexample: expected count error")
			}
			if _, err := RandomCheck(a, tc.bad, 64, 1); err == nil {
				t.Error("RandomCheck: expected count error")
			}
			if _, err := Exhaustive(a, tc.bad); err == nil {
				t.Error("Exhaustive: expected count error")
			}
			// Symmetric order must error too, not panic.
			if _, err := RandomCheck(tc.bad, a, 64, 1); err == nil {
				t.Error("RandomCheck reversed: expected count error")
			}
			if _, err := Exhaustive(tc.bad, a); err == nil {
				t.Error("Exhaustive reversed: expected count error")
			}
		})
	}
}
