// Package verify provides combinational equivalence checking between gate
// networks — the role SIS's `verify` command plays in the paper's
// methodology (every synthesized circuit is checked against the original).
package verify

import (
	"fmt"
	"math/rand"

	"repro/internal/bdd"
	"repro/internal/cube"
	"repro/internal/network"
)

// precheck rejects interface-mismatched networks before any PI- or
// PO-indexed work: every checker in this package walks PI-sized slices
// and b.POs by a's indices, so a mismatch must be an error up front,
// never an index-out-of-range panic mid-check.
func precheck(a, b *network.Network) error {
	if a.NumPIs() != b.NumPIs() {
		return fmt.Errorf("verify: PI counts differ (%d vs %d)", a.NumPIs(), b.NumPIs())
	}
	if a.NumPOs() != b.NumPOs() {
		return fmt.Errorf("verify: PO counts differ (%d vs %d)", a.NumPOs(), b.NumPOs())
	}
	return nil
}

// Equivalent reports whether the two networks compute identical functions
// output-for-output (matched by position), using canonical BDDs.
func Equivalent(a, b *network.Network) (bool, error) {
	if err := precheck(a, b); err != nil {
		return false, err
	}
	m := bdd.New(a.NumPIs())
	fa := a.ToBDDs(m)
	fb := b.ToBDDs(m)
	for i := range fa {
		if fa[i] != fb[i] {
			return false, nil
		}
	}
	return true, nil
}

// Counterexample returns an input assignment on which the networks
// disagree, or ok=false if they are equivalent. Interface-mismatched
// networks are an error, not a counterexample.
func Counterexample(a, b *network.Network) (cube.BitSet, int, bool, error) {
	if err := precheck(a, b); err != nil {
		return nil, 0, false, err
	}
	m := bdd.New(a.NumPIs())
	fa := a.ToBDDs(m)
	fb := b.ToBDDs(m)
	for i := range fa {
		diff := m.Xor(fa[i], fb[i])
		if assign, sat := m.AnySat(diff); sat {
			return assign, i, true, nil
		}
	}
	return nil, 0, false, nil
}

// RandomCheck simulates both networks on n random vectors and reports the
// first mismatching output index, or -1. A quick smoke test for very wide
// circuits where BDDs might blow up.
func RandomCheck(a, b *network.Network, n int, seed int64) (int, error) {
	if err := precheck(a, b); err != nil {
		return -1, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i += 64 {
		words := make([]uint64, a.NumPIs())
		for v := range words {
			words[v] = rng.Uint64()
		}
		va := a.Simulate(words)
		vb := b.Simulate(words)
		for o := range a.POs {
			if va[a.POs[o].Gate] != vb[b.POs[o].Gate] {
				return o, nil
			}
		}
	}
	return -1, nil
}

// Exhaustive checks all 2^n input patterns (n ≤ 20). It returns an error
// rather than simulating past the input-count limit.
func Exhaustive(a, b *network.Network) (bool, error) {
	if err := precheck(a, b); err != nil {
		return false, err
	}
	n := a.NumPIs()
	if n > 20 {
		return false, fmt.Errorf("verify: Exhaustive limited to 20 inputs, got %d", n)
	}
	for base := 0; base < 1<<uint(n); base += 64 {
		words := make([]uint64, n)
		for j := 0; j < 64 && base+j < 1<<uint(n); j++ {
			m := base + j
			for v := 0; v < n; v++ {
				if m&(1<<v) != 0 {
					words[v] |= 1 << uint(j)
				}
			}
		}
		va := a.Simulate(words)
		vb := b.Simulate(words)
		rem := 1<<uint(n) - base
		mask := ^uint64(0)
		if rem < 64 {
			mask = 1<<uint(rem) - 1
		}
		for o := range a.POs {
			if (va[a.POs[o].Gate]^vb[b.POs[o].Gate])&mask != 0 {
				return false, nil
			}
		}
	}
	return true, nil
}
