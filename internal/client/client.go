// Package client is the resilient rmsynd client: deadline propagation,
// capped exponential backoff with jitter that honors the server's
// Retry-After, a shed-aware circuit breaker per replica, and optional
// hedged requests against a second replica. It is the client half of
// the overload contract rmsynd's admission layer defines — a server
// that sheds truthfully deserves a client that backs off honestly.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config sizes one Client. Zero values mean the documented defaults.
type Config struct {
	// BaseURL is the primary replica, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HedgeURL, when set, is a second replica: a request that has not
	// answered within HedgeAfter is raced against it, first response
	// wins, the loser's context is cancelled.
	HedgeURL string
	// HedgeAfter is how long the primary gets before the hedge launches
	// (default 1/4 of the request deadline, floor 50ms).
	HedgeAfter time.Duration

	// MaxRetries bounds re-submissions after retryable responses — 429
	// queue_full, 503 draining/queue_timeout, transport errors (default
	// 3; 0 uses the default, negative disables retries).
	MaxRetries int
	// BaseBackoff/MaxBackoff shape the exponential backoff (defaults
	// 200ms and 10s). A server Retry-After raises an attempt's floor —
	// the server knows its queue better than our exponent does.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// BreakerThreshold consecutive retryable failures open a replica's
	// circuit for BreakerCooldown (defaults 5 and 10s); while open,
	// calls fail fast without burdening the replica. One probe is let
	// through per cooldown (half-open).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// HTTPClient overrides the transport (default http.DefaultClient
	// semantics with no client-side timeout — deadlines travel by ctx).
	HTTPClient *http.Client
}

// Options tunes one Synthesize call.
type Options struct {
	// Timeout is the per-request synthesis deadline: propagated to the
	// server as X-Rmsynd-Timeout and enforced locally on the whole call
	// (retries and hedges included) with headroom for transport.
	Timeout time.Duration
	// Format forces ?format=pla|blif instead of server-side sniffing.
	Format string
	// Headers passes extra X-Rmsynd-* grant headers verbatim.
	Headers map[string]string
}

// Result is one successful synthesis response.
type Result struct {
	Body     []byte // rmsynd/v1 response body, exactly as served
	Replica  string // base URL of the replica that answered
	Cache    string // X-Rmsynd-Cache: miss|hit|coalesced|disk
	Brownout bool   // response produced under a server memory brownout
	Attempts int    // submissions across retries and hedge arms
	Hedged   bool   // the hedge arm produced the winning response
}

// APIError is a structured rmsynd/v1 error response.
type APIError struct {
	Status       int    // HTTP status
	Code         string // rmsynd error code, e.g. "queue_full"
	Message      string
	RetryAfterMS int64
	Replica      string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("rmsynd %s (%d) from %s: %s", e.Code, e.Status, e.Replica, e.Message)
}

// ErrCircuitOpen is returned when every eligible replica's breaker is
// open — the fail-fast path that keeps a melted-down server from being
// hammered by its own clients.
var ErrCircuitOpen = errors.New("client: circuit open on all replicas")

// breaker is a per-replica shed-aware circuit: consecutive retryable
// failures open it; while open, calls fail fast; after the cooldown one
// probe is admitted (half-open) and its outcome closes or reopens.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
}

func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false // one half-open probe at a time
	}
	b.probing = true
	return true
}

func (b *breaker) record(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
}

// Client is safe for concurrent use.
type Client struct {
	cfg      Config
	http     *http.Client
	breakers map[string]*breaker // keyed by replica base URL
}

// New builds a client; Config.BaseURL is required.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: Config.BaseURL is required")
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 200 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 10 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	c := &Client{cfg: cfg, http: cfg.HTTPClient, breakers: map[string]*breaker{}}
	for _, u := range []string{cfg.BaseURL, cfg.HedgeURL} {
		if u != "" {
			c.breakers[u] = &breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown}
		}
	}
	return c, nil
}

// retryable reports whether a failure is worth re-submitting: overload
// and lifecycle responses are; client mistakes and deterministic
// synthesis failures are not.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Code {
		case "queue_full", "queue_timeout", "draining":
			return true
		}
		return false
	}
	// Transport-level failure (connection refused, reset, EOF): the
	// replica may be restarting — retry. Context expiry is final.
	return err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// backoff computes the attempt's sleep: capped exponential with full
// jitter, floored by the server's Retry-After when one was given.
func (c *Client) backoff(attempt int, serverMS int64) time.Duration {
	d := c.cfg.BaseBackoff << attempt
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	d = time.Duration(rand.Int64N(int64(d)) + 1) // full jitter in (0, d]
	if server := time.Duration(serverMS) * time.Millisecond; server > d {
		d = server
	}
	return d
}

// Synthesize submits a PLA/BLIF spec and returns the winning response.
// The full call — every retry and hedge arm — runs inside opt.Timeout
// plus transport headroom (or ctx's deadline, whichever is sooner).
func (c *Client) Synthesize(ctx context.Context, spec []byte, opt Options) (*Result, error) {
	if opt.Timeout > 0 {
		// Headroom: the server needs the whole granted clock, plus the
		// body has to travel both ways.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout+opt.Timeout/4+2*time.Second)
		defer cancel()
	}

	var lastErr error
	attempts := 0
	for try := 0; try <= c.cfg.MaxRetries; try++ {
		if ctx.Err() != nil {
			break
		}
		res, err := c.attempt(ctx, spec, opt, &attempts)
		if err == nil {
			res.Attempts = attempts
			return res, nil
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
		if try == c.cfg.MaxRetries {
			break
		}
		var serverMS int64
		var ae *APIError
		if errors.As(err, &ae) {
			serverMS = ae.RetryAfterMS
		}
		select {
		case <-time.After(c.backoff(try, serverMS)):
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	if lastErr == nil {
		lastErr = context.Cause(ctx)
	}
	return nil, lastErr
}

// attempt runs one submission round: the primary, hedged against the
// secondary when one is configured and the primary is slow. First
// response (success or terminal error) wins.
func (c *Client) attempt(ctx context.Context, spec []byte, opt Options, attempts *int) (*Result, error) {
	now := time.Now()
	primaryOK := c.breakers[c.cfg.BaseURL].allow(now)
	hedgeOK := c.cfg.HedgeURL != "" && c.breakers[c.cfg.HedgeURL].allow(now)
	if !primaryOK && !hedgeOK {
		return nil, ErrCircuitOpen
	}
	if !primaryOK {
		// Primary open, hedge closed: the "hedge" replica is simply the
		// replica now.
		*attempts++
		return c.post(ctx, c.cfg.HedgeURL, spec, opt, true)
	}
	if !hedgeOK || c.cfg.HedgeURL == "" {
		*attempts++
		return c.post(ctx, c.cfg.BaseURL, spec, opt, false)
	}

	// Both available: race with a head start for the primary.
	hedgeAfter := c.cfg.HedgeAfter
	if hedgeAfter <= 0 {
		hedgeAfter = opt.Timeout / 4
		if hedgeAfter < 50*time.Millisecond {
			hedgeAfter = 50 * time.Millisecond
		}
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type arm struct {
		res *Result
		err error
	}
	out := make(chan arm, 2)
	launched := 1
	*attempts++
	go func() {
		r, err := c.post(raceCtx, c.cfg.BaseURL, spec, opt, false)
		out <- arm{r, err}
	}()
	hedgeTimer := time.NewTimer(hedgeAfter)
	defer hedgeTimer.Stop()

	var lastErr error
	hedgeLaunched := false
	launchHedge := func() {
		hedgeLaunched = true
		launched++
		*attempts++
		go func() {
			r, err := c.post(raceCtx, c.cfg.HedgeURL, spec, opt, true)
			out <- arm{r, err}
		}()
	}
	for done := 0; done < launched; done++ {
		select {
		case <-hedgeTimer.C:
			if !hedgeLaunched {
				launchHedge()
			}
			done-- // the timer is not an arm
		case a := <-out:
			if a.err == nil {
				return a.res, nil
			}
			// An arm cancelled because the other won is not a real error.
			if raceCtx.Err() == nil || lastErr == nil {
				lastErr = a.err
			}
			if !hedgeLaunched {
				// The primary failed outright before the timer — hedge
				// now rather than burning a whole retry round.
				hedgeTimer.Stop()
				launchHedge()
			}
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	return nil, lastErr
}

// post performs one HTTP submission against one replica and classifies
// the outcome for that replica's breaker.
func (c *Client) post(ctx context.Context, base string, spec []byte, opt Options, hedged bool) (*Result, error) {
	url := strings.TrimSuffix(base, "/") + "/v1/synthesize"
	if opt.Format != "" {
		url += "?format=" + opt.Format
	}
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(spec))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if opt.Timeout > 0 {
		req.Header.Set("X-Rmsynd-Timeout", opt.Timeout.String())
	}
	for k, v := range opt.Headers {
		req.Header.Set(k, v)
	}

	br := c.breakers[base]
	resp, err := c.http.Do(req)
	if err != nil {
		// Don't let an arm we cancelled (the other one won) trip the
		// breaker against an innocent replica.
		if ctx.Err() == nil {
			br.record(false, time.Now())
		}
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() == nil {
			br.record(false, time.Now())
		}
		return nil, err
	}

	if resp.StatusCode != http.StatusOK {
		ae := &APIError{Status: resp.StatusCode, Replica: base}
		var eb struct {
			Error struct {
				Code         string `json:"code"`
				Message      string `json:"message"`
				RetryAfterMS int64  `json:"retry_after_ms"`
			} `json:"error"`
		}
		if jerr := json.Unmarshal(body, &eb); jerr == nil {
			ae.Code, ae.Message, ae.RetryAfterMS = eb.Error.Code, eb.Error.Message, eb.Error.RetryAfterMS
		} else {
			ae.Message = strings.TrimSpace(string(body))
		}
		if ae.RetryAfterMS == 0 {
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if sec, perr := strconv.Atoi(ra); perr == nil {
					ae.RetryAfterMS = int64(sec) * 1000
				}
			}
		}
		br.record(!retryable(ae), time.Now()) // a 400 is the client's fault, not the replica's
		return nil, ae
	}
	br.record(true, time.Now())
	return &Result{
		Body:     body,
		Replica:  base,
		Cache:    resp.Header.Get("X-Rmsynd-Cache"),
		Brownout: resp.Header.Get("X-Rmsynd-Brownout") == "1",
		Attempts: 1,
		Hedged:   hedged,
	}, nil
}

// Health probes one endpoint path ("/healthz" or "/readyz") on the
// primary replica; a non-200 returns the body as the error.
func (c *Client) Health(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, "GET", strings.TrimSuffix(c.cfg.BaseURL, "/")+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %d %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// Metrics fetches the primary replica's Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", strings.TrimSuffix(c.cfg.BaseURL, "/")+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/metrics: %d", resp.StatusCode)
	}
	return string(body), nil
}
