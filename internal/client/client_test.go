package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func shedBody(ms int64) string {
	return fmt.Sprintf(`{"schema":"rmsynd/v1","error":{"code":"queue_full","message":"shed","retry_after_ms":%d}}`, ms)
}

// flaky is a backend that sheds its first n requests, then succeeds.
func flaky(t *testing.T, shedFirst int64, retryMS int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= shedFirst {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, shedBody(retryMS))
			return
		}
		w.Header().Set("X-Rmsynd-Cache", "miss")
		fmt.Fprint(w, `{"schema":"rmsynd/v1"}`)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// TestRetryHonorsRetryAfter: shed responses are retried with a backoff
// floored by the server's retry_after_ms, and the call eventually
// succeeds.
func TestRetryHonorsRetryAfter(t *testing.T) {
	ts, calls := flaky(t, 2, 40)
	c, err := New(Config{BaseURL: ts.URL, MaxRetries: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := c.Synthesize(context.Background(), []byte(".i 1"), Options{})
	if err != nil {
		t.Fatalf("Synthesize after sheds: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("backend saw %d calls, want 3 (2 sheds + success)", got)
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res.Attempts)
	}
	// Two waits, each floored at the server's 40ms: the exponential
	// backoff alone (≤5ms cap) could never take this long.
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("retries ignored the server's Retry-After: total %v < 80ms", elapsed)
	}
}

// TestNonRetryableFailsFast: a 400 is the client's own fault —
// resubmitting the same bad spec is pure load.
func TestNonRetryableFailsFast(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"schema":"rmsynd/v1","error":{"code":"bad_spec","message":"nope"}}`)
	}))
	defer ts.Close()
	c, _ := New(Config{BaseURL: ts.URL, MaxRetries: 5, BaseBackoff: time.Millisecond})
	_, err := c.Synthesize(context.Background(), []byte("garbage"), Options{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "bad_spec" {
		t.Fatalf("err = %v, want bad_spec APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("backend saw %d calls for a non-retryable error, want 1", got)
	}
}

// TestCircuitBreaker: sustained sheds open the circuit — further calls
// fail fast without touching the replica until the cooldown passes,
// after which one half-open probe is admitted and a success closes it.
func TestCircuitBreaker(t *testing.T) {
	var calls atomic.Int64
	healthy := atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			fmt.Fprint(w, `{"schema":"rmsynd/v1"}`)
			return
		}
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, shedBody(1))
	}))
	defer ts.Close()
	c, _ := New(Config{
		BaseURL: ts.URL, MaxRetries: -1, // no retries: each call is one attempt
		BaseBackoff: time.Millisecond, BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond,
	})

	for i := 0; i < 3; i++ {
		if _, err := c.Synthesize(context.Background(), []byte("x"), Options{}); err == nil {
			t.Fatal("shedding backend returned success")
		}
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("backend saw %d calls before the circuit opened, want 3", got)
	}
	// Open: fail fast, zero backend traffic.
	if _, err := c.Synthesize(context.Background(), []byte("x"), Options{}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("open circuit still sent traffic (%d calls)", got)
	}
	// Cooldown passes, replica recovers: the half-open probe closes it.
	healthy.Store(true)
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Synthesize(context.Background(), []byte("x"), Options{}); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := c.Synthesize(context.Background(), []byte("x"), Options{}); err != nil {
		t.Fatalf("closed circuit refused a call: %v", err)
	}
}

// TestHedgeWins: a slow primary is raced against the hedge replica
// after HedgeAfter; the hedge's response wins and is attributed.
func TestHedgeWins(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		fmt.Fprint(w, `{"schema":"rmsynd/v1","from":"primary"}`)
	}))
	defer slow.Close()
	// LIFO: the gate must open before slow.Close waits on the handler.
	defer close(release)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Rmsynd-Cache", "hit")
		fmt.Fprint(w, `{"schema":"rmsynd/v1","from":"hedge"}`)
	}))
	defer fast.Close()

	c, _ := New(Config{BaseURL: slow.URL, HedgeURL: fast.URL, HedgeAfter: 10 * time.Millisecond})
	res, err := c.Synthesize(context.Background(), []byte("x"), Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("hedged call failed: %v", err)
	}
	if !res.Hedged || res.Replica != fast.URL {
		t.Errorf("winner = %q hedged=%v, want the hedge replica", res.Replica, res.Hedged)
	}
}

// TestDeadlinePropagation: Options.Timeout travels to the server as
// X-Rmsynd-Timeout so the server's grant matches the client's patience.
func TestDeadlinePropagation(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Rmsynd-Timeout"))
		fmt.Fprint(w, `{"schema":"rmsynd/v1"}`)
	}))
	defer ts.Close()
	c, _ := New(Config{BaseURL: ts.URL})
	if _, err := c.Synthesize(context.Background(), []byte("x"), Options{Timeout: 1500 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if h, _ := got.Load().(string); h != "1.5s" {
		t.Errorf("X-Rmsynd-Timeout = %q, want 1.5s", h)
	}
}

// TestFailoverWhenPrimaryDown: a dead primary (connection refused)
// trips its breaker; with a hedge configured the call still succeeds.
func TestFailoverWhenPrimaryDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // nothing listens here any more
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"schema":"rmsynd/v1"}`)
	}))
	defer alive.Close()

	c, _ := New(Config{
		BaseURL: dead.URL, HedgeURL: alive.URL,
		HedgeAfter: 5 * time.Millisecond, MaxRetries: 4,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	res, err := c.Synthesize(context.Background(), []byte("x"), Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("failover failed: %v", err)
	}
	if res.Replica != alive.URL {
		t.Errorf("served by %q, want the live replica", res.Replica)
	}
}
