package arbiter

import (
	"bytes"
	"testing"

	"repro/internal/bdd"
	"repro/internal/network"
	"repro/internal/sop"
)

// Seed specs for the predictor fuzzer (also committed under
// testdata/fuzz/FuzzPredict): the two pure shapes the thresholds are
// anchored on plus a mixed multi-output cone set.
var fuzzSeeds = []string{
	// Pure parity of four inputs: the canonical GF(2) cone.
	".i 4\n.o 1\n1000 1\n0100 1\n0010 1\n0001 1\n1110 1\n1101 1\n1011 1\n0111 1\n.e\n",
	// Pure majority-of-five: unate control logic, the canonical SOP cone.
	".i 5\n.o 1\n111-- 1\n11-1- 1\n11--1 1\n1-11- 1\n1-1-1 1\n1--11 1\n-111- 1\n-11-1 1\n-1-11 1\n--111 1\n.e\n",
	// Mixed cone set: one parity output, one AND/OR control output.
	".i 4\n.o 2\n1000 10\n0100 10\n0010 10\n0001 10\n1110 10\n1101 10\n1011 10\n0111 10\n11-- 01\n--11 01\n.e\n",
}

// FuzzPredict feeds arbitrary PLA specs through the predictor, checking
// it never panics, never mutates the shared BDD manager, always returns
// a verdict from the closed set, and is exactly repeatable (the property
// the -j determinism of the predict phase rests on).
func FuzzPredict(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := sop.ParsePLA(bytes.NewReader(data))
		if err != nil || p.Inputs > 14 || p.Outputs > 8 {
			return
		}
		terms := 0
		for _, c := range p.Covers {
			terms += len(c.Terms)
		}
		if terms > 256 {
			return
		}
		spec := network.FromPLA(p)
		m := bdd.New(spec.NumPIs())
		outs := spec.ToBDDs(m)
		for oi, out := range outs {
			before := m.Size()
			p1 := Predict(m, out, DefaultConfig())
			p2 := Predict(m, out, DefaultConfig())
			if p1 != p2 {
				t.Fatalf("output %d: predictions differ: %+v vs %+v", oi, p1, p2)
			}
			if m.Size() != before {
				t.Fatalf("output %d: Predict grew the shared manager %d -> %d", oi, before, m.Size())
			}
			switch p1.Decision {
			case Xor, Sop, Hedge:
			default:
				t.Fatalf("output %d: verdict %v outside the closed set", oi, p1.Decision)
			}
			if p1.Why == "" {
				t.Fatalf("output %d: empty reason", oi)
			}
		}
	})
}
