package arbiter

import (
	"testing"

	"repro/internal/bdd"
)

// parity builds x0 ⊕ x1 ⊕ … ⊕ x(n-1).
func parity(m *bdd.Manager, n int) bdd.Ref {
	f := bdd.Zero
	for i := 0; i < n; i++ {
		f = m.Xor(f, m.Var(i))
	}
	return f
}

// A pure parity cone is the canonical GF(2) case: every decision node
// has complement cofactors and the PPRM is linear in n.
func TestPredictParityIsXor(t *testing.T) {
	m := bdd.New(8)
	p := Predict(m, parity(m, 8), DefaultConfig())
	if p.Decision != Xor {
		t.Fatalf("parity predicted %v (%s), want xor", p.Decision, p.Why)
	}
	if p.Features.XorDensity != 1 {
		t.Fatalf("parity xor density = %v, want 1", p.Features.XorDensity)
	}
	if p.Features.PPRMCubes != 8 {
		t.Fatalf("parity-8 PPRM cubes = %d, want 8", p.Features.PPRMCubes)
	}
}

// A wide OR chain is the canonical SOP case: no XOR decision structure
// and a Reed-Muller form exponentially bigger than the SOP.
func TestPredictWideOrIsSop(t *testing.T) {
	m := bdd.New(10)
	f := bdd.Zero
	for i := 0; i < 10; i++ {
		f = m.Or(f, m.Var(i))
	}
	p := Predict(m, f, DefaultConfig())
	if p.Decision != Sop {
		t.Fatalf("wide OR predicted %v (%s), want sop", p.Decision, p.Why)
	}
	if p.Features.XorDensity != 0 {
		t.Fatalf("OR-chain xor density = %v, want 0", p.Features.XorDensity)
	}
	if p.Features.PPRMCubes != (1<<10)-1 {
		t.Fatalf("OR-10 PPRM cubes = %d, want %d", p.Features.PPRMCubes, (1<<10)-1)
	}
}

// Constant cones are trivially decided (no work either way).
func TestPredictConstant(t *testing.T) {
	m := bdd.New(4)
	for _, f := range []bdd.Ref{bdd.Zero, bdd.One} {
		p := Predict(m, f, DefaultConfig())
		if p.Decision != Xor {
			t.Fatalf("constant predicted %v, want xor (trivial)", p.Decision)
		}
	}
}

// The predictor is a pure function of the cone: repeated calls agree
// exactly, and it never mutates the shared manager.
func TestPredictDeterministicAndReadOnly(t *testing.T) {
	m := bdd.New(6)
	// maj3(x0,x1,x2) mixed with a parity tail: an ambiguous shape.
	maj := m.Or(m.Or(m.And(m.Var(0), m.Var(1)), m.And(m.Var(0), m.Var(2))), m.And(m.Var(1), m.Var(2)))
	f := m.Xor(maj, m.Xor(m.Var(3), m.Var(4)))
	before := m.Size()
	p1 := Predict(m, f, DefaultConfig())
	p2 := Predict(m, f, DefaultConfig())
	if p1 != p2 {
		t.Fatalf("two predictions differ: %+v vs %+v", p1, p2)
	}
	if m.Size() != before {
		t.Fatalf("Predict grew the shared BDD manager: %d -> %d nodes", before, m.Size())
	}
}

// complements must be exact: x⊕y's cofactors are complements, x·y's are
// not, and deep structural complements are found without materializing
// the negation.
func TestComplementCheck(t *testing.T) {
	m := bdd.New(6)
	x := parity(m, 6)
	c := newCompMemo(m)
	if !c.complements(m.Lo(x), m.Hi(x)) {
		t.Fatal("parity cofactors not detected as complements")
	}
	a := m.And(m.Var(0), m.Var(1))
	if c.complements(m.Lo(a), m.Hi(a)) {
		t.Fatal("AND cofactors misdetected as complements")
	}
	g := m.Or(m.And(m.Var(2), m.Var(3)), m.Var(4))
	ng := m.Not(g)
	if !c.complements(g, ng) {
		t.Fatal("materialized complement not detected")
	}
	if c.complements(g, g) {
		t.Fatal("a non-constant function is not its own complement")
	}
}
