// Package arbiter implements the per-cone basis predictor of the
// combined synthesis flow: given the spec BDD of one output cone, it
// decides whether the cone wants the GF(2) AND/XOR flow (the paper's
// FPRM pipeline), the AND/OR SOP flow (the SIS-style baseline), or — when
// the structure is ambiguous — a hedged race of both arms under one
// shared budget slice.
//
// The paper's Table 2 shows the split the predictor models: FPRM wins on
// arithmetic (XOR-rich) cones, SOP wins on random/control logic, and
// Kushch's per-block basis selection argues the choice belongs to the
// block, not the tool. The features are deliberately cheap and
// read-only: the predictor walks the already-built spec BDD and a small
// bounded PPRM build, never mutating the shared BDD manager, so the
// predict phase adds no cross-output coupling and its decisions are
// bit-identical at any worker count.
package arbiter

import (
	"fmt"
	"math"

	"repro/internal/bdd"
	"repro/internal/ofdd"
)

// Decision is the predictor's verdict for one cone.
type Decision int

const (
	// Xor routes the cone to the GF(2) FPRM flow only.
	Xor Decision = iota
	// Sop routes the cone to the SOP baseline flow only.
	Sop
	// Hedge races both flows as sibling arms and keeps the better
	// verified result.
	Hedge
)

// String returns the lower-case decision name used in reports.
func (d Decision) String() string {
	switch d {
	case Xor:
		return "xor"
	case Sop:
		return "sop"
	case Hedge:
		return "hedge"
	}
	return fmt.Sprintf("decision(%d)", int(d))
}

// hugeCount saturates the path/cube counters: beyond this the exact
// magnitude is meaningless for a ratio test (and int64 addition would
// overflow on wide-support cones), so counts clamp here.
const hugeCount = int64(1) << 40

// Features are the structural measurements the decision is made from.
// All of them are deterministic functions of the cone BDD alone.
type Features struct {
	Support    int     // cone support size (variables the function depends on)
	Nodes      int     // cone BDD node count (terminals excluded)
	XorDensity float64 // fraction of cone nodes whose cofactors are structural complements
	PPRMCubes  int64   // cube count of the positive-polarity Reed-Muller form; -1 when the bounded build overflowed
	SOPPaths   int64   // BDD paths to the One terminal (a disjoint SOP cube count)
}

// Config holds the decision thresholds. The defaults are conservative:
// a sure verdict (Xor/Sop) skips the other arm entirely, so it only
// fires on strong structural evidence; everything ambiguous hedges.
type Config struct {
	// XorSure: density of complement-cofactor nodes at or above which
	// the cone is XOR-dominated (a pure parity cone has density 1).
	XorSure float64
	// SopSure: density at or below which the cone has essentially no
	// XOR decision structure.
	SopSure float64
	// RatioXor: PPRMCubes ≤ RatioXor·SOPPaths counts as GF(2)-friendly
	// (the Reed-Muller form is no bigger than the disjoint SOP).
	RatioXor float64
	// RatioSop: PPRMCubes ≥ RatioSop·SOPPaths counts as SOP-friendly.
	RatioSop float64
	// OFDDNodeBound caps the bounded PPRM build; past it PPRMCubes is
	// reported as -1 (the GF(2) canonical form is already blowing up).
	OFDDNodeBound int
}

// DefaultConfig returns the tuned thresholds.
func DefaultConfig() Config {
	return Config{
		XorSure:       0.60,
		SopSure:       0.05,
		RatioXor:      1.5,
		RatioSop:      4.0,
		OFDDNodeBound: 4096,
	}
}

// Prediction is the predictor's full output for one cone: the verdict,
// the features it was derived from, and a deterministic one-line reason
// for reports.
type Prediction struct {
	Decision Decision
	Features Features
	Why      string
}

// Compute measures the features of cone f. bm is only read.
func Compute(bm *bdd.Manager, f bdd.Ref, cfg Config) Features {
	if cfg.OFDDNodeBound <= 0 {
		cfg.OFDDNodeBound = DefaultConfig().OFDDNodeBound
	}
	var ft Features
	ft.Support = bm.Support(f).Count()
	ft.Nodes = coneNodes(bm, f)
	ft.XorDensity = xorDensity(bm, f, ft.Nodes)
	ft.SOPPaths = onePaths(bm, f)
	om := ofdd.New(bm.NumVars(), nil) // nil polarity = all-positive = PPRM
	if r, ok := om.FromBDDBounded(bm, f, cfg.OFDDNodeBound); ok {
		ft.PPRMCubes = ofddPaths(om, r)
	} else {
		ft.PPRMCubes = -1
	}
	return ft
}

// Predict measures cone f and applies the thresholds.
func Predict(bm *bdd.Manager, f bdd.Ref, cfg Config) Prediction {
	ft := Compute(bm, f, cfg)
	d, why := cfg.decide(ft)
	return Prediction{Decision: d, Features: ft, Why: why}
}

func (cfg Config) decide(ft Features) (Decision, string) {
	if ft.Nodes == 0 {
		return Xor, "constant cone"
	}
	if ft.Support <= 2 {
		return Xor, fmt.Sprintf("trivial cone (support %d)", ft.Support)
	}
	if ft.PPRMCubes < 0 {
		if ft.XorDensity <= cfg.SopSure {
			return Sop, fmt.Sprintf("pprm overflow, xor density %.2f", ft.XorDensity)
		}
		return Hedge, fmt.Sprintf("pprm overflow, xor density %.2f", ft.XorDensity)
	}
	pprm, paths := float64(ft.PPRMCubes), float64(ft.SOPPaths)
	if ft.XorDensity >= cfg.XorSure && pprm <= cfg.RatioXor*paths {
		return Xor, fmt.Sprintf("xor density %.2f, pprm/sop %d/%d", ft.XorDensity, ft.PPRMCubes, ft.SOPPaths)
	}
	if ft.XorDensity <= cfg.SopSure && pprm >= cfg.RatioSop*paths {
		return Sop, fmt.Sprintf("xor density %.2f, pprm/sop %d/%d", ft.XorDensity, ft.PPRMCubes, ft.SOPPaths)
	}
	return Hedge, fmt.Sprintf("xor density %.2f, pprm/sop %d/%d", ft.XorDensity, ft.PPRMCubes, ft.SOPPaths)
}

// satAdd saturates at hugeCount so wide-support path counts never
// overflow int64.
func satAdd(a, b int64) int64 {
	if s := a + b; s >= 0 && s < hugeCount {
		return s
	}
	return hugeCount
}

// coneNodes counts the internal BDD nodes of f's cone.
func coneNodes(bm *bdd.Manager, f bdd.Ref) int {
	seen := map[bdd.Ref]bool{}
	var rec func(bdd.Ref)
	rec = func(f bdd.Ref) {
		if bm.IsConst(f) || seen[f] {
			return
		}
		seen[f] = true
		rec(bm.Lo(f))
		rec(bm.Hi(f))
	}
	rec(f)
	return len(seen)
}

// onePaths counts BDD paths from f to the One terminal (saturating):
// each such path is one cube of a disjoint SOP cover of f.
func onePaths(bm *bdd.Manager, f bdd.Ref) int64 {
	memo := map[bdd.Ref]int64{}
	var rec func(bdd.Ref) int64
	rec = func(f bdd.Ref) int64 {
		if f == bdd.Zero {
			return 0
		}
		if f == bdd.One {
			return 1
		}
		if c, ok := memo[f]; ok {
			return c
		}
		c := satAdd(rec(bm.Lo(f)), rec(bm.Hi(f)))
		memo[f] = c
		return c
	}
	return rec(f)
}

// ofddPaths counts OFDD paths to the One terminal (saturating) — the
// FPRM cube count — without touching the manager's memoized counters.
func ofddPaths(om *ofdd.Manager, f ofdd.Ref) int64 {
	memo := map[ofdd.Ref]int64{}
	var rec func(ofdd.Ref) int64
	rec = func(f ofdd.Ref) int64 {
		if f == ofdd.Zero {
			return 0
		}
		if f == ofdd.One {
			return 1
		}
		if c, ok := memo[f]; ok {
			return c
		}
		c := satAdd(rec(om.Lo(f)), rec(om.Hi(f)))
		memo[f] = c
		return c
	}
	return rec(f)
}

// xorDensity is the fraction of cone nodes whose two cofactors are
// structural complements of each other — the signature of an XOR
// decision (v ? g : ḡ means the node computes v ⊕ ḡ). A pure parity
// cone has density 1; AND/OR-dominated cones sit near 0. Literal nodes
// (both cofactors constant) are excluded from both sides of the ratio:
// x ? 1 : 0 trivially has complement cofactors, and counting it would
// credit every cone's bottom literals with XOR structure they don't
// have. The check is a read-only pairwise walk: it never calls Not
// (which would grow the shared manager and perturb its counters).
func xorDensity(bm *bdd.Manager, f bdd.Ref, nodes int) float64 {
	if nodes == 0 {
		return 0
	}
	comp := newCompMemo(bm)
	xor, inner := 0, 0
	seen := map[bdd.Ref]bool{}
	var rec func(bdd.Ref)
	rec = func(f bdd.Ref) {
		if bm.IsConst(f) || seen[f] {
			return
		}
		seen[f] = true
		lo, hi := bm.Lo(f), bm.Hi(f)
		if !bm.IsConst(lo) || !bm.IsConst(hi) {
			inner++
			if comp.complements(lo, hi) {
				xor++
			}
		}
		rec(lo)
		rec(hi)
	}
	rec(f)
	if inner == 0 {
		return 0
	}
	return float64(xor) / float64(inner)
}

type compMemo struct {
	bm   *bdd.Manager
	memo map[[2]bdd.Ref]bool
}

func newCompMemo(bm *bdd.Manager) *compMemo {
	return &compMemo{bm: bm, memo: map[[2]bdd.Ref]bool{}}
}

// complements reports whether g computes ¬f, by structural recursion
// (the manager stores no complement edges, so ¬f may not exist as a
// node; the pairwise descent answers without materializing it).
func (c *compMemo) complements(f, g bdd.Ref) bool {
	if f == bdd.Zero {
		return g == bdd.One
	}
	if f == bdd.One {
		return g == bdd.Zero
	}
	if c.bm.IsConst(g) {
		return false
	}
	key := [2]bdd.Ref{f, g}
	if v, ok := c.memo[key]; ok {
		return v
	}
	// Reduced ordered BDDs: complements share the variable profile, so
	// the top variables must match level by level.
	v := c.bm.TopVar(f) == c.bm.TopVar(g) &&
		c.complements(c.bm.Lo(f), c.bm.Lo(g)) &&
		c.complements(c.bm.Hi(f), c.bm.Hi(g))
	c.memo[key] = v
	return v
}

// Ratio returns PPRMCubes/SOPPaths as a float for diagnostics; +Inf when
// the bounded PPRM build overflowed.
func (ft Features) Ratio() float64 {
	if ft.PPRMCubes < 0 {
		return math.Inf(1)
	}
	if ft.SOPPaths == 0 {
		return 0
	}
	return float64(ft.PPRMCubes) / float64(ft.SOPPaths)
}
