// Package atpg provides single stuck-at fault analysis for gate networks:
// fault enumeration with gate-local equivalence collapsing, PODEM test
// generation, and 64-way parallel fault simulation.
//
// The paper claims its synthesized networks are irredundant with a
// complete single-stuck-at test set derivable without conventional test
// generation (the OC/SA1 pattern sets); this package measures both claims:
// fault coverage of a given pattern set, and exhaustive PODEM proves
// redundant faults untestable.
package atpg

import (
	"fmt"

	"repro/internal/cube"
	"repro/internal/network"
)

// Fault is a single stuck-at fault. Pin == -1 is the gate output; Pin >= 0
// is the wire feeding fanin position Pin of the gate.
type Fault struct {
	Gate int
	Pin  int
	SA1  bool
}

// String renders the fault.
func (f Fault) String() string {
	v := 0
	if f.SA1 {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("g%d/out s-a-%d", f.Gate, v)
	}
	return fmt.Sprintf("g%d/in%d s-a-%d", f.Gate, f.Pin, v)
}

// Faults enumerates collapsed single stuck-at faults of the PO cone:
// every gate output fault plus those input faults not equivalent to an
// output fault of the same gate (AND input s-a-0 ≡ output s-a-0, OR input
// s-a-1 ≡ output s-a-1, NAND input s-a-0 ≡ output s-a-1, NOR input s-a-1
// ≡ output s-a-0, and inverter/buffer input faults collapse onto the
// output).
func Faults(net *network.Network) []Fault {
	var out []Fault
	for _, id := range net.TopoOrder() {
		g := &net.Gates[id]
		if g.Type == network.PI {
			// PI faults are represented as the output faults of the PI
			// "gate".
			out = append(out, Fault{Gate: id, Pin: -1, SA1: false}, Fault{Gate: id, Pin: -1, SA1: true})
			continue
		}
		if g.Type == network.Const0 || g.Type == network.Const1 {
			continue
		}
		out = append(out, Fault{Gate: id, Pin: -1, SA1: false}, Fault{Gate: id, Pin: -1, SA1: true})
		for pin := range g.Fanins {
			switch g.Type {
			case network.Buf, network.Not:
				// Both input faults equivalent to output faults.
			case network.And:
				out = append(out, Fault{Gate: id, Pin: pin, SA1: true}) // s-a-0 ≡ out s-a-0
			case network.Nand:
				out = append(out, Fault{Gate: id, Pin: pin, SA1: true}) // s-a-0 ≡ out s-a-1
			case network.Or:
				out = append(out, Fault{Gate: id, Pin: pin, SA1: false}) // s-a-1 ≡ out s-a-1
			case network.Nor:
				out = append(out, Fault{Gate: id, Pin: pin, SA1: false}) // s-a-1 ≡ out s-a-0
			default: // XOR/XNOR: no controlling value, keep both
				out = append(out, Fault{Gate: id, Pin: pin, SA1: false}, Fault{Gate: id, Pin: pin, SA1: true})
			}
		}
	}
	return out
}

// FaultSimulate returns, for each fault, whether the pattern set detects
// it (some PO differs between the good and faulty circuit).
func FaultSimulate(net *network.Network, faults []Fault, patterns []cube.BitSet) []bool {
	detected := make([]bool, len(faults))
	order := net.TopoOrder()
	fanouts := net.Fanouts()
	piIdx := make(map[int]int)
	for i, id := range net.PIs {
		piIdx[id] = i
	}
	poGates := make(map[int]bool)
	for _, po := range net.POs {
		poGates[po.Gate] = true
	}
	good := make([]uint64, len(net.Gates))
	faulty := make([]uint64, len(net.Gates))
	var in []uint64

	for base := 0; base < len(patterns); base += 64 {
		// Pack the batch.
		words := make([]uint64, len(net.PIs))
		count := 0
		for j := 0; j < 64 && base+j < len(patterns); j++ {
			count++
			p := patterns[base+j]
			for v := range net.PIs {
				if p.Has(v) {
					words[v] |= 1 << uint(j)
				}
			}
		}
		mask := ^uint64(0)
		if count < 64 {
			mask = 1<<uint(count) - 1
		}
		// Good simulation.
		for _, id := range order {
			g := &net.Gates[id]
			if g.Type == network.PI {
				good[id] = words[piIdx[id]]
				continue
			}
			in = in[:0]
			for _, f := range g.Fanins {
				in = append(in, good[f])
			}
			good[id] = network.EvalGateWord(g.Type, in)
		}
		// Per-fault incremental resimulation of the fault cone.
		for fi, f := range faults {
			if detected[fi] {
				continue
			}
			site := f.Gate
			inCone := map[int]bool{site: true}
			copy(faulty, good)
			var stuck uint64
			if f.SA1 {
				stuck = ^uint64(0)
			}
			if f.Pin < 0 {
				faulty[site] = stuck
			} else {
				g := &net.Gates[site]
				in = in[:0]
				for pin, fn := range g.Fanins {
					v := good[fn]
					if pin == f.Pin {
						v = stuck
					}
					in = append(in, v)
				}
				faulty[site] = network.EvalGateWord(g.Type, in)
			}
			for _, id := range order {
				if id == site {
					continue
				}
				if !touchesCone(net, id, inCone) {
					continue
				}
				inCone[id] = true
				g := &net.Gates[id]
				in = in[:0]
				for _, fn := range g.Fanins {
					in = append(in, faulty[fn])
				}
				faulty[id] = network.EvalGateWord(g.Type, in)
			}
			for po := range poGates {
				if (good[po]^faulty[po])&mask != 0 {
					detected[fi] = true
					break
				}
			}
		}
		_ = fanouts
	}
	return detected
}

func touchesCone(net *network.Network, id int, inCone map[int]bool) bool {
	for _, f := range net.Gates[id].Fanins {
		if inCone[f] {
			return true
		}
	}
	return false
}

// Coverage summarizes a fault simulation.
type Coverage struct {
	Total    int
	Detected int
}

// Percent returns the detection percentage.
func (c Coverage) Percent() float64 {
	if c.Total == 0 {
		return 100
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// MeasureCoverage fault-simulates the pattern set over the collapsed
// fault list.
func MeasureCoverage(net *network.Network, patterns []cube.BitSet) Coverage {
	faults := Faults(net)
	det := FaultSimulate(net, faults, patterns)
	c := Coverage{Total: len(faults)}
	for _, d := range det {
		if d {
			c.Detected++
		}
	}
	return c
}
