package atpg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
	"repro/internal/network"
)

// bruteDetectable checks by exhaustive simulation whether any input
// pattern detects the fault (small networks only).
func bruteDetectable(net *network.Network, f Fault) bool {
	n := net.NumPIs()
	faults := []Fault{f}
	var patterns []cube.BitSet
	for a := 0; a < 1<<uint(n); a++ {
		p := cube.NewBitSet(n)
		for v := 0; v < n; v++ {
			if a&(1<<v) != 0 {
				p.Set(v)
			}
		}
		patterns = append(patterns, p)
	}
	return FaultSimulate(net, faults, patterns)[0]
}

func TestFaultEnumeration(t *testing.T) {
	net := network.New("f")
	a := net.AddPI("a")
	b := net.AddPI("b")
	net.AddPO("o", net.AddGate(network.And, a, b))
	faults := Faults(net)
	// 2 PIs × 2 + AND out × 2 + 2 collapsed input s-a-1 = 8.
	if len(faults) != 8 {
		t.Errorf("got %d faults, want 8: %v", len(faults), faults)
	}
}

func TestFaultSimulateAndGate(t *testing.T) {
	net := network.New("f")
	a := net.AddPI("a")
	b := net.AddPI("b")
	g := net.AddGate(network.And, a, b)
	net.AddPO("o", g)
	// Pattern 11 detects out s-a-0; pattern 01 detects in0 s-a-1.
	p11 := cube.NewBitSet(2)
	p11.Set(0)
	p11.Set(1)
	p01 := cube.NewBitSet(2)
	p01.Set(1)
	faults := []Fault{
		{Gate: g, Pin: -1, SA1: false},
		{Gate: g, Pin: 0, SA1: true},
	}
	det := FaultSimulate(net, faults, []cube.BitSet{p11})
	if !det[0] || det[1] {
		t.Errorf("pattern 11: det=%v, want [true false]", det)
	}
	det = FaultSimulate(net, faults, []cube.BitSet{p01})
	if det[0] || !det[1] {
		t.Errorf("pattern 01: det=%v, want [false true]", det)
	}
}

func TestPODEMFindsTest(t *testing.T) {
	net := network.New("p")
	a := net.AddPI("a")
	b := net.AddPI("b")
	c := net.AddPI("c")
	g := net.AddGate(network.And, a, b)
	o := net.AddGate(network.Or, g, c)
	net.AddPO("o", o)
	f := Fault{Gate: g, Pin: -1, SA1: false}
	pattern, status := GenerateTest(net, f, 0)
	if status != Detected {
		t.Fatalf("status = %v, want Detected", status)
	}
	// Verify the pattern detects the fault.
	if !FaultSimulate(net, []Fault{f}, []cube.BitSet{pattern})[0] {
		t.Error("generated pattern does not detect the fault")
	}
}

func TestPODEMProvesRedundancy(t *testing.T) {
	// o = a + a·b: the fanin a·b is redundant; its s-a-0 is untestable.
	net := network.New("r")
	a := net.AddPI("a")
	b := net.AddPI("b")
	g := net.AddGate(network.And, a, b)
	o := net.AddGate(network.Or, a, g)
	net.AddPO("o", o)
	f := Fault{Gate: o, Pin: 1, SA1: false} // the g input of the OR stuck at 0
	_, status := GenerateTest(net, f, 0)
	if status != Untestable {
		t.Errorf("status = %v, want Untestable (o = a + ab ≡ a)", status)
	}
	if bruteDetectable(net, f) {
		t.Error("brute force disagrees: fault detectable?")
	}
}

// Property: PODEM verdicts agree with brute-force detectability on random
// small networks.
func TestQuickPODEMSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPI := 2 + rng.Intn(3)
		net := network.New("q")
		for i := 0; i < nPI; i++ {
			net.AddPI("")
		}
		types := []network.GateType{network.And, network.Or, network.Xor, network.Not, network.Nand, network.Nor}
		for i := 0; i < 3+rng.Intn(8); i++ {
			ty := types[rng.Intn(len(types))]
			k := 2
			if ty == network.Not {
				k = 1
			}
			fanins := make([]int, k)
			for j := range fanins {
				fanins[j] = rng.Intn(len(net.Gates))
			}
			net.AddGate(ty, fanins...)
		}
		net.AddPO("o", len(net.Gates)-1)
		faults := Faults(net)
		// Check a random subset of faults.
		for trial := 0; trial < 4 && trial < len(faults); trial++ {
			fa := faults[rng.Intn(len(faults))]
			pattern, status := GenerateTest(net, fa, 2000)
			brute := bruteDetectable(net, fa)
			switch status {
			case Detected:
				if !FaultSimulate(net, []Fault{fa}, []cube.BitSet{pattern})[0] {
					return false // pattern must actually detect
				}
				if !brute {
					return false
				}
			case Untestable:
				if brute {
					return false
				}
			case Aborted:
				// inconclusive: acceptable
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGenerateFullAdder(t *testing.T) {
	net := network.New("fa")
	a := net.AddPI("a")
	b := net.AddPI("b")
	c := net.AddPI("c")
	axb := net.AddGate(network.Xor, a, b)
	sum := net.AddGate(network.Xor, axb, c)
	carry := net.AddGate(network.Or, net.AddGate(network.And, a, b), net.AddGate(network.And, c, axb))
	net.AddPO("s", sum)
	net.AddPO("co", carry)
	res := Generate(net, 0)
	if len(res.Untestable) != 0 {
		t.Errorf("full adder should be irredundant; untestable: %v", res.Untestable)
	}
	if len(res.Aborted) != 0 {
		t.Errorf("aborted faults on a tiny circuit: %v", res.Aborted)
	}
	if res.CoveragePercent() != 100 {
		t.Errorf("coverage = %.1f%%, want 100%%", res.CoveragePercent())
	}
	// The compacted test set should be small (paper: FPRM circuits have
	// small complete test sets).
	if len(res.Tests) > 8 {
		t.Errorf("test set size %d > 8", len(res.Tests))
	}
}

func TestMeasureCoverage(t *testing.T) {
	net := network.New("m")
	a := net.AddPI("a")
	b := net.AddPI("b")
	net.AddPO("o", net.AddGate(network.Xor, a, b))
	// All four patterns: Hayes' theorem — all four needed for full
	// internal coverage of XOR.
	var all []cube.BitSet
	for i := 0; i < 4; i++ {
		p := cube.NewBitSet(2)
		if i&1 != 0 {
			p.Set(0)
		}
		if i&2 != 0 {
			p.Set(1)
		}
		all = append(all, p)
	}
	cov := MeasureCoverage(net, all)
	if cov.Percent() != 100 {
		t.Errorf("4-pattern XOR coverage = %.1f%%, want 100%%", cov.Percent())
	}
	// A 2-pattern set cannot cover all XOR faults.
	cov2 := MeasureCoverage(net, all[:2])
	if cov2.Percent() >= 100 {
		t.Error("2 patterns should not fully cover XOR")
	}
}
