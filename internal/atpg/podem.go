package atpg

import (
	"repro/internal/cube"
	"repro/internal/network"
)

// Status of a PODEM run for one fault.
type Status int

// PODEM outcomes.
const (
	Detected   Status = iota // test found
	Untestable               // search space exhausted: the fault is redundant
	Aborted                  // backtrack limit hit
)

const (
	v0 int8 = 0
	v1 int8 = 1
	vX int8 = 2
)

func inv3(v int8) int8 {
	switch v {
	case v0:
		return v1
	case v1:
		return v0
	}
	return vX
}

// eval3 computes a gate's 3-valued output.
func eval3(t network.GateType, in []int8) int8 {
	switch t {
	case network.Const0:
		return v0
	case network.Const1:
		return v1
	case network.Buf:
		return in[0]
	case network.Not:
		return inv3(in[0])
	case network.And, network.Nand:
		out := v1
		for _, v := range in {
			if v == v0 {
				out = v0
				break
			}
			if v == vX {
				out = vX
			}
		}
		if t == network.Nand {
			out = inv3(out)
		}
		return out
	case network.Or, network.Nor:
		out := v0
		for _, v := range in {
			if v == v1 {
				out = v1
				break
			}
			if v == vX {
				out = vX
			}
		}
		if t == network.Nor {
			out = inv3(out)
		}
		return out
	case network.Xor, network.Xnor:
		out := v0
		for _, v := range in {
			if v == vX {
				return vX
			}
			out ^= v
		}
		if t == network.Xnor {
			out = inv3(out)
		}
		return out
	}
	// Programmer invariant: callers only evaluate logic gates; PI values
	// come from the assignment vector, never through eval3.
	panic("atpg: eval3 on PI")
}

// podem holds one test-generation search.
type podem struct {
	net        *network.Network
	fault      Fault
	order      []int
	piIdx      map[int]int
	assign     map[int]int8 // PI gate -> value
	vg, vf     []int8
	backtracks int
	limit      int
}

// GenerateTest runs PODEM for one fault. limit bounds backtracks
// (0 = 10000).
func GenerateTest(net *network.Network, fault Fault, limit int) (cube.BitSet, Status) {
	if limit <= 0 {
		limit = 10000
	}
	p := &podem{
		net:    net,
		fault:  fault,
		order:  net.TopoOrder(),
		piIdx:  make(map[int]int),
		assign: make(map[int]int8),
		vg:     make([]int8, len(net.Gates)),
		vf:     make([]int8, len(net.Gates)),
		limit:  limit,
	}
	for i, id := range net.PIs {
		p.piIdx[id] = i
	}
	type decision struct {
		pi      int
		value   int8
		flipped bool
	}
	var stack []decision

	for {
		p.imply()
		switch p.state() {
		case sDetected:
			out := cube.NewBitSet(len(p.net.PIs))
			for pi, v := range p.assign {
				if v == v1 {
					out.Set(p.piIdx[pi])
				}
			}
			return out, Detected
		case sConflict:
			// Backtrack.
			for {
				if len(stack) == 0 {
					return nil, Untestable
				}
				top := &stack[len(stack)-1]
				if !top.flipped {
					top.flipped = true
					top.value = inv3(top.value)
					p.assign[top.pi] = top.value
					p.backtracks++
					if p.backtracks > p.limit {
						return nil, Aborted
					}
					break
				}
				delete(p.assign, top.pi)
				stack = stack[:len(stack)-1]
			}
		case sContinue:
			sig, val, ok := p.objective()
			if !ok {
				// No objective although not detected: treat as conflict.
				for {
					if len(stack) == 0 {
						return nil, Untestable
					}
					top := &stack[len(stack)-1]
					if !top.flipped {
						top.flipped = true
						top.value = inv3(top.value)
						p.assign[top.pi] = top.value
						p.backtracks++
						if p.backtracks > p.limit {
							return nil, Aborted
						}
						break
					}
					delete(p.assign, top.pi)
					stack = stack[:len(stack)-1]
				}
				continue
			}
			pi, piVal := p.backtrace(sig, val)
			p.assign[pi] = piVal
			stack = append(stack, decision{pi: pi, value: piVal})
		}
	}
}

type searchState int

const (
	sContinue searchState = iota
	sDetected
	sConflict
)

// imply simulates the good and faulty circuits in 3-valued logic under
// the current PI assignment.
func (p *podem) imply() {
	var in []int8
	for _, id := range p.order {
		g := &p.net.Gates[id]
		if g.Type == network.PI {
			v, ok := p.assign[id]
			if !ok {
				v = vX
			}
			p.vg[id] = v
			p.vf[id] = v
			if p.fault.Gate == id && p.fault.Pin < 0 {
				p.vf[id] = stuckVal(p.fault)
			}
			continue
		}
		in = in[:0]
		for _, f := range g.Fanins {
			in = append(in, p.vg[f])
		}
		p.vg[id] = eval3(g.Type, in)
		in = in[:0]
		for pin, f := range g.Fanins {
			v := p.vf[f]
			if p.fault.Gate == id && p.fault.Pin == pin {
				v = stuckVal(p.fault)
			}
			in = append(in, v)
		}
		p.vf[id] = eval3(g.Type, in)
		if p.fault.Gate == id && p.fault.Pin < 0 {
			p.vf[id] = stuckVal(p.fault)
		}
	}
}

func stuckVal(f Fault) int8 {
	if f.SA1 {
		return v1
	}
	return v0
}

// activationSignal returns the signal that must carry the opposite of the
// stuck value for the fault to be excited.
func (p *podem) activationSignal() int {
	if p.fault.Pin < 0 {
		return p.fault.Gate
	}
	return p.net.Gates[p.fault.Gate].Fanins[p.fault.Pin]
}

func (p *podem) state() searchState {
	// Detected?
	for _, po := range p.net.POs {
		if p.vg[po.Gate] != vX && p.vf[po.Gate] != vX && p.vg[po.Gate] != p.vf[po.Gate] {
			return sDetected
		}
	}
	// Activation conflict?
	act := p.activationSignal()
	want := inv3(stuckVal(p.fault))
	if p.vg[act] != vX && p.vg[act] != want {
		return sConflict
	}
	// Fault effect anywhere (or still activatable)?
	if p.vg[act] == want {
		// Activated: D-frontier must be nonempty or effect must still be
		// propagatable.
		if !p.hasFaultEffectPath() {
			return sConflict
		}
	}
	return sContinue
}

// hasFaultEffectPath reports whether some signal carries a D (good ≠
// faulty, both known) with an X-path toward a PO, or the effect is
// already at a PO (handled by state). Conservative: it checks that some
// gate output carries D or X in the faulty cone.
func (p *podem) hasFaultEffectPath() bool {
	for _, id := range p.order {
		gd := p.vg[id]
		fd := p.vf[id]
		if gd != fd || gd == vX || fd == vX {
			// Some divergence or unknown remains.
			if p.reachesPO(id) {
				return true
			}
		}
	}
	return false
}

// reachesPO reports whether id lies in the transitive fanin-free...
// fanout path to a PO (structural reachability).
func (p *podem) reachesPO(id int) bool {
	// Cached per call site cheaply: structural reachability.
	seen := make(map[int]bool)
	target := make(map[int]bool)
	for _, po := range p.net.POs {
		target[po.Gate] = true
	}
	fanouts := p.net.Fanouts()
	var rec func(int) bool
	rec = func(v int) bool {
		if target[v] {
			return true
		}
		if seen[v] {
			return false
		}
		seen[v] = true
		for _, fo := range fanouts[v] {
			if rec(fo) {
				return true
			}
		}
		return false
	}
	return rec(id)
}

// objective picks the next value to justify: first fault activation, then
// propagation through the D-frontier.
func (p *podem) objective() (signal int, value int8, ok bool) {
	act := p.activationSignal()
	want := inv3(stuckVal(p.fault))
	if p.vg[act] == vX {
		return act, want, true
	}
	// Propagate: find a gate with a D input and an X output; set an X
	// side input to the non-controlling value.
	for _, id := range p.order {
		g := &p.net.Gates[id]
		if g.Type == network.PI {
			continue
		}
		if p.vg[id] != vX && p.vf[id] != vX {
			continue
		}
		hasD := false
		for pin, f := range g.Fanins {
			gv, fv := p.vg[f], p.vf[f]
			if p.fault.Gate == id && p.fault.Pin == pin {
				fv = stuckVal(p.fault)
			}
			if gv != vX && fv != vX && gv != fv {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		for _, f := range g.Fanins {
			if p.vg[f] == vX {
				var v int8
				switch g.Type {
				case network.And, network.Nand:
					v = v1
				case network.Or, network.Nor:
					v = v0
				default:
					v = v0
				}
				return f, v, true
			}
		}
	}
	return 0, 0, false
}

// backtrace maps an objective onto an unassigned PI.
func (p *podem) backtrace(signal int, value int8) (pi int, v int8) {
	for {
		g := &p.net.Gates[signal]
		if g.Type == network.PI {
			return signal, value
		}
		switch g.Type {
		case network.Not, network.Nand, network.Nor:
			value = inv3(value)
		}
		// Choose an X-valued fanin; default to the first.
		next := g.Fanins[0]
		for _, f := range g.Fanins {
			if p.vg[f] == vX {
				next = f
				break
			}
		}
		signal = next
	}
}

// Result of a full test-generation run.
type Result struct {
	Tests      []cube.BitSet
	Detected   int
	Untestable []Fault
	Aborted    []Fault
	Total      int
}

// CoveragePercent is detected / (total − untestable): untestable faults
// are redundancies, not coverage losses.
func (r *Result) CoveragePercent() float64 {
	den := r.Total - len(r.Untestable)
	if den == 0 {
		return 100
	}
	return 100 * float64(r.Detected) / float64(den)
}

// Generate runs fault simulation + PODEM over the collapsed fault list:
// each new test vector is fault-simulated to drop everything else it
// detects.
func Generate(net *network.Network, backtrackLimit int) *Result {
	faults := Faults(net)
	res := &Result{Total: len(faults)}
	detected := make([]bool, len(faults))
	for fi, f := range faults {
		if detected[fi] {
			continue
		}
		pattern, status := GenerateTest(net, f, backtrackLimit)
		switch status {
		case Untestable:
			res.Untestable = append(res.Untestable, f)
		case Aborted:
			res.Aborted = append(res.Aborted, f)
		case Detected:
			res.Tests = append(res.Tests, pattern)
			// Drop everything this test detects.
			newly := FaultSimulate(net, faults, []cube.BitSet{pattern})
			for i, d := range newly {
				if d && !detected[i] {
					detected[i] = true
					res.Detected++
				}
			}
			if !detected[fi] {
				// The generated pattern must detect its target.
				detected[fi] = true
				res.Detected++
			}
		}
	}
	return res
}
