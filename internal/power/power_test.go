package power

import (
	"math"
	"testing"

	"repro/internal/network"
	"repro/internal/techmap"
)

func TestEstimateSingleAnd(t *testing.T) {
	net := network.New("a")
	a := net.AddPI("a")
	b := net.AddPI("b")
	g := net.AddGate(network.And, a, b)
	net.AddPO("o", g)
	rep := EstimateNetwork(net)
	// Signals: a (load 1, act 0.5), b (load 1, act 0.5),
	// g (load 1 via PO, p=1/4 → act 2·(1/4)·(3/4)=3/8).
	want := 0.5 + 0.5 + 0.375
	if math.Abs(rep.Total-want) > 1e-9 {
		t.Errorf("Total = %v, want %v", rep.Total, want)
	}
	if rep.Signals != 3 {
		t.Errorf("Signals = %d, want 3", rep.Signals)
	}
}

func TestXorActivityHigherThanAnd(t *testing.T) {
	mk := func(ty network.GateType) float64 {
		net := network.New("x")
		a := net.AddPI("a")
		b := net.AddPI("b")
		net.AddPO("o", net.AddGate(ty, a, b))
		return EstimateNetwork(net).Total
	}
	// XOR output has p=1/2 → act 1/2 > AND's 3/8; same PI terms.
	if mk(network.Xor) <= mk(network.And) {
		t.Error("XOR output should switch more than AND output")
	}
}

func TestFanoutWeighting(t *testing.T) {
	// The same signal driving two gates must count double.
	net1 := network.New("f1")
	a := net1.AddPI("a")
	b := net1.AddPI("b")
	g := net1.AddGate(network.And, a, b)
	net1.AddPO("o1", net1.AddGate(network.Not, g))
	net1.AddPO("o2", net1.AddGate(network.Not, g))
	net2 := network.New("f2")
	a2 := net2.AddPI("a")
	b2 := net2.AddPI("b")
	g2 := net2.AddGate(network.And, a2, b2)
	net2.AddPO("o1", net2.AddGate(network.Not, g2))
	r1 := EstimateNetwork(net1)
	r2 := EstimateNetwork(net2)
	if r1.Total <= r2.Total {
		t.Errorf("double fanout should cost more: %v vs %v", r1.Total, r2.Total)
	}
}

func TestEstimateMappedMatchesStructure(t *testing.T) {
	net := network.New("m")
	var ids []int
	for i := 0; i < 4; i++ {
		ids = append(ids, net.AddPI(""))
	}
	x := net.BalancedTree(network.Xor, ids)
	net.AddPO("o", x)
	res, err := techmap.Map(net, techmap.Library())
	if err != nil {
		t.Fatal(err)
	}
	rep := EstimateMapped(res)
	if rep.Total <= 0 {
		t.Fatal("no power estimated")
	}
	// 3 xor cells: internal xor outputs have p=1/2 (act=1/2);
	// 4 PIs with load 1 (act 1/2 each) + 2 internal (load 1) + root (PO).
	want := 4*0.5 + 2*0.5 + 0.5
	if math.Abs(rep.Total-want) > 1e-9 {
		t.Errorf("Total = %v, want %v", rep.Total, want)
	}
}

func TestConstantSignalNoPower(t *testing.T) {
	net := network.New("c")
	a := net.AddPI("a")
	g := net.AddGate(network.And, a, net.AddGate(network.Not, a)) // constant 0
	net.AddPO("o", g)
	rep := EstimateNetwork(net)
	// The constant-0 AND output has activity 0; what remains is
	// a (load 2: the AND and the NOT) and ā (load 1): 2·0.5 + 0.5.
	if math.Abs(rep.Total-1.5) > 1e-9 {
		t.Errorf("Total = %v, want 1.5 (constant net contributes 0)", rep.Total)
	}
}
