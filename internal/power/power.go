// Package power estimates switching power the way the SIS
// `power_estimate` command does by default: a zero-delay model under
// temporally independent, uniformly distributed primary inputs. Each
// signal's static probability p is computed exactly from its BDD; its
// switching activity is 2·p·(1−p) (the probability of a transition
// between two independent consecutive vectors), and the dissipation is
// the activity weighted by the capacitive load, taken proportional to the
// signal's fanout. The result is in normalized units (0.5·C·V² ≡ 1 per
// unit load); only ratios between two implementations are meaningful,
// which is all the paper's improve%power column uses.
package power

import (
	"repro/internal/bdd"
	"repro/internal/network"
	"repro/internal/techmap"
)

// Report carries the estimate and its breakdown.
type Report struct {
	Total      float64 // Σ activity × load over all signals
	Signals    int     // signals contributing
	MaxNodeBDD int     // BDD manager size after the run (cost indicator)
}

// EstimateNetwork estimates the switching power of a gate network. Every
// gate output (and every PI) is a signal; load = number of reading gates
// plus one per primary output driven.
func EstimateNetwork(net *network.Network) Report {
	m := bdd.New(net.NumPIs())
	funcs := gateBDDs(net, m)
	load := make([]int, len(net.Gates))
	for _, id := range net.TopoOrder() {
		for _, f := range net.Gates[id].Fanins {
			load[f]++
		}
	}
	for _, po := range net.POs {
		load[po.Gate]++
	}
	var rep Report
	for _, id := range net.TopoOrder() {
		if load[id] == 0 {
			continue
		}
		g := &net.Gates[id]
		if g.Type == network.Buf {
			continue // transparent
		}
		p := m.Density(funcs[id])
		act := 2 * p * (1 - p)
		rep.Total += act * float64(load[id])
		rep.Signals++
	}
	rep.MaxNodeBDD = m.Size()
	return rep
}

// EstimateMapped estimates the switching power of a mapped netlist: the
// signals are the cell outputs and primary inputs of the subject graph;
// load = number of reading cells plus driven POs.
func EstimateMapped(res *techmap.Result) Report {
	subj := res.Subject
	m := bdd.New(len(subj.PIs))
	funcs := subjectBDDs(subj, m)
	load := make(map[int]int)
	for _, c := range res.Cells {
		for _, in := range c.Inputs {
			load[in]++
		}
	}
	for _, po := range subj.POs {
		if po.Node >= 0 {
			load[po.Node]++
		}
	}
	var rep Report
	for node, l := range load {
		if l == 0 {
			continue
		}
		p := m.Density(funcs[node])
		act := 2 * p * (1 - p)
		rep.Total += act * float64(l)
		rep.Signals++
	}
	rep.MaxNodeBDD = m.Size()
	return rep
}

func gateBDDs(net *network.Network, m *bdd.Manager) []bdd.Ref {
	val := make([]bdd.Ref, len(net.Gates))
	piIdx := make(map[int]int)
	for i, id := range net.PIs {
		piIdx[id] = i
	}
	for _, id := range net.TopoOrder() {
		g := &net.Gates[id]
		switch g.Type {
		case network.PI:
			val[id] = m.Var(piIdx[id])
		case network.Const0:
			val[id] = bdd.Zero
		case network.Const1:
			val[id] = bdd.One
		case network.Buf:
			val[id] = val[g.Fanins[0]]
		case network.Not:
			val[id] = m.Not(val[g.Fanins[0]])
		default:
			v := val[g.Fanins[0]]
			for _, f := range g.Fanins[1:] {
				switch g.Type {
				case network.And, network.Nand:
					v = m.And(v, val[f])
				case network.Or, network.Nor:
					v = m.Or(v, val[f])
				case network.Xor, network.Xnor:
					v = m.Xor(v, val[f])
				}
			}
			switch g.Type {
			case network.Nand, network.Nor, network.Xnor:
				v = m.Not(v)
			}
			val[id] = v
		}
	}
	return val
}

func subjectBDDs(subj *techmap.Subject, m *bdd.Manager) []bdd.Ref {
	val := make([]bdd.Ref, len(subj.Nodes))
	piIdx := 0
	for i, nd := range subj.Nodes {
		switch {
		case nd.IsPI:
			val[i] = m.Var(piIdx)
			piIdx++
		case nd.Inv:
			val[i] = m.Not(val[nd.A])
		default:
			val[i] = m.Not(m.And(val[nd.A], val[nd.B]))
		}
	}
	return val
}
