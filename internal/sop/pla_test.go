package sop

import (
	"bytes"
	"strings"
	"testing"
)

const samplePLA = `
# 2-bit half adder
.i 4
.o 3
.ilb a0 a1 b0 b1
.ob s0 s1 c
1-0- 100
0-1- 100
-1-0 010
-0-1 010
-1-1 001
.e
`

func TestParsePLA(t *testing.T) {
	p, err := ParsePLA(strings.NewReader(samplePLA))
	if err != nil {
		t.Fatal(err)
	}
	if p.Inputs != 4 || p.Outputs != 3 {
		t.Fatalf("I/O = %d/%d", p.Inputs, p.Outputs)
	}
	if len(p.InNames) != 4 || p.InNames[0] != "a0" {
		t.Errorf("input names = %v", p.InNames)
	}
	if len(p.Covers[0].Terms) != 2 || len(p.Covers[1].Terms) != 2 || len(p.Covers[2].Terms) != 1 {
		t.Errorf("cover term counts: %d/%d/%d",
			len(p.Covers[0].Terms), len(p.Covers[1].Terms), len(p.Covers[2].Terms))
	}
}

func TestPLARoundTrip(t *testing.T) {
	p, err := ParsePLA(strings.NewReader(samplePLA))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WritePLA(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ParsePLA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for o := range p.Covers {
		if !p.Covers[o].Equal(q.Covers[o]) {
			t.Errorf("output %d differs after round trip", o)
		}
	}
}

func TestParsePLAErrors(t *testing.T) {
	cases := []string{
		"11 1",                   // cube before header
		".i 2\n.o 1\n1 1",        // wrong input width
		".i 2\n.o 1\n11 11",      // wrong output width
		".i 2\n.o 1\n1x 1",       // bad literal
		".i 2\n.o 1\n.unknown x", // unknown directive
	}
	for i, src := range cases {
		if _, err := ParsePLA(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParsePLAEmptyCover(t *testing.T) {
	p, err := ParsePLA(strings.NewReader(".i 2\n.o 1\n.e\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Covers) != 1 || !p.Covers[0].IsEmpty() {
		t.Error("empty PLA should yield a constant-0 cover")
	}
}
