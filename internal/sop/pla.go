package sop

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PLA is a multi-output two-level description in Berkeley/espresso PLA
// format (type fd: a '1' output marks the ON-set; '0' and '~' positions
// are unspecified and read as OFF here).
type PLA struct {
	Name    string
	Inputs  int
	Outputs int
	InNames []string
	OutName []string
	// Covers holds one ON-set cover per output.
	Covers []*Cover
}

// ParsePLA reads an espresso-format PLA file.
func ParsePLA(r io.Reader) (*PLA, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	p := &PLA{Inputs: -1, Outputs: -1}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".i":
			n, err := plaCount(fields)
			if err != nil {
				return nil, fmt.Errorf("pla line %d: bad .i: %v", lineNo, err)
			}
			if p.Covers != nil {
				return nil, fmt.Errorf("pla line %d: .i after cube rows", lineNo)
			}
			p.Inputs = n
		case ".o":
			n, err := plaCount(fields)
			if err != nil {
				return nil, fmt.Errorf("pla line %d: bad .o: %v", lineNo, err)
			}
			if p.Covers != nil {
				return nil, fmt.Errorf("pla line %d: .o after cube rows", lineNo)
			}
			p.Outputs = n
		case ".ilb":
			p.InNames = fields[1:]
		case ".ob":
			p.OutName = fields[1:]
		case ".p", ".type":
			// informational
		case ".e", ".end":
			// done
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("pla line %d: unsupported directive %s", lineNo, fields[0])
			}
			if p.Inputs < 0 || p.Outputs < 0 {
				return nil, fmt.Errorf("pla line %d: cube before .i/.o", lineNo)
			}
			if p.Covers == nil {
				p.Covers = make([]*Cover, p.Outputs)
				for o := range p.Covers {
					p.Covers[o] = NewCover(p.Inputs)
				}
			}
			if len(fields) != 2 || len(fields[0]) != p.Inputs || len(fields[1]) != p.Outputs {
				return nil, fmt.Errorf("pla line %d: malformed cube row", lineNo)
			}
			t := NewTerm(p.Inputs)
			for v, ch := range fields[0] {
				switch ch {
				case '1':
					t.SetPos(v)
				case '0':
					t.SetNeg(v)
				case '-', '2':
				default:
					return nil, fmt.Errorf("pla line %d: bad input literal %c", lineNo, ch)
				}
			}
			for o, ch := range fields[1] {
				switch ch {
				case '1', '4':
					p.Covers[o].Add(t.Clone())
				case '0', '~', '-', '2', '3':
				default:
					return nil, fmt.Errorf("pla line %d: bad output literal %c", lineNo, ch)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.Inputs < 0 || p.Outputs < 0 {
		return nil, fmt.Errorf("pla: missing .i/.o header")
	}
	if p.Covers == nil {
		p.Covers = make([]*Cover, p.Outputs)
		for o := range p.Covers {
			p.Covers[o] = NewCover(p.Inputs)
		}
	}
	if p.InNames == nil {
		for i := 0; i < p.Inputs; i++ {
			p.InNames = append(p.InNames, fmt.Sprintf("x%d", i))
		}
	}
	if p.OutName == nil {
		for o := 0; o < p.Outputs; o++ {
			p.OutName = append(p.OutName, fmt.Sprintf("y%d", o))
		}
	}
	return p, nil
}

// maxPLAWidth bounds declared input/output counts: anything larger is a
// corrupt (or hostile) file, and pre-allocating covers for it would
// exhaust memory before a single cube row is read.
const maxPLAWidth = 1 << 16

// plaCount parses the argument of an .i/.o directive with sanity bounds.
func plaCount(fields []string) (int, error) {
	if len(fields) < 2 {
		return 0, fmt.Errorf("missing count")
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, err
	}
	if n < 0 || n > maxPLAWidth {
		return 0, fmt.Errorf("count %d out of range [0,%d]", n, maxPLAWidth)
	}
	return n, nil
}

// WritePLA renders the PLA in espresso format. Identical input rows that
// drive several outputs are merged.
func (p *PLA) WritePLA(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".i %d\n.o %d\n", p.Inputs, p.Outputs)
	if p.InNames != nil {
		fmt.Fprintf(bw, ".ilb %s\n", strings.Join(p.InNames, " "))
	}
	if p.OutName != nil {
		fmt.Fprintf(bw, ".ob %s\n", strings.Join(p.OutName, " "))
	}
	// Merge rows by input-term key.
	type row struct {
		in  string
		out []byte
	}
	var rows []row
	index := make(map[string]int)
	for o, c := range p.Covers {
		for _, t := range c.Terms {
			in := t.PLAString(p.Inputs)
			i, ok := index[in]
			if !ok {
				i = len(rows)
				index[in] = i
				out := make([]byte, p.Outputs)
				for j := range out {
					out[j] = '0'
				}
				rows = append(rows, row{in: in, out: out})
			}
			rows[i].out[o] = '1'
		}
	}
	fmt.Fprintf(bw, ".p %d\n", len(rows))
	for _, r := range rows {
		fmt.Fprintf(bw, "%s %s\n", r.in, r.out)
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}
