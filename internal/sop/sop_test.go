package sop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
)

// evalAll returns the truth table of a cover as a bitmask over minterms.
func evalAll(c *Cover) uint64 {
	if c.NumVars > 6 {
		panic("evalAll limited to 6 vars")
	}
	var tt uint64
	for m := 0; m < 1<<c.NumVars; m++ {
		assign := cube.NewBitSet(c.NumVars)
		for v := 0; v < c.NumVars; v++ {
			if m&(1<<v) != 0 {
				assign.Set(v)
			}
		}
		if c.Eval(assign) {
			tt |= 1 << uint(m)
		}
	}
	return tt
}

func randomCover(rng *rand.Rand, n, terms int) *Cover {
	c := NewCover(n)
	for i := 0; i < terms; i++ {
		t := NewTerm(n)
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				t.SetPos(v)
			case 1:
				t.SetNeg(v)
			}
		}
		c.Add(t)
	}
	return c
}

func TestTermBasics(t *testing.T) {
	tm := NewTerm(4)
	tm.SetPos(0)
	tm.SetNeg(2)
	if tm.Literals() != 2 {
		t.Errorf("Literals = %d, want 2", tm.Literals())
	}
	if tm.PLAString(4) != "1-0-" {
		t.Errorf("PLAString = %q, want 1-0-", tm.PLAString(4))
	}
	if tm.IsUniversal() || tm.Contradicts() {
		t.Error("term misclassified")
	}
	tm.SetNeg(0)
	if tm.Pos.Has(0) {
		t.Error("SetNeg did not clear positive literal")
	}
}

func TestTermIntersect(t *testing.T) {
	a := NewTerm(3)
	a.SetPos(0)
	b := NewTerm(3)
	b.SetNeg(0)
	if a.IntersectsTerm(b) {
		t.Error("x0 and ~x0 should not intersect")
	}
	c := NewTerm(3)
	c.SetPos(1)
	p, ok := a.Intersect(c)
	if !ok || !p.Pos.Has(0) || !p.Pos.Has(1) {
		t.Error("intersection of compatible terms wrong")
	}
}

func TestTautologyBasics(t *testing.T) {
	// x0 + ~x0 is a tautology.
	c := NewCover(2)
	t1 := NewTerm(2)
	t1.SetPos(0)
	t2 := NewTerm(2)
	t2.SetNeg(0)
	c.Add(t1)
	c.Add(t2)
	if !c.IsTautology() {
		t.Error("x0 + ~x0 not recognized as tautology")
	}
	// x0 + x1 is not.
	d := NewCover(2)
	u1 := NewTerm(2)
	u1.SetPos(0)
	u2 := NewTerm(2)
	u2.SetPos(1)
	d.Add(u1)
	d.Add(u2)
	if d.IsTautology() {
		t.Error("x0 + x1 wrongly a tautology")
	}
	if NewCover(2).IsTautology() {
		t.Error("empty cover wrongly a tautology")
	}
	if !Universe(2).IsTautology() {
		t.Error("universe not a tautology")
	}
}

func TestComplementSingleTerm(t *testing.T) {
	c := NewCover(3)
	tm := NewTerm(3)
	tm.SetPos(0)
	tm.SetNeg(1)
	c.Add(tm)
	comp := c.Complement()
	if evalAll(c)^evalAll(comp) != (1<<8)-1 {
		t.Errorf("complement wrong: f=%08b ~f=%08b", evalAll(c), evalAll(comp))
	}
}

func TestComplementQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := randomCover(rng, n, 1+rng.Intn(6))
		comp := c.Complement()
		mask := uint64(1)<<(1<<n) - 1
		return evalAll(c)^evalAll(comp) == mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinimizePreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := randomCover(rng, n, 2+rng.Intn(8))
		before := evalAll(c)
		litsBefore := c.Literals()
		c.Minimize()
		after := evalAll(c)
		return before == after && c.Literals() <= litsBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinimizeShrinksRedundantCover(t *testing.T) {
	// x0x1 + x0~x1 should minimize to x0.
	c := NewCover(2)
	t1 := NewTerm(2)
	t1.SetPos(0)
	t1.SetPos(1)
	t2 := NewTerm(2)
	t2.SetPos(0)
	t2.SetNeg(1)
	c.Add(t1)
	c.Add(t2)
	c.Minimize()
	if len(c.Terms) != 1 || c.Terms[0].Literals() != 1 || !c.Terms[0].Pos.Has(0) {
		t.Errorf("minimize(x0x1+x0~x1) = %s, want x0", c)
	}
}

func TestIrredundant(t *testing.T) {
	// x0 + x1 + x0x1: the last term is redundant.
	c := NewCover(2)
	t1 := NewTerm(2)
	t1.SetPos(0)
	t2 := NewTerm(2)
	t2.SetPos(1)
	t3 := NewTerm(2)
	t3.SetPos(0)
	t3.SetPos(1)
	c.Add(t1)
	c.Add(t2)
	c.Add(t3)
	c.Irredundant()
	if len(c.Terms) != 2 {
		t.Errorf("irredundant left %d terms, want 2", len(c.Terms))
	}
}

func TestCoversTerm(t *testing.T) {
	// Cover x0 + x1 covers term x0x1 but not term ~x0.
	c := NewCover(2)
	t1 := NewTerm(2)
	t1.SetPos(0)
	t2 := NewTerm(2)
	t2.SetPos(1)
	c.Add(t1)
	c.Add(t2)
	both := NewTerm(2)
	both.SetPos(0)
	both.SetPos(1)
	if !c.CoversTerm(both) {
		t.Error("x0+x1 should cover x0x1")
	}
	neg := NewTerm(2)
	neg.SetNeg(0)
	if c.CoversTerm(neg) {
		t.Error("x0+x1 should not cover ~x0")
	}
}

func TestFromMinterms(t *testing.T) {
	// Majority of 3 variables: minterms 3,5,6,7.
	c := FromMinterms(3, []int{3, 5, 6, 7})
	want := uint64(0)
	for _, m := range []int{3, 5, 6, 7} {
		want |= 1 << uint(m)
	}
	if evalAll(c) != want {
		t.Errorf("FromMinterms truth table = %08b, want %08b", evalAll(c), want)
	}
	// Espresso should find the 3-cube prime cover (6 literals).
	if len(c.Terms) != 3 || c.Literals() != 6 {
		t.Errorf("majority cover: %d terms / %d literals, want 3/6 (%s)", len(c.Terms), c.Literals(), c)
	}
}

func TestFromFuncParity(t *testing.T) {
	c, err := FromFunc(4, func(m int) bool {
		cnt := 0
		for v := 0; v < 4; v++ {
			if m&(1<<v) != 0 {
				cnt++
			}
		}
		return cnt%2 == 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromFunc(25, func(int) bool { return false }); err == nil {
		t.Error("FromFunc must refuse 25 variables")
	}
	// Parity needs all 8 minterms; check the function at least.
	for m := 0; m < 16; m++ {
		assign := cube.NewBitSet(4)
		cnt := 0
		for v := 0; v < 4; v++ {
			if m&(1<<v) != 0 {
				assign.Set(v)
				cnt++
			}
		}
		if c.Eval(assign) != (cnt%2 == 1) {
			t.Fatalf("parity cover wrong at minterm %d", m)
		}
	}
	if len(c.Terms) != 8 {
		t.Errorf("4-var parity cover has %d terms, want 8 (all primes are minterms)", len(c.Terms))
	}
}

func TestEqual(t *testing.T) {
	a := FromMinterms(3, []int{1, 3, 5, 7}) // = x0
	b := NewCover(3)
	tm := NewTerm(3)
	tm.SetPos(0)
	b.Add(tm)
	if !a.Equal(b) {
		t.Error("equivalent covers compare unequal")
	}
	c := NewCover(3)
	tm2 := NewTerm(3)
	tm2.SetPos(1)
	c.Add(tm2)
	if a.Equal(c) {
		t.Error("different covers compare equal")
	}
}

func TestCofactor(t *testing.T) {
	// f = x0x1 + ~x0x2; f|x0=1 = x1, f|x0=0 = x2.
	c := NewCover(3)
	t1 := NewTerm(3)
	t1.SetPos(0)
	t1.SetPos(1)
	t2 := NewTerm(3)
	t2.SetNeg(0)
	t2.SetPos(2)
	c.Add(t1)
	c.Add(t2)
	p := c.Cofactor(0, true)
	if len(p.Terms) != 1 || !p.Terms[0].Pos.Has(1) || p.Terms[0].Pos.Has(0) {
		t.Errorf("cofactor x0=1 wrong: %s", p)
	}
	n := c.Cofactor(0, false)
	if len(n.Terms) != 1 || !n.Terms[0].Pos.Has(2) {
		t.Errorf("cofactor x0=0 wrong: %s", n)
	}
}
