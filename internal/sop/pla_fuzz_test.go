package sop

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// keySet canonicalizes a cover as its sorted, deduplicated term keys.
func keySet(c *Cover) string {
	keys := make([]string, 0, len(c.Terms))
	for _, t := range c.Terms {
		keys = append(keys, t.Key())
	}
	sort.Strings(keys)
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			out = append(out, k)
		}
	}
	return strings.Join(out, "\n")
}

// FuzzParsePLA checks that arbitrary input never panics or hangs the PLA
// parser, and that anything it accepts survives a write/re-parse round
// trip with the same cover semantics.
func FuzzParsePLA(f *testing.F) {
	seeds := []string{
		"",
		".i 2\n.o 1\n11 1\n.e\n",
		".i 3\n.o 2\n.ilb a b c\n.ob f g\n1-0 10\n-11 01\n.e\n",
		".i 0\n.o 1\n.e\n",
		"# comment only\n.i 1\n.o 1\n0 1\n",
		".i 2\n.o 1\n.p 2\n.type fd\n1- 1\n-1 1\n.end\n",
		".i 1\n.o 1\n2 4\n",
		".i -3\n.o 1\n",
		".i 99999999999999999999\n.o 1\n",
		".i\n.o 1\n",
		"11 1\n.i 2\n.o 1\n",
		".i 2\n.o 1\n111 1\n",
		".i 2\n.o 1\n11 x\n",
		".foo bar\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePLA(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(p.Covers) != p.Outputs {
			t.Fatalf("parsed PLA has %d covers for %d outputs", len(p.Covers), p.Outputs)
		}
		// Round trip: write and re-parse; the covers must be unchanged.
		var buf strings.Builder
		if err := p.WritePLA(&buf); err != nil {
			t.Fatalf("WritePLA failed on accepted input: %v", err)
		}
		q, err := ParsePLA(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-parse of written PLA failed: %v\n%s", err, buf.String())
		}
		if q.Inputs != p.Inputs || q.Outputs != p.Outputs {
			t.Fatalf("round trip changed dimensions: %dx%d -> %dx%d",
				p.Inputs, p.Outputs, q.Inputs, q.Outputs)
		}
		// WritePLA merges duplicate rows but never rewrites terms, so the
		// deduplicated term set of every cover must survive exactly.
		// (Semantic Cover.Equal would also hold but its tautology check is
		// exponential worst-case — unsuitable under fuzzing.)
		for o := range p.Covers {
			if keySet(p.Covers[o]) != keySet(q.Covers[o]) {
				t.Fatalf("round trip changed cover %d", o)
			}
		}
	})
}
