// Package sop implements two-level Sum-of-Products covers with both literal
// polarities, the unate recursive paradigm (tautology, complement), an
// espresso-style minimizer (expand / irredundant), and PLA text I/O.
//
// It is the substrate the SIS-like baseline flow (package sisbase) operates
// on, and the input representation for benchmark functions specified in
// two-level form.
package sop

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cube"
)

// Term is one product term of a cover. A variable may appear positive,
// negative, or not at all (don't-care in that position).
type Term struct {
	Pos cube.BitSet // variables appearing as positive literals
	Neg cube.BitSet // variables appearing as negative literals
}

// NewTerm returns the universal term (no literals) over n variables.
func NewTerm(n int) Term {
	return Term{Pos: cube.NewBitSet(n), Neg: cube.NewBitSet(n)}
}

// Clone returns an independent copy of t.
func (t Term) Clone() Term {
	return Term{Pos: t.Pos.Clone(), Neg: t.Neg.Clone()}
}

// SetPos adds the positive literal of v (clearing any negative literal).
func (t Term) SetPos(v int) { t.Pos.Set(v); t.Neg.Clear(v) }

// SetNeg adds the negative literal of v (clearing any positive literal).
func (t Term) SetNeg(v int) { t.Neg.Set(v); t.Pos.Clear(v) }

// Free removes both literals of v from the term.
func (t Term) Free(v int) { t.Pos.Clear(v); t.Neg.Clear(v) }

// Literals returns the number of literals in the term.
func (t Term) Literals() int { return t.Pos.Count() + t.Neg.Count() }

// IsUniversal reports whether the term has no literals (constant 1).
func (t Term) IsUniversal() bool { return t.Pos.IsEmpty() && t.Neg.IsEmpty() }

// Contradicts reports whether the term contains both polarities of some
// variable and is therefore the constant-0 product.
func (t Term) Contradicts() bool { return t.Pos.Intersects(t.Neg) }

// Contains reports whether t covers u (every minterm of u is a minterm of
// t); as literal sets, t's literals are a subset of u's.
func (t Term) Contains(u Term) bool {
	return t.Pos.SubsetOf(u.Pos) && t.Neg.SubsetOf(u.Neg)
}

// IntersectsTerm reports whether t and u share at least one minterm, i.e.
// no variable appears with opposite polarities in the two terms.
func (t Term) IntersectsTerm(u Term) bool {
	return !t.Pos.Intersects(u.Neg) && !t.Neg.Intersects(u.Pos)
}

// Intersect returns the product t·u, and ok=false if it is empty.
func (t Term) Intersect(u Term) (Term, bool) {
	if !t.IntersectsTerm(u) {
		return Term{}, false
	}
	r := t.Clone()
	r.Pos.UnionWith(u.Pos)
	r.Neg.UnionWith(u.Neg)
	return r, true
}

// Eval evaluates the term on an assignment bitset (variable v true iff set).
func (t Term) Eval(assign cube.BitSet) bool {
	if !t.Pos.SubsetOf(assign) {
		return false
	}
	n := len(t.Neg)
	for i := 0; i < n; i++ {
		var a uint64
		if i < len(assign) {
			a = assign[i]
		}
		if t.Neg[i]&a != 0 {
			return false
		}
	}
	return true
}

// Key returns a map key uniquely identifying the term.
func (t Term) Key() string { return t.Pos.Key() + "|" + t.Neg.Key() }

// String renders the term in PLA-row style over n variables.
func (t Term) PLAString(n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		switch {
		case t.Pos.Has(i):
			b[i] = '1'
		case t.Neg.Has(i):
			b[i] = '0'
		default:
			b[i] = '-'
		}
	}
	return string(b)
}

// Cover is a set of product terms interpreted as their OR.
// The empty cover is constant 0.
type Cover struct {
	NumVars int
	Terms   []Term
}

// NewCover returns the constant-0 cover over n variables.
func NewCover(n int) *Cover { return &Cover{NumVars: n} }

// Universe returns the constant-1 cover (one universal term).
func Universe(n int) *Cover {
	c := NewCover(n)
	c.Terms = append(c.Terms, NewTerm(n))
	return c
}

// Clone returns a deep copy.
func (c *Cover) Clone() *Cover {
	out := &Cover{NumVars: c.NumVars, Terms: make([]Term, len(c.Terms))}
	for i, t := range c.Terms {
		out.Terms[i] = t.Clone()
	}
	return out
}

// Add appends a term.
func (c *Cover) Add(t Term) { c.Terms = append(c.Terms, t) }

// IsEmpty reports whether the cover has no terms (constant 0).
func (c *Cover) IsEmpty() bool { return len(c.Terms) == 0 }

// Literals returns the total literal count of the cover.
func (c *Cover) Literals() int {
	n := 0
	for _, t := range c.Terms {
		n += t.Literals()
	}
	return n
}

// Eval evaluates the cover on an assignment.
func (c *Cover) Eval(assign cube.BitSet) bool {
	for _, t := range c.Terms {
		if t.Eval(assign) {
			return true
		}
	}
	return false
}

// Support returns the set of variables appearing in any term.
func (c *Cover) Support() cube.BitSet {
	s := cube.NewBitSet(c.NumVars)
	for _, t := range c.Terms {
		s.UnionWith(t.Pos)
		s.UnionWith(t.Neg)
	}
	return s
}

// Cofactor returns the Shannon cofactor of the cover with respect to
// literal (v, phase): terms conflicting with the literal are dropped,
// matching literals are erased.
func (c *Cover) Cofactor(v int, phase bool) *Cover {
	out := NewCover(c.NumVars)
	for _, t := range c.Terms {
		if phase {
			if t.Neg.Has(v) {
				continue
			}
		} else {
			if t.Pos.Has(v) {
				continue
			}
		}
		nt := t.Clone()
		nt.Free(v)
		out.Terms = append(out.Terms, nt)
	}
	return out
}

// CofactorTerm returns the cover cofactored against an entire term
// (the generalized cofactor used for containment checks).
func (c *Cover) CofactorTerm(u Term) *Cover {
	out := NewCover(c.NumVars)
	for _, t := range c.Terms {
		if !t.IntersectsTerm(u) {
			continue
		}
		nt := t.Clone()
		nt.Pos.DifferenceWith(u.Pos)
		nt.Neg.DifferenceWith(u.Neg)
		out.Terms = append(out.Terms, nt)
	}
	return out
}

// mostBinateVar returns the variable appearing in the most terms, breaking
// ties toward the most balanced pos/neg split; -1 if no literals remain.
func (c *Cover) mostBinateVar() int {
	pos := make([]int, c.NumVars)
	neg := make([]int, c.NumVars)
	for _, t := range c.Terms {
		t.Pos.ForEach(func(v int) { pos[v]++ })
		t.Neg.ForEach(func(v int) { neg[v]++ })
	}
	best, bestScore := -1, -1
	for v := 0; v < c.NumVars; v++ {
		tot := pos[v] + neg[v]
		if tot == 0 {
			continue
		}
		// Prefer binate (both polarities) variables, then high occurrence.
		score := tot
		if pos[v] > 0 && neg[v] > 0 {
			score += 1 << 20
		}
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}

// IsTautology reports whether the cover is the constant-1 function,
// using the unate recursive paradigm.
func (c *Cover) IsTautology() bool {
	// Quick exits.
	for _, t := range c.Terms {
		if t.IsUniversal() {
			return true
		}
	}
	if len(c.Terms) == 0 {
		return false
	}
	v := c.mostBinateVar()
	if v < 0 {
		// All terms have literals but no variable appears: impossible,
		// guarded above; treat as non-tautology.
		return false
	}
	// Unate reduction: if v appears in only one polarity, terms with the
	// literal can never help cover the opposite half alone; still must
	// split. (Simple split is sound and fast enough at our sizes.)
	return c.Cofactor(v, true).IsTautology() && c.Cofactor(v, false).IsTautology()
}

// CoversTerm reports whether the cover contains every minterm of the term.
func (c *Cover) CoversTerm(u Term) bool {
	return c.CofactorTerm(u).IsTautology()
}

// Complement returns a cover of the complement function, via the unate
// recursive paradigm with Shannon merging.
func (c *Cover) Complement() *Cover {
	out, _ := c.complementBounded(1 << 62)
	return out
}

// ComplementBounded is Complement with a term budget: it returns
// ok=false (and a nil cover) as soon as the result would exceed
// maxTerms, which callers use to skip minimization of functions whose
// OFF-sets explode (e.g. wide disjoint disjunctions).
func (c *Cover) ComplementBounded(maxTerms int) (*Cover, bool) {
	return c.complementBounded(maxTerms)
}

func (c *Cover) complementBounded(maxTerms int) (*Cover, bool) {
	for _, t := range c.Terms {
		if t.IsUniversal() {
			return NewCover(c.NumVars), true // complement of 1 is 0
		}
	}
	if len(c.Terms) == 0 {
		return Universe(c.NumVars), true
	}
	if len(c.Terms) == 1 {
		// De Morgan on a single term: OR of complemented literals.
		out := NewCover(c.NumVars)
		t := c.Terms[0]
		t.Pos.ForEach(func(v int) {
			nt := NewTerm(c.NumVars)
			nt.SetNeg(v)
			out.Terms = append(out.Terms, nt)
		})
		t.Neg.ForEach(func(v int) {
			nt := NewTerm(c.NumVars)
			nt.SetPos(v)
			out.Terms = append(out.Terms, nt)
		})
		return out, true
	}
	v := c.mostBinateVar()
	cpos, ok := c.Cofactor(v, true).complementBounded(maxTerms)
	if !ok {
		return nil, false
	}
	cneg, ok := c.Cofactor(v, false).complementBounded(maxTerms)
	if !ok {
		return nil, false
	}
	if len(cpos.Terms)+len(cneg.Terms) > maxTerms {
		return nil, false
	}
	out := NewCover(c.NumVars)
	for _, t := range cpos.Terms {
		nt := t.Clone()
		if !nt.Neg.Has(v) {
			nt.SetPos(v)
			out.Terms = append(out.Terms, nt)
		}
	}
	for _, t := range cneg.Terms {
		nt := t.Clone()
		if !nt.Pos.Has(v) {
			nt.SetNeg(v)
			out.Terms = append(out.Terms, nt)
		}
	}
	out.SingleTermContainment()
	return out, true
}

// SingleTermContainment removes contradictory terms (constant-0 products)
// and terms contained in another single term.
func (c *Cover) SingleTermContainment() {
	sort.Slice(c.Terms, func(i, j int) bool {
		return c.Terms[i].Literals() < c.Terms[j].Literals()
	})
	var kept []Term
	for _, t := range c.Terms {
		if t.Contradicts() {
			continue
		}
		contained := false
		for _, k := range kept {
			if k.Contains(t) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, t)
		}
	}
	c.Terms = kept
}

// Intersect returns the product cover c·d.
func (c *Cover) Intersect(d *Cover) *Cover {
	out := NewCover(c.NumVars)
	for _, t := range c.Terms {
		for _, u := range d.Terms {
			if p, ok := t.Intersect(u); ok {
				out.Terms = append(out.Terms, p)
			}
		}
	}
	out.SingleTermContainment()
	return out
}

// IntersectsCover reports whether c and d share at least one minterm.
func (c *Cover) IntersectsCover(d *Cover) bool {
	for _, t := range c.Terms {
		for _, u := range d.Terms {
			if t.IntersectsTerm(u) {
				return true
			}
		}
	}
	return false
}

// TermIntersectsCover reports whether term t shares a minterm with cover d.
func TermIntersectsCover(t Term, d *Cover) bool {
	for _, u := range d.Terms {
		if t.IntersectsTerm(u) {
			return true
		}
	}
	return false
}

// Minimize runs an espresso-style expand / irredundant loop against the
// function's own OFF-set (computed once by complementation). The cover is
// modified in place and remains functionally identical.
func (c *Cover) Minimize() {
	c.SingleTermContainment() // also drops contradictory (constant-0) terms
	if len(c.Terms) == 0 {
		return
	}
	// Bound the OFF-set: functions like wide disjoint disjunctions have
	// exponential complements; for those, containment + irredundancy is
	// all espresso's expand can safely do.
	limit := 50 * (len(c.Terms) + 20)
	off, ok := c.ComplementBounded(limit)
	if !ok {
		c.Irredundant()
		return
	}
	c.ExpandAgainst(off)
	c.Irredundant()
	// Second pass often helps after the cover shrank.
	c.ExpandAgainst(off)
	c.Irredundant()
}

// ExpandAgainst raises each term (removes literals) as long as the
// expanded term stays disjoint from the given OFF-set cover. Terms are
// processed largest-first so expanded terms can swallow smaller ones.
func (c *Cover) ExpandAgainst(off *Cover) {
	sort.Slice(c.Terms, func(i, j int) bool {
		return c.Terms[i].Literals() > c.Terms[j].Literals()
	})
	for i := range c.Terms {
		t := &c.Terms[i]
		// Try removing each literal, most-shared first would be better;
		// simple increasing order is adequate at benchmark sizes.
		lits := append(t.Pos.Elements(), t.Neg.Elements()...)
		for _, v := range lits {
			wasPos := t.Pos.Has(v)
			wasNeg := t.Neg.Has(v)
			t.Free(v)
			if TermIntersectsCover(*t, off) {
				// Restore via the raw bitsets: SetPos/SetNeg clear the
				// opposite phase, which would corrupt a (degenerate)
				// contradictory term.
				if wasPos {
					t.Pos.Set(v)
				}
				if wasNeg {
					t.Neg.Set(v)
				}
			}
		}
	}
	c.SingleTermContainment()
}

// Irredundant removes terms that are covered by the union of the others.
func (c *Cover) Irredundant() {
	// Largest terms are most likely essential; test smallest first.
	sort.Slice(c.Terms, func(i, j int) bool {
		return c.Terms[i].Literals() > c.Terms[j].Literals()
	})
	for i := len(c.Terms) - 1; i >= 0; i-- {
		rest := &Cover{NumVars: c.NumVars}
		rest.Terms = append(rest.Terms, c.Terms[:i]...)
		rest.Terms = append(rest.Terms, c.Terms[i+1:]...)
		if rest.CoversTerm(c.Terms[i]) {
			c.Terms = append(c.Terms[:i], c.Terms[i+1:]...)
		}
	}
}

// Equal reports whether the two covers denote the same function, decided
// by mutual containment (tautology checks).
func (c *Cover) Equal(d *Cover) bool {
	for _, t := range c.Terms {
		if !d.CoversTerm(t) {
			return false
		}
	}
	for _, t := range d.Terms {
		if !c.CoversTerm(t) {
			return false
		}
	}
	return true
}

// String renders the cover PLA-style, one term per line.
func (c *Cover) String() string {
	if c.IsEmpty() {
		return "(0)"
	}
	var b strings.Builder
	for i, t := range c.Terms {
		if i > 0 {
			b.WriteString(" + ")
		}
		b.WriteString(t.PLAString(c.NumVars))
	}
	return b.String()
}

// FromMinterms builds a cover from explicit minterm indices (bit i of the
// minterm index is the value of variable i) and minimizes it.
func FromMinterms(n int, minterms []int) *Cover {
	c := NewCover(n)
	for _, m := range minterms {
		t := NewTerm(n)
		for v := 0; v < n; v++ {
			if m&(1<<v) != 0 {
				t.SetPos(v)
			} else {
				t.SetNeg(v)
			}
		}
		c.Add(t)
	}
	c.Minimize()
	return c
}

// FromFunc builds a minimized cover of an arbitrary n-variable function
// given as a predicate over minterm indices. Practical for n ≤ ~16; it
// returns an error past 24 variables rather than enumerating 2^n
// minterms.
func FromFunc(n int, f func(m int) bool) (*Cover, error) {
	if n > 24 {
		return nil, fmt.Errorf("sop.FromFunc: %d variables is too many for truth-table enumeration", n)
	}
	var minterms []int
	for m := 0; m < 1<<n; m++ {
		if f(m) {
			minterms = append(minterms, m)
		}
	}
	return FromMinterms(n, minterms), nil
}
