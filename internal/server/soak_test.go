package server_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestSoakBinary is the end-to-end service soak: it builds the real
// rmsynd binary, runs one clean instance and one with a core chaos plan
// injected into every request, hammers both with mixed valid, malformed,
// oversized, and duplicate traffic, and then asserts the service
// contract from the outside — no crashes, structured errors only, cache
// hits observed, and a clean SIGTERM drain with exit code 0.
func TestSoakBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("binary soak is not short")
	}
	bin := buildRmsynd(t)

	t.Run("clean", func(t *testing.T) {
		inst := startRmsynd(t, bin, "-addr", "127.0.0.1:0", "-workers", "2", "-queue", "4", "-max-body", "65536")
		soakTraffic(t, inst.url, false)

		// The concurrent duplicates coalesce onto one flight; a sequential
		// resubmission after the storm is the genuine cache hit.
		resp, err := http.Post(inst.url+"/v1/synthesize", "text/blif", bytes.NewReader(cm82aBLIF(t)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("X-Rmsynd-Cache"); got != "hit" {
			t.Errorf("post-storm duplicate X-Rmsynd-Cache = %q, want hit", got)
		}

		m := scrape(t, inst.url)
		if hits := metricValue(m, "rmsynd_cache_hits_total"); hits <= 0 {
			t.Errorf("rmsynd_cache_hits_total = %d after duplicate traffic, want > 0", hits)
		}
		if p := metricValue(m, "rmsynd_panics_total"); p != 0 {
			t.Errorf("rmsynd_panics_total = %d on clean traffic", p)
		}
		inst.drain(t)
	})

	t.Run("chaos", func(t *testing.T) {
		inst := startRmsynd(t, bin, "-addr", "127.0.0.1:0", "-workers", "2", "-max-body", "65536",
			"-chaos-plan", "bdd-alloc-tiny")
		soakTraffic(t, inst.url, true)
		inst.drain(t)
	})
}

// TestRestartSoak is the crash-recovery soak: a real rmsynd with a
// persistent cache dir is killed with SIGKILL mid-traffic — no drain, no
// flush — and a second instance on the same directory must come up warm:
// disk hits observed, zero corrupt entries, and the recovered bytes
// identical to the pre-crash response.
func TestRestartSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("restart soak is not short")
	}
	bin := buildRmsynd(t)
	cacheDir := t.TempDir()
	blif := cm82aBLIF(t)

	inst := startRmsynd(t, bin, "-addr", "127.0.0.1:0", "-workers", "2",
		"-cache-dir", cacheDir, "-mem-soft-limit", fmt.Sprint(1<<30))

	// Populate: post until the entry lands on disk (the tier attaches
	// asynchronously), remembering the clean bytes.
	var firstBody []byte
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post(inst.url+"/v1/synthesize", "text/blif", bytes.NewReader(blif))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("populate: status %d: %.200s", resp.StatusCode, body)
		}
		if firstBody == nil {
			firstBody = body
		}
		if metricValue(scrape(t, inst.url), "rmsynd_sigcache_disk_entries") > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("entry never reached the persistent tier before the crash")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Background traffic so the kill lands mid-flight, then SIGKILL: the
	// process gets no chance to drain or finish a write.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(inst.url+"/v1/synthesize", "text/blif", bytes.NewReader(blif))
			if err != nil {
				return // the kill severed the connection — expected
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	if err := inst.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-inst.done
	close(stop)
	wg.Wait()

	// Second life on the same directory.
	inst2 := startRmsynd(t, bin, "-addr", "127.0.0.1:0", "-workers", "2", "-cache-dir", cacheDir)
	deadline = time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(inst2.url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted rmsynd never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Post(inst2.url+"/v1/synthesize", "text/blif", bytes.NewReader(blif))
	if err != nil {
		t.Fatal(err)
	}
	warmBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d: %.200s", resp.StatusCode, warmBody)
	}
	if got := resp.Header.Get("X-Rmsynd-Cache"); got != "disk" {
		t.Errorf("post-crash X-Rmsynd-Cache = %q, want disk", got)
	}
	if !bytes.Equal(warmBody, firstBody) {
		t.Error("disk-recovered body differs from the pre-crash response")
	}

	m := scrape(t, inst2.url)
	if v := metricValue(m, "rmsynd_sigcache_scan_recovered_total"); v <= 0 {
		t.Errorf("rmsynd_sigcache_scan_recovered_total = %d after restart, want > 0", v)
	}
	if v := metricValue(m, "rmsynd_cache_disk_hits_total"); v <= 0 {
		t.Errorf("rmsynd_cache_disk_hits_total = %d after warm request, want > 0", v)
	}
	if v := metricValue(m, "rmsynd_sigcache_quarantined_total"); v != 0 {
		t.Errorf("rmsynd_sigcache_quarantined_total = %d, want 0 corrupt entries from a kill -9", v)
	}
	inst2.drain(t)
}

// buildRmsynd compiles cmd/rmsynd with the race detector into a temp
// dir, so the soak exercises the same binary an operator deploys.
func buildRmsynd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rmsynd")
	cmd := exec.Command("go", "build", "-race", "-o", bin, "repro/cmd/rmsynd")
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building rmsynd: %v\n%s", err, out)
	}
	return bin
}

type instance struct {
	cmd    *exec.Cmd
	url    string
	stderr *prefixBuffer
	done   chan error
}

// startRmsynd launches the binary on an ephemeral port and parses the
// bound address from its startup line.
func startRmsynd(t *testing.T, bin string, args ...string) *instance {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	inst := &instance{cmd: cmd, stderr: &prefixBuffer{}, done: make(chan error, 1)}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			inst.stderr.add(line)
			if strings.HasPrefix(line, "rmsynd: listening on ") {
				f := strings.Fields(line)
				select {
				case addrCh <- f[3]:
				default:
				}
			}
		}
	}()
	go func() { inst.done <- cmd.Wait() }()

	select {
	case addr := <-addrCh:
		inst.url = "http://" + addr
	case err := <-inst.done:
		t.Fatalf("rmsynd exited before listening: %v\n%s", err, inst.stderr.String())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("rmsynd never printed its listen line\n%s", inst.stderr.String())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			<-inst.done
		}
		inst.dumpLog(t)
	})
	return inst
}

// dumpLog writes the instance's captured stderr to $RMSYND_LOG_DIR when
// the test failed. CI points the variable at a scratch directory and
// uploads it as an artifact on failure, so a soak flake ships the full
// server log instead of a bare exit code.
func (in *instance) dumpLog(t *testing.T) {
	dir := os.Getenv("RMSYND_LOG_DIR")
	if dir == "" || !t.Failed() {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("RMSYND_LOG_DIR: %v", err)
		return
	}
	name := strings.ReplaceAll(t.Name(), "/", "-")
	path := filepath.Join(dir, fmt.Sprintf("%s-pid%d.log", name, in.cmd.Process.Pid))
	if err := os.WriteFile(path, []byte(in.stderr.String()+"\n"), 0o644); err != nil {
		t.Logf("writing rmsynd log: %v", err)
		return
	}
	t.Logf("rmsynd stderr captured to %s", path)
}

// drain sends SIGTERM and asserts the documented contract: exit code 0
// and the "drained cleanly" line.
func (in *instance) drain(t *testing.T) {
	t.Helper()
	if err := in.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-in.done:
		if err != nil {
			t.Errorf("rmsynd exit after SIGTERM: %v\n%s", err, in.stderr.String())
		}
	case <-time.After(60 * time.Second):
		in.cmd.Process.Kill()
		t.Fatalf("rmsynd did not drain within 60s of SIGTERM\n%s", in.stderr.String())
	}
	if !strings.Contains(in.stderr.String(), "rmsynd: drained cleanly") {
		t.Errorf("no clean-drain line in stderr:\n%s", in.stderr.String())
	}
}

// soakTraffic fires the mixed workload. chaosMode relaxes the success
// assertions: with a fault plan injected into every request, a valid
// spec may come back degraded-but-verified (200) or as a structured
// 5xx — both are contract-conforming; an unstructured response is not.
func soakTraffic(t *testing.T, url string, chaosMode bool) {
	t.Helper()
	blif := cm82aBLIF(t)
	pla := []byte(".i 2\n.o 1\n.p 3\n11 1\n10 1\n01 1\n.e\n")
	malformed := []byte(".model bad\n.inputs a\n.outputs y\n.names a y\nz 1\n.end\n")
	oversized := bytes.Repeat([]byte("# padding line to push the body over the configured cap\n"), 2000)

	type shot struct {
		name string
		body []byte
		hdr  map[string]string
		want func(status int, body []byte) error
	}
	structured := func(status int, body []byte) error {
		if status == http.StatusOK {
			if !bytes.Contains(body, []byte(`"schema": "rmsynd/v1"`)) || !bytes.Contains(body, []byte(`"verified": true`)) {
				return fmt.Errorf("200 body is not a verified rmsynd/v1 response: %.200s", body)
			}
			return nil
		}
		if !bytes.Contains(body, []byte(`"schema": "rmsynd/v1"`)) || !bytes.Contains(body, []byte(`"code"`)) {
			return fmt.Errorf("status %d without a structured error body: %.200s", status, body)
		}
		return nil
	}
	wantStatus := func(s int) func(int, []byte) error {
		return func(status int, body []byte) error {
			if status != s {
				return fmt.Errorf("status %d, want %d: %.200s", status, s, body)
			}
			return structured(status, body)
		}
	}
	ok200 := wantStatus(http.StatusOK)
	if chaosMode {
		ok200 = structured // fault plan may legitimately turn 200 into a truthful 5xx
	}

	shots := []shot{
		{"valid-blif", blif, nil, ok200},
		{"dup-blif", blif, nil, ok200}, // duplicate: cache hit on the clean instance
		{"valid-pla", pla, map[string]string{"Content-Type": "text/pla"}, ok200},
		{"malformed", malformed, nil, wantStatus(http.StatusBadRequest)},
		{"oversized", oversized, nil, wantStatus(http.StatusRequestEntityTooLarge)},
		{"bad-header", blif, map[string]string{"X-Rmsynd-Timeout": "soon"}, wantStatus(http.StatusBadRequest)},
		{"unknown-format", []byte("what is this\n"), nil, wantStatus(http.StatusUnsupportedMediaType)},
	}

	const rounds = 6
	var wg sync.WaitGroup
	errCh := make(chan error, rounds*len(shots))
	for r := 0; r < rounds; r++ {
		for _, sh := range shots {
			wg.Add(1)
			go func(sh shot) {
				defer wg.Done()
				req, err := http.NewRequest("POST", url+"/v1/synthesize", bytes.NewReader(sh.body))
				if err != nil {
					errCh <- err
					return
				}
				for k, v := range sh.hdr {
					req.Header.Set(k, v)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errCh <- fmt.Errorf("%s: %v", sh.name, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				// 429/503 under load are contract-conforming sheds, not failures.
				if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
					if err := structured(resp.StatusCode, body); err != nil {
						errCh <- fmt.Errorf("%s: %v", sh.name, err)
					}
					return
				}
				if err := sh.want(resp.StatusCode, body); err != nil {
					errCh <- fmt.Errorf("%s: %v", sh.name, err)
				}
			}(sh)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func metricValue(text, name string) int64 {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseInt(strings.TrimSpace(line[len(name)+1:]), 10, 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}

// prefixBuffer is a line log safe for the stderr-reader goroutine and
// the test to share.
type prefixBuffer struct {
	mu    sync.Mutex
	lines []string
}

func (b *prefixBuffer) add(l string) {
	b.mu.Lock()
	b.lines = append(b.lines, l)
	b.mu.Unlock()
}

func (b *prefixBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Join(b.lines, "\n")
}
