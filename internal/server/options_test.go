package server

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
)

func hdr(kv ...string) http.Header {
	h := http.Header{}
	for i := 0; i+1 < len(kv); i += 2 {
		h.Set(kv[i], kv[i+1])
	}
	return h
}

func TestParseGrantDefaults(t *testing.T) {
	pol := DefaultPolicy()
	g, err := parseGrant(hdr(), pol, 8)
	if err != nil {
		t.Fatalf("parseGrant(empty): %v", err)
	}
	if g.Timeout != pol.DefaultTimeout {
		t.Errorf("Timeout = %v, want policy default %v", g.Timeout, pol.DefaultTimeout)
	}
	if g.BDDNodes != pol.MaxBDDNodes || g.Cubes != pol.MaxCubes || g.Steps != pol.MaxSteps {
		t.Errorf("budgets = (%d,%d,%d), want policy ceilings", g.BDDNodes, g.Cubes, g.Steps)
	}
	if g.Workers != 8 {
		t.Errorf("Workers = %d, want whole pool (8)", g.Workers)
	}
	if g.RetryFactor != core.DefaultOptions().RetryFactor {
		t.Errorf("RetryFactor = %g, want core default", g.RetryFactor)
	}
	if g.Method != core.MethodCube || g.Polarity != core.PolarityGreedy || g.NoCache {
		t.Errorf("flow = (%v,%v,nocache=%v), want cube/greedy/false", g.Method, g.Polarity, g.NoCache)
	}
}

// TestParseGrantClamps: absurd-but-valid requests are clamped to policy,
// never granted raw and never rejected.
func TestParseGrantClamps(t *testing.T) {
	pol := DefaultPolicy()
	g, err := parseGrant(hdr(
		"X-Rmsynd-Timeout", "48h",
		"X-Rmsynd-Max-Bdd-Nodes", "999999999",
		"X-Rmsynd-Max-Cubes", "999999999999",
		"X-Rmsynd-Workers", "4096",
		"X-Rmsynd-Retry-Factor", "1000",
	), pol, 4)
	if err != nil {
		t.Fatalf("parseGrant: %v", err)
	}
	if g.Timeout != pol.MaxTimeout {
		t.Errorf("Timeout = %v, want clamp %v", g.Timeout, pol.MaxTimeout)
	}
	if g.BDDNodes != pol.MaxBDDNodes {
		t.Errorf("BDDNodes = %d, want ceiling %d", g.BDDNodes, pol.MaxBDDNodes)
	}
	if g.Cubes != pol.MaxCubes {
		t.Errorf("Cubes = %d, want ceiling %d", g.Cubes, pol.MaxCubes)
	}
	if g.Workers != 4 {
		t.Errorf("Workers = %d, want pool size 4", g.Workers)
	}
	if g.RetryFactor != pol.MaxRetryFactor {
		t.Errorf("RetryFactor = %g, want clamp %g", g.RetryFactor, pol.MaxRetryFactor)
	}

	// Sub-floor timeouts are raised, not rejected: a 1ns budget is a
	// client rounding artifact, not a request for instant failure.
	g, err = parseGrant(hdr("X-Rmsynd-Timeout", "1ns"), pol, 4)
	if err != nil {
		t.Fatalf("parseGrant(1ns): %v", err)
	}
	if g.Timeout != pol.MinTimeout {
		t.Errorf("Timeout = %v, want floor %v", g.Timeout, pol.MinTimeout)
	}

	// In-range values pass through untouched.
	g, err = parseGrant(hdr(
		"X-Rmsynd-Timeout", "5s",
		"X-Rmsynd-Max-Cubes", "1000",
		"X-Rmsynd-Workers", "2",
		"X-Rmsynd-Method", "ofdd",
		"X-Rmsynd-Polarity", "exhaustive",
		"X-Rmsynd-No-Cache", "1",
	), pol, 4)
	if err != nil {
		t.Fatalf("parseGrant(in-range): %v", err)
	}
	if g.Timeout != 5*time.Second || g.Cubes != 1000 || g.Workers != 2 {
		t.Errorf("grant = timeout %v cubes %d workers %d, want 5s/1000/2", g.Timeout, g.Cubes, g.Workers)
	}
	if g.Method != core.MethodOFDD || g.Polarity != core.PolarityExhaustive || !g.NoCache {
		t.Errorf("flow = (%v,%v,%v), want ofdd/exhaustive/nocache", g.Method, g.Polarity, g.NoCache)
	}
}

// TestParseGrantRejects: unparseable garbage is a hard 400-class error —
// silently defaulting would hide client bugs.
func TestParseGrantRejects(t *testing.T) {
	pol := DefaultPolicy()
	cases := [][2]string{
		{"X-Rmsynd-Timeout", "soon"},
		{"X-Rmsynd-Timeout", "-3s"},
		{"X-Rmsynd-Max-Bdd-Nodes", "-1"},
		{"X-Rmsynd-Max-Cubes", "lots"},
		{"X-Rmsynd-Workers", "-2"},
		{"X-Rmsynd-Workers", "many"},
		{"X-Rmsynd-Retry-Factor", "NaN"},
		{"X-Rmsynd-Retry-Factor", "-1"},
		{"X-Rmsynd-Method", "magic"},
		{"X-Rmsynd-Polarity", "sideways"},
		{"X-Rmsynd-No-Cache", "maybe"},
	}
	for _, c := range cases {
		_, err := parseGrant(hdr(c[0], c[1]), pol, 4)
		oe, ok := err.(*optErr)
		if !ok {
			t.Errorf("%s=%q: err = %v, want *optErr", c[0], c[1], err)
			continue
		}
		if oe.header != c[0] {
			t.Errorf("%s=%q: error names header %q", c[0], c[1], oe.header)
		}
	}
}

// TestGrantKeys: the store key ignores budgets (clean results are
// budget-independent) while the flight key does not (a request must not
// coalesce onto a tighter-budget flight).
func TestGrantKeys(t *testing.T) {
	pol := DefaultPolicy()
	a, _ := parseGrant(hdr("X-Rmsynd-Max-Cubes", "100"), pol, 4)
	b, _ := parseGrant(hdr("X-Rmsynd-Max-Cubes", "200"), pol, 4)
	if a.flowKey() != b.flowKey() {
		t.Errorf("flowKey differs on budgets: %q vs %q", a.flowKey(), b.flowKey())
	}
	if a.flightKey() == b.flightKey() {
		t.Errorf("flightKey ignores budgets: %q", a.flightKey())
	}
	c, _ := parseGrant(hdr("X-Rmsynd-Method", "ofdd"), pol, 4)
	if a.flowKey() == c.flowKey() {
		t.Errorf("flowKey ignores the method: %q", a.flowKey())
	}
}

func TestSniffFormat(t *testing.T) {
	cases := []struct {
		body, want string
	}{
		{".model x\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n", "blif"},
		{"# comment\n\n.inputs a\n", "blif"},
		{".i 2\n.o 1\n.p 1\n11 1\n.e\n", "pla"},
		{"# pla\n.type fr\n", "pla"},
		{"just text\n", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := sniffFormat([]byte(c.body)); got != c.want {
			t.Errorf("sniffFormat(%.20q) = %q, want %q", c.body, got, c.want)
		}
	}
}
