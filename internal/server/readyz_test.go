package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestReadyzLifecycle walks the readiness contract end to end: ready
// when idle, not ready at admission capacity, ready again when load
// clears, not ready the moment a drain begins (while liveness holds),
// and only the completed shutdown flips liveness.
func TestReadyzLifecycle(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	srv := server.New(server.Config{
		Workers:    1,
		QueueDepth: 1,
		Hooks:      &server.Hooks{JobStart: func(string) { <-gate }},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if st, _ := getStatus(t, ts.URL+"/healthz"); st != http.StatusOK {
		t.Fatalf("idle /healthz = %d, want 200", st)
	}
	if st, _ := getStatus(t, ts.URL+"/readyz"); st != http.StatusOK {
		t.Fatalf("idle /readyz = %d, want 200", st)
	}

	// Fill the admission window: one request parked at the gate plus one
	// queued is the whole capacity (workers 1 + queue 1).
	var wg sync.WaitGroup
	for i := 0; i < srv.QueueCapacity(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/synthesize", "text/blif", strings.NewReader(string(cm82aBLIF(t))))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, body := getStatus(t, ts.URL+"/readyz")
		if st == http.StatusServiceUnavailable {
			if !strings.Contains(body, "saturated") {
				t.Errorf("saturated /readyz body = %q, want a saturation notice", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never went unready at admission capacity")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st, _ := getStatus(t, ts.URL+"/healthz"); st != http.StatusOK {
		t.Errorf("saturated /healthz = %d, want 200 (liveness is not load)", st)
	}

	once.Do(func() { close(gate) })
	wg.Wait()
	deadline = time.Now().Add(10 * time.Second)
	for {
		if st, _ := getStatus(t, ts.URL+"/readyz"); st == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never recovered after the load cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drain flips readiness immediately; liveness holds until the
	// shutdown completes, so an orchestrator stops routing before it
	// considers the process dead.
	srv.BeginDrain()
	if st, body := getStatus(t, ts.URL+"/readyz"); st != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("draining /readyz = %d %q, want 503 draining", st, body)
	}
	if st, _ := getStatus(t, ts.URL+"/healthz"); st != http.StatusOK {
		t.Errorf("draining /healthz = %d, want 200 until shutdown completes", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st, _ := getStatus(t, ts.URL+"/healthz"); st != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown /healthz = %d, want 503", st)
	}
}

// TestReadyzCacheWarm: with a persistent cache configured, readiness
// waits for the startup scan, then reports ready with the tier attached.
func TestReadyzCacheWarm(t *testing.T) {
	srv := server.New(server.Config{Workers: 1, CacheDir: t.TempDir()})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, _ := getStatus(t, ts.URL+"/readyz"); st == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never reported ready after the cache scan")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Cache().Disk() == nil {
		t.Error("ready with a cache dir configured but no persistent tier attached")
	}
}
