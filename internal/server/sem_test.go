package server

import (
	"context"
	"testing"
	"time"
)

func TestSemAcquireRelease(t *testing.T) {
	s := newSem(4)
	ctx := context.Background()
	if err := s.Acquire(ctx, 3); err != nil {
		t.Fatalf("Acquire(3): %v", err)
	}
	if got := s.InUse(); got != 3 {
		t.Fatalf("InUse = %d, want 3", got)
	}
	if err := s.Acquire(ctx, 1); err != nil {
		t.Fatalf("Acquire(1): %v", err)
	}
	s.Release(3)
	s.Release(1)
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}
}

// TestSemClamping: a request wider than the pool degrades to "the whole
// pool" instead of deadlocking forever, and n<1 is treated as 1.
func TestSemClamping(t *testing.T) {
	s := newSem(2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Acquire(ctx, 100); err != nil {
		t.Fatalf("Acquire(100) on size 2: %v", err)
	}
	if got := s.InUse(); got != 2 {
		t.Fatalf("InUse = %d, want 2 (clamped)", got)
	}
	s.Release(100)
	if err := s.Acquire(ctx, 0); err != nil {
		t.Fatalf("Acquire(0): %v", err)
	}
	if got := s.InUse(); got != 1 {
		t.Fatalf("InUse = %d, want 1 (raised)", got)
	}
	s.Release(0)
}

// TestSemFIFONoOvertaking: a narrow acquisition queued behind a wide
// blocked head must wait its turn — later releases serve the head first.
func TestSemFIFONoOvertaking(t *testing.T) {
	s := newSem(2)
	ctx := context.Background()
	if err := s.Acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}

	wideDone := make(chan struct{})
	narrowDone := make(chan struct{})
	wideQueued := make(chan struct{})
	go func() {
		close(wideQueued)
		if err := s.Acquire(ctx, 2); err != nil {
			t.Error(err)
		}
		close(wideDone)
	}()
	<-wideQueued
	// Make sure the wide waiter is actually parked before the narrow one
	// joins the queue behind it.
	for i := 0; ; i++ {
		s.mu.Lock()
		n := s.waiters.Len()
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("wide waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		if err := s.Acquire(ctx, 1); err != nil {
			t.Error(err)
		}
		close(narrowDone)
	}()

	// One slot free: fits the narrow waiter, but the wide head blocks it.
	s.Release(1)
	select {
	case <-narrowDone:
		t.Fatal("narrow waiter overtook the blocked wide head")
	case <-wideDone:
		t.Fatal("wide waiter granted with only one slot free")
	case <-time.After(20 * time.Millisecond):
	}

	// Second slot: the wide head is served, then the narrow one once the
	// wide holder releases.
	s.Release(1)
	select {
	case <-wideDone:
	case <-time.After(5 * time.Second):
		t.Fatal("wide waiter never served")
	}
	s.Release(2)
	select {
	case <-narrowDone:
	case <-time.After(5 * time.Second):
		t.Fatal("narrow waiter never served")
	}
	s.Release(1)
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0", got)
	}
}

// TestSemCancelWhileWaiting: a cancelled waiter reports ctx.Err, leaves
// the queue, and does not wedge waiters behind it.
func TestSemCancelWhileWaiting(t *testing.T) {
	s := newSem(1)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- s.Acquire(ctx, 1) }()
	for i := 0; ; i++ {
		s.mu.Lock()
		n := s.waiters.Len()
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled Acquire = %v, want context.Canceled", err)
	}
	// The abandoned slot request must not block a live one.
	done := make(chan error, 1)
	go func() { done <- s.Acquire(context.Background(), 1) }()
	s.Release(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-cancel Acquire: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release after cancelled waiter never served the next one")
	}
}
