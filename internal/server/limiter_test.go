package server

import (
	"testing"
	"time"
)

// TestLimiterStatic: with adaptive off the limiter is exactly the old
// token gate — the cap never moves, whatever signals arrive.
func TestLimiterStatic(t *testing.T) {
	l := newLimiter(3, false)
	for i := 0; i < 3; i++ {
		if !l.tryAcquire() {
			t.Fatalf("acquire %d refused below the cap", i)
		}
	}
	if l.tryAcquire() {
		t.Fatal("acquire beyond the cap succeeded")
	}
	l.onShed()
	l.observe(time.Hour, true, true) // deadline miss, absurd latency
	if got := l.Effective(); got != 3 {
		t.Fatalf("static cap moved to %d", got)
	}
	l.release()
	if !l.tryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

// TestLimiterAIMD: congestion signals shrink the cap multiplicatively
// (never below 1), healthy completions regrow it additively back to max.
func TestLimiterAIMD(t *testing.T) {
	l := newLimiter(10, true)
	l.cooldown = 0 // every signal counts; production paces via cooldown

	l.onShed()
	if got := l.Effective(); got != 7 {
		t.Fatalf("after one shed: cap = %d, want 7 (10*0.7)", got)
	}
	// Shrink to the floor; it must never reach 0.
	for i := 0; i < 50; i++ {
		l.observe(time.Second, true, false)
	}
	if got := l.Effective(); got != 1 {
		t.Fatalf("after sustained misses: cap = %d, want floor 1", got)
	}
	if !l.tryAcquire() {
		t.Fatal("cap floor wedged the server shut")
	}
	l.release()

	// Healthy completions regrow additively to max.
	for i := 0; i < 200 && l.Effective() < 10; i++ {
		l.observe(5*time.Millisecond, false, true)
	}
	if got := l.Effective(); got != 10 {
		t.Fatalf("regrowth stalled at %d, want 10", got)
	}
	if s := l.Shrinks(); s == 0 {
		t.Error("shrink counter never moved")
	}
}

// TestLimiterLatencyTrip: once the baseline is warm, one sample far
// above it is a congestion signal — and is excluded from the baseline,
// so sustained overload cannot normalize itself.
func TestLimiterLatencyTrip(t *testing.T) {
	l := newLimiter(8, true)
	l.cooldown = 0
	for i := 0; i < limiterWarmup; i++ {
		l.observe(10*time.Millisecond, false, true)
	}
	if b := l.Baseline(); b < 5*time.Millisecond || b > 20*time.Millisecond {
		t.Fatalf("warmed baseline = %v, want ~10ms", b)
	}
	before, shrinksBefore := l.Effective(), l.Shrinks()
	l.observe(200*time.Millisecond, false, true) // 20x the baseline
	if got := l.Shrinks(); got != shrinksBefore+1 {
		t.Fatalf("outlier did not shrink: %d shrinks, cap %d→%d", got, before, l.Effective())
	}
	if b := l.Baseline(); b > 20*time.Millisecond {
		t.Errorf("outlier polluted the baseline: %v", b)
	}
}

// TestLimiterCooldown: one overload burst costs one multiplicative
// decrease, not one per shed.
func TestLimiterCooldown(t *testing.T) {
	l := newLimiter(10, true)
	l.cooldown = time.Hour
	l.onShed()
	l.onShed()
	l.onShed()
	if got := l.Shrinks(); got != 1 {
		t.Fatalf("burst of 3 sheds caused %d shrinks, want 1", got)
	}
}

// TestRetryAfterMS: the shed backoff scales with queue pressure, is
// clamped to [≈500ms, ≈30s], and carries ±20% jitter.
func TestRetryAfterMS(t *testing.T) {
	inWindow := func(ms, base int64) bool {
		lo := int64(float64(base) * 0.8)
		hi := int64(float64(base)*1.2) + 1
		return ms >= lo && ms <= hi
	}
	for i := 0; i < 100; i++ {
		if ms := retryAfterMS(0); !inWindow(ms, 500) {
			t.Fatalf("empty queue: %dms outside 500ms jitter window", ms)
		}
		if ms := retryAfterMS(3); !inWindow(ms, 2000) {
			t.Fatalf("3 queued: %dms outside 2000ms jitter window", ms)
		}
		if ms := retryAfterMS(1_000_000); !inWindow(ms, 30_000) {
			t.Fatalf("huge queue: %dms outside the 30s clamp window", ms)
		}
	}
	// Jitter must actually vary — a constant Retry-After synchronizes
	// every shed client into the next wave.
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		seen[retryAfterMS(3)] = true
	}
	if len(seen) < 2 {
		t.Error("retryAfterMS returned a constant; jitter is not applied")
	}
}
