// Package server implements rmsynd, the fault-contained HTTP/JSON front
// end on core.Synthesize. The request path is a fixed gauntlet —
// admission (bounded queue, explicit shedding) → budget derivation
// (headers clamped by policy) → content-addressed cache (single-flight)
// → bounded worker pool → synthesis under the degradation ladder →
// server-side re-verification — and every fault along it maps to a
// structured rmsynd/v1 error, never a crashed process or a silent lie.
// See DESIGN.md §11 for the architecture and failure taxonomy.
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sigcache"
	"repro/internal/sop"
	"repro/internal/verify"
)

// Hooks are the server-level fault-injection points, mirroring
// core.ProbeHooks: nil-safe, test-only, compiled in because chaos
// coverage of the real request path is a feature of the build, not of a
// special test binary. All hooks run inside the request's panic
// containment.
type Hooks struct {
	// JobStart runs when a request wins its worker-pool slots, before
	// synthesis. A plan can block here (queue pressure), panic here
	// (worker-pool trip), or record scheduling.
	JobStart func(circuit string)
	// MutateResult runs on the synthesized network before verification
	// and caching — the cache-poisoning attempt. The server-side
	// re-verification must catch whatever it does.
	MutateResult func(n *network.Network)
	// CoreHooks supplies per-request core-level probes, letting a plan
	// drive the library's fault points through the HTTP path.
	CoreHooks func() *core.ProbeHooks
	// MemProbe replaces the brownout monitor's heap-usage reading —
	// the injected-memory-pressure fault. Nil means real ReadMemStats.
	MemProbe func() uint64
}

// Config sizes the server. Zero values mean the documented defaults.
type Config struct {
	// Workers is the global derivation pool shared by every request
	// (default GOMAXPROCS). A request's granted worker count is taken
	// from this pool for the duration of its synthesis.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for workers
	// beyond the ones running (default 2×Workers). Admission beyond
	// Workers+QueueDepth is shed with 429.
	QueueDepth int
	// MaxBodyBytes caps the request body (default 4 MiB).
	MaxBodyBytes int64
	// ReadTimeout bounds reading the request body once the handler has
	// it (default 10s) — the slow-loris fence.
	ReadTimeout time.Duration
	// Policy clamps per-request grants.
	Policy Policy
	// CacheEntries / CacheBytes bound the result cache (defaults per
	// sigcache.New).
	CacheEntries int
	CacheBytes   int64
	// SigNodeCap bounds the BDD build of cache signatures (default
	// sigcache.DefaultSigNodeCap).
	SigNodeCap int
	// Adaptive enables the AIMD admission limiter (DESIGN.md §14): the
	// effective in-system cap moves between 1 and Workers+QueueDepth on
	// congestion signals. False — the zero value — preserves the static
	// token gate exactly.
	Adaptive bool
	// CacheDir, when set, attaches the crash-safe persistent cache tier
	// rooted there. The warm scan runs asynchronously; /readyz reports
	// not-ready until it finishes. DiskCacheBytes bounds the tier
	// (default sigcache.DefaultDiskBytes).
	CacheDir       string
	DiskCacheBytes int64
	// MemSoftLimit, when non-zero, arms the memory brownout monitor at
	// that many heap bytes; MemPollInterval is its sampling period
	// (default 250ms).
	MemSoftLimit    uint64
	MemPollInterval time.Duration
	// Hooks injects faults; nil in production.
	Hooks *Hooks
}

// Server is one rmsynd instance. Create with New, serve via ServeHTTP
// (it is an http.Handler), stop with Shutdown.
type Server struct {
	cfg     Config
	pool    *sem
	lim     *limiter
	brown   *brownout
	cache   *sigcache.Cache
	metrics *metrics
	mux     *http.ServeMux

	// baseCtx parents every synthesis run: flights are detached from
	// client connections (a disconnect must not kill work that
	// coalesced requests or the cache will still want) but not from the
	// server's own lifetime.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	// cacheWarm flips once the persistent tier's recovery scan has
	// landed (immediately when no CacheDir is configured); /readyz
	// reports warming until then. stopped flips after Shutdown
	// completes — the point where /healthz stops reporting live.
	cacheWarm atomic.Bool
	stopped   atomic.Bool

	mu       sync.Mutex
	draining bool
	jobs     sync.WaitGroup

	// flightMu guards the in-flight registry the brownout monitor picks
	// force-degrade victims from.
	flightMu  sync.Mutex
	flightSeq int64
	flights   map[int64]*flightRec
}

// flightRec is one in-flight synthesis as the brownout monitor sees it:
// weight orders victims by granted budget, cancel trips the flight's
// run context, forced marks it picked — both so it is not cancelled
// twice and so runFlight can attribute the degradations truthfully.
type flightRec struct {
	weight int64
	cancel context.CancelFunc
	forced bool
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	} else if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.Policy == (Policy{}) {
		cfg.Policy = DefaultPolicy()
	}
	if cfg.SigNodeCap <= 0 {
		cfg.SigNodeCap = sigcache.DefaultSigNodeCap
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		pool:       newSem(cfg.Workers),
		lim:        newLimiter(cfg.Workers+cfg.QueueDepth, cfg.Adaptive),
		cache:      sigcache.New(cfg.CacheEntries, cfg.CacheBytes),
		metrics:    newMetrics(),
		mux:        http.NewServeMux(),
		baseCtx:    ctx,
		cancelBase: cancel,
		flights:    make(map[int64]*flightRec),
	}
	var probe func() uint64
	if cfg.Hooks != nil {
		probe = cfg.Hooks.MemProbe
	}
	s.brown = newBrownout(cfg.MemSoftLimit, cfg.MemPollInterval, probe, s.forceDegradeLargest)
	if cfg.CacheDir != "" {
		// The recovery scan runs off the startup path: the server serves
		// (memory-only) immediately and /readyz reports warming until the
		// scan lands. A failed open degrades to memory-only — a cache
		// tier must never take the service down.
		go func() {
			d, derr := sigcache.OpenDisk(cfg.CacheDir, cfg.DiskCacheBytes)
			if derr == nil {
				s.cache.SetDisk(d)
			} else {
				s.metrics.diskOpenFailed.Store(true)
			}
			s.cacheWarm.Store(true)
		}()
	} else {
		s.cacheWarm.Store(true)
	}
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleHealthz is liveness only: the process is up and responding. It
// stays ok through a drain — flipping liveness while in-flight requests
// are still finishing invites the supervisor to kill a process that is
// doing exactly what it was asked. Routability lives in /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.stopped.Load() {
		http.Error(w, "stopped", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// handleReadyz is routability: whether a load balancer should send the
// next request here. Not ready while draining (readiness flips before
// liveness on SIGTERM, in that order), while the persistent cache
// recovery scan is still running, or while admission is saturated.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.isDraining() || s.stopped.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case !s.cacheWarm.Load():
		http.Error(w, "warming: persistent cache scan in progress", http.StatusServiceUnavailable)
	case s.lim.InSystem() >= s.lim.Effective():
		http.Error(w, "saturated: admission at capacity", http.StatusServiceUnavailable)
	default:
		w.Write([]byte("ready\n"))
	}
}

// BeginDrain stops admitting new synthesis requests: admission returns
// 503 draining, /healthz flips unhealthy (so load balancers stop
// routing), in-flight requests keep running.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.metrics.draining.Store(true)
}

// ForceCancel cancels the base context: every in-flight synthesis
// budget trips and the flows drain through the degradation ladder,
// producing truthful degraded responses rather than hung connections.
func (s *Server) ForceCancel() { s.cancelBase() }

// Shutdown drains gracefully: stop admitting, wait for in-flight work,
// and if ctx expires first, force-cancel so the remaining flights
// degrade and finish. It returns once every request handler is done,
// the brownout monitor is stopped, and liveness has flipped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	defer func() {
		s.brown.Stop()
		s.stopped.Store(true)
	}()
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.ForceCancel()
		<-done
		return ctx.Err()
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// tryEnter registers a request with the drain barrier. The flag and the
// WaitGroup share a mutex so no Add can race a Wait that already saw
// the drained state.
func (s *Server) tryEnter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.jobs.Add(1)
	return true
}

// handleSynthesize is the request gauntlet. Order matters: drain check
// and admission run before the body is read, so an overloaded or
// draining server sheds load without paying for parsing.
func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	if !s.tryEnter() {
		s.metrics.outcome(codeDraining)
		writeError(w, failCode(codeDraining, "server is draining; retry against another instance"), jitterMS(5000))
		return
	}
	defer s.jobs.Done()

	// Admission: one in-system slot per request (queued or running),
	// gated by the limiter's effective cap — the static capacity, or
	// the AIMD-moved cap when adaptive. A refusal is the overload
	// signal: shed loudly, feed the control loop, and jitter the
	// retry horizon so the shed wave does not return in lockstep.
	if !s.lim.tryAcquire() {
		s.lim.onShed()
		s.metrics.shed.Add(1)
		s.metrics.outcome(codeQueueFull)
		writeError(w, failCode(codeQueueFull, "admission queue full (%d in system)", s.lim.Effective()),
			retryAfterMS(int64(s.lim.InSystem())))
		return
	}
	s.metrics.admitted.Add(1)
	defer func() {
		s.lim.release()
		s.metrics.admitted.Add(-1)
	}()

	code := s.synthesize(w, r)
	s.metrics.outcome(code)
}

// synthesize runs one admitted request end to end and returns the
// outcome code ("" for success) for metrics.
func (s *Server) synthesize(w http.ResponseWriter, r *http.Request) string {
	// Slow-loris fence: the body must arrive within ReadTimeout.
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) // best-effort; nil-checked below via read errors
	body, rerr := readAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if rerr != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(rerr, &tooBig):
			writeError(w, failCode(codeSpecTooLarge, "request body exceeds %d bytes", s.cfg.MaxBodyBytes), 0)
			return codeSpecTooLarge
		case isTimeout(rerr):
			writeError(w, failCode(codeReadTimeout, "request body not received within %s", s.cfg.ReadTimeout), 0)
			return codeReadTimeout
		default:
			writeError(w, failCode(codeBadSpec, "reading request body: %v", rerr), 0)
			return codeBadSpec
		}
	}
	rc.SetReadDeadline(time.Time{})

	spec, circuit, perr := parseSpec(body, r)
	if perr != nil {
		writeError(w, perr, 0)
		return perr.code
	}

	g, gerr := parseGrant(r.Header, s.cfg.Policy, s.cfg.Workers)
	if gerr != nil {
		writeError(w, failCode(codeBadOption, "%v", gerr), 0)
		return codeBadOption
	}

	// Memory brownout: while the watermark is engaged, new grants are
	// clamped — budgets divided, hedged races collapsed to one arm — so
	// admitted work fits the heap that is actually left. The clamp is
	// volatile (header, not body): a clean clamped run produces the
	// same bytes as a clean unclamped one, so it stays cacheable.
	browned := s.brown.Active()
	if browned {
		g = g.clampBrownout()
		s.metrics.brownClamped.Add(1)
	}

	// Content address: functionally identical submissions — reordered
	// cover rows, renamed internal signals, regenerated files — land on
	// the same entry. A cache bypass still coalesces with identical
	// in-flight work (flightKey), it just skips the stored entry.
	sig := sigcache.Signature(spec, s.cfg.SigNodeCap)
	storeKey := sig + "|" + g.flowKey()
	if g.NoCache {
		storeKey = ""
	}
	flightKey := sig + "|" + g.flightKey()

	start := time.Now()
	var degradations int
	entry, src, ferr := s.cache.GetOrDo(r.Context(), storeKey, flightKey,
		func() (e *sigcache.Entry, cacheable bool, err error) {
			e, degradations, err = s.runFlight(circuit, spec, g, browned)
			return e, err == nil && degradations == 0, err
		})

	// Feed the admission control loop: a queue timeout or a request
	// that burned its whole granted clock is a congestion signal; only
	// real synthesis latencies (clean cache misses) shape the baseline.
	elapsed := time.Since(start)
	deadlineMiss := elapsed >= g.Timeout
	var qt *reqError
	if errors.As(ferr, &qt) && qt.code == codeQueueTimeout {
		deadlineMiss = true
	}
	s.lim.observe(elapsed, deadlineMiss, src == sigcache.Miss && ferr == nil)

	// The client may have left while its flight (or the one it
	// coalesced onto) was still running; the work itself continues
	// under baseCtx and can still populate the cache.
	if r.Context().Err() != nil && ferr != nil {
		s.metrics.abandon.Add(1)
		return "abandoned"
	}
	if ferr != nil {
		var re *reqError
		if !errors.As(ferr, &re) {
			re = failCode(codeInternal, "%v", ferr)
		}
		var retry int64
		if re.code == codeQueueTimeout {
			retry = jitterMS(1000)
		}
		writeError(w, re, retry)
		return re.code
	}

	s.metrics.cache(src)
	if degradations > 0 {
		s.metrics.degraded.Add(1)
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if browned {
		h.Set("X-Rmsynd-Brownout", "1")
	}
	h.Set("X-Rmsynd-Cache", src.String())
	h.Set("X-Rmsynd-Elapsed-Ms", strconv.FormatInt(time.Since(start).Milliseconds(), 10))
	h.Set("X-Rmsynd-Granted-Timeout-Ms", strconv.FormatInt(g.Timeout.Milliseconds(), 10))
	h.Set("X-Rmsynd-Granted-Workers", strconv.Itoa(g.Workers))
	h.Set("X-Rmsynd-Granted-Max-Bdd-Nodes", strconv.Itoa(g.BDDNodes))
	h.Set("X-Rmsynd-Granted-Max-Cubes", strconv.FormatInt(g.Cubes, 10))
	h.Set("X-Rmsynd-Granted-Basis", g.Basis.String())
	w.WriteHeader(http.StatusOK)
	w.Write(entry.Body)
	return ""
}

// runFlight is the flight leader's job: worker acquisition, hooks,
// synthesis, poisoning-proof verification, serialization. Panics
// anywhere inside — hooks, core phases outside their own recover, the
// serializer — are contained here and become a structured 500.
func (s *Server) runFlight(circuit string, spec *network.Network, g grant, browned bool) (entry *sigcache.Entry, degradations int, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.metrics.panics.Add(1)
			entry, err = nil, failCode(codeInternal, "request panicked: %v", p)
		}
	}()

	// The whole flight — queueing for workers included — lives inside
	// the granted wall clock, parented on the server, not the client.
	ctx, cancel := context.WithTimeout(s.baseCtx, g.Timeout)
	defer cancel()

	// Register as a brownout victim candidate: if memory pressure peaks
	// while this flight runs, the monitor may cancel it (largest granted
	// budget first) and it degrades through the ladder like any budget
	// trip — verified result, truthful attribution.
	id := s.registerFlight(g, cancel)
	defer s.unregisterFlight(id)

	if aerr := s.pool.Acquire(ctx, g.Workers); aerr != nil {
		return nil, 0, failCode(codeQueueTimeout, "no workers within the %s budget: %v", g.Timeout, aerr)
	}
	defer s.pool.Release(g.Workers)
	// Inflight counts synthesizing requests only; admitted-but-queued
	// ones show up in the queue-depth gauge instead.
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	if s.cfg.Hooks != nil && s.cfg.Hooks.JobStart != nil {
		s.cfg.Hooks.JobStart(circuit)
	}

	opt := g.coreOptions()
	opt.Obs = obs.NewCollector()
	if s.cfg.Hooks != nil && s.cfg.Hooks.CoreHooks != nil {
		opt.Hooks = s.cfg.Hooks.CoreHooks()
	}

	res, serr := core.Synthesize(ctx, spec, opt)
	if serr != nil {
		if errors.Is(serr, core.ErrNotEquivalent) {
			return nil, 0, failCode(codeNotEquivalent, "%v", serr)
		}
		return nil, 0, failCode(codeSynthFailed, "%v", serr)
	}
	s.metrics.absorb(opt.Obs.Snapshot())

	// Truthful attribution: trips under a brownout clamp or a forced
	// cancel happened because the server shed memory, not because the
	// client under-budgeted. Degraded results are never cached, so the
	// prefix cannot leak into a clean entry.
	if (browned || s.flightForced(id)) && len(res.Degradations) > 0 {
		for i := range res.Degradations {
			if !strings.HasPrefix(res.Degradations[i].Reason, "brownout: ") {
				res.Degradations[i].Reason = "brownout: " + res.Degradations[i].Reason
			}
		}
	}

	if s.cfg.Hooks != nil && s.cfg.Hooks.MutateResult != nil {
		s.cfg.Hooks.MutateResult(res.Network)
	}

	// Trust nothing that is about to be cached: re-verify the result by
	// simulation against the parsed spec. This is what turns a cache
	// poisoning attempt into a truthful 500 instead of a durable lie.
	verified, verr := verifyBySim(spec, res.Network)
	if verr != nil || !verified {
		detail := "result network is not equivalent to the specification"
		if verr != nil {
			detail = verr.Error()
		}
		return nil, 0, failCode(codeNotEquivalent, "server-side verification failed: %s", detail)
	}

	bodyBytes, berr := buildBody(circuit, spec, res, g, true)
	if berr != nil {
		return nil, 0, failCode(codeInternal, "serializing response: %v", berr)
	}
	return &sigcache.Entry{
		Body:     bodyBytes,
		Flow:     g.flowString(),
		Gates2:   res.Stats.Gates2,
		Literals: res.Stats.Lits,
	}, len(res.Degradations), nil
}

// verifyBySim checks the result against the spec by simulation:
// exhaustive up to 16 inputs, 2048 fixed-seed random vectors beyond —
// bounded cost, independent of the BDD machinery a poisoned run might
// have corrupted.
func verifyBySim(spec, got *network.Network) (bool, error) {
	if spec.NumPIs() <= 16 {
		return verify.Exhaustive(spec, got)
	}
	bad, err := verify.RandomCheck(spec, got, 2048, 1)
	if err != nil {
		return false, err
	}
	return bad < 0, nil
}

// parseSpec decodes the request body as PLA or BLIF, picking the format
// from ?format=, Content-Type, or the first directive in the body.
func parseSpec(body []byte, r *http.Request) (*network.Network, string, *reqError) {
	format := r.URL.Query().Get("format")
	if format == "" {
		switch ct := r.Header.Get("Content-Type"); {
		case strings.Contains(ct, "pla"):
			format = "pla"
		case strings.Contains(ct, "blif"):
			format = "blif"
		}
	}
	if format == "" {
		format = sniffFormat(body)
	}
	switch format {
	case "blif":
		net, err := network.ReadBLIF(bytes.NewReader(body))
		if err != nil {
			return nil, "", failCode(codeBadSpec, "parsing BLIF: %v", err)
		}
		return net, net.Name, nil
	case "pla":
		p, err := sop.ParsePLA(bytes.NewReader(body))
		if err != nil {
			return nil, "", failCode(codeBadSpec, "parsing PLA: %v", err)
		}
		net := network.FromPLA(p)
		return net, net.Name, nil
	}
	return nil, "", failCode(codeBadFormat,
		"cannot tell PLA from BLIF; send ?format=pla|blif, a pla/blif Content-Type, or a body starting with a format directive")
}

// sniffFormat looks at the first directive line: .model/.inputs/
// .outputs/.names open a BLIF, .i/.o/.p/.ilb/.ob/.type open a PLA.
func sniffFormat(body []byte) string {
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		field := line
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			field = line[:i]
		}
		switch field {
		case ".model", ".inputs", ".outputs", ".names", ".exdc":
			return "blif"
		case ".i", ".o", ".p", ".ilb", ".ob", ".type", ".mv":
			return "pla"
		}
		return ""
	}
	return ""
}

// readAll reads r to EOF. Split out so the error classification in
// synthesize stays readable.
func readAll(r interface{ Read([]byte) (int, error) }) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r)
	return buf.Bytes(), err
}

// isTimeout reports whether err looks like a read-deadline expiry.
func isTimeout(err error) bool {
	var to interface{ Timeout() bool }
	if errors.As(err, &to) && to.Timeout() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded) ||
		strings.Contains(err.Error(), "timeout") ||
		strings.Contains(err.Error(), "deadline")
}

// registerFlight adds one in-flight synthesis to the brownout victim
// registry and returns its handle.
func (s *Server) registerFlight(g grant, cancel context.CancelFunc) int64 {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	s.flightSeq++
	id := s.flightSeq
	s.flights[id] = &flightRec{
		weight: int64(g.BDDNodes) + int64(g.OFDDNodes) + g.Cubes,
		cancel: cancel,
	}
	return id
}

func (s *Server) unregisterFlight(id int64) {
	s.flightMu.Lock()
	delete(s.flights, id)
	s.flightMu.Unlock()
}

// flightForced reports whether the brownout monitor picked this flight.
func (s *Server) flightForced(id int64) bool {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	r, ok := s.flights[id]
	return ok && r.forced
}

// forceDegradeLargest is the brownout monitor's shed action: cancel the
// run context of the largest-budget in-flight synthesis not already
// forced. The flight drains through the degradation ladder and returns
// a verified, brownout-attributed degraded result — memory is
// reclaimed without dropping a single response.
func (s *Server) forceDegradeLargest() bool {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	var (
		bestID int64
		best   *flightRec
	)
	for id, r := range s.flights {
		if r.forced {
			continue
		}
		if best == nil || r.weight > best.weight || (r.weight == best.weight && id < bestID) {
			bestID, best = id, r
		}
	}
	if best == nil {
		return false
	}
	best.forced = true
	best.cancel()
	return true
}

// Cache exposes the result cache for introspection (tests, metrics).
func (s *Server) Cache() *sigcache.Cache { return s.cache }

// Metrics returns a point-in-time Prometheus rendering, for tests and
// the drain-time flush.
func (s *Server) Metrics() string {
	var b bytes.Buffer
	s.metrics.write(&b, s.snapshot())
	return b.String()
}

// snapshot gathers the scrape-time samples that live outside the
// metrics struct: cache tiers, admission limiter, brownout monitor.
func (s *Server) snapshot() statsSnapshot {
	snap := statsSnapshot{
		cacheLen:     s.cache.Len(),
		cacheBytes:   s.cache.Bytes(),
		memEvictions: s.cache.Evictions(),
		limEffective: s.lim.Effective(),
		limInSystem:  s.lim.InSystem(),
		limMax:       s.lim.max,
		limAdaptive:  s.lim.adaptive,
		limShrinks:   s.lim.Shrinks(),
	}
	if d := s.cache.Disk(); d != nil {
		st := d.Stats()
		snap.disk = &st
	}
	snap.brownActive, snap.brownTransitions, snap.brownExits, snap.brownForced, snap.brownUsage, snap.brownSoft = s.brown.stats()
	return snap
}

// QueueCapacity reports Workers+QueueDepth — the static admission
// bound, which the overload tests size their bursts against.
func (s *Server) QueueCapacity() int { return s.lim.max }

// EffectiveLimit reports the limiter's current cap — equal to
// QueueCapacity when static, AIMD-moved when adaptive.
func (s *Server) EffectiveLimit() int { return s.lim.Effective() }

// BrownoutActive reports whether the memory brownout is engaged.
func (s *Server) BrownoutActive() bool { return s.brown.Active() }

var _ fmt.Stringer = sigcache.Source(0) // metrics.cache relies on this
