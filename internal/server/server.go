// Package server implements rmsynd, the fault-contained HTTP/JSON front
// end on core.Synthesize. The request path is a fixed gauntlet —
// admission (bounded queue, explicit shedding) → budget derivation
// (headers clamped by policy) → content-addressed cache (single-flight)
// → bounded worker pool → synthesis under the degradation ladder →
// server-side re-verification — and every fault along it maps to a
// structured rmsynd/v1 error, never a crashed process or a silent lie.
// See DESIGN.md §11 for the architecture and failure taxonomy.
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sigcache"
	"repro/internal/sop"
	"repro/internal/verify"
)

// Hooks are the server-level fault-injection points, mirroring
// core.ProbeHooks: nil-safe, test-only, compiled in because chaos
// coverage of the real request path is a feature of the build, not of a
// special test binary. All hooks run inside the request's panic
// containment.
type Hooks struct {
	// JobStart runs when a request wins its worker-pool slots, before
	// synthesis. A plan can block here (queue pressure), panic here
	// (worker-pool trip), or record scheduling.
	JobStart func(circuit string)
	// MutateResult runs on the synthesized network before verification
	// and caching — the cache-poisoning attempt. The server-side
	// re-verification must catch whatever it does.
	MutateResult func(n *network.Network)
	// CoreHooks supplies per-request core-level probes, letting a plan
	// drive the library's fault points through the HTTP path.
	CoreHooks func() *core.ProbeHooks
}

// Config sizes the server. Zero values mean the documented defaults.
type Config struct {
	// Workers is the global derivation pool shared by every request
	// (default GOMAXPROCS). A request's granted worker count is taken
	// from this pool for the duration of its synthesis.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for workers
	// beyond the ones running (default 2×Workers). Admission beyond
	// Workers+QueueDepth is shed with 429.
	QueueDepth int
	// MaxBodyBytes caps the request body (default 4 MiB).
	MaxBodyBytes int64
	// ReadTimeout bounds reading the request body once the handler has
	// it (default 10s) — the slow-loris fence.
	ReadTimeout time.Duration
	// Policy clamps per-request grants.
	Policy Policy
	// CacheEntries / CacheBytes bound the result cache (defaults per
	// sigcache.New).
	CacheEntries int
	CacheBytes   int64
	// SigNodeCap bounds the BDD build of cache signatures (default
	// sigcache.DefaultSigNodeCap).
	SigNodeCap int
	// Hooks injects faults; nil in production.
	Hooks *Hooks
}

// Server is one rmsynd instance. Create with New, serve via ServeHTTP
// (it is an http.Handler), stop with Shutdown.
type Server struct {
	cfg     Config
	pool    *sem
	admit   chan struct{}
	cache   *sigcache.Cache
	metrics *metrics
	mux     *http.ServeMux

	// baseCtx parents every synthesis run: flights are detached from
	// client connections (a disconnect must not kill work that
	// coalesced requests or the cache will still want) but not from the
	// server's own lifetime.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	draining bool
	jobs     sync.WaitGroup
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	} else if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.Policy == (Policy{}) {
		cfg.Policy = DefaultPolicy()
	}
	if cfg.SigNodeCap <= 0 {
		cfg.SigNodeCap = sigcache.DefaultSigNodeCap
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		pool:       newSem(cfg.Workers),
		admit:      make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		cache:      sigcache.New(cfg.CacheEntries, cfg.CacheBytes),
		metrics:    newMetrics(),
		mux:        http.NewServeMux(),
		baseCtx:    ctx,
		cancelBase: cancel,
	}
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// BeginDrain stops admitting new synthesis requests: admission returns
// 503 draining, /healthz flips unhealthy (so load balancers stop
// routing), in-flight requests keep running.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.metrics.draining.Store(true)
}

// ForceCancel cancels the base context: every in-flight synthesis
// budget trips and the flows drain through the degradation ladder,
// producing truthful degraded responses rather than hung connections.
func (s *Server) ForceCancel() { s.cancelBase() }

// Shutdown drains gracefully: stop admitting, wait for in-flight work,
// and if ctx expires first, force-cancel so the remaining flights
// degrade and finish. It returns once every request handler is done.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.ForceCancel()
		<-done
		return ctx.Err()
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// tryEnter registers a request with the drain barrier. The flag and the
// WaitGroup share a mutex so no Add can race a Wait that already saw
// the drained state.
func (s *Server) tryEnter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.jobs.Add(1)
	return true
}

// handleSynthesize is the request gauntlet. Order matters: drain check
// and admission run before the body is read, so an overloaded or
// draining server sheds load without paying for parsing.
func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	if !s.tryEnter() {
		s.metrics.outcome(codeDraining)
		writeError(w, failCode(codeDraining, "server is draining; retry against another instance"), 5)
		return
	}
	defer s.jobs.Done()

	// Admission: one token per request in the system (queued or
	// running). A full channel is the overload signal — shed loudly.
	select {
	case s.admit <- struct{}{}:
		s.metrics.admitted.Add(1)
	default:
		s.metrics.shed.Add(1)
		s.metrics.outcome(codeQueueFull)
		writeError(w, failCode(codeQueueFull, "admission queue full (%d in system)", cap(s.admit)), 1)
		return
	}
	defer func() {
		<-s.admit
		s.metrics.admitted.Add(-1)
	}()

	code := s.synthesize(w, r)
	s.metrics.outcome(code)
}

// synthesize runs one admitted request end to end and returns the
// outcome code ("" for success) for metrics.
func (s *Server) synthesize(w http.ResponseWriter, r *http.Request) string {
	// Slow-loris fence: the body must arrive within ReadTimeout.
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) // best-effort; nil-checked below via read errors
	body, rerr := readAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if rerr != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(rerr, &tooBig):
			writeError(w, failCode(codeSpecTooLarge, "request body exceeds %d bytes", s.cfg.MaxBodyBytes), 0)
			return codeSpecTooLarge
		case isTimeout(rerr):
			writeError(w, failCode(codeReadTimeout, "request body not received within %s", s.cfg.ReadTimeout), 0)
			return codeReadTimeout
		default:
			writeError(w, failCode(codeBadSpec, "reading request body: %v", rerr), 0)
			return codeBadSpec
		}
	}
	rc.SetReadDeadline(time.Time{})

	spec, circuit, perr := parseSpec(body, r)
	if perr != nil {
		writeError(w, perr, 0)
		return perr.code
	}

	g, gerr := parseGrant(r.Header, s.cfg.Policy, s.cfg.Workers)
	if gerr != nil {
		writeError(w, failCode(codeBadOption, "%v", gerr), 0)
		return codeBadOption
	}

	// Content address: functionally identical submissions — reordered
	// cover rows, renamed internal signals, regenerated files — land on
	// the same entry. A cache bypass still coalesces with identical
	// in-flight work (flightKey), it just skips the stored entry.
	sig := sigcache.Signature(spec, s.cfg.SigNodeCap)
	storeKey := sig + "|" + g.flowKey()
	if g.NoCache {
		storeKey = ""
	}
	flightKey := sig + "|" + g.flightKey()

	start := time.Now()
	var degradations int
	entry, src, ferr := s.cache.GetOrDo(r.Context(), storeKey, flightKey,
		func() (e *sigcache.Entry, cacheable bool, err error) {
			e, degradations, err = s.runFlight(circuit, spec, g)
			return e, err == nil && degradations == 0, err
		})

	// The client may have left while its flight (or the one it
	// coalesced onto) was still running; the work itself continues
	// under baseCtx and can still populate the cache.
	if r.Context().Err() != nil && ferr != nil {
		s.metrics.abandon.Add(1)
		return "abandoned"
	}
	if ferr != nil {
		var re *reqError
		if !errors.As(ferr, &re) {
			re = failCode(codeInternal, "%v", ferr)
		}
		retry := 0
		if re.code == codeQueueTimeout {
			retry = 1
		}
		writeError(w, re, retry)
		return re.code
	}

	s.metrics.cache(src)
	if degradations > 0 {
		s.metrics.degraded.Add(1)
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Rmsynd-Cache", src.String())
	h.Set("X-Rmsynd-Elapsed-Ms", strconv.FormatInt(time.Since(start).Milliseconds(), 10))
	h.Set("X-Rmsynd-Granted-Timeout-Ms", strconv.FormatInt(g.Timeout.Milliseconds(), 10))
	h.Set("X-Rmsynd-Granted-Workers", strconv.Itoa(g.Workers))
	h.Set("X-Rmsynd-Granted-Max-Bdd-Nodes", strconv.Itoa(g.BDDNodes))
	h.Set("X-Rmsynd-Granted-Max-Cubes", strconv.FormatInt(g.Cubes, 10))
	h.Set("X-Rmsynd-Granted-Basis", g.Basis.String())
	w.WriteHeader(http.StatusOK)
	w.Write(entry.Body)
	return ""
}

// runFlight is the flight leader's job: worker acquisition, hooks,
// synthesis, poisoning-proof verification, serialization. Panics
// anywhere inside — hooks, core phases outside their own recover, the
// serializer — are contained here and become a structured 500.
func (s *Server) runFlight(circuit string, spec *network.Network, g grant) (entry *sigcache.Entry, degradations int, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.metrics.panics.Add(1)
			entry, err = nil, failCode(codeInternal, "request panicked: %v", p)
		}
	}()

	// The whole flight — queueing for workers included — lives inside
	// the granted wall clock, parented on the server, not the client.
	ctx, cancel := context.WithTimeout(s.baseCtx, g.Timeout)
	defer cancel()

	if aerr := s.pool.Acquire(ctx, g.Workers); aerr != nil {
		return nil, 0, failCode(codeQueueTimeout, "no workers within the %s budget: %v", g.Timeout, aerr)
	}
	defer s.pool.Release(g.Workers)
	// Inflight counts synthesizing requests only; admitted-but-queued
	// ones show up in the queue-depth gauge instead.
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	if s.cfg.Hooks != nil && s.cfg.Hooks.JobStart != nil {
		s.cfg.Hooks.JobStart(circuit)
	}

	opt := g.coreOptions()
	opt.Obs = obs.NewCollector()
	if s.cfg.Hooks != nil && s.cfg.Hooks.CoreHooks != nil {
		opt.Hooks = s.cfg.Hooks.CoreHooks()
	}

	res, serr := core.Synthesize(ctx, spec, opt)
	if serr != nil {
		if errors.Is(serr, core.ErrNotEquivalent) {
			return nil, 0, failCode(codeNotEquivalent, "%v", serr)
		}
		return nil, 0, failCode(codeSynthFailed, "%v", serr)
	}
	s.metrics.absorb(opt.Obs.Snapshot())

	if s.cfg.Hooks != nil && s.cfg.Hooks.MutateResult != nil {
		s.cfg.Hooks.MutateResult(res.Network)
	}

	// Trust nothing that is about to be cached: re-verify the result by
	// simulation against the parsed spec. This is what turns a cache
	// poisoning attempt into a truthful 500 instead of a durable lie.
	verified, verr := verifyBySim(spec, res.Network)
	if verr != nil || !verified {
		detail := "result network is not equivalent to the specification"
		if verr != nil {
			detail = verr.Error()
		}
		return nil, 0, failCode(codeNotEquivalent, "server-side verification failed: %s", detail)
	}

	bodyBytes, berr := buildBody(circuit, spec, res, g, true)
	if berr != nil {
		return nil, 0, failCode(codeInternal, "serializing response: %v", berr)
	}
	return &sigcache.Entry{
		Body:     bodyBytes,
		Flow:     g.flowString(),
		Gates2:   res.Stats.Gates2,
		Literals: res.Stats.Lits,
	}, len(res.Degradations), nil
}

// verifyBySim checks the result against the spec by simulation:
// exhaustive up to 16 inputs, 2048 fixed-seed random vectors beyond —
// bounded cost, independent of the BDD machinery a poisoned run might
// have corrupted.
func verifyBySim(spec, got *network.Network) (bool, error) {
	if spec.NumPIs() <= 16 {
		return verify.Exhaustive(spec, got)
	}
	bad, err := verify.RandomCheck(spec, got, 2048, 1)
	if err != nil {
		return false, err
	}
	return bad < 0, nil
}

// parseSpec decodes the request body as PLA or BLIF, picking the format
// from ?format=, Content-Type, or the first directive in the body.
func parseSpec(body []byte, r *http.Request) (*network.Network, string, *reqError) {
	format := r.URL.Query().Get("format")
	if format == "" {
		switch ct := r.Header.Get("Content-Type"); {
		case strings.Contains(ct, "pla"):
			format = "pla"
		case strings.Contains(ct, "blif"):
			format = "blif"
		}
	}
	if format == "" {
		format = sniffFormat(body)
	}
	switch format {
	case "blif":
		net, err := network.ReadBLIF(bytes.NewReader(body))
		if err != nil {
			return nil, "", failCode(codeBadSpec, "parsing BLIF: %v", err)
		}
		return net, net.Name, nil
	case "pla":
		p, err := sop.ParsePLA(bytes.NewReader(body))
		if err != nil {
			return nil, "", failCode(codeBadSpec, "parsing PLA: %v", err)
		}
		net := network.FromPLA(p)
		return net, net.Name, nil
	}
	return nil, "", failCode(codeBadFormat,
		"cannot tell PLA from BLIF; send ?format=pla|blif, a pla/blif Content-Type, or a body starting with a format directive")
}

// sniffFormat looks at the first directive line: .model/.inputs/
// .outputs/.names open a BLIF, .i/.o/.p/.ilb/.ob/.type open a PLA.
func sniffFormat(body []byte) string {
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		field := line
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			field = line[:i]
		}
		switch field {
		case ".model", ".inputs", ".outputs", ".names", ".exdc":
			return "blif"
		case ".i", ".o", ".p", ".ilb", ".ob", ".type", ".mv":
			return "pla"
		}
		return ""
	}
	return ""
}

// readAll reads r to EOF. Split out so the error classification in
// synthesize stays readable.
func readAll(r interface{ Read([]byte) (int, error) }) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r)
	return buf.Bytes(), err
}

// isTimeout reports whether err looks like a read-deadline expiry.
func isTimeout(err error) bool {
	var to interface{ Timeout() bool }
	if errors.As(err, &to) && to.Timeout() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded) ||
		strings.Contains(err.Error(), "timeout") ||
		strings.Contains(err.Error(), "deadline")
}

// Cache exposes the result cache for introspection (tests, metrics).
func (s *Server) Cache() *sigcache.Cache { return s.cache }

// Metrics returns a point-in-time Prometheus rendering, for tests and
// the drain-time flush.
func (s *Server) Metrics() string {
	var b bytes.Buffer
	s.metrics.write(&b, s.cache.Len(), s.cache.Bytes())
	return b.String()
}

// QueueCapacity reports Workers+QueueDepth — the admission bound, which
// the overload tests size their bursts against.
func (s *Server) QueueCapacity() int { return cap(s.admit) }

var _ fmt.Stringer = sigcache.Source(0) // metrics.cache relies on this
