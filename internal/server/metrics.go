package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sigcache"
)

// metrics is the server's observability surface: request outcomes,
// admission pressure, cache effectiveness, and the aggregated pipeline
// counters from every request's obs.Collector. Everything is atomic so
// the hot path never takes the rendering lock.
type metrics struct {
	admitted atomic.Int64 // admission tokens currently held (queued + running)
	inflight atomic.Int64 // requests currently synthesizing
	shed     atomic.Int64 // requests refused with 429
	abandon  atomic.Int64 // clients gone before their flight finished

	cacheHit       atomic.Int64
	cacheMiss      atomic.Int64
	cacheCoalesced atomic.Int64
	cacheDiskHit   atomic.Int64 // served from the persistent tier (then promoted)

	degraded     atomic.Int64 // responses with a non-empty degradation ladder
	panics       atomic.Int64 // panics contained by the request boundary
	brownClamped atomic.Int64 // grants tightened by an active brownout

	diskOpenFailed atomic.Bool // persistent tier failed to open; memory-only

	// Aggregated pipeline counters (summed obs snapshots).
	bddUniqueHits, bddUniqueMisses atomic.Int64
	bddOpHits, bddOpMisses         atomic.Int64
	ofddUniqueHits, ofddOpHits     atomic.Int64
	factorRules, factorDivHits     atomic.Int64

	mu       sync.Mutex
	byCode   map[string]int64 // responses by error code ("" = success)
	draining atomic.Bool
}

func newMetrics() *metrics {
	return &metrics{byCode: make(map[string]int64)}
}

// outcome records one finished response under its error code ("" for a
// 200).
func (m *metrics) outcome(code string) {
	m.mu.Lock()
	m.byCode[code]++
	m.mu.Unlock()
}

// absorb folds one request's pipeline counters into the totals.
func (m *metrics) absorb(s obs.Stats) {
	m.bddUniqueHits.Add(s.BDD.UniqueHits)
	m.bddUniqueMisses.Add(s.BDD.UniqueMisses)
	m.bddOpHits.Add(s.BDD.OpHits)
	m.bddOpMisses.Add(s.BDD.OpMisses)
	m.ofddUniqueHits.Add(s.OFDD.UniqueHits)
	m.ofddOpHits.Add(s.OFDD.OpHits)
	m.factorRules.Add(s.Factor.RuleA + s.Factor.RuleB + s.Factor.RuleC + s.Factor.RuleD + s.Factor.RuleE)
	m.factorDivHits.Add(s.Factor.DivisorHits)
}

func (m *metrics) cache(src fmt.Stringer) {
	switch src.String() {
	case "hit":
		m.cacheHit.Add(1)
	case "coalesced":
		m.cacheCoalesced.Add(1)
	case "disk":
		m.cacheDiskHit.Add(1)
	default:
		m.cacheMiss.Add(1)
	}
}

// statsSnapshot carries the scrape-time samples that live outside the
// metrics struct — cache tiers, admission limiter, brownout monitor —
// gathered by Server.snapshot so write stays a pure renderer.
type statsSnapshot struct {
	cacheLen     int
	cacheBytes   int64
	memEvictions int64
	disk         *sigcache.DiskStats // nil when no persistent tier is attached

	limEffective int
	limInSystem  int
	limMax       int
	limAdaptive  bool
	limShrinks   int64

	brownActive      bool
	brownTransitions int64
	brownExits       int64
	brownForced      int64
	brownUsage       uint64
	brownSoft        uint64
}

// write renders the Prometheus text exposition over the scrape-time
// snapshot.
func (m *metrics) write(w io.Writer, snap statsSnapshot) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	admitted := m.admitted.Load()
	running := m.inflight.Load()
	queued := admitted - running
	if queued < 0 {
		queued = 0
	}
	gauge("rmsynd_inflight", "requests currently synthesizing", running)
	gauge("rmsynd_queue_depth", "admitted requests waiting for workers", queued)
	drain := int64(0)
	if m.draining.Load() {
		drain = 1
	}
	gauge("rmsynd_draining", "1 while the server is draining after SIGTERM", drain)

	// Admission limiter: how many slots exist right now vs the static
	// ceiling, and how often the AIMD loop has cut capacity.
	gauge("rmsynd_admission_limit", "current effective in-system cap (AIMD-moved when adaptive)", int64(snap.limEffective))
	gauge("rmsynd_admission_in_system", "requests currently holding an admission slot", int64(snap.limInSystem))
	gauge("rmsynd_admission_capacity", "static admission ceiling (workers+queue depth)", int64(snap.limMax))
	adaptive := int64(0)
	if snap.limAdaptive {
		adaptive = 1
	}
	gauge("rmsynd_admission_adaptive", "1 when the AIMD limiter is enabled", adaptive)
	counter("rmsynd_admission_shrinks_total", "multiplicative decreases of the effective cap", snap.limShrinks)

	// Memory brownout monitor.
	brown := int64(0)
	if snap.brownActive {
		brown = 1
	}
	gauge("rmsynd_brownout_active", "1 while heap usage is over the soft limit", brown)
	counter("rmsynd_brownout_transitions_total", "times the brownout engaged", snap.brownTransitions)
	counter("rmsynd_brownout_exits_total", "times the brownout cleared", snap.brownExits)
	counter("rmsynd_brownout_forced_total", "in-flight budgets force-degraded by the brownout", snap.brownForced)
	counter("rmsynd_brownout_clamped_total", "grants tightened at admission during a brownout", m.brownClamped.Load())
	gauge("rmsynd_mem_usage_bytes", "last sampled heap usage (0 when no monitor)", int64(snap.brownUsage))
	gauge("rmsynd_mem_soft_limit_bytes", "configured brownout soft limit (0 when disabled)", int64(snap.brownSoft))

	counter("rmsynd_shed_total", "requests refused with 429 at admission", m.shed.Load())
	counter("rmsynd_abandoned_total", "clients gone before their result was ready", m.abandon.Load())
	counter("rmsynd_degraded_total", "responses carrying a non-empty degradation ladder", m.degraded.Load())
	counter("rmsynd_panics_total", "panics contained by the request boundary", m.panics.Load())

	counter("rmsynd_cache_hits_total", "requests served from the in-memory result cache", m.cacheHit.Load())
	counter("rmsynd_cache_disk_hits_total", "requests served from the persistent cache tier", m.cacheDiskHit.Load())
	counter("rmsynd_cache_misses_total", "requests that ran a synthesis", m.cacheMiss.Load())
	counter("rmsynd_cache_coalesced_total", "requests collapsed onto an identical in-flight synthesis", m.cacheCoalesced.Load())
	counter("rmsynd_cache_evictions_total", "entries evicted from the in-memory result cache", snap.memEvictions)
	gauge("rmsynd_cache_entries", "result cache entries (memory tier)", int64(snap.cacheLen))
	gauge("rmsynd_cache_bytes", "result cache body bytes (memory tier)", snap.cacheBytes)
	diskFailed := int64(0)
	if m.diskOpenFailed.Load() {
		diskFailed = 1
	}
	gauge("rmsynd_cache_disk_open_failed", "1 when the persistent tier failed to open (running memory-only)", diskFailed)
	if d := snap.disk; d != nil {
		gauge("rmsynd_sigcache_disk_entries", "persistent cache entries", int64(d.Entries))
		gauge("rmsynd_sigcache_disk_bytes", "persistent cache bytes on disk", d.Bytes)
		counter("rmsynd_sigcache_disk_reads_total", "persistent tier reads that verified and served", d.Hits)
		counter("rmsynd_sigcache_disk_read_misses_total", "persistent tier lookups that missed", d.Misses)
		counter("rmsynd_sigcache_scan_recovered_total", "entries recovered by the startup scan", d.ScanRecovered)
		counter("rmsynd_sigcache_quarantined_total", "corrupt entries quarantined (scan or read time)", d.Quarantined)
		counter("rmsynd_sigcache_aborted_writes_total", "tmp debris from interrupted writes removed at scan", d.Aborted)
		counter("rmsynd_sigcache_disk_evictions_total", "persistent entries evicted by the byte bound", d.Evictions)
		counter("rmsynd_sigcache_write_errors_total", "persistent tier write failures (entry served uncached)", d.WriteErrors)
	}

	// Responses by code, stable order for scrape diffing.
	fmt.Fprintf(w, "# HELP rmsynd_responses_total responses by error code (code=\"ok\" for 200s)\n# TYPE rmsynd_responses_total counter\n")
	m.mu.Lock()
	codes := make([]string, 0, len(m.byCode))
	for c := range m.byCode {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		label := c
		if label == "" {
			label = "ok"
		}
		fmt.Fprintf(w, "rmsynd_responses_total{code=%q} %d\n", label, m.byCode[c])
	}
	m.mu.Unlock()

	counter("rmsynd_obs_bdd_unique_hits_total", "aggregated BDD unique-table hits", m.bddUniqueHits.Load())
	counter("rmsynd_obs_bdd_unique_misses_total", "aggregated BDD unique-table misses", m.bddUniqueMisses.Load())
	counter("rmsynd_obs_bdd_op_hits_total", "aggregated BDD op-cache hits", m.bddOpHits.Load())
	counter("rmsynd_obs_bdd_op_misses_total", "aggregated BDD op-cache misses", m.bddOpMisses.Load())
	counter("rmsynd_obs_ofdd_unique_hits_total", "aggregated OFDD unique-table hits", m.ofddUniqueHits.Load())
	counter("rmsynd_obs_ofdd_op_hits_total", "aggregated OFDD op-cache hits", m.ofddOpHits.Load())
	counter("rmsynd_obs_factor_rule_applications_total", "aggregated Section 3 rule applications", m.factorRules.Load())
	counter("rmsynd_obs_factor_divisor_hits_total", "aggregated divisor-registry hits", m.factorDivHits.Load())
}

// handleMetrics serves the Prometheus exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, s.snapshot())
}
