package server

// Memory brownout (DESIGN.md §14): per-request node/cube caps do not
// compose into a process-wide bound — N concurrent wide cones can each
// be inside their own budget while their sum OOMs the process. The
// brownout monitor watches actual heap usage against a soft cap and,
// when crossed, sheds *work* instead of dying: new requests are granted
// tightened budget clamps (and hedged races are collapsed to one arm),
// and the largest in-flight budgets are force-degraded through the
// existing ladder by cancelling their run contexts — the same mechanism
// the drain grace period uses, so every affected request still returns
// a verified, truthfully-attributed degraded result. Hysteresis (exit
// at 7/8 of the cap) keeps the state machine from flapping on the GC
// sawtooth.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// brownoutExitNum/Den: brownout exits when usage falls below
	// soft * 7/8 — the hysteresis band.
	brownoutExitNum = 7
	brownoutExitDen = 8
	// brownoutPollInterval is the default watermark sampling period.
	brownoutPollInterval = 250 * time.Millisecond
	// brownoutBudgetDiv divides every granted node/cube/step budget
	// while the brownout is active.
	brownoutBudgetDiv = 4
)

// brownout is the process-wide memory watermark monitor. A nil
// *brownout (no soft cap configured) is inert: Active reports false and
// Stop is a no-op.
type brownout struct {
	soft     uint64
	exit     uint64
	interval time.Duration
	probe    func() uint64 // current heap usage; nil means ReadMemStats

	// forceDegrade cancels the largest not-yet-forced in-flight budget
	// and reports whether one was found. Supplied by the Server.
	forceDegrade func() bool

	active      atomic.Bool
	transitions atomic.Int64 // enter events (exits are transitions-…; both counted)
	exits       atomic.Int64
	forced      atomic.Int64 // in-flight budgets force-degraded
	lastUsage   atomic.Uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// newBrownout builds and starts the monitor goroutine. soft == 0
// disables the monitor entirely (returns nil).
func newBrownout(soft uint64, interval time.Duration, probe func() uint64, forceDegrade func() bool) *brownout {
	if soft == 0 {
		return nil
	}
	if interval <= 0 {
		interval = brownoutPollInterval
	}
	if probe == nil {
		probe = heapUsage
	}
	b := &brownout{
		soft:         soft,
		exit:         soft * brownoutExitNum / brownoutExitDen,
		interval:     interval,
		probe:        probe,
		forceDegrade: forceDegrade,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	go b.run()
	return b
}

// heapUsage is the production probe: live heap bytes. ReadMemStats
// stops the world briefly; at the default 250 ms period that cost is
// noise next to one BDD operation.
func heapUsage() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func (b *brownout) run() {
	defer close(b.done)
	t := time.NewTicker(b.interval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.sample()
		}
	}
}

// sample runs one control-loop step. Exported logic kept on its own so
// tests can drive the state machine deterministically without waiting
// on the ticker.
func (b *brownout) sample() {
	u := b.probe()
	b.lastUsage.Store(u)
	switch {
	case u > b.soft:
		if b.active.CompareAndSwap(false, true) {
			b.transitions.Add(1)
		}
		// One forced degradation per sample while over the cap: the
		// largest in-flight budget is cancelled and drains through the
		// ladder, freeing its managers. Pace of one per interval keeps
		// the response proportional — a single sample spike does not
		// flush every flight.
		if b.forceDegrade != nil && b.forceDegrade() {
			b.forced.Add(1)
		}
		// Help the pacer reclaim what the degraded flights just dropped.
		runtime.GC()
	case u < b.exit:
		if b.active.CompareAndSwap(true, false) {
			b.exits.Add(1)
		}
	}
	// Between exit and soft: hysteresis band, hold the current state.
}

// Active reports whether the brownout is currently engaged.
func (b *brownout) Active() bool { return b != nil && b.active.Load() }

// Stop terminates the monitor goroutine. Idempotent — Shutdown may be
// called more than once.
func (b *brownout) Stop() {
	if b == nil {
		return
	}
	b.stopOnce.Do(func() {
		close(b.stop)
		<-b.done
	})
}

// stats snapshot for /metrics.
func (b *brownout) stats() (active bool, transitions, exits, forced int64, usage, soft uint64) {
	if b == nil {
		return false, 0, 0, 0, 0, 0
	}
	return b.active.Load(), b.transitions.Load(), b.exits.Load(), b.forced.Load(), b.lastUsage.Load(), b.soft
}
