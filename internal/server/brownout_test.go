package server

import (
	"testing"
	"time"

	"repro/internal/core"
)

// testBrownout builds a monitor without its goroutine so tests can
// drive sample() deterministically.
func testBrownout(soft uint64, probe func() uint64, force func() bool) *brownout {
	return &brownout{
		soft:         soft,
		exit:         soft * brownoutExitNum / brownoutExitDen,
		probe:        probe,
		forceDegrade: force,
	}
}

// TestBrownoutHysteresis walks the watermark through the full cycle:
// engage above the soft cap, hold through the hysteresis band, clear
// below the exit line — no flapping at the boundary.
func TestBrownoutHysteresis(t *testing.T) {
	var usage uint64
	forced := 0
	b := testBrownout(1000, func() uint64 { return usage }, func() bool { forced++; return true })

	usage = 900 // below soft: stays off
	b.sample()
	if b.Active() {
		t.Fatal("engaged below the soft cap")
	}
	usage = 1100 // over: engages, forces one degradation
	b.sample()
	if !b.Active() {
		t.Fatal("did not engage over the soft cap")
	}
	if forced != 1 {
		t.Fatalf("forced %d degradations on the first over-sample, want 1", forced)
	}
	usage = 950 // in the band (exit=875): holds active, no more forcing
	b.sample()
	if !b.Active() {
		t.Fatal("cleared inside the hysteresis band")
	}
	if forced != 1 {
		t.Fatalf("forced inside the band (%d total)", forced)
	}
	usage = 800 // below exit: clears
	b.sample()
	if b.Active() {
		t.Fatal("did not clear below the exit line")
	}
	usage = 950 // band again, from below: stays off
	b.sample()
	if b.Active() {
		t.Fatal("re-engaged inside the band — hysteresis is broken")
	}
	if tr := b.transitions.Load(); tr != 1 {
		t.Errorf("transitions = %d, want 1", tr)
	}
	if ex := b.exits.Load(); ex != 1 {
		t.Errorf("exits = %d, want 1", ex)
	}
}

// TestBrownoutForcesPerSample: each over-cap sample forces at most one
// in-flight degradation — the response stays proportional to how long
// the pressure lasts.
func TestBrownoutForcesPerSample(t *testing.T) {
	victims := 3
	b := testBrownout(1000, func() uint64 { return 2000 }, func() bool {
		if victims == 0 {
			return false
		}
		victims--
		return true
	})
	for i := 0; i < 5; i++ {
		b.sample()
	}
	if victims != 0 {
		t.Errorf("%d victims left after 5 over-samples", victims)
	}
	if f := b.forced.Load(); f != 3 {
		t.Errorf("forced = %d, want 3 (callback said no more)", f)
	}
}

// TestBrownoutDisabledAndStop: soft==0 means no monitor — the nil
// *brownout must be safe everywhere — and Stop is idempotent.
func TestBrownoutDisabledAndStop(t *testing.T) {
	var b *brownout // what newBrownout(0, ...) returns
	if nb := newBrownout(0, 0, nil, nil); nb != nil {
		t.Fatal("soft=0 built a monitor")
	}
	if b.Active() {
		t.Fatal("nil brownout reports active")
	}
	b.Stop() // must not panic

	real := newBrownout(1000, time.Millisecond, func() uint64 { return 2000 }, nil)
	for i := 0; i < 500 && !real.Active(); i++ {
		time.Sleep(time.Millisecond)
	}
	if !real.Active() {
		t.Fatal("ticker-driven monitor never engaged")
	}
	real.Stop()
	real.Stop() // second Stop must not panic
}

// TestClampBrownout: budgets divide by brownoutBudgetDiv (unlimited
// ones first assume the default ceilings), tiny ones floor at 1 rather
// than dividing to 0 (= unlimited in core), and race collapses to auto.
func TestClampBrownout(t *testing.T) {
	g := grant{BDDNodes: 400, OFDDNodes: 0, Cubes: 2, Steps: 1 << 20, Basis: core.BasisRace}
	c := g.clampBrownout()
	if c.BDDNodes != 100 {
		t.Errorf("BDDNodes = %d, want 100", c.BDDNodes)
	}
	if want := DefaultPolicy().MaxOFDDNodes / brownoutBudgetDiv; c.OFDDNodes != want {
		t.Errorf("unlimited OFDDNodes clamped to %d, want default ceiling/4 = %d", c.OFDDNodes, want)
	}
	if c.Cubes != 1 {
		t.Errorf("Cubes = %d, want floor 1 (0 would mean unlimited)", c.Cubes)
	}
	if c.Steps != 1<<18 {
		t.Errorf("Steps = %d, want %d", c.Steps, 1<<18)
	}
	if c.Basis != core.BasisAuto {
		t.Errorf("race basis survived the clamp: %v", c.Basis)
	}
}
