package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// sem is a weighted FIFO counting semaphore: the bounded global worker
// pool every request draws its derivation workers from. FIFO ordering
// means a wide request queued behind narrow ones cannot be starved by a
// stream of later narrow acquisitions, and a request acquires all of its
// slots atomically — there are no partial holds to deadlock on.
type sem struct {
	size int

	mu      sync.Mutex
	cur     int
	waiters list.List // of *semWaiter, FIFO
}

type semWaiter struct {
	n     int
	ready chan struct{} // closed when granted
}

func newSem(size int) *sem {
	if size < 1 {
		size = 1
	}
	return &sem{size: size}
}

// Acquire blocks until n slots are free (and every earlier waiter is
// served) or ctx is done. n is clamped to the pool size so a request
// asking for more workers than exist degrades to "the whole pool".
func (s *sem) Acquire(ctx context.Context, n int) error {
	if n < 1 {
		n = 1
	}
	if n > s.size {
		n = s.size
	}
	s.mu.Lock()
	if s.size-s.cur >= n && s.waiters.Len() == 0 {
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	w := &semWaiter{n: n, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: give the slots
			// back (waking anyone behind us) and report the timeout.
			s.mu.Unlock()
			s.Release(n)
		default:
			s.waiters.Remove(elem)
			s.mu.Unlock()
		}
		return ctx.Err()
	}
}

// Release returns n slots (clamped as in Acquire) and serves waiters in
// FIFO order while they fit.
func (s *sem) Release(n int) {
	if n < 1 {
		n = 1
	}
	if n > s.size {
		n = s.size
	}
	s.mu.Lock()
	s.cur -= n
	if s.cur < 0 {
		s.mu.Unlock()
		panic(fmt.Sprintf("server: semaphore released below zero (%d)", s.cur))
	}
	for {
		front := s.waiters.Front()
		if front == nil {
			break
		}
		w := front.Value.(*semWaiter)
		if s.size-s.cur < w.n {
			break // FIFO: nobody overtakes the blocked head waiter
		}
		s.cur += w.n
		s.waiters.Remove(front)
		close(w.ready)
	}
	s.mu.Unlock()
}

// InUse returns the currently held slot count.
func (s *sem) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}
