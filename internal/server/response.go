package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/network"
)

// Schema identifies the service's JSON layout, request and response
// alike; bump on any incompatible change.
const Schema = "rmsynd/v1"

// Flow records which synthesis configuration produced a result — the
// per-entry provenance the cache keeps so a future basis-selection layer
// can reuse entries per flow.
type Flow struct {
	Method   string `json:"method"`
	Polarity string `json:"polarity"`
	Basis    string `json:"basis"`
	Rules    bool   `json:"rules"`
	Redund   bool   `json:"redund"`
	Merge    bool   `json:"merge"`
	ESOP     bool   `json:"esop"`
}

// Response is the rmsynd/v1 success body. Everything in it is a
// deterministic function of the specification and the flow — never of
// budgets, worker count, or wall clock — so a cache hit can replay the
// miss's bytes verbatim. Volatile per-request facts (cache source,
// elapsed time, the granted budget) travel in X-Rmsynd-* headers.
type Response struct {
	Schema  string `json:"schema"`
	Circuit string `json:"circuit"`
	PIs     int    `json:"pis"`
	POs     int    `json:"pos"`

	// Verified reports the server-side simulation check of the result
	// against the parsed specification (exhaustive up to 16 inputs,
	// random vectors beyond).
	Verified bool `json:"verified"`

	Flow Flow `json:"flow"`

	Gates2   int `json:"gates2"`
	Literals int `json:"literals"`
	XORs     int `json:"xors"`

	// NetworkBLIF is the synthesized multilevel network.
	NetworkBLIF string `json:"network_blif"`

	// Degradations is the graceful-degradation ladder's record for this
	// run — empty for a clean run, truthful for a budgeted one. Degraded
	// results are served but never cached.
	Degradations []core.DegradationStat `json:"degradations"`

	// Stats is the volatile-stripped rmstats/v1 pipeline report.
	Stats *core.RunStats `json:"stats"`
}

// ErrorBody is the rmsynd/v1 structured error: every non-200 response
// carries one, so a client never has to parse prose to learn what
// happened.
type ErrorBody struct {
	Schema string    `json:"schema"`
	Error  ErrorInfo `json:"error"`
}

// ErrorInfo names the fault. Code is stable vocabulary (see DESIGN.md
// §11's failure taxonomy); Message is human-readable detail.
type ErrorInfo struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Error codes. Each maps to exactly one HTTP status (httpStatus).
const (
	codeBadSpec       = "bad_spec"       // 400: unparseable PLA/BLIF
	codeBadOption     = "bad_option"     // 400: invalid X-Rmsynd-* header
	codeReadTimeout   = "read_timeout"   // 408: body arrived too slowly
	codeSpecTooLarge  = "spec_too_large" // 413: body over the size cap
	codeBadFormat     = "bad_format"     // 415: not recognizably PLA or BLIF
	codeQueueFull     = "queue_full"     // 429: admission queue full, shed
	codeInternal      = "internal"       // 500: contained panic
	codeNotEquivalent = "not_equivalent" // 500: result failed re-verification
	codeSynthFailed   = "synth_failed"   // 500: synthesis hard error
	codeDraining      = "draining"       // 503: SIGTERM received, not admitting
	codeQueueTimeout  = "queue_timeout"  // 503: budget expired waiting for workers
)

func httpStatus(code string) int {
	switch code {
	case codeBadSpec, codeBadOption:
		return http.StatusBadRequest
	case codeReadTimeout:
		return http.StatusRequestTimeout
	case codeSpecTooLarge:
		return http.StatusRequestEntityTooLarge
	case codeBadFormat:
		return http.StatusUnsupportedMediaType
	case codeQueueFull:
		return http.StatusTooManyRequests
	case codeDraining, codeQueueTimeout:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// reqError is the internal error type the request path threads around:
// a code plus detail, rendered by writeError.
type reqError struct {
	code string
	msg  string
}

func (e *reqError) Error() string { return e.code + ": " + e.msg }

func failCode(code, format string, args ...any) *reqError {
	return &reqError{code: code, msg: fmt.Sprintf(format, args...)}
}

// writeError renders the structured error. 429 and 503 carry a
// Retry-After so well-behaved clients back off instead of hammering;
// the caller supplies it in milliseconds, already jittered — a constant
// Retry-After synchronizes every client the shed wave turned away into
// the next one. The header is the ceiling in whole seconds (its wire
// granularity); the body carries the precise value.
func writeError(w http.ResponseWriter, e *reqError, retryMS int64) {
	status := httpStatus(e.code)
	body := ErrorBody{Schema: Schema, Error: ErrorInfo{Code: e.code, Message: e.msg}}
	if retryMS > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((retryMS+999)/1000, 10))
		body.Error.RetryAfterMS = retryMS
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		return
	}
	b = append(b, '\n')
	w.Write(b)
}

// buildBody serializes the deterministic success body for one result.
func buildBody(circuit string, spec *network.Network, res *core.Result, g grant, verified bool) ([]byte, error) {
	resp := Response{
		Schema:   Schema,
		Circuit:  circuit,
		PIs:      spec.NumPIs(),
		POs:      spec.NumPOs(),
		Verified: verified,
		Flow: Flow{
			Method:   map[core.Method]string{core.MethodOFDD: "ofdd"}[g.Method],
			Polarity: map[core.Polarity]string{core.PolarityPositive: "positive", core.PolarityExhaustive: "exhaustive"}[g.Polarity],
			Basis:    g.Basis.String(),
			Rules:    true,
			Redund:   true,
			Merge:    true,
		},
		Gates2:   res.Stats.Gates2,
		Literals: res.Stats.Lits,
		XORs:     res.Stats.XORs,
	}
	if resp.Flow.Method == "" {
		resp.Flow.Method = "cube"
	}
	if resp.Flow.Polarity == "" {
		resp.Flow.Polarity = "greedy"
	}
	var blif bytes.Buffer
	if err := res.Network.WriteBLIF(&blif); err != nil {
		return nil, err
	}
	resp.NetworkBLIF = blif.String()
	rs := res.RunStats(circuit)
	rs.StripVolatile()
	resp.Stats = rs
	resp.Degradations = rs.Degradations
	if resp.Degradations == nil {
		resp.Degradations = []core.DegradationStat{}
	}
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
