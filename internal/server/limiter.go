package server

// The admission limiter is the overload-control loop of rmsynd
// (DESIGN.md §14). Synthesis latency is wildly heterogeneous — FPRM
// polarity search and BDD builds range from microseconds to the full
// deadline on the same hardware — which is exactly the regime where a
// static in-system cap either under-utilizes (cap sized for the worst
// case) or melts down (cap sized for the average, queue full of heavy
// requests all missing their deadlines). The limiter runs AIMD over the
// effective cap instead: congestion signals (a shed, a request that
// burned its whole wall clock, a synthesis far above the moving latency
// baseline) shrink it multiplicatively; every healthy completion earns
// additive regrowth. The static gate remains available — and remains
// the default for the zero Config — by constructing the limiter with
// adaptive=false, in which case the cap is pinned to max and the
// control loop is inert.

import (
	"math/rand/v2"
	"sync"
	"time"
)

const (
	// limiterShrink is the multiplicative-decrease factor applied on a
	// congestion signal.
	limiterShrink = 0.7
	// limiterBaselineAlpha is the EWMA weight of one healthy synthesis
	// latency sample in the moving baseline.
	limiterBaselineAlpha = 0.2
	// limiterLatencyTrip: a synthesis this many times over the warmed
	// baseline counts as congestion even if it met its deadline.
	limiterLatencyTrip = 4.0
	// limiterWarmup is how many baseline samples must accumulate before
	// latency-vs-baseline comparisons fire (sheds and deadline misses
	// act from the first request).
	limiterWarmup = 10
	// limiterCooldown is the default minimum spacing between shrinks, so
	// one overload burst costs one multiplicative decrease, not one per
	// shed response.
	limiterCooldown = 250 * time.Millisecond
)

// limiter gates admission to the request path: one slot per request in
// the system (queued or synthesizing), with an effective cap that AIMD
// moves between 1 and the static capacity when adaptive, and that is
// pinned to the static capacity otherwise.
type limiter struct {
	adaptive bool
	max      int
	cooldown time.Duration

	mu         sync.Mutex
	limit      float64 // effective cap, in [1, max]
	inSystem   int
	ewmaMS     float64 // moving baseline of healthy synthesis latency
	samples    int64
	lastShrink time.Time
	shrinks    int64 // total multiplicative decreases, for /metrics
}

func newLimiter(max int, adaptive bool) *limiter {
	if max < 1 {
		max = 1
	}
	return &limiter{adaptive: adaptive, max: max, limit: float64(max), cooldown: limiterCooldown}
}

// tryAcquire claims an in-system slot if the effective cap allows it.
func (l *limiter) tryAcquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inSystem >= l.effectiveLocked() {
		return false
	}
	l.inSystem++
	return true
}

// release returns an in-system slot.
func (l *limiter) release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inSystem--
	if l.inSystem < 0 {
		panic("server: limiter released below zero")
	}
}

// effectiveLocked is the integer cap admission compares against; never
// below 1 so the server cannot wedge itself shut.
func (l *limiter) effectiveLocked() int {
	n := int(l.limit)
	if n < 1 {
		n = 1
	}
	if n > l.max {
		n = l.max
	}
	return n
}

// Effective returns the current integer cap.
func (l *limiter) Effective() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.effectiveLocked()
}

// InSystem returns the current slot holders (queued + synthesizing).
func (l *limiter) InSystem() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inSystem
}

// Shrinks returns the total number of multiplicative decreases.
func (l *limiter) Shrinks() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shrinks
}

// Baseline returns the moving latency baseline (0 until warmed).
func (l *limiter) Baseline() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.samples < limiterWarmup {
		return 0
	}
	return time.Duration(l.ewmaMS * float64(time.Millisecond))
}

// onShed records an admission refusal — the overload signal that exists
// even when no request completes — and shrinks the cap (cooldown-
// limited) when adaptive.
func (l *limiter) onShed() {
	if !l.adaptive {
		return
	}
	l.mu.Lock()
	l.shrinkLocked(time.Now())
	l.mu.Unlock()
}

// observe feeds one completed request into the control loop.
// deadlineMiss marks a request that burned its whole wall clock
// (queue timeout, or a response that took the full granted deadline);
// sample marks a latency that measures an actual synthesis (a cache
// miss) and may feed the baseline. Healthy completions earn additive
// regrowth: +1/limit per success, i.e. about one slot per "round" of
// limit successes — classic AIMD.
func (l *limiter) observe(latency time.Duration, deadlineMiss, sample bool) {
	if !l.adaptive {
		return
	}
	now := time.Now()
	ms := float64(latency) / float64(time.Millisecond)
	l.mu.Lock()
	defer l.mu.Unlock()
	if deadlineMiss {
		l.shrinkLocked(now)
		return
	}
	if sample {
		if l.samples >= limiterWarmup && l.ewmaMS > 0 && ms > limiterLatencyTrip*l.ewmaMS {
			// Far above baseline: congestion, and the sample is excluded
			// from the baseline so sustained overload cannot normalize
			// itself.
			l.shrinkLocked(now)
			return
		}
		if l.samples == 0 {
			l.ewmaMS = ms
		} else {
			l.ewmaMS = (1-limiterBaselineAlpha)*l.ewmaMS + limiterBaselineAlpha*ms
		}
		l.samples++
	}
	if l.limit < float64(l.max) {
		l.limit += 1 / l.limit
		if l.limit > float64(l.max) {
			l.limit = float64(l.max)
		}
	}
}

// shrinkLocked applies one multiplicative decrease, at most once per
// cooldown window. Caller holds l.mu.
func (l *limiter) shrinkLocked(now time.Time) {
	if now.Sub(l.lastShrink) < l.cooldown {
		return
	}
	l.lastShrink = now
	l.limit *= limiterShrink
	if l.limit < 1 {
		l.limit = 1
	}
	l.shrinks++
}

// retryAfterMS derives the shed backoff from current queue pressure: a
// 500 ms base per queued-or-running request ahead of the retrier,
// clamped to [500 ms, 30 s], with ±20% jitter so shed clients do not
// return in lockstep (the thundering-herd fix — a constant Retry-After
// synchronizes every client the shed wave turned away).
func retryAfterMS(queued int64) int64 {
	if queued < 0 {
		queued = 0
	}
	base := 500 * (1 + queued)
	if base > 30_000 {
		base = 30_000
	}
	return jitterMS(base)
}

// jitterMS applies ±20% uniform jitter to a millisecond value.
func jitterMS(ms int64) int64 {
	j := int64(float64(ms) * (0.8 + 0.4*rand.Float64()))
	if j < 1 {
		j = 1
	}
	return j
}
