package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
)

// Policy is the server-side clamp on what a request may ask for. Every
// per-request knob arrives in an X-Rmsynd-* header from an untrusted
// client; the grant is min(requested, policy ceiling), never the raw
// request. Zero ceilings mean "unlimited" for budgets and "server
// default" for the rest.
type Policy struct {
	DefaultTimeout time.Duration // granted when the client asks for none
	MaxTimeout     time.Duration // hard per-request wall-clock ceiling
	MinTimeout     time.Duration // grants are raised to this floor

	MaxBDDNodes  int   // ceiling on X-Rmsynd-Max-Bdd-Nodes
	MaxOFDDNodes int   // ceiling on X-Rmsynd-Max-Ofdd-Nodes
	MaxCubes     int64 // ceiling on X-Rmsynd-Max-Cubes
	MaxSteps     int64 // ceiling on X-Rmsynd-Max-Steps

	MaxWorkersPerRequest int     // clamp on X-Rmsynd-Workers
	MaxRetryFactor       float64 // clamp on X-Rmsynd-Retry-Factor

	// AllowRace permits X-Rmsynd-Basis: race, which runs both basis
	// arms on every cone (roughly doubling a request's arm work under
	// the same budget). When false, race requests are clamped to auto —
	// the predictor still hedges where the structure is ambiguous, but
	// sure cones run one arm only.
	AllowRace bool
}

// DefaultPolicy returns conservative service defaults: 30s granted by
// default, 2min ceiling, budgets capped roughly where the bench suite's
// heavy circuits live, 16x retry at most.
func DefaultPolicy() Policy {
	return Policy{
		DefaultTimeout:       30 * time.Second,
		MaxTimeout:           2 * time.Minute,
		MinTimeout:           10 * time.Millisecond,
		MaxBDDNodes:          4_000_000,
		MaxOFDDNodes:         4_000_000,
		MaxCubes:             10_000_000,
		MaxSteps:             2_000_000_000,
		MaxWorkersPerRequest: 0, // filled from Config.Workers
		MaxRetryFactor:       16,
		AllowRace:            true,
	}
}

// grant is the budget actually given to one request after policy
// clamping — echoed back in X-Rmsynd-Granted-* response headers so the
// client can see what it ran under (headers, not body: the body must be
// byte-identical between a cache miss and its hits, the grant may not).
type grant struct {
	Timeout     time.Duration
	BDDNodes    int
	OFDDNodes   int
	Cubes       int64
	Steps       int64
	Workers     int
	RetryFactor float64

	Method   core.Method
	Polarity core.Polarity
	Basis    core.Basis
	NoCache  bool
}

// optErr is a 400 bad_option failure with the offending header named.
type optErr struct {
	header string
	msg    string
}

func (e *optErr) Error() string { return fmt.Sprintf("%s: %s", e.header, e.msg) }

// parseGrant derives a request's grant from its headers under the
// policy. Invalid values (unparseable, negative, NaN) are a hard 400 —
// silently "fixing" garbage would hide client bugs; absurd-but-valid
// values are clamped, which is the policy's job.
func parseGrant(h http.Header, pol Policy, poolSize int) (grant, error) {
	g := grant{
		Method:   core.MethodCube,
		Polarity: core.PolarityGreedy,
	}

	// Wall clock.
	g.Timeout = pol.DefaultTimeout
	if v := h.Get("X-Rmsynd-Timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return g, &optErr{"X-Rmsynd-Timeout", "want a Go duration like 500ms or 30s"}
		}
		if d <= 0 {
			return g, &optErr{"X-Rmsynd-Timeout", "must be positive"}
		}
		g.Timeout = d
	}
	if pol.MaxTimeout > 0 && g.Timeout > pol.MaxTimeout {
		g.Timeout = pol.MaxTimeout
	}
	if pol.MinTimeout > 0 && g.Timeout < pol.MinTimeout {
		g.Timeout = pol.MinTimeout
	}

	// Node/cube/step budgets: absent or 0 means "the ceiling".
	var err error
	if g.BDDNodes, err = intBudget(h, "X-Rmsynd-Max-Bdd-Nodes", pol.MaxBDDNodes); err != nil {
		return g, err
	}
	if g.OFDDNodes, err = intBudget(h, "X-Rmsynd-Max-Ofdd-Nodes", pol.MaxOFDDNodes); err != nil {
		return g, err
	}
	if g.Cubes, err = int64Budget(h, "X-Rmsynd-Max-Cubes", pol.MaxCubes); err != nil {
		return g, err
	}
	if g.Steps, err = int64Budget(h, "X-Rmsynd-Max-Steps", pol.MaxSteps); err != nil {
		return g, err
	}

	// Worker share of the global pool.
	maxW := pol.MaxWorkersPerRequest
	if maxW <= 0 || maxW > poolSize {
		maxW = poolSize
	}
	g.Workers = maxW
	if v := h.Get("X-Rmsynd-Workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return g, &optErr{"X-Rmsynd-Workers", "want a non-negative integer"}
		}
		if n > 0 && n < maxW {
			g.Workers = n
		}
	}
	if g.Workers < 1 {
		g.Workers = 1
	}

	// Retry ladder scale.
	g.RetryFactor = core.DefaultOptions().RetryFactor
	if v := h.Get("X-Rmsynd-Retry-Factor"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return g, &optErr{"X-Rmsynd-Retry-Factor", "want a finite non-negative number"}
		}
		g.RetryFactor = f
	}
	if pol.MaxRetryFactor > 0 && g.RetryFactor > pol.MaxRetryFactor {
		g.RetryFactor = pol.MaxRetryFactor
	}

	// Flow selection.
	switch v := h.Get("X-Rmsynd-Method"); v {
	case "", "1", "cube":
		g.Method = core.MethodCube
	case "2", "ofdd":
		g.Method = core.MethodOFDD
	default:
		return g, &optErr{"X-Rmsynd-Method", "want cube|ofdd (or 1|2)"}
	}
	switch v := h.Get("X-Rmsynd-Polarity"); v {
	case "", "greedy":
		g.Polarity = core.PolarityGreedy
	case "positive":
		g.Polarity = core.PolarityPositive
	case "exhaustive":
		g.Polarity = core.PolarityExhaustive
	default:
		return g, &optErr{"X-Rmsynd-Polarity", "want positive|greedy|exhaustive"}
	}

	g.Basis = core.DefaultOptions().Basis
	if v := h.Get("X-Rmsynd-Basis"); v != "" {
		b, berr := core.ParseBasis(v)
		if berr != nil {
			return g, &optErr{"X-Rmsynd-Basis", "want auto|xor|sop|race"}
		}
		g.Basis = b
	}
	if g.Basis == core.BasisRace && !pol.AllowRace {
		g.Basis = core.BasisAuto
	}

	switch v := h.Get("X-Rmsynd-No-Cache"); v {
	case "", "0", "false":
	case "1", "true":
		g.NoCache = true
	default:
		return g, &optErr{"X-Rmsynd-No-Cache", "want 1|true or 0|false"}
	}
	return g, nil
}

func intBudget(h http.Header, header string, ceiling int) (int, error) {
	v := h.Get(header)
	if v == "" {
		return ceiling, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, &optErr{header, "want a non-negative integer"}
	}
	if n == 0 {
		return ceiling, nil
	}
	if ceiling > 0 && n > ceiling {
		return ceiling, nil
	}
	return n, nil
}

func int64Budget(h http.Header, header string, ceiling int64) (int64, error) {
	v := h.Get(header)
	if v == "" {
		return ceiling, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0, &optErr{header, "want a non-negative integer"}
	}
	if n == 0 {
		return ceiling, nil
	}
	if ceiling > 0 && n > ceiling {
		return ceiling, nil
	}
	return n, nil
}

// clampBrownout tightens a grant admitted during a memory brownout:
// every node/cube/step budget is divided by brownoutBudgetDiv
// (unlimited budgets first assume the default-policy ceilings —
// "unlimited" is exactly what a brownout cannot afford), and a hedged
// race basis collapses to auto so sure cones run one arm. Floors of 1
// keep a tiny granted budget from dividing to 0, which core would read
// as unlimited. The timeout is untouched: the point is to bound memory,
// not to renege on the wall clock.
func (g grant) clampBrownout() grant {
	def := DefaultPolicy()
	if g.BDDNodes <= 0 {
		g.BDDNodes = def.MaxBDDNodes
	}
	if g.OFDDNodes <= 0 {
		g.OFDDNodes = def.MaxOFDDNodes
	}
	if g.Cubes <= 0 {
		g.Cubes = def.MaxCubes
	}
	if g.Steps <= 0 {
		g.Steps = def.MaxSteps
	}
	g.BDDNodes = max(g.BDDNodes/brownoutBudgetDiv, 1)
	g.OFDDNodes = max(g.OFDDNodes/brownoutBudgetDiv, 1)
	g.Cubes = max(g.Cubes/brownoutBudgetDiv, 1)
	g.Steps = max(g.Steps/brownoutBudgetDiv, 1)
	if g.Basis == core.BasisRace {
		g.Basis = core.BasisAuto
	}
	return g
}

// coreOptions assembles the synthesis configuration for one grant.
func (g grant) coreOptions() core.Options {
	opt := core.DefaultOptions()
	opt.Method = g.Method
	opt.Polarity = g.Polarity
	opt.Basis = g.Basis
	opt.MaxBDDNodes = g.BDDNodes
	opt.MaxOFDDNodes = g.OFDDNodes
	opt.MaxCubes = g.Cubes
	opt.MaxSteps = g.Steps
	opt.Workers = g.Workers
	opt.RetryFactor = g.RetryFactor
	return opt
}

// flowKey fingerprints the parts of the grant that determine the result
// function-for-function: the flow, not the budgets. Budgeted runs that
// degrade are never cached, so two grants differing only in budgets may
// share a cache entry; ones differing in flow may not (Kushch: record
// which basis/flow produced each cached form).
func (g grant) flowKey() string {
	return fmt.Sprintf("m%d|p%d|B%d", g.Method, g.Polarity, g.Basis)
}

// flightKey fingerprints everything that affects what a leader computes,
// budgets included: a request must not coalesce onto a flight running
// under tighter budgets than its own (it could be handed a degradation
// ladder it never asked for).
func (g grant) flightKey() string {
	return fmt.Sprintf("%s|t%d|b%d|o%d|c%d|s%d|r%g",
		g.flowKey(), g.Timeout, g.BDDNodes, g.OFDDNodes, g.Cubes, g.Steps, g.RetryFactor)
}

// flowString is the human-readable flow record stored with cache entries.
func (g grant) flowString() string {
	m := "cube"
	if g.Method == core.MethodOFDD {
		m = "ofdd"
	}
	p := "greedy"
	switch g.Polarity {
	case core.PolarityPositive:
		p = "positive"
	case core.PolarityExhaustive:
		p = "exhaustive"
	}
	return "method=" + m + " polarity=" + p + " basis=" + g.Basis.String()
}
