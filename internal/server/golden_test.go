package server_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/server"
)

var update = flag.Bool("update", false, "rewrite the golden rmsynd/v1 fixtures")

// The golden tests pin the rmsynd/v1 wire format byte for byte: the
// success body, the degraded body, and the 429 shed body. Any schema
// drift — a renamed field, a reordered key, a float that picks up
// jitter — fails here before a client sees it. Regenerate deliberately
// with `go test ./internal/server -run TestGolden -update`.

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run with -update if deliberate)\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func cm82aBLIF(t *testing.T) []byte {
	t.Helper()
	c, ok := bench.ByName("cm82a")
	if !ok {
		t.Fatal("bench circuit cm82a missing")
	}
	var b bytes.Buffer
	if err := c.Build().WriteBLIF(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func postBLIF(t *testing.T, ts *httptest.Server, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestGoldenSuccess(t *testing.T) {
	srv := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := cm82aBLIF(t)
	// Workers pinned to 1 for a scheduling-independent body (the stats
	// are volatile-stripped anyway; this is belt and braces).
	hdrs := map[string]string{"X-Rmsynd-Workers": "1"}
	resp, miss := postBLIF(t, ts, spec, hdrs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, miss)
	}
	if got := resp.Header.Get("X-Rmsynd-Cache"); got != "miss" {
		t.Errorf("first request X-Rmsynd-Cache = %q, want miss", got)
	}
	goldenCompare(t, "success.json", miss)

	// Acceptance: the identical resubmission is a cache hit and its body
	// is byte-identical to the miss.
	resp2, hit := postBLIF(t, ts, spec, hdrs)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Rmsynd-Cache"); got != "hit" {
		t.Errorf("repeat X-Rmsynd-Cache = %q, want hit", got)
	}
	if !bytes.Equal(miss, hit) {
		t.Errorf("cache hit body differs from its miss (%d vs %d bytes)", len(miss), len(hit))
	}
}

func TestGoldenDegraded(t *testing.T) {
	srv := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A one-cube budget trips the ladder deterministically; one worker
	// keeps the degradation record order fixed.
	resp, body := postBLIF(t, ts, cm82aBLIF(t), map[string]string{
		"X-Rmsynd-Max-Cubes": "1",
		"X-Rmsynd-Workers":   "1",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	goldenCompare(t, "degraded.json", body)
	if !bytes.Contains(body, []byte(`"degradations": [`)) || bytes.Contains(body, []byte(`"degradations": []`)) {
		t.Errorf("degraded body carries no degradation record:\n%s", body)
	}
	// Degraded results are served, never cached.
	if resp.Header.Get("X-Rmsynd-Cache") != "miss" {
		t.Errorf("degraded response X-Rmsynd-Cache = %q", resp.Header.Get("X-Rmsynd-Cache"))
	}
	if n := srv.Cache().Len(); n != 0 {
		t.Errorf("degraded run populated the cache (%d entries)", n)
	}
}

func TestGoldenShed(t *testing.T) {
	gate := make(chan struct{})
	srv := server.New(server.Config{
		Workers:    1,
		QueueDepth: -1, // capacity exactly 1
		Hooks:      &server.Hooks{JobStart: func(string) { <-gate }},
	})
	ts := httptest.NewServer(srv)
	// Open the gate before ts.Close (defers run LIFO): Close waits for
	// the gated first request, which waits for the gate.
	defer ts.Close()
	defer close(gate)
	if got := srv.QueueCapacity(); got != 1 {
		t.Fatalf("QueueCapacity = %d, want 1", got)
	}

	spec := cm82aBLIF(t)
	first := make(chan struct{})
	go func() {
		defer close(first)
		// Raw post: this goroutine may outlive the test body, so no
		// t-helpers here. Its only job is to hold the admission token.
		resp, err := ts.Client().Post(ts.URL+"/v1/synthesize", "text/blif", bytes.NewReader(spec))
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the first request holds the admission token (it is
	// gated inside JobStart, so it shows up as inflight).
	for i := 0; ; i++ {
		if bytes.Contains([]byte(srv.Metrics()), []byte("rmsynd_inflight 1")) {
			break
		}
		if i > 5000 {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postBLIF(t, ts, spec, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	// retry_after_ms is deliberately jittered (±20% around the queue-
	// derived base, here 1000ms with one request in system) so shed
	// clients do not return in lockstep. Assert the range, then pin the
	// field to the base so the rest of the body stays byte-golden.
	var shed struct {
		Error struct {
			RetryAfterMS int64 `json:"retry_after_ms"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &shed); err != nil {
		t.Fatalf("unparseable shed body: %v\n%s", err, body)
	}
	if ms := shed.Error.RetryAfterMS; ms < 800 || ms > 1200 {
		t.Errorf("retry_after_ms = %d, want within the jitter window [800, 1200]", ms)
	}
	body = regexp.MustCompile(`"retry_after_ms": \d+`).ReplaceAll(body, []byte(`"retry_after_ms": 1000`))
	goldenCompare(t, "shed.json", body)
}
