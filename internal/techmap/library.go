// Package techmap implements technology mapping in the style of the SIS
// `map` command the paper uses for its Table 2 results: the network is
// decomposed into a NAND2/INV subject graph, and a dynamic-programming
// tree covering selects cells from a built-in library modeled on
// mcnc.genlib — 2-input XOR/XNOR, 2-input AND/OR, NAND/NOR up to four
// inputs, and four complex cells (AOI21, AOI22, OAI21, OAI22) — exactly
// the cell classes the paper lists.
//
// Pattern trees are expressed over {INV, NAND2, leaf}; repeated leaf
// variables make leaf-DAG patterns (the XOR cell) matchable on the
// hash-consed subject graph.
package techmap

// PatOp is a pattern tree operator.
type PatOp int

// Pattern operators.
const (
	PatLeaf PatOp = iota // a cell input, identified by Var
	PatInv
	PatNand
)

// Pattern is a tree over INV/NAND2 with named leaves. Repeated leaf names
// must bind to the same subject node (leaf-DAG patterns).
type Pattern struct {
	Op   PatOp
	Var  int // for PatLeaf: input index
	Kids []*Pattern
}

func leaf(v int) *Pattern { return &Pattern{Op: PatLeaf, Var: v} }
func inv(k *Pattern) *Pattern {
	if k.Op == PatInv {
		return k.Kids[0] // match the subject graph's double-negation elimination
	}
	return &Pattern{Op: PatInv, Kids: []*Pattern{k}}
}
func nand(a, b *Pattern) *Pattern  { return &Pattern{Op: PatNand, Kids: []*Pattern{a, b}} }
func and2p(a, b *Pattern) *Pattern { return inv(nand(a, b)) }
func or2p(a, b *Pattern) *Pattern  { return nand(inv(a), inv(b)) }

// Cell is one library cell: a name, its pattern alternatives, its area,
// its literal count (the factored-form literal count SIS reports as
// "lits" after mapping) and its input count.
type Cell struct {
	Name     string
	Patterns []*Pattern
	Area     float64
	Lits     int
	Inputs   int
}

// Library returns the built-in mcnc.genlib-like library.
func Library() []Cell {
	A, B, C, D := leaf(0), leaf(1), leaf(2), leaf(3)
	// The two structural decompositions of XOR that arise in practice:
	// the shared-NAND leaf-DAG (from XOR gates decomposed by the subject
	// builder) and the sum-of-products tree ab̄+āb (from SOP-based flows).
	xorShared := func(a, b *Pattern) *Pattern {
		m := nand(a, b)
		return nand(nand(a, m), nand(b, m))
	}
	xorSOP := func(a, b *Pattern) *Pattern {
		return nand(nand(a, inv(b)), nand(inv(a), b))
	}
	xnorSOP := func(a, b *Pattern) *Pattern {
		return nand(nand(a, b), nand(inv(a), inv(b)))
	}
	return []Cell{
		{Name: "inv", Patterns: []*Pattern{inv(A)}, Area: 1, Lits: 1, Inputs: 1},
		{Name: "nand2", Patterns: []*Pattern{nand(A, B)}, Area: 2, Lits: 2, Inputs: 2},
		{Name: "nor2", Patterns: []*Pattern{inv(or2p(A, B))}, Area: 2, Lits: 2, Inputs: 2},
		{Name: "and2", Patterns: []*Pattern{and2p(A, B)}, Area: 3, Lits: 2, Inputs: 2},
		{Name: "or2", Patterns: []*Pattern{or2p(A, B)}, Area: 3, Lits: 2, Inputs: 2},
		{Name: "nand3", Patterns: []*Pattern{nand(A, and2p(B, C))}, Area: 3, Lits: 3, Inputs: 3},
		{Name: "nor3", Patterns: []*Pattern{inv(or2p(or2p(A, B), C))}, Area: 3, Lits: 3, Inputs: 3},
		{Name: "nand4", Patterns: []*Pattern{
			nand(and2p(A, B), and2p(C, D)),
			nand(A, and2p(B, and2p(C, D))),
		}, Area: 4, Lits: 4, Inputs: 4},
		{Name: "nor4", Patterns: []*Pattern{
			inv(or2p(or2p(A, B), or2p(C, D))),
			inv(or2p(or2p(or2p(A, B), C), D)),
		}, Area: 4, Lits: 4, Inputs: 4},
		{Name: "xor2", Patterns: []*Pattern{xorShared(A, B), xorSOP(A, B), inv(xnorSOP(A, B))}, Area: 5, Lits: 4, Inputs: 2},
		{Name: "xnor2", Patterns: []*Pattern{inv(xorShared(A, B)), xnorSOP(A, B), inv(xorSOP(A, B))}, Area: 5, Lits: 4, Inputs: 2},
		// Complex cells: aoi21 = ¬(ab + c), aoi22 = ¬(ab + cd),
		// oai21 = ¬((a+b)c), oai22 = ¬((a+b)(c+d)).
		{Name: "aoi21", Patterns: []*Pattern{inv(or2p(and2p(A, B), C))}, Area: 3, Lits: 3, Inputs: 3},
		{Name: "aoi22", Patterns: []*Pattern{inv(or2p(and2p(A, B), and2p(C, D)))}, Area: 4, Lits: 4, Inputs: 4},
		{Name: "oai21", Patterns: []*Pattern{inv(and2p(or2p(A, B), C))}, Area: 3, Lits: 3, Inputs: 3},
		{Name: "oai22", Patterns: []*Pattern{inv(and2p(or2p(A, B), or2p(C, D)))}, Area: 4, Lits: 4, Inputs: 4},
	}
}
