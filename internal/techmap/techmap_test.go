package techmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/network"
)

// evalSubject computes all subject node values for a PI assignment.
func evalSubject(s *Subject, pi []bool) []bool {
	val := make([]bool, len(s.Nodes))
	piIdx := 0
	for i, nd := range s.Nodes {
		if nd.IsPI {
			val[i] = pi[piIdx]
			piIdx++
			continue
		}
		if nd.Inv {
			val[i] = !val[nd.A]
		} else {
			val[i] = !(val[nd.A] && val[nd.B])
		}
	}
	return val
}

// cellFunc evaluates a library cell by name.
func cellFunc(name string, in []bool) bool {
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	switch name {
	case "inv":
		return !in[0]
	case "nand2":
		return !(in[0] && in[1])
	case "nor2":
		return !(in[0] || in[1])
	case "and2":
		return in[0] && in[1]
	case "or2":
		return in[0] || in[1]
	case "nand3":
		return !(in[0] && in[1] && in[2])
	case "nor3":
		return !(in[0] || in[1] || in[2])
	case "nand4":
		return !(in[0] && in[1] && in[2] && in[3])
	case "nor4":
		return !(in[0] || in[1] || in[2] || in[3])
	case "xor2":
		return (b2i(in[0]) ^ b2i(in[1])) == 1
	case "xnor2":
		return (b2i(in[0]) ^ b2i(in[1])) == 0
	case "aoi21":
		return !((in[0] && in[1]) || in[2])
	case "aoi22":
		return !((in[0] && in[1]) || (in[2] && in[3]))
	case "oai21":
		return !((in[0] || in[1]) && in[2])
	case "oai22":
		return !((in[0] || in[1]) && (in[2] || in[3]))
	}
	panic("unknown cell " + name)
}

// checkMapping verifies that the mapped netlist computes the same PO
// values as the subject graph on random assignments.
func checkMapping(t *testing.T, net *network.Network, res *Result, trials int) {
	t.Helper()
	subj := res.Subject
	rng := rand.New(rand.NewSource(17))
	// Cell value memo keyed by root node.
	cellByRoot := make(map[int]MappedCell)
	for _, c := range res.Cells {
		cellByRoot[c.Root] = c
	}
	for trial := 0; trial < trials; trial++ {
		pi := make([]bool, len(subj.PIs))
		for i := range pi {
			pi[i] = rng.Intn(2) == 1
		}
		ref := evalSubject(subj, pi)
		// Evaluate cells bottom-up with memoization.
		memo := make(map[int]bool)
		var eval func(v int) bool
		eval = func(v int) bool {
			nd := subj.Nodes[v]
			if nd.IsPI {
				return ref[v]
			}
			if b, ok := memo[v]; ok {
				return b
			}
			c, ok := cellByRoot[v]
			if !ok {
				t.Fatalf("node %d has no covering cell", v)
			}
			in := make([]bool, len(c.Inputs))
			for i, cin := range c.Inputs {
				in[i] = eval(cin)
			}
			b := cellFunc(c.Cell, in)
			memo[v] = b
			return b
		}
		for _, po := range subj.POs {
			if po.Node < 0 {
				continue
			}
			if eval(po.Node) != ref[po.Node] {
				t.Fatalf("mapped netlist differs at PO %s (trial %d)", po.Name, trial)
			}
		}
	}
}

func TestMapSingleXor(t *testing.T) {
	net := network.New("x")
	a := net.AddPI("a")
	b := net.AddPI("b")
	net.AddPO("o", net.AddGate(network.Xor, a, b))
	res, err := Map(net, Library())
	if err != nil {
		t.Fatal(err)
	}
	if res.Gates != 1 || res.Cells[0].Cell != "xor2" {
		t.Errorf("expected one xor2 cell, got %s", res)
	}
	if res.Lits != 4 {
		t.Errorf("xor2 lits = %d, want 4", res.Lits)
	}
	checkMapping(t, net, res, 8)
}

// TestMapParity16 reproduces the paper's parity row: 16-input parity maps
// to 15 XOR cells, 60 literals (Table 2: gates 15, lits 60 for both SIS
// and the paper's flow).
func TestMapParity16(t *testing.T) {
	net := network.New("parity")
	ids := make([]int, 16)
	for i := range ids {
		ids[i] = net.AddPI("")
	}
	net.AddPO("o", net.BalancedTree(network.Xor, ids))
	res, err := Map(net, Library())
	if err != nil {
		t.Fatal(err)
	}
	if res.Gates != 15 || res.Lits != 60 {
		t.Errorf("parity: gates=%d lits=%d, want 15/60 (paper Table 2)", res.Gates, res.Lits)
	}
	for _, c := range res.Cells {
		if c.Cell != "xor2" {
			t.Errorf("non-xor cell %s in parity mapping", c.Cell)
		}
	}
	checkMapping(t, net, res, 20)
}

func TestMapAoi22(t *testing.T) {
	// ¬(ab + cd) should map to a single aoi22.
	net := network.New("aoi")
	a := net.AddPI("a")
	b := net.AddPI("b")
	c := net.AddPI("c")
	d := net.AddPI("d")
	or := net.AddGate(network.Or, net.AddGate(network.And, a, b), net.AddGate(network.And, c, d))
	net.AddPO("o", net.AddGate(network.Not, or))
	res, err := Map(net, Library())
	if err != nil {
		t.Fatal(err)
	}
	if res.Gates != 1 || res.Cells[0].Cell != "aoi22" {
		t.Errorf("want single aoi22, got %s", res)
	}
	checkMapping(t, net, res, 16)
}

func TestMapNand3Chain(t *testing.T) {
	// ¬(abc) = nand3, one cell.
	net := network.New("n3")
	a := net.AddPI("a")
	b := net.AddPI("b")
	c := net.AddPI("c")
	net.AddPO("o", net.AddGate(network.Nand, a, b, c))
	res, err := Map(net, Library())
	if err != nil {
		t.Fatal(err)
	}
	if res.Gates != 1 || res.Cells[0].Cell != "nand3" {
		t.Errorf("want single nand3, got %s", res)
	}
	checkMapping(t, net, res, 8)
}

func TestMapAnd4(t *testing.T) {
	// abcd: nand4 + inv beats 3 and2 (area 5 vs 9).
	net := network.New("a4")
	var ids []int
	for i := 0; i < 4; i++ {
		ids = append(ids, net.AddPI(""))
	}
	net.AddPO("o", net.AddGate(network.And, ids...))
	res, err := Map(net, Library())
	if err != nil {
		t.Fatal(err)
	}
	if res.Area > 5 {
		t.Errorf("and4 area = %.0f, want ≤ 5 (nand4+inv): %s", res.Area, res)
	}
	checkMapping(t, net, res, 16)
}

func TestMapSharedNodeIsRoot(t *testing.T) {
	// A shared AND must be mapped once and referenced twice.
	net := network.New("s")
	a := net.AddPI("a")
	b := net.AddPI("b")
	c := net.AddPI("c")
	d := net.AddPI("d")
	ab := net.AddGate(network.And, a, b)
	net.AddPO("o1", net.AddGate(network.Or, ab, c))
	net.AddPO("o2", net.AddGate(network.Or, ab, d))
	res, err := Map(net, Library())
	if err != nil {
		t.Fatal(err)
	}
	checkMapping(t, net, res, 16)
	// and2 + 2 × or2 = 3 cells (or nand-based equivalents ≤ 5 cells).
	if res.Gates > 5 {
		t.Errorf("too many cells: %s", res)
	}
}

func TestMapConstantPO(t *testing.T) {
	net := network.New("c")
	net.AddPI("a")
	net.AddPO("z", net.AddGate(network.Const0))
	res, err := Map(net, Library())
	if err != nil {
		t.Fatal(err)
	}
	if res.Constants != 1 || res.Gates != 0 {
		t.Errorf("constant PO should be a tie-off: %s", res)
	}
}

// Property: mapping preserves function on random networks.
func TestQuickMapPreserves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPI := 3 + rng.Intn(4)
		net := network.New("r")
		for i := 0; i < nPI; i++ {
			net.AddPI("")
		}
		types := []network.GateType{network.And, network.Or, network.Xor, network.Not, network.Nand, network.Nor, network.Xnor}
		for i := 0; i < 4+rng.Intn(14); i++ {
			ty := types[rng.Intn(len(types))]
			k := 2
			if ty == network.Not {
				k = 1
			} else if rng.Intn(3) == 0 {
				k = 3
			}
			fanins := make([]int, k)
			for j := range fanins {
				fanins[j] = rng.Intn(len(net.Gates))
			}
			net.AddGate(ty, fanins...)
		}
		net.AddPO("o", len(net.Gates)-1)
		net.Sweep()
		res, err := Map(net, Library())
		if err != nil {
			return false
		}
		// Inline checkMapping logic with a dummy testing shim.
		subj := res.Subject
		cellByRoot := make(map[int]MappedCell)
		for _, c := range res.Cells {
			cellByRoot[c.Root] = c
		}
		for trial := 0; trial < 16; trial++ {
			pi := make([]bool, len(subj.PIs))
			for i := range pi {
				pi[i] = rng.Intn(2) == 1
			}
			ref := evalSubject(subj, pi)
			memo := make(map[int]bool)
			var eval func(v int) (bool, bool)
			eval = func(v int) (bool, bool) {
				nd := subj.Nodes[v]
				if nd.IsPI {
					return ref[v], true
				}
				if b, ok := memo[v]; ok {
					return b, true
				}
				c, ok := cellByRoot[v]
				if !ok {
					return false, false
				}
				in := make([]bool, len(c.Inputs))
				for i, cin := range c.Inputs {
					var ok2 bool
					in[i], ok2 = eval(cin)
					if !ok2 {
						return false, false
					}
				}
				b := cellFunc(c.Cell, in)
				memo[v] = b
				return b, true
			}
			for _, po := range subj.POs {
				if po.Node < 0 {
					continue
				}
				got, ok := eval(po.Node)
				if !ok || got != ref[po.Node] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
