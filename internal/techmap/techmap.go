package techmap

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/network"
)

// Subject is the NAND2/INV subject graph derived from a gate network.
// Nodes are hash-consed; node 0.. are PIs in network PI order.
type Subject struct {
	Nodes []SubjNode
	PIs   []int
	POs   []SubjPO
	hash  map[[3]int]int
}

// SubjNode is one subject-graph node.
type SubjNode struct {
	IsPI bool
	Inv  bool // true: INV(A); false (non-PI): NAND2(A,B)
	A, B int
	Name string
}

// SubjPO names a mapped primary output.
type SubjPO struct {
	Name string
	Node int
}

func (s *Subject) mkInv(a int) int {
	if nd := s.Nodes[a]; nd.Inv {
		return nd.A // double negation
	}
	k := [3]int{1, a, -1}
	if id, ok := s.hash[k]; ok {
		return id
	}
	id := len(s.Nodes)
	s.Nodes = append(s.Nodes, SubjNode{Inv: true, A: a, B: -1})
	s.hash[k] = id
	return id
}

func (s *Subject) mkNand(a, b int) int {
	if a > b {
		a, b = b, a
	}
	k := [3]int{2, a, b}
	if id, ok := s.hash[k]; ok {
		return id
	}
	id := len(s.Nodes)
	s.Nodes = append(s.Nodes, SubjNode{A: a, B: b})
	s.hash[k] = id
	return id
}

func (s *Subject) mkAnd(a, b int) int { return s.mkInv(s.mkNand(a, b)) }
func (s *Subject) mkOr(a, b int) int  { return s.mkNand(s.mkInv(a), s.mkInv(b)) }
func (s *Subject) mkXor(a, b int) int {
	m := s.mkNand(a, b)
	return s.mkNand(s.mkNand(a, m), s.mkNand(b, m))
}

// BuildSubject converts a gate network into the subject graph. Gates with
// more than two inputs are decomposed into balanced 2-input trees first.
// Constant gates are not supported by the mapper (sweep them away first);
// a constant that survives maps to a zero-area tie-off and is reported in
// Result.Constants.
func BuildSubject(net *network.Network) (*Subject, error) {
	s := &Subject{hash: make(map[[3]int]int)}
	val := make([]int, len(net.Gates))
	for i := range val {
		val[i] = -1
	}
	constVal := make(map[int]int) // gate -> 0/1 for constants
	for i, piID := range net.PIs {
		id := len(s.Nodes)
		s.Nodes = append(s.Nodes, SubjNode{IsPI: true, A: -1, B: -1, Name: net.Gates[piID].Name})
		s.PIs = append(s.PIs, id)
		val[piID] = id
		_ = i
	}
	tree := func(op func(int, int) int, ins []int) int {
		for len(ins) > 1 {
			var next []int
			for i := 0; i+1 < len(ins); i += 2 {
				next = append(next, op(ins[i], ins[i+1]))
			}
			if len(ins)%2 == 1 {
				next = append(next, ins[len(ins)-1])
			}
			ins = next
		}
		return ins[0]
	}
	for _, id := range net.TopoOrder() {
		g := &net.Gates[id]
		if g.Type == network.PI {
			continue
		}
		if g.Type == network.Const0 || g.Type == network.Const1 {
			if g.Type == network.Const0 {
				constVal[id] = 0
			} else {
				constVal[id] = 1
			}
			continue
		}
		ins := make([]int, 0, len(g.Fanins))
		for _, f := range g.Fanins {
			if _, isConst := constVal[f]; isConst {
				return nil, fmt.Errorf("techmap: constant feeds gate %d; sweep the network first", id)
			}
			ins = append(ins, val[f])
		}
		switch g.Type {
		case network.Buf:
			val[id] = ins[0]
		case network.Not:
			val[id] = s.mkInv(ins[0])
		case network.And:
			val[id] = tree(s.mkAnd, ins)
		case network.Nand:
			val[id] = s.mkInv(tree(s.mkAnd, ins))
		case network.Or:
			val[id] = tree(s.mkOr, ins)
		case network.Nor:
			val[id] = s.mkInv(tree(s.mkOr, ins))
		case network.Xor:
			val[id] = tree(s.mkXor, ins)
		case network.Xnor:
			val[id] = s.mkInv(tree(s.mkXor, ins))
		}
	}
	for _, po := range net.POs {
		if cv, ok := constVal[po.Gate]; ok {
			s.POs = append(s.POs, SubjPO{Name: po.Name, Node: -1 - cv}) // tie-off marker
			continue
		}
		s.POs = append(s.POs, SubjPO{Name: po.Name, Node: val[po.Gate]})
	}
	return s, nil
}

// MappedCell is one chosen library cell instance.
type MappedCell struct {
	Cell   string
	Root   int   // subject node the cell output drives
	Inputs []int // subject nodes feeding the cell
}

// Result of technology mapping.
type Result struct {
	Cells     []MappedCell
	Gates     int     // number of cells
	Area      float64 // total cell area
	Lits      int     // SIS-style mapped literal count (Σ cell factored lits)
	Constants int     // constant primary outputs (tie-offs, zero cost)
	Subject   *Subject
	Elapsed   time.Duration
}

// Map covers the subject graph of net with library cells, minimizing area
// by dynamic programming over trees (the DAG is broken at multi-fanout
// nodes, which become mandatory cell outputs; the XOR leaf-DAG patterns
// may swallow sharing that is internal to a match).
func Map(net *network.Network, lib []Cell) (*Result, error) {
	start := time.Now()
	subj, err := BuildSubject(net)
	if err != nil {
		return nil, err
	}
	n := len(subj.Nodes)
	// Fanout counts over the live cone only: subject construction leaves
	// dead intermediate nodes (e.g. the inverter half of an AND whose
	// NAND was reused directly), and counting their references would mark
	// shared NANDs as roots and block complex-cell matches across them.
	live := make([]bool, n)
	var markLive func(int)
	markLive = func(v int) {
		if live[v] || subj.Nodes[v].IsPI {
			live[v] = true
			return
		}
		live[v] = true
		markLive(subj.Nodes[v].A)
		if !subj.Nodes[v].Inv {
			markLive(subj.Nodes[v].B)
		}
	}
	for _, po := range subj.POs {
		if po.Node >= 0 {
			markLive(po.Node)
		}
	}
	fanout := make([]int, n)
	for i, nd := range subj.Nodes {
		if nd.IsPI || !live[i] {
			continue
		}
		fanout[nd.A]++
		if !nd.Inv {
			fanout[nd.B]++
		}
	}
	isRoot := make([]bool, n)
	for _, po := range subj.POs {
		if po.Node >= 0 {
			isRoot[po.Node] = true
		}
	}
	for i, f := range fanout {
		if f > 1 {
			isRoot[i] = true
		}
	}

	type match struct {
		cell   int
		inputs []int
	}
	type dpEntry struct {
		cost  float64
		match match
	}
	dp := make([]dpEntry, n)
	for i := range dp {
		dp[i].cost = -1
	}
	// leafCost: a pattern leaf lands on node v: if v is a PI or a root its
	// subtree is paid elsewhere (roots are emitted once on their own);
	// otherwise its own dp cost is included.
	var bestAt func(v int) dpEntry
	leafCost := func(v int) float64 {
		if subj.Nodes[v].IsPI || isRoot[v] {
			return 0
		}
		return bestAt(v).cost
	}
	bestAt = func(v int) dpEntry {
		if dp[v].cost >= 0 {
			return dp[v]
		}
		best := dpEntry{cost: 1 << 30}
		for ci, cell := range lib {
			for _, pat := range cell.Patterns {
				bindings := make([]int, cell.Inputs)
				for i := range bindings {
					bindings[i] = -1
				}
				if !matchPattern(subj, pat, v, bindings, v, isRoot) {
					continue
				}
				cost := cell.Area
				ok := true
				for _, in := range bindings {
					if in < 0 {
						ok = false
						break
					}
					cost += leafCost(in)
				}
				if !ok {
					continue
				}
				if cost < best.cost {
					best = dpEntry{cost: cost, match: match{cell: ci, inputs: append([]int(nil), bindings...)}}
				}
			}
		}
		dp[v] = best
		return best
	}

	res := &Result{Subject: subj}
	emitted := make(map[int]bool)
	var emitErr error
	var emit func(v int)
	emit = func(v int) {
		if subj.Nodes[v].IsPI || emitted[v] || emitErr != nil {
			return
		}
		emitted[v] = true
		e := bestAt(v)
		if e.match.inputs == nil {
			// A complete library always matches every AIG node; an
			// incomplete user-supplied library can legitimately fail here.
			emitErr = fmt.Errorf("techmap: no library cell matches node %d", v)
			return
		}
		cell := lib[e.match.cell]
		res.Cells = append(res.Cells, MappedCell{Cell: cell.Name, Root: v, Inputs: e.match.inputs})
		res.Area += cell.Area
		res.Lits += cell.Lits
		res.Gates++
		for _, in := range e.match.inputs {
			emit(in)
		}
	}
	for _, po := range subj.POs {
		if po.Node < 0 {
			res.Constants++
			continue
		}
		emit(po.Node)
	}
	if emitErr != nil {
		return nil, emitErr
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// matchPattern matches pat at subject node v. bindings maps pattern
// variables to subject nodes (repeated variables must agree). Internal
// pattern nodes (other than the match root) must not be roots — their
// fanout must be consumed inside the match — except when the same subject
// node is referenced several times within the pattern (the XOR sharing),
// which is checked structurally by the repeated-binding rule.
func matchPattern(subj *Subject, pat *Pattern, v int, bindings []int, matchRoot int, isRoot []bool) bool {
	switch pat.Op {
	case PatLeaf:
		if bindings[pat.Var] >= 0 {
			return bindings[pat.Var] == v
		}
		bindings[pat.Var] = v
		return true
	case PatInv:
		nd := subj.Nodes[v]
		if nd.IsPI || !nd.Inv {
			return false
		}
		if v != matchRoot && isRoot[v] && !sharedInsideXor(pat) {
			return false
		}
		return matchPattern(subj, pat.Kids[0], nd.A, bindings, matchRoot, isRoot)
	case PatNand:
		nd := subj.Nodes[v]
		if nd.IsPI || nd.Inv {
			return false
		}
		if v != matchRoot && isRoot[v] && !sharedInsideXor(pat) {
			return false
		}
		save := append([]int(nil), bindings...)
		if matchPattern(subj, pat.Kids[0], nd.A, bindings, matchRoot, isRoot) &&
			matchPattern(subj, pat.Kids[1], nd.B, bindings, matchRoot, isRoot) {
			return true
		}
		copy(bindings, save)
		if matchPattern(subj, pat.Kids[0], nd.B, bindings, matchRoot, isRoot) &&
			matchPattern(subj, pat.Kids[1], nd.A, bindings, matchRoot, isRoot) {
			return true
		}
		copy(bindings, save)
		return false
	}
	return false
}

// sharedInsideXor reports whether the pattern subtree is the shared
// NAND(A,B) of the XOR pattern — the one internal node whose double
// fanout stays inside the match. It is the only two-leaf NAND subtree
// that appears at depth ≥ 2 twice; structurally we simply allow internal
// root-nodes when the pattern subtree is exactly nand(leaf, leaf).
func sharedInsideXor(pat *Pattern) bool {
	return pat.Op == PatNand && pat.Kids[0].Op == PatLeaf && pat.Kids[1].Op == PatLeaf
}

// CountByCell returns cell-name usage counts.
func (r *Result) CountByCell() map[string]int {
	out := make(map[string]int)
	for _, c := range r.Cells {
		out[c.Cell]++
	}
	return out
}

// String summarizes the mapping.
func (r *Result) String() string {
	counts := r.CountByCell()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("gates=%d area=%.0f lits=%d:", r.Gates, r.Area, r.Lits)
	for _, n := range names {
		s += fmt.Sprintf(" %s=%d", n, counts[n])
	}
	return s
}
