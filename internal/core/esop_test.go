package core

import (
	"context"
	"testing"

	"repro/internal/network"
)

// buildSym returns the n-input symmetric [3,6] weight function (9sym/sym10).
func buildSym(n int) *network.Network {
	net := network.New("sym")
	var pis []int
	for i := 0; i < n; i++ {
		pis = append(pis, net.AddPI(""))
	}
	// Build as a population-count comparison network (functional spec).
	// Sum bits via adder tree of 1-bit values.
	count := make([][]int, 0)
	for _, p := range pis {
		count = append(count, []int{p})
	}
	add := func(a, b []int) []int {
		var sum []int
		carry := -1
		for i := 0; i < len(a) || i < len(b); i++ {
			var x, y int = -1, -1
			if i < len(a) {
				x = a[i]
			}
			if i < len(b) {
				y = b[i]
			}
			switch {
			case x < 0:
				x = y
				y = -1
			}
			if y < 0 && carry < 0 {
				sum = append(sum, x)
				continue
			}
			if y < 0 {
				y = carry
				carry = -1
			}
			s := net.AddGate(network.Xor, x, y)
			c := net.AddGate(network.And, x, y)
			if carry >= 0 {
				s2 := net.AddGate(network.Xor, s, carry)
				c = net.AddGate(network.Or, c, net.AddGate(network.And, carry, s))
				s = s2
			}
			sum = append(sum, s)
			carry = c
		}
		if carry >= 0 {
			sum = append(sum, carry)
		}
		return sum
	}
	for len(count) > 1 {
		var next [][]int
		for i := 0; i+1 < len(count); i += 2 {
			next = append(next, add(count[i], count[i+1]))
		}
		if len(count)%2 == 1 {
			next = append(next, count[len(count)-1])
		}
		count = next
	}
	bits := count[0]
	// weight in [3,6]: ge3 AND le6.
	// For n=9/10: bits has 4 entries (max 9/10). w>=3: w3..: (b1&b0... easier: decode.
	// ge3 = b3 | b2 | (b1 & b0)  ... w>=3 over 4 bits: w3 or w2 or (w1 and w0).
	b := bits
	for len(b) < 4 {
		z := net.AddGate(network.Const0)
		b = append(b, z)
	}
	ge3 := net.AddGate(network.Or, b[3], b[2], net.AddGate(network.And, b[1], b[0]))
	// le6 = !(w>=7) = !(b3 | (b2&b1&b0) ... w>=7: b3 or (b2 and b1 and b0).
	ge7 := net.AddGate(network.Or, b[3], net.AddGate(network.And, b[2], b[1], b[0]))
	net.AddPO("f", net.AddGate(network.And, ge3, net.AddGate(network.Not, ge7)))
	return net
}

func TestESOPOptionOn9sym(t *testing.T) {
	spec := buildSym(9)
	base := DefaultOptions()
	base.NoFallback = true
	resOff, err := Synthesize(context.Background(), spec, base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.ESOP = true
	resOn, err := Synthesize(context.Background(), spec, on)
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, spec, resOn.Network)
	// Measured negative result (recorded in EXPERIMENTS.md): the ESOP has
	// far fewer cubes (94 vs 182) but factoring it in the doubled literal
	// space hides the x/x̄ relationship from algebraic division, so the
	// literal count comes out worse. The option remains correct and
	// opt-in; proper mixed-polarity factoring (Sasao's rule set, which
	// the paper's §6 names) is the missing piece.
	t.Logf("9sym: FPRM flow %d lits, ESOP flow %d lits", resOff.Stats.Lits, resOn.Stats.Lits)
}

func TestESOPOptionPreservesAdder(t *testing.T) {
	spec := specAdder(4, true)
	opt := DefaultOptions()
	opt.ESOP = true
	res, err := Synthesize(context.Background(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, spec, res.Network)
}
