// Package core implements the paper's complete synthesis flow for
// arithmetic functions (Sections 2-4):
//
//  1. derive the FPRM form of every output from a ROBDD through the OFDD
//     (Section 2), optionally searching the polarity vector;
//  2. factor the form algebraically with the cube method or the OFDD
//     method, applying the Reduction/Factorization rules (Section 3);
//  3. emit a multilevel AND/OR/XOR network, sharing identical
//     subexpressions across outputs;
//  4. remove redundant XOR gates and AND fanins by pattern simulation
//     (Section 4);
//  5. merge functionally identical internal nodes across outputs (the
//     paper uses SIS "resub" for this step).
//
// The flow is specified by a gate network (any source: generated
// benchmark, parsed BLIF/PLA); its functional behaviour is preserved
// exactly, which Options.Verify double-checks per rewrite.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/arbiter"
	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/cube"
	"repro/internal/esop"
	"repro/internal/factor"
	"repro/internal/fprm"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/ofdd"
	"repro/internal/redund"
	"repro/internal/sisbase"
	"repro/internal/techmap"
	"repro/internal/verify"
)

// ErrNotEquivalent reports that the safety-net equivalence check failed:
// the synthesized network does not match the specification. It indicates
// a bug in the flow, never a property of the input.
var ErrNotEquivalent = errors.New("synthesized network not equivalent to specification")

// Method selects the algebraic factorization algorithm of Section 3.
type Method int

// Factorization methods.
const (
	MethodCube Method = 1 // Method 1: factor the cube list directly
	MethodOFDD Method = 2 // Method 2: build the initial network from the OFDD
)

// Polarity selects the FPRM polarity search strategy.
type Polarity int

// Polarity search strategies.
const (
	PolarityPositive   Polarity = iota // all-positive (PPRM)
	PolarityGreedy                     // coordinate-descent cube-count minimization
	PolarityExhaustive                 // all 2^n vectors (small inputs only)
)

// Basis selects which synthesis flow handles each output cone: the
// paper's GF(2) AND/XOR pipeline, the SIS-style AND/OR SOP baseline, a
// per-cone arbiter that predicts the winner from the spec BDD (hedging
// both flows when the structure is ambiguous), or a full race of both
// flows on every cone. The zero value is BasisXor, the pure legacy
// flow, so existing Options literals are unchanged.
type Basis int

// Basis selections.
const (
	// BasisXor runs the GF(2) FPRM flow on every cone (the paper's flow;
	// the zero value and the pre-arbiter behaviour).
	BasisXor Basis = iota
	// BasisSop runs the SOP baseline flow on every cone.
	BasisSop
	// BasisAuto lets the per-cone predictor pick the arm; ambiguous cones
	// run both arms as a hedge and keep the better verified result.
	BasisAuto
	// BasisRace runs both arms on every cone and additionally arbitrates
	// the final hybrid against the pure-XOR and pure-SOP assemblies, so
	// the result is never worse (in literals, then gates) than either.
	BasisRace
)

// String returns the lower-case basis name used in flags, headers, and
// reports.
func (b Basis) String() string {
	switch b {
	case BasisXor:
		return "xor"
	case BasisSop:
		return "sop"
	case BasisAuto:
		return "auto"
	case BasisRace:
		return "race"
	}
	return fmt.Sprintf("basis(%d)", int(b))
}

// ParseBasis parses a -basis flag / X-Rmsynd-Basis header value. The
// empty string means BasisAuto (the DefaultOptions choice).
func ParseBasis(s string) (Basis, error) {
	switch s {
	case "", "auto":
		return BasisAuto, nil
	case "xor":
		return BasisXor, nil
	case "sop":
		return BasisSop, nil
	case "race":
		return BasisRace, nil
	}
	return 0, fmt.Errorf("%w: unknown basis %q (want auto, xor, sop, or race)", ErrBadOptions, s)
}

// Options configure the synthesis flow. The zero value is the paper's
// default configuration except Verify, which callers usually enable.
type Options struct {
	Method   Method   // 0 = MethodCube (Method 1 with the divisor registry)
	Polarity Polarity // polarity search strategy
	// ExhaustiveLimit caps exhaustive polarity search (default 10 inputs).
	ExhaustiveLimit int
	// Rules applies the Section 3 reduction rules during factorization.
	// On by default through DefaultOptions.
	Rules bool
	// Redund runs the Section 4 redundancy removal.
	Redund bool
	// Verify confirms every redundancy-removal rewrite with an exact BDD
	// check (see package redund).
	Verify bool
	// CubeLimit bounds materialized FPRM cube lists (default 50000);
	// outputs above it fall back to MethodOFDD and skip polarity search.
	CubeLimit int
	// SearchCubeLimit bounds cube lists eligible for polarity search
	// (default 2000).
	SearchCubeLimit int
	// CubeMethodLimit bounds cube lists factored with Method 1 (default
	// 2000); larger outputs use the OFDD method, whose cost follows the
	// (often tiny) decision-diagram size rather than the cube count.
	CubeMethodLimit int
	// MergeNodes merges functionally identical internal gates across the
	// network after synthesis (the paper's resub step).
	MergeNodes bool
	// ESOP enables mixed-polarity ESOP minimization (package esop) on top
	// of the FPRM form before factoring — the paper's §6 future-work
	// direction. Outputs whose minimized ESOP is smaller than their FPRM
	// form are factored in a doubled literal space (positive literal of
	// variable v ↦ 2v, negative ↦ 2v+1) so the whole Section 3 machinery
	// applies unchanged.
	ESOP bool
	// Basis selects the per-cone flow (see Basis). The zero value is
	// BasisXor — the pure GF(2) pipeline, byte-identical to the
	// pre-arbiter flow; DefaultOptions selects BasisAuto.
	Basis Basis
	// NoFallback disables the do-no-harm fallback: by default, when the
	// FPRM-based result is larger than the (swept, hashed, merged)
	// specification itself — which happens for functions with
	// unmanageable FPRM forms, the limitation Section 6 of the paper
	// states — the optimized specification is returned instead.
	NoFallback bool

	// Resource budget (0 = unlimited). The wall-clock deadline comes from
	// the context passed to Synthesize. When a budget is exhausted the
	// flow degrades per output down the ladder — polarity search →
	// all-positive polarity → Method 1 → OFDD method → structural copy of
	// the specification cone — and Result.Degradations records every
	// fallback that fired; the returned network is always verified
	// equivalent (Options.Verify).
	MaxBDDNodes  int   // cap on the shared ROBDD manager's node count
	MaxOFDDNodes int   // cap on each per-output OFDD manager's node count
	MaxCubes     int64 // cap on materialized FPRM cubes per output
	MaxSteps     int64 // cap on total recursion work steps across the run

	// Workers bounds the derivation fan-out: the per-output fprm phase
	// (OFDD build, FPRM extraction, polarity search) runs on a pool of
	// this many workers, each with its own OFDD manager, against the
	// shared read-only specification BDDs and one race-safe budget.
	// 0 means runtime.GOMAXPROCS(0); 1 runs the phase sequentially.
	// The synthesized network is bit-identical for every worker count:
	// each output's derivation is independent and results merge into
	// per-output slots in output order. The factor/emit phases stay
	// sequential (they share the emitter and divisor registries).
	Workers int

	// RetryFactor configures the budgeted-retry rung of the ladder: an
	// output whose derivation or factoring trips a transient per-phase
	// cap (BDD/OFDD nodes, cubes — never a spent deadline, cancellation,
	// or step budget) is retried once on a fresh budget slice with every
	// cap scaled by this factor, before falling back to the structural
	// spec-cone copy. The attempt is recorded in Degradations as
	// stage → "retry", and a failed retry as "retry" → "spec-cone".
	// 0 disables the rung; DefaultOptions uses 2. The retry slice keeps
	// the run's deadline, so a retry can add at most RetryFactor× one
	// output's capped work, never unbounded time.
	RetryFactor float64

	// Hooks carries the deterministic fault-injection probe points used
	// by the chaos harness (package internal/chaos) to force every rung
	// of the ladder in tests. Nil in production; every probe site then
	// degenerates to a nil check.
	Hooks *ProbeHooks

	// Obs, when non-nil, collects pipeline metrics (unique/computed-table
	// hit rates, polarity-search progress, factor rule applications) into
	// the collector; Result.ObsStats holds the final snapshot. Nil (the
	// default) compiles every probe down to a single nil check — the same
	// zero-overhead contract as Hooks. All counters are schedule-
	// independent: a run's totals are identical at any Workers setting.
	Obs *obs.Collector
}

// ProbeHooks are the fault-injection probe points threaded through one
// synthesis run. All fields are optional. Hooks observe or perturb the
// flow (panic, context cancel, injected budget trips, delays); the
// chaos harness asserts that no perturbation can make Synthesize panic,
// return an unverified network, or misreport its degradations.
type ProbeHooks struct {
	// BudgetStep is installed on the run's budget via SetStepHook: it
	// sees every counted work step and can trip the budget with an
	// injected *budget.Err. It is not inherited by retry-rung budget
	// slices (a transient injected trip is exactly what the retry rung
	// is meant to absorb); target retries through OFDDAlloc instead.
	BudgetStep budget.StepHook
	// BudgetPoll is installed on the run's budget via SetPollHook: it
	// sees every graceful Exceeded poll (polarity search, phase
	// pre-checks) and can make the budget report injected exhaustion.
	// Poll trips are sticky — the way to force the best-so-far rung,
	// which only ever polls.
	BudgetPoll budget.PollHook
	// BDDAlloc is installed on the shared specification BDD manager,
	// which only grows during the sequential phases (spec-bdd, factor,
	// redund, merge), so its allocation numbering is deterministic at
	// any worker count.
	BDDAlloc func(nodes int) *budget.Err
	// OFDDAlloc returns the allocation probe for one output's
	// derivation OFDD manager (nil = no probe). Managers are
	// per-output, so the probe's numbering is deterministic at any
	// worker count. The factory is invoked once per derivation attempt
	// — the retry rung's second attempt calls it again — letting a plan
	// model both transient faults (fail the first attempt only) and
	// persistent ones (fail every attempt).
	OFDDAlloc func(output int) func(nodes int) *budget.Err
	// FactorOFDDAlloc returns an allocation probe for one factor-phase
	// OFDD manager. The factory is invoked once per context creation —
	// the shared per-polarity contexts of the first attempt and the
	// fresh one-shot contexts of each retry — so a plan can model a
	// transient fault that only the retry escapes.
	FactorOFDDAlloc func() func(nodes int) *budget.Err
	// Phase is called on entry to every pipeline phase ("setup",
	// "spec-bdd", "predict" under BasisAuto, "fprm", "factor", "emit",
	// "select" under a non-XOR basis, "do-no-harm-prep", "redund",
	// "merge", "cleanup", "verify"). A panic here exercises the residual
	// recover boundary; canceling the run's context exercises the ladder.
	Phase func(name string)
	// Worker is called at the start of each per-output derivation with
	// the worker and output indices, inside the worker goroutine —
	// injected delays there must not change the merged result.
	Worker func(worker, output int)
	// Arm is called at the start of each per-cone basis arm ("xor" or
	// "sop") with the output index, inside that arm's containment
	// boundary: when the cone has a sibling arm, a panic or injected
	// *budget.Err trip here is absorbed as that arm's failure and the
	// sibling's verified result is kept — not the spec-cone ladder.
	Arm func(basis string, output int)
}

// DefaultOptions returns the paper's flow: cube-method factorization with
// rules (our Method 1 with the cross-output divisor registry outperforms
// Method 2 — the opposite of the paper's mild preference; both are
// available), greedy polarity search, redundancy removal with exact
// verification, and cross-output node merging.
func DefaultOptions() Options {
	return Options{
		Method:      MethodCube,
		Polarity:    PolarityGreedy,
		Rules:       true,
		Redund:      true,
		Verify:      true,
		MergeNodes:  true,
		RetryFactor: 2,
		Basis:       BasisAuto,
	}
}

// ErrBadOptions reports option values that cannot mean anything
// sensible — negative worker counts, NaN retry factors, unknown method
// or polarity enums. Synthesize rejects them up front: the server feeds
// Options from untrusted request headers, and silent misbehaviour
// (a NaN scaling every retry budget to garbage) is strictly worse than
// an explicit error.
var ErrBadOptions = errors.New("core: invalid options")

// maxWorkersSanity is far above any real machine; a Workers beyond it
// is a unit confusion or an attack, not a configuration.
const maxWorkersSanity = 1 << 14

// maxRetryFactorSanity bounds the retry budget scale; the ladder's one
// retry at 64x an already-generous budget is as far as "transient"
// stretches.
const maxRetryFactorSanity = 64

// Validate checks the options for values Synthesize refuses to run
// with. The zero value and DefaultOptions always validate.
func (o Options) Validate() error {
	if o.Workers < 0 || o.Workers > maxWorkersSanity {
		return fmt.Errorf("%w: Workers %d out of range [0, %d]", ErrBadOptions, o.Workers, maxWorkersSanity)
	}
	if math.IsNaN(o.RetryFactor) || math.IsInf(o.RetryFactor, 0) {
		return fmt.Errorf("%w: RetryFactor must be finite", ErrBadOptions)
	}
	if o.RetryFactor < 0 || o.RetryFactor > maxRetryFactorSanity {
		return fmt.Errorf("%w: RetryFactor %g out of range [0, %d]", ErrBadOptions, o.RetryFactor, maxRetryFactorSanity)
	}
	switch o.Method {
	case 0, MethodCube, MethodOFDD:
	default:
		return fmt.Errorf("%w: unknown Method %d", ErrBadOptions, o.Method)
	}
	switch o.Polarity {
	case PolarityPositive, PolarityGreedy, PolarityExhaustive:
	default:
		return fmt.Errorf("%w: unknown Polarity %d", ErrBadOptions, o.Polarity)
	}
	switch o.Basis {
	case BasisXor, BasisSop, BasisAuto, BasisRace:
	default:
		return fmt.Errorf("%w: unknown Basis %d", ErrBadOptions, o.Basis)
	}
	if o.MaxBDDNodes < 0 || o.MaxOFDDNodes < 0 || o.MaxCubes < 0 || o.MaxSteps < 0 {
		return fmt.Errorf("%w: negative resource budget (use 0 for unlimited)", ErrBadOptions)
	}
	return nil
}

func (o Options) method() Method {
	if o.Method == 0 {
		return MethodCube
	}
	return o.Method
}

func (o Options) cubeLimit() int {
	if o.CubeLimit > 0 {
		return o.CubeLimit
	}
	return 50000
}

func (o Options) searchCubeLimit() int {
	if o.SearchCubeLimit > 0 {
		return o.SearchCubeLimit
	}
	return 2000
}

func (o Options) cubeMethodLimit() int {
	if o.CubeMethodLimit > 0 {
		return o.CubeMethodLimit
	}
	return 2000
}

func (o Options) exhaustiveLimit() int {
	if o.ExhaustiveLimit > 0 {
		return o.ExhaustiveLimit
	}
	return 10
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Degradation records one fallback step of the graceful-degradation
// ladder: which output was affected (the PO name, or "*" for a
// network-wide step), which pipeline stage hit its budget, what was used
// instead, and why.
type Degradation struct {
	Output   string // PO name, or "*" for the whole network
	Stage    string // pipeline stage: "spec-bdd", "predict", "fprm", "polarity-search", "factor", "retry", "xor-arm", "sop-arm", "redund", "merge", "do-no-harm"
	Fallback string // what ran instead: "swept-spec", "spec-cone", "best-so-far", "skipped", "partial", "retry", "xor-arm", "sop-arm"
	Reason   string // the budget error or condition that triggered it
}

// PhaseTime records the wall-clock time of one pipeline phase.
type PhaseTime struct {
	Name    string // "spec-bdd", "fprm", "factor", "emit", "redund", "merge", "cleanup", "verify"
	Elapsed time.Duration
}

// OutputSpan records one output's derivation span inside the parallel
// fprm phase, restoring the per-worker attribution the aggregate
// PhaseTimes entry loses. Spans are merged in output order, so the
// slice's structure (outputs, indices) is identical at any worker
// count; Worker and Elapsed are the only schedule-dependent fields.
type OutputSpan struct {
	Output  string        // PO name
	Index   int           // output index
	Worker  int           // worker that ran the derivation
	Elapsed time.Duration // wall-clock time of this output's derivation
}

// BasisChoice records how one output cone was routed through the basis
// arbiter: what the predictor said, which arm's result was kept, and the
// literal cost of each arm (-1 when an arm did not run or failed). A
// final entry with Output "*" records the network-level arbitration
// between the hybrid and the pure single-basis assemblies, whenever more
// than one distinct candidate was available. All fields are
// deterministic at any worker count.
type BasisChoice struct {
	Output    string `json:"output"`           // PO name, or "*" for the network-level arbitration
	Predicted string `json:"predicted"`        // "xor", "sop", "hedge", "forced"; the basis name for "*"
	Chosen    string `json:"chosen"`           // "xor", "sop", "spec-cone"; candidate name for "*"
	XorLits   int    `json:"xor_lits"`         // literal cost of the GF(2) arm (-1 absent/failed)
	SopLits   int    `json:"sop_lits"`         // literal cost of the SOP arm (-1 absent/failed)
	Reason    string `json:"reason,omitempty"` // predictor reason, or the failure that forced the choice
}

// Result is the outcome of a synthesis run.
type Result struct {
	Network *network.Network
	Forms   []*fprm.Form // per-output FPRM forms (sampled when huge)
	Stats   network.Stats
	Redund  redund.Result
	// PhaseTimes records per-phase wall-clock times in execution order.
	PhaseTimes []PhaseTime
	// OutputTimes records per-output derivation spans of the fprm phase,
	// in output order (see OutputSpan).
	OutputTimes []OutputSpan
	// Workers is the derivation worker count the fprm phase ran with.
	Workers int
	// Fallback reports that the FPRM result was larger than the cleaned
	// specification, which was returned instead (see Options.NoFallback).
	Fallback bool
	// Degradations lists every fallback the graceful-degradation ladder
	// took, in the order they fired. Empty for a fully unconstrained run.
	Degradations []Degradation
	// Basis is the flow basis the run executed with ("xor", "sop",
	// "auto", "race").
	Basis string
	// BasisChoices records the per-cone basis arbitration, in output
	// order; nil for a BasisXor run (see BasisChoice).
	BasisChoices []BasisChoice
	// CubeCounts holds the exact FPRM cube count per output.
	CubeCounts []int64
	// ObsStats is the observability snapshot; nil unless Options.Obs was
	// set.
	ObsStats *obs.Stats
	// BudgetSteps and BudgetPolls are the run budget's counted work steps
	// and graceful exhaustion polls.
	BudgetSteps int64
	BudgetPolls int64
	// Elapsed is the synthesis wall-clock time.
	Elapsed time.Duration
}

// FallbackReport renders the degradation ladder's activity as one line
// per fallback, or "" when nothing degraded.
func (r *Result) FallbackReport() string {
	if len(r.Degradations) == 0 {
		return ""
	}
	var b strings.Builder
	for _, d := range r.Degradations {
		fmt.Fprintf(&b, "output %s: %s -> %s (%s)\n", d.Output, d.Stage, d.Fallback, d.Reason)
	}
	return b.String()
}

// Synthesize runs the full flow on the functional specification given as a
// gate network and returns a new, functionally equivalent network.
//
// The context carries the wall-clock deadline and cancellation; together
// with the Max* fields of Options it forms the run's resource budget.
// Budget exhaustion never fails the call: the flow degrades per output
// (see Options and Result.Degradations) and still returns an equivalent
// network — at worst a swept structural copy of the specification. A nil
// ctx is treated as context.Background().
func Synthesize(ctx context.Context, spec *network.Network, opt Options) (res *Result, err error) {
	if verr := opt.Validate(); verr != nil {
		return nil, verr
	}
	start := time.Now()
	phase := "setup"
	// Single residual-panic boundary: anything that escapes the per-phase
	// budget.Guard wrappers (a genuine bug) is turned into a phase-tagged
	// error instead of killing the process.
	defer func() {
		if r := recover(); r != nil {
			res = nil
			if be, ok := r.(*budget.Err); ok {
				err = fmt.Errorf("core: unguarded budget trip in %s: %w", phase, be)
				return
			}
			err = fmt.Errorf("core: internal panic in %s: %v", phase, r)
		}
	}()

	// enterPhase tags the residual-panic boundary and fires the chaos
	// phase probe; with no hooks installed it is a plain assignment.
	enterPhase := func(name string) {
		phase = name
		if opt.Hooks != nil && opt.Hooks.Phase != nil {
			opt.Hooks.Phase(name)
		}
	}
	enterPhase("setup")

	nPI := spec.NumPIs()
	bud := budget.New(ctx, budget.Limits{
		BDDNodes:  opt.MaxBDDNodes,
		OFDDNodes: opt.MaxOFDDNodes,
		Cubes:     opt.MaxCubes,
		Steps:     opt.MaxSteps,
	})
	if opt.Hooks != nil && opt.Hooks.BudgetStep != nil {
		bud.SetStepHook(opt.Hooks.BudgetStep)
	}
	if opt.Hooks != nil && opt.Hooks.BudgetPoll != nil {
		bud.SetPollHook(opt.Hooks.BudgetPoll)
	}
	if perr := bud.Exceeded(); perr != nil {
		// Deadline already expired (or context canceled) before any work:
		// bottom of the ladder immediately.
		return fallbackToSpec(spec, opt, perr.Error(), start)
	}
	res = &Result{Basis: opt.Basis.String()}
	phaseStart := time.Now()
	markPhase := func(name string) {
		res.PhaseTimes = append(res.PhaseTimes, PhaseTime{Name: name, Elapsed: time.Since(phaseStart)})
		phaseStart = time.Now()
	}

	bm := bdd.New(nPI)
	bm.SetBudget(bud)
	bm.SetStats(opt.Obs.BDD())
	if opt.Hooks != nil && opt.Hooks.BDDAlloc != nil {
		bm.SetAllocHook(opt.Hooks.BDDAlloc)
	}
	enterPhase("spec-bdd")
	var outs []bdd.Ref
	if gerr := budget.Guard(func() { outs = spec.ToBDDs(bm) }); gerr != nil {
		// Cannot even build the specification BDDs within budget: the
		// whole FPRM flow is out of reach, ship the swept spec.
		return fallbackToSpec(spec, opt, gerr.Error(), start)
	}
	markPhase("spec-bdd")

	degrade := func(output, stage, fallback, reason string) {
		res.Degradations = append(res.Degradations, Degradation{
			Output: output, Stage: stage, Fallback: fallback, Reason: reason,
		})
	}

	// Per-cone basis routing (see Basis). BasisXor runs the legacy GF(2)
	// pipeline untouched; the other bases route each output cone to the
	// GF(2) arm, the SOP arm, or a hedged race of both under sibling
	// slices of the one run budget. The predict phase is sequential and
	// read-only on the shared BDD manager, so its decisions are
	// bit-identical at any worker count.
	basis := opt.Basis
	armXor := make([]bool, len(outs))
	armSop := make([]bool, len(outs))
	predicted := make([]string, len(outs))
	predWhy := make([]string, len(outs))
	switch basis {
	case BasisSop:
		for oi := range outs {
			armSop[oi] = true
			predicted[oi] = "forced"
		}
	case BasisRace:
		for oi := range outs {
			armXor[oi], armSop[oi] = true, true
			predicted[oi] = "forced"
		}
	case BasisAuto:
		enterPhase("predict")
		cfg := arbiter.DefaultConfig()
		for oi := range outs {
			oname := spec.POs[oi].Name
			if perr := bud.Exceeded(); perr != nil {
				// No budget left for prediction: the paper's flow.
				armXor[oi] = true
				predicted[oi], predWhy[oi] = "xor", "predict skipped: "+perr.Error()
				degrade(oname, "predict", "xor-arm", perr.Error())
				continue
			}
			var p arbiter.Prediction
			gerr := budget.Guard(func() { p = arbiter.Predict(bm, outs[oi], cfg) })
			if gerr != nil {
				armXor[oi] = true
				predicted[oi], predWhy[oi] = "xor", "predict failed: "+gerr.Error()
				degrade(oname, "predict", "xor-arm", gerr.Error())
				continue
			}
			predicted[oi], predWhy[oi] = p.Decision.String(), p.Why
			switch p.Decision {
			case arbiter.Sop:
				armSop[oi] = true
			case arbiter.Hedge:
				armXor[oi], armSop[oi] = true, true
			default:
				armXor[oi] = true
			}
			opt.Obs.Arbiter().Prediction(predicted[oi])
		}
		markPhase("predict")
	default: // BasisXor
		for oi := range outs {
			armXor[oi] = true
			predicted[oi] = "forced"
		}
	}

	net := network.New(spec.Name + "_rm")
	pis := make([]int, nPI)
	for i, piID := range spec.PIs {
		pis[i] = net.AddPI(spec.Gates[piID].Name)
	}

	// One emitter for the whole network: structurally identical
	// subexpressions are shared across outputs. Polarity is handled per
	// literal inside expressions, so the emitter itself is polarity-free;
	// expressions below are rewritten into PI space first.
	em := factor.NewEmitter(net, pis, nil)

	// Factoring contexts are shared across outputs with the same polarity
	// vector (registry cube lists live in literal space, which only
	// matches between identical vectors). This is the cross-output
	// subfunction reuse the paper obtains with SIS resub.
	fopt := factor.Options{ApplyRules: opt.Rules, Budget: bud, Obs: opt.Obs.Factor()}
	cubeCtxs := make(map[string]*factor.Context)
	ofddCtxs := make(map[string]*factor.OFDDContext)
	polKey := func(pol []bool) string {
		k := make([]byte, len(pol))
		for i, p := range pol {
			if p {
				k[i] = '1'
			} else {
				k[i] = '0'
			}
		}
		return string(k)
	}

	// Per-output FPRM derivation — the parallel fan-out of the flow. The
	// paper's derivation is independent per output (each gets its own
	// OFDD manager; the shared specification BDDs are read-only after
	// ToBDDs, and the one budget is race-safe), so the outputs run on a
	// bounded worker pool. Every step of the ladder stays guarded, now
	// inside each worker goroutine: an output whose OFDD, cube
	// extraction, or budget blows falls back to a structural copy of its
	// specification cone (cone[oi]), never failing the run. Results land
	// in per-output slots and merge in output order, so the network is
	// bit-identical for every worker count.
	enterPhase("fprm")
	opt.Obs.StartOutputs(len(outs))
	res.Forms = make([]*fprm.Form, len(outs))
	res.CubeCounts = make([]int64, len(outs))
	spans := make([]OutputSpan, len(outs))
	cone := make([]bool, len(outs))
	// Arm slots. xorFail/sopFail record a contained arm failure (panic,
	// budget trip, equivalence miss) whose cone falls back to the sibling
	// arm at selection time rather than down the spec-cone ladder; the
	// ladder is reached only when every arm of a cone fails. Hedged cones
	// run both arms under sibling slices of the run budget with
	// loser-cancellation once a deadline exists (budget.Hedge).
	xorFail := make([]string, len(outs))
	sopFail := make([]string, len(outs))
	sopRes := make([]*sisbase.Result, len(outs))
	hedges := make([]*budget.Hedge, len(outs))
	xorBud := make([]*budget.Budget, len(outs))
	sopBud := make([]*budget.Budget, len(outs))
	type armJob struct {
		sop bool
		oi  int
	}
	jobList := make([]armJob, 0, len(outs))
	for oi := range outs {
		xorBud[oi], sopBud[oi] = bud, bud
		if armXor[oi] && armSop[oi] {
			hedges[oi] = bud.Hedge()
			xorBud[oi] = hedges[oi].Arm(0)
			sopBud[oi] = hedges[oi].Arm(1)
			opt.Obs.Arbiter().HedgeStarted()
		}
		if !armXor[oi] {
			// SOP-only cone: the GF(2) slots stay empty, exactly as a
			// pure-SOP candidate is later polished (factoring skips the
			// cone; redundancy removal sees an empty form).
			res.Forms[oi] = fprm.NewForm(nPI, nil)
			res.CubeCounts[oi] = -1
		}
		if armXor[oi] {
			jobList = append(jobList, armJob{sop: false, oi: oi})
		}
		if armSop[oi] {
			jobList = append(jobList, armJob{sop: true, oi: oi})
		}
	}
	workers := opt.workers()
	if workers > len(jobList) {
		workers = len(jobList)
	}
	if workers < 1 {
		workers = 1
	}
	res.Workers = workers
	// Exhaustive polarity search shards its Gray-code walk across the
	// workers the output fan-out leaves idle (one output → all of them).
	searchWorkers := 1
	if len(outs) > 0 {
		if searchWorkers = opt.workers() / len(outs); searchWorkers < 1 {
			searchWorkers = 1
		}
	}
	slotDegs := make([][]Degradation, len(outs))
	residual := make([]any, len(outs))
	ofddHook := func(oi int) func(nodes int) *budget.Err {
		if opt.Hooks != nil && opt.Hooks.OFDDAlloc != nil {
			return opt.Hooks.OFDDAlloc(oi)
		}
		return nil
	}
	deriveOne := func(w, oi int) {
		abud := xorBud[oi]
		contained := armSop[oi] // a sibling arm exists to absorb failures
		spanStart := time.Now()
		// Residual (non-budget) panics cannot cross the goroutine
		// boundary to Synthesize's recover; capture them here and
		// re-raise on the main goroutine after the merge barrier — unless
		// a sibling SOP arm exists, in which case the panic is this arm's
		// contained failure and the sibling's result covers the cone.
		defer func() {
			if r := recover(); r != nil {
				if !contained {
					residual[oi] = r
				} else {
					if be, ok := r.(*budget.Err); ok {
						xorFail[oi] = be.Error()
					} else {
						xorFail[oi] = fmt.Sprintf("panic: %v", r)
					}
					res.Forms[oi] = fprm.NewForm(nPI, nil)
					res.CubeCounts[oi] = -1
				}
			}
			spans[oi] = OutputSpan{
				Output:  spec.POs[oi].Name,
				Index:   oi,
				Worker:  w,
				Elapsed: time.Since(spanStart),
			}
		}()
		if opt.Hooks != nil && opt.Hooks.Worker != nil {
			opt.Hooks.Worker(w, oi)
		}
		if opt.Hooks != nil && opt.Hooks.Arm != nil {
			opt.Hooks.Arm("xor", oi)
		}
		oname := spec.POs[oi].Name
		// fail routes an arm failure: to the sibling arm when one exists
		// (recorded at selection), else down the spec-cone ladder.
		fail := func(stage, reason string) {
			res.Forms[oi] = fprm.NewForm(nPI, nil)
			res.CubeCounts[oi] = -1
			if contained {
				xorFail[oi] = reason
				return
			}
			cone[oi] = true
			slotDegs[oi] = append(slotDegs[oi], Degradation{oname, stage, "spec-cone", reason})
		}
		if perr := abud.Exceeded(); perr != nil {
			fail("fprm", perr.Error())
			return
		}
		var form *fprm.Form
		var count int64
		var isHuge, searchCut bool
		gerr := budget.Guard(func() {
			form, count, isHuge, searchCut = deriveForm(bm, outs[oi], opt, abud, searchWorkers, 1, ofddHook(oi), opt.Obs.Output(oi))
		})
		if gerr != nil || isHuge {
			reason := "OFDD node cap exceeded"
			if gerr != nil {
				reason = gerr.Error()
			}
			stage := "fprm"
			// Budgeted-retry rung: a transient per-phase cap trip gets
			// one retry on a relaxed budget slice before the output
			// falls all the way to the spec-cone copy.
			if opt.RetryFactor > 0 && retryableTrip(gerr, isHuge) {
				slotDegs[oi] = append(slotDegs[oi], Degradation{oname, "fprm", "retry", reason})
				rerr := budget.Guard(func() {
					form, count, isHuge, searchCut = deriveForm(bm, outs[oi], opt,
						abud.Relaxed(opt.RetryFactor), searchWorkers, opt.RetryFactor, ofddHook(oi), opt.Obs.Output(oi))
				})
				if rerr == nil && !isHuge {
					res.Forms[oi] = form
					res.CubeCounts[oi] = count
					if searchCut {
						slotDegs[oi] = append(slotDegs[oi], Degradation{oname, "polarity-search", "best-so-far", "budget exhausted during polarity search"})
					}
					if hedges[oi] != nil {
						hedges[oi].Win(0)
					}
					return
				}
				reason = "OFDD node cap exceeded"
				if rerr != nil {
					reason = rerr.Error()
				}
				stage = "retry"
			}
			fail(stage, reason)
			return
		}
		if searchCut {
			slotDegs[oi] = append(slotDegs[oi], Degradation{oname, "polarity-search", "best-so-far", "budget exhausted during polarity search"})
		}
		res.Forms[oi] = form
		res.CubeCounts[oi] = count
		if hedges[oi] != nil {
			hedges[oi].Win(0)
		}
	}
	// sopOne runs one cone's SOP arm: the SIS-style script on the
	// extracted spec cone, under the arm's budget slice and context. All
	// failures are contained — the GF(2) arm or the spec-cone ladder
	// covers the cone — and the result is verified against the spec BDD
	// at selection time before it can win.
	sopOne := func(w, oi int) {
		spanStart := time.Now()
		defer func() {
			if r := recover(); r != nil {
				if be, ok := r.(*budget.Err); ok {
					sopFail[oi] = be.Error()
				} else {
					sopFail[oi] = fmt.Sprintf("panic: %v", r)
				}
			}
			if !armXor[oi] {
				spans[oi] = OutputSpan{
					Output:  spec.POs[oi].Name,
					Index:   oi,
					Worker:  w,
					Elapsed: time.Since(spanStart),
				}
			}
		}()
		if opt.Hooks != nil && opt.Hooks.Worker != nil {
			opt.Hooks.Worker(w, oi)
		}
		if opt.Hooks != nil && opt.Hooks.Arm != nil {
			opt.Hooks.Arm("sop", oi)
		}
		abud := sopBud[oi]
		if perr := abud.Exceeded(); perr != nil {
			sopFail[oi] = perr.Error()
			return
		}
		r, rerr := sisbase.RunCone(abud.Context(), spec, oi, sisbase.DefaultOptions(), abud)
		if rerr != nil {
			sopFail[oi] = rerr.Error()
			return
		}
		sopRes[oi] = r
		if hedges[oi] != nil {
			hedges[oi].Win(1)
		}
	}
	runJob := func(w int, j armJob) {
		if j.sop {
			sopOne(w, j.oi)
		} else {
			deriveOne(w, j.oi)
		}
	}
	if workers == 1 {
		for _, j := range jobList {
			runJob(0, j)
		}
	} else {
		jobs := make(chan armJob)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := range jobs {
					runJob(w, j)
				}
			}(w)
		}
		for _, j := range jobList {
			jobs <- j
		}
		close(jobs)
		wg.Wait()
	}
	for _, h := range hedges {
		if h != nil {
			h.Stop()
		}
	}
	// Deterministic merge: degradations in output order; a residual
	// panic (a bug, not a budget trip) re-raises into the boundary above.
	for oi := range outs {
		if residual[oi] != nil {
			panic(residual[oi])
		}
		res.Degradations = append(res.Degradations, slotDegs[oi]...)
	}
	res.OutputTimes = spans
	// Record each output's final form size sequentially after the merge
	// barrier — one deterministic writer per Search group.
	for oi := range outs {
		if f := res.Forms[oi]; f != nil && armXor[oi] && !cone[oi] && xorFail[oi] == "" {
			opt.Obs.Output(oi).SetBest(f.Cubes.Len(), listLits(f.Cubes))
		}
	}
	markPhase("fprm")

	// Factor outputs smallest-first so the divisor registry is populated
	// bottom-up (an adder's c₁ is registered before c₂ needs it), then
	// emit largest-first so the big cones create the shared gates the
	// smaller cones reuse (a sum reuses its carry's a⊕b).
	orderAsc := make([]int, len(outs))
	for i := range orderAsc {
		orderAsc[i] = i
	}
	sort.SliceStable(orderAsc, func(a, b int) bool {
		return res.CubeCounts[orderAsc[a]] < res.CubeCounts[orderAsc[b]]
	})

	enterPhase("factor")
	cubeMethodCap := effectiveCap(opt.cubeMethodLimit(), bud.Limits().Cubes)
	exprs := make([]*factor.Expr, len(outs))
	for _, oi := range orderAsc {
		if !armXor[oi] || cone[oi] || xorFail[oi] != "" {
			continue // no GF(2) arm result to factor; covered at emit/selection
		}
		oname := spec.POs[oi].Name
		if perr := bud.Exceeded(); perr != nil {
			cone[oi] = true
			degrade(oname, "factor", "spec-cone", perr.Error())
			continue
		}
		form := res.Forms[oi]
		key := polKey(form.Polarity)
		// Over-cap cube lists must never feed the cube method (a sampled
		// list would synthesize the wrong function); they route to the
		// OFDD method, which factors the exact decision diagram.
		useCube := opt.method() == MethodCube && res.CubeCounts[oi] <= int64(cubeMethodCap)
		if opt.method() == MethodCube && !useCube && res.CubeCounts[oi] <= int64(opt.cubeMethodLimit()) {
			// The configured limit would have allowed Method 1; only the
			// budget forced the OFDD route. Record the ladder step.
			degrade(oname, "cube-method", "ofdd-method",
				fmt.Sprintf("cube budget %d below FPRM cube count %d", bud.Limits().Cubes, res.CubeCounts[oi]))
		}
		factorOne := func(fo factor.Options, fbud *budget.Budget,
			cubeCtxs map[string]*factor.Context, ofddCtxs map[string]*factor.OFDDContext) {
			var e *factor.Expr
			if useCube && opt.ESOP {
				if de := deriveESOP(form, fo, cubeCtxs); de != nil {
					exprs[oi] = de
					return
				}
			}
			if useCube {
				cx, ok := cubeCtxs[key]
				if !ok {
					cx = factor.NewContext(fo)
					cubeCtxs[key] = cx
				}
				e = cx.Factor(form.Cubes)
			} else {
				cx, ok := ofddCtxs[key]
				if !ok {
					om := ofdd.New(nPI, form.Polarity)
					om.SetBudget(fbud)
					om.SetStats(opt.Obs.OFDD())
					if opt.Hooks != nil && opt.Hooks.FactorOFDDAlloc != nil {
						om.SetAllocHook(opt.Hooks.FactorOFDDAlloc())
					}
					cx = factor.NewOFDDContext(om, fo)
					ofddCtxs[key] = cx
				}
				e = cx.Factor(cx.M.FromBDD(bm, outs[oi]))
			}
			// Rewrite literal space into PI space so one emitter serves all
			// outputs even when their polarity vectors differ.
			exprs[oi] = applyPolarity(e, form.Polarity)
		}
		gerr := budget.Guard(func() { factorOne(fopt, bud, cubeCtxs, ofddCtxs) })
		if gerr != nil && opt.RetryFactor > 0 && retryableTrip(gerr, false) {
			// Budgeted-retry rung, factor edition: one retry on a relaxed
			// slice with fresh one-shot contexts — the shared registries
			// keep the original budget and may hold the half-state of the
			// tripped attempt, so the retry must not touch them (its
			// divisors simply go unshared, a quality loss only).
			degrade(oname, "factor", "retry", gerr.Error())
			rbud := bud.Relaxed(opt.RetryFactor)
			rfopt := factor.Options{ApplyRules: opt.Rules, Budget: rbud}
			gerr = budget.Guard(func() {
				factorOne(rfopt, rbud,
					map[string]*factor.Context{}, map[string]*factor.OFDDContext{})
			})
			if gerr != nil {
				cone[oi] = true
				exprs[oi] = nil
				degrade(oname, "retry", "spec-cone", gerr.Error())
			}
		} else if gerr != nil {
			cone[oi] = true
			exprs[oi] = nil
			degrade(oname, "factor", "spec-cone", gerr.Error())
		}
	}
	markPhase("factor")

	enterPhase("emit")
	poGate := make([]int, len(outs))
	emitted := make([]bool, len(outs))
	for i := len(orderAsc) - 1; i >= 0; i-- {
		oi := orderAsc[i]
		if !armXor[oi] || cone[oi] || xorFail[oi] != "" {
			continue
		}
		poGate[oi] = em.Emit(exprs[oi])
		emitted[oi] = true
	}
	// Outputs whose functional decision diagrams exploded (Section 6:
	// the method targets functions with manageable FPRM forms) or whose
	// budget ran out keep their original cone, copied structurally. Under
	// an arbiter basis the same copy also backs a failed GF(2) arm inside
	// the pure-XOR candidate (the cone itself falls back to the SOP arm).
	copier := newConeCopier(spec, net, pis)
	for oi := range outs {
		if armXor[oi] && !emitted[oi] {
			poGate[oi] = copier.copy(spec.POs[oi].Gate)
		}
	}
	if basis == BasisXor {
		for oi := range outs {
			net.AddPO(spec.POs[oi].Name, poGate[oi])
		}
		net.Strash()
		net.Sweep()
	}
	markPhase("emit")

	if basis != BasisXor {
		// Selection and candidate arbitration of the combined flow; the
		// legacy tail below is the pure GF(2) path, byte for byte.
		ar := &arbiterRun{
			spec: spec, opt: opt, basis: basis, bm: bm, bud: bud,
			outs: outs, res: res, net: net, poGate: poGate,
			emitted: emitted, armXor: armXor, armSop: armSop,
			xorFail: xorFail, sopFail: sopFail, sopRes: sopRes,
			predicted: predicted, predWhy: predWhy,
			enterPhase: enterPhase, markPhase: markPhase,
			degrade: degrade, start: start,
		}
		return ar.finish()
	}

	// Prepare the do-no-harm reference early: when the factored network
	// is already far larger than the cleaned specification, redundancy
	// removal cannot close the gap and the time is better saved.
	enterPhase("do-no-harm-prep")
	var specOpt *network.Network
	if !opt.NoFallback {
		specOpt = spec.Clone()
		specOpt.Sweep()
		specOpt.Strash()
		if opt.MergeNodes {
			// MergeEquivalentGates only mutates after its signature loop
			// completes, so a budget trip mid-loop leaves specOpt intact.
			if gerr := budget.Guard(func() { MergeEquivalentGates(specOpt, bm) }); gerr != nil {
				degrade("*", "merge", "skipped", gerr.Error())
			}
		}
		specOpt.Sweep()
		// Same cleanup the FPRM result gets below, so the do-no-harm
		// comparison is between equally-polished networks.
		cleanupNetwork(specOpt)
	}
	hopeless := specOpt != nil && net.CollectStats().Gates2 > 8*specOpt.CollectStats().Gates2

	res.Redund = polishNetwork(net, res.Forms, opt, bud, bm, degrade, hopeless, enterPhase, markPhase)
	// Safety net: the synthesized network must match the specification.
	// The budget is detached first — verification must always run to
	// completion, even (especially) after a deadline trip.
	if opt.Verify {
		enterPhase("verify")
		bm.SetBudget(nil)
		bm.SetAllocHook(nil) // like the budget, probes must not fail verification
		got := net.ToBDDs(bm)
		for i := range got {
			if got[i] != outs[i] {
				return nil, fmt.Errorf("core: output %s: %w", spec.POs[i].Name, ErrNotEquivalent)
			}
		}
		markPhase("verify")
	}
	res.Network = net
	res.Stats = net.CollectStats()

	// Do-no-harm fallback (Section 6 scopes the method to functions with
	// manageable FPRM forms): if the cleaned specification is smaller
	// than the FPRM result, ship that instead.
	if specOpt != nil {
		if st := specOpt.CollectStats(); st.Gates2 < res.Stats.Gates2 {
			res.Network = specOpt
			res.Stats = st
			res.Fallback = true
			degrade("*", "do-no-harm", "swept-spec", "FPRM result larger than cleaned specification")
		}
	}
	res.BudgetSteps = bud.Steps()
	res.BudgetPolls = bud.Polls()
	if opt.Obs != nil {
		snap := opt.Obs.Snapshot()
		res.ObsStats = &snap
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Per-cone arm choices of the basis arbiter.
const (
	chXor  = iota // the GF(2) arm's emitted cone
	chSop         // the SOP arm's verified cone
	chSpec        // the structural spec-cone copy (every arm failed)
)

// arbiterRun carries the mid-flight state of a non-XOR basis run from
// Synthesize's fan-out into the selection and candidate-arbitration
// tail.
type arbiterRun struct {
	spec                  *network.Network
	opt                   Options
	basis                 Basis
	bm                    *bdd.Manager
	bud                   *budget.Budget
	outs                  []bdd.Ref
	res                   *Result
	net                   *network.Network // the emitter network holding the GF(2) cones
	poGate                []int            // per-output root in net (emitted or spec-cone copy)
	emitted               []bool           // true when poGate is a real GF(2) arm result
	armXor, armSop        []bool
	xorFail, sopFail      []string
	sopRes                []*sisbase.Result
	predicted, predWhy    []string
	enterPhase, markPhase func(string)
	degrade               func(output, stage, fallback, reason string)
	start                 time.Time
}

// finish selects each cone's arm, assembles and polishes the candidate
// networks, and arbitrates them so the combined flow is never worse
// than either pure flow — lexicographically in pre-map literals, then
// mapped gates, then mapped literals.
func (a *arbiterRun) finish() (*Result, error) {
	spec, opt, res, net, bm, bud, outs := a.spec, a.opt, a.res, a.net, a.bm, a.bud, a.outs
	nOut := len(outs)
	a.enterPhase("select")
	// Verify the SOP arms: a cone may only fall to an arm whose result
	// provably computes the spec cone. The arm's network is rebuilt as a
	// BDD on the shared manager (budget-guarded, sequential, in output
	// order — deterministic at any worker count) and compared by
	// hash-consed identity; a miss is that arm's contained failure.
	for oi := 0; oi < nOut; oi++ {
		if a.sopRes[oi] == nil {
			if a.armSop[oi] && a.sopFail[oi] == "" {
				a.sopFail[oi] = "sop arm produced no result"
			}
			continue
		}
		var got []bdd.Ref
		gerr := budget.Guard(func() { got = a.sopRes[oi].Network.ToBDDs(bm) })
		if gerr != nil {
			a.sopRes[oi] = nil
			a.sopFail[oi] = "sop verify: " + gerr.Error()
			continue
		}
		if len(got) != 1 || got[0] != outs[oi] {
			a.sopRes[oi] = nil
			a.sopFail[oi] = "sop arm result not equivalent to spec cone"
		}
	}
	// Per-cone choice: literals, then total gates, then XOR on a tie
	// (the GF(2) arm is the paper's flow and the deterministic default).
	// An arm failure falls back to its sibling's verified result; the
	// spec-cone ladder is reached only when every arm of a cone failed.
	choice := make([]int, nOut)
	for oi := 0; oi < nOut; oi++ {
		oname := spec.POs[oi].Name
		bc := BasisChoice{Output: oname, Predicted: a.predicted[oi], XorLits: -1, SopLits: -1, Reason: a.predWhy[oi]}
		xorOK, sopOK := a.emitted[oi], a.sopRes[oi] != nil
		var xs, ss network.Stats
		if xorOK {
			xs = coneStats(net, a.poGate[oi])
			bc.XorLits = xs.Lits
		}
		if sopOK {
			ss = a.sopRes[oi].Stats
			bc.SopLits = ss.Lits
		}
		switch {
		case xorOK && sopOK:
			if ss.Lits < xs.Lits || (ss.Lits == xs.Lits && ss.Total < xs.Total) {
				choice[oi] = chSop
				opt.Obs.Arbiter().ArmWin("sop")
			} else {
				choice[oi] = chXor
				opt.Obs.Arbiter().ArmWin("xor")
			}
		case xorOK:
			choice[oi] = chXor
			if a.armSop[oi] {
				a.degrade(oname, "sop-arm", "xor-arm", a.sopFail[oi])
				opt.Obs.Arbiter().Override()
				bc.Reason = a.sopFail[oi]
			}
		case sopOK:
			choice[oi] = chSop
			if a.armXor[oi] {
				reason := a.xorFail[oi]
				if reason == "" {
					reason = "GF(2) arm fell back to spec-cone"
				}
				a.degrade(oname, "xor-arm", "sop-arm", reason)
				opt.Obs.Arbiter().Override()
				bc.Reason = reason
			}
		default:
			choice[oi] = chSpec
			if a.xorFail[oi] != "" {
				a.degrade(oname, "xor-arm", "spec-cone", a.xorFail[oi])
			}
			if a.armSop[oi] && a.sopFail[oi] != "" {
				a.degrade(oname, "sop-arm", "spec-cone", a.sopFail[oi])
			}
		}
		switch choice[oi] {
		case chXor:
			bc.Chosen = "xor"
		case chSop:
			bc.Chosen = "sop"
		default:
			bc.Chosen = "spec-cone"
		}
		res.BasisChoices = append(res.BasisChoices, bc)
	}
	// Candidate assembly. The hybrid keeps each cone's chosen arm; a
	// pure-XOR or pure-SOP assembly is arbitrated alongside it whenever
	// that arm succeeded on every cone. Per-cone choices cannot see
	// cross-cone sharing (an adder's carry chain amortizes across
	// outputs), so a hybrid that wins every cone in isolation can still
	// lose to a single-basis network; arbitrating the pure assemblies
	// keeps the combined flow no worse than either on the whole circuit.
	type candidate struct {
		name string
		vec  []int
		dup  int // index of an identical earlier candidate, else -1
		n    *network.Network
	}
	cands := []candidate{{name: "hybrid", vec: choice, dup: -1}}
	xorPure, sopPure := true, true
	for oi := 0; oi < nOut; oi++ {
		xorPure = xorPure && a.emitted[oi]
		sopPure = sopPure && a.sopRes[oi] != nil
	}
	if xorPure {
		vec := make([]int, nOut)
		for oi := range vec {
			vec[oi] = chXor
		}
		cands = append(cands, candidate{name: "xor", vec: vec, dup: -1})
	}
	if sopPure {
		vec := make([]int, nOut)
		for oi := range vec {
			vec[oi] = chSop
		}
		cands = append(cands, candidate{name: "sop", vec: vec, dup: -1})
	}
	for i := 1; i < len(cands); i++ {
		for j := 0; j < i; j++ {
			if cands[j].dup < 0 && vecEqual(cands[i].vec, cands[j].vec) {
				cands[i].dup = j
				break
			}
		}
	}
	allXor := func(vec []int) bool {
		for _, c := range vec {
			if c != chXor {
				return false
			}
		}
		return true
	}
	// Build assembled candidates first — they graft cones out of the
	// emitter network before Strash rewrites it in place — then finish
	// the all-XOR candidate (when present) on the emitter network
	// itself, exactly as the pure GF(2) flow finishes it.
	for i := range cands {
		if cands[i].dup < 0 && !allXor(cands[i].vec) {
			cands[i].n = a.assemble(cands[i].vec)
		}
	}
	for i := range cands {
		if cands[i].dup < 0 && allXor(cands[i].vec) {
			for oi := 0; oi < nOut; oi++ {
				net.AddPO(spec.POs[oi].Name, a.poGate[oi])
			}
			net.Strash()
			net.Sweep()
			cands[i].n = net
			break
		}
	}
	a.markPhase("select")

	// Do-no-harm reference, prepared exactly as in the pure flow.
	a.enterPhase("do-no-harm-prep")
	var specOpt *network.Network
	if !opt.NoFallback {
		specOpt = spec.Clone()
		specOpt.Sweep()
		specOpt.Strash()
		if opt.MergeNodes {
			if gerr := budget.Guard(func() { MergeEquivalentGates(specOpt, bm) }); gerr != nil {
				a.degrade("*", "merge", "skipped", gerr.Error())
			}
		}
		specOpt.Sweep()
		cleanupNetwork(specOpt)
	}

	// Polish every candidate exactly as the single-basis flow polishes
	// its one network; only the winning candidate's ladder entries are
	// recorded.
	stats := make([]network.Stats, len(cands))
	rress := make([]redund.Result, len(cands))
	degs := make([][]Degradation, len(cands))
	for i := range cands {
		if cands[i].dup >= 0 {
			continue
		}
		i := i
		sink := func(output, stage, fallback, reason string) {
			degs[i] = append(degs[i], Degradation{Output: output, Stage: stage, Fallback: fallback, Reason: reason})
		}
		hopeless := specOpt != nil && cands[i].n.CollectStats().Gates2 > 8*specOpt.CollectStats().Gates2
		rress[i] = polishNetwork(cands[i].n, a.formsFor(cands[i].vec), opt, bud, bm, sink, hopeless, a.enterPhase, a.markPhase)
		stats[i] = cands[i].n.CollectStats()
	}
	for i := range cands {
		if d := cands[i].dup; d >= 0 {
			cands[i].n = cands[d].n
			stats[i] = stats[d]
			rress[i] = rress[d]
			degs[i] = degs[d]
		}
	}
	// Final arbitration: pre-map literals, then mapped gates, then
	// mapped literals, then total gates, then the fixed candidate order
	// (hybrid, xor, sop) — the never-worse guarantee, lexicographic on
	// the metrics the paper reports. The mapped tie-breaks exist because
	// the 2-input cost model cannot order candidates whose literal
	// counts tie: a NAND3-friendly SOP cone maps tighter than an
	// inverter-heavy GF(2) cone of the same pre-map size, and only the
	// library can see that.
	lib := techmap.Library()
	const worstMap = int(^uint(0) >> 1)
	mapCostOf := func(n *network.Network) (gates, lits int) {
		m, merr := techmap.Map(n, lib)
		if merr != nil {
			return worstMap, worstMap // unmappable candidates lose every tie
		}
		return m.Gates, m.Lits
	}
	mapg := make([]int, len(cands))
	mapl := make([]int, len(cands))
	for i := range cands {
		if cands[i].dup >= 0 {
			mapg[i], mapl[i] = mapg[cands[i].dup], mapl[cands[i].dup]
			continue
		}
		mapg[i], mapl[i] = mapCostOf(cands[i].n)
	}
	better := func(i, j int) bool {
		if stats[i].Lits != stats[j].Lits {
			return stats[i].Lits < stats[j].Lits
		}
		if mapg[i] != mapg[j] {
			return mapg[i] < mapg[j]
		}
		if mapl[i] != mapl[j] {
			return mapl[i] < mapl[j]
		}
		return stats[i].Total < stats[j].Total
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if better(i, best) {
			best = i
		}
	}
	win := cands[best]
	res.Degradations = append(res.Degradations, degs[best]...)
	res.Redund = rress[best]
	distinct := 0
	for i := range cands {
		if cands[i].dup < 0 {
			distinct++
		}
	}
	if distinct > 1 {
		namedLits := func(name string) int {
			for i := range cands {
				if cands[i].name == name {
					return stats[i].Lits
				}
			}
			return -1
		}
		namedMapG := func(name string) int {
			for i := range cands {
				if cands[i].name == name {
					return mapg[i]
				}
			}
			return -1
		}
		res.BasisChoices = append(res.BasisChoices, BasisChoice{
			Output: "*", Predicted: a.basis.String(), Chosen: win.name,
			XorLits: namedLits("xor"), SopLits: namedLits("sop"),
			Reason: fmt.Sprintf("lits hybrid=%d xor=%d sop=%d; map-gates hybrid=%d xor=%d sop=%d",
				stats[0].Lits, namedLits("xor"), namedLits("sop"),
				mapg[0], namedMapG("xor"), namedMapG("sop")),
		})
	}
	// Safety net, identical to the pure flow's verify phase.
	if opt.Verify {
		a.enterPhase("verify")
		bm.SetBudget(nil)
		bm.SetAllocHook(nil)
		got := win.n.ToBDDs(bm)
		for i := range got {
			if got[i] != outs[i] {
				return nil, fmt.Errorf("core: output %s: %w", spec.POs[i].Name, ErrNotEquivalent)
			}
		}
		a.markPhase("verify")
	}
	res.Network = win.n
	res.Stats = stats[best]
	// Do-no-harm under the same lexicographic order as the candidate
	// arbitration (Lits is 2×Gates2, so the literal comparison is the
	// legacy Gates2 one): the swept spec replaces the winner only when
	// strictly better, so a full tie still ships the synthesized result.
	if specOpt != nil {
		st := specOpt.CollectStats()
		replace := st.Lits < res.Stats.Lits
		if st.Lits == res.Stats.Lits {
			sg, sl := mapCostOf(specOpt)
			replace = sg < mapg[best] || (sg == mapg[best] && sl < mapl[best])
		}
		if replace {
			res.Network = specOpt
			res.Stats = st
			res.Fallback = true
			a.degrade("*", "do-no-harm", "swept-spec", "FPRM result larger than cleaned specification")
		}
	}
	res.BudgetSteps = bud.Steps()
	res.BudgetPolls = bud.Polls()
	if opt.Obs != nil {
		snap := opt.Obs.Snapshot()
		res.ObsStats = &snap
	}
	res.Elapsed = time.Since(a.start)
	return res, nil
}

// assemble builds one candidate network: for each output, the chosen
// arm's cone — from the emitter network (GF(2)), the arm's SOP network,
// or the specification — is grafted into a fresh hash-consed network
// with the spec's PI order, so structurally identical subcones are
// shared across outputs by construction.
func (a *arbiterRun) assemble(vec []int) *network.Network {
	spec := a.spec
	cn := network.New(spec.Name + "_rm")
	cpis := make([]int, len(spec.PIs))
	for i, piID := range spec.PIs {
		cpis[i] = cn.AddPI(spec.Gates[piID].Name)
	}
	fromNet := newConeCopier(a.net, cn, cpis)
	fromSpec := newConeCopier(spec, cn, cpis)
	for oi := range vec {
		var root int
		switch vec[oi] {
		case chXor:
			root = fromNet.copy(a.poGate[oi])
		case chSop:
			sn := a.sopRes[oi].Network
			root = newConeCopier(sn, cn, cpis).copy(sn.POs[0].Gate)
		default:
			root = fromSpec.copy(spec.POs[oi].Gate)
		}
		cn.AddPO(spec.POs[oi].Name, root)
	}
	cn.Strash()
	cn.Sweep()
	return cn
}

// formsFor returns the redundancy-removal forms matching a candidate:
// the derived FPRM form for GF(2)-chosen cones, an empty form otherwise
// (SOP and spec cones have no GF(2) cube list, exactly what a pure-SOP
// run's redundancy pass would see).
func (a *arbiterRun) formsFor(vec []int) []*fprm.Form {
	fs := make([]*fprm.Form, len(vec))
	for oi := range vec {
		if vec[oi] == chXor && a.emitted[oi] {
			fs[oi] = a.res.Forms[oi]
		} else {
			fs[oi] = fprm.NewForm(a.spec.NumPIs(), nil)
		}
	}
	return fs
}

func vecEqual(x, y []int) bool {
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// coneStats computes CollectStats' cost model over the cone rooted at
// one gate — the whole-network metric restricted to a single output.
func coneStats(n *network.Network, root int) network.Stats {
	var s network.Stats
	seen := make(map[int]bool)
	var visit func(int)
	visit = func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		g := &n.Gates[id]
		for _, f := range g.Fanins {
			visit(f)
		}
		switch g.Type {
		case network.PI:
		case network.And, network.Or, network.Nand, network.Nor:
			s.Total++
			s.Gates2 += len(g.Fanins) - 1
		case network.Xor, network.Xnor:
			s.Total++
			s.XORs++
			s.Gates2 += 3 * (len(g.Fanins) - 1)
		default: // Const0/Const1/Buf/Not
			s.Total++
		}
	}
	visit(root)
	s.Lits = 2 * s.Gates2
	return s
}

// polishNetwork runs the shared optimization tail — redundancy removal
// (snapshot-guarded), cross-output merging, structural cleanup — on one
// network. Both the pure flow's single network and every arbiter
// candidate go through this, so the do-no-harm and never-worse
// comparisons are always between equally-polished networks.
func polishNetwork(net *network.Network, forms []*fprm.Form, opt Options, bud *budget.Budget, bm *bdd.Manager,
	degrade func(output, stage, fallback, reason string), hopeless bool,
	enterPhase, markPhase func(string)) redund.Result {
	var rres redund.Result
	enterPhase("redund")
	if opt.Redund && !hopeless {
		if perr := bud.Exceeded(); perr != nil {
			degrade("*", "redund", "skipped", perr.Error())
		} else {
			// Snapshot first: a budget trip inside the pass could land
			// mid-rewrite, and a half-applied candidate must not survive.
			snap := net.Clone()
			gerr := budget.Guard(func() {
				rres = redund.Remove(net, redund.Options{
					Forms:  forms,
					Verify: opt.Verify,
					Budget: bud,
				})
			})
			if gerr != nil {
				*net = *snap
				rres = redund.Result{}
				degrade("*", "redund", "skipped", gerr.Error())
			} else if rres.BudgetCut {
				// The pass stopped early but kept its committed
				// reductions: weaker optimization, not a fallback
				// network — still worth a truthful ladder entry.
				reason := "budget exhausted"
				if perr := bud.Exceeded(); perr != nil {
					reason = perr.Error()
				}
				degrade("*", "redund", "partial", reason)
			}
		}
	}
	markPhase("redund")
	enterPhase("merge")
	if opt.MergeNodes {
		// Safe without a snapshot: mutation happens only after the BDD
		// signature loop, the sole place a budget trip can occur.
		if gerr := budget.Guard(func() { MergeEquivalentGates(net, bm) }); gerr != nil {
			degrade("*", "merge", "skipped", gerr.Error())
		}
		net.Sweep()
	}
	markPhase("merge")
	// Structural cleanup after the optimization passes: cancel inverter
	// pairs, rebalance XOR chains (deferred until after redund, whose
	// Section 4 analysis depends on the factor-phase tree shapes),
	// re-hash, and compact away everything the merges left dead. Runs
	// before verify so the equivalence check covers it.
	enterPhase("cleanup")
	cleanupNetwork(net)
	markPhase("cleanup")
	return rres
}

// cleanupNetwork runs the cheap structural post-passes: inverter-pair
// elimination, XOR-tree rebalancing, a re-hash of anything the rewrites
// uncovered, and compaction of dead gates. None of the passes can
// increase Gates2 (inverters are free, a rebalanced tree has the same
// leaf count or fewer, hashing only removes), so running them is always
// safe for the do-no-harm comparison.
func cleanupNetwork(net *network.Network) {
	net.ElimInvPairs()
	net.RebalanceXorTrees()
	net.Strash()
	net.Sweep()
	net.Compact()
}

// listLits sums the literal counts of a cube list.
func listLits(l *cube.List) int {
	lits := 0
	for _, c := range l.Cubes {
		lits += c.Size()
	}
	return lits
}

// effectiveCap folds an optional budget cube cap into a configured limit:
// the tighter of the two governs.
func effectiveCap(base int, budCubes int64) int {
	if budCubes > 0 && budCubes < int64(base) {
		return int(budCubes)
	}
	return base
}

// fallbackToSpec is the bottom rung of the degradation ladder: the budget
// was exhausted before the FPRM flow could even start (or the specifica-
// tion BDDs blew the budget), so return a swept structural copy of the
// specification. Sweep and Strash preserve the function by construction;
// when Verify is on this is double-checked by simulation, since the BDD
// route is exactly what just exceeded its budget.
func fallbackToSpec(spec *network.Network, opt Options, reason string, start time.Time) (*Result, error) {
	net := spec.Clone()
	net.Name = spec.Name + "_rm"
	net.Strash()
	net.Sweep()
	net.Compact()
	res := &Result{
		Network:  net,
		Stats:    net.CollectStats(),
		Fallback: true,
		Degradations: []Degradation{{
			Output: "*", Stage: "spec-bdd", Fallback: "swept-spec", Reason: reason,
		}},
	}
	if opt.Verify {
		if err := simVerify(spec, net); err != nil {
			return nil, err
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// simVerify checks equivalence by simulation: exhaustively up to 16
// inputs, randomized beyond (the fallback path cannot afford BDDs).
func simVerify(spec, net *network.Network) error {
	if spec.NumPIs() <= 16 {
		ok, err := verify.Exhaustive(spec, net)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("core: fallback network: %w", ErrNotEquivalent)
		}
		return nil
	}
	o, err := verify.RandomCheck(spec, net, 4096, 1)
	if err != nil {
		return err
	}
	if o >= 0 {
		return fmt.Errorf("core: fallback network output %d: %w", o, ErrNotEquivalent)
	}
	return nil
}

// ofddNodeBudget caps functional-decision-diagram growth per output; an
// OFDD can be exponentially larger than the BDD of the same function
// (long OR chains are the classic case), and such outputs bypass the
// FPRM flow entirely.
const ofddNodeBudget = 200_000

// retryableTrip reports whether a derivation or factoring failure is a
// transient per-phase cap trip — an OFDD blowup (huge) or a nodes/cubes
// budget error — that the budgeted-retry rung may retry. Globally-spent
// resources (deadline, cancellation, steps) and non-budget errors are
// never retried: the resource stays spent, so the retry would only burn
// more of it.
func retryableTrip(err error, huge bool) bool {
	if huge {
		return true
	}
	var be *budget.Err
	if !errors.As(err, &be) {
		return false
	}
	return be.Limit == "nodes" || be.Limit == "cubes"
}

// deriveForm computes the FPRM form of one output with the configured
// polarity search. For outputs whose cube count exceeds the materialize
// limit, a sampled form (for pattern generation) is returned — the
// sampled list is only ever used for redundancy-removal patterns, never
// factored (factoring an incomplete list would change the function);
// outputs whose OFDD explodes come back with huge=true and an empty
// form. searchCut reports a polarity search stopped early by the budget
// (the returned best-so-far form is still exact). searchWorkers shards
// an exhaustive polarity search's Gray-code walk (1 = sequential; the
// result is identical either way). relax scales the built-in OFDD node
// cap (>1 on the retry rung's second attempt; the budget caps are
// already scaled by Budget.Relaxed). allocHook, when non-nil, is the
// chaos allocation probe for this attempt's OFDD manager. s, when
// non-nil, counts the polarity search's candidates and improvements
// (and the OFDD manager feeds the collector's shared OFDD group). The
// caller wraps this in budget.Guard; a budget trip inside unwinds as
// panic(*budget.Err).
func deriveForm(bm *bdd.Manager, f bdd.Ref, opt Options, bud *budget.Budget, searchWorkers int,
	relax float64, allocHook func(nodes int) *budget.Err, s *obs.Search) (form *fprm.Form, count int64, huge, searchCut bool) {
	n := bm.NumVars()
	om := ofdd.New(n, nil)
	om.SetBudget(bud)
	om.SetAllocHook(allocHook)
	om.SetStats(opt.Obs.OFDD())
	nodeCap := ofddNodeBudget
	if relax > 1 {
		nodeCap = int(relax * ofddNodeBudget)
	}
	if c := bud.Limits().OFDDNodes; c > 0 && c < nodeCap {
		nodeCap = c
	}
	ref, ok := om.FromBDDBounded(bm, f, nodeCap)
	if !ok {
		return fprm.NewForm(n, nil), -1, true, false
	}
	count = om.CubeCount(ref)
	cubeMethodCap := effectiveCap(opt.cubeMethodLimit(), bud.Limits().Cubes)
	if count > int64(cubeMethodCap) {
		// Too large to materialize: keep all-positive polarity and sample
		// only as many cubes as the redundancy-removal pattern budget can
		// use anyway.
		sample := effectiveCap(2048, bud.Limits().Cubes)
		if opt.cubeLimit() < sample {
			sample = opt.cubeLimit()
		}
		form = fprm.NewForm(n, nil)
		form.Cubes = om.CubesSample(ref, sample)
		return form, count, false, false
	}
	form = fprm.NewForm(n, nil)
	cubes, err := om.Cubes(ref, cubeMethodCap+1)
	if err != nil {
		// Programmer invariant: CubeCount just reported count ≤ the cap,
		// so extraction from the same diagram cannot exceed it.
		panic(err)
	}
	form.Cubes = cubes
	if count <= int64(opt.searchCubeLimit()) {
		complete := true
		switch opt.Polarity {
		case PolarityGreedy:
			form, complete = fprm.SearchGreedyObs(form, bud, s)
		case PolarityExhaustive:
			if n <= opt.exhaustiveLimit() {
				form, complete = fprm.SearchExhaustiveParallelObs(form, bud, searchWorkers, s)
			} else {
				form, complete = fprm.SearchGreedyObs(form, bud, s)
			}
		}
		searchCut = !complete
	}
	return form, int64(form.Cubes.Len()), false, searchCut
}

// deriveESOP minimizes the form as a mixed-polarity ESOP; when that is
// smaller than the FPRM form, it factors the ESOP in the doubled literal
// space and returns the PI-space expression. Returns nil when the ESOP
// does not improve on the form.
func deriveESOP(form *fprm.Form, fopt factor.Options, ctxs map[string]*factor.Context) *factor.Expr {
	el := esop.FromFPRM(form)
	el.Minimize(0)
	if el.Len() >= form.Cubes.Len() {
		return nil
	}
	n := form.NumVars
	doubled := cube.NewList(2 * n)
	for _, c := range el.Cubes {
		dc := cube.One(2 * n)
		c.Pos.ForEach(func(v int) { dc.Vars.Set(2 * v) })
		c.Neg.ForEach(func(v int) { dc.Vars.Set(2*v + 1) })
		doubled.Add(dc)
	}
	cx, ok := ctxs["esop"]
	if !ok {
		cx = factor.NewContext(fopt)
		ctxs["esop"] = cx
	}
	e := cx.Factor(doubled)
	return undouble(e)
}

// undouble rewrites doubled-space literals back to PI space: 2v ↦ x_v,
// 2v+1 ↦ x̄_v.
func undouble(e *factor.Expr) *factor.Expr {
	memo := make(map[string]*factor.Expr)
	var rec func(*factor.Expr) *factor.Expr
	rec = func(e *factor.Expr) *factor.Expr {
		if r, ok := memo[e.Key()]; ok {
			return r
		}
		var r *factor.Expr
		switch e.Op {
		case factor.OpLit:
			if e.Var%2 == 0 {
				r = factor.Lit(e.Var / 2)
			} else {
				r = factor.Not(factor.Lit(e.Var / 2))
			}
		case factor.OpConst0, factor.OpConst1:
			r = e
		default:
			kids := make([]*factor.Expr, len(e.Kids))
			for i, k := range e.Kids {
				kids[i] = rec(k)
			}
			switch e.Op {
			case factor.OpNot:
				r = factor.Not(kids[0])
			case factor.OpAnd:
				r = factor.AndN(kids...)
			case factor.OpOr:
				r = factor.OrN(kids...)
			case factor.OpXor:
				r = factor.XorN(kids...)
			}
		}
		memo[e.Key()] = r
		return r
	}
	return rec(e)
}

// coneCopier structurally copies gate cones from the specification into
// the result network, sharing already-copied gates.
type coneCopier struct {
	spec, dst *network.Network
	memo      map[int]int
}

func newConeCopier(spec, dst *network.Network, pis []int) *coneCopier {
	c := &coneCopier{spec: spec, dst: dst, memo: make(map[int]int)}
	for i, piID := range spec.PIs {
		c.memo[piID] = pis[i]
	}
	return c
}

func (c *coneCopier) copy(id int) int {
	if g, ok := c.memo[id]; ok {
		return g
	}
	g := &c.spec.Gates[id]
	fanins := make([]int, len(g.Fanins))
	for i, f := range g.Fanins {
		fanins[i] = c.copy(f)
	}
	var nid int
	if len(fanins) == 0 {
		nid = c.dst.AddGate(g.Type)
	} else {
		nid = c.dst.AddGate(g.Type, fanins...)
	}
	c.memo[id] = nid
	return nid
}

// applyPolarity rewrites an expression over FPRM literals into PI space:
// literals of negative-polarity variables become complemented variables.
func applyPolarity(e *factor.Expr, pol []bool) *factor.Expr {
	memo := make(map[string]*factor.Expr)
	var rec func(*factor.Expr) *factor.Expr
	rec = func(e *factor.Expr) *factor.Expr {
		if r, ok := memo[e.Key()]; ok {
			return r
		}
		var r *factor.Expr
		switch e.Op {
		case factor.OpLit:
			if pol == nil || pol[e.Var] {
				r = e
			} else {
				r = factor.Not(factor.Lit(e.Var))
			}
		case factor.OpConst0, factor.OpConst1:
			r = e
		default:
			kids := make([]*factor.Expr, len(e.Kids))
			for i, k := range e.Kids {
				kids[i] = rec(k)
			}
			switch e.Op {
			case factor.OpNot:
				r = factor.Not(kids[0])
			case factor.OpAnd:
				r = factor.AndN(kids...)
			case factor.OpOr:
				r = factor.OrN(kids...)
			case factor.OpXor:
				r = factor.XorN(kids...)
			}
		}
		memo[e.Key()] = r
		return r
	}
	return rec(e)
}

// MergeEquivalentGates merges internal gates computing identical global
// functions (by BDD signature), the effect of the paper's resub step.
// Gates are merged onto their earliest topological representative.
func MergeEquivalentGates(net *network.Network, bm *bdd.Manager) int {
	if bm.NumVars() != net.NumPIs() {
		// Programmer invariant: callers pass the manager the network's
		// BDDs were built in; a variable-count mismatch is a call-site bug.
		panic("core: manager mismatch")
	}
	const sizeCap = 2_000_000
	val := make([]bdd.Ref, len(net.Gates))
	piIdx := make(map[int]int)
	for i, id := range net.PIs {
		piIdx[id] = i
	}
	repl := make([]int, len(net.Gates))
	for i := range repl {
		repl[i] = i
	}
	canon := make(map[bdd.Ref]int)
	merged := 0
	for _, id := range net.TopoOrder() {
		if bm.Size() > sizeCap {
			return merged // give up gracefully on BDD blowup
		}
		g := &net.Gates[id]
		var f bdd.Ref
		switch g.Type {
		case network.PI:
			f = bm.Var(piIdx[id])
		case network.Const0:
			f = bdd.Zero
		case network.Const1:
			f = bdd.One
		default:
			ins := make([]bdd.Ref, len(g.Fanins))
			for i, fi := range g.Fanins {
				ins[i] = val[repl[fi]]
			}
			f = evalBDD(bm, g.Type, ins)
		}
		val[id] = f
		if g.Type == network.PI {
			canon[f] = id
			continue
		}
		if prev, ok := canon[f]; ok {
			repl[id] = prev
			merged++
		} else {
			canon[f] = id
		}
	}
	for i := range net.Gates {
		for j, f := range net.Gates[i].Fanins {
			net.Gates[i].Fanins[j] = repl[f]
		}
	}
	for i := range net.POs {
		net.POs[i].Gate = repl[net.POs[i].Gate]
	}
	return merged
}

func evalBDD(bm *bdd.Manager, t network.GateType, ins []bdd.Ref) bdd.Ref {
	switch t {
	case network.Buf:
		return ins[0]
	case network.Not:
		return bm.Not(ins[0])
	case network.And, network.Nand:
		v := bdd.One
		for _, f := range ins {
			v = bm.And(v, f)
		}
		if t == network.Nand {
			v = bm.Not(v)
		}
		return v
	case network.Or, network.Nor:
		v := bdd.Zero
		for _, f := range ins {
			v = bm.Or(v, f)
		}
		if t == network.Nor {
			v = bm.Not(v)
		}
		return v
	case network.Xor, network.Xnor:
		v := bdd.Zero
		for _, f := range ins {
			v = bm.Xor(v, f)
		}
		if t == network.Xnor {
			v = bm.Not(v)
		}
		return v
	}
	// Programmer invariant: GateType is a closed enum; PI/Const cases are
	// handled by the caller and every logic type is covered above.
	panic("core: bad gate type")
}
