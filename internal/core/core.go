// Package core implements the paper's complete synthesis flow for
// arithmetic functions (Sections 2-4):
//
//  1. derive the FPRM form of every output from a ROBDD through the OFDD
//     (Section 2), optionally searching the polarity vector;
//  2. factor the form algebraically with the cube method or the OFDD
//     method, applying the Reduction/Factorization rules (Section 3);
//  3. emit a multilevel AND/OR/XOR network, sharing identical
//     subexpressions across outputs;
//  4. remove redundant XOR gates and AND fanins by pattern simulation
//     (Section 4);
//  5. merge functionally identical internal nodes across outputs (the
//     paper uses SIS "resub" for this step).
//
// The flow is specified by a gate network (any source: generated
// benchmark, parsed BLIF/PLA); its functional behaviour is preserved
// exactly, which Options.Verify double-checks per rewrite.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bdd"
	"repro/internal/cube"
	"repro/internal/esop"
	"repro/internal/factor"
	"repro/internal/fprm"
	"repro/internal/network"
	"repro/internal/ofdd"
	"repro/internal/redund"
)

// Method selects the algebraic factorization algorithm of Section 3.
type Method int

// Factorization methods.
const (
	MethodCube Method = 1 // Method 1: factor the cube list directly
	MethodOFDD Method = 2 // Method 2: build the initial network from the OFDD
)

// Polarity selects the FPRM polarity search strategy.
type Polarity int

// Polarity search strategies.
const (
	PolarityPositive   Polarity = iota // all-positive (PPRM)
	PolarityGreedy                     // coordinate-descent cube-count minimization
	PolarityExhaustive                 // all 2^n vectors (small inputs only)
)

// Options configure the synthesis flow. The zero value is the paper's
// default configuration except Verify, which callers usually enable.
type Options struct {
	Method   Method   // 0 = MethodCube (Method 1 with the divisor registry)
	Polarity Polarity // polarity search strategy
	// ExhaustiveLimit caps exhaustive polarity search (default 10 inputs).
	ExhaustiveLimit int
	// Rules applies the Section 3 reduction rules during factorization.
	// On by default through DefaultOptions.
	Rules bool
	// Redund runs the Section 4 redundancy removal.
	Redund bool
	// Verify confirms every redundancy-removal rewrite with an exact BDD
	// check (see package redund).
	Verify bool
	// CubeLimit bounds materialized FPRM cube lists (default 50000);
	// outputs above it fall back to MethodOFDD and skip polarity search.
	CubeLimit int
	// SearchCubeLimit bounds cube lists eligible for polarity search
	// (default 2000).
	SearchCubeLimit int
	// CubeMethodLimit bounds cube lists factored with Method 1 (default
	// 2000); larger outputs use the OFDD method, whose cost follows the
	// (often tiny) decision-diagram size rather than the cube count.
	CubeMethodLimit int
	// MergeNodes merges functionally identical internal gates across the
	// network after synthesis (the paper's resub step).
	MergeNodes bool
	// ESOP enables mixed-polarity ESOP minimization (package esop) on top
	// of the FPRM form before factoring — the paper's §6 future-work
	// direction. Outputs whose minimized ESOP is smaller than their FPRM
	// form are factored in a doubled literal space (positive literal of
	// variable v ↦ 2v, negative ↦ 2v+1) so the whole Section 3 machinery
	// applies unchanged.
	ESOP bool
	// NoFallback disables the do-no-harm fallback: by default, when the
	// FPRM-based result is larger than the (swept, hashed, merged)
	// specification itself — which happens for functions with
	// unmanageable FPRM forms, the limitation Section 6 of the paper
	// states — the optimized specification is returned instead.
	NoFallback bool
}

// DefaultOptions returns the paper's flow: cube-method factorization with
// rules (our Method 1 with the cross-output divisor registry outperforms
// Method 2 — the opposite of the paper's mild preference; both are
// available), greedy polarity search, redundancy removal with exact
// verification, and cross-output node merging.
func DefaultOptions() Options {
	return Options{
		Method:     MethodCube,
		Polarity:   PolarityGreedy,
		Rules:      true,
		Redund:     true,
		Verify:     true,
		MergeNodes: true,
	}
}

func (o Options) method() Method {
	if o.Method == 0 {
		return MethodCube
	}
	return o.Method
}

func (o Options) cubeLimit() int {
	if o.CubeLimit > 0 {
		return o.CubeLimit
	}
	return 50000
}

func (o Options) searchCubeLimit() int {
	if o.SearchCubeLimit > 0 {
		return o.SearchCubeLimit
	}
	return 2000
}

func (o Options) cubeMethodLimit() int {
	if o.CubeMethodLimit > 0 {
		return o.CubeMethodLimit
	}
	return 2000
}

func (o Options) exhaustiveLimit() int {
	if o.ExhaustiveLimit > 0 {
		return o.ExhaustiveLimit
	}
	return 10
}

// Result is the outcome of a synthesis run.
type Result struct {
	Network *network.Network
	Forms   []*fprm.Form // per-output FPRM forms (sampled when huge)
	Stats   network.Stats
	Redund  redund.Result
	// Fallback reports that the FPRM result was larger than the cleaned
	// specification, which was returned instead (see Options.NoFallback).
	Fallback bool
	// CubeCounts holds the exact FPRM cube count per output.
	CubeCounts []int64
	// Elapsed is the synthesis wall-clock time.
	Elapsed time.Duration
}

// Synthesize runs the full flow on the functional specification given as a
// gate network and returns a new, functionally equivalent network.
func Synthesize(spec *network.Network, opt Options) (*Result, error) {
	start := time.Now()
	nPI := spec.NumPIs()
	bm := bdd.New(nPI)
	outs := spec.ToBDDs(bm)

	res := &Result{}
	net := network.New(spec.Name + "_rm")
	pis := make([]int, nPI)
	for i, piID := range spec.PIs {
		pis[i] = net.AddPI(spec.Gates[piID].Name)
	}

	// One emitter for the whole network: structurally identical
	// subexpressions are shared across outputs. Polarity is handled per
	// literal inside expressions, so the emitter itself is polarity-free;
	// expressions below are rewritten into PI space first.
	em := factor.NewEmitter(net, pis, nil)

	// Factoring contexts are shared across outputs with the same polarity
	// vector (registry cube lists live in literal space, which only
	// matches between identical vectors). This is the cross-output
	// subfunction reuse the paper obtains with SIS resub.
	fopt := factor.Options{ApplyRules: opt.Rules}
	cubeCtxs := make(map[string]*factor.Context)
	ofddCtxs := make(map[string]*factor.OFDDContext)
	polKey := func(pol []bool) string {
		k := make([]byte, len(pol))
		for i, p := range pol {
			if p {
				k[i] = '1'
			} else {
				k[i] = '0'
			}
		}
		return string(k)
	}

	res.Forms = make([]*fprm.Form, len(outs))
	res.CubeCounts = make([]int64, len(outs))
	huge := make([]bool, len(outs))
	for oi, f := range outs {
		form, count, isHuge, err := deriveForm(bm, f, opt)
		if err != nil {
			return nil, fmt.Errorf("output %s: %w", spec.POs[oi].Name, err)
		}
		res.Forms[oi] = form
		res.CubeCounts[oi] = count
		huge[oi] = isHuge
	}

	// Factor outputs smallest-first so the divisor registry is populated
	// bottom-up (an adder's c₁ is registered before c₂ needs it), then
	// emit largest-first so the big cones create the shared gates the
	// smaller cones reuse (a sum reuses its carry's a⊕b).
	orderAsc := make([]int, len(outs))
	for i := range orderAsc {
		orderAsc[i] = i
	}
	sort.SliceStable(orderAsc, func(a, b int) bool {
		return res.CubeCounts[orderAsc[a]] < res.CubeCounts[orderAsc[b]]
	})

	exprs := make([]*factor.Expr, len(outs))
	for _, oi := range orderAsc {
		if huge[oi] {
			continue // handled by spec-cone copy below
		}
		form := res.Forms[oi]
		var e *factor.Expr
		key := polKey(form.Polarity)
		useCube := opt.method() == MethodCube && res.CubeCounts[oi] <= int64(opt.cubeMethodLimit())
		if useCube && opt.ESOP {
			if de := deriveESOP(form, fopt, cubeCtxs); de != nil {
				exprs[oi] = de
				continue
			}
		}
		if useCube {
			cx, ok := cubeCtxs[key]
			if !ok {
				cx = factor.NewContext(fopt)
				cubeCtxs[key] = cx
			}
			e = cx.Factor(form.Cubes)
		} else {
			cx, ok := ofddCtxs[key]
			if !ok {
				cx = factor.NewOFDDContext(ofdd.New(nPI, form.Polarity), fopt)
				ofddCtxs[key] = cx
			}
			e = cx.Factor(cx.M.FromBDD(bm, outs[oi]))
		}
		// Rewrite literal space into PI space so one emitter serves all
		// outputs even when their polarity vectors differ.
		exprs[oi] = applyPolarity(e, form.Polarity)
	}

	poGate := make([]int, len(outs))
	for i := len(orderAsc) - 1; i >= 0; i-- {
		oi := orderAsc[i]
		if huge[oi] {
			continue
		}
		poGate[oi] = em.Emit(exprs[oi])
	}
	// Outputs whose functional decision diagrams exploded (Section 6:
	// the method targets functions with manageable FPRM forms) keep
	// their original cone, copied structurally.
	copier := newConeCopier(spec, net, pis)
	for oi := range outs {
		if huge[oi] {
			poGate[oi] = copier.copy(spec.POs[oi].Gate)
		}
	}
	for oi := range outs {
		net.AddPO(spec.POs[oi].Name, poGate[oi])
	}

	net.Strash()
	net.Sweep()

	// Prepare the do-no-harm reference early: when the factored network
	// is already far larger than the cleaned specification, redundancy
	// removal cannot close the gap and the time is better saved.
	var specOpt *network.Network
	if !opt.NoFallback {
		specOpt = spec.Clone()
		specOpt.Sweep()
		specOpt.Strash()
		if opt.MergeNodes {
			MergeEquivalentGates(specOpt, bm)
		}
		specOpt.Sweep()
	}
	hopeless := specOpt != nil && net.CollectStats().Gates2 > 8*specOpt.CollectStats().Gates2

	if opt.Redund && !hopeless {
		res.Redund = redund.Remove(net, redund.Options{
			Forms:  res.Forms,
			Verify: opt.Verify,
		})
	}
	if opt.MergeNodes {
		MergeEquivalentGates(net, bm)
		net.Sweep()
	}
	// Safety net: the synthesized network must match the specification.
	if opt.Verify {
		got := net.ToBDDs(bm)
		for i := range got {
			if got[i] != outs[i] {
				return nil, fmt.Errorf("core: internal error: output %s not equivalent after synthesis", spec.POs[i].Name)
			}
		}
	}
	res.Network = net
	res.Stats = net.CollectStats()

	// Do-no-harm fallback (Section 6 scopes the method to functions with
	// manageable FPRM forms): if the cleaned specification is smaller
	// than the FPRM result, ship that instead.
	if specOpt != nil {
		if st := specOpt.CollectStats(); st.Gates2 < res.Stats.Gates2 {
			res.Network = specOpt
			res.Stats = st
			res.Fallback = true
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// ofddNodeBudget caps functional-decision-diagram growth per output; an
// OFDD can be exponentially larger than the BDD of the same function
// (long OR chains are the classic case), and such outputs bypass the
// FPRM flow entirely.
const ofddNodeBudget = 200_000

// deriveForm computes the FPRM form of one output with the configured
// polarity search. For outputs whose cube count exceeds the materialize
// limit, a sampled form (for pattern generation) is returned; outputs
// whose OFDD itself explodes come back with huge=true and an empty form.
func deriveForm(bm *bdd.Manager, f bdd.Ref, opt Options) (form *fprm.Form, count int64, huge bool, err error) {
	n := bm.NumVars()
	om := ofdd.New(n, nil)
	ref, ok := om.FromBDDBounded(bm, f, ofddNodeBudget)
	if !ok {
		return fprm.NewForm(n, nil), -1, true, nil
	}
	count = om.CubeCount(ref)
	if count > int64(opt.cubeMethodLimit()) {
		// Too large to materialize: keep all-positive polarity and sample
		// only as many cubes as the redundancy-removal pattern budget can
		// use anyway.
		sample := 2048
		if opt.cubeLimit() < sample {
			sample = opt.cubeLimit()
		}
		form = fprm.NewForm(n, nil)
		form.Cubes = om.CubesSample(ref, sample)
		return form, count, false, nil
	}
	form = fprm.NewForm(n, nil)
	form.Cubes = om.Cubes(ref, opt.cubeMethodLimit()+1)
	if count <= int64(opt.searchCubeLimit()) {
		switch opt.Polarity {
		case PolarityGreedy:
			form = fprm.SearchGreedy(form)
		case PolarityExhaustive:
			if n <= opt.exhaustiveLimit() {
				form = fprm.SearchExhaustive(form)
			} else {
				form = fprm.SearchGreedy(form)
			}
		}
	}
	return form, int64(form.Cubes.Len()), false, nil
}

// deriveESOP minimizes the form as a mixed-polarity ESOP; when that is
// smaller than the FPRM form, it factors the ESOP in the doubled literal
// space and returns the PI-space expression. Returns nil when the ESOP
// does not improve on the form.
func deriveESOP(form *fprm.Form, fopt factor.Options, ctxs map[string]*factor.Context) *factor.Expr {
	el := esop.FromFPRM(form)
	el.Minimize(0)
	if el.Len() >= form.Cubes.Len() {
		return nil
	}
	n := form.NumVars
	doubled := cube.NewList(2 * n)
	for _, c := range el.Cubes {
		dc := cube.One(2 * n)
		c.Pos.ForEach(func(v int) { dc.Vars.Set(2 * v) })
		c.Neg.ForEach(func(v int) { dc.Vars.Set(2*v + 1) })
		doubled.Add(dc)
	}
	cx, ok := ctxs["esop"]
	if !ok {
		cx = factor.NewContext(fopt)
		ctxs["esop"] = cx
	}
	e := cx.Factor(doubled)
	return undouble(e)
}

// undouble rewrites doubled-space literals back to PI space: 2v ↦ x_v,
// 2v+1 ↦ x̄_v.
func undouble(e *factor.Expr) *factor.Expr {
	memo := make(map[string]*factor.Expr)
	var rec func(*factor.Expr) *factor.Expr
	rec = func(e *factor.Expr) *factor.Expr {
		if r, ok := memo[e.Key()]; ok {
			return r
		}
		var r *factor.Expr
		switch e.Op {
		case factor.OpLit:
			if e.Var%2 == 0 {
				r = factor.Lit(e.Var / 2)
			} else {
				r = factor.Not(factor.Lit(e.Var / 2))
			}
		case factor.OpConst0, factor.OpConst1:
			r = e
		default:
			kids := make([]*factor.Expr, len(e.Kids))
			for i, k := range e.Kids {
				kids[i] = rec(k)
			}
			switch e.Op {
			case factor.OpNot:
				r = factor.Not(kids[0])
			case factor.OpAnd:
				r = factor.AndN(kids...)
			case factor.OpOr:
				r = factor.OrN(kids...)
			case factor.OpXor:
				r = factor.XorN(kids...)
			}
		}
		memo[e.Key()] = r
		return r
	}
	return rec(e)
}

// coneCopier structurally copies gate cones from the specification into
// the result network, sharing already-copied gates.
type coneCopier struct {
	spec, dst *network.Network
	memo      map[int]int
}

func newConeCopier(spec, dst *network.Network, pis []int) *coneCopier {
	c := &coneCopier{spec: spec, dst: dst, memo: make(map[int]int)}
	for i, piID := range spec.PIs {
		c.memo[piID] = pis[i]
	}
	return c
}

func (c *coneCopier) copy(id int) int {
	if g, ok := c.memo[id]; ok {
		return g
	}
	g := &c.spec.Gates[id]
	fanins := make([]int, len(g.Fanins))
	for i, f := range g.Fanins {
		fanins[i] = c.copy(f)
	}
	var nid int
	if len(fanins) == 0 {
		nid = c.dst.AddGate(g.Type)
	} else {
		nid = c.dst.AddGate(g.Type, fanins...)
	}
	c.memo[id] = nid
	return nid
}

// applyPolarity rewrites an expression over FPRM literals into PI space:
// literals of negative-polarity variables become complemented variables.
func applyPolarity(e *factor.Expr, pol []bool) *factor.Expr {
	memo := make(map[string]*factor.Expr)
	var rec func(*factor.Expr) *factor.Expr
	rec = func(e *factor.Expr) *factor.Expr {
		if r, ok := memo[e.Key()]; ok {
			return r
		}
		var r *factor.Expr
		switch e.Op {
		case factor.OpLit:
			if pol == nil || pol[e.Var] {
				r = e
			} else {
				r = factor.Not(factor.Lit(e.Var))
			}
		case factor.OpConst0, factor.OpConst1:
			r = e
		default:
			kids := make([]*factor.Expr, len(e.Kids))
			for i, k := range e.Kids {
				kids[i] = rec(k)
			}
			switch e.Op {
			case factor.OpNot:
				r = factor.Not(kids[0])
			case factor.OpAnd:
				r = factor.AndN(kids...)
			case factor.OpOr:
				r = factor.OrN(kids...)
			case factor.OpXor:
				r = factor.XorN(kids...)
			}
		}
		memo[e.Key()] = r
		return r
	}
	return rec(e)
}

// MergeEquivalentGates merges internal gates computing identical global
// functions (by BDD signature), the effect of the paper's resub step.
// Gates are merged onto their earliest topological representative.
func MergeEquivalentGates(net *network.Network, bm *bdd.Manager) int {
	if bm.NumVars() != net.NumPIs() {
		panic("core: manager mismatch")
	}
	const sizeCap = 2_000_000
	val := make([]bdd.Ref, len(net.Gates))
	piIdx := make(map[int]int)
	for i, id := range net.PIs {
		piIdx[id] = i
	}
	repl := make([]int, len(net.Gates))
	for i := range repl {
		repl[i] = i
	}
	canon := make(map[bdd.Ref]int)
	merged := 0
	for _, id := range net.TopoOrder() {
		if bm.Size() > sizeCap {
			return merged // give up gracefully on BDD blowup
		}
		g := &net.Gates[id]
		var f bdd.Ref
		switch g.Type {
		case network.PI:
			f = bm.Var(piIdx[id])
		case network.Const0:
			f = bdd.Zero
		case network.Const1:
			f = bdd.One
		default:
			ins := make([]bdd.Ref, len(g.Fanins))
			for i, fi := range g.Fanins {
				ins[i] = val[repl[fi]]
			}
			f = evalBDD(bm, g.Type, ins)
		}
		val[id] = f
		if g.Type == network.PI {
			canon[f] = id
			continue
		}
		if prev, ok := canon[f]; ok {
			repl[id] = prev
			merged++
		} else {
			canon[f] = id
		}
	}
	for i := range net.Gates {
		for j, f := range net.Gates[i].Fanins {
			net.Gates[i].Fanins[j] = repl[f]
		}
	}
	for i := range net.POs {
		net.POs[i].Gate = repl[net.POs[i].Gate]
	}
	return merged
}

func evalBDD(bm *bdd.Manager, t network.GateType, ins []bdd.Ref) bdd.Ref {
	switch t {
	case network.Buf:
		return ins[0]
	case network.Not:
		return bm.Not(ins[0])
	case network.And, network.Nand:
		v := bdd.One
		for _, f := range ins {
			v = bm.And(v, f)
		}
		if t == network.Nand {
			v = bm.Not(v)
		}
		return v
	case network.Or, network.Nor:
		v := bdd.Zero
		for _, f := range ins {
			v = bm.Or(v, f)
		}
		if t == network.Nor {
			v = bm.Not(v)
		}
		return v
	case network.Xor, network.Xnor:
		v := bdd.Zero
		for _, f := range ins {
			v = bm.Xor(v, f)
		}
		if t == network.Xnor {
			v = bm.Not(v)
		}
		return v
	}
	panic("core: bad gate type")
}
