package core_test

// End-to-end observability tests: stats collection through the whole
// pipeline, worker-count independence of the report, and the golden
// rmstats/v1 schema.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// A run with a collector attached must populate every metric family the
// pipeline claims to instrument.
func TestObsStatsCollected(t *testing.T) {
	opt := core.DefaultOptions()
	opt.Obs = obs.NewCollector()
	res := runAt(t, "adr4", opt, 2)

	if res.ObsStats == nil {
		t.Fatal("ObsStats nil with a collector attached")
	}
	s := res.ObsStats
	if s.BDD.UniqueMisses == 0 || s.BDD.OpMisses == 0 {
		t.Errorf("BDD counters empty: %+v", s.BDD)
	}
	if s.OFDD.UniqueMisses == 0 {
		t.Errorf("OFDD counters empty: %+v", s.OFDD)
	}
	if s.Factor.Passes == 0 {
		t.Errorf("factor passes = 0 with rules enabled: %+v", s.Factor)
	}
	pos := len(res.Network.POs)
	if len(s.Outputs) != pos {
		t.Fatalf("search groups = %d, want one per output (%d)", len(s.Outputs), pos)
	}
	anyBest := false
	for i, o := range s.Outputs {
		if o.Candidates == 0 {
			t.Errorf("output %d evaluated no polarity candidates", i)
		}
		if o.BestCubes > 0 {
			anyBest = true
			if o.BestCubes != res.CubeCounts[i] {
				t.Errorf("output %d best cubes = %d, cube count = %d",
					i, o.BestCubes, res.CubeCounts[i])
			}
		}
	}
	if !anyBest {
		t.Error("no output recorded a best form")
	}
	if res.BudgetSteps == 0 {
		t.Error("budget steps = 0")
	}

	// Per-output spans: one per output, correctly attributed.
	if len(res.OutputTimes) != pos {
		t.Fatalf("output spans = %d, want %d", len(res.OutputTimes), pos)
	}
	for i, span := range res.OutputTimes {
		if span.Index != i {
			t.Errorf("span %d has index %d", i, span.Index)
		}
		if span.Output != res.Network.POs[i].Name {
			t.Errorf("span %d names %q, PO is %q", i, span.Output, res.Network.POs[i].Name)
		}
		if span.Worker < 0 || span.Worker >= 2 {
			t.Errorf("span %d attributed to worker %d of 2", i, span.Worker)
		}
	}
}

// A run without a collector must not grow a report.
func TestObsStatsAbsentWhenDisabled(t *testing.T) {
	res := runAt(t, "adr4", core.DefaultOptions(), 2)
	if res.ObsStats != nil {
		t.Errorf("ObsStats = %+v without a collector", res.ObsStats)
	}
}

// The acceptance criterion for the stats report: after StripVolatile,
// the serialized RunStats is bit-identical at -j1 and -j4 — every
// counter, cube count, span name/index, and budget figure is
// schedule-independent; only wall-clock fields and worker attribution
// may differ.
func TestRunStatsDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range []string{"adr4", "bcd-div3"} {
		stats := func(workers int) []byte {
			opt := core.DefaultOptions()
			opt.Obs = obs.NewCollector()
			res := runAt(t, name, opt, workers)
			b, err := json.Marshal(res.RunStats(name).StripVolatile())
			if err != nil {
				t.Fatalf("%s: marshal: %v", name, err)
			}
			return b
		}
		ref := stats(1)
		if got := stats(4); !bytes.Equal(ref, got) {
			t.Errorf("%s: stripped RunStats differ between -j1 and -j4:\n-j1: %s\n-j4: %s",
				name, ref, got)
		}
	}
}

// Exhaustive search shards its Gray-code walk across workers; candidate
// totals must still be shard-count independent.
func TestRunStatsDeterministicExhaustive(t *testing.T) {
	opt := core.DefaultOptions()
	opt.Polarity = core.PolarityExhaustive
	obsAt := func(workers int) *obs.Stats {
		o := opt
		o.Obs = obs.NewCollector()
		return runAt(t, "9sym", o, workers).ObsStats
	}
	ref, got := obsAt(1), obsAt(4)
	for i := range ref.Outputs {
		if ref.Outputs[i].Candidates != got.Outputs[i].Candidates {
			t.Errorf("output %d candidates: %d at -j1, %d at -j4",
				i, ref.Outputs[i].Candidates, got.Outputs[i].Candidates)
		}
	}
}

// Golden schema test: a fully-populated RunStats must serialize exactly
// as testdata/runstats_golden.json. A failure means the rmstats/v1
// wire format changed — bump StatsSchema and regenerate deliberately
// with go test ./internal/core -run Golden -update.
func TestRunStatsGoldenSchema(t *testing.T) {
	rs := &core.RunStats{
		Schema:     core.StatsSchema,
		Circuit:    "example",
		PIs:        7,
		POs:        2,
		Workers:    4,
		Gates2:     31,
		Literals:   62,
		XORs:       5,
		GatesTotal: 36,
		CubeCounts: []int64{9, 17},
		Fallback:   true,
		Degradations: []core.DegradationStat{{
			Output: "s1", Stage: "fprm", Fallback: "greedy", Reason: "node budget",
		}},
		Redund: core.RedundStat{
			XorToOr: 1, XorToAnd: 2, FaninsRemoved: 3, ConstFolded: 4,
			Patterns: 5, Candidates: 6, Reverted: 7, Passes: 2, BudgetCut: true,
		},
		Budget: core.BudgetStat{Steps: 4256, Polls: 102},
		Obs: &obs.Stats{
			BDD:    obs.DDStats{UniqueHits: 1, UniqueMisses: 2, OpHits: 3, OpMisses: 4, Rehashes: 1, PeakNodes: 6, UniqueHitRate: 1.0 / 3.0, OpHitRate: 3.0 / 7.0},
			OFDD:   obs.DDStats{UniqueMisses: 8, PeakNodes: 8},
			Factor: obs.FactorStats{RuleA: 1, RuleB: 2, RuleC: 3, RuleD: 4, RuleE: 5, Passes: 6, DivisorHits: 7},
			Outputs: []obs.SearchStats{
				{Candidates: 8, Improvements: 2, BestCubes: 9, BestLits: 21},
				{Candidates: 8, Improvements: 1, BestCubes: 17, BestLits: 40},
			},
		},
		Phases: []core.PhaseStat{
			{Name: "bdd", ElapsedNS: 1000},
			{Name: "fprm", ElapsedNS: 2000},
		},
		Outputs: []core.OutputStat{
			{Output: "s0", Index: 0, Worker: 1, ElapsedNS: 900},
			{Output: "s1", Index: 1, Worker: 0, ElapsedNS: 1100},
		},
		ElapsedNS: int64(3 * time.Millisecond),
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "runstats_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rmstats/v1 serialization drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
