package core

import (
	"encoding/json"
	"io"

	"repro/internal/obs"
)

// StatsSchema identifies the RunStats JSON layout; bump on any
// incompatible field change so downstream consumers (the benchmark
// regression gate, dashboards) can reject reports they do not
// understand.
const StatsSchema = "rmstats/v1"

// RunStats is the end-to-end observability report of one synthesis run,
// shaped for JSON serialization (rmsyn -stats-json, the rmbench
// artifact). Every field except the ones StripVolatile clears is
// deterministic for a given circuit and configuration, at any worker
// count.
type RunStats struct {
	Schema  string `json:"schema"`
	Circuit string `json:"circuit"`
	PIs     int    `json:"pis"`
	POs     int    `json:"pos"`
	Workers int    `json:"workers"`

	// Cost of the synthesized network (see network.CollectStats).
	Gates2     int `json:"gates2"`
	Literals   int `json:"literals"`
	XORs       int `json:"xors"`
	GatesTotal int `json:"gates_total"`

	CubeCounts   []int64           `json:"cube_counts"`
	Fallback     bool              `json:"fallback"`
	Degradations []DegradationStat `json:"degradations"`
	Redund       RedundStat        `json:"redund"`
	Budget       BudgetStat        `json:"budget"`
	Obs          *obs.Stats        `json:"obs,omitempty"`

	// Basis is the requested synthesis basis ("xor", "sop", "auto",
	// "race"); BasisChoices records the arbiter's per-cone routing.
	// Both are deterministic at any worker count and survive
	// StripVolatile.
	Basis        string        `json:"basis,omitempty"`
	BasisChoices []BasisChoice `json:"basis_choices,omitempty"`

	Phases    []PhaseStat  `json:"phases"`
	Outputs   []OutputStat `json:"outputs"`
	ElapsedNS int64        `json:"elapsed_ns"`
}

// DegradationStat mirrors Degradation with JSON tags.
type DegradationStat struct {
	Output   string `json:"output"`
	Stage    string `json:"stage"`
	Fallback string `json:"fallback"`
	Reason   string `json:"reason"`
}

// RedundStat mirrors redund.Result with JSON tags.
type RedundStat struct {
	XorToOr       int  `json:"xor_to_or"`
	XorToAnd      int  `json:"xor_to_and"`
	FaninsRemoved int  `json:"fanins_removed"`
	ConstFolded   int  `json:"const_folded"`
	Patterns      int  `json:"patterns"`
	Candidates    int  `json:"candidates"`
	Reverted      int  `json:"reverted"`
	Passes        int  `json:"passes"`
	BudgetCut     bool `json:"budget_cut"`
}

// BudgetStat reports the run budget's activity.
type BudgetStat struct {
	Steps int64 `json:"steps"`
	Polls int64 `json:"polls"`
}

// PhaseStat is one pipeline phase's wall-clock time.
type PhaseStat struct {
	Name      string `json:"name"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// OutputStat is one output's derivation span in the fprm phase.
type OutputStat struct {
	Output    string `json:"output"`
	Index     int    `json:"index"`
	Worker    int    `json:"worker"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// RunStats assembles the serializable report for this result. circuit
// names the run (the network name is used when empty).
func (r *Result) RunStats(circuit string) *RunStats {
	if circuit == "" && r.Network != nil {
		circuit = r.Network.Name
	}
	rs := &RunStats{
		Schema:       StatsSchema,
		Circuit:      circuit,
		Workers:      r.Workers,
		Gates2:       r.Stats.Gates2,
		Literals:     r.Stats.Lits,
		XORs:         r.Stats.XORs,
		GatesTotal:   r.Stats.Total,
		CubeCounts:   r.CubeCounts,
		Fallback:     r.Fallback,
		Budget:       BudgetStat{Steps: r.BudgetSteps, Polls: r.BudgetPolls},
		Obs:          r.ObsStats,
		Basis:        r.Basis,
		BasisChoices: append([]BasisChoice(nil), r.BasisChoices...),
		ElapsedNS:    r.Elapsed.Nanoseconds(),
	}
	if r.Network != nil {
		rs.PIs = r.Network.NumPIs()
		rs.POs = len(r.Network.POs)
	}
	for _, d := range r.Degradations {
		rs.Degradations = append(rs.Degradations, DegradationStat(d))
	}
	rs.Redund = RedundStat{
		XorToOr:       r.Redund.XorToOr,
		XorToAnd:      r.Redund.XorToAnd,
		FaninsRemoved: r.Redund.FaninsRemoved,
		ConstFolded:   r.Redund.ConstFolded,
		Patterns:      r.Redund.Patterns,
		Candidates:    r.Redund.Candidates,
		Reverted:      r.Redund.Reverted,
		Passes:        r.Redund.Passes,
		BudgetCut:     r.Redund.BudgetCut,
	}
	for _, p := range r.PhaseTimes {
		rs.Phases = append(rs.Phases, PhaseStat{Name: p.Name, ElapsedNS: p.Elapsed.Nanoseconds()})
	}
	for _, s := range r.OutputTimes {
		rs.Outputs = append(rs.Outputs, OutputStat{
			Output: s.Output, Index: s.Index, Worker: s.Worker, ElapsedNS: s.Elapsed.Nanoseconds(),
		})
	}
	return rs
}

// StripVolatile clears the fields that legitimately differ between runs
// of the same circuit and configuration — wall-clock durations and
// worker scheduling (worker ids, worker count). What remains is
// bit-identical across runs at any -j, which the determinism tests and
// the regression gate rely on.
func (rs *RunStats) StripVolatile() *RunStats {
	rs.Workers = 0
	rs.ElapsedNS = 0
	for i := range rs.Phases {
		rs.Phases[i].ElapsedNS = 0
	}
	for i := range rs.Outputs {
		rs.Outputs[i].Worker = 0
		rs.Outputs[i].ElapsedNS = 0
	}
	return rs
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func (rs *RunStats) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
