package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/network"
)

func tinySpec() *network.Network {
	n := network.New("tiny")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO("y", n.AddGate(network.And, a, b))
	return n
}

func TestOptionsValidate(t *testing.T) {
	ok := func(mod func(*Options)) Options {
		o := DefaultOptions()
		if mod != nil {
			mod(&o)
		}
		return o
	}
	cases := []struct {
		name string
		opt  Options
		bad  bool
	}{
		{"default", ok(nil), false},
		{"zero value", Options{}, false},
		{"workers gomaxprocs-default", ok(func(o *Options) { o.Workers = 0 }), false},
		{"workers negative", ok(func(o *Options) { o.Workers = -1 }), true},
		{"workers absurd", ok(func(o *Options) { o.Workers = 1 << 20 }), true},
		{"workers sane", ok(func(o *Options) { o.Workers = 64 }), false},
		{"retry zero disables", ok(func(o *Options) { o.RetryFactor = 0 }), false},
		{"retry negative", ok(func(o *Options) { o.RetryFactor = -2 }), true},
		{"retry nan", ok(func(o *Options) { o.RetryFactor = math.NaN() }), true},
		{"retry inf", ok(func(o *Options) { o.RetryFactor = math.Inf(1) }), true},
		{"retry absurd", ok(func(o *Options) { o.RetryFactor = 1e9 }), true},
		{"method unknown", ok(func(o *Options) { o.Method = 7 }), true},
		{"polarity unknown", ok(func(o *Options) { o.Polarity = 9 }), true},
		{"budget negative", ok(func(o *Options) { o.MaxCubes = -1 }), true},
		{"budget zero unlimited", ok(func(o *Options) { o.MaxSteps = 0 }), false},
	}
	for _, tc := range cases {
		err := tc.opt.Validate()
		if tc.bad && !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: Validate() = %v, want ErrBadOptions", tc.name, err)
		}
		if !tc.bad && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
	}
}

// TestSynthesizeRejectsBadOptions: the boundary check actually guards
// Synthesize — garbage options are an error before any work, not silent
// misbehaviour halfway into the pipeline.
func TestSynthesizeRejectsBadOptions(t *testing.T) {
	spec := tinySpec()
	for _, mod := range []func(*Options){
		func(o *Options) { o.Workers = -3 },
		func(o *Options) { o.RetryFactor = math.NaN() },
		func(o *Options) { o.Method = 99 },
	} {
		opt := DefaultOptions()
		mod(&opt)
		res, err := Synthesize(context.Background(), spec, opt)
		if !errors.Is(err, ErrBadOptions) {
			t.Fatalf("Synthesize with bad options: res=%v err=%v, want ErrBadOptions", res, err)
		}
	}
	// And the sane path still works on the same spec.
	if _, err := Synthesize(context.Background(), spec, DefaultOptions()); err != nil {
		t.Fatalf("Synthesize with default options: %v", err)
	}
}
