package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/network"
)

// specT481 builds the t481 specification network from the paper's final
// equation (Example 1) — the functional ground truth for the benchmark.
func specT481() *network.Network {
	n := network.New("t481")
	v := make([]int, 16)
	for i := range v {
		v[i] = n.AddPI("")
	}
	not := func(i int) int { return n.AddGate(network.Not, v[i]) }
	and := func(a, b int) int { return n.AddGate(network.And, a, b) }
	or := func(a, b int) int { return n.AddGate(network.Or, a, b) }
	xor := func(a, b int) int { return n.AddGate(network.Xor, a, b) }
	left := and(
		xor(and(not(0), v[1]), and(v[2], not(3))),
		xor(and(not(4), v[5]), or(not(6), v[7])),
	)
	right := and(
		xor(or(v[8], not(9)), and(v[10], not(11))),
		xor(and(not(12), v[13]), and(v[14], not(15))),
	)
	n.AddPO("t481", xor(left, right))
	return n
}

// specAdder builds a ripple-carry adder: a[bits] + b[bits] + cin,
// outputs sum[bits] and cout. Inputs are declared interleaved
// (a0,b0,a1,b1,…) — the BDD variable order follows PI declaration order,
// and adders need interleaved orders to stay polynomial.
func specAdder(bits int, cin bool) *network.Network {
	n := network.New("adder")
	a := make([]int, bits)
	b := make([]int, bits)
	for i := 0; i < bits; i++ {
		a[i] = n.AddPI("")
		b[i] = n.AddPI("")
	}
	carry := -1
	if cin {
		carry = n.AddPI("")
	}
	for i := 0; i < bits; i++ {
		axb := n.AddGate(network.Xor, a[i], b[i])
		var sum, cNext int
		if carry < 0 {
			sum = axb
			cNext = n.AddGate(network.And, a[i], b[i])
		} else {
			sum = n.AddGate(network.Xor, axb, carry)
			cNext = n.AddGate(network.Or,
				n.AddGate(network.And, a[i], b[i]),
				n.AddGate(network.And, carry, axb))
		}
		n.AddPO("s", sum)
		carry = cNext
	}
	n.AddPO("cout", carry)
	return n
}

func equivalent(t *testing.T, a, b *network.Network) {
	t.Helper()
	if a.NumPIs() != b.NumPIs() {
		t.Fatalf("PI count differs: %d vs %d", a.NumPIs(), b.NumPIs())
	}
	m := bdd.New(a.NumPIs())
	fa := a.ToBDDs(m)
	fb := b.ToBDDs(m)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("output %d differs", i)
		}
	}
}

// TestExample1T481FullFlow: the paper's headline result. SIS needed 237
// gates and 1372 s; the paper's flow reaches 25 2-input AND/OR-equivalent
// gates. Our flow must reproduce that.
func TestExample1T481FullFlow(t *testing.T) {
	spec := specT481()
	res, err := Synthesize(context.Background(), spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, spec, res.Network)
	t.Logf("t481: %d gates2 / %d lits, cubes=%v, redund=%+v",
		res.Stats.Gates2, res.Stats.Lits, res.CubeCounts, res.Redund)
	if res.Stats.Gates2 > 25 {
		t.Errorf("t481 = %d 2-input gates, paper reaches 25", res.Stats.Gates2)
	}
	// The paper's Example 1 polarity yields 16 cubes; our greedy search
	// may find an even smaller form (12 cubes), so assert the bound.
	if res.CubeCounts[0] > 16 {
		t.Errorf("t481 cube count = %d, want ≤ 16", res.CubeCounts[0])
	}
}

// TestExample2Z4mlFullFlow: z4ml is the 3-bit adder with carry-in; the
// paper reaches 21 2-input gates (42 lits) vs SIS's 24.
func TestExample2Z4mlFullFlow(t *testing.T) {
	spec := specAdder(3, true)
	res, err := Synthesize(context.Background(), spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, spec, res.Network)
	t.Logf("z4ml: %d gates2 / %d lits, cubes=%v", res.Stats.Gates2, res.Stats.Lits, res.CubeCounts)
	// 27 = the structural floor for a ripple adder under the paper's
	// cost model (6 sum XORs at 3 gates each + 3 carry stages at 3
	// AND/OR gates reusing the sum XORs). The paper reports 21, which is
	// unreachable with XOR-costs-3 accounting; the mapped comparison in
	// internal/bench is the meaningful one (XOR cells cost 1 gate there).
	if res.Stats.Gates2 > 27 {
		t.Errorf("z4ml = %d 2-input gates, want ≤ 27", res.Stats.Gates2)
	}
	// Paper, Example 2: 32 FPRM cubes across the four outputs at the
	// natural (all-positive) polarity; searched polarities may do better.
	total := int64(0)
	for _, c := range res.CubeCounts {
		total += c
	}
	if total > 32 {
		t.Errorf("z4ml total cubes = %d, want ≤ 32", total)
	}
}

// TestMethodsAgree: both factorization methods synthesize correct networks
// and comparable sizes (paper: "results are comparable").
func TestMethodComparison(t *testing.T) {
	spec := specAdder(4, false)
	for _, m := range []Method{MethodCube, MethodOFDD} {
		opt := DefaultOptions()
		opt.Method = m
		res, err := Synthesize(context.Background(), spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		equivalent(t, spec, res.Network)
		t.Logf("method %d: %d gates2", m, res.Stats.Gates2)
	}
}

// TestPolarityStrategies: all polarity strategies preserve function.
func TestPolarityStrategies(t *testing.T) {
	spec := specT481()
	for _, p := range []Polarity{PolarityPositive, PolarityGreedy, PolarityExhaustive} {
		opt := DefaultOptions()
		opt.Polarity = p
		res, err := Synthesize(context.Background(), spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		equivalent(t, spec, res.Network)
	}
}

// TestLargeAdder: a 16-bit adder (my_adder scale) must synthesize despite
// its carry FPRM having 2^17-1 cubes, via the OFDD method and sampling.
func TestLargeAdder(t *testing.T) {
	spec := specAdder(16, true)
	opt := DefaultOptions()
	res, err := Synthesize(context.Background(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, spec, res.Network)
	t.Logf("16-bit adder: %d gates2, %d lits (spec %d lits)",
		res.Stats.Gates2, res.Stats.Lits, spec.CollectStats().Lits)
	// The carry-out cube count is 2^17-1 (N_k = 2N_{k-1}+1).
	last := res.CubeCounts[len(res.CubeCounts)-1]
	if last != (1<<17)-1 {
		t.Errorf("cout cube count = %d, want %d", last, (1<<17)-1)
	}
}

// Property: synthesis preserves random multi-output functions.
func TestQuickSynthesisPreserves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPI := 3 + rng.Intn(3)
		spec := network.New("r")
		for i := 0; i < nPI; i++ {
			spec.AddPI("")
		}
		types := []network.GateType{network.And, network.Or, network.Xor, network.Not, network.Nand}
		for i := 0; i < 4+rng.Intn(10); i++ {
			ty := types[rng.Intn(len(types))]
			k := 2
			if ty == network.Not {
				k = 1
			}
			fanins := make([]int, k)
			for j := range fanins {
				fanins[j] = rng.Intn(len(spec.Gates))
			}
			spec.AddGate(ty, fanins...)
		}
		spec.AddPO("o1", len(spec.Gates)-1)
		spec.AddPO("o2", rng.Intn(len(spec.Gates)))
		res, err := Synthesize(context.Background(), spec, DefaultOptions())
		if err != nil {
			return false
		}
		m := bdd.New(nPI)
		fa := spec.ToBDDs(m)
		fb := res.Network.ToBDDs(m)
		for i := range fa {
			if fa[i] != fb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMergeEquivalentGates: two gates computing the same function merge.
// Structural duplicates are already consed away at construction, so the
// duplicate here is functional only: And(a,b) vs De Morgan's
// Not(Or(Not a, Not b)) — beyond what structural hashing can see.
func TestMergeEquivalentGates(t *testing.T) {
	n := network.New("m")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g1 := n.AddGate(And, a, b)
	g2 := n.AddGate(network.Not, n.AddGate(network.Or, n.AddGate(network.Not, a), n.AddGate(network.Not, b)))
	n.AddPO("x", n.AddGate(network.Xor, g1, g2))
	m := bdd.New(2)
	merged := MergeEquivalentGates(n, m)
	if merged < 1 {
		t.Errorf("merged = %d, want ≥ 1", merged)
	}
	n.Sweep()
	if n.Gates[n.POs[0].Gate].Type != network.Const0 {
		t.Error("after merging, g1^g2 should sweep to const 0")
	}
}

// Alias used above to keep the literal short.
const And = network.And

// TestConstantOutput: a constant output synthesizes to a constant gate.
func TestConstantOutput(t *testing.T) {
	spec := network.New("c")
	a := spec.AddPI("a")
	spec.AddPO("z", spec.AddGate(network.Xor, a, a)) // = 0
	res, err := Synthesize(context.Background(), spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Gates2 != 0 {
		t.Errorf("constant output should cost nothing, got %+v", res.Stats)
	}
	equivalent(t, spec, res.Network)
}

// TestBufferOutput: an output equal to an input costs nothing.
func TestBufferOutput(t *testing.T) {
	spec := network.New("b")
	a := spec.AddPI("a")
	spec.AddPO("z", a)
	res, err := Synthesize(context.Background(), spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Gates2 != 0 {
		t.Errorf("wire output should cost nothing, got %+v", res.Stats)
	}
}
