package core_test

// Parallel-determinism tests: the per-output derivation fan-out must
// produce bit-identical results for every worker count. External test
// package so the multi-output specifications can come from the bench
// circuit table (bench imports core).

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// blifOf renders a synthesized network to BLIF — a stable byte-level
// fingerprint of its exact structure.
func blifOf(t *testing.T, res *core.Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Network.WriteBLIF(&buf); err != nil {
		t.Fatalf("WriteBLIF: %v", err)
	}
	return buf.String()
}

func runAt(t *testing.T, name string, opt core.Options, workers int) *core.Result {
	t.Helper()
	c, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown bench circuit %q", name)
	}
	opt.Workers = workers
	res, err := core.Synthesize(context.Background(), c.Build(), opt)
	if err != nil {
		t.Fatalf("%s at -j%d: %v", name, workers, err)
	}
	return res
}

func assertIdentical(t *testing.T, name string, ref, got *core.Result, workers int) {
	t.Helper()
	if w, g := blifOf(t, ref), blifOf(t, got); w != g {
		t.Errorf("%s: network at -j%d differs from -j1", name, workers)
	}
	if len(ref.CubeCounts) != len(got.CubeCounts) {
		t.Fatalf("%s: cube-count length mismatch at -j%d", name, workers)
	}
	for i := range ref.CubeCounts {
		if ref.CubeCounts[i] != got.CubeCounts[i] {
			t.Errorf("%s output %d: cube count %d at -j%d, %d at -j1",
				name, i, got.CubeCounts[i], workers, ref.CubeCounts[i])
		}
	}
	if len(ref.Degradations) != len(got.Degradations) {
		t.Fatalf("%s: degradation list length differs at -j%d: %v vs %v",
			name, workers, ref.Degradations, got.Degradations)
	}
	for i := range ref.Degradations {
		if ref.Degradations[i] != got.Degradations[i] {
			t.Errorf("%s: degradation %d differs at -j%d: %+v vs %+v",
				name, i, workers, got.Degradations[i], ref.Degradations[i])
		}
	}
	if ref.Stats != got.Stats {
		t.Errorf("%s: stats differ at -j%d: %+v vs %+v", name, workers, got.Stats, ref.Stats)
	}
	if len(ref.BasisChoices) != len(got.BasisChoices) {
		t.Fatalf("%s: basis-choice list length differs at -j%d: %v vs %v",
			name, workers, got.BasisChoices, ref.BasisChoices)
	}
	for i := range ref.BasisChoices {
		if ref.BasisChoices[i] != got.BasisChoices[i] {
			t.Errorf("%s: basis choice %d differs at -j%d: %+v vs %+v",
				name, i, workers, got.BasisChoices[i], ref.BasisChoices[i])
		}
	}
}

// The multi-output Table 2 circuits must synthesize to bit-identical
// networks, cube counts, and degradation lists at -j1 and -jN. CI runs
// this under -race at GOMAXPROCS 1 and 4 (serialized and saturated).
func TestSynthesizeParallelDeterminism(t *testing.T) {
	for _, name := range []string{"adr4", "addm4", "5xp1", "bcd-div3"} {
		ref := runAt(t, name, core.DefaultOptions(), 1)
		for _, workers := range []int{2, 4, 8} {
			got := runAt(t, name, core.DefaultOptions(), workers)
			assertIdentical(t, name, ref, got, workers)
		}
	}
}

// Same property with the exhaustive polarity search, whose Gray-code
// walk shards across idle workers: a single-output circuit gives the
// sharded search all the workers, a multi-output one splits them.
func TestSynthesizeParallelDeterminismExhaustive(t *testing.T) {
	opt := core.DefaultOptions()
	opt.Polarity = core.PolarityExhaustive
	for _, name := range []string{"9sym", "bcd-div3", "adr4"} {
		ref := runAt(t, name, opt, 1)
		for _, workers := range []int{3, 4} {
			got := runAt(t, name, opt, workers)
			assertIdentical(t, name, ref, got, workers)
		}
	}
}
